package blp

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// Two spellings of the same run — zero-value defaults vs every default
// written out — must share one canonical key, while the Zero sentinel
// must produce a distinct one.
func TestOptionsKeyCanonicalization(t *testing.T) {
	implicit := Options{Benchmark: "cc", Scale: 6}
	explicit := Options{Benchmark: "cc", Scale: 6, Degree: 16, Seed: 1,
		Cores: 1, SMT: 1, Predictor: "tage", Reserve: 8, ROBBlockSize: 1,
		FRQSize: 8, PRIters: 3}
	if implicit.Key() != explicit.Key() {
		t.Fatalf("keys differ:\n%s\n%s", implicit.Key(), explicit.Key())
	}
	zero := implicit
	zero.Reserve = Zero
	if zero.Key() == implicit.Key() {
		t.Fatal("explicit zero reserve should not share the default's key")
	}
	traced := implicit
	traced.TraceEvents = 100
	if traced.Key() != implicit.Key() {
		t.Fatal("TraceEvents is output-only and must not change the key")
	}
}

// Concurrent requests for one canonical key must simulate exactly once
// (singleflight) and hand every caller the same result.
func TestRunnerDedupSameKey(t *testing.T) {
	r := NewRunner(4)
	implicit := Options{Benchmark: "cc", Scale: 6}
	explicit := Options{Benchmark: "cc", Scale: 6, Degree: 16, Seed: 1,
		Cores: 1, SMT: 1, Predictor: "tage", Reserve: 8, ROBBlockSize: 1,
		FRQSize: 8, PRIters: 3}

	const callers = 8
	results := make([]*Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := implicit
			if i%2 == 1 {
				o = explicit
			}
			res, err := r.Run(o)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	s := r.Stats()
	if s.Simulated != 1 {
		t.Fatalf("simulated %d runs for one canonical key, want 1", s.Simulated)
	}
	if s.Cached != callers-1 {
		t.Fatalf("cached %d requests, want %d", s.Cached, callers-1)
	}
	if s.InFlight != 0 {
		t.Fatalf("%d runs still in flight after completion", s.InFlight)
	}
	for i, res := range results {
		if res != results[0] {
			t.Fatalf("caller %d got a different result pointer", i)
		}
	}
}

func TestRunnerPropagatesError(t *testing.T) {
	r := NewRunner(2)
	if _, err := r.Run(Options{Benchmark: "nope"}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := r.RunAll([]Options{
		{Benchmark: "cc", Scale: 6},
		{Benchmark: "bfs", Mode: SliceInner}, // §6.1 forbids
	}); err == nil {
		t.Fatal("RunAll swallowed an error")
	}
}

// The explicit-zero sentinel: previously Reserve/FRQSize/PRIters 0 all
// silently meant "use the default". Now a baseline zero-reserve run and
// a zero-depth-FRQ sliced run execute, a zero-sweep PageRank validates,
// and the structurally impossible combinations (zero reserve under
// selective flush — an architectural deadlock per §4.7 — and a zero ROB
// block size) fail fast with a clear error instead of being replaced by
// the default or timing out in the watchdog.
func TestExplicitZeroOptions(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed ablations are slow")
	}
	if _, err := Run(Options{Benchmark: "cc", Scale: 6, Reserve: Zero}); err != nil {
		t.Fatalf("baseline zero-reserve run: %v", err)
	}
	if _, err := Run(Options{Benchmark: "cc", Scale: 6, Mode: SliceOuter, Reserve: Zero}); err == nil {
		t.Fatal("zero reserve with selective flush should fail §4.7 validation")
	}
	if _, err := Run(Options{Benchmark: "cc", Scale: 6, Mode: SliceOuter, FRQSize: Zero}); err != nil {
		t.Fatalf("zero-FRQ ablation: %v", err)
	}
	if _, err := Run(Options{Benchmark: "pr", Scale: 6, PRIters: Zero}); err != nil {
		t.Fatalf("zero-sweep pagerank: %v", err)
	}
	if _, err := Run(Options{Benchmark: "cc", Scale: 6, ROBBlockSize: Zero}); err == nil {
		t.Fatal("zero ROB block size should fail core validation")
	}
}

// A panicking simulation must not poison the Runner: the panic used to
// escape Run before the semaphore slot was returned and c.done was closed,
// so every duplicate requester of that key blocked forever and — with the
// slot leaked — so did unrelated runs once the worker budget drained.
// Both requesters must now receive the panic converted to an error, and
// the Runner must stay usable afterwards.
func TestRunnerPanicDoesNotDeadlock(t *testing.T) {
	r := NewRunner(1)
	r.runFn = func(context.Context, Options) (*Result, error) { panic("injected failure") }
	o := Options{Benchmark: "cc", Scale: 6}
	errs := make(chan error, 2)
	go func() { _, err := r.Run(o); errs <- err }()
	go func() { _, err := r.Run(o); errs <- err }()
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err == nil || !strings.Contains(err.Error(), "panicked") {
				t.Fatalf("want a panic-converted error, got %v", err)
			}
			if !strings.Contains(err.Error(), "injected failure") {
				t.Fatalf("panic value lost from error: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("requester deadlocked after simulation panic")
		}
	}

	// The single worker slot must have been released: a fresh key on the
	// same Runner still executes.
	r.runFn = func(context.Context, Options) (*Result, error) { return &Result{Cycles: 1}, nil }
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := r.Run(Options{Benchmark: "bfs", Scale: 6}); err != nil {
			t.Errorf("follow-up run failed: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("worker slot leaked by the panicking run")
	}
	if s := r.Stats(); s.InFlight != 0 {
		t.Fatalf("%d runs still counted in flight", s.InFlight)
	}
}

func TestSpeedupUnmeasurableIsNaN(t *testing.T) {
	base := &Result{Cycles: 100}
	if s := Speedup(base, &Result{}); !math.IsNaN(s) {
		t.Fatalf("speedup vs zero-cycle run = %f, want NaN", s)
	}
	if s := Speedup(base, &Result{Cycles: 50}); s != 2 {
		t.Fatalf("speedup = %f, want 2", s)
	}
}

// A parallel Runner must regenerate byte-identical figure output to a
// serial (jobs=1) one: the fan-out only changes execution order, never
// the table assembly order or the simulated results.
func TestParallelFigureMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	serial, err := NewRunner(1).Fig6(-6)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewRunner(4).Fig6(-6)
	if err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Fatalf("parallel output diverged from serial:\n--- serial\n%s--- parallel\n%s",
			serial, parallel)
	}
}

// Fig4 through a wide Runner at a tiny scale: the figure-level dedup and
// fan-out path the CI race job exercises. Not skipped in -short so that
// `go test -race -short` still covers concurrent simulation.
func TestFig4ParallelSmall(t *testing.T) {
	r := NewRunner(4)
	f, err := r.Fig4(-6)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Values) == 0 {
		t.Fatal("no values recorded")
	}
	for k, v := range f.Values {
		if v <= 0 || math.IsNaN(v) {
			t.Fatalf("bad speedup %s=%f", k, v)
		}
	}
	s := r.Stats()
	// 7 benchmarks × (base, outer, perfect) + 3 inner-sliceable = 24
	// distinct runs, none duplicated within Fig4.
	if s.Simulated != 24 || s.Cached != 0 {
		t.Fatalf("simulated %d / cached %d, want 24 / 0", s.Simulated, s.Cached)
	}
	if !strings.Contains(f.Notes, "effective scales clamped") {
		t.Fatalf("clamped scales not reported in notes: %q", f.Notes)
	}
}

// Figures sharing one Runner reuse each other's runs: Fig5 and Fig6
// request exactly the same (base, best-sliced) pair per benchmark, so the
// second figure simulates nothing.
func TestRunnerSharedAcrossFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	r := NewRunner(4)
	if _, err := r.Fig5(-6); err != nil {
		t.Fatal(err)
	}
	after5 := r.Stats()
	if _, err := r.Fig6(-6); err != nil {
		t.Fatal(err)
	}
	after6 := r.Stats()
	if after6.Simulated != after5.Simulated {
		t.Fatalf("Fig6 simulated %d new runs after Fig5, want 0",
			after6.Simulated-after5.Simulated)
	}
	if after6.Cached <= after5.Cached {
		t.Fatal("Fig6 hit no cached runs")
	}
}

func TestScaleNote(t *testing.T) {
	if n := scaleNote(0); n != "" {
		t.Fatalf("unexpected clamp note at delta 0: %q", n)
	}
	n := scaleNote(-100)
	for _, b := range Benchmarks {
		if !strings.Contains(n, b+"=6") {
			t.Fatalf("clamp note missing %s: %q", b, n)
		}
	}
	// tc default 8: delta -2 reaches the floor exactly — no clamping.
	if n := scaleNote(-2); strings.Contains(n, "tc=") {
		t.Fatalf("tc not clamped at delta -2 but reported: %q", n)
	}
}

// TestRunAllContextFailsFast is the regression test for the fan-out
// cancellation bug: RunAllContext used to let every sibling run to
// completion after one had already failed, so a sweep poisoned by a bad
// configuration burned its full cost anyway. The failing run must
// cancel the expensive sibling promptly, and the reported error must be
// the real failure, not the collateral cancellation.
func TestRunAllContextFailsFast(t *testing.T) {
	r := NewRunner(2)
	boom := errors.New("poisoned configuration")
	r.runFn = func(ctx context.Context, o Options) (*Result, error) {
		if o.Seed == 2 {
			return nil, boom
		}
		// The "expensive" sibling: without fail-fast it runs for the
		// full 30 s and the test times out at the deadline below.
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(30 * time.Second):
			return &Result{Cycles: 1}, nil
		}
	}

	start := time.Now()
	_, err := r.RunAllContext(context.Background(), []Options{
		{Benchmark: "cc", Scale: 6, Seed: 1}, // expensive, must be canceled
		{Benchmark: "cc", Scale: 6, Seed: 2}, // fails immediately
	})
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("fan-out took %v after a sibling failed; fail-fast is broken", elapsed)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("got error %v; want the poisoned run's error, not the induced cancellation", err)
	}
}

// TestRunAllContextParentCancel pins the other direction: when the
// caller's own context dies, the cancellation is genuine and is what
// gets reported.
func TestRunAllContextParentCancel(t *testing.T) {
	r := NewRunner(1)
	r.runFn = func(ctx context.Context, o Options) (*Result, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	_, err := r.RunAllContext(ctx, []Options{
		{Benchmark: "cc", Scale: 6, Seed: 1},
		{Benchmark: "cc", Scale: 6, Seed: 2},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v; want context.Canceled", err)
	}
}
