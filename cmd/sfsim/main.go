// Command sfsim runs one benchmark through the selective-flush simulator
// and prints its statistics.
//
// Usage:
//
//	sfsim -bench bfs -mode outer
//	sfsim -bench cc -mode inner -scale 11 -predictor oracle
//	sfsim -bench ms -cores 4 -compare
//	sfsim -bench bfs -mode outer -trace trace.json   # Chrome trace export
//	sfsim -bench bfs -timeline tl.csv -interval 500  # occupancy timeline
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	blp "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sfsim: ")

	bench := flag.String("bench", "bfs", "benchmark: "+strings.Join(blp.Benchmarks, ", "))
	mode := flag.String("mode", "none", "slice placement: none, outer, inner")
	scale := flag.Int("scale", 0, "input scale (log2 vertices; 0 = default)")
	degree := flag.Int("degree", 0, "RMAT average degree (0 = 16)")
	seed := flag.Uint64("seed", 0, "input seed (0 = 1)")
	cores := flag.Int("cores", 1, "number of cores")
	smt := flag.Int("smt", 1, "SMT threads per core (1, 2, 4)")
	predictor := flag.String("predictor", "", "branch predictor: tage (default), gshare, bimodal, static, oracle")
	reserve := flag.Int("reserve", 0, "reserved entries for resolve paths (0 = default 8, -1 = explicitly none)")
	block := flag.Int("robblock", 0, "ROB block size (0 = 1, pure linked list)")
	frq := flag.Int("frq", 0, "fetch redirect queue depth (0 = default 8, -1 = explicitly none)")
	priters := flag.Int("priters", 0, "pagerank sweeps (0 = default 3, -1 = explicitly none)")
	paperMem := flag.Bool("papermem", false, "use the full Table 1 memory hierarchy")
	check := flag.Bool("checkslices", false, "enable the slice independence checker")
	compare := flag.Bool("compare", false, "also run the baseline and report the speedup")
	events := flag.Int64("traceevents", 0, "print the first N pipeline events to stderr")
	tracePath := flag.String("trace", "", "write a per-uop pipeline trace (Chrome trace_event JSON) to this file")
	timelinePath := flag.String("timeline", "", "write the interval occupancy/IPC/MPKI timeline (CSV) to this file")
	interval := flag.Int64("interval", 1000, "timeline sampling interval in cycles")
	watchdog := flag.Int64("watchdog", 0, "deadlock watchdog threshold in no-commit cycles (0 = default)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (after the run) to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer writeFile(*memprofile, func(w io.Writer) error {
			runtime.GC() // settle live-heap numbers before the snapshot
			return pprof.Lookup("allocs").WriteTo(w, 0)
		})
	}

	var m blp.SliceMode
	switch *mode {
	case "none":
		m = blp.SliceNone
	case "outer":
		m = blp.SliceOuter
	case "inner":
		m = blp.SliceInner
	default:
		log.Fatalf("unknown mode %q", *mode)
	}

	opts := blp.Options{
		Benchmark: *bench, Mode: m, Scale: *scale, Degree: *degree,
		Seed: *seed, Cores: *cores, SMT: *smt, Predictor: *predictor,
		Reserve: *reserve, ROBBlockSize: *block, FRQSize: *frq,
		PRIters: *priters, PaperScaleMem: *paperMem,
		CheckIndependence: *check, TraceEvents: *events,
		WatchdogCycles: *watchdog,
	}

	// Attach a flight recorder when any export was requested.
	var rec *blp.FlightRecorder
	if *tracePath != "" || *timelinePath != "" {
		rec = &blp.FlightRecorder{TraceUops: *tracePath != ""}
		if *timelinePath != "" {
			rec.Interval = *interval
		}
		opts.Flight = rec
	}
	if *timelinePath == "" {
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "interval" {
				log.Print("warning: -interval has no effect without -timeline")
			}
		})
	}

	if *compare && m != blp.SliceNone {
		// Run the measured configuration and its baseline concurrently.
		// Only the measured run records: the recorder is single-writer,
		// and the exported trace/timeline should not interleave baseline
		// events with the configuration under measurement.
		b := opts
		b.Mode = blp.SliceNone
		b.Flight = nil
		results, err := blp.NewRunner(2).RunAll([]blp.Options{opts, b})
		if err != nil {
			log.Fatal(err)
		}
		res, base := results[0], results[1]
		printResult(opts, res)
		fmt.Printf("\nbaseline cycles: %d\nspeedup:         %.3f\n",
			base.Cycles, blp.Speedup(base, res))
		writeRecordings(rec, *tracePath, *timelinePath)
		return
	}

	res, err := blp.Run(opts)
	if err != nil {
		log.Fatal(err)
	}
	printResult(opts, res)
	writeRecordings(rec, *tracePath, *timelinePath)
}

// writeRecordings exports the recorder's contents to the requested files.
func writeRecordings(rec *blp.FlightRecorder, tracePath, timelinePath string) {
	if rec == nil {
		return
	}
	if tracePath != "" {
		writeFile(tracePath, rec.WriteChromeTrace)
		fmt.Fprintf(os.Stderr, "sfsim: wrote %d pipeline events to %s (%d dropped)\n",
			len(rec.Events()), tracePath, rec.Dropped())
	}
	if timelinePath != "" {
		writeFile(timelinePath, rec.WriteTimelineCSV)
		fmt.Fprintf(os.Stderr, "sfsim: wrote %d timeline samples to %s\n",
			len(rec.Samples()), timelinePath)
	}
}

func writeFile(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := write(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

func printResult(o blp.Options, r *blp.Result) {
	s := r.Stats
	fmt.Fprintf(os.Stdout, "benchmark:    %s (mode=%v, scale=%d)\n", o.Benchmark, o.Mode, effScale(o))
	fmt.Printf("cycles:       %d\n", r.Cycles)
	fmt.Printf("instructions: %d (IPC %.3f)\n", s.Committed, r.IPC)
	fmt.Printf("branches:     %d, mispredicted %d (%.2f%%, %.1f MPKI)\n",
		s.Branches, s.Mispredicts, 100*s.MispredictRate(), s.MPKI())
	fmt.Printf("dispatched:   correct=%d wrongPath=%d sliceOverhead=%d\n",
		s.DispCorrect, s.DispWrong, s.DispOverhead)
	fmt.Printf("recoveries:   selective=%d conventional=%d nested=%d (FRQ peak %d)\n",
		s.SliceRecoveries, s.ConvRecoveries, s.NestedMisses, s.FRQPeak)
	fmt.Printf("flushed:      selective=%d full=%d robGaps=%d\n",
		s.FlushedSelective, s.FlushedFull, s.GapsCreated)
	tot := s.StackTotal()
	fmt.Printf("cycle stack:  exec %.1f%%  branch %.1f%%  mem %.1f%%  other %.1f%%\n",
		100*s.StackExec/tot, 100*s.StackBranch/tot, 100*s.StackMem/tot, 100*s.StackOther/tot)
	fmt.Printf("memory:       LLC miss %.1f%%, DRAM busy %.1f%%\n",
		100*r.LLCMissRate, 100*r.DRAMBusy)
	fmt.Printf("energy proxy: %.3g units, %.1f%% on committed work\n",
		r.Energy.Total(), 100*r.EnergyUseful)
}

func effScale(o blp.Options) int {
	if o.Scale != 0 {
		return o.Scale
	}
	return blp.DefaultScale(o.Benchmark)
}
