// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments                 # everything, default scales
//	experiments -fig 4          # one figure
//	experiments -fig 7 -delta -1  # quicker, one scale step smaller
//	experiments -fig 10 -cores 28 # the paper's full core count
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	blp "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	fig := flag.String("fig", "all", "which experiment: table1, motivation, 4..11, or all")
	delta := flag.Int("delta", 0, "input-scale delta (negative = smaller/faster)")
	cores := flag.Int("cores", 4, "core count for fig10")
	sizeDelta := flag.Int("sizedelta", 1, "extra input-scale steps for fig10's multicore runs")
	flag.Parse()

	type exp struct {
		id  string
		run func() (*blp.Figure, error)
	}
	all := []exp{
		{"table1", func() (*blp.Figure, error) { return blp.Table1(), nil }},
		{"motivation", func() (*blp.Figure, error) { return blp.Motivation(*delta) }},
		{"4", func() (*blp.Figure, error) { return blp.Fig4(*delta) }},
		{"5", func() (*blp.Figure, error) { return blp.Fig5(*delta) }},
		{"6", func() (*blp.Figure, error) { return blp.Fig6(*delta) }},
		{"7", func() (*blp.Figure, error) { return blp.Fig7(*delta, nil) }},
		{"8", func() (*blp.Figure, error) { return blp.Fig8(*delta, nil) }},
		{"9", func() (*blp.Figure, error) { return blp.Fig9(*delta) }},
		{"10", func() (*blp.Figure, error) { return blp.Fig10(*delta, *cores, *sizeDelta) }},
		{"11", func() (*blp.Figure, error) { return blp.Fig11(*delta) }},
	}

	want := strings.Split(*fig, ",")
	match := func(id string) bool {
		if *fig == "all" {
			return true
		}
		for _, w := range want {
			if strings.TrimSpace(w) == id || "fig"+strings.TrimSpace(w) == id {
				return true
			}
		}
		return false
	}

	ran := 0
	for _, e := range all {
		if !match(e.id) {
			continue
		}
		ran++
		start := time.Now()
		f, err := e.run()
		if err != nil {
			log.Fatalf("fig %s: %v", e.id, err)
		}
		fmt.Println(f)
		fmt.Printf("(generated in %v)\n\n", time.Since(start).Round(time.Second))
	}
	if ran == 0 {
		log.Fatalf("no experiment matches -fig %q", *fig)
	}
}
