// Command experiments regenerates the paper's tables and figures.
//
// Figures run through the parallel memoized harness (blp.Runner): all
// selected figures share one run cache, so the per-benchmark baselines
// that Motivation and Figs. 4-9 each re-measure simulate exactly once,
// and independent simulations execute concurrently up to -jobs workers.
// Tables are assembled in deterministic order, so the output is
// byte-identical to a serial (-jobs 1) run.
//
// Usage:
//
//	experiments                 # everything, default scales, NumCPU workers
//	experiments -fig 4          # one figure
//	experiments -fig 7 -delta -1  # quicker, one scale step smaller
//	experiments -fig 10 -cores 28 # the paper's full core count
//	experiments -jobs 1 -quiet  # serial, no progress
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	blp "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	fig := flag.String("fig", "all", "which experiment: table1, motivation, 4..11, policy, or all")
	delta := flag.Int("delta", 0, "input-scale delta (negative = smaller/faster)")
	cores := flag.Int("cores", 16, "core count for fig10")
	sizeDelta := flag.Int("sizedelta", 3, "extra input-scale steps for fig10's multicore runs")
	jobs := flag.Int("jobs", runtime.NumCPU(), "max concurrent simulations (shared across figures)")
	quiet := flag.Bool("quiet", false, "suppress the per-run progress line on stderr")
	asJSON := flag.Bool("json", false, "emit the machine-readable metrics report (JSON) on stdout instead of text tables")
	metrics := flag.String("metrics", "", "also write the metrics report (JSON) to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (after all runs) to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle live-heap numbers before the snapshot
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				log.Fatal(err)
			}
		}()
	}

	r := blp.NewRunner(*jobs)
	if !*quiet {
		r.SetProgress(os.Stderr)
	}

	type exp struct {
		id  string
		run func() (*blp.Figure, error)
	}
	all := []exp{
		{"table1", func() (*blp.Figure, error) { return blp.Table1(), nil }},
		{"motivation", func() (*blp.Figure, error) { return r.Motivation(*delta) }},
		{"4", func() (*blp.Figure, error) { return r.Fig4(*delta) }},
		{"5", func() (*blp.Figure, error) { return r.Fig5(*delta) }},
		{"6", func() (*blp.Figure, error) { return r.Fig6(*delta) }},
		{"7", func() (*blp.Figure, error) { return r.Fig7(*delta, nil) }},
		{"8", func() (*blp.Figure, error) { return r.Fig8(*delta, nil) }},
		{"9", func() (*blp.Figure, error) { return r.Fig9(*delta) }},
		{"10", func() (*blp.Figure, error) { return r.Fig10(*delta, *cores, *sizeDelta) }},
		{"11", func() (*blp.Figure, error) { return r.Fig11(*delta) }},
		{"policy", func() (*blp.Figure, error) { return r.PolicyMatrix(*delta) }},
	}

	want := strings.Split(*fig, ",")
	match := func(id string) bool {
		if *fig == "all" {
			return true
		}
		for _, w := range want {
			if strings.TrimSpace(w) == id || "fig"+strings.TrimSpace(w) == id {
				return true
			}
		}
		return false
	}

	var sel []exp
	for _, e := range all {
		if match(e.id) {
			sel = append(sel, e)
		}
	}
	if len(sel) == 0 {
		log.Fatalf("no experiment matches -fig %q", *fig)
	}

	// Launch every selected figure concurrently — the shared Runner
	// bounds total simulation concurrency and deduplicates the runs
	// figures have in common — and print each in selection order as soon
	// as it (and everything before it) is ready.
	start := time.Now()
	type outcome struct {
		f    *blp.Figure
		err  error
		dur  time.Duration
		done chan struct{}
	}
	outs := make([]*outcome, len(sel))
	for i := range sel {
		outs[i] = &outcome{done: make(chan struct{})}
		go func(i int) {
			defer close(outs[i].done)
			figStart := time.Now()
			outs[i].f, outs[i].err = sel[i].run()
			outs[i].dur = time.Since(figStart)
		}(i)
	}
	figs := make([]*blp.Figure, len(sel))
	for i, e := range sel {
		<-outs[i].done
		if outs[i].err != nil {
			log.Fatalf("fig %s: %v", e.id, outs[i].err)
		}
		figs[i] = outs[i].f
		if !*asJSON {
			fmt.Println(outs[i].f)
			fmt.Printf("(generated in %v)\n\n", outs[i].dur.Round(time.Second))
		}
	}
	report := blp.NewReport(figs...)
	if *asJSON {
		if err := report.WriteJSON(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	if *metrics != "" {
		f, err := os.Create(*metrics)
		if err != nil {
			log.Fatal(err)
		}
		if err := report.WriteJSON(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if len(sel) > 1 {
		printSummary(os.Stderr, r, time.Since(start))
	}
}

// printSummary reports how much work the shared run cache saved.
func printSummary(w io.Writer, r *blp.Runner, elapsed time.Duration) {
	s := r.Stats()
	fmt.Fprintf(w, "experiments: %d simulations (%d duplicate requests served from cache) in %v with %d workers\n",
		s.Simulated, s.Cached, elapsed.Round(time.Millisecond), r.Jobs())
}
