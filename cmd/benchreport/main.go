// Command benchreport measures the simulator's own performance — wall
// clock, simulated-cycles per second, and allocations — and writes a
// versioned BENCH_<n>.json report, so the repository accumulates a
// benchmark trajectory PR by PR (BENCH_3.json is this change's snapshot;
// compare files to see the history).
//
// It can also gate on an earlier report: -baseline fails the run (exit 1)
// when any shared entry's wall clock regressed by more than -threshold.
// Wall clock is machine-dependent, so the committed baseline is only
// meaningful on comparable hardware (CI uses a fixed runner class and
// refreshes the baseline whenever it changes).
//
// With -ledger it instead reads a durable store's append-only experiment
// ledger (ledger.ndjson, written by sfserved -store-dir or any
// blp.NewRunnerStore user) and summarizes the campaign's trajectory:
// computations per benchmark and behavior version, simulated cycles, and
// wall clock actually spent — history that survives cache eviction and
// version invalidation alike.
//
// Usage:
//
//	benchreport -out BENCH_3.json                 # measure, write report
//	benchreport -delta -2 -baseline BENCH_3.json  # quick run + regression gate
//	benchreport -ledger /var/lib/sfserved         # summarize ledger history
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	blp "repro"
	"repro/internal/kernels"
	"repro/internal/store"
)

// Entry is one measured workload.
type Entry struct {
	Name string `json:"name"`
	// WallSeconds is the cold, serial (-jobs 1) execution time.
	WallSeconds float64 `json:"wall_seconds"`
	// Allocs counts heap allocations over the run (runtime.Mallocs delta).
	Allocs uint64 `json:"allocs"`
	// SimCycles and SimCyclesPerSec are set for single-simulation entries,
	// where simulated time is well defined (figures aggregate many runs).
	SimCycles       int64   `json:"sim_cycles,omitempty"`
	SimCyclesPerSec float64 `json:"simcycles_per_sec,omitempty"`
	// AllocsPerSimKCycle is allocations per thousand simulated cycles, the
	// steady-state allocation rate of the hot loop.
	AllocsPerSimKCycle float64 `json:"allocs_per_sim_kcycle,omitempty"`
}

// Report is the BENCH_<n>.json schema.
type Report struct {
	Version   int    `json:"version"`
	GoVersion string `json:"go_version"`
	Delta     int    `json:"delta"`
	Generated string `json:"generated,omitempty"`
	// Notes carries free-form context for the trajectory (what changed
	// since the previous BENCH_<n-1>.json, reference numbers, hardware).
	Notes   []string `json:"notes,omitempty"`
	Entries []Entry  `json:"entries"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchreport: ")

	version := flag.Int("version", 3, "report version (the <n> of BENCH_<n>.json)")
	out := flag.String("out", "", "write the report (JSON) to this file")
	delta := flag.Int("delta", 0, "input-scale delta passed to the figures (negative = smaller/faster)")
	figs := flag.String("figs", "4,9", "comma-separated figure list to measure")
	singles := flag.String("singles", "pr,bfs", "comma-separated benchmarks for single-run throughput entries")
	sweeps := flag.String("sweeps", "cc", "comma-separated benchmarks for 6-point sweep entries (live vs batched replay)")
	baseline := flag.String("baseline", "", "earlier BENCH_<n>.json to gate against")
	threshold := flag.Float64("threshold", 0.20, "max tolerated wall-clock regression vs the baseline")
	stamp := flag.Bool("stamp", false, "record the generation time (off for committed reports, to keep them reproducible)")
	ledger := flag.String("ledger", "", "summarize a durable store's experiment ledger (a store directory or ledger.ndjson path) instead of measuring")
	var notes notesFlag
	flag.Var(&notes, "note", "free-form note recorded in the report (repeatable)")
	flag.Parse()

	if *ledger != "" {
		if err := summarizeLedger(*ledger); err != nil {
			log.Fatal(err)
		}
		return
	}

	rep := &Report{Version: *version, GoVersion: runtime.Version(), Delta: *delta, Notes: notes}
	if *stamp {
		rep.Generated = time.Now().UTC().Format(time.RFC3339)
	}

	for _, name := range split(*singles) {
		rep.Entries = append(rep.Entries, measureSingle(name, *delta))
	}
	for _, name := range split(*sweeps) {
		rep.Entries = append(rep.Entries, measureSweep(name, *delta)...)
	}
	for _, f := range split(*figs) {
		rep.Entries = append(rep.Entries, measureFigure(f, *delta))
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	} else {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	}

	if *baseline != "" {
		if failed := gate(rep, *baseline, *threshold); failed {
			os.Exit(1)
		}
	}
}

type notesFlag []string

func (n *notesFlag) String() string     { return strings.Join(*n, "; ") }
func (n *notesFlag) Set(v string) error { *n = append(*n, v); return nil }

func split(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// measure runs fn cold and returns its wall clock and allocation count.
// The GC runs first so the measured window starts from a settled heap.
func measure(fn func()) (float64, uint64) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	fn()
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	return wall, after.Mallocs - before.Mallocs
}

// measureSingle times one simulation at its default scale (plus delta).
func measureSingle(bench string, delta int) Entry {
	// Build the workload outside the measured window: input generation is
	// memoized process-wide and not part of the simulator's hot loop.
	if _, err := kernels.Build(kernels.Spec{Kernel: bench, Scale: blp.DefaultScale(bench) + delta}); err != nil {
		log.Fatalf("single %s build: %v", bench, err)
	}
	var res *blp.Result
	wall, allocs := measure(func() {
		var err error
		res, err = blp.Run(blp.Options{Benchmark: bench, Scale: blp.DefaultScale(bench) + delta})
		if err != nil {
			log.Fatalf("single %s: %v", bench, err)
		}
	})
	e := Entry{
		Name:        "single/" + bench,
		WallSeconds: wall,
		Allocs:      allocs,
		SimCycles:   res.Cycles,
	}
	if wall > 0 {
		e.SimCyclesPerSec = float64(res.Cycles) / wall
	}
	if res.Cycles > 0 {
		e.AllocsPerSimKCycle = float64(allocs) / float64(res.Cycles) * 1000
	}
	log.Printf("%-12s %8.2fs  %12d cycles  %10.0f simcycles/s  %9d allocs",
		e.Name, e.WallSeconds, e.SimCycles, e.SimCyclesPerSec, e.Allocs)
	return e
}

// sweepOptions is the canonical 6-point timing sweep over one sliced
// workload: the batched-replay headline scenario (one capture, one
// shared-decode batch) and its live-serial reference.
func sweepOptions(bench string, delta int) []blp.Options {
	scale := blp.DefaultScale(bench) + delta
	return []blp.Options{
		{Benchmark: bench, Scale: scale, Mode: blp.SliceOuter},
		{Benchmark: bench, Scale: scale, Mode: blp.SliceOuter, Predictor: "oracle"},
		{Benchmark: bench, Scale: scale, Mode: blp.SliceOuter, FRQSize: 2},
		{Benchmark: bench, Scale: scale, Mode: blp.SliceOuter, ROBBlockSize: 4},
		{Benchmark: bench, Scale: scale, Mode: blp.SliceOuter, Reserve: 16},
		{Benchmark: bench, Scale: scale, Mode: blp.SliceOuter, WrongPathMemAccess: true},
	}
}

// measureSweep times the 6-point sweep twice: live (six independent
// simulations, each running the functional emulator — the pre-replay
// cost of a sweep) and through a serial Runner, which captures the trace
// once and runs all six configurations as one batched replay over a
// shared decode ring and wrong-path segment cache.
func measureSweep(bench string, delta int) []Entry {
	sweep := sweepOptions(bench, delta)
	if _, err := kernels.Build(kernels.Spec{Kernel: bench, Scale: sweep[0].Scale}); err != nil {
		log.Fatalf("sweep %s build: %v", bench, err)
	}
	liveWall, liveAllocs := measure(func() {
		for _, o := range sweep {
			if _, err := blp.Run(o); err != nil {
				log.Fatalf("sweep %s live: %v", bench, err)
			}
		}
	})
	var st blp.RunnerStats
	batchWall, batchAllocs := measure(func() {
		r := blp.NewRunner(1)
		if _, err := r.RunAll(sweep); err != nil {
			log.Fatalf("sweep %s batched: %v", bench, err)
		}
		st = r.Stats()
	})
	if st.Batched != len(sweep) || st.Captured != 1 {
		log.Fatalf("sweep %s did not run as one batch: %+v", bench, st)
	}
	live := Entry{Name: "sweep6/" + bench + "/live", WallSeconds: liveWall, Allocs: liveAllocs}
	bat := Entry{Name: "sweep6/" + bench + "/batched", WallSeconds: batchWall, Allocs: batchAllocs}
	log.Printf("%-12s %8.2fs  %9d allocs", live.Name, live.WallSeconds, live.Allocs)
	log.Printf("%-12s %8.2fs  %9d allocs  (%.2fx vs live; seg hits %d misses %d invalidated %d bypassed %d)",
		bat.Name, bat.WallSeconds, bat.Allocs, liveWall/batchWall,
		st.SegHits, st.SegMisses, st.SegInvalidated, st.SegBypassed)
	return []Entry{live, bat}
}

// measureFigure times one figure end to end, serially and with a fresh run
// cache (cold), matching `experiments -fig <f> -jobs 1` on a warm input
// cache.
func measureFigure(fig string, delta int) Entry {
	r := blp.NewRunner(1)
	run := func() (*blp.Figure, error) {
		switch fig {
		case "motivation":
			return r.Motivation(delta)
		case "4":
			return r.Fig4(delta)
		case "5":
			return r.Fig5(delta)
		case "6":
			return r.Fig6(delta)
		case "7":
			return r.Fig7(delta, nil)
		case "8":
			return r.Fig8(delta, nil)
		case "9":
			return r.Fig9(delta)
		case "10":
			return r.Fig10(delta, 4, 1)
		case "11":
			return r.Fig11(delta)
		}
		return nil, fmt.Errorf("unknown figure %q", fig)
	}
	wall, allocs := measure(func() {
		if _, err := run(); err != nil {
			log.Fatalf("fig %s: %v", fig, err)
		}
	})
	e := Entry{Name: "fig" + fig, WallSeconds: wall, Allocs: allocs}
	log.Printf("%-12s %8.2fs  %9d allocs", e.Name, e.WallSeconds, e.Allocs)
	return e
}

// summarizeLedger reads an experiment ledger back (see store.ReadLedger)
// and prints the campaign trajectory: every computation the store's
// history records, grouped by behavior version and benchmark, with the
// wall clock actually spent simulating. Unlike the object store the
// ledger is never evicted or invalidated, so this is the full history —
// including work whose results a version bump has since retired.
func summarizeLedger(path string) error {
	entries, err := store.ReadLedger(path)
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		log.Print("ledger is empty")
		return nil
	}
	type agg struct {
		results, traces int
		cycles          int64
		wall            float64
	}
	versions := []string{} // first-seen order: the campaign's version trajectory
	byVer := map[string]map[string]*agg{}
	var totalWall float64
	for _, e := range entries {
		bv := byVer[e.Version]
		if bv == nil {
			bv = map[string]*agg{}
			byVer[e.Version] = bv
			versions = append(versions, e.Version)
		}
		a := bv[e.Benchmark]
		if a == nil {
			a = &agg{}
			bv[e.Benchmark] = a
		}
		switch e.Kind {
		case "trace":
			a.traces++
		default:
			a.results++
			a.cycles += e.Cycles
		}
		a.wall += e.WallSeconds
		totalWall += e.WallSeconds
	}
	first, last := entries[0].Time, entries[len(entries)-1].Time
	log.Printf("ledger: %d entries, %s .. %s, %.1fs simulator wall clock",
		len(entries), first, last, totalWall)
	for _, v := range versions {
		log.Printf("behavior %s:", v)
		names := make([]string, 0, len(byVer[v]))
		for b := range byVer[v] {
			names = append(names, b)
		}
		sort.Strings(names)
		for _, b := range names {
			a := byVer[v][b]
			log.Printf("  %-12s %4d results  %3d traces  %14d cycles  %8.2fs",
				b, a.results, a.traces, a.cycles, a.wall)
		}
	}
	return nil
}

// gate compares wall clock against a baseline report; entries present in
// both must not regress beyond the threshold.
func gate(rep *Report, baselinePath string, threshold float64) bool {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		log.Fatal(err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		log.Fatalf("%s: %v", baselinePath, err)
	}
	if base.Delta != rep.Delta {
		log.Printf("warning: baseline delta %d != measured delta %d; wall clocks are not comparable", base.Delta, rep.Delta)
	}
	old := map[string]Entry{}
	for _, e := range base.Entries {
		old[e.Name] = e
	}
	failed := false
	for _, e := range rep.Entries {
		b, ok := old[e.Name]
		if !ok || b.WallSeconds <= 0 {
			continue
		}
		// Entries this short are dominated by timer/scheduler noise; a
		// percentage gate on them would flake. They still appear in the
		// report for trend-watching.
		if b.WallSeconds < 0.1 {
			log.Printf("gate %-12s %8.2fs baseline — too short to gate reliably, skipped", e.Name, b.WallSeconds)
			continue
		}
		ratio := e.WallSeconds / b.WallSeconds
		status := "ok"
		if ratio > 1+threshold {
			status = "REGRESSED"
			failed = true
		}
		log.Printf("gate %-12s %8.2fs vs %8.2fs baseline (%.2fx) %s",
			e.Name, e.WallSeconds, b.WallSeconds, ratio, status)
	}
	return failed
}
