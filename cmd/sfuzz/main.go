// Command sfuzz is the differential fuzzer for the selective-flush
// pipeline: it generates random slice-annotated programs plus random
// hardware configurations, runs each through the architectural emulator
// and three timing-simulator variants (selective flush event-driven,
// selective flush cycle-accurate, conventional full flush), and
// cross-checks final memory, committed-instruction counts, resource
// quiescence, and event-driven/cycle-accurate equivalence. Failures are
// greedily minimized and written as replayable JSON repro files.
//
// Usage:
//
//	go run ./cmd/sfuzz -n 500 -seed 1
//	go run ./cmd/sfuzz -n 200 -storm -out failures/
//	go run ./cmd/sfuzz -n 500 -policy
//	go run ./cmd/sfuzz -replay internal/fuzz/testdata/scenario-fence.json
//
// With -policy, every sample additionally draws a recovery policy
// (conventional, partial:N, throttle:C) and runs the policy-equivalence
// leg of the oracle against the same reference execution.
//
// Exit status is nonzero if any sample violated an oracle.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/fuzz"
)

func main() {
	var (
		n        = flag.Int("n", 200, "number of samples to run")
		seed     = flag.Uint64("seed", 1, "base seed (sample i uses seed+i)")
		storm    = flag.Bool("storm", false, "storm mode: tiny windows, slice/fence-dense programs")
		policy   = flag.Bool("policy", false, "force a recovery policy on every sample (policy-equivalence leg)")
		out      = flag.String("out", "sfuzz-failures", "directory for minimized repro files")
		minimize = flag.Int("minimize", 400, "minimizer budget in oracle runs (0 disables)")
		maxFail  = flag.Int("max-failures", 5, "stop after this many failing samples")
		verbose  = flag.Bool("v", false, "report progress every 50 samples")
		replay   = flag.String("replay", "", "replay one repro file instead of fuzzing")
	)
	flag.Parse()

	if *replay != "" {
		c, err := fuzz.ReadCaseFile(*replay)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sfuzz: %v\n", err)
			os.Exit(2)
		}
		if v := fuzz.RunCase(c); v != nil {
			fmt.Printf("sfuzz: %s FAILS: %s\n%s\n", c.Name, v.Kind, v.Detail)
			os.Exit(1)
		}
		fmt.Printf("sfuzz: %s ok\n", c.Name)
		return
	}

	failures := 0
	for i := 0; i < *n; i++ {
		s := fuzz.NewShape(*seed+uint64(i), *storm)
		if *policy {
			s.ForcePolicy()
		}
		v := fuzz.RunCase(fuzz.Render(s))
		if *verbose && (i+1)%50 == 0 {
			fmt.Printf("sfuzz: %d/%d samples, %d failure(s)\n", i+1, *n, failures)
		}
		if v == nil {
			continue
		}
		failures++
		fmt.Printf("sfuzz: seed %#x VIOLATION %s\n  %s\n", s.Seed, v.Kind, v.Detail)
		if *minimize > 0 {
			ms, mv := fuzz.Minimize(s, v, *minimize)
			s, v = ms, mv
			fmt.Printf("  minimized to %d segment(s), %d outer iteration(s): %s\n",
				liveSegs(s), s.OuterIters, v.Detail)
		}
		if err := writeRepro(*out, s); err != nil {
			fmt.Fprintf(os.Stderr, "sfuzz: writing repro: %v\n", err)
		}
		if failures >= *maxFail {
			fmt.Printf("sfuzz: stopping after %d failures\n", failures)
			break
		}
	}
	if failures > 0 {
		fmt.Printf("sfuzz: %d violating sample(s)\n", failures)
		os.Exit(1)
	}
	fmt.Printf("sfuzz: %d samples clean\n", *n)
}

func liveSegs(s *fuzz.Shape) int {
	n := 0
	for _, seg := range s.Segs {
		if !seg.Off {
			n++
		}
	}
	return n
}

// writeRepro renders the (minimized) shape and stores the concrete case —
// programs, memory image, configuration — so the repro replays identically
// even after the generator changes.
func writeRepro(dir string, s *fuzz.Shape) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	c := fuzz.Render(s)
	path := filepath.Join(dir, fmt.Sprintf("repro-%#x.json", s.Seed))
	if err := c.WriteFile(path); err != nil {
		return err
	}
	fmt.Printf("  repro written to %s (replay: go run ./cmd/sfuzz -replay %s)\n", path, path)
	return nil
}
