// Command sfserved runs the simulation service: the blp experiment
// harness behind a multi-tenant HTTP API (see internal/serve).
//
//	sfserved                        # serve on :8344, NumCPU sim workers
//	sfserved -addr :9000 -jobs 8
//	sfserved -cache-mb 256 -queue 128 -run-timeout 2m
//	sfserved -store-dir /var/lib/sfserved -store-budget 2048
//
//	# Cluster mode: every member lists the same membership; each request
//	# is served by the consistent-hash owner of its canonical key, so
//	# cache hit rate survives scale-out. A shared -store-dir gives the
//	# ring a common durable level to warm from.
//	sfserved -addr :8344 -self http://10.0.0.1:8344 \
//	         -peers http://10.0.0.2:8344,http://10.0.0.3:8344 \
//	         -store-dir /mnt/shared/sfstore
//
//	curl -s localhost:8344/healthz
//	curl -s -X POST localhost:8344/v1/run \
//	     -d '{"benchmark":"bfs","mode":"outer","scale":12}'
//	curl -sN -X POST localhost:8344/v1/sweep \
//	     -d '{"runs":[{"benchmark":"cc"},{"benchmark":"cc","mode":"outer"}]}'
//	curl -s 'localhost:8344/v1/figures/4?delta=-2&format=csv'
//	curl -s localhost:8344/metrics
//
// With -store-dir the server keeps a durable result store: completed
// simulations (and captured traces) persist across restarts, so a
// restarted server warm-starts from disk instead of re-simulating.
// Objects are stamped with the simulator-behavior version; a binary
// whose numbers changed invalidates stale entries automatically. The
// directory also accumulates an append-only experiment ledger
// (ledger.ndjson, see benchreport -ledger).
//
// SIGINT/SIGTERM drain gracefully: the listener closes, in-flight
// requests finish (bounded by -drain-timeout), and a final metrics
// snapshot is logged. A second signal forces an immediate close.
package main

import (
	"errors"
	"flag"
	"log"
	"net/http"
	"strings"
	"syscall"
	"time"

	blp "repro"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sfserved: ")

	addr := flag.String("addr", ":8344", "listen address")
	jobs := flag.Int("jobs", 0, "max concurrent simulations (0 = NumCPU)")
	cacheMB := flag.Int("cache-mb", 64, "result-cache budget in MiB (0 = unbounded)")
	concurrent := flag.Int("concurrent", 0, "max admitted requests (0 = 2x jobs)")
	queueDepth := flag.Int("queue", 64, "requests waiting for admission before 429s")
	runTimeout := flag.Duration("run-timeout", 5*time.Minute, "per-run timeout (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown bound")
	storeDir := flag.String("store-dir", "", "durable result-store directory (empty = no persistence)")
	storeBudget := flag.Int("store-budget", 0, "durable-store disk budget in MiB (0 = unbounded)")
	self := flag.String("self", "", "this node's advertised base URL in a cluster (e.g. http://10.0.0.1:8344)")
	peers := flag.String("peers", "", "comma-separated peer base URLs; non-empty enables cluster mode (requires -self)")
	flag.Parse()

	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, p)
		}
	}
	if len(peerList) > 0 && *self == "" {
		log.Fatal("-peers requires -self (this node's advertised URL, as listed in the peers' -peers)")
	}

	cacheBytes := int64(*cacheMB) << 20
	if *cacheMB == 0 {
		cacheBytes = -1 // serve maps 0 to the default; negative = unbounded
	}
	cfg := serve.Config{
		Addr:          *addr,
		Jobs:          *jobs,
		CacheBytes:    cacheBytes,
		MaxConcurrent: *concurrent,
		QueueDepth:    *queueDepth,
		RunTimeout:    *runTimeout,
		Self:          *self,
		Peers:         peerList,
		Logf:          log.Printf,
	}
	if *storeDir != "" {
		st, err := blp.OpenStore(*storeDir, int64(*storeBudget)<<20)
		if err != nil {
			log.Fatal(err)
		}
		defer st.Close()
		ss := st.Stats()
		log.Printf("store %s: %d objects, %d bytes, behavior version %s",
			*storeDir, ss.Entries, ss.Bytes, st.Version())
		cfg.Store = st
	}
	s := serve.New(cfg)
	drained := s.DrainOnSignal(*drainTimeout, syscall.SIGINT, syscall.SIGTERM)

	err := s.ListenAndServe()
	if !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// The listener is closed; wait for the drain to finish in-flight
	// work and flush the final metrics snapshot (the deferred store
	// Close runs after that, once nothing can append to the ledger).
	if err := <-drained; err != nil {
		log.Fatalf("drain: %v", err)
	}
}
