package blp

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/kernels"
	"repro/internal/sim"
	"repro/internal/trace"
)

// This file implements batched replay at the Runner layer: a
// RunAllContext fan-out whose requests share a workload (same TraceKey)
// under two or more distinct timing configurations is simulated as one
// sim.RunBatch call — every trace record decoded once and fanned out to
// all lanes, with the trace's wrong-path segment cache shared between
// them — instead of N independent replays. Results are byte-identical to
// the serial replay path; only the accounting (RunnerStats.Batched,
// BatchGroups) and the wall clock differ.

// laneOut is one lane's outcome, delivered by batchGroup.run.
type laneOut struct {
	res     *Result
	err     error
	elapsed time.Duration
}

// laneReq is one registered lane: the member's options and the capacity-1
// channel its result is delivered on.
type laneReq struct {
	o  Options
	ch chan laneOut
}

// batchGroup coordinates the same-workload lanes of one RunAllContext
// fan-out. Every member arrives exactly once — registering a lane when
// its memo-cache computation actually runs, or declining when it was
// answered by a cache hit, a joined in-flight run, or the durable store —
// and the last arrival launches the batch. Declining must never wait on
// anything the group itself produces (see Runner.runGrouped), or two
// concurrent fan-outs over overlapping keys could deadlock.
type batchGroup struct {
	r   *Runner
	ctx context.Context
	tk  string

	mu      sync.Mutex
	pending int // members yet to arrive
	lanes   []*laneReq
}

// arrive records one member's decision: lr == nil declines, non-nil
// registers a lane. The last arrival launches the batch if any lane
// registered.
func (g *batchGroup) arrive(lr *laneReq) {
	g.mu.Lock()
	if lr != nil {
		g.lanes = append(g.lanes, lr)
	}
	g.pending--
	launch := g.pending == 0 && len(g.lanes) > 0
	g.mu.Unlock()
	if launch {
		go g.run()
	}
}

// run executes the registered lanes as one batched simulation under a
// single worker slot and delivers each lane's result. Counters mirror the
// serial path: every lane counts toward Simulated/InFlight/Replayed; the
// whole group counts once toward Captured at most (inside fetchTrace's
// singleflight).
func (g *batchGroup) run() {
	r := g.r
	lanes := g.lanes // immutable once launched
	k := len(lanes)
	delivered := false
	deliverAll := func(err error) {
		for _, lr := range lanes {
			lr.ch <- laneOut{err: err}
		}
		delivered = true
	}

	select {
	case r.sem <- struct{}{}:
	case <-g.ctx.Done():
		deliverAll(g.ctx.Err())
		return
	}
	r.mu.Lock()
	r.inFlight += k
	r.mu.Unlock()

	start := time.Now()
	defer func() {
		if p := recover(); p != nil && !delivered {
			deliverAll(fmt.Errorf("blp: batched simulation of %s panicked: %v", g.tk, p))
		}
		elapsed := time.Since(start)
		r.mu.Lock()
		r.inFlight -= k
		r.simulated += k
		w := r.progress
		r.mu.Unlock()
		<-r.sem
		if w != nil {
			st := r.Stats()
			for _, lr := range lanes {
				fmt.Fprintf(w, "run %-32s %8s  [batch of %d; %d simulated, %d cached, %d in flight]\n",
					describeRun(lr.o), elapsed.Round(time.Millisecond), k,
					st.Simulated, st.Cached, st.InFlight)
			}
		}
	}()

	tr, err := r.fetchTrace(g.ctx, lanes[0].o.normalized())
	if err != nil {
		deliverAll(err)
		return
	}
	r.mu.Lock()
	r.replayed += k
	r.batched += k
	r.batchGroups++
	r.batchHist[k]++
	r.mu.Unlock()

	opts := make([]Options, k)
	for i, lr := range lanes {
		opts[i] = lr.o
	}
	results, errs := runBatchContext(g.ctx, opts, tr)
	// The batch grew the trace's wrong-path segment cache; fold the new
	// bytes into the trace cache's accounting so its budget keeps
	// bounding total resident replay state.
	r.traces.Reprice(g.tk)
	elapsed := time.Since(start)
	for i, lr := range lanes {
		lr.ch <- laneOut{res: results[i], err: errs[i], elapsed: elapsed}
	}
	delivered = true
}

// runGrouped is the RunCached path for a batch group member: identical
// memoization, store, and counter semantics, but when the computation
// actually runs it contributes a lane to the group instead of simulating
// alone. Arrival is guaranteed exactly once on every path — including a
// join against a foreign in-flight computation, which declines through
// the DoWithJoin hook before blocking (waiting to decline until that
// computation finished could deadlock two overlapping fan-outs against
// each other's groups).
func (r *Runner) runGrouped(ctx context.Context, o Options, g *batchGroup) (*Result, error) {
	arrived := false
	arrive := func(lr *laneReq) {
		if !arrived {
			arrived = true
			g.arrive(lr)
		}
	}
	if err := ctx.Err(); err != nil {
		arrive(nil)
		return nil, err
	}
	participated := false
	res, err, shared := r.cache.DoWithJoin(ctx, o.Key(), func() (*Result, error) {
		participated = true
		return r.executeGrouped(ctx, o, g, arrive)
	}, func() { arrive(nil) })
	if !participated {
		arrive(nil) // resident-entry hit: fn and the join hook both skipped
	}
	if shared && err == nil {
		r.mu.Lock()
		r.cached++
		w := r.progress
		r.mu.Unlock()
		if w != nil && o.Flight != nil {
			fmt.Fprintf(w, "run %-32s served from cache; its flight recorder stays empty\n",
				describeRun(o))
		}
	}
	return res, err
}

// executeGrouped is execute for a group member: the store warm-start path
// declines the group, everything else registers a lane and waits for the
// batch to deliver. Store write-through and the ledger record happen here,
// per lane, exactly as execute does for serial runs.
func (r *Runner) executeGrouped(ctx context.Context, o Options, g *batchGroup, arrive func(*laneReq)) (*Result, error) {
	if res, ok := r.storeLoadResult(o.Key()); ok {
		arrive(nil)
		return res, nil
	}
	ch := make(chan laneOut, 1)
	arrive(&laneReq{o: o, ch: ch})
	select {
	case out := <-ch:
		if out.err == nil {
			r.storeSaveResult(o.Key(), out.res)
			r.ledgerResult(o, out.res, out.elapsed)
		}
		return out.res, out.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// groupBatches partitions a fan-out into batch groups: replay-eligible
// requests sharing a TraceKey, two or more distinct configurations each.
// member[i] == nil rides the normal memoized path — ineligible requests,
// lone configurations, and duplicate Keys (those join the group member's
// in-flight computation like any duplicate). The runFn test seam disables
// grouping: it stands in for RunContext, which batching does not call.
func (r *Runner) groupBatches(ctx context.Context, opts []Options) []*batchGroup {
	member := make([]*batchGroup, len(opts))
	if r.runFn != nil {
		return member
	}
	seenKey := make(map[string]bool)
	byTK := make(map[string][]int)
	for i, o := range opts {
		n := o.normalized()
		if !replayEligible(n) {
			continue
		}
		if k := o.Key(); seenKey[k] {
			continue
		} else {
			seenKey[k] = true
		}
		tk := n.TraceKey()
		byTK[tk] = append(byTK[tk], i)
	}
	for tk, idxs := range byTK {
		if len(idxs) < 2 {
			continue
		}
		g := &batchGroup{r: r, ctx: ctx, tk: tk, pending: len(idxs)}
		for _, i := range idxs {
			member[i] = g
		}
	}
	return member
}

// runBatchContext simulates every lane of a same-workload group over one
// shared trace decode (sim.RunBatch), returning per-lane results and
// errors. Lanes whose workload fails to build are reported individually;
// the rest still run.
func runBatchContext(ctx context.Context, opts []Options, tr *trace.Trace) ([]*Result, []error) {
	n := len(opts)
	results := make([]*Result, n)
	errs := make([]error, n)

	var live []int
	cfgs := make([]sim.Config, 0, n)
	ws := make([]*sim.Workload, 0, n)
	for i, o := range opts {
		ni := o.normalized()
		if err := ctx.Err(); err != nil {
			errs[i] = fmt.Errorf("blp: %s (%v) canceled before build: %w", o.Benchmark, o.Mode, err)
			continue
		}
		w, err := kernels.Build(buildSpec(ni))
		if err != nil {
			errs[i] = err
			continue
		}
		cfgs = append(cfgs, simConfig(ctx, ni))
		ws = append(ws, w)
		live = append(live, i)
	}
	if len(live) == 0 {
		return results, errs
	}

	simRes, simErrs := sim.RunBatch(tr, cfgs, ws)
	for j, i := range live {
		if simErrs[j] != nil {
			errs[i] = fmt.Errorf("blp: %s (%v): %w", opts[i].Benchmark, opts[i].Mode, simErrs[j])
			continue
		}
		results[i] = makeResult(simRes[j])
	}
	return results, errs
}
