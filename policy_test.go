package blp

import (
	"reflect"
	"strings"
	"testing"
)

// TestPolicyDefaultEquivalence is the blp-layer behavioral-identity
// guarantee of the recovery-policy matrix: requesting the policy a mode
// already implies produces byte-identical results to not requesting one,
// so every pre-policy figure table is unchanged.
func TestPolicyDefaultEquivalence(t *testing.T) {
	pairs := []struct {
		name           string
		implicit, expl Options
	}{
		{"selective",
			Options{Benchmark: "cc", Scale: 7, Mode: SliceOuter},
			Options{Benchmark: "cc", Scale: 7, Mode: SliceOuter, Policy: "selective"}},
		{"conventional",
			Options{Benchmark: "cc", Scale: 7},
			Options{Benchmark: "cc", Scale: 7, Policy: "conventional"}},
	}
	for _, p := range pairs {
		p := p
		t.Run(p.name, func(t *testing.T) {
			if p.implicit.Key() != p.expl.Key() {
				t.Fatalf("keys differ: the default policy does not normalize to %q:\n%s\n%s",
					p.name, p.implicit.Key(), p.expl.Key())
			}
			a, err := Run(p.implicit)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(p.expl)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(*a, *b) {
				t.Fatalf("explicit %q diverges from the implicit default", p.name)
			}
		})
	}
}

// TestPolicyMatrixSmoke runs the two genuinely new machines end to end:
// both must complete the workload correctly (Run validates final memory
// against the host reference), commit exactly what the baseline commits,
// and show their mechanism engaged in the stats.
func TestPolicyMatrixSmoke(t *testing.T) {
	base, err := Run(Options{Benchmark: "cc", Scale: 7})
	if err != nil {
		t.Fatal(err)
	}

	part, err := Run(Options{Benchmark: "cc", Scale: 7, Policy: "partial:8"})
	if err != nil {
		t.Fatal(err)
	}
	if part.Stats.Committed != base.Stats.Committed {
		t.Fatalf("partial committed %d, baseline %d", part.Stats.Committed, base.Stats.Committed)
	}
	if part.Stats.DrainCycles == 0 {
		t.Fatal("partial:8 never staged a drain on a branchy workload")
	}

	thr, err := Run(Options{Benchmark: "cc", Scale: 7, Policy: "throttle:4"})
	if err != nil {
		t.Fatal(err)
	}
	if thr.Stats.Committed != base.Stats.Committed {
		t.Fatalf("throttle committed %d, baseline %d", thr.Stats.Committed, base.Stats.Committed)
	}
	if thr.Stats.ThrottledCycles == 0 {
		t.Fatal("throttle:4 never gated fetch")
	}

	// A policy run composes with slice-annotated binaries too: the
	// markers dispatch as overhead, recovery stays full-squash.
	ps, err := Run(Options{Benchmark: "cc", Scale: 7, Mode: SliceOuter, Policy: "partial:8"})
	if err != nil {
		t.Fatal(err)
	}
	if ps.Stats.SliceRecoveries != 0 {
		t.Fatal("partial policy engaged the selective mechanism")
	}
}

// TestPolicyErrors: malformed policies are rejected before any
// simulation time is spent, with the parser's message.
func TestPolicyErrors(t *testing.T) {
	for _, bad := range []string{"nope", "partial:x", "throttle:9"} {
		_, err := Run(Options{Benchmark: "cc", Scale: 7, Policy: bad})
		if err == nil {
			t.Fatalf("policy %q accepted", bad)
		}
		if !strings.Contains(err.Error(), "policy") {
			t.Fatalf("policy %q error does not mention the policy: %v", bad, err)
		}
	}
}
