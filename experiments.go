package blp

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
)

// Figure is the regenerated form of one paper table or figure: a text
// table with the same rows/series the paper reports, plus the raw values
// for programmatic checks (benchmarks and tests).
type Figure struct {
	ID     string
	Title  string
	Table  *stats.Table
	Notes  string
	Values map[string]float64
}

func (f *Figure) String() string {
	s := fmt.Sprintf("== %s: %s ==\n%s", f.ID, f.Title, f.Table)
	if f.Notes != "" {
		s += "notes: " + f.Notes + "\n"
	}
	return s
}

func (f *Figure) set(key string, v float64) {
	if f.Values == nil {
		f.Values = map[string]float64{}
	}
	f.Values[key] = v
}

// addNote appends a note sentence, separating it from existing notes.
func (f *Figure) addNote(n string) {
	if n == "" {
		return
	}
	if f.Notes != "" {
		f.Notes += "; "
	}
	f.Notes += n
}

// BestMode returns the slice placement used for the single-number
// experiments (Figs. 5-11), following the paper's prescription to "test a
// few options" and pick the best (§6.1). In the paper that is outer for
// bc and inner for cc; in this reproduction Fig. 4 measures inner best
// for bc and sssp and outer best for cc (our cc-inner variant re-reads
// comp[v] per edge — a heavier code shape than the annotation-only change
// GAP permits; see EXPERIMENTS.md).
func BestMode(benchmark string) SliceMode {
	switch benchmark {
	case "bc", "sssp":
		return SliceInner
	default:
		return SliceOuter
	}
}

// minScale is the floor below which inputs stop exercising the simulated
// hierarchy at all; scaled clamps to it.
const minScale = 6

// scaled adjusts a benchmark's input scale by delta (quick sweeps pass a
// negative delta to trade fidelity for time), clamping at minScale.
// Figures that use it report any clamping via scaleNote, so output never
// silently labels identical inputs with different requested deltas.
func scaled(benchmark string, delta int) int {
	s := DefaultScale(benchmark) + delta
	if s < minScale {
		s = minScale
	}
	return s
}

// scaleNote reports the benchmarks whose requested scale was clamped to
// the minScale floor at the given delta, with the effective scale used.
func scaleNote(delta int) string {
	var clamped []string
	for _, b := range Benchmarks {
		want := DefaultScale(b) + delta
		if eff := scaled(b, delta); eff != want {
			clamped = append(clamped, fmt.Sprintf("%s=%d (requested %d)", b, eff, want))
		}
	}
	if len(clamped) == 0 {
		return ""
	}
	return "effective scales clamped: " + strings.Join(clamped, ", ")
}

// batch accumulates named run requests so a figure can declare every
// simulation it needs up front, execute the whole set concurrently
// through the Runner, and then assemble its table serially in
// deterministic order.
type batch struct {
	names []string
	opts  []Options
	added map[string]Options
	res   map[string]*Result
}

func (b *batch) add(name string, o Options) {
	if b.added == nil {
		b.added = map[string]Options{}
		b.res = map[string]*Result{}
	}
	if prev, dup := b.added[name]; dup {
		if prev != o {
			panic("blp: conflicting run requests named " + name)
		}
		return // identical duplicate (e.g. a repeated sweep value)
	}
	b.added[name] = o
	b.names = append(b.names, name)
	b.opts = append(b.opts, o)
}

func (b *batch) run(r *Runner) error {
	results, err := r.RunAll(b.opts)
	if err != nil {
		return err
	}
	for i, name := range b.names {
		b.res[name] = results[i]
	}
	return nil
}

func (b *batch) get(name string) *Result {
	res, ok := b.res[name]
	if !ok || res == nil {
		panic("blp: no result for run request " + name)
	}
	return res
}

// Motivation reproduces the §3 baseline statistics: wrong-path dispatch
// overhead and the oracle-predictor speedup for every benchmark.
func Motivation(scaleDelta int) (*Figure, error) {
	return NewRunner(0).Motivation(scaleDelta)
}

// Motivation is the Runner-backed form of the package-level Motivation.
func (r *Runner) Motivation(scaleDelta int) (*Figure, error) {
	f := &Figure{
		ID:    "motivation",
		Title: "§3 baseline branch statistics (TAGE vs oracle)",
		Table: stats.NewTable("bench", "MPKI", "wrongPath/correct", "oracle speedup"),
	}
	var reqs batch
	for _, b := range Benchmarks {
		reqs.add("base/"+b, Options{Benchmark: b, Scale: scaled(b, scaleDelta)})
		reqs.add("oracle/"+b, Options{Benchmark: b, Scale: scaled(b, scaleDelta), Predictor: "oracle"})
	}
	if err := reqs.run(r); err != nil {
		return nil, err
	}
	var wpSum, orSum []float64
	for _, b := range Benchmarks {
		base, orc := reqs.get("base/"+b), reqs.get("oracle/"+b)
		wp := float64(base.Stats.DispWrong) / float64(base.Stats.DispCorrect)
		sp := Speedup(base, orc)
		f.Table.AddRow(b, base.Stats.MPKI(), wp, sp)
		f.set("wp/"+b, wp)
		f.set("oracle/"+b, sp)
		wpSum = append(wpSum, wp)
		orSum = append(orSum, sp)
	}
	f.Table.AddRow("mean", "", mean(wpSum), stats.HarmonicMeanSpeedup(orSum))
	f.set("oracle/hmean", stats.HarmonicMeanSpeedup(orSum))
	f.Notes = "paper: +53% wrong-path dispatches, oracle +60% (§3)"
	f.addNote(scaleNote(scaleDelta))
	return f, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Table1 renders the simulated configuration next to the paper's.
func Table1() *Figure {
	c := core.DefaultConfig()
	f := &Figure{
		ID:    "table1",
		Title: "Simulated processor configuration",
		Table: stats.NewTable("parameter", "paper", "this model"),
	}
	f.Table.AddRow("dispatch/commit width", "4", fmt.Sprintf("%d/%d", c.DispatchWidth, c.CommitWidth))
	f.Table.AddRow("reorder buffer", "224", fmt.Sprint(c.ROBSize))
	f.Table.AddRow("reservation stations", "97", fmt.Sprint(c.RS))
	f.Table.AddRow("load/store queue", "72/56", fmt.Sprintf("%d/%d", c.LQ, c.SQ))
	f.Table.AddRow("branch predictor", "TAGE", c.Predictor)
	f.Table.AddRow("L1 I/D", "32 KB/32 KB", "scaled (see sim.ScaledMemConfig)")
	f.Table.AddRow("L2 private", "1 MB", "scaled")
	f.Table.AddRow("LLC NUCA", "1.375 MB/core", "scaled")
	f.Table.AddRow("memory latency", "50 ns", "150 cycles")
	f.Table.AddRow("reserve (§4.7)", "8", fmt.Sprint(c.Reserve))
	f.Table.AddRow("FRQ entries", "8", fmt.Sprint(c.FRQSize))
	f.Notes = "full-size hierarchy available via Options.PaperScaleMem"
	return f
}

// Fig4 reproduces the single-core speedups: inner/outer slicing where
// available, plus perfect branch prediction, per benchmark, with the
// harmonic means the paper quotes (1.29 overall, 1.35 without pr, 1.60
// perfect).
func Fig4(scaleDelta int) (*Figure, error) { return NewRunner(0).Fig4(scaleDelta) }

// Fig4 is the Runner-backed form of the package-level Fig4.
func (r *Runner) Fig4(scaleDelta int) (*Figure, error) {
	f := &Figure{
		ID:    "fig4",
		Title: "Speedup vs baseline: slicing placements and perfect prediction",
		Table: stats.NewTable("bench", "inner", "outer", "perfect"),
	}
	var reqs batch
	for _, b := range Benchmarks {
		o := Options{Benchmark: b, Scale: scaled(b, scaleDelta)}
		reqs.add("base/"+b, o)
		if InnerSliceable(b) {
			oi := o
			oi.Mode = SliceInner
			reqs.add("inner/"+b, oi)
		}
		oo := o
		oo.Mode = SliceOuter
		reqs.add("outer/"+b, oo)
		op := o
		op.Predictor = "oracle"
		reqs.add("perfect/"+b, op)
	}
	if err := reqs.run(r); err != nil {
		return nil, err
	}
	var best, bestNoPR, perfect []float64
	for _, b := range Benchmarks {
		base := reqs.get("base/" + b)
		inner := "-"
		innerV := 0.0
		if InnerSliceable(b) {
			innerV = Speedup(base, reqs.get("inner/"+b))
			inner = fmt.Sprintf("%.3f", innerV)
			f.set("inner/"+b, innerV)
		}
		outerV := Speedup(base, reqs.get("outer/"+b))
		orcV := Speedup(base, reqs.get("perfect/"+b))
		f.Table.AddRow(b, inner, outerV, orcV)
		f.set("outer/"+b, outerV)
		f.set("perfect/"+b, orcV)

		bv := outerV
		if innerV > bv {
			bv = innerV
		}
		f.set("best/"+b, bv)
		best = append(best, bv)
		if b != "pr" {
			bestNoPR = append(bestNoPR, bv)
		}
		perfect = append(perfect, orcV)
	}
	hm := stats.HarmonicMeanSpeedup(best)
	hmNoPR := stats.HarmonicMeanSpeedup(bestNoPR)
	hmP := stats.HarmonicMeanSpeedup(perfect)
	f.Table.AddRow("hmean(best)", "", hm, hmP)
	f.set("hmean", hm)
	f.set("hmeanNoPR", hmNoPR)
	f.set("hmeanPerfect", hmP)
	f.Notes = fmt.Sprintf("paper: best-hmean 1.29 (1.35 w/o pr), perfect 1.60; measured w/o pr: %.3f", hmNoPR)
	f.addNote(scaleNote(scaleDelta))
	return f, nil
}

// Fig5 reproduces the cycle stacks (exec/branch/mem/other) of baseline
// and sliced execution, normalized to the baseline cycle count.
func Fig5(scaleDelta int) (*Figure, error) { return NewRunner(0).Fig5(scaleDelta) }

// Fig5 is the Runner-backed form of the package-level Fig5.
func (r *Runner) Fig5(scaleDelta int) (*Figure, error) {
	f := &Figure{
		ID:    "fig5",
		Title: "Cycle stacks, normalized to baseline cycles",
		Table: stats.NewTable("bench", "run", "exec", "branch", "mem", "other", "total"),
	}
	var reqs batch
	for _, b := range Benchmarks {
		reqs.add("base/"+b, Options{Benchmark: b, Scale: scaled(b, scaleDelta)})
		reqs.add("sliced/"+b, Options{Benchmark: b, Scale: scaled(b, scaleDelta), Mode: BestMode(b)})
	}
	if err := reqs.run(r); err != nil {
		return nil, err
	}
	for _, b := range Benchmarks {
		base, sl := reqs.get("base/"+b), reqs.get("sliced/"+b)
		norm := float64(base.Cycles)
		for _, r := range []struct {
			name string
			res  *Result
		}{{"orig", base}, {"sliced", sl}} {
			s := r.res.Stats
			f.Table.AddRow(b, r.name,
				s.StackExec/norm, s.StackBranch/norm, s.StackMem/norm,
				s.StackOther/norm, float64(r.res.Cycles)/norm)
			f.set(fmt.Sprintf("%s/%s/branch", b, r.name), s.StackBranch/norm)
			f.set(fmt.Sprintf("%s/%s/mem", b, r.name), s.StackMem/norm)
		}
	}
	f.Notes = "paper: slicing shrinks the branch component; mem grows slightly"
	f.addNote(scaleNote(scaleDelta))
	return f, nil
}

// Fig6 reproduces the dispatched-instruction breakdown: correct path,
// wrong path, and slice-instruction overhead, normalized to the baseline
// correct-path count.
func Fig6(scaleDelta int) (*Figure, error) { return NewRunner(0).Fig6(scaleDelta) }

// Fig6 is the Runner-backed form of the package-level Fig6.
func (r *Runner) Fig6(scaleDelta int) (*Figure, error) {
	f := &Figure{
		ID:    "fig6",
		Title: "Dispatched instructions, normalized to correct-path count",
		Table: stats.NewTable("bench", "run", "correct", "wrongPath", "overhead"),
	}
	var reqs batch
	for _, b := range Benchmarks {
		reqs.add("base/"+b, Options{Benchmark: b, Scale: scaled(b, scaleDelta)})
		reqs.add("sliced/"+b, Options{Benchmark: b, Scale: scaled(b, scaleDelta), Mode: BestMode(b)})
	}
	if err := reqs.run(r); err != nil {
		return nil, err
	}
	for _, b := range Benchmarks {
		base, sl := reqs.get("base/"+b), reqs.get("sliced/"+b)
		norm := float64(base.Stats.DispCorrect)
		for _, r := range []struct {
			name string
			res  *Result
		}{{"orig", base}, {"sliced", sl}} {
			s := r.res.Stats
			f.Table.AddRow(b, r.name, float64(s.DispCorrect)/norm,
				float64(s.DispWrong)/norm, float64(s.DispOverhead)/norm)
			f.set(fmt.Sprintf("%s/%s/wrong", b, r.name), float64(s.DispWrong)/norm)
		}
		f.set(fmt.Sprintf("%s/overhead", b), float64(sl.Stats.DispOverhead)/norm)
	}
	f.Notes = "paper: slicing cuts wrong-path dispatches; sssp overhead exceeds the saving"
	f.addNote(scaleNote(scaleDelta))
	return f, nil
}

// Fig7 sweeps the §4.7 resource reservation (RS/LQ/SQ entries reserved
// for resolve paths). A reserve value of 0 is passed to the simulator as
// the explicit-zero sentinel (see Options.Reserve); the core rejects it
// under selective flush, surfacing the §4.7 forward-progress argument as
// an error rather than a silent fallback to the default.
func Fig7(scaleDelta int, reserves []int) (*Figure, error) {
	return NewRunner(0).Fig7(scaleDelta, reserves)
}

// Fig7 is the Runner-backed form of the package-level Fig7.
func (r *Runner) Fig7(scaleDelta int, reserves []int) (*Figure, error) {
	if len(reserves) == 0 {
		reserves = []int{1, 2, 4, 8, 16, 32}
	}
	header := []string{"bench"}
	for _, rv := range reserves {
		header = append(header, fmt.Sprintf("r=%d", rv))
	}
	f := &Figure{
		ID:    "fig7",
		Title: "Sliced speedup vs entries reserved for resolve paths",
		Table: stats.NewTable(header...),
	}
	var reqs batch
	for _, b := range Benchmarks {
		reqs.add("base/"+b, Options{Benchmark: b, Scale: scaled(b, scaleDelta)})
		for _, rv := range reserves {
			reserve := rv
			if reserve == 0 {
				reserve = Zero
			}
			reqs.add(fmt.Sprintf("r%d/%s", rv, b), Options{Benchmark: b,
				Scale: scaled(b, scaleDelta), Mode: BestMode(b), Reserve: reserve})
		}
	}
	if err := reqs.run(r); err != nil {
		return nil, err
	}
	for _, b := range Benchmarks {
		base := reqs.get("base/" + b)
		row := []any{b}
		for _, rv := range reserves {
			sp := Speedup(base, reqs.get(fmt.Sprintf("r%d/%s", rv, b)))
			row = append(row, sp)
			f.set(fmt.Sprintf("%s/r%d", b, rv), sp)
		}
		f.Table.AddRow(row...)
	}
	f.Notes = "paper: flat (or improving, bc) to 16 reserved entries, drop at 32"
	f.addNote(scaleNote(scaleDelta))
	return f, nil
}

// Fig8 sweeps the blocked linked-list ROB block size.
func Fig8(scaleDelta int, blocks []int) (*Figure, error) {
	return NewRunner(0).Fig8(scaleDelta, blocks)
}

// Fig8 is the Runner-backed form of the package-level Fig8.
func (r *Runner) Fig8(scaleDelta int, blocks []int) (*Figure, error) {
	if len(blocks) == 0 {
		blocks = []int{1, 2, 4, 8, 16}
	}
	header := []string{"bench"}
	for _, bsz := range blocks {
		header = append(header, fmt.Sprintf("b=%d", bsz))
	}
	f := &Figure{
		ID:    "fig8",
		Title: "Sliced speedup vs ROB block size (gaps/padding overhead)",
		Table: stats.NewTable(header...),
	}
	var reqs batch
	for _, b := range Benchmarks {
		reqs.add("base/"+b, Options{Benchmark: b, Scale: scaled(b, scaleDelta)})
		for _, bsz := range blocks {
			reqs.add(fmt.Sprintf("b%d/%s", bsz, b), Options{Benchmark: b,
				Scale: scaled(b, scaleDelta), Mode: BestMode(b), ROBBlockSize: bsz})
		}
	}
	if err := reqs.run(r); err != nil {
		return nil, err
	}
	perBlock := map[int][]float64{}
	for _, b := range Benchmarks {
		base := reqs.get("base/" + b)
		row := []any{b}
		for _, bsz := range blocks {
			sp := Speedup(base, reqs.get(fmt.Sprintf("b%d/%s", bsz, b)))
			row = append(row, sp)
			f.set(fmt.Sprintf("%s/b%d", b, bsz), sp)
			perBlock[bsz] = append(perBlock[bsz], sp)
		}
		f.Table.AddRow(row...)
	}
	row := []any{"hmean"}
	for _, bsz := range blocks {
		hm := stats.HarmonicMeanSpeedup(perBlock[bsz])
		row = append(row, hm)
		f.set(fmt.Sprintf("hmean/b%d", bsz), hm)
	}
	f.Table.AddRow(row...)
	f.Notes = "paper: ≤4 negligible, −4.1% at 8, −9.5% at 16"
	f.addNote(scaleNote(scaleDelta))
	return f, nil
}

// Fig9 sweeps input size (1×, 2×, 4×, 8× vertices).
func Fig9(scaleDelta int) (*Figure, error) { return NewRunner(0).Fig9(scaleDelta) }

// Fig9 is the Runner-backed form of the package-level Fig9.
func (r *Runner) Fig9(scaleDelta int) (*Figure, error) {
	factors := []int{0, 1, 2, 3} // scale deltas = log2 of the size factor
	f := &Figure{
		ID:    "fig9",
		Title: "Sliced speedup vs input size (×1, ×2, ×4, ×8)",
		Table: stats.NewTable("bench", "x1", "x2", "x4", "x8"),
	}
	var reqs batch
	for _, b := range Benchmarks {
		for _, d := range factors {
			sc := scaled(b, scaleDelta) + d
			reqs.add(fmt.Sprintf("base/%s/x%d", b, d), Options{Benchmark: b, Scale: sc})
			reqs.add(fmt.Sprintf("sliced/%s/x%d", b, d), Options{Benchmark: b, Scale: sc, Mode: BestMode(b)})
		}
	}
	if err := reqs.run(r); err != nil {
		return nil, err
	}
	perFactor := map[int][]float64{}
	for _, b := range Benchmarks {
		row := []any{b}
		for _, d := range factors {
			base := reqs.get(fmt.Sprintf("base/%s/x%d", b, d))
			sl := reqs.get(fmt.Sprintf("sliced/%s/x%d", b, d))
			sp := Speedup(base, sl)
			row = append(row, sp)
			f.set(fmt.Sprintf("%s/x%d", b, 1<<d), sp)
			perFactor[d] = append(perFactor[d], sp)
		}
		f.Table.AddRow(row...)
	}
	row := []any{"hmean"}
	for _, d := range factors {
		row = append(row, stats.HarmonicMeanSpeedup(perFactor[d]))
	}
	f.Table.AddRow(row...)
	f.Notes = "paper: no clear trend; average 1.27-1.31 across sizes"
	f.addNote(scaleNote(scaleDelta))
	return f, nil
}

// Fig10 compares multicore speedups against single-core speedups (the
// paper runs 28 cores with 16× inputs; pass cores and sizeDelta to scale
// the experiment to budget).
func Fig10(scaleDelta, cores, sizeDelta int) (*Figure, error) {
	return NewRunner(0).Fig10(scaleDelta, cores, sizeDelta)
}

// Fig10 is the Runner-backed form of the package-level Fig10.
func (r *Runner) Fig10(scaleDelta, cores, sizeDelta int) (*Figure, error) {
	if cores <= 0 {
		cores = 4
	}
	f := &Figure{
		ID:    "fig10",
		Title: fmt.Sprintf("Sliced speedup: 1 core vs %d cores", cores),
		Table: stats.NewTable("bench", "1-core", fmt.Sprintf("%d-core", cores)),
	}
	var reqs batch
	for _, b := range Benchmarks {
		sc := scaled(b, scaleDelta) + sizeDelta
		reqs.add("base1/"+b, Options{Benchmark: b, Scale: scaled(b, scaleDelta)})
		reqs.add("sl1/"+b, Options{Benchmark: b, Scale: scaled(b, scaleDelta), Mode: BestMode(b)})
		reqs.add("baseN/"+b, Options{Benchmark: b, Scale: sc, Cores: cores})
		reqs.add("slN/"+b, Options{Benchmark: b, Scale: sc, Cores: cores, Mode: BestMode(b)})
	}
	if err := reqs.run(r); err != nil {
		return nil, err
	}
	var single, multi []float64
	for _, b := range Benchmarks {
		s1 := Speedup(reqs.get("base1/"+b), reqs.get("sl1/"+b))
		sN := Speedup(reqs.get("baseN/"+b), reqs.get("slN/"+b))
		f.Table.AddRow(b, s1, sN)
		f.set("1c/"+b, s1)
		f.set("nc/"+b, sN)
		single = append(single, s1)
		multi = append(multi, sN)
	}
	f.Table.AddRow("hmean", stats.HarmonicMeanSpeedup(single), stats.HarmonicMeanSpeedup(multi))
	f.set("hmean/1c", stats.HarmonicMeanSpeedup(single))
	f.set("hmean/nc", stats.HarmonicMeanSpeedup(multi))
	f.Notes = "paper: 28-core average 1.29 — the benefit is orthogonal to thread parallelism"
	f.addNote(scaleNote(scaleDelta))
	return f, nil
}

// Fig11 combines SMT (2 and 4 threads) with slicing on a single core.
func Fig11(scaleDelta int) (*Figure, error) { return NewRunner(0).Fig11(scaleDelta) }

// fig11Configs are the per-benchmark run variants of Fig. 11, in column
// order. Modes marked best are resolved per benchmark.
var fig11Configs = []struct {
	key  string
	smt  int
	best bool
	pred string
}{
	{"smt2", 2, false, ""},
	{"smt2s", 2, true, ""},
	{"smt4", 4, false, ""},
	{"smt4s", 4, true, ""},
	{"sliced", 1, true, ""},
	{"perfect", 1, false, "oracle"},
}

// Fig11 is the Runner-backed form of the package-level Fig11.
func (r *Runner) Fig11(scaleDelta int) (*Figure, error) {
	f := &Figure{
		ID:    "fig11",
		Title: "SMT and slicing combinations (single core), speedup vs 1-thread baseline",
		Table: stats.NewTable("bench", "smt2", "smt2+sliced", "smt4", "smt4+sliced", "sliced", "perfect"),
	}
	var reqs batch
	for _, b := range Benchmarks {
		sc := scaled(b, scaleDelta)
		reqs.add("base/"+b, Options{Benchmark: b, Scale: sc})
		for _, cfg := range fig11Configs {
			mode := SliceNone
			if cfg.best {
				mode = BestMode(b)
			}
			reqs.add(cfg.key+"/"+b, Options{Benchmark: b, Scale: sc,
				SMT: cfg.smt, Mode: mode, Predictor: cfg.pred})
		}
	}
	if err := reqs.run(r); err != nil {
		return nil, err
	}
	for _, b := range Benchmarks {
		base := reqs.get("base/" + b)
		row := []any{b}
		for _, cfg := range fig11Configs {
			sp := Speedup(base, reqs.get(cfg.key+"/"+b))
			row = append(row, sp)
			f.set(fmt.Sprintf("%s/%s", b, cfg.key), sp)
		}
		f.Table.AddRow(row...)
	}
	f.Notes = "paper: SMT alone beats slicing alone, but slicing adds on top of SMT"
	f.addNote(scaleNote(scaleDelta))
	return f, nil
}

// PolicyMatrix compares the recovery-policy matrix (§4.2 and the
// conventional-recovery alternatives it displaces) on every benchmark:
// baseline IPC under conventional full-squash recovery, then speedups for
// the paper's selective flush (at BestMode), a partial flush that squashes
// only the 16 youngest victims and drains the rest, and a conventional
// squash with fetch throttled below TAGE confidence 2. This is not a paper
// figure — it is the repo's own ablation of what the selective mechanism
// buys over cheaper recovery tweaks.
func PolicyMatrix(scaleDelta int) (*Figure, error) {
	return NewRunner(0).PolicyMatrix(scaleDelta)
}

// policyMatrixConfigs are the per-benchmark variants of the policy
// figure, in column order. Selective resolves BestMode per benchmark.
var policyMatrixConfigs = []struct {
	key    string
	policy string
	best   bool
}{
	{"selective", "selective", true},
	{"partial16", "partial:16", false},
	{"throttle2", "throttle:2", false},
}

// PolicyMatrix is the Runner-backed form of the package-level PolicyMatrix.
func (r *Runner) PolicyMatrix(scaleDelta int) (*Figure, error) {
	f := &Figure{
		ID:    "policy",
		Title: "Recovery-policy matrix: speedup vs conventional full squash",
		Table: stats.NewTable("bench", "baseIPC", "selective", "partial:16", "throttle:2"),
	}
	var reqs batch
	for _, b := range Benchmarks {
		sc := scaled(b, scaleDelta)
		reqs.add("base/"+b, Options{Benchmark: b, Scale: sc})
		for _, cfg := range policyMatrixConfigs {
			mode := SliceNone
			if cfg.best {
				mode = BestMode(b)
			}
			reqs.add(cfg.key+"/"+b, Options{Benchmark: b, Scale: sc,
				Mode: mode, Policy: cfg.policy})
		}
	}
	if err := reqs.run(r); err != nil {
		return nil, err
	}
	sums := map[string][]float64{}
	for _, b := range Benchmarks {
		base := reqs.get("base/" + b)
		row := []any{b, base.IPC}
		f.set("baseIPC/"+b, base.IPC)
		for _, cfg := range policyMatrixConfigs {
			sp := Speedup(base, reqs.get(cfg.key+"/"+b))
			row = append(row, sp)
			f.set(fmt.Sprintf("%s/%s", b, cfg.key), sp)
			sums[cfg.key] = append(sums[cfg.key], sp)
		}
		f.Table.AddRow(row...)
	}
	hrow := []any{"hmean", ""}
	for _, cfg := range policyMatrixConfigs {
		hm := stats.HarmonicMeanSpeedup(sums[cfg.key])
		hrow = append(hrow, hm)
		f.set("hmean/"+cfg.key, hm)
	}
	f.Table.AddRow(hrow...)
	f.Notes = "partial/throttle commit the same instructions as the baseline; only selective changes the fetch stream"
	f.addNote(scaleNote(scaleDelta))
	return f, nil
}
