package blp

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// TestTraceReplayEquivalence is the API-level pin of the replay
// contract: a run fed from a captured trace returns a Result
// byte-identical to a live run, for both the baseline and the
// selective-flush binary.
func TestTraceReplayEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, mode := range []SliceMode{SliceNone, SliceOuter} {
		o := Options{Benchmark: "cc", Scale: 6, Mode: mode}

		live, err := RunContext(ctx, o)
		if err != nil {
			t.Fatalf("live run (%v): %v", mode, err)
		}
		tr, err := captureTrace(ctx, o.normalized())
		if err != nil {
			t.Fatalf("capture (%v): %v", mode, err)
		}
		rep, err := runContext(ctx, o, tr)
		if err != nil {
			t.Fatalf("replayed run (%v): %v", mode, err)
		}
		if !reflect.DeepEqual(rep, live) {
			t.Errorf("replayed result diverges from live run (%v):\nlive   %+v\nreplay %+v",
				mode, live, rep)
		}
	}
}

// TestRunnerTraceSweep drives a multi-configuration timing sweep over
// one workload through the Runner and checks the trace-once/
// simulate-many accounting: one capture, every simulation replayed, so
// the functional emulator ran once instead of once per configuration.
func TestRunnerTraceSweep(t *testing.T) {
	base := Options{Benchmark: "cc", Scale: 6, Mode: SliceOuter}
	sweep := []Options{
		base,
		{Benchmark: "cc", Scale: 6, Mode: SliceOuter, Predictor: "oracle"},
		{Benchmark: "cc", Scale: 6, Mode: SliceOuter, FRQSize: 2},
		{Benchmark: "cc", Scale: 6, Mode: SliceOuter, ROBBlockSize: 4},
		{Benchmark: "cc", Scale: 6, Mode: SliceOuter, Reserve: 16},
		{Benchmark: "cc", Scale: 6, Mode: SliceOuter, WrongPathMemAccess: true},
	}
	for _, o := range sweep {
		if o.TraceKey() != base.TraceKey() {
			t.Fatalf("timing knob leaked into TraceKey: %q vs %q", o.TraceKey(), base.TraceKey())
		}
		if o != base && o.Key() == base.Key() {
			t.Fatalf("distinct timing configs share a Key: %q", o.Key())
		}
	}

	r := NewRunner(2)
	res, err := r.RunAll(sweep)
	if err != nil {
		t.Fatal(err)
	}

	st := r.Stats()
	if st.Simulated != len(sweep) || st.Captured != 1 || st.Replayed != len(sweep) {
		t.Fatalf("sweep accounting: %+v; want Simulated=%d Captured=1 Replayed=%d",
			st, len(sweep), len(sweep))
	}
	// The headline claim: the emulator executed Simulated-Replayed+
	// Captured times — at least 2x fewer than the number of simulations.
	emuExecs := st.Simulated - st.Replayed + st.Captured
	if emuExecs*2 > st.Simulated {
		t.Fatalf("emulator ran %d times for %d simulations; want >= 2x reduction",
			emuExecs, st.Simulated)
	}

	cs := r.CacheStats()
	if cs.Trace.Misses != 1 || cs.Trace.Hits+cs.Trace.Joined != int64(len(sweep)-1) {
		t.Fatalf("trace cache: %+v; want 1 miss, %d hits+joined", cs.Trace, len(sweep)-1)
	}
	if cs.Trace.Entries != 1 || cs.Trace.Bytes <= 0 {
		t.Fatalf("trace cache resident set: %+v", cs.Trace)
	}

	// Each sweep point must equal its unmemoized, live-emulated run.
	for i := range []int{0, 1} {
		live, err := Run(sweep[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res[i], live) {
			t.Errorf("sweep[%d] result diverges from live run", i)
		}
	}
}

// TestRunnerCapturePolicy pins the reuse gating on the single-run path:
// a workload simulated once stays on the live emulator (capturing costs
// a separate functional pass and cache residency that a one-shot run
// never earns back), the second distinct timing configuration of the
// same workload captures and replays, and the third replays from the
// resident trace.
func TestRunnerCapturePolicy(t *testing.T) {
	r := NewRunner(2)
	seq := []Options{
		{Benchmark: "cc", Scale: 6, Mode: SliceOuter},
		{Benchmark: "cc", Scale: 6, Mode: SliceOuter, Predictor: "oracle"},
		{Benchmark: "cc", Scale: 6, Mode: SliceOuter, FRQSize: 2},
	}
	want := []RunnerStats{
		{Simulated: 1, Captured: 0, Replayed: 0},
		{Simulated: 2, Captured: 1, Replayed: 1},
		{Simulated: 3, Captured: 1, Replayed: 2},
	}
	for i, o := range seq {
		if _, err := r.Run(o); err != nil {
			t.Fatal(err)
		}
		st := r.Stats()
		st.Cached, st.InFlight = 0, 0
		if st != want[i] {
			t.Fatalf("after run %d: %+v, want %+v", i, st, want[i])
		}
	}
}

// TestRunnerReplayIneligible pins the gating: SMT and independence-
// checking runs bypass the trace path entirely and still work.
func TestRunnerReplayIneligible(t *testing.T) {
	r := NewRunner(2)
	opts := []Options{
		{Benchmark: "cc", Scale: 6, SMT: 2},
		{Benchmark: "cc", Scale: 6, CheckIndependence: true},
	}
	if _, err := r.RunAll(opts); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Captured != 0 || st.Replayed != 0 {
		t.Fatalf("ineligible runs used the trace path: %+v", st)
	}
	if tc := r.CacheStats().Trace; tc.Misses != 0 {
		t.Fatalf("ineligible runs touched the trace cache: %+v", tc)
	}
}

// TestTraceKeyVersioned pins the invalidation lever: the trace cache key
// embeds the capture/replay format version.
func TestTraceKeyVersioned(t *testing.T) {
	k := Options{Benchmark: "bfs"}.TraceKey()
	if !strings.HasPrefix(k, "trace/v") {
		t.Fatalf("TraceKey %q lacks the version stamp", k)
	}
}
