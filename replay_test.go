package blp

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// TestTraceReplayEquivalence is the API-level pin of the replay
// contract: a run fed from a captured trace returns a Result
// byte-identical to a live run, for both the baseline and the
// selective-flush binary.
func TestTraceReplayEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, mode := range []SliceMode{SliceNone, SliceOuter} {
		o := Options{Benchmark: "cc", Scale: 6, Mode: mode}

		live, err := RunContext(ctx, o)
		if err != nil {
			t.Fatalf("live run (%v): %v", mode, err)
		}
		tr, err := captureTrace(ctx, o.normalized())
		if err != nil {
			t.Fatalf("capture (%v): %v", mode, err)
		}
		rep, err := runContext(ctx, o, tr)
		if err != nil {
			t.Fatalf("replayed run (%v): %v", mode, err)
		}
		if !reflect.DeepEqual(rep, live) {
			t.Errorf("replayed result diverges from live run (%v):\nlive   %+v\nreplay %+v",
				mode, live, rep)
		}
	}
}

// TestRunnerTraceSweep drives a multi-configuration timing sweep over
// one workload through the Runner and checks the trace-once/
// simulate-many accounting: one capture, every simulation replayed, so
// the functional emulator ran once instead of once per configuration.
func TestRunnerTraceSweep(t *testing.T) {
	base := Options{Benchmark: "cc", Scale: 6, Mode: SliceOuter}
	sweep := []Options{
		base,
		{Benchmark: "cc", Scale: 6, Mode: SliceOuter, Predictor: "oracle"},
		{Benchmark: "cc", Scale: 6, Mode: SliceOuter, FRQSize: 2},
		{Benchmark: "cc", Scale: 6, Mode: SliceOuter, ROBBlockSize: 4},
		{Benchmark: "cc", Scale: 6, Mode: SliceOuter, Reserve: 16},
		{Benchmark: "cc", Scale: 6, Mode: SliceOuter, WrongPathMemAccess: true},
	}
	for _, o := range sweep {
		if o.TraceKey() != base.TraceKey() {
			t.Fatalf("timing knob leaked into TraceKey: %q vs %q", o.TraceKey(), base.TraceKey())
		}
		if o != base && o.Key() == base.Key() {
			t.Fatalf("distinct timing configs share a Key: %q", o.Key())
		}
	}

	r := NewRunner(2)
	res, err := r.RunAll(sweep)
	if err != nil {
		t.Fatal(err)
	}

	st := r.Stats()
	if st.Simulated != len(sweep) || st.Captured != 1 || st.Replayed != len(sweep) {
		t.Fatalf("sweep accounting: %+v; want Simulated=%d Captured=1 Replayed=%d",
			st, len(sweep), len(sweep))
	}
	// The headline claim: the emulator executed Simulated-Replayed+
	// Captured times — at least 2x fewer than the number of simulations.
	emuExecs := st.Simulated - st.Replayed + st.Captured
	if emuExecs*2 > st.Simulated {
		t.Fatalf("emulator ran %d times for %d simulations; want >= 2x reduction",
			emuExecs, st.Simulated)
	}
	// The distinct configurations of one workload ran as a single batch
	// group sharing the trace decode and the wrong-path segment cache.
	if st.Batched != len(sweep) || st.BatchGroups != 1 {
		t.Fatalf("batch accounting: %+v; want Batched=%d BatchGroups=1", st, len(sweep))
	}
	if h := r.BatchHistogram(); h[len(sweep)] != 1 || len(h) != 1 {
		t.Fatalf("batch histogram %v; want {%d:1}", h, len(sweep))
	}
	if st.SegMisses == 0 || st.SegHits == 0 {
		t.Fatalf("segment cache never exercised across lanes: %+v", st)
	}

	// The whole group fetched its trace through one singleflight call, so
	// the trace cache records a single miss and no per-lane re-requests.
	cs := r.CacheStats()
	if cs.Trace.Misses != 1 || cs.Trace.Hits+cs.Trace.Joined != 0 {
		t.Fatalf("trace cache: %+v; want 1 miss, 0 hits+joined", cs.Trace)
	}
	if cs.Trace.Entries != 1 || cs.Trace.Bytes <= 0 {
		t.Fatalf("trace cache resident set: %+v", cs.Trace)
	}

	// Each sweep point must equal its unmemoized, live-emulated run.
	for i := range []int{0, 1} {
		live, err := Run(sweep[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res[i], live) {
			t.Errorf("sweep[%d] result diverges from live run", i)
		}
	}
}

// TestRunnerCapturePolicy pins the reuse gating on the single-run path:
// a workload simulated once stays on the live emulator (capturing costs
// a separate functional pass and cache residency that a one-shot run
// never earns back), the second distinct timing configuration of the
// same workload captures and replays, and the third replays from the
// resident trace.
func TestRunnerCapturePolicy(t *testing.T) {
	r := NewRunner(2)
	seq := []Options{
		{Benchmark: "cc", Scale: 6, Mode: SliceOuter},
		{Benchmark: "cc", Scale: 6, Mode: SliceOuter, Predictor: "oracle"},
		{Benchmark: "cc", Scale: 6, Mode: SliceOuter, FRQSize: 2},
	}
	want := []RunnerStats{
		{Simulated: 1, Captured: 0, Replayed: 0},
		{Simulated: 2, Captured: 1, Replayed: 1},
		{Simulated: 3, Captured: 1, Replayed: 2},
	}
	for i, o := range seq {
		if _, err := r.Run(o); err != nil {
			t.Fatal(err)
		}
		st := r.Stats()
		st.Cached, st.InFlight = 0, 0
		// Segment-cache counters are a property of the replays' wrong-path
		// forks, not of the capture policy under test here.
		st.SegHits, st.SegMisses, st.SegInvalidated = 0, 0, 0
		if st != want[i] {
			t.Fatalf("after run %d: %+v, want %+v", i, st, want[i])
		}
	}
}

// TestRunnerReplayIneligible pins the gating: SMT and independence-
// checking runs bypass the trace path entirely and still work.
func TestRunnerReplayIneligible(t *testing.T) {
	r := NewRunner(2)
	opts := []Options{
		{Benchmark: "cc", Scale: 6, SMT: 2},
		{Benchmark: "cc", Scale: 6, CheckIndependence: true},
	}
	if _, err := r.RunAll(opts); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Captured != 0 || st.Replayed != 0 {
		t.Fatalf("ineligible runs used the trace path: %+v", st)
	}
	if tc := r.CacheStats().Trace; tc.Misses != 0 {
		t.Fatalf("ineligible runs touched the trace cache: %+v", tc)
	}
}

// TestTraceKeyVersioned pins the invalidation lever: the trace cache key
// embeds the capture/replay format version.
func TestTraceKeyVersioned(t *testing.T) {
	k := Options{Benchmark: "bfs"}.TraceKey()
	if !strings.HasPrefix(k, "trace/v") {
		t.Fatalf("TraceKey %q lacks the version stamp", k)
	}
}

// TestBatchedSweepMatchesSerialReplay pins byte-identity at the API
// layer: every lane of a batched Runner sweep must equal a serial
// replayed run of the same options against an independently captured
// trace with no segment cache attached — so the batch path (shared
// decode ring, memoized wrong-path segments, lockstep scheduling) is
// compared end to end against the plain live-shadow replay path.
func TestBatchedSweepMatchesSerialReplay(t *testing.T) {
	ctx := context.Background()
	sweep := []Options{
		{Benchmark: "cc", Scale: 6, Mode: SliceOuter},
		{Benchmark: "cc", Scale: 6, Mode: SliceOuter, Predictor: "oracle"},
		{Benchmark: "cc", Scale: 6, Mode: SliceOuter, FRQSize: 2},
		{Benchmark: "cc", Scale: 6, Mode: SliceOuter, ROBBlockSize: 4},
		{Benchmark: "cc", Scale: 6, Mode: SliceOuter, Reserve: 16},
		{Benchmark: "cc", Scale: 6, Mode: SliceOuter, WrongPathMemAccess: true},
	}
	r := NewRunner(3)
	res, err := r.RunAll(sweep)
	if err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Batched != len(sweep) {
		t.Fatalf("sweep did not take the batch path: %+v", st)
	}

	tr, err := captureTrace(ctx, sweep[0].normalized())
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range sweep {
		want, err := runContext(ctx, o, tr)
		if err != nil {
			t.Fatalf("serial replay of sweep[%d]: %v", i, err)
		}
		if !reflect.DeepEqual(res[i], want) {
			t.Errorf("batched sweep[%d] diverges from serial replay:\nserial %+v\nbatch  %+v",
				i, want.Stats, res[i].Stats)
		}
	}
}
