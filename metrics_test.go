package blp

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
)

// The metrics report must survive a JSON round trip: table cells intact,
// values at full float precision, and NaN (a legitimate "unmeasurable"
// marker, e.g. Speedup against a zero-cycle run) mapped through null
// rather than crashing the encoder.
func TestReportJSONRoundTrip(t *testing.T) {
	f := &Figure{
		ID:    "figX",
		Title: "round-trip fixture",
		Table: stats.NewTable("bench", "speedup"),
		Notes: "fixture",
	}
	f.Table.AddRow("bfs", 1.2345678)
	f.Table.AddRow("pr", "-")
	f.set("bfs", 1.2345678)
	f.set("pr", math.NaN())

	var buf bytes.Buffer
	if err := NewReport(f).WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}

	var got Report
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("round trip failed to parse: %v", err)
	}
	if got.SchemaVersion != MetricsSchemaVersion {
		t.Fatalf("schema_version = %d, want %d", got.SchemaVersion, MetricsSchemaVersion)
	}
	if len(got.Figures) != 1 {
		t.Fatalf("got %d figures, want 1", len(got.Figures))
	}
	fm := got.Figures[0]
	if fm.ID != "figX" || fm.Title != "round-trip fixture" || fm.Notes != "fixture" {
		t.Fatalf("figure metadata mangled: %+v", fm)
	}
	if len(fm.Header) != 2 || fm.Header[0] != "bench" {
		t.Fatalf("header mangled: %v", fm.Header)
	}
	if len(fm.Rows) != 2 || fm.Rows[0][1] != "1.235" || fm.Rows[1][1] != "-" {
		t.Fatalf("rows mangled: %v", fm.Rows)
	}
	if float64(fm.Values["bfs"]) != 1.2345678 {
		t.Fatalf("value lost precision: %v", fm.Values["bfs"])
	}
	if !math.IsNaN(float64(fm.Values["pr"])) {
		t.Fatalf("NaN value did not round-trip via null: %v", fm.Values["pr"])
	}
	if !strings.Contains(buf.String(), `"pr": null`) {
		t.Fatalf("NaN not encoded as null:\n%s", buf.String())
	}
}

func TestMetricMarshalEdgeCases(t *testing.T) {
	for _, v := range []float64{math.Inf(1), math.Inf(-1), math.NaN()} {
		b, err := json.Marshal(Metric(v))
		if err != nil {
			t.Fatalf("Metric(%v): %v", v, err)
		}
		if string(b) != "null" {
			t.Fatalf("Metric(%v) = %s, want null", v, b)
		}
	}
	b, err := json.Marshal(Metric(2.5))
	if err != nil || string(b) != "2.5" {
		t.Fatalf("Metric(2.5) = %s, %v", b, err)
	}
}

// A run with the flight recorder attached must produce the same Result as
// one without (the recorder is observation only — its Options field is
// excluded from the memoization key for the same reason), and the Chrome
// trace it exports must contain the selective-flush mechanism events.
func TestFlightRecorderNeutralAndTraces(t *testing.T) {
	o := Options{Benchmark: "bfs", Scale: 6, Mode: SliceOuter}
	base, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}

	rec := &FlightRecorder{Interval: 100, TraceUops: true}
	or := o
	or.Flight = rec
	res, err := Run(or)
	if err != nil {
		t.Fatal(err)
	}

	if res.Cycles != base.Cycles {
		t.Fatalf("recorder changed timing: %d vs %d cycles", res.Cycles, base.Cycles)
	}
	if res.Stats != base.Stats {
		t.Fatalf("recorder changed stats:\n%+v\n%+v", res.Stats, base.Stats)
	}
	if o.Key() != or.Key() {
		t.Fatal("Flight must be excluded from the canonical key")
	}

	var trace bytes.Buffer
	if err := rec.WriteChromeTrace(&trace); err != nil {
		t.Fatal(err)
	}
	s := trace.String()
	for _, want := range []string{`"sf-unlink"`, `"sf-splice"`, `"recover-selective"`, `"traceEvents"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("trace missing %s", want)
		}
	}
	var parsed map[string]any
	if err := json.Unmarshal(trace.Bytes(), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	var csv bytes.Buffer
	if err := rec.WriteTimelineCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csv.String(), "\n"); lines < 2 {
		t.Fatalf("timeline CSV has %d lines, want header plus samples", lines)
	}
}
