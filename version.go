package blp

import (
	"crypto/sha256"
	"embed"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
)

// goldenFiles embeds the committed golden outputs — the repository's
// executable definition of "what the simulator computes". Any PR that
// changes simulator behavior regenerates these files (golden_test.go
// fails otherwise), so their content doubles as a behavior fingerprint.
//
//go:embed testdata/table1.golden testdata/fig4-minscale.golden
var goldenFiles embed.FS

// resultSchema versions the persisted encoding of Result itself (the
// gob stream the durable store holds). Bump it when Result gains,
// loses, or re-types fields in a way the goldens would not notice —
// goldens print derived metrics, not the full struct.
const resultSchema = 2

var behaviorVersion = sync.OnceValue(computeBehaviorVersion)

// BehaviorVersion returns the simulator-behavior version stamp: a short
// hex digest over the embedded golden files plus the persisted-result
// schema. It is the version every durable-store object is stamped with
// (see internal/store), so a behavior-changing PR — which necessarily
// updates the goldens — silently invalidates all previously persisted
// results instead of serving numbers the current simulator would no
// longer produce. The stamp is deliberately derived from committed
// artifacts, not hand-bumped: forgetting to maintain it is impossible.
func BehaviorVersion() string { return behaviorVersion() }

func computeBehaviorVersion() string {
	entries, err := goldenFiles.ReadDir("testdata")
	if err != nil {
		panic(fmt.Sprintf("blp: embedded goldens: %v", err)) // impossible: embed is static
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	h := sha256.New()
	fmt.Fprintf(h, "result-schema %d\n", resultSchema)
	for _, name := range names {
		data, err := goldenFiles.ReadFile("testdata/" + name)
		if err != nil {
			panic(fmt.Sprintf("blp: embedded golden %s: %v", name, err))
		}
		fmt.Fprintf(h, "%s %d\n", name, len(data))
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}
