package blp

import (
	"reflect"
	"testing"
)

// TestKeyCoversEveryField walks Options by reflection and requires each
// field to land in exactly one of two camps:
//
//   - simulation-identity fields: perturbing the field changes Key(),
//     so two different simulations can never share a cache entry;
//   - output-only fields (TraceEvents, Flight): explicitly zeroed in
//     Key(), so attaching a recorder or tracing does not defeat
//     memoization.
//
// This is the guard a new Options field cannot slip past: forget to
// either include it in the identity or zero it in Key() and this test
// names it. Reference-kind fields additionally must be output-only —
// Key renders the struct with %+v, which formats pointers as addresses,
// and an address is not a canonical identity.
func TestKeyCoversEveryField(t *testing.T) {
	// Output-only fields, zeroed in Key (keep in sync with Options.Key).
	outputOnly := map[string]bool{
		"TraceEvents": true,
		"Flight":      true,
	}

	base := Options{Benchmark: "cc", Scale: 6}
	baseKey := base.Key()
	rt := reflect.TypeOf(Options{})
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		switch f.Type.Kind() {
		case reflect.Pointer, reflect.Slice, reflect.Map, reflect.Func, reflect.Chan, reflect.Interface:
			if !outputOnly[f.Name] {
				t.Errorf("field %s is reference-kind: %%+v would render an address into Key; "+
					"either make it a value or zero it in Key() and list it here", f.Name)
				continue
			}
		}

		o := base
		fv := reflect.ValueOf(&o).Elem().Field(i)
		// Perturb with values no normalized() default resolves to, so the
		// canonicalization cannot mask the change.
		switch f.Type.Kind() {
		case reflect.String:
			fv.SetString("perturbed")
		case reflect.Int, reflect.Int64:
			fv.SetInt(7)
		case reflect.Uint64:
			fv.SetUint(9)
		case reflect.Bool:
			fv.SetBool(true)
		case reflect.Pointer:
			fv.Set(reflect.New(f.Type.Elem()))
		default:
			t.Errorf("field %s has kind %v this test does not know how to perturb; extend it",
				f.Name, f.Type.Kind())
			continue
		}

		changed := o.Key() != baseKey
		if outputOnly[f.Name] && changed {
			t.Errorf("output-only field %s leaked into Key()", f.Name)
		}
		if !outputOnly[f.Name] && !changed {
			t.Errorf("field %s does not affect Key(): two different simulations would share a cache entry",
				f.Name)
		}
	}
}

// TestTraceKeyCoversExactlyWorkloadFields is the TraceKey twin of the Key
// coverage walk: every Options field must either determine the committed
// instruction stream (and therefore change TraceKey when perturbed) or be
// a pure timing/output knob (and leave TraceKey alone, so one captured
// trace serves every setting of it). A new field that lands in neither
// camp — or in the wrong one — is named here. Policy is the canonical
// timing knob: selective, conventional, partial, and throttle machines
// all replay the same captured trace.
func TestTraceKeyCoversExactlyWorkloadFields(t *testing.T) {
	// Fields that determine the functional execution (keep in sync with
	// Options.TraceKey).
	workload := map[string]bool{
		"Benchmark": true,
		"Mode":      true,
		"Scale":     true,
		"Degree":    true,
		"Seed":      true,
		"Cores":     true, // thread count changes the interleaving
		"SMT":       true,
		"PRIters":   true,
	}

	base := Options{Benchmark: "cc", Scale: 6}
	baseKey := base.TraceKey()
	rt := reflect.TypeOf(Options{})
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		o := base
		fv := reflect.ValueOf(&o).Elem().Field(i)
		// Values no normalized() default resolves to (see the Key walk).
		switch f.Type.Kind() {
		case reflect.String:
			fv.SetString("perturbed")
		case reflect.Int, reflect.Int64:
			fv.SetInt(7)
		case reflect.Uint64:
			fv.SetUint(9)
		case reflect.Bool:
			fv.SetBool(true)
		case reflect.Pointer:
			fv.Set(reflect.New(f.Type.Elem()))
		default:
			t.Errorf("field %s has kind %v this test does not know how to perturb; extend it",
				f.Name, f.Type.Kind())
			continue
		}

		changed := o.TraceKey() != baseKey
		if workload[f.Name] && !changed {
			t.Errorf("workload field %s does not affect TraceKey(): two different executions would share a trace",
				f.Name)
		}
		if !workload[f.Name] && changed {
			t.Errorf("timing/output field %s leaked into TraceKey(): it would defeat trace-once/simulate-many",
				f.Name)
		}
	}
}
