package blp

import (
	"reflect"
	"testing"
)

// TestKeyCoversEveryField walks Options by reflection and requires each
// field to land in exactly one of two camps:
//
//   - simulation-identity fields: perturbing the field changes Key(),
//     so two different simulations can never share a cache entry;
//   - output-only fields (TraceEvents, Flight): explicitly zeroed in
//     Key(), so attaching a recorder or tracing does not defeat
//     memoization.
//
// This is the guard a new Options field cannot slip past: forget to
// either include it in the identity or zero it in Key() and this test
// names it. Reference-kind fields additionally must be output-only —
// Key renders the struct with %+v, which formats pointers as addresses,
// and an address is not a canonical identity.
func TestKeyCoversEveryField(t *testing.T) {
	// Output-only fields, zeroed in Key (keep in sync with Options.Key).
	outputOnly := map[string]bool{
		"TraceEvents": true,
		"Flight":      true,
	}

	base := Options{Benchmark: "cc", Scale: 6}
	baseKey := base.Key()
	rt := reflect.TypeOf(Options{})
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		switch f.Type.Kind() {
		case reflect.Pointer, reflect.Slice, reflect.Map, reflect.Func, reflect.Chan, reflect.Interface:
			if !outputOnly[f.Name] {
				t.Errorf("field %s is reference-kind: %%+v would render an address into Key; "+
					"either make it a value or zero it in Key() and list it here", f.Name)
				continue
			}
		}

		o := base
		fv := reflect.ValueOf(&o).Elem().Field(i)
		// Perturb with values no normalized() default resolves to, so the
		// canonicalization cannot mask the change.
		switch f.Type.Kind() {
		case reflect.String:
			fv.SetString("perturbed")
		case reflect.Int, reflect.Int64:
			fv.SetInt(7)
		case reflect.Uint64:
			fv.SetUint(9)
		case reflect.Bool:
			fv.SetBool(true)
		case reflect.Pointer:
			fv.Set(reflect.New(f.Type.Elem()))
		default:
			t.Errorf("field %s has kind %v this test does not know how to perturb; extend it",
				f.Name, f.Type.Kind())
			continue
		}

		changed := o.Key() != baseKey
		if outputOnly[f.Name] && changed {
			t.Errorf("output-only field %s leaked into Key()", f.Name)
		}
		if !outputOnly[f.Name] && !changed {
			t.Errorf("field %s does not affect Key(): two different simulations would share a cache entry",
				f.Name)
		}
	}
}
