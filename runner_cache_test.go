package blp

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
)

// A long sweep of distinct configurations must not grow the Runner's
// memory monotonically: the result cache is byte-budgeted and evicts
// LRU-first. Before PR 5 the memoization map retained every result
// forever. Uses the runFn seam so 500 "simulations" with deliberately
// fat per-core stats cost no sim time.
func TestRunnerCacheBounded(t *testing.T) {
	const budget = 256 << 10
	r := NewRunnerCache(2, budget)
	r.runFn = func(o Options) (*Result, error) {
		// ~3.5 KB per result (PerCore dominates via resultCost).
		return &Result{Cycles: 1, PerCore: make([]core.Stats, 8)}, nil
	}

	first := Options{Benchmark: "cc", Scale: 6, Seed: 1}
	for seed := uint64(1); seed <= 500; seed++ {
		if _, err := r.Run(Options{Benchmark: "cc", Scale: 6, Seed: seed}); err != nil {
			t.Fatal(err)
		}
		if cs := r.CacheStats(); cs.Bytes > budget {
			t.Fatalf("resident cache %d bytes exceeds budget %d after seed %d",
				cs.Bytes, budget, seed)
		}
	}
	cs := r.CacheStats()
	if cs.Evictions == 0 {
		t.Fatal("500 distinct results under a 256 KiB budget caused no evictions")
	}
	if cs.Entries >= 500 {
		t.Fatalf("all %d results retained: cache is unbounded", cs.Entries)
	}
	if cs.Budget != budget {
		t.Fatalf("reported budget %d, want %d", cs.Budget, budget)
	}

	// The earliest key was evicted, so re-requesting it re-simulates —
	// the flip side of boundedness.
	before := r.Stats().Simulated
	if _, err := r.Run(first); err != nil {
		t.Fatal(err)
	}
	if after := r.Stats().Simulated; after != before+1 {
		t.Fatalf("evicted key did not re-simulate (simulated %d -> %d)", before, after)
	}
}

// An unbounded cache (budget <= 0) keeps the pre-PR-5 retain-everything
// behaviour for callers that want it.
func TestRunnerCacheUnbounded(t *testing.T) {
	r := NewRunnerCache(2, 0)
	r.runFn = func(o Options) (*Result, error) {
		return &Result{Cycles: 1, PerCore: make([]core.Stats, 8)}, nil
	}
	for seed := uint64(1); seed <= 200; seed++ {
		if _, err := r.Run(Options{Benchmark: "cc", Scale: 6, Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
	cs := r.CacheStats()
	if cs.Entries != 200 || cs.Evictions != 0 {
		t.Fatalf("unbounded cache evicted: %+v", cs)
	}
}

// Runner.RunContext must honor cancellation mid-simulation: before PR 5 a
// canceled caller still burned a worker slot until the sim finished. The
// deliberately slow config (merge sort at scale 15 runs for several
// seconds; tens of seconds under -race) must return within a couple of
// seconds of the cancel, with an error identifying the context, and the
// canceled result must not be cached.
func TestRunContextCancelMidSimulation(t *testing.T) {
	slow := Options{Benchmark: "ms", Scale: 15}
	r := NewRunner(1)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := r.RunContext(ctx, slow)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Generous bound: cancellation latency is ~1k driver iterations, so
	// even race-instrumented runs return well under this; an un-honored
	// cancel runs the full multi-second simulation and trips it.
	if elapsed > 3*time.Second {
		t.Fatalf("cancel took %v — simulation ran to completion", elapsed)
	}
	if cs := r.CacheStats(); cs.Entries != 0 {
		t.Fatalf("canceled run was cached: %+v", cs)
	}

	// A canceled context short-circuits before simulating anything.
	before := r.Stats().Simulated
	if _, err := r.RunContext(ctx, Options{Benchmark: "cc", Scale: 6}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled ctx err = %v", err)
	}
	if r.Stats().Simulated != before {
		t.Fatal("pre-canceled request still simulated")
	}
}

// A duplicate request that joins an in-flight simulation detaches on its
// own cancellation while the leader's run completes and is cached.
func TestRunContextWaiterDetaches(t *testing.T) {
	r := NewRunner(1)
	release := make(chan struct{})
	started := make(chan struct{})
	r.runFn = func(o Options) (*Result, error) {
		close(started)
		<-release
		return &Result{Cycles: 42}, nil
	}
	o := Options{Benchmark: "cc", Scale: 6}
	leader := make(chan error, 1)
	go func() {
		_, err := r.Run(o)
		leader <- err
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	waiter := make(chan error, 1)
	go func() {
		_, err := r.RunContext(ctx, o)
		waiter <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-waiter:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled waiter stayed attached to the in-flight run")
	}
	close(release)
	if err := <-leader; err != nil {
		t.Fatalf("leader err = %v", err)
	}
	res, err := r.Run(o)
	if err != nil || res.Cycles != 42 {
		t.Fatalf("leader result not cached: %v, %v", res, err)
	}
	if s := r.Stats(); s.Simulated != 1 {
		t.Fatalf("simulated %d, want 1 (waiter must not re-run)", s.Simulated)
	}
}
