package blp

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
)

// A long sweep of distinct configurations must not grow the Runner's
// memory monotonically: the result cache is byte-budgeted and evicts
// LRU-first. Before PR 5 the memoization map retained every result
// forever. Uses the runFn seam so 500 "simulations" with deliberately
// fat per-core stats cost no sim time.
func TestRunnerCacheBounded(t *testing.T) {
	const budget = 256 << 10
	r := NewRunnerCache(2, budget)
	r.runFn = func(_ context.Context, o Options) (*Result, error) {
		// ~3.5 KB per result (PerCore dominates via resultCost).
		return &Result{Cycles: 1, PerCore: make([]core.Stats, 8)}, nil
	}

	first := Options{Benchmark: "cc", Scale: 6, Seed: 1}
	for seed := uint64(1); seed <= 500; seed++ {
		if _, err := r.Run(Options{Benchmark: "cc", Scale: 6, Seed: seed}); err != nil {
			t.Fatal(err)
		}
		if cs := r.CacheStats(); cs.Bytes > budget {
			t.Fatalf("resident cache %d bytes exceeds budget %d after seed %d",
				cs.Bytes, budget, seed)
		}
	}
	cs := r.CacheStats()
	if cs.Evictions == 0 {
		t.Fatal("500 distinct results under a 256 KiB budget caused no evictions")
	}
	if cs.Entries >= 500 {
		t.Fatalf("all %d results retained: cache is unbounded", cs.Entries)
	}
	if cs.Budget != budget {
		t.Fatalf("reported budget %d, want %d", cs.Budget, budget)
	}

	// The earliest key was evicted, so re-requesting it re-simulates —
	// the flip side of boundedness.
	before := r.Stats().Simulated
	if _, err := r.Run(first); err != nil {
		t.Fatal(err)
	}
	if after := r.Stats().Simulated; after != before+1 {
		t.Fatalf("evicted key did not re-simulate (simulated %d -> %d)", before, after)
	}
}

// An unbounded cache (budget <= 0) keeps the pre-PR-5 retain-everything
// behaviour for callers that want it.
func TestRunnerCacheUnbounded(t *testing.T) {
	r := NewRunnerCache(2, 0)
	r.runFn = func(_ context.Context, o Options) (*Result, error) {
		return &Result{Cycles: 1, PerCore: make([]core.Stats, 8)}, nil
	}
	for seed := uint64(1); seed <= 200; seed++ {
		if _, err := r.Run(Options{Benchmark: "cc", Scale: 6, Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
	cs := r.CacheStats()
	if cs.Entries != 200 || cs.Evictions != 0 {
		t.Fatalf("unbounded cache evicted: %+v", cs)
	}
}

// Runner.RunContext must honor cancellation mid-simulation: before PR 5 a
// canceled caller still burned a worker slot until the sim finished. The
// deliberately slow config (merge sort at scale 15 runs for several
// seconds; tens of seconds under -race) must return within a couple of
// seconds of the cancel, with an error identifying the context, and the
// canceled result must not be cached.
func TestRunContextCancelMidSimulation(t *testing.T) {
	slow := Options{Benchmark: "ms", Scale: 15}
	r := NewRunner(1)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := r.RunContext(ctx, slow)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Generous bound: cancellation latency is ~1k driver iterations, so
	// even race-instrumented runs return well under this; an un-honored
	// cancel runs the full multi-second simulation and trips it.
	if elapsed > 3*time.Second {
		t.Fatalf("cancel took %v — simulation ran to completion", elapsed)
	}
	if cs := r.CacheStats(); cs.Entries != 0 {
		t.Fatalf("canceled run was cached: %+v", cs)
	}

	// A canceled context short-circuits before simulating anything.
	before := r.Stats().Simulated
	if _, err := r.RunContext(ctx, Options{Benchmark: "cc", Scale: 6}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled ctx err = %v", err)
	}
	if r.Stats().Simulated != before {
		t.Fatal("pre-canceled request still simulated")
	}
}

// A duplicate request that joins an in-flight simulation detaches on its
// own cancellation while the leader's run completes and is cached.
func TestRunContextWaiterDetaches(t *testing.T) {
	r := NewRunner(1)
	release := make(chan struct{})
	started := make(chan struct{})
	r.runFn = func(_ context.Context, o Options) (*Result, error) {
		close(started)
		<-release
		return &Result{Cycles: 42}, nil
	}
	o := Options{Benchmark: "cc", Scale: 6}
	leader := make(chan error, 1)
	go func() {
		_, err := r.Run(o)
		leader <- err
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	waiter := make(chan error, 1)
	go func() {
		_, err := r.RunContext(ctx, o)
		waiter <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-waiter:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled waiter stayed attached to the in-flight run")
	}
	close(release)
	if err := <-leader; err != nil {
		t.Fatalf("leader err = %v", err)
	}
	res, err := r.Run(o)
	if err != nil || res.Cycles != 42 {
		t.Fatalf("leader result not cached: %v, %v", res, err)
	}
	if s := r.Stats(); s.Simulated != 1 {
		t.Fatalf("simulated %d, want 1 (waiter must not re-run)", s.Simulated)
	}
}

// TestRunnerCacheHonestCost is the regression test for the resultCost
// undercount: the old estimate charged a result for its struct size
// plus len(PerCore) stats, ignoring heap payload the result actually
// pins — most simply the full backing array of an over-allocated
// PerCore slice. Each result below pins ~115 KB of backing array while
// presenting one visible element (~450 bytes to the old formula), so
// under the old accounting a 2 MiB budget would happily retain all 300
// results (~34 MiB resident). The honest cost keeps both the cache's
// own ledger and the process heap within a small multiple of the
// budget, measured by runtime.MemStats deltas across the churn.
// (Entries stay under the per-shard budget — an oversized entry is
// deliberately cached alone even over budget; see memo.New.)
func TestRunnerCacheHonestCost(t *testing.T) {
	const budget = 2 << 20
	const pinned = 256 // cap of each PerCore backing array, ~115 KB

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	r := NewRunnerCache(2, budget)
	r.runFn = func(_ context.Context, o Options) (*Result, error) {
		return &Result{Cycles: 1, PerCore: make([]core.Stats, 1, pinned)}, nil
	}
	for seed := uint64(1); seed <= 300; seed++ {
		if _, err := r.Run(Options{Benchmark: "cc", Scale: 6, Seed: seed}); err != nil {
			t.Fatal(err)
		}
		if cs := r.CacheStats(); cs.Bytes > budget {
			t.Fatalf("resident cache %d bytes exceeds budget %d after seed %d",
				cs.Bytes, budget, seed)
		}
	}
	if cs := r.CacheStats(); cs.Evictions == 0 {
		t.Fatal("fat results under a 2 MiB budget caused no evictions")
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	// Everything but the bounded resident set is garbage by now. Allow
	// generous slack for allocator and test-framework noise; the failure
	// mode being guarded against is ~60x over budget.
	if growth := int64(after.HeapAlloc) - int64(before.HeapAlloc); growth > 8*budget {
		t.Fatalf("heap grew %d bytes across churn; want <= %d (8x the %d budget)",
			growth, 8*budget, budget)
	}
}

// TestTraceCacheAccountsSegmentBytes is the accounting regression test
// for wrong-path segment residency: segments accrete on a trace after
// its cache insertion, so without repricing (memo.Cache.Reprice after
// every replayed run) the trace cache's ledger would keep charging the
// insert-time cost and the "bounded" budget would silently stop bounding
// resident replay state. After a batched sweep the ledger must equal the
// honest cost — record streams plus resident segment bytes.
func TestTraceCacheAccountsSegmentBytes(t *testing.T) {
	r := NewRunner(2)
	base := Options{Benchmark: "cc", Scale: 6, Mode: SliceOuter}
	sweep := []Options{
		base,
		{Benchmark: "cc", Scale: 6, Mode: SliceOuter, Predictor: "oracle"},
		{Benchmark: "cc", Scale: 6, Mode: SliceOuter, FRQSize: 2},
	}
	if _, err := r.RunAll(sweep); err != nil {
		t.Fatal(err)
	}
	tk := base.TraceKey()
	tr, ok := r.traces.Get(tk)
	if !ok {
		t.Fatal("trace not resident after the sweep")
	}
	segs := tr.SegBytes()
	if segs == 0 {
		t.Fatal("no wrong-path segments resident after a mispredicting sliced sweep")
	}
	tc := r.CacheStats().Trace
	if want := traceCost(tk, tr); tc.Bytes != want {
		t.Fatalf("trace cache ledger %d bytes, honest cost %d (of which %d segment bytes): repricing lost",
			tc.Bytes, want, segs)
	}
}
