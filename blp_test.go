package blp

import (
	"testing"

	"repro/internal/stats"
)

func TestRunSmall(t *testing.T) {
	base, err := Run(Options{Benchmark: "cc", Scale: 7, CheckIndependence: true})
	if err != nil {
		t.Fatal(err)
	}
	if base.Cycles == 0 || base.IPC <= 0 {
		t.Fatalf("empty result: %+v", base)
	}
	sl, err := Run(Options{Benchmark: "cc", Scale: 7, Mode: SliceOuter, CheckIndependence: true})
	if err != nil {
		t.Fatal(err)
	}
	if sl.Stats.SliceRecoveries == 0 {
		t.Fatal("selective flush never engaged")
	}
	if base.Stats.Committed != sl.Stats.Committed {
		t.Fatalf("committed mismatch: %d vs %d", base.Stats.Committed, sl.Stats.Committed)
	}
	if s := Speedup(base, sl); s <= 0 {
		t.Fatalf("speedup %f", s)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(Options{Benchmark: "nope"}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := Run(Options{Benchmark: "bfs", Mode: SliceInner}); err == nil {
		t.Fatal("inner slicing on bfs accepted (§6.1 forbids)")
	}
}

func TestBestMode(t *testing.T) {
	// The measured-best placements of this reproduction's Fig. 4 (the
	// paper's own "test a few options" prescription; see experiments.go
	// for where they differ from the paper's picks).
	if BestMode("sssp") != SliceInner || BestMode("bc") != SliceInner {
		t.Fatal("sssp/bc best mode should be inner")
	}
	if BestMode("cc") != SliceOuter || BestMode("ms") != SliceOuter {
		t.Fatal("cc/ms best mode should be outer")
	}
}

func TestBenchmarksComplete(t *testing.T) {
	want := map[string]bool{"bc": true, "bfs": true, "cc": true, "pr": true,
		"sssp": true, "tc": true, "ms": true}
	if len(Benchmarks) != len(want) {
		t.Fatalf("benchmarks = %v", Benchmarks)
	}
	for _, b := range Benchmarks {
		if !want[b] {
			t.Fatalf("unexpected benchmark %q", b)
		}
		if DefaultScale(b) < 6 {
			t.Fatalf("%s default scale %d", b, DefaultScale(b))
		}
	}
}

func TestTable1Renders(t *testing.T) {
	f := Table1()
	if f.Table == nil || f.ID != "table1" {
		t.Fatal("table1 malformed")
	}
	if len(f.String()) < 100 {
		t.Fatal("table1 suspiciously short")
	}
}

// TestFigureHarnessTiny runs the lightest figure end-to-end at a small
// scale to keep the experiment plumbing covered by `go test`.
func TestFigureHarnessTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	f, err := Fig7(-6, []int{8}) // tiny inputs (scales clamp at 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Values) == 0 {
		t.Fatal("no values recorded")
	}
	for k, v := range f.Values {
		if v <= 0 {
			t.Fatalf("non-positive speedup %s=%f", k, v)
		}
	}
}

func TestScaledClamp(t *testing.T) {
	if s := scaled("ms", -100); s != 6 {
		t.Fatalf("scale clamp = %d", s)
	}
	_ = stats.HarmonicMeanSpeedup // keep the dependency explicit
}
