package frq

import (
	"testing"
	"testing/quick"
)

func TestFIFOOrder(t *testing.T) {
	q := New[int](4)
	for i := 1; i <= 4; i++ {
		if !q.Push(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if q.Push(5) {
		t.Fatal("push into full queue succeeded")
	}
	if !q.Full() || q.Len() != 4 || q.Peak() != 4 {
		t.Fatalf("state: len=%d full=%v peak=%d", q.Len(), q.Full(), q.Peak())
	}
	for i := 1; i <= 4; i++ {
		h, ok := q.Head()
		if !ok || h != i {
			t.Fatalf("head = %d, want %d", h, i)
		}
		q.Pop()
	}
	if _, ok := q.Head(); ok {
		t.Fatal("head of empty queue")
	}
}

func TestPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New[int](2).Pop()
}

func TestSquash(t *testing.T) {
	q := New[int](8)
	for i := 0; i < 6; i++ {
		q.Push(i)
	}
	removed := q.Squash(func(v int) bool { return v >= 3 })
	if removed != 3 || q.Len() != 3 {
		t.Fatalf("squash removed %d, len %d", removed, q.Len())
	}
	for want := 0; want < 3; want++ {
		h, _ := q.Head()
		if h != want {
			t.Fatalf("order broken after squash: %d", h)
		}
		q.Pop()
	}
}

func TestMinCapacity(t *testing.T) {
	q := New[int](0)
	if !q.Push(1) {
		t.Fatal("capacity clamp failed")
	}
	if q.Push(2) {
		t.Fatal("clamped capacity should be 1")
	}
}

// TestQueueQuick compares against a slice model under random push, pop,
// and squash operations.
func TestQueueQuick(t *testing.T) {
	f := func(ops []uint8) bool {
		q := New[int](8)
		var model []int
		next := 0
		for _, op := range ops {
			switch op % 3 {
			case 0:
				ok := q.Push(next)
				if ok != (len(model) < 8) {
					return false
				}
				if ok {
					model = append(model, next)
				}
				next++
			case 1:
				if len(model) > 0 {
					h, ok := q.Head()
					if !ok || h != model[0] {
						return false
					}
					q.Pop()
					model = model[1:]
				}
			case 2:
				pred := func(v int) bool { return v%3 == 0 }
				q.Squash(pred)
				kept := model[:0]
				for _, v := range model {
					if !pred(v) {
						kept = append(kept, v)
					}
				}
				model = kept
			}
			if q.Len() != len(model) {
				return false
			}
			for i, v := range q.All() {
				if v != model[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
