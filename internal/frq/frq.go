// Package frq implements the fetch redirect queue of paper §4.6: a FIFO
// of pending in-slice branch misses that must have their correct paths
// fetched before regular fetch resumes at the regular-fetch checkpoint.
//
// Each entry carries the core-specific payload E (branch ROB entry,
// correct-path PC, rename checkpoint). The queue is bounded; when full,
// new misses fall back to the conventional full-flush recovery (§4.8).
package frq

// Queue is a bounded FIFO of pending in-slice misses.
type Queue[E any] struct {
	entries []E
	cap     int

	// Peak occupancy, for statistics.
	peak int
}

// New returns a queue holding at most capacity entries (the paper
// suggests 8).
func New[E any](capacity int) *Queue[E] {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue[E]{cap: capacity}
}

// Len returns the current occupancy.
func (q *Queue[E]) Len() int { return len(q.entries) }

// Full reports whether a new miss must use conventional recovery.
func (q *Queue[E]) Full() bool { return len(q.entries) >= q.cap }

// Peak returns the maximum occupancy observed.
func (q *Queue[E]) Peak() int { return q.peak }

// Push appends a pending miss. It returns false when the queue is full.
func (q *Queue[E]) Push(e E) bool {
	if q.Full() {
		return false
	}
	q.entries = append(q.entries, e)
	if len(q.entries) > q.peak {
		q.peak = len(q.entries)
	}
	return true
}

// Head returns the oldest pending miss. ok is false when empty.
func (q *Queue[E]) Head() (e E, ok bool) {
	if len(q.entries) == 0 {
		return e, false
	}
	return q.entries[0], true
}

// Pop removes the oldest pending miss ("when the slice is resolved, the
// head of the FRQ is removed").
func (q *Queue[E]) Pop() {
	if len(q.entries) == 0 {
		panic("frq: Pop of empty queue")
	}
	q.entries = q.entries[1:]
}

// Squash removes every entry for which f returns true. A conventional
// flush removes FRQ entries pointing at flushed instructions; because all
// newer instructions flush together, FIFO order is preserved (§4.6).
func (q *Queue[E]) Squash(f func(E) bool) int {
	kept := q.entries[:0]
	removed := 0
	for _, e := range q.entries {
		if f(e) {
			removed++
		} else {
			kept = append(kept, e)
		}
	}
	q.entries = kept
	return removed
}

// All returns the queued entries oldest-first (read-only view for the
// core's bookkeeping).
func (q *Queue[E]) All() []E { return q.entries }
