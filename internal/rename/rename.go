// Package rename models the register rename table at the granularity the
// timing simulator needs: a map from architectural register to producing
// in-flight instruction, with O(1) checkpoints taken at branches and
// slice fences and restored on recovery (paper §3 and §4.2).
//
// Physical register identities are not modeled (the trace supplies
// values); what matters for timing is the dependence edges the table
// induces and the checkpoint/restore discipline of the selective-flush
// mechanism, including the CP1/CP2 dance of Fig. 2.
package rename

import "repro/internal/isa"

// Table maps architectural registers to their current producer of type P
// (the core's uop pointer). A zero P means the architectural value is
// ready (no in-flight producer).
type Table[P comparable] struct {
	m    [isa.NumRegs]P
	zero P
}

// Snapshot is a checkpoint of the full table.
type Snapshot[P comparable] struct {
	m [isa.NumRegs]P
}

// Producer returns the in-flight producer of r, or the zero P when the
// architectural value is ready. R0 never has a producer.
func (t *Table[P]) Producer(r isa.Reg) P {
	if r == isa.R0 {
		return t.zero
	}
	return t.m[r]
}

// SetProducer records p as the newest producer of r.
func (t *Table[P]) SetProducer(r isa.Reg, p P) {
	if r != isa.R0 {
		t.m[r] = p
	}
}

// Clear removes p as producer wherever it appears (the instruction
// completed or was flushed while still the newest mapping).
func (t *Table[P]) Clear(p P) {
	for i := range t.m {
		if t.m[i] == p {
			t.m[i] = t.zero
		}
	}
}

// Checkpoint captures the table (taken at every branch and slice_fence).
func (t *Table[P]) Checkpoint() Snapshot[P] { return Snapshot[P]{m: t.m} }

// Restore rolls the table back to a checkpoint.
func (t *Table[P]) Restore(s Snapshot[P]) { t.m = s.m }

// Sanitize replaces any producer for which dead returns true with the
// zero P. It is used when restoring a checkpoint that may reference
// instructions flushed since the checkpoint was taken.
func (t *Table[P]) Sanitize(dead func(P) bool) {
	for i := range t.m {
		if t.m[i] != t.zero && dead(t.m[i]) {
			t.m[i] = t.zero
		}
	}
}

// SanitizeSnapshot applies Sanitize to a stored checkpoint.
func SanitizeSnapshot[P comparable](s *Snapshot[P], dead func(P) bool) {
	var zero P
	for i := range s.m {
		if s.m[i] != zero && dead(s.m[i]) {
			s.m[i] = zero
		}
	}
}
