package rename

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestProducerLifecycle(t *testing.T) {
	var tbl Table[int]
	if tbl.Producer(5) != 0 {
		t.Fatal("fresh table has a producer")
	}
	tbl.SetProducer(5, 42)
	if tbl.Producer(5) != 42 {
		t.Fatal("producer not recorded")
	}
	tbl.SetProducer(5, 43)
	if tbl.Producer(5) != 43 {
		t.Fatal("newest producer must win")
	}
	tbl.Clear(43)
	if tbl.Producer(5) != 0 {
		t.Fatal("Clear did not remove the producer")
	}
}

func TestR0NeverRenamed(t *testing.T) {
	var tbl Table[int]
	tbl.SetProducer(isa.R0, 7)
	if tbl.Producer(isa.R0) != 0 {
		t.Fatal("R0 acquired a producer")
	}
}

func TestCheckpointRestore(t *testing.T) {
	var tbl Table[int]
	tbl.SetProducer(1, 10)
	tbl.SetProducer(2, 20)
	ck := tbl.Checkpoint()
	tbl.SetProducer(1, 11)
	tbl.SetProducer(3, 30)
	tbl.Restore(ck)
	if tbl.Producer(1) != 10 || tbl.Producer(2) != 20 || tbl.Producer(3) != 0 {
		t.Fatal("restore did not reproduce the checkpoint")
	}
}

func TestSanitize(t *testing.T) {
	var tbl Table[int]
	tbl.SetProducer(1, 10)
	tbl.SetProducer(2, 20)
	tbl.Sanitize(func(p int) bool { return p == 10 })
	if tbl.Producer(1) != 0 || tbl.Producer(2) != 20 {
		t.Fatal("sanitize removed the wrong entries")
	}

	ck := tbl.Checkpoint()
	SanitizeSnapshot(&ck, func(p int) bool { return p == 20 })
	tbl.Restore(ck)
	if tbl.Producer(2) != 0 {
		t.Fatal("snapshot sanitize ineffective")
	}
}

// TestCheckpointQuick: restore always reproduces the exact mapping at
// checkpoint time regardless of interleaved updates.
func TestCheckpointQuick(t *testing.T) {
	f := func(ops []uint16) bool {
		var tbl Table[int]
		apply := func(o uint16, v int) {
			tbl.SetProducer(isa.Reg(o%isa.NumRegs), v)
		}
		for i, o := range ops {
			apply(o, i+1)
		}
		ck := tbl.Checkpoint()
		var want [isa.NumRegs]int
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			want[r] = tbl.Producer(r)
		}
		for i, o := range ops {
			apply(o, 1000+i)
		}
		tbl.Restore(ck)
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if tbl.Producer(r) != want[r] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
