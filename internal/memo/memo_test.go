package memo

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func bg() context.Context { return context.Background() }

// byteCost charges each string value its length, ignoring the key.
func byteCost(_ string, v string) int64 { return int64(len(v)) }

func TestDoComputesOnceThenHits(t *testing.T) {
	c := New[string](4, 0, nil)
	calls := 0
	fn := func() (string, error) { calls++; return "v", nil }
	v, err, shared := c.Do(bg(), "k", fn)
	if v != "v" || err != nil || shared {
		t.Fatalf("first Do = %q, %v, shared=%v", v, err, shared)
	}
	v, err, shared = c.Do(bg(), "k", fn)
	if v != "v" || err != nil || !shared {
		t.Fatalf("second Do = %q, %v, shared=%v", v, err, shared)
	}
	if calls != 1 {
		t.Fatalf("computed %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Joined != 0 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 0 joined", st)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New[string](1, 0, nil)
	calls := 0
	fail := errors.New("boom")
	fn := func() (string, error) {
		calls++
		if calls == 1 {
			return "", fail
		}
		return "ok", nil
	}
	if _, err, _ := c.Do(bg(), "k", fn); !errors.Is(err, fail) {
		t.Fatalf("first Do err = %v, want boom", err)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("error was cached: %+v", st)
	}
	v, err, shared := c.Do(bg(), "k", fn)
	if v != "ok" || err != nil || shared {
		t.Fatalf("retry Do = %q, %v, shared=%v — error poisoned the cache", v, err, shared)
	}
}

// Concurrent requesters of one key must run the function exactly once and
// all share its result; later arrivals count as joined.
func TestSingleflightJoin(t *testing.T) {
	c := New[string](4, 0, nil)
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	fn := func() (string, error) {
		calls.Add(1)
		close(started)
		<-release
		return "v", nil
	}
	var wg sync.WaitGroup
	first := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(first)
		if v, err, _ := c.Do(bg(), "k", fn); v != "v" || err != nil {
			t.Errorf("leader Do = %q, %v", v, err)
		}
	}()
	<-first
	<-started // the leader is inside fn; everyone else must join
	const waiters = 8
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, shared := c.Do(bg(), "k", func() (string, error) {
				t.Error("duplicate computation ran")
				return "", nil
			})
			if v != "v" || err != nil || !shared {
				t.Errorf("waiter Do = %q, %v, shared=%v", v, err, shared)
			}
		}()
	}
	// Give the waiters a moment to attach, then release the leader.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
	if st := c.Stats(); st.Joined != waiters {
		t.Fatalf("joined = %d, want %d", st.Joined, waiters)
	}
}

// A waiter whose context is canceled stops waiting with ctx.Err() while
// the in-flight computation finishes for everyone else.
func TestWaiterCancellation(t *testing.T) {
	c := New[string](1, 0, nil)
	started := make(chan struct{})
	release := make(chan struct{})
	go c.Do(bg(), "k", func() (string, error) {
		close(started)
		<-release
		return "v", nil
	})
	<-started
	ctx, cancel := context.WithCancel(bg())
	errc := make(chan error, 1)
	go func() {
		_, err, _ := c.Do(ctx, "k", nil) // fn unused: must join in flight
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled waiter did not return")
	}
	close(release)
	// The computation still completed and is cached.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, ok := c.Get("k"); ok {
			if v != "v" {
				t.Fatalf("cached %q, want v", v)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("leader result never cached")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestLRUEvictionOrderAndBudget(t *testing.T) {
	// One shard, budget 10 bytes, 4-byte values: holds 2 entries.
	c := New[string](1, 10, byteCost)
	var evicted []string
	c.OnEvict(func(key string, _ string) { evicted = append(evicted, key) })
	put := func(k string) {
		c.Do(bg(), k, func() (string, error) { return "xxxx", nil })
	}
	put("a")
	put("b")
	c.Do(bg(), "a", nil) // touch a: now b is least recent
	put("c")             // 12 bytes > 10: evict b
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted %v, want [b]", evicted)
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently used entry a evicted")
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU entry b survived")
	}
	st := c.Stats()
	if st.Bytes > 10 || st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want ≤10 bytes, 2 entries, 1 eviction", st)
	}
}

// One oversized insert that trims several entries at once reports every
// trimmed entry to the OnEvict hook exactly once — and invokes the hook
// outside the shard lock, proven by the hook re-entering the cache
// (Stats and Get would deadlock under a held shard mutex).
func TestOnEvictSeesEveryTrimmedEntryOnceOutsideLock(t *testing.T) {
	// One shard, 10-byte budget, 3-byte values: holds 3 entries.
	c := New[string](1, 10, byteCost)
	evicted := map[string]int{}
	c.OnEvict(func(key string, v string) {
		evicted[key]++
		// Re-enter the cache: both would deadlock if the hook ran under
		// the shard lock.
		c.Stats()
		if _, ok := c.Get(key); ok {
			t.Errorf("evicted key %q still resident inside the hook", key)
		}
	})
	put := func(k, v string) {
		c.Do(bg(), k, func() (string, error) { return v, nil })
	}
	put("a", "xxx")
	put("b", "xxx")
	put("c", "xxx")
	// A single insert over budget trims a, b, and c in one Do call
	// (never-evict-newest keeps "big" itself).
	put("big", strings.Repeat("y", 9))
	want := map[string]int{"a": 1, "b": 1, "c": 1}
	if len(evicted) != len(want) {
		t.Fatalf("hook saw %v, want %v", evicted, want)
	}
	for k, n := range want {
		if evicted[k] != n {
			t.Fatalf("hook saw %q %d times, want %d (all: %v)", k, evicted[k], n, evicted)
		}
	}
	if st := c.Stats(); st.Evictions != 3 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 3 evictions / 1 entry", st)
	}
}

// Joined counts only successful shares: a waiter that receives the
// leader's error, or cancels out of the join, must not inflate it —
// otherwise Hits+Joined over-reports the shared results callers count.
func TestJoinedCountsOnlySuccessfulShares(t *testing.T) {
	c := New[string](1, 0, nil)
	fail := errors.New("boom")

	// Waiter shares the leader's error: shared=true, not joined.
	started := make(chan struct{})
	release := make(chan struct{})
	go c.Do(bg(), "err", func() (string, error) {
		close(started)
		<-release
		return "", fail
	})
	<-started
	errc := make(chan error, 1)
	sharedc := make(chan bool, 1)
	go func() {
		_, err, shared := c.Do(bg(), "err", nil)
		errc <- err
		sharedc <- shared
	}()
	time.Sleep(5 * time.Millisecond) // let the waiter attach
	close(release)
	if err := <-errc; !errors.Is(err, fail) {
		t.Fatalf("waiter err = %v, want boom", err)
	}
	if !<-sharedc {
		t.Fatal("errored join not reported shared")
	}
	if st := c.Stats(); st.Joined != 0 {
		t.Fatalf("errored share counted as joined: %+v", st)
	}

	// Waiter cancels out of the join: not joined either.
	started2 := make(chan struct{})
	release2 := make(chan struct{})
	leader2 := make(chan struct{})
	go func() {
		c.Do(bg(), "slow", func() (string, error) {
			close(started2)
			<-release2
			return "v", nil
		})
		close(leader2)
	}()
	<-started2
	ctx, cancel := context.WithCancel(bg())
	go func() {
		_, err, _ := c.Do(ctx, "slow", nil)
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter err = %v", err)
	}
	close(release2)
	<-leader2

	// A successful join still counts.
	started3 := make(chan struct{})
	release3 := make(chan struct{})
	go c.Do(bg(), "ok", func() (string, error) {
		close(started3)
		<-release3
		return "v", nil
	})
	<-started3
	vc := make(chan string, 1)
	go func() {
		v, _, _ := c.Do(bg(), "ok", nil)
		vc <- v
	}()
	time.Sleep(5 * time.Millisecond)
	close(release3)
	if v := <-vc; v != "v" {
		t.Fatalf("successful join = %q", v)
	}
	if st := c.Stats(); st.Joined != 1 {
		t.Fatalf("joined = %d, want exactly the one successful share", st.Joined)
	}
}

// An entry bigger than the whole budget is still cached (alone): the most
// recent entry is never evicted, so singleflight keeps deduplicating hot
// oversized results instead of thrashing.
func TestOversizedEntryCachedAlone(t *testing.T) {
	c := New[string](1, 4, byteCost)
	c.Do(bg(), "small", func() (string, error) { return "xx", nil })
	big := strings.Repeat("y", 100)
	c.Do(bg(), "big", func() (string, error) { return big, nil })
	if _, ok := c.Get("big"); !ok {
		t.Fatal("oversized entry not retained")
	}
	if _, ok := c.Get("small"); ok {
		t.Fatal("older entry survived an over-budget insert")
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
}

// The budget bounds the resident set under a long stream of distinct keys
// across every shard — the regression the Runner's unbounded map had.
func TestBudgetBoundedUnderChurn(t *testing.T) {
	const budget = 1 << 10
	c := New[string](8, budget, byteCost)
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("key-%d", i)
		c.Do(bg(), k, func() (string, error) { return strings.Repeat("v", 64), nil })
		if st := c.Stats(); st.Bytes > budget {
			t.Fatalf("resident bytes %d exceed budget %d at insert %d", st.Bytes, budget, i)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("churn caused no evictions")
	}
	if st.Entries >= 2000 {
		t.Fatal("every key retained: cache is unbounded")
	}
}

func TestPanicDoesNotStrandWaiters(t *testing.T) {
	c := New[string](1, 0, nil)
	started := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		defer func() { recover() }() // the leader re-raises
		c.Do(bg(), "k", func() (string, error) {
			close(started)
			time.Sleep(10 * time.Millisecond)
			panic("injected")
		})
	}()
	<-started
	go func() {
		_, err, _ := c.Do(bg(), "k", nil)
		errc <- err
	}()
	select {
	case err := <-errc:
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Fatalf("waiter err = %v, want panic-converted error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("waiter stranded after leader panic")
	}
	// The key is not stuck in flight: a retry computes fresh.
	v, err, _ := c.Do(bg(), "k", func() (string, error) { return "ok", nil })
	if v != "ok" || err != nil {
		t.Fatalf("retry after panic = %q, %v", v, err)
	}
}

// Hammer one hot key plus a churning tail from many goroutines; meant for
// -race. Every response for the hot key must be the canonical value.
func TestConcurrentChurn(t *testing.T) {
	c := New[string](4, 512, byteCost)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if i%3 == 0 {
					v, err, _ := c.Do(bg(), "hot", func() (string, error) { return "HOT", nil })
					if err != nil || v != "HOT" {
						t.Errorf("hot key = %q, %v", v, err)
						return
					}
				} else {
					k := fmt.Sprintf("cold-%d-%d", g, i)
					c.Do(bg(), k, func() (string, error) { return strings.Repeat("c", 32), nil })
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Bytes > 512 {
		t.Fatalf("resident bytes %d exceed budget", st.Bytes)
	}
}

// TestRepriceAdjustsBytesAndEvicts: when a resident value's footprint
// grows after insertion (measured through the cost function), Reprice
// must fold the new cost into the shard's accounting and trim older
// entries back under budget — the mechanism trace segment caches use to
// stay inside the trace budget as they fill.
func TestRepriceAdjustsBytesAndEvicts(t *testing.T) {
	extra := map[string]int64{}
	cost := func(key string, v string) int64 { return int64(len(v)) + extra[key] }
	c := New[string](1, 10, cost)
	var evicted []string
	c.OnEvict(func(key string, _ string) { evicted = append(evicted, key) })
	put := func(k string) {
		c.Do(bg(), k, func() (string, error) { return "xxxx", nil })
	}
	put("a")
	put("b") // 8 bytes resident

	if c.Reprice("missing") {
		t.Fatal("repricing an absent key reported resident")
	}
	// b's footprint grows by 5: 13 > 10, so the older a is evicted and b
	// (just touched) survives.
	extra["b"] = 5
	if !c.Reprice("b") {
		t.Fatal("resident key reported absent")
	}
	if len(evicted) != 1 || evicted[0] != "a" {
		t.Fatalf("evicted %v, want [a]", evicted)
	}
	if st := c.Stats(); st.Bytes != 9 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 9 bytes / 1 entry", st)
	}
	// Shrinking reprices too: accounting must follow the cost down.
	extra["b"] = 1
	c.Reprice("b")
	if st := c.Stats(); st.Bytes != 5 {
		t.Fatalf("bytes = %d after shrink, want 5", st.Bytes)
	}
}
