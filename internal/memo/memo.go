// Package memo provides the sharded, byte-budgeted result cache with
// singleflight deduplication that backs blp.Runner and the serve layer.
//
// A Cache maps string keys to values computed at most once at a time:
// the first requester of a key runs the compute function while every
// concurrent duplicate blocks on the same call and shares its outcome
// (singleflight). Successful results are retained in a per-shard LRU
// whose total byte footprint — as measured by a caller-supplied cost
// function — never exceeds the configured budget; the least recently
// used entries are evicted first. Errors are never cached: a failed or
// canceled computation is retried by the next requester, so a transient
// cancellation cannot poison the cache.
//
// Keys are distributed over N shards by hash, so unrelated keys contend
// on different locks; the budget is split evenly across shards.
package memo

import (
	"container/list"
	"context"
	"fmt"
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// Stats is a point-in-time snapshot of a Cache's activity counters.
type Stats struct {
	// Hits counts requests answered by a completed, still-resident entry.
	Hits int64
	// Joined counts requests that attached to an in-flight computation
	// of the same key (the singleflight path) and shared its successful
	// result. A waiter canceled mid-join, or a shared computation that
	// errored, is not counted: Hits+Joined is exactly the number of
	// successfully shared results, so callers that count shares (e.g.
	// blp.RunnerStats.Cached) can reconcile against it.
	Joined int64
	// Misses counts requests that had to run the compute function.
	Misses int64
	// Evictions counts entries removed to keep a shard under budget.
	Evictions int64
	// Entries and Bytes describe the resident set right now.
	Entries int
	Bytes   int64
	// Budget is the configured total byte budget (0 = unbounded).
	Budget int64
}

// Cache is a sharded LRU keyed by strings. The zero value is not usable;
// construct with New. All methods are safe for concurrent use.
type Cache[V any] struct {
	seed   maphash.Seed
	shards []shard[V]
	cost   func(key string, v V) int64
	budget int64 // per shard; 0 = unbounded

	onEvict func(key string, v V)

	hits, joined, misses, evictions atomic.Int64
}

type shard[V any] struct {
	mu       sync.Mutex
	done     map[string]*list.Element // completed entries, element.Value = *entry[V]
	inflight map[string]*call[V]
	lru      list.List // front = most recently used
	bytes    int64
}

type entry[V any] struct {
	key  string
	val  V
	cost int64
}

// call is one singleflight cell: the first requester computes and closes
// done; duplicates wait on done and share val/err.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// New returns a Cache with the given shard count (values < 1 select 1),
// total byte budget (<= 0 means unbounded), and per-entry cost function
// (nil counts every entry as 1 byte). The budget is divided evenly
// across shards; each shard always retains at least its most recent
// entry, so a single entry larger than the per-shard budget is cached
// alone rather than rejected.
func New[V any](shards int, budgetBytes int64, cost func(key string, v V) int64) *Cache[V] {
	if shards < 1 {
		shards = 1
	}
	if cost == nil {
		cost = func(string, V) int64 { return 1 }
	}
	perShard := int64(0)
	if budgetBytes > 0 {
		perShard = budgetBytes / int64(shards)
		if perShard < 1 {
			perShard = 1
		}
	}
	c := &Cache[V]{
		seed:   maphash.MakeSeed(),
		shards: make([]shard[V], shards),
		cost:   cost,
		budget: perShard,
	}
	for i := range c.shards {
		c.shards[i].done = make(map[string]*list.Element)
		c.shards[i].inflight = make(map[string]*call[V])
	}
	return c
}

// OnEvict registers a hook invoked (outside the shard lock) for every
// entry evicted to make room. Call before the cache is in use; it is not
// synchronized with Do.
func (c *Cache[V]) OnEvict(fn func(key string, v V)) { c.onEvict = fn }

func (c *Cache[V]) shardFor(key string) *shard[V] {
	return &c.shards[maphash.String(c.seed, key)%uint64(len(c.shards))]
}

// Do returns the cached value for key, or computes it with fn. Exactly
// one computation per key runs at a time: concurrent duplicates block
// until it finishes and share its result (shared=true for them, and for
// any request answered by a resident entry). A waiting duplicate whose
// own ctx is canceled stops waiting and returns ctx.Err(); the
// computation itself keeps running for the other waiters. fn's error is
// returned to every waiter but never cached.
//
// If fn panics, the panic is converted into an error delivered to every
// waiter and then re-raised in the first caller, so duplicates are never
// stranded.
func (c *Cache[V]) Do(ctx context.Context, key string, fn func() (V, error)) (v V, err error, shared bool) {
	return c.DoWithJoin(ctx, key, fn, nil)
}

// DoWithJoin is Do with a hook invoked when this request attaches to an
// in-flight computation of the same key instead of running fn — called
// exactly once, before blocking on the shared call. Callers coordinating
// groups of computations use it to release resources that must not wait
// for a foreign computation (a batch group must learn immediately that a
// member will not contribute a lane, or the group would stall behind the
// joined call). The hook does not run for requests answered by a
// resident entry (those never block) or for requests that run fn.
func (c *Cache[V]) DoWithJoin(ctx context.Context, key string, fn func() (V, error), onJoin func()) (v V, err error, shared bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	if el, ok := s.done[key]; ok {
		s.lru.MoveToFront(el)
		e := el.Value.(*entry[V])
		s.mu.Unlock()
		c.hits.Add(1)
		return e.val, nil, true
	}
	if cl, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		if onJoin != nil {
			onJoin()
		}
		select {
		case <-cl.done:
			// Only a successful share counts as joined; an error is
			// delivered to the waiter but is not a shared result.
			if cl.err == nil {
				c.joined.Add(1)
			}
			return cl.val, cl.err, true
		case <-ctx.Done():
			var zero V
			return zero, ctx.Err(), true
		}
	}
	cl := &call[V]{done: make(chan struct{})}
	s.inflight[key] = cl
	s.mu.Unlock()
	c.misses.Add(1)

	// Publish the outcome even if fn panics: waiters get an error, the
	// panic is re-raised here.
	finished := false
	defer func() {
		if !finished {
			cl.err = fmt.Errorf("memo: computation for key %q panicked", key)
		}
		var evicted []*entry[V]
		s.mu.Lock()
		delete(s.inflight, key)
		if cl.err == nil {
			e := &entry[V]{key: key, val: cl.val, cost: c.cost(key, cl.val)}
			s.done[key] = s.lru.PushFront(e)
			s.bytes += e.cost
			evicted = s.evictToLocked(c.budget)
		}
		s.mu.Unlock()
		close(cl.done)
		for _, e := range evicted {
			c.evictions.Add(1)
			if c.onEvict != nil {
				c.onEvict(e.key, e.val)
			}
		}
	}()
	cl.val, cl.err = fn()
	finished = true
	return cl.val, cl.err, false
}

// Reprice recomputes the cost of key's resident entry with the cache's
// cost function and adjusts the shard's byte accounting, evicting older
// entries if the new cost pushes the shard over budget. Callers use it
// when a cached value's footprint grows after insertion (a trace whose
// wrong-path segment cache filled up). Reports whether the key was
// resident; the repriced entry itself is touched (so it is the last to
// go) but entries evicted to make room fire the eviction hook as usual.
func (c *Cache[V]) Reprice(key string) bool {
	s := c.shardFor(key)
	s.mu.Lock()
	el, ok := s.done[key]
	if !ok {
		s.mu.Unlock()
		return false
	}
	s.lru.MoveToFront(el)
	e := el.Value.(*entry[V])
	nc := c.cost(key, e.val)
	s.bytes += nc - e.cost
	e.cost = nc
	evicted := s.evictToLocked(c.budget)
	s.mu.Unlock()
	for _, ev := range evicted {
		c.evictions.Add(1)
		if c.onEvict != nil {
			c.onEvict(ev.key, ev.val)
		}
	}
	return true
}

// Get returns the resident value for key without computing, touching the
// LRU on hit.
func (c *Cache[V]) Get(key string) (v V, ok bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.done[key]
	if !ok {
		var zero V
		return zero, false
	}
	s.lru.MoveToFront(el)
	return el.Value.(*entry[V]).val, true
}

// evictToLocked trims the shard to the given per-shard budget, evicting
// from the LRU tail but never removing the most recent entry (so a
// single oversized result is cached alone rather than thrashing).
// Caller holds s.mu; returned entries are reported to the eviction hook
// after the lock is released.
func (s *shard[V]) evictToLocked(budget int64) []*entry[V] {
	if budget <= 0 {
		return nil
	}
	var out []*entry[V]
	for s.bytes > budget && s.lru.Len() > 1 {
		el := s.lru.Back()
		e := el.Value.(*entry[V])
		s.lru.Remove(el)
		delete(s.done, e.key)
		s.bytes -= e.cost
		out = append(out, e)
	}
	return out
}

// Stats returns the cache's counters and resident-set size.
func (c *Cache[V]) Stats() Stats {
	st := Stats{
		Hits:      c.hits.Load(),
		Joined:    c.joined.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Budget:    c.budget * int64(len(c.shards)),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += len(s.done)
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}
