package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// timelineHeader is the CSV column order of WriteTimelineCSV. Versioned
// with the metrics schema (see the blp package's MetricsSchemaVersion):
// columns are append-only within a schema version.
var timelineHeader = []string{
	"cycle", "core",
	"rob_used", "rob_gaps", "rob_free",
	"rs_used", "lq_used", "sq_used", "reserve",
	"in_slice", "frq", "holes", "outstanding",
	"fetch_stall", "committed", "ipc",
	"l1d_mpki", "l2_mpki", "llc_mpki",
}

// WriteTimelineCSV renders the timeline samples as CSV, one row per core
// per sampling interval.
func (r *Recorder) WriteTimelineCSV(w io.Writer) error {
	if _, err := io.WriteString(w, strings.Join(timelineHeader, ",")+"\n"); err != nil {
		return err
	}
	for _, s := range r.samples {
		_, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%s,%d,%.4f,%s,%s,%s\n",
			s.Cycle, s.Core,
			s.ROBUsed, s.ROBGaps, s.ROBFree,
			s.RSUsed, s.LQUsed, s.SQUsed, s.Reserve,
			s.InSlice, s.FRQ, s.Holes, s.Outstanding,
			s.FetchStall, s.Committed, s.IPC,
			mpkiCell(s.L1DMPKI), mpkiCell(s.L2MPKI), mpkiCell(s.LLCMPKI))
		if err != nil {
			return err
		}
	}
	return nil
}

// mpkiCell renders an MPKI column value. NaN marks an interval with no
// committed instructions — no meaningful rate — and renders as an empty
// cell so a fully stalled interval is distinguishable from a miss-free
// one.
func mpkiCell(v float64) string {
	if math.IsNaN(v) {
		return ""
	}
	return strconv.FormatFloat(v, 'f', 3, 64)
}

// chromeEvent is one entry of the Chrome trace_event JSON array
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Cycle timestamps are written as microseconds: one simulated cycle
// renders as one "microsecond" in the viewer.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of the trace file ("traceEvents"
// plus metadata), which viewers accept alongside the bare-array form.
type chromeTrace struct {
	TraceEvents []chromeEvent  `json:"traceEvents"`
	OtherData   map[string]any `json:"otherData,omitempty"`
}

// cat returns the Chrome trace category of a uop event: the path kind
// plus its fate, so the viewer can color/filter wrong-path and flushed
// uops apart from committed correct-path work.
func cat(e Event) string {
	k := "correct"
	switch {
	case e.Wrong:
		k = "wrong-path"
	case e.Resolve:
		k = "resolve-path"
	}
	if e.Flushed {
		k += ",flushed"
	}
	return k
}

// WriteChromeTrace renders the retained events as Chrome trace_event
// JSON. Uop lifetimes become complete ("X") events spanning fetch to
// commit/flush with the per-stage timestamps in args; mechanism events
// (unlink/splice/recovery) become thread-scoped instant ("i") events.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	evs := r.Events()
	out := chromeTrace{
		TraceEvents: make([]chromeEvent, 0, len(evs)),
		OtherData: map[string]any{
			"unit":    "1 ts = 1 simulated cycle",
			"events":  r.TotalEvents(),
			"dropped": r.Dropped(),
		},
	}
	for _, e := range evs {
		ce := chromeEvent{
			Name: e.Name,
			TS:   e.TS,
			PID:  e.Core,
			TID:  e.Thread,
		}
		if e.Name == EvUop {
			ce.Name = e.Op
			ce.Cat = cat(e)
			ce.Phase = "X"
			ce.TS = e.Fetch
			ce.Dur = e.Commit - e.Fetch
			if ce.Dur < 1 {
				ce.Dur = 1
			}
			ce.Args = map[string]any{
				"seq": e.Seq, "pc": e.PC,
				"fetch": e.Fetch, "dispatch": e.Dispatch,
				"issue": e.Issue, "done": e.Done, "commit": e.Commit,
				"flushed": e.Flushed,
			}
		} else {
			ce.Cat = "mechanism"
			ce.Phase = "i"
			ce.Scope = "t"
			ce.Args = map[string]any{"seq": e.Seq, "pc": e.PC, "op": e.Op, "n": e.N}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// String renders one timeline sample as a human-readable line (the
// deadlock dump's occupancy header).
func (s Sample) String() string {
	return fmt.Sprintf(
		"core %d @%d: rob %d used/%d gaps/%d free, rs=%d lq=%d sq=%d (reserve %d), inSlice=%d frq=%d holes=%d outstanding=%d, fetch=%s, committed=%d",
		s.Core, s.Cycle, s.ROBUsed, s.ROBGaps, s.ROBFree,
		s.RSUsed, s.LQUsed, s.SQUsed, s.Reserve,
		s.InSlice, s.FRQ, s.Holes, s.Outstanding, s.FetchStall, s.Committed)
}

// TailByThread formats the last k retained events of every (core, thread)
// pair, oldest first — the flight-recorder part of the deadlock dump: what
// each thread was doing right before progress stopped.
func (r *Recorder) TailByThread(k int) string {
	if k <= 0 || r.total == 0 {
		return ""
	}
	evs := r.Events()
	type key struct{ core, thread int }
	last := map[key][]Event{}
	for _, e := range evs {
		kk := key{e.Core, e.Thread}
		q := append(last[kk], e)
		if len(q) > k {
			q = q[1:]
		}
		last[kk] = q
	}
	var keys []key
	for kk := range last {
		keys = append(keys, kk)
	}
	// Deterministic order without pulling in sort for two ints: simple
	// insertion sort over (core, thread).
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && (keys[j].core < keys[j-1].core ||
			keys[j].core == keys[j-1].core && keys[j].thread < keys[j-1].thread); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	var b strings.Builder
	for _, kk := range keys {
		fmt.Fprintf(&b, " last %d events, core %d thread %d:\n", len(last[kk]), kk.core, kk.thread)
		for _, e := range last[kk] {
			fmt.Fprintf(&b, "  @%-8d %-17s #%-8d @%-5d %-8s %s n=%d\n",
				e.TS, e.Name, e.Seq, e.PC, e.Op, cat(e), e.N)
		}
	}
	if d := r.Dropped(); d > 0 {
		fmt.Fprintf(&b, " (%d older events dropped by the ring)\n", d)
	}
	return b.String()
}
