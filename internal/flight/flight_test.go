package flight

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestRingKeepsNewestEvents(t *testing.T) {
	r := &Recorder{MaxEvents: 3}
	for i := 0; i < 5; i++ {
		r.Record(Event{TS: int64(i), Name: EvUnlink})
	}
	if r.TotalEvents() != 5 {
		t.Fatalf("total %d, want 5", r.TotalEvents())
	}
	if r.Dropped() != 2 {
		t.Fatalf("dropped %d, want 2", r.Dropped())
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	for i, e := range evs {
		if e.TS != int64(i+2) {
			t.Fatalf("event %d has TS %d, want %d (chronological tail)", i, e.TS, i+2)
		}
	}
}

func TestRingUnderCapacity(t *testing.T) {
	r := &Recorder{MaxEvents: 8}
	r.Record(Event{TS: 1})
	r.Record(Event{TS: 2})
	if r.Dropped() != 0 {
		t.Fatalf("dropped %d, want 0", r.Dropped())
	}
	evs := r.Events()
	if len(evs) != 2 || evs[0].TS != 1 || evs[1].TS != 2 {
		t.Fatalf("bad retained events: %+v", evs)
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	r := &Recorder{MaxEvents: 8}
	r.Record(Event{TS: 1, Name: EvUnlink})
	evs := r.Events()
	evs[0].Name = "clobbered"
	if got := r.Events()[0].Name; got != EvUnlink {
		t.Fatalf("mutating Events() result changed recorder state: %q", got)
	}
}

func TestTimelineCSVNaNRendersEmpty(t *testing.T) {
	r := &Recorder{Interval: 100}
	r.AddSample(Sample{Cycle: 100, FetchStall: "resolve",
		L1DMPKI: math.NaN(), L2MPKI: math.NaN(), LLCMPKI: math.NaN()})
	var b bytes.Buffer
	if err := r.WriteTimelineCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if !strings.HasSuffix(lines[1], ",,,") {
		t.Fatalf("zero-commit interval MPKI should render as empty cells: %s", lines[1])
	}
}

func TestTimelineCSV(t *testing.T) {
	r := &Recorder{Interval: 100}
	r.AddSample(Sample{Cycle: 100, Core: 0, ROBUsed: 10, FetchStall: "ok", Committed: 42, IPC: 0.42})
	r.AddSample(Sample{Cycle: 100, Core: 1, ROBUsed: 20, FetchStall: "resolve", Committed: 7, L1DMPKI: 3.5})
	var b bytes.Buffer
	if err := r.WriteTimelineCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d CSV lines, want header + 2 rows:\n%s", len(lines), b.String())
	}
	if !strings.HasPrefix(lines[0], "cycle,core,rob_used") {
		t.Fatalf("bad header: %s", lines[0])
	}
	if got := strings.Count(lines[0], ","); got != strings.Count(lines[1], ",") {
		t.Fatalf("row width %d does not match header width %d", strings.Count(lines[1], ","), got)
	}
	if !strings.Contains(lines[2], "resolve") || !strings.Contains(lines[2], "3.500") {
		t.Fatalf("row 2 missing fields: %s", lines[2])
	}
}

func TestChromeTraceShape(t *testing.T) {
	r := &Recorder{}
	r.Record(Event{
		Name: EvUop, Core: 0, Thread: 0, Seq: 7, PC: 12, Op: "ld",
		Fetch: 10, Dispatch: 22, Issue: 24, Done: 40, Commit: 41,
	})
	r.Record(Event{Name: EvUnlink, TS: 50, Seq: 8, Op: "add", Wrong: true, N: 7})
	r.Record(Event{Name: EvSplice, TS: 52, Seq: 9, Op: "add", Resolve: true, N: 7})
	var b bytes.Buffer
	if err := r.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, b.String())
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("%d trace events, want 3", len(doc.TraceEvents))
	}
	uop := doc.TraceEvents[0]
	if uop["ph"] != "X" || uop["name"] != "ld" || uop["ts"] != float64(10) || uop["dur"] != float64(31) {
		t.Fatalf("bad uop complete event: %v", uop)
	}
	unlink := doc.TraceEvents[1]
	if unlink["ph"] != "i" || unlink["name"] != EvUnlink {
		t.Fatalf("bad unlink instant event: %v", unlink)
	}
	splice := doc.TraceEvents[2]
	if splice["ph"] != "i" || splice["name"] != EvSplice {
		t.Fatalf("bad splice instant event: %v", splice)
	}
	args, ok := splice["args"].(map[string]any)
	if !ok || args["n"] != float64(7) {
		t.Fatalf("splice event must carry the branch seq pairing it with the unlink: %v", splice)
	}
}

func TestTailByThread(t *testing.T) {
	r := &Recorder{MaxEvents: 16}
	for i := 0; i < 6; i++ {
		r.Record(Event{TS: int64(i), Core: 0, Thread: i % 2, Name: EvRecoverSel, Seq: uint64(i)})
	}
	tail := r.TailByThread(2)
	if !strings.Contains(tail, "core 0 thread 0") || !strings.Contains(tail, "core 0 thread 1") {
		t.Fatalf("tail missing threads:\n%s", tail)
	}
	// Thread 0 saw events 0,2,4; the 2-deep tail keeps 2 and 4.
	if strings.Contains(tail, "#0 ") {
		t.Fatalf("tail retained an event older than the last 2:\n%s", tail)
	}
}

func TestZeroDurClampedToOne(t *testing.T) {
	r := &Recorder{}
	r.Record(Event{Name: EvUop, Fetch: 5, Commit: 5, Op: "nop"})
	var b bytes.Buffer
	if err := r.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"dur":1`) {
		t.Fatalf("zero-length uop should clamp dur to 1:\n%s", b.String())
	}
}
