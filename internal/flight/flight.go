// Package flight is the simulator's flight recorder: an opt-in
// observability layer that captures (1) an interval timeline of pipeline
// occupancy (ROB/RS/LQ/SQ/FRQ, holes, fetch stall reason, IPC, per-level
// MPKI), exportable as CSV, and (2) a per-uop pipeline event trace
// (fetch→dispatch→issue→complete→commit timestamps plus the selective-
// flush unlink/splice/recovery events), exportable as Chrome trace_event
// JSON so a selective flush can be watched reorganizing the ROB in
// chrome://tracing or Perfetto.
//
// A nil *Recorder disables everything: the core and sim hot loops guard
// every hook with a single nil check, so a disabled recorder costs
// nothing and changes no output. Events are kept in a bounded ring
// buffer; when a long run wraps the ring, the oldest events are dropped
// (Dropped counts them) — exactly the right shape for the deadlock
// watchdog, which wants the *last* events of each thread.
//
// The recorder is deliberately single-writer: one simulation (one
// sim.Run invocation) owns it. Cores within a run are stepped from one
// goroutine, so no locking is needed; sharing a Recorder across
// concurrent runs is a caller bug.
package flight

// Event names. EvUop is a uop lifetime record (one per committed or
// flushed uop, with per-stage timestamps); the rest are instantaneous
// selective-flush mechanism events.
const (
	// EvUop is one uop's pipeline lifetime (fetch..commit/flush).
	EvUop = "uop"
	// EvUnlink marks one wrong-path uop unlinked from the ROB by a
	// selective flush (§4.2).
	EvUnlink = "sf-unlink"
	// EvSplice marks one resolve-path uop spliced into the linked ROB
	// after the mispredicted branch (§4.2, Fig. 2).
	EvSplice = "sf-splice"
	// EvRecoverSel marks a selective recovery starting: the branch
	// resolved, its wrong path is flushed, and its buffered correct
	// path is pushed onto the FRQ.
	EvRecoverSel = "recover-selective"
	// EvRecoverFull marks a conventional full flush.
	EvRecoverFull = "recover-full"
)

// Event is one recorded pipeline event. All event kinds share the flat
// struct; unused fields stay zero. Timestamps are simulated cycles.
type Event struct {
	TS     int64  // cycle the event was recorded
	Core   int    // core id
	Thread int    // SMT thread id
	Name   string // one of the Ev* constants
	Seq    uint64 // program-order sequence of the subject instruction
	PC     int    // its PC
	Op     string // its mnemonic

	// Uop lifetime timestamps (EvUop only). Dispatch/Issue/Done may be
	// zero for uops flushed before reaching that stage.
	Fetch    int64
	Dispatch int64
	Issue    int64
	Done     int64
	Commit   int64 // commit cycle, or the flush cycle when Flushed

	// Wrong marks wrong-path uops; Resolve marks resolve-path uops;
	// Flushed marks uops that left the pipeline by a flush, not commit.
	Wrong   bool
	Resolve bool
	Flushed bool

	// N is the event payload: segment length for EvRecoverSel, flushed-
	// uop count for EvRecoverFull, and the mispredicted branch's Seq for
	// EvUnlink/EvSplice (pairing a flush with its splice).
	N int64
}

// Sample is one timeline row: the occupancy/stall snapshot of one core at
// one cycle. Counter fields (Committed and the cache counters feeding the
// MPKI columns) are sampled cumulatively by the core; IPC and MPKI are
// per-interval rates computed by the sim driver.
type Sample struct {
	Cycle int64
	Core  int

	// Window occupancy.
	ROBUsed, ROBGaps, ROBFree int
	RSUsed, LQUsed, SQUsed    int
	// Reserve is the configured §4.7 reservation, for reading the
	// occupancy columns against their effective capacity.
	Reserve int

	// Selective-flush state: in-slice uops in the ROB, FRQ entries, and
	// in-flight holes (resolved misses whose correct paths have not
	// fully entered the ROB), summed over SMT threads.
	InSlice, FRQ, Holes int
	// Outstanding is the number of long-latency loads in flight.
	Outstanding int

	// FetchStall labels why fetch delivered nothing, or "ok".
	FetchStall string

	// Committed is the core's cumulative committed-instruction count.
	Committed uint64
	// IPC is the interval IPC (committed delta / sampling interval).
	IPC float64
	// Interval misses per kilo committed instructions, per level. LLC
	// is chip-wide (the LLC is shared) and repeated on every row.
	L1DMPKI, L2MPKI, LLCMPKI float64
}

// DefaultMaxEvents bounds the event ring when Recorder.MaxEvents is zero.
const DefaultMaxEvents = 1 << 20

// Recorder collects timeline samples and pipeline events for one
// simulation. Configure the exported fields before the run; read the
// results (Samples, Events, writers) after it.
type Recorder struct {
	// Interval is the timeline sampling period in cycles; 0 disables
	// the timeline.
	Interval int64
	// TraceUops records one EvUop lifetime event per committed or
	// flushed uop. High volume — the mechanism events (recoveries,
	// unlinks, splices) are always recorded while the recorder is
	// attached, so leave this off unless exporting a Chrome trace.
	TraceUops bool
	// MaxEvents caps the event ring (0 = DefaultMaxEvents). The oldest
	// events are overwritten once the ring is full.
	MaxEvents int

	samples []Sample
	ring    []Event
	next    int    // overwrite cursor once len(ring) == cap
	total   uint64 // events ever recorded
}

// Record appends an event, overwriting the oldest once the ring is full.
func (r *Recorder) Record(e Event) {
	max := r.MaxEvents
	if max <= 0 {
		max = DefaultMaxEvents
	}
	if len(r.ring) < max {
		r.ring = append(r.ring, e)
	} else {
		r.ring[r.next] = e
		r.next++
		if r.next == len(r.ring) {
			r.next = 0
		}
	}
	r.total++
}

// AddSample appends one timeline row.
func (r *Recorder) AddSample(s Sample) { r.samples = append(r.samples, s) }

// Samples returns the timeline rows in recording order.
func (r *Recorder) Samples() []Sample { return r.samples }

// Events returns the retained events in chronological order. The result
// is a copy: mutating it does not affect the recorder.
func (r *Recorder) Events() []Event {
	out := make([]Event, 0, len(r.ring))
	if r.total <= uint64(len(r.ring)) {
		return append(out, r.ring...)
	}
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// TotalEvents returns how many events were recorded, including dropped.
func (r *Recorder) TotalEvents() uint64 { return r.total }

// Dropped returns how many events the ring overwrote.
func (r *Recorder) Dropped() uint64 {
	if r.total <= uint64(len(r.ring)) {
		return 0
	}
	return r.total - uint64(len(r.ring))
}
