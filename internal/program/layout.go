package program

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Layout allocates regions of the flat simulated data memory and builds
// the initial memory image a workload runs against. All multi-byte values
// are little-endian.
type Layout struct {
	mem   []byte
	next  uint64
	align uint64
}

// NewLayout returns an empty layout. Allocations are aligned to 64 bytes
// (one cache line) so that independently-written arrays never share lines.
func NewLayout() *Layout {
	return &Layout{align: 64}
}

func (l *Layout) grow(to uint64) {
	if uint64(len(l.mem)) < to {
		grown := make([]byte, to)
		copy(grown, l.mem)
		l.mem = grown
	}
}

// Alloc reserves size bytes and returns the base address of the region.
func (l *Layout) Alloc(size uint64) uint64 {
	base := (l.next + l.align - 1) &^ (l.align - 1)
	l.next = base + size
	l.grow(l.next)
	return base
}

// AllocU32 reserves an array of n uint32 values, initializing it from vals
// (which may be shorter than n), and returns the base address.
func (l *Layout) AllocU32(n int, vals []uint32) uint64 {
	base := l.Alloc(uint64(n) * 4)
	for i, v := range vals {
		l.PutU32(base+uint64(i)*4, v)
	}
	return base
}

// AllocU64 reserves an array of n uint64 values, initializing it from vals,
// and returns the base address.
func (l *Layout) AllocU64(n int, vals []uint64) uint64 {
	base := l.Alloc(uint64(n) * 8)
	for i, v := range vals {
		l.PutU64(base+uint64(i)*8, v)
	}
	return base
}

// AllocF64 reserves an array of n float64 values, initializing it from
// vals, and returns the base address.
func (l *Layout) AllocF64(n int, vals []float64) uint64 {
	base := l.Alloc(uint64(n) * 8)
	for i, v := range vals {
		l.PutU64(base+uint64(i)*8, math.Float64bits(v))
	}
	return base
}

// PutU32 writes v at addr.
func (l *Layout) PutU32(addr uint64, v uint32) {
	l.grow(addr + 4)
	binary.LittleEndian.PutUint32(l.mem[addr:], v)
}

// PutU64 writes v at addr.
func (l *Layout) PutU64(addr uint64, v uint64) {
	l.grow(addr + 8)
	binary.LittleEndian.PutUint64(l.mem[addr:], v)
}

// Image returns the initial memory image. The slice is owned by the
// caller; the layout must not be reused after Image is taken.
func (l *Layout) Image() []byte { return l.mem }

// Size returns the current image size in bytes.
func (l *Layout) Size() uint64 { return uint64(len(l.mem)) }

// ReadU32 reads a uint32 from a memory image (test/validation helper).
func ReadU32(mem []byte, addr uint64) uint32 {
	return binary.LittleEndian.Uint32(mem[addr:])
}

// ReadU64 reads a uint64 from a memory image.
func ReadU64(mem []byte, addr uint64) uint64 {
	return binary.LittleEndian.Uint64(mem[addr:])
}

// ReadF64 reads a float64 from a memory image.
func ReadF64(mem []byte, addr uint64) float64 {
	return math.Float64frombits(ReadU64(mem, addr))
}

// String summarizes the layout for diagnostics.
func (l *Layout) String() string {
	return fmt.Sprintf("layout{%d bytes}", len(l.mem))
}
