package program

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestBuilderLabels(t *testing.T) {
	b := NewBuilder("t")
	r := b.Reg()
	b.Li(r, 3)
	b.Label("loop")
	b.AddI(r, r, -1)
	b.Bne(r, isa.R0, "loop") // backward reference
	b.Beq(r, isa.R0, "end")  // forward reference
	b.Nop()
	b.Label("end")
	b.Halt()
	p := b.Build()
	if p.Labels["loop"] != 1 {
		t.Fatalf("loop label at %d", p.Labels["loop"])
	}
	if got := p.Code[2].Imm; got != 1 {
		t.Fatalf("backward branch target %d", got)
	}
	if got := p.Code[3].Imm; got != int64(p.Labels["end"]) {
		t.Fatalf("forward branch target %d", got)
	}
}

func TestBuilderPanics(t *testing.T) {
	expectPanic(t, "undefined label", func() {
		b := NewBuilder("t")
		b.Jmp("nowhere")
		b.Halt()
		b.Build()
	})
	expectPanic(t, "duplicate label", func() {
		b := NewBuilder("t")
		b.Label("x")
		b.Label("x")
	})
	expectPanic(t, "register exhaustion", func() {
		b := NewBuilder("t")
		for i := 0; i < 40; i++ {
			b.Reg()
		}
	})
	expectPanic(t, "invalid program", func() {
		b := NewBuilder("t")
		b.SliceStart(true)
		b.Halt()
		b.Build() // unterminated slice
	})
}

func expectPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", name)
		}
	}()
	f()
}

func TestSliceDisabledEmitsNothing(t *testing.T) {
	b := NewBuilder("t")
	b.SliceStart(false)
	b.SliceEnd(false)
	b.SliceFence(false)
	b.Halt()
	if p := b.Build(); len(p.Code) != 1 {
		t.Fatalf("disabled slice markers emitted code: %d instrs", len(p.Code))
	}
}

func TestReducePrefix(t *testing.T) {
	b := NewBuilder("t")
	r := b.Reg()
	b.Reduce().AddI(r, r, 1)
	b.AddI(r, r, 1)
	b.Halt()
	p := b.Build()
	if !p.Code[0].Reduce() {
		t.Fatal("reduce flag missing")
	}
	if p.Code[1].Reduce() {
		t.Fatal("reduce flag leaked to the next instruction")
	}
}

func TestLayoutAlignment(t *testing.T) {
	l := NewLayout()
	a := l.Alloc(10)
	b := l.Alloc(10)
	if a%64 != 0 || b%64 != 0 {
		t.Fatalf("allocations not line-aligned: %d %d", a, b)
	}
	if b <= a || b-a < 10 {
		t.Fatalf("overlapping allocations: %d %d", a, b)
	}
}

func TestLayoutRoundTrip(t *testing.T) {
	l := NewLayout()
	u32 := l.AllocU32(3, []uint32{1, 2, 3})
	u64 := l.AllocU64(2, []uint64{1 << 40, 7})
	f64 := l.AllocF64(2, []float64{3.5, -1.25})
	l.PutU32(u32+8, 99)
	mem := l.Image()
	if ReadU32(mem, u32) != 1 || ReadU32(mem, u32+8) != 99 {
		t.Fatal("u32 round trip")
	}
	if ReadU64(mem, u64) != 1<<40 {
		t.Fatal("u64 round trip")
	}
	if ReadF64(mem, f64+8) != -1.25 {
		t.Fatal("f64 round trip")
	}
	if l.Size() != uint64(len(mem)) {
		t.Fatal("size mismatch")
	}
}

// TestLayoutQuick: every allocation region is disjoint and value
// round-trips hold for arbitrary data.
func TestLayoutQuick(t *testing.T) {
	f := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		l := NewLayout()
		a := l.AllocU32(len(vals), vals)
		bx := l.AllocU32(len(vals), nil)
		mem := l.Image()
		if a+4*uint64(len(vals)) > bx {
			return false
		}
		for i, v := range vals {
			if ReadU32(mem, a+uint64(i)*4) != v {
				return false
			}
			if ReadU32(mem, bx+uint64(i)*4) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLiF(t *testing.T) {
	b := NewBuilder("t")
	r := b.Reg()
	b.LiF(r, 2.5)
	b.Halt()
	p := b.Build()
	if math.Float64frombits(uint64(p.Code[0].Imm)) != 2.5 {
		t.Fatal("LiF bits")
	}
}
