// Package program provides an assembler-style builder DSL for writing
// kernels in the virtual ISA, with labels, forward references, register
// allocation helpers, and a data-segment layout helper.
package program

import (
	"fmt"
	"math"

	"repro/internal/isa"
)

// Builder accumulates instructions and resolves labels into an
// isa.Program. Methods panic on misuse (unknown labels, register
// exhaustion): kernels are built once at startup, and a panic with a clear
// message is the most useful failure mode for a hand-written program.
type Builder struct {
	name    string
	code    []isa.Inst
	labels  map[string]int
	fixups  []fixup // unresolved forward references
	nextReg isa.Reg
	reduce  bool // apply FlagReduce to the next emitted instruction
}

type fixup struct {
	pc    int
	label string
}

// NewBuilder returns a Builder for a program with the given name.
// Registers allocated with Reg() start at r1 (r0 is the zero register).
func NewBuilder(name string) *Builder {
	return &Builder{
		name:    name,
		labels:  make(map[string]int),
		nextReg: 1,
	}
}

// Reg allocates a fresh architectural register. It panics when the 31
// allocatable registers are exhausted.
func (b *Builder) Reg() isa.Reg {
	if b.nextReg >= isa.NumRegs {
		panic(fmt.Sprintf("program %s: out of registers", b.name))
	}
	r := b.nextReg
	b.nextReg++
	return r
}

// Regs allocates n fresh registers.
func (b *Builder) Regs(n int) []isa.Reg {
	rs := make([]isa.Reg, n)
	for i := range rs {
		rs[i] = b.Reg()
	}
	return rs
}

// Label defines label name at the current position. Redefinition panics.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		panic(fmt.Sprintf("program %s: duplicate label %q", b.name, name))
	}
	b.labels[name] = len(b.code)
}

// PC returns the index the next emitted instruction will occupy.
func (b *Builder) PC() int { return len(b.code) }

func (b *Builder) emit(in isa.Inst) {
	if b.reduce {
		in.Flags |= isa.FlagReduce
		b.reduce = false
	}
	b.code = append(b.code, in)
}

func (b *Builder) emitBranch(op isa.Op, s1, s2 isa.Reg, label string) {
	b.emit(isa.Inst{Op: op, Src1: s1, Src2: s2, Imm: -1})
	b.fixups = append(b.fixups, fixup{pc: len(b.code) - 1, label: label})
}

// Reduce marks the next emitted instruction with the reduce prefix
// (paper §4.5). Usage: b.Reduce().Add(acc, acc, x).
func (b *Builder) Reduce() *Builder {
	b.reduce = true
	return b
}

// --- integer register-register ---

func (b *Builder) Add(d, s1, s2 isa.Reg) { b.emit(isa.Inst{Op: isa.Add, Dst: d, Src1: s1, Src2: s2}) }
func (b *Builder) Sub(d, s1, s2 isa.Reg) { b.emit(isa.Inst{Op: isa.Sub, Dst: d, Src1: s1, Src2: s2}) }
func (b *Builder) Mul(d, s1, s2 isa.Reg) { b.emit(isa.Inst{Op: isa.Mul, Dst: d, Src1: s1, Src2: s2}) }
func (b *Builder) Div(d, s1, s2 isa.Reg) { b.emit(isa.Inst{Op: isa.Div, Dst: d, Src1: s1, Src2: s2}) }
func (b *Builder) Rem(d, s1, s2 isa.Reg) { b.emit(isa.Inst{Op: isa.Rem, Dst: d, Src1: s1, Src2: s2}) }
func (b *Builder) And(d, s1, s2 isa.Reg) { b.emit(isa.Inst{Op: isa.And, Dst: d, Src1: s1, Src2: s2}) }
func (b *Builder) Or(d, s1, s2 isa.Reg)  { b.emit(isa.Inst{Op: isa.Or, Dst: d, Src1: s1, Src2: s2}) }
func (b *Builder) Xor(d, s1, s2 isa.Reg) { b.emit(isa.Inst{Op: isa.Xor, Dst: d, Src1: s1, Src2: s2}) }
func (b *Builder) Shl(d, s1, s2 isa.Reg) { b.emit(isa.Inst{Op: isa.Shl, Dst: d, Src1: s1, Src2: s2}) }
func (b *Builder) Shr(d, s1, s2 isa.Reg) { b.emit(isa.Inst{Op: isa.Shr, Dst: d, Src1: s1, Src2: s2}) }
func (b *Builder) Sra(d, s1, s2 isa.Reg) { b.emit(isa.Inst{Op: isa.Sra, Dst: d, Src1: s1, Src2: s2}) }
func (b *Builder) Min(d, s1, s2 isa.Reg) { b.emit(isa.Inst{Op: isa.Min, Dst: d, Src1: s1, Src2: s2}) }
func (b *Builder) Max(d, s1, s2 isa.Reg) { b.emit(isa.Inst{Op: isa.Max, Dst: d, Src1: s1, Src2: s2}) }

// --- integer register-immediate ---

func (b *Builder) AddI(d, s1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.AddI, Dst: d, Src1: s1, Imm: imm})
}
func (b *Builder) AndI(d, s1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.AndI, Dst: d, Src1: s1, Imm: imm})
}
func (b *Builder) OrI(d, s1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.OrI, Dst: d, Src1: s1, Imm: imm})
}
func (b *Builder) XorI(d, s1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.XorI, Dst: d, Src1: s1, Imm: imm})
}
func (b *Builder) ShlI(d, s1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.ShlI, Dst: d, Src1: s1, Imm: imm})
}
func (b *Builder) ShrI(d, s1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.ShrI, Dst: d, Src1: s1, Imm: imm})
}
func (b *Builder) MulI(d, s1 isa.Reg, imm int64) {
	b.emit(isa.Inst{Op: isa.MulI, Dst: d, Src1: s1, Imm: imm})
}

// --- data movement ---

func (b *Builder) Li(d isa.Reg, imm int64) { b.emit(isa.Inst{Op: isa.Li, Dst: d, Imm: imm}) }
func (b *Builder) Mov(d, s isa.Reg)        { b.emit(isa.Inst{Op: isa.Mov, Dst: d, Src1: s}) }

// LiF loads a float64 immediate (as raw bits) into d.
func (b *Builder) LiF(d isa.Reg, v float64) { b.Li(d, int64(f64bits(v))) }

// --- float ---

func (b *Builder) FAdd(d, s1, s2 isa.Reg) { b.emit(isa.Inst{Op: isa.FAdd, Dst: d, Src1: s1, Src2: s2}) }
func (b *Builder) FSub(d, s1, s2 isa.Reg) { b.emit(isa.Inst{Op: isa.FSub, Dst: d, Src1: s1, Src2: s2}) }
func (b *Builder) FMul(d, s1, s2 isa.Reg) { b.emit(isa.Inst{Op: isa.FMul, Dst: d, Src1: s1, Src2: s2}) }
func (b *Builder) FDiv(d, s1, s2 isa.Reg) { b.emit(isa.Inst{Op: isa.FDiv, Dst: d, Src1: s1, Src2: s2}) }
func (b *Builder) FAbs(d, s isa.Reg)      { b.emit(isa.Inst{Op: isa.FAbs, Dst: d, Src1: s}) }
func (b *Builder) FMax(d, s1, s2 isa.Reg) { b.emit(isa.Inst{Op: isa.FMax, Dst: d, Src1: s1, Src2: s2}) }
func (b *Builder) CvtIF(d, s isa.Reg)     { b.emit(isa.Inst{Op: isa.CvtIF, Dst: d, Src1: s}) }
func (b *Builder) CvtFI(d, s isa.Reg)     { b.emit(isa.Inst{Op: isa.CvtFI, Dst: d, Src1: s}) }

// --- memory ---

// Ld64 loads 8 bytes from [base+off] into d.
func (b *Builder) Ld64(d, base isa.Reg, off int64) {
	b.emit(isa.Inst{Op: isa.Ld64, Dst: d, Src1: base, Imm: off})
}

// Ld32 loads 4 bytes zero-extended from [base+off] into d.
func (b *Builder) Ld32(d, base isa.Reg, off int64) {
	b.emit(isa.Inst{Op: isa.Ld32, Dst: d, Src1: base, Imm: off})
}

// St64 stores 8 bytes of val to [base+off].
func (b *Builder) St64(base isa.Reg, off int64, val isa.Reg) {
	b.emit(isa.Inst{Op: isa.St64, Src1: base, Imm: off, Val: val})
}

// St32 stores the low 4 bytes of val to [base+off].
func (b *Builder) St32(base isa.Reg, off int64, val isa.Reg) {
	b.emit(isa.Inst{Op: isa.St32, Src1: base, Imm: off, Val: val})
}

// LdX64 loads 8 bytes from [base + (idx<<scale)] into d.
func (b *Builder) LdX64(d, base, idx isa.Reg, scale int64) {
	b.emit(isa.Inst{Op: isa.LdX64, Dst: d, Src1: base, Src2: idx, Imm: scale})
}

// LdX32 loads 4 bytes zero-extended from [base + (idx<<scale)] into d.
func (b *Builder) LdX32(d, base, idx isa.Reg, scale int64) {
	b.emit(isa.Inst{Op: isa.LdX32, Dst: d, Src1: base, Src2: idx, Imm: scale})
}

// StX64 stores 8 bytes of val to [base + (idx<<scale)].
func (b *Builder) StX64(base, idx isa.Reg, scale int64, val isa.Reg) {
	b.emit(isa.Inst{Op: isa.StX64, Src1: base, Src2: idx, Imm: scale, Val: val})
}

// StX32 stores the low 4 bytes of val to [base + (idx<<scale)].
func (b *Builder) StX32(base, idx isa.Reg, scale int64, val isa.Reg) {
	b.emit(isa.Inst{Op: isa.StX32, Src1: base, Src2: idx, Imm: scale, Val: val})
}

// AAdd64 atomically adds val to the 8-byte word at [base+off]; d gets the
// old value (fetch-and-add).
func (b *Builder) AAdd64(d, base isa.Reg, off int64, val isa.Reg) {
	b.emit(isa.Inst{Op: isa.AAdd64, Dst: d, Src1: base, Imm: off, Val: val})
}

// AAdd32 atomically adds val to the 4-byte word at [base+off]; d gets the
// old value zero-extended.
func (b *Builder) AAdd32(d, base isa.Reg, off int64, val isa.Reg) {
	b.emit(isa.Inst{Op: isa.AAdd32, Dst: d, Src1: base, Imm: off, Val: val})
}

// AAddX64 atomically adds val to the 8-byte word at [base + (idx<<scale)].
func (b *Builder) AAddX64(d, base, idx isa.Reg, scale int64, val isa.Reg) {
	b.emit(isa.Inst{Op: isa.AAddX64, Dst: d, Src1: base, Src2: idx, Imm: scale, Val: val})
}

// AAddX32 atomically adds val to the 4-byte word at [base + (idx<<scale)].
func (b *Builder) AAddX32(d, base, idx isa.Reg, scale int64, val isa.Reg) {
	b.emit(isa.Inst{Op: isa.AAddX32, Dst: d, Src1: base, Src2: idx, Imm: scale, Val: val})
}

// AMin32 atomically takes the unsigned min of the 4-byte word at
// [base+off] and val; d gets the old value.
func (b *Builder) AMin32(d, base isa.Reg, off int64, val isa.Reg) {
	b.emit(isa.Inst{Op: isa.AMin32, Dst: d, Src1: base, Imm: off, Val: val})
}

// AMin64 atomically takes the unsigned min of the 8-byte word at
// [base+off] and val; d gets the old value.
func (b *Builder) AMin64(d, base isa.Reg, off int64, val isa.Reg) {
	b.emit(isa.Inst{Op: isa.AMin64, Dst: d, Src1: base, Imm: off, Val: val})
}

// AMinX32 atomically takes the unsigned min of the 4-byte word at
// [base + (idx<<scale)] and val; d gets the old value.
func (b *Builder) AMinX32(d, base, idx isa.Reg, scale int64, val isa.Reg) {
	b.emit(isa.Inst{Op: isa.AMinX32, Dst: d, Src1: base, Src2: idx, Imm: scale, Val: val})
}

// AMinX64 atomically takes the unsigned min of the 8-byte word at
// [base + (idx<<scale)] and val; d gets the old value.
func (b *Builder) AMinX64(d, base, idx isa.Reg, scale int64, val isa.Reg) {
	b.emit(isa.Inst{Op: isa.AMinX64, Dst: d, Src1: base, Src2: idx, Imm: scale, Val: val})
}

// --- control ---

func (b *Builder) Beq(s1, s2 isa.Reg, label string)  { b.emitBranch(isa.Beq, s1, s2, label) }
func (b *Builder) Bne(s1, s2 isa.Reg, label string)  { b.emitBranch(isa.Bne, s1, s2, label) }
func (b *Builder) Blt(s1, s2 isa.Reg, label string)  { b.emitBranch(isa.Blt, s1, s2, label) }
func (b *Builder) Bge(s1, s2 isa.Reg, label string)  { b.emitBranch(isa.Bge, s1, s2, label) }
func (b *Builder) Bltu(s1, s2 isa.Reg, label string) { b.emitBranch(isa.Bltu, s1, s2, label) }
func (b *Builder) Bgeu(s1, s2 isa.Reg, label string) { b.emitBranch(isa.Bgeu, s1, s2, label) }
func (b *Builder) Bflt(s1, s2 isa.Reg, label string) { b.emitBranch(isa.Bflt, s1, s2, label) }
func (b *Builder) Bfge(s1, s2 isa.Reg, label string) { b.emitBranch(isa.Bfge, s1, s2, label) }

func (b *Builder) Jmp(label string) {
	b.emit(isa.Inst{Op: isa.Jmp, Imm: -1})
	b.fixups = append(b.fixups, fixup{pc: len(b.code) - 1, label: label})
}

// --- slice annotations and misc ---

// SliceStart emits slice_start when enabled is true; otherwise nothing.
// The enabled flag lets one kernel source build both the annotated and the
// plain (baseline) binary, as the paper's benchmarks do.
func (b *Builder) SliceStart(enabled bool) {
	if enabled {
		b.emit(isa.Inst{Op: isa.SliceStart})
	}
}

// SliceEnd emits slice_end when enabled is true.
func (b *Builder) SliceEnd(enabled bool) {
	if enabled {
		b.emit(isa.Inst{Op: isa.SliceEnd})
	}
}

// SliceFence emits slice_fence when enabled is true.
func (b *Builder) SliceFence(enabled bool) {
	if enabled {
		b.emit(isa.Inst{Op: isa.SliceFence})
	}
}

func (b *Builder) Nop()     { b.emit(isa.Inst{Op: isa.Nop}) }
func (b *Builder) Barrier() { b.emit(isa.Inst{Op: isa.Barrier}) }
func (b *Builder) Halt()    { b.emit(isa.Inst{Op: isa.Halt}) }

// Build resolves all label references, validates the program, and returns
// it. It panics on unresolved labels or validation failure: these are
// programming errors in a kernel, not runtime conditions.
func (b *Builder) Build() *isa.Program {
	for _, f := range b.fixups {
		at, ok := b.labels[f.label]
		if !ok {
			panic(fmt.Sprintf("program %s: undefined label %q", b.name, f.label))
		}
		b.code[f.pc].Imm = int64(at)
	}
	labels := make(map[string]int, len(b.labels))
	for k, v := range b.labels {
		labels[k] = v
	}
	p := &isa.Program{Name: b.name, Code: append([]isa.Inst(nil), b.code...), Labels: labels}
	if err := isa.Validate(p); err != nil {
		panic(fmt.Sprintf("program %s: %v", b.name, err))
	}
	return p
}

func f64bits(v float64) uint64 { return math.Float64bits(v) }
