package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// DefaultRingReplicas is the number of virtual nodes each member
// contributes to the hash ring. More virtual nodes smooth the key
// distribution (stddev of a node's share shrinks with 1/sqrt(replicas))
// at the cost of a larger sorted point array; 128 keeps worst-case
// imbalance within a few tens of percent for small clusters while the
// whole ring still fits in a cache line count that makes Owner lookups
// effectively free next to a simulation.
const DefaultRingReplicas = 128

// Ring is a consistent-hash ring over named nodes. Placement is pure:
// it depends only on the member names and the replica count, never on
// process state or map iteration order, so every node of a cluster —
// and every release of this code — computes the same owner for a key
// (pinned by TestRingPlacementPinned). Adding or removing one member
// moves only the keys that member owned (plus/minus its share),
// which is the property that lets a cache-affinity cluster scale
// without diluting every node's working set.
//
// A Ring is immutable after NewRing; derive membership changes with
// Without or a fresh NewRing.
type Ring struct {
	replicas int
	nodes    []string // sorted, deduplicated member names
	hashes   []uint64 // sorted virtual-node points
	owners   []int32  // owners[i]: index into nodes for hashes[i]
}

// NewRing builds a ring over the given node names (deduplicated; order
// is irrelevant) with the given virtual-node count per member
// (<= 0 selects DefaultRingReplicas). An empty node list yields a ring
// whose Owner returns "".
func NewRing(nodes []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultRingReplicas
	}
	uniq := make([]string, 0, len(nodes))
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n != "" && !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	sort.Strings(uniq)
	r := &Ring{
		replicas: replicas,
		nodes:    uniq,
		hashes:   make([]uint64, 0, len(uniq)*replicas),
		owners:   make([]int32, 0, len(uniq)*replicas),
	}
	type point struct {
		h    uint64
		node int32
	}
	pts := make([]point, 0, len(uniq)*replicas)
	for ni, n := range uniq {
		for v := 0; v < replicas; v++ {
			pts = append(pts, point{pointHash(n, v), int32(ni)})
		}
	}
	// Ties (64-bit collisions; astronomically rare) break toward the
	// lexically smaller node so placement stays a pure function of the
	// membership set.
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].h != pts[j].h {
			return pts[i].h < pts[j].h
		}
		return pts[i].node < pts[j].node
	})
	for _, p := range pts {
		r.hashes = append(r.hashes, p.h)
		r.owners = append(r.owners, p.node)
	}
	return r
}

// pointHash places virtual node v of a member on the ring. Truncated
// SHA-256 is deliberate twice over: unlike maphash it is unseeded, so
// placement is identical across processes and releases; and unlike FNV
// it has full avalanche on the near-identical strings node names and
// vnode labels actually are (FNV left members owning 0.5×–2.2× their
// fair share at 128 vnodes; SHA-256 keeps the spread within the
// tolerance TestRingBalanceWithinTolerance pins). Hashing is off the
// request path for points and ~200ns per Owner lookup — noise next to
// a simulation.
func pointHash(node string, v int) uint64 {
	return hash64([]byte(node + "\x00" + strconv.Itoa(v)))
}

func ringKeyHash(key string) uint64 {
	return hash64([]byte(key))
}

func hash64(b []byte) uint64 {
	sum := sha256.Sum256(b)
	return binary.BigEndian.Uint64(sum[:8])
}

// Owner returns the member owning key: the first virtual node at or
// clockwise after the key's hash. Every key has exactly one owner for a
// given membership set; "" only on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.hashes) == 0 {
		return ""
	}
	h := ringKeyHash(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return r.nodes[r.owners[i]]
}

// Nodes returns the ring's members (sorted; a copy).
func (r *Ring) Nodes() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Without returns a ring over the same membership minus node, with the
// same replica count — the "one member left/died" view. Consistent
// hashing guarantees keys not owned by node keep their owner.
func (r *Ring) Without(node string) *Ring {
	keep := make([]string, 0, len(r.nodes))
	for _, n := range r.nodes {
		if n != node {
			keep = append(keep, n)
		}
	}
	return NewRing(keep, r.replicas)
}
