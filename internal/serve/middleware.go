package serve

import (
	"encoding/json"
	"net/http"
	"time"
)

// maxBodyBytes bounds request bodies (a sweep of ~1k runs is well under
// this); oversized bodies fail decoding with a 400 instead of letting a
// client stream gigabytes at the decoder.
const maxBodyBytes = 4 << 20

// instrument wraps a handler with the cross-cutting per-request concerns:
// body limits, request/latency accounting, and panic containment (a
// panicking handler answers 500 and the server keeps serving — one bad
// request must not take down a shared simulation service).
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		}
		s.metrics.requestStart(route)
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				s.metrics.addError()
				s.logf("panic serving %s: %v", route, p)
				// Best effort: if the handler already wrote, this is a no-op
				// on the status line and the client sees a truncated body.
				writeError(w, http.StatusInternalServerError, "internal error")
			}
			s.metrics.requestEnd(time.Since(start))
		}()
		h(w, r)
	}
}

// writeJSON writes v with the given status; encoding errors past the
// header are unrecoverable mid-stream and are ignored by design.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
