package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrQueueFull is returned by acquire when the bounded waiting room is
// already at capacity; handlers translate it into 429 + Retry-After.
var ErrQueueFull = errors.New("serve: admission queue full")

// queue is the server's admission controller: at most `concurrent`
// requests execute simulations at once, at most `maxWait` more wait for
// a slot, and everything beyond that is rejected immediately so load
// sheds at the front door instead of accumulating goroutines without
// bound. Rejection is intentionally cheap — no allocation, no lock.
type queue struct {
	slots   chan struct{}
	waiting atomic.Int64
	maxWait int64
}

func newQueue(concurrent, depth int) *queue {
	if concurrent < 1 {
		concurrent = 1
	}
	if depth < 0 {
		depth = 0
	}
	return &queue{slots: make(chan struct{}, concurrent), maxWait: int64(depth)}
}

// acquire admits the request or fails: nil on admission, ErrQueueFull
// when the waiting room is full, ctx.Err() if the caller gave up (or the
// server started draining) while queued.
func (q *queue) acquire(ctx context.Context) error {
	select {
	case q.slots <- struct{}{}:
		return nil
	default:
	}
	if q.waiting.Add(1) > q.maxWait {
		q.waiting.Add(-1)
		return ErrQueueFull
	}
	defer q.waiting.Add(-1)
	select {
	case q.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (q *queue) release() { <-q.slots }

// depth is the number of requests currently waiting for admission.
func (q *queue) depth() int64 { return q.waiting.Load() }
