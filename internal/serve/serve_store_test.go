package serve

import (
	"fmt"
	"net/http"
	"testing"

	blp "repro"
)

// TestSweepHintsTraces pins the sweep endpoint onto the trace-once/
// simulate-many path: a sweep whose runs differ only in timing
// configuration must capture the workload's trace exactly once and
// replay it for every run — the same guarantee RunAllContext gives its
// own batches. Before the hint was wired through, a fresh server ran the
// functional emulator once or twice extra depending on goroutine
// scheduling.
func TestSweepHintsTraces(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	body := `{"runs":[
		{"benchmark":"cc","scale":6},
		{"benchmark":"cc","scale":6,"predictor":"oracle"},
		{"benchmark":"cc","scale":6,"frq_size":4}
	]}`
	resp := postJSON(t, ts.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	items := readSweepItems(t, resp)
	if len(items) != 3 {
		t.Fatalf("got %d items, want 3", len(items))
	}
	for _, it := range items {
		if it.Error != "" || it.Result == nil {
			t.Fatalf("bad item: %+v", it)
		}
	}
	st := s.Runner().Stats()
	if st.Captured != 1 {
		t.Errorf("Captured = %d, want 1 (one functional pass for the whole sweep)", st.Captured)
	}
	if st.Replayed != len(items) {
		t.Errorf("Replayed = %d, want %d (every run fed from the captured trace)",
			st.Replayed, len(items))
	}
}

// TestSweepItemErrorCounted pins per-item error accounting: a sweep item
// that fails for a non-timeout reason must show up in the server's error
// counter even though the sweep response itself is a 200 stream. (It
// used to increment nothing, leaving /metrics blind to failing sweeps.)
func TestSweepItemErrorCounted(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/sweep", `{"runs":[
		{"benchmark":"cc","scale":6},
		{"benchmark":"cc","scale":6,"mode":"outer","reserve":-1}
	]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	items := readSweepItems(t, resp)
	var failed int
	for _, it := range items {
		if it.Error != "" {
			failed++
		}
	}
	if failed != 1 {
		t.Fatalf("failed items = %d, want 1", failed)
	}
	snap := getMetrics(t, ts.URL)
	if snap.Errors != 1 {
		t.Errorf("metrics errors = %d, want 1 (sweep item failure must be counted)", snap.Errors)
	}
	if snap.Timeouts != 0 {
		t.Errorf("metrics timeouts = %d, want 0 (a validation failure is not a timeout)", snap.Timeouts)
	}
}

// TestFigureParamRanges pins up-front range validation of figure query
// parameters: values that parse fine but are semantically impossible
// (cores=-1, sizedelta=-10) must be rejected 400 before any simulation,
// not forwarded to the figure functions to die as a 500 or a silently
// clamped sweep.
func TestFigureParamRanges(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{
		"/v1/figures/10?cores=-1",
		"/v1/figures/10?cores=0",
		"/v1/figures/10?cores=1000",
		"/v1/figures/10?sizedelta=-10",
		"/v1/figures/10?sizedelta=99",
		"/v1/figures/4?delta=-100",
		"/v1/figures/4?delta=100",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var er errorResponse
		decodeInto(t, resp, &er)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", path, resp.StatusCode, er.Error)
		}
		if er.Error == "" {
			t.Errorf("%s: empty error body", path)
		}
	}
	if snap := getMetrics(t, ts.URL); snap.Sims.Simulated != 0 {
		t.Fatalf("rejected figure params simulated %d runs", snap.Sims.Simulated)
	}
}

// TestServerWarmStart runs the service's whole durable-store story over
// one directory: a first server computes and persists, a second server —
// fresh process state, same directory — serves the identical request
// from disk without simulating, and /metrics exposes the store section.
func TestServerWarmStart(t *testing.T) {
	dir := t.TempDir()
	body := `{"benchmark":"cc","scale":6}`

	st1, err := blp.OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, ts1 := newTestServer(t, Config{Store: st1})
	resp := postJSON(t, ts1.URL+"/v1/run", body)
	var first RunResponse
	decodeInto(t, resp, &first)
	if first.Result == nil {
		t.Fatalf("no result: %+v", first)
	}
	snap := getMetrics(t, ts1.URL)
	if snap.Store == nil || snap.Store.Writes == 0 {
		t.Fatalf("store not visible or empty after a run: %+v", snap.Store)
	}
	if snap.BehaviorVersion != blp.BehaviorVersion() {
		t.Fatalf("behavior_version %q, want %q", snap.BehaviorVersion, blp.BehaviorVersion())
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := blp.OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	_, ts2 := newTestServer(t, Config{Store: st2})
	resp = postJSON(t, ts2.URL+"/v1/run", body)
	var second RunResponse
	decodeInto(t, resp, &second)
	if second.Result == nil {
		t.Fatalf("warm start returned no result: %+v", second)
	}
	if fmt.Sprintf("%+v", second.Result) != fmt.Sprintf("%+v", first.Result) {
		t.Errorf("warm-start result differs:\ncold %+v\nwarm %+v", first.Result, second.Result)
	}
	snap = getMetrics(t, ts2.URL)
	if snap.Sims.Simulated != 0 {
		t.Errorf("warm start simulated %d runs, want 0", snap.Sims.Simulated)
	}
	if snap.Store == nil || snap.Store.Hits == 0 {
		t.Errorf("warm start shows no store hits: %+v", snap.Store)
	}
}

// TestMetricsStoreNullWithoutStore pins the schema: a server without a
// durable store reports store: null, not a zeroed struct that could be
// mistaken for an empty-but-present store.
func TestMetricsStoreNullWithoutStore(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if snap := getMetrics(t, ts.URL); snap.Store != nil {
		t.Fatalf("store section present without a store: %+v", snap.Store)
	}
}
