package serve

import (
	"fmt"

	blp "repro"
	"repro/internal/core"
)

// SchemaVersion identifies the JSON layout of the serve API's own
// responses (RunResponse, SweepItem, MetricsSnapshot). Figure endpoints
// reuse blp.Report, which carries blp.MetricsSchemaVersion.
//
// v2: MetricsSnapshot gained trace_cache and sims.captured/replayed
// (the trace-once/simulate-many counters).
//
// v3: MetricsSnapshot gained store (the durable result store's
// hit/miss/write/invalidated counters and resident set; null when the
// server runs without one) and behavior_version (the stamp persisted
// objects are keyed under).
//
// v4: MetricsSnapshot gained the batched-replay counters: sims.batched
// and sims.batch_groups (same-workload fan-outs run as one shared-decode
// batch), the seg_* wrong-path segment-cache counters (hits, misses,
// invalidated, and bypassed — forks after a trace's cache disabled its
// own recording), and batch_group_sizes (histogram of lanes per batch,
// keyed by size).
//
// v5: RunRequest gained policy (the recovery-policy selector), and
// ResultJSON's stats gained the policy diagnostics DrainCycles and
// ThrottledCycles.
//
// v6: cluster mode. RunResponse and SweepItem gained node (the
// advertised name of the member that executed the run; omitted on an
// unclustered server), MetricsSnapshot gained cluster (ring membership
// plus per-peer forwarded/failed/fallback counters; null when
// unclustered), and /healthz gained the cluster section.
const SchemaVersion = 6

// Zero is the wire spelling of blp.Zero: integer options whose zero
// value means "default" accept -1 to request an explicit 0.
const Zero = blp.Zero

// RunRequest is the wire form of blp.Options. Omitted fields select the
// paper's defaults exactly as the zero-valued Options fields do; the
// output-only fields (TraceEvents, Flight) are intentionally absent —
// they make no sense across an HTTP boundary.
type RunRequest struct {
	Benchmark string `json:"benchmark"`
	Mode      string `json:"mode,omitempty"` // "", "none", "outer", "inner"

	Scale  int    `json:"scale,omitempty"`
	Degree int    `json:"degree,omitempty"`
	Seed   uint64 `json:"seed,omitempty"`

	Cores int `json:"cores,omitempty"`
	SMT   int `json:"smt,omitempty"`

	Predictor    string `json:"predictor,omitempty"`
	Policy       string `json:"policy,omitempty"` // "", "auto", "selective", "conventional", "partial[:N|:inf]", "throttle[:C]"
	Reserve      int    `json:"reserve,omitempty"`
	ROBBlockSize int    `json:"rob_block_size,omitempty"`
	FRQSize      int    `json:"frq_size,omitempty"`
	PRIters      int    `json:"pr_iters,omitempty"`

	PaperScaleMem      bool  `json:"paper_scale_mem,omitempty"`
	WrongPathMemAccess bool  `json:"wrong_path_mem_access,omitempty"`
	CheckIndependence  bool  `json:"check_independence,omitempty"`
	WatchdogCycles     int64 `json:"watchdog_cycles,omitempty"`
}

// Options validates the request and maps it to blp.Options. Validation
// is deliberately static — anything that can be rejected without
// spending simulation time is, so malformed requests cost a 400 and
// nothing else. Deeper structural errors (e.g. a zero reserve under
// selective flush) surface from the run itself.
func (rq RunRequest) Options() (blp.Options, error) {
	var o blp.Options
	if rq.Benchmark == "" {
		return o, fmt.Errorf("benchmark is required (one of %v)", blp.Benchmarks)
	}
	known := false
	for _, b := range blp.Benchmarks {
		if rq.Benchmark == b {
			known = true
			break
		}
	}
	if !known {
		return o, fmt.Errorf("unknown benchmark %q (one of %v)", rq.Benchmark, blp.Benchmarks)
	}
	mode, err := parseMode(rq.Mode)
	if err != nil {
		return o, err
	}
	if mode == blp.SliceInner && !blp.InnerSliceable(rq.Benchmark) {
		return o, fmt.Errorf("benchmark %q does not support inner slicing", rq.Benchmark)
	}
	if rq.Scale < 0 || rq.Scale > 30 {
		return o, fmt.Errorf("scale %d out of range [0, 30]", rq.Scale)
	}
	if rq.Degree < 0 {
		return o, fmt.Errorf("degree %d must be non-negative", rq.Degree)
	}
	if rq.Cores < 0 || rq.Cores > 256 {
		return o, fmt.Errorf("cores %d out of range [0, 256]", rq.Cores)
	}
	switch rq.SMT {
	case 0, 1, 2, 4:
	default:
		return o, fmt.Errorf("smt %d must be 1, 2, or 4", rq.SMT)
	}
	switch rq.Predictor {
	case "", "tage", "oracle":
	default:
		return o, fmt.Errorf("unknown predictor %q (tage or oracle)", rq.Predictor)
	}
	if sp, err := core.ParsePolicy(rq.Policy); err != nil {
		return o, err
	} else if err := sp.Validate(); err != nil {
		return o, err
	}
	for name, v := range map[string]int{
		"reserve": rq.Reserve, "rob_block_size": rq.ROBBlockSize,
		"frq_size": rq.FRQSize, "pr_iters": rq.PRIters,
	} {
		if v < blp.Zero {
			return o, fmt.Errorf("%s %d must be >= -1 (-1 means an explicit 0)", name, v)
		}
	}
	if rq.WatchdogCycles < 0 {
		return o, fmt.Errorf("watchdog_cycles %d must be non-negative", rq.WatchdogCycles)
	}
	return blp.Options{
		Benchmark:          rq.Benchmark,
		Mode:               mode,
		Scale:              rq.Scale,
		Degree:             rq.Degree,
		Seed:               rq.Seed,
		Cores:              rq.Cores,
		SMT:                rq.SMT,
		Predictor:          rq.Predictor,
		Policy:             rq.Policy,
		Reserve:            rq.Reserve,
		ROBBlockSize:       rq.ROBBlockSize,
		FRQSize:            rq.FRQSize,
		PRIters:            rq.PRIters,
		PaperScaleMem:      rq.PaperScaleMem,
		WrongPathMemAccess: rq.WrongPathMemAccess,
		CheckIndependence:  rq.CheckIndependence,
		WatchdogCycles:     rq.WatchdogCycles,
	}, nil
}

func parseMode(s string) (blp.SliceMode, error) {
	switch s {
	case "", "none":
		return blp.SliceNone, nil
	case "outer":
		return blp.SliceOuter, nil
	case "inner":
		return blp.SliceInner, nil
	}
	return blp.SliceNone, fmt.Errorf("unknown mode %q (none, outer, or inner)", s)
}

// ResultJSON is the wire form of blp.Result. Float summaries use
// blp.Metric so unmeasurable values (NaN) encode as null instead of
// breaking encoding/json.
type ResultJSON struct {
	Cycles       int64        `json:"cycles"`
	IPC          blp.Metric   `json:"ipc"`
	LLCMissRate  blp.Metric   `json:"llc_miss_rate"`
	DRAMBusy     blp.Metric   `json:"dram_busy"`
	EnergyUseful blp.Metric   `json:"energy_useful"`
	Stats        core.Stats   `json:"stats"`
	PerCore      []core.Stats `json:"per_core,omitempty"`
}

func resultJSON(r *blp.Result) *ResultJSON {
	if r == nil {
		return nil
	}
	return &ResultJSON{
		Cycles:       r.Cycles,
		IPC:          blp.Metric(r.IPC),
		LLCMissRate:  blp.Metric(r.LLCMissRate),
		DRAMBusy:     blp.Metric(r.DRAMBusy),
		EnergyUseful: blp.Metric(r.EnergyUseful),
		Stats:        r.Stats,
		PerCore:      r.PerCore,
	}
}

// RunResponse answers POST /v1/run.
type RunResponse struct {
	SchemaVersion int `json:"schema_version"`
	// Key is the canonical memoization identity of the run (Options.Key).
	Key string `json:"key"`
	// Cached reports whether the result was shared — served from the
	// resident cache or joined to an identical in-flight simulation —
	// rather than freshly simulated for this request.
	Cached bool `json:"cached"`
	// Node is the cluster member that executed (or served) the run —
	// the ring owner, or the entry node after a failover. Empty on an
	// unclustered server.
	Node      string      `json:"node,omitempty"`
	ElapsedMS float64     `json:"elapsed_ms"`
	Result    *ResultJSON `json:"result"`
}

// SweepRequest is the body of POST /v1/sweep.
type SweepRequest struct {
	Runs []RunRequest `json:"runs"`
}

// SweepItem is one NDJSON line of a sweep response, emitted in
// completion order as each run finishes; Index maps it back to the
// request's runs array. Error is set (and Result nil) when that single
// run failed; other runs continue.
type SweepItem struct {
	SchemaVersion int    `json:"schema_version"`
	Index         int    `json:"index"`
	Key           string `json:"key"`
	Cached        bool   `json:"cached"`
	// Node is the cluster member that executed the item (see
	// RunResponse.Node); empty on an unclustered server.
	Node      string      `json:"node,omitempty"`
	ElapsedMS float64     `json:"elapsed_ms"`
	Result    *ResultJSON `json:"result,omitempty"`
	Error     string      `json:"error,omitempty"`
}

// errorResponse is the JSON body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}
