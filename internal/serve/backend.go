package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	blp "repro"
)

// forwardedHeader marks a request as already routed by a peer. A node
// receiving it executes locally no matter what its own ring says —
// forwarding is exactly one hop, so disagreeing ring views (a
// misconfigured member list) degrade to extra local work, never to a
// forwarding loop. The value is the origin node's name, for logs.
const forwardedHeader = "X-Sfserved-Forwarded"

// Backend executes simulation requests on behalf of the routing layer:
// the one seam through which /v1/run runs one request, /v1/sweep streams
// items, and health checks reach a node. Two implementations exist —
// localBackend over the server's own blp.Runner, and peerBackend over a
// peer's HTTP API — so the handlers are written once against the
// interface and cluster mode is purely a routing decision on top.
type Backend interface {
	// Name identifies the backend: the node's advertised URL, or "local"
	// for an unclustered server.
	Name() string
	// Run executes one validated request, honoring ctx (cancellation
	// must reach the simulation, across the HTTP hop for peers).
	Run(ctx context.Context, rq RunRequest, o blp.Options) (*RunResponse, error)
	// SweepItems executes a group of validated sweep runs, delivering
	// each completed item (carrying its client-visible Index) as it
	// finishes. deliver may be called from multiple goroutines; every
	// index is delivered at most once. A non-nil error means the backend
	// died mid-group — items not yet delivered are the caller's to
	// re-route.
	SweepItems(ctx context.Context, runs []indexedRun, deliver func(SweepItem)) error
	// Healthy reports whether the backend is accepting work (nil), or
	// why not (draining, unreachable).
	Healthy(ctx context.Context) error
}

// indexedRun is one sweep entry annotated with its index in the
// client's request, so scattered groups can stream back in completion
// order and still be mapped to the right line.
type indexedRun struct {
	Index int
	Req   RunRequest
	Opts  blp.Options
}

// errPeerDown reports a peer that cannot take the request at all —
// connection refused/reset, or an explicit 503 (draining). The router
// responds by falling back to local compute.
var errPeerDown = errors.New("serve: peer down or draining")

// peerBusyError reports a peer that answered 429: the owner is shedding
// load, and the router propagates that decision (with its Retry-After)
// to the client instead of piling the work somewhere else.
type peerBusyError struct{ retryAfter string }

func (e *peerBusyError) Error() string { return "serve: peer at capacity (429)" }

// remoteError carries a peer's terminal non-2xx answer for a run that
// reached it: the simulation itself failed (or timed out) on the owner.
// Falling back locally would just fail the same way, so the router maps
// it straight onto the client response.
type remoteError struct {
	status int
	msg    string
}

func (e *remoteError) Error() string {
	return fmt.Sprintf("serve: peer answered %d: %s", e.status, e.msg)
}

// localBackend runs requests on this process's Runner via the server's
// runCached seam (so cluster tests can substitute deterministic
// simulations exactly like single-node tests do).
type localBackend struct{ s *Server }

func (b *localBackend) Name() string { return b.s.nodeName() }

func (b *localBackend) Run(ctx context.Context, rq RunRequest, o blp.Options) (*RunResponse, error) {
	start := time.Now()
	res, cached, err := b.s.runCached(ctx, o)
	if err != nil {
		return nil, err
	}
	return &RunResponse{
		SchemaVersion: SchemaVersion,
		Key:           o.Key(),
		Cached:        cached,
		Node:          b.s.wireNodeName(),
		ElapsedMS:     float64(time.Since(start).Microseconds()) / 1000,
		Result:        resultJSON(res),
	}, nil
}

// SweepItems fans the group out through the shared Runner, one
// goroutine per item, each bounded by the server's per-run timeout.
// Per-item failures become error items (classified into the server's
// timeout/error counters exactly as the single-node sweep always has);
// the group itself never fails — local compute has no transport to die.
func (b *localBackend) SweepItems(ctx context.Context, runs []indexedRun, deliver func(SweepItem)) error {
	var wg sync.WaitGroup
	for _, ir := range runs {
		wg.Add(1)
		go func(ir indexedRun) {
			defer wg.Done()
			rctx, cancel := b.s.runCtx(ctx)
			defer cancel()
			start := time.Now()
			res, cached, err := b.s.runCached(rctx, ir.Opts)
			item := SweepItem{
				SchemaVersion: SchemaVersion,
				Index:         ir.Index,
				Key:           ir.Opts.Key(),
				Cached:        cached,
				Node:          b.s.wireNodeName(),
				ElapsedMS:     float64(time.Since(start).Microseconds()) / 1000,
			}
			if err != nil {
				item.Error = err.Error()
				switch {
				case errors.Is(err, context.DeadlineExceeded):
					b.s.metrics.addTimeout()
				case errors.Is(err, context.Canceled):
				default:
					b.s.metrics.addError()
				}
			} else {
				item.Result = resultJSON(res)
			}
			deliver(item)
		}(ir)
	}
	wg.Wait()
	return nil
}

func (b *localBackend) Healthy(ctx context.Context) error {
	if b.s.draining.Load() {
		return errPeerDown
	}
	return nil
}

// peerBackend proxies requests to another cluster member over its
// public HTTP API. Outbound requests carry the caller's context
// (http.NewRequestWithContext), so canceling the client request — or
// the origin's per-run timeout firing — tears down the peer connection,
// which cancels the peer's request context, which stops the peer-side
// simulation at its next cancellation check: the RunContext plumbing,
// mirrored across the HTTP hop.
type peerBackend struct {
	name string // peer base URL, e.g. "http://10.0.0.2:8344"
	self string // origin node name, sent as forwardedHeader
	hc   *http.Client
}

func newPeerBackend(name, self string) *peerBackend {
	return &peerBackend{
		name: name,
		self: self,
		// No client timeout: the caller's context governs. Idle
		// connections are pooled per peer — forwarding is the hot path
		// of a cluster, not an occasional hop.
		hc: &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}},
	}
}

func (p *peerBackend) Name() string { return p.name }

func (p *peerBackend) post(ctx context.Context, path string, body any) (*http.Response, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.name+path, bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardedHeader, p.self)
	resp, err := p.hc.Do(req)
	if err != nil {
		// Keep cancellation legible to callers: a forward aborted by the
		// client's own context is not a peer failure.
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("%w: %v", errPeerDown, err)
	}
	return resp, nil
}

// classify maps a peer's non-200 answer onto the router's error
// vocabulary and consumes the response body.
func classify(resp *http.Response) error {
	defer resp.Body.Close()
	var er errorResponse
	json.NewDecoder(resp.Body).Decode(&er)
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		return &peerBusyError{retryAfter: resp.Header.Get("Retry-After")}
	case http.StatusServiceUnavailable:
		// The peer is draining: forwarded traffic is refused so the ring
		// reroutes, exactly like a dead peer.
		return fmt.Errorf("%w: draining", errPeerDown)
	default:
		return &remoteError{status: resp.StatusCode, msg: er.Error}
	}
}

func (p *peerBackend) Run(ctx context.Context, rq RunRequest, o blp.Options) (*RunResponse, error) {
	resp, err := p.post(ctx, "/v1/run", rq)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, classify(resp)
	}
	defer resp.Body.Close()
	var rr RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("%w: decoding response: %v", errPeerDown, err)
	}
	if rr.Node == "" {
		rr.Node = p.name
	}
	return &rr, nil
}

// SweepItems forwards the group as one /v1/sweep to the peer and
// streams its NDJSON lines back, remapping each item's peer-local index
// onto the client's. A transport failure mid-stream (the owner died) is
// returned after delivering everything that did arrive; the coordinator
// re-routes the rest.
func (p *peerBackend) SweepItems(ctx context.Context, runs []indexedRun, deliver func(SweepItem)) error {
	sub := SweepRequest{Runs: make([]RunRequest, len(runs))}
	for i, ir := range runs {
		sub.Runs[i] = ir.Req
	}
	resp, err := p.post(ctx, "/v1/sweep", sub)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return classify(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	delivered := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var item SweepItem
		if err := json.Unmarshal(line, &item); err != nil {
			return fmt.Errorf("%w: bad NDJSON line: %v", errPeerDown, err)
		}
		if item.Index < 0 || item.Index >= len(runs) {
			return fmt.Errorf("%w: item index %d out of range", errPeerDown, item.Index)
		}
		if item.Node == "" {
			item.Node = p.name
		}
		item.Index = runs[item.Index].Index
		deliver(item)
		delivered++
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("%w: stream: %v", errPeerDown, err)
	}
	if delivered < len(runs) {
		// Clean EOF with lines missing: the peer closed the stream early
		// (killed between flushes). Same remedy as a torn connection.
		return fmt.Errorf("%w: stream ended after %d/%d items", errPeerDown, delivered, len(runs))
	}
	return nil
}

func (p *peerBackend) Healthy(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.name+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := p.hc.Do(req)
	if err != nil {
		return fmt.Errorf("%w: %v", errPeerDown, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%w: healthz %d", errPeerDown, resp.StatusCode)
	}
	return nil
}
