package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	blp "repro"
)

// testCluster is an in-process cluster: n serve.Servers, each fronted
// by a real httptest listener, all members of one consistent-hash ring.
// The listeners come up first (their URLs are the ring names, and every
// Server needs the full membership at construction), with late-bound
// handlers pointing at the Servers once they exist.
type testCluster struct {
	urls    []string
	servers []*Server
	fronts  []*httptest.Server
}

// newTestCluster builds an n-node cluster. cfg, if non-nil, customizes
// node i's Config after Self/Peers are filled in (e.g. to attach a
// store); it must not touch Self or Peers.
func newTestCluster(t *testing.T, n int, cfg func(i int, c Config) Config) *testCluster {
	t.Helper()
	tc := &testCluster{
		urls:    make([]string, n),
		servers: make([]*Server, n),
		fronts:  make([]*httptest.Server, n),
	}
	handlers := make([]atomic.Pointer[http.Handler], n)
	for i := 0; i < n; i++ {
		i := i
		tc.fronts[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if h := handlers[i].Load(); h != nil {
				(*h).ServeHTTP(w, r)
				return
			}
			http.Error(w, "not ready", http.StatusServiceUnavailable)
		}))
		tc.urls[i] = tc.fronts[i].URL
		t.Cleanup(tc.fronts[i].Close)
	}
	for i := 0; i < n; i++ {
		c := Config{Self: tc.urls[i], Peers: tc.urls}
		if cfg != nil {
			c = cfg(i, c)
		}
		tc.servers[i] = New(c)
		h := tc.servers[i].Handler()
		handlers[i].Store(&h)
	}
	return tc
}

// ownerIndex returns which node owns the request's canonical key.
func (tc *testCluster) ownerIndex(t *testing.T, body string) int {
	t.Helper()
	var rq RunRequest
	if err := json.Unmarshal([]byte(body), &rq); err != nil {
		t.Fatal(err)
	}
	o, err := rq.Options()
	if err != nil {
		t.Fatal(err)
	}
	owner := tc.servers[0].cluster.ring.Owner(o.Key())
	for i, u := range tc.urls {
		if u == owner {
			return i
		}
	}
	t.Fatalf("owner %q is not a member", owner)
	return -1
}

// notOwner returns some node index that does not own the request.
func (tc *testCluster) notOwner(t *testing.T, body string) int {
	return (tc.ownerIndex(t, body) + 1) % len(tc.urls)
}

// clusterRequestSet is the shared workload for the conformance tests:
// distinct canonical keys across two benchmarks, both slicing modes,
// and several timing knobs — enough keys that a 3-node ring owns a few
// each, cheap enough (scale 6) that the whole set simulates in seconds.
var clusterRequestSet = []string{
	`{"benchmark":"cc","scale":6}`,
	`{"benchmark":"cc","scale":6,"mode":"outer"}`,
	`{"benchmark":"cc","scale":6,"predictor":"oracle"}`,
	`{"benchmark":"cc","scale":6,"mode":"outer","predictor":"oracle"}`,
	`{"benchmark":"cc","scale":6,"frq_size":4}`,
	`{"benchmark":"cc","scale":6,"mode":"outer","frq_size":4}`,
	`{"benchmark":"bfs","scale":6}`,
	`{"benchmark":"bfs","scale":6,"mode":"outer"}`,
}

// goldenResults runs the request set on a plain single-node server and
// returns body -> marshaled Result — the reference every cluster
// configuration must reproduce byte-identically.
func goldenResults(t *testing.T, bodies []string) map[string]string {
	t.Helper()
	_, ts := newTestServer(t, Config{})
	golden := make(map[string]string, len(bodies))
	for _, body := range bodies {
		resp := postJSON(t, ts.URL+"/v1/run", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("golden run %s: status %d", body, resp.StatusCode)
		}
		var rr RunResponse
		decodeInto(t, resp, &rr)
		golden[body] = marshalResult(t, rr.Result)
	}
	return golden
}

func marshalResult(t *testing.T, r *ResultJSON) string {
	t.Helper()
	if r == nil {
		t.Fatal("nil result")
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestClusterRunByteIdentical is the tentpole conformance test: every
// request of the set, entered through a node that does NOT own it, is
// forwarded to its ring owner and answers byte-identically to the
// single-node golden; each key simulates exactly once cluster-wide, and
// the forwarding counters are visible on /metrics.
func TestClusterRunByteIdentical(t *testing.T) {
	golden := goldenResults(t, clusterRequestSet)
	tc := newTestCluster(t, 3, nil)

	for _, body := range clusterRequestSet {
		owner := tc.ownerIndex(t, body)
		entry := tc.notOwner(t, body)
		resp := postJSON(t, tc.urls[entry]+"/v1/run", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s via node %d: status %d", body, entry, resp.StatusCode)
		}
		var rr RunResponse
		decodeInto(t, resp, &rr)
		if rr.Node != tc.urls[owner] {
			t.Errorf("%s: executed on %q, ring owner is %q", body, rr.Node, tc.urls[owner])
		}
		if got := marshalResult(t, rr.Result); got != golden[body] {
			t.Errorf("%s: cluster result differs from single-node golden\n got %s\nwant %s",
				body, got, golden[body])
		}
	}

	// Entering through the owner itself must serve from that node's now-
	// warm cache: no forwarding, same bytes.
	for _, body := range clusterRequestSet {
		owner := tc.ownerIndex(t, body)
		resp := postJSON(t, tc.urls[owner]+"/v1/run", body)
		var rr RunResponse
		decodeInto(t, resp, &rr)
		if !rr.Cached {
			t.Errorf("%s via its owner: not served from cache", body)
		}
		if got := marshalResult(t, rr.Result); got != golden[body] {
			t.Errorf("%s: owner-entry result differs from golden", body)
		}
	}

	var simulated, forwarded, received int
	for i, sv := range tc.servers {
		snap := getMetrics(t, tc.urls[i])
		if snap.Cluster == nil {
			t.Fatalf("node %d: no cluster section in /metrics", i)
		}
		if snap.Cluster.Self != tc.urls[i] || len(snap.Cluster.RingNodes) != 3 {
			t.Fatalf("node %d: bad cluster identity %+v", i, snap.Cluster)
		}
		simulated += snap.Sims.Simulated
		received += int(snap.Cluster.ReceivedForwards)
		for _, pm := range snap.Cluster.Peers {
			forwarded += int(pm.Forwarded)
			if pm.Failed != 0 || pm.Fallback != 0 {
				t.Errorf("node %d: unexpected failures %+v with all peers up", i, pm)
			}
		}
		_ = sv
	}
	if simulated != len(clusterRequestSet) {
		t.Errorf("cluster simulated %d runs for %d distinct keys (cache affinity broken)",
			simulated, len(clusterRequestSet))
	}
	if forwarded != len(clusterRequestSet) {
		t.Errorf("forwarded = %d, want %d (every request entered off-owner)",
			forwarded, len(clusterRequestSet))
	}
	if received != len(clusterRequestSet) {
		t.Errorf("received_forwards = %d, want %d", received, len(clusterRequestSet))
	}
}

// TestClusterSweepByteIdentical scatters one sweep over the ring and
// requires the merged stream to carry every item exactly once, each
// executed on its ring owner, byte-identical to the single-node golden
// — regardless of which node the sweep enters through.
func TestClusterSweepByteIdentical(t *testing.T) {
	golden := goldenResults(t, clusterRequestSet)
	tc := newTestCluster(t, 3, nil)
	sweep := `{"runs":[` + strings.Join(clusterRequestSet, ",") + `]}`

	for entry := range tc.urls {
		resp := postJSON(t, tc.urls[entry]+"/v1/sweep", sweep)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sweep via node %d: status %d", entry, resp.StatusCode)
		}
		items := readSweepItems(t, resp)
		if len(items) != len(clusterRequestSet) {
			t.Fatalf("node %d: %d items, want %d", entry, len(items), len(clusterRequestSet))
		}
		seen := make(map[int]bool)
		for _, it := range items {
			if it.Error != "" {
				t.Fatalf("node %d item %d: %s", entry, it.Index, it.Error)
			}
			if seen[it.Index] {
				t.Fatalf("node %d: index %d delivered twice", entry, it.Index)
			}
			seen[it.Index] = true
			body := clusterRequestSet[it.Index]
			if owner := tc.ownerIndex(t, body); it.Node != tc.urls[owner] {
				t.Errorf("node %d item %d: executed on %q, owner %q",
					entry, it.Index, it.Node, tc.urls[owner])
			}
			if got := marshalResult(t, it.Result); got != golden[body] {
				t.Errorf("node %d item %d: result differs from golden", entry, it.Index)
			}
		}
	}
	var simulated int
	for i := range tc.servers {
		simulated += getMetrics(t, tc.urls[i]).Sims.Simulated
	}
	if simulated != len(clusterRequestSet) {
		t.Errorf("three sweeps simulated %d runs for %d keys", simulated, len(clusterRequestSet))
	}
}

// seamAll installs a blocking runCached seam on every node, reporting
// (node, started) and (node, canceled) events.
func seamAll(tc *testCluster) (started, canceled chan int, release chan struct{}) {
	started = make(chan int, 16)
	canceled = make(chan int, 16)
	release = make(chan struct{})
	for i, sv := range tc.servers {
		i := i
		sv.runCached = func(ctx context.Context, o blp.Options) (*blp.Result, bool, error) {
			started <- i
			select {
			case <-release:
				return &blp.Result{Cycles: 7}, false, nil
			case <-ctx.Done():
				canceled <- i
				return nil, false, ctx.Err()
			}
		}
	}
	return
}

// TestClusterForwardPropagatesCancellation pins the satellite fix:
// canceling the client's request must cancel the peer-side simulation —
// the RunContext plumbing crosses the HTTP hop via the forwarded
// request's context.
func TestClusterForwardPropagatesCancellation(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	started, canceled, release := seamAll(tc)
	defer close(release)

	body := `{"benchmark":"cc","scale":6}`
	owner := tc.ownerIndex(t, body)
	entry := tc.notOwner(t, body)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		tc.urls[entry]+"/v1/run", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	reqDone := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		reqDone <- err
	}()

	select {
	case n := <-started:
		if n != owner {
			t.Fatalf("simulation started on node %d, owner is %d", n, owner)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("forwarded simulation never started on the owner")
	}
	cancel()
	select {
	case n := <-canceled:
		if n != owner {
			t.Fatalf("cancellation reached node %d, want owner %d", n, owner)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client cancellation never reached the peer-side simulation")
	}
	<-reqDone
}

// TestClusterDrainShedsForwards pins the drain satellite: a draining
// member answers forwarded traffic 503 (with the cluster counter
// ticking), and the forwarding peer fails over to local compute, so the
// client still gets its result.
func TestClusterDrainShedsForwards(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	body := `{"benchmark":"cc","scale":6,"mode":"outer"}`
	owner := tc.ownerIndex(t, body)
	entry := tc.notOwner(t, body)

	tc.servers[owner].draining.Store(true)

	// A forwarded request straight at the draining owner sees 503.
	req, err := http.NewRequest(http.MethodPost, tc.urls[owner]+"/v1/run", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(forwardedHeader, tc.urls[entry])
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("forwarded request to draining owner: status %d, want 503", resp.StatusCode)
	}

	// Through the ring: the entry node's forward is refused and it falls
	// back to local compute — the client sees a 200 served by the entry.
	resp = postJSON(t, tc.urls[entry]+"/v1/run", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run via entry with draining owner: status %d, want 200 (failover)", resp.StatusCode)
	}
	var rr RunResponse
	decodeInto(t, resp, &rr)
	if rr.Node != tc.urls[entry] {
		t.Errorf("failover executed on %q, want entry %q", rr.Node, tc.urls[entry])
	}

	entrySnap := getMetrics(t, tc.urls[entry])
	pm := entrySnap.Cluster.Peers[tc.urls[owner]]
	if pm.Failed == 0 || pm.Fallback == 0 {
		t.Errorf("entry node counters %+v, want failed>0 and fallback>0", pm)
	}
	ownerSnap := getMetrics(t, tc.urls[owner])
	if ownerSnap.Cluster.ShedForwards == 0 {
		t.Errorf("draining owner shed_forwards = 0, want > 0")
	}

	// An un-forwarded sweep to the draining node still works (drain
	// shedding is for peer traffic; direct clients are handled by the
	// closing listener in a real shutdown).
	tc.servers[owner].draining.Store(false)
}

// TestClusterHealthz pins the peer-aware health surface: the cluster
// section lists the membership, and ?peers=1 probes each peer.
func TestClusterHealthz(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	resp, err := http.Get(tc.urls[0] + "/healthz?peers=1")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var hr healthzResponse
	decodeInto(t, resp, &hr)
	if hr.Cluster == nil || hr.Cluster.Self != tc.urls[0] || len(hr.Cluster.Nodes) != 3 {
		t.Fatalf("bad cluster healthz: %+v", hr.Cluster)
	}
	if len(hr.Cluster.Peers) != 2 {
		t.Fatalf("probed %d peers, want 2: %+v", len(hr.Cluster.Peers), hr.Cluster.Peers)
	}
	for name, status := range hr.Cluster.Peers {
		if status != "ok" {
			t.Errorf("peer %s: %s", name, status)
		}
	}

	// A draining peer shows up as not-ok in the probe.
	tc.servers[1].draining.Store(true)
	defer tc.servers[1].draining.Store(false)
	resp, err = http.Get(tc.urls[0] + "/healthz?peers=1")
	if err != nil {
		t.Fatal(err)
	}
	decodeInto(t, resp, &hr)
	if hr.Cluster.Peers[tc.urls[1]] == "ok" {
		t.Errorf("draining peer reported ok: %+v", hr.Cluster.Peers)
	}
}

// TestClusterSingleNodeUnchanged pins that cluster mode is strictly
// additive: an unclustered server reports cluster: null, no node field,
// and no forwarding headers change its behavior.
func TestClusterSingleNodeUnchanged(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if snap := getMetrics(t, ts.URL); snap.Cluster != nil {
		t.Fatalf("single node reports a cluster section: %+v", snap.Cluster)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/run",
		strings.NewReader(`{"benchmark":"cc","scale":6}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(forwardedHeader, "http://nobody:1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded-marked request on single node: status %d", resp.StatusCode)
	}
	var rr RunResponse
	decodeInto(t, resp, &rr)
	if rr.Node != "" {
		t.Errorf("single-node response carries node %q", rr.Node)
	}
}

// TestClusterPeerBusyPropagates pins load shedding across the hop: when
// the owner answers 429, the entry node propagates the 429 and its
// Retry-After to the client instead of absorbing the work.
func TestClusterPeerBusyPropagates(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	body := `{"benchmark":"cc","scale":6,"predictor":"oracle"}`
	owner := tc.ownerIndex(t, body)
	entry := tc.notOwner(t, body)

	// Saturate the owner: one slot, no waiting room, a simulation parked
	// in it.
	tc.servers[owner].q = newQueue(1, 0)
	started, _, release := seamAll(tc)
	parked := make(chan struct{})
	go func() {
		defer close(parked)
		resp := postJSON(t, tc.urls[owner]+"/v1/run", body)
		resp.Body.Close()
	}()
	<-started

	resp := postJSON(t, tc.urls[entry]+"/v1/run", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("entry answered %d for saturated owner, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("propagated 429 lost its Retry-After")
	}
	snap := getMetrics(t, tc.urls[entry])
	if pm := snap.Cluster.Peers[tc.urls[owner]]; pm.Fallback != 0 {
		t.Errorf("429 caused a local fallback (%+v); shedding must propagate", pm)
	}

	close(release)
	<-parked
}
