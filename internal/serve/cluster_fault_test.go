package serve

import (
	"context"
	"net/http"
	"strings"
	"testing"

	blp "repro"
	"repro/internal/store"
)

// TestClusterSweepSurvivesOwnerDeath is the fault-injection acceptance
// test: an owner is killed mid-sweep (its in-flight NDJSON stream torn,
// its listener gone) and the coordinating node must still complete the
// sweep — recomputing the dead member's items locally — with every item
// delivered exactly once and byte-identical to the single-node golden.
func TestClusterSweepSurvivesOwnerDeath(t *testing.T) {
	golden := goldenResults(t, clusterRequestSet)
	tc := newTestCluster(t, 3, nil)

	// The victim owns the first request of the set; the sweep enters
	// through a different node, so the victim's items cross the wire.
	victim := tc.ownerIndex(t, clusterRequestSet[0])
	origin := (victim + 1) % len(tc.urls)

	// Park the victim's simulations so the kill lands mid-sweep with its
	// sub-stream open and zero items delivered. Only the victim is
	// seamed: the origin's local fallback must really simulate.
	victimStarted := make(chan struct{}, 16)
	tc.servers[victim].runCached = func(ctx context.Context, o blp.Options) (*blp.Result, bool, error) {
		victimStarted <- struct{}{}
		<-ctx.Done()
		return nil, false, ctx.Err()
	}

	sweep := `{"runs":[` + strings.Join(clusterRequestSet, ",") + `]}`
	type sweepOut struct {
		items []SweepItem
		code  int
	}
	done := make(chan sweepOut, 1)
	go func() {
		resp := postJSON(t, tc.urls[origin]+"/v1/sweep", sweep)
		done <- sweepOut{readSweepItems(t, resp), resp.StatusCode}
	}()

	// The victim has begun "simulating" a forwarded item: the scatter is
	// in flight. Kill it — tear the open client connections (the origin's
	// sub-sweep stream dies mid-body) and close the listener (reconnects
	// are refused).
	<-victimStarted
	tc.fronts[victim].CloseClientConnections()
	tc.fronts[victim].Close()

	out := <-done
	if out.code != http.StatusOK {
		t.Fatalf("sweep status %d", out.code)
	}
	if len(out.items) != len(clusterRequestSet) {
		t.Fatalf("sweep delivered %d items, want %d", len(out.items), len(clusterRequestSet))
	}
	seen := make(map[int]bool)
	for _, it := range out.items {
		if it.Error != "" {
			t.Fatalf("item %d failed: %s", it.Index, it.Error)
		}
		if seen[it.Index] {
			t.Fatalf("index %d delivered twice", it.Index)
		}
		seen[it.Index] = true
		if got := marshalResult(t, it.Result); got != golden[clusterRequestSet[it.Index]] {
			t.Errorf("item %d: result differs from single-node golden", it.Index)
		}
	}

	// The origin recorded the victim's death: forwards failed, fallback
	// recomputed the orphaned items.
	snap := getMetrics(t, tc.urls[origin])
	pm := snap.Cluster.Peers[tc.urls[victim]]
	if pm.Forwarded == 0 || pm.Failed == 0 || pm.Fallback == 0 {
		t.Errorf("origin peer counters for dead owner = %+v, want forwarded, failed and fallback > 0", pm)
	}

	// The cluster still serves runs with the owner dead: requests for the
	// victim's keys fail over to local compute on whatever node they
	// enter through.
	resp := postJSON(t, tc.urls[origin]+"/v1/run", clusterRequestSet[0])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run after owner death: status %d", resp.StatusCode)
	}
	var rr RunResponse
	decodeInto(t, resp, &rr)
	if rr.Node != tc.urls[origin] {
		t.Errorf("post-death run executed on %q, want local failover on %q", rr.Node, tc.urls[origin])
	}
	if got := marshalResult(t, rr.Result); got != golden[clusterRequestSet[0]] {
		t.Errorf("post-death run differs from golden")
	}
}

// TestClusterWarmStart is the cluster warm-start equivalence test:
// three members share one durable store directory; after a full restart
// of every member, the same sweep completes with zero simulations
// cluster-wide and byte-identical output to the single-node golden.
func TestClusterWarmStart(t *testing.T) {
	golden := goldenResults(t, clusterRequestSet)
	dir := t.TempDir()
	sweep := `{"runs":[` + strings.Join(clusterRequestSet, ",") + `]}`

	openStores := func() []*store.Store {
		stores := make([]*store.Store, 3)
		for i := range stores {
			st, err := blp.OpenStore(dir, 0)
			if err != nil {
				t.Fatal(err)
			}
			stores[i] = st
		}
		return stores
	}
	closeAll := func(tc *testCluster, stores []*store.Store) {
		for _, f := range tc.fronts {
			f.Close()
		}
		for _, st := range stores {
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Generation 1: populate the shared store through the ring.
	stores := openStores()
	tc := newTestCluster(t, 3, func(i int, c Config) Config {
		c.Store = stores[i]
		return c
	})
	resp := postJSON(t, tc.urls[0]+"/v1/sweep", sweep)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("populate sweep: status %d", resp.StatusCode)
	}
	if items := readSweepItems(t, resp); len(items) != len(clusterRequestSet) {
		t.Fatalf("populate sweep delivered %d items", len(items))
	}
	closeAll(tc, stores)

	// Generation 2: a full cluster restart — fresh Servers, fresh store
	// handles, same directory. Every result must come off disk.
	stores = openStores()
	tc = newTestCluster(t, 3, func(i int, c Config) Config {
		c.Store = stores[i]
		return c
	})
	resp = postJSON(t, tc.urls[1]+"/v1/sweep", sweep)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm sweep: status %d", resp.StatusCode)
	}
	items := readSweepItems(t, resp)
	if len(items) != len(clusterRequestSet) {
		t.Fatalf("warm sweep delivered %d items", len(items))
	}
	for _, it := range items {
		if it.Error != "" {
			t.Fatalf("warm item %d: %s", it.Index, it.Error)
		}
		if got := marshalResult(t, it.Result); got != golden[clusterRequestSet[it.Index]] {
			t.Errorf("warm item %d differs from single-node golden", it.Index)
		}
	}
	var simulated int
	for i := range tc.servers {
		simulated += getMetrics(t, tc.urls[i]).Sims.Simulated
	}
	if simulated != 0 {
		t.Errorf("restarted cluster simulated %d runs, want 0 (warm start)", simulated)
	}
	closeAll(tc, stores)
}
