package serve

import (
	"context"
	"sort"
	"sync"

	blp "repro"
)

// optsOf projects a group back onto its Options (for trace-reuse hints).
func optsOf(runs []indexedRun) []blp.Options {
	opts := make([]blp.Options, len(runs))
	for i, ir := range runs {
		opts[i] = ir.Opts
	}
	return opts
}

// scatterSweep is the cluster sweep coordinator: it partitions a
// validated sweep by ring owner, runs this node's share locally,
// forwards each peer's share as one sub-sweep over the Backend seam,
// and feeds every completed item to deliver as it arrives — the merged
// stream is completion-ordered across the whole cluster, exactly like
// the single-node sweep is across its goroutines.
//
// Failure policy: a peer group that dies mid-stream (owner killed,
// draining, at capacity) falls back to local compute for exactly the
// items that were not yet delivered. Every index is delivered exactly
// once, so the client always receives len(runs) lines; a dead owner
// costs latency and local cycles, never results.
func (s *Server) scatterSweep(ctx context.Context, runs []indexedRun, deliver func(SweepItem)) {
	c := s.cluster
	groups := make(map[string][]indexedRun)
	for _, ir := range runs {
		owner := c.ring.Owner(ir.Opts.Key())
		groups[owner] = append(groups[owner], ir)
	}
	// Deterministic dispatch order (map iteration is not) so tests and
	// logs see a stable scatter; completion order remains whatever the
	// cluster produces.
	owners := make([]string, 0, len(groups))
	for o := range groups {
		owners = append(owners, o)
	}
	sort.Strings(owners)

	var wg sync.WaitGroup
	for _, owner := range owners {
		group := groups[owner]
		wg.Add(1)
		if owner == c.self {
			go func(group []indexedRun) {
				defer wg.Done()
				// This node's share is a local batch: hint trace reuse
				// across it like any other (see handleSweep).
				release := s.runner.HintTraces(optsOf(group))
				defer release()
				c.backends[c.self].SweepItems(ctx, group, deliver)
			}(group)
			continue
		}
		go func(owner string, group []indexedRun) {
			defer wg.Done()
			s.forwardSweepGroup(ctx, owner, group, deliver)
		}(owner, group)
	}
	wg.Wait()
}

// forwardSweepGroup streams one owner's share from that peer, tracking
// which client indices arrived; whatever the peer failed to produce is
// recomputed locally.
func (s *Server) forwardSweepGroup(ctx context.Context, owner string, group []indexedRun, deliver func(SweepItem)) {
	c := s.cluster
	c.addForwarded(owner, int64(len(group)))

	var mu sync.Mutex
	received := make(map[int]bool, len(group))
	track := func(item SweepItem) {
		mu.Lock()
		dup := received[item.Index]
		received[item.Index] = true
		mu.Unlock()
		if !dup {
			deliver(item)
		}
	}
	err := c.backends[owner].SweepItems(ctx, group, track)
	if err == nil || ctx.Err() != nil {
		// Success, or the client itself is gone — either way nothing
		// left to re-route (on cancellation the local fallback would
		// only mint canceled items; the handler's writer is dead).
		if ctx.Err() != nil {
			s.deliverMissing(group, received, &mu, deliver, ctx)
		}
		return
	}
	mu.Lock()
	var missing []indexedRun
	for _, ir := range group {
		if !received[ir.Index] {
			missing = append(missing, ir)
		}
	}
	mu.Unlock()
	c.addFailed(owner, int64(len(missing)))
	if len(missing) == 0 {
		return
	}
	c.addFallback(owner, int64(len(missing)))
	s.logf("sweep forward to %s failed (%v); recomputing %d item(s) locally",
		owner, err, len(missing))
	// Local fallback shares the trace-reuse hint story with any other
	// local batch: if the failed share contains multiple timing configs
	// of one workload, capture once and replay.
	opts := optsOf(missing)
	release := s.runner.HintTraces(opts)
	defer release()
	c.backends[c.self].SweepItems(ctx, missing, deliver)
}

// deliverMissing emits canceled-error items for indices a dead forward
// never produced when the client context is already gone, keeping the
// every-index-delivered-once invariant even on teardown paths where
// nobody is reading anymore (the handler drains its channel to unblock
// senders).
func (s *Server) deliverMissing(group []indexedRun, received map[int]bool, mu *sync.Mutex, deliver func(SweepItem), ctx context.Context) {
	mu.Lock()
	defer mu.Unlock()
	for _, ir := range group {
		if received[ir.Index] {
			continue
		}
		received[ir.Index] = true
		deliver(SweepItem{
			SchemaVersion: SchemaVersion,
			Index:         ir.Index,
			Key:           ir.Opts.Key(),
			Node:          s.wireNodeName(),
			Error:         context.Cause(ctx).Error(),
		})
	}
}
