package serve

import (
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	blp "repro"
)

// latencyWindow is how many recent request latencies the percentile
// estimator retains. Like the flight recorder's event ring, it is a
// bounded window: a server that has handled millions of requests still
// spends O(window) memory and reports percentiles over the recent past,
// which is what an operator watching a live service wants.
const latencyWindow = 1024

// serverMetrics is the per-server stats struct behind GET /metrics.
// Unlike the flight recorder it has many writers (one per request), so
// it trades the single-writer ring discipline for a plain mutex — HTTP
// request rates are nowhere near simulator event rates.
type serverMetrics struct {
	start time.Time

	mu       sync.Mutex
	requests map[string]int64 // per route, terminal status classes included
	rejected int64            // 429s from the admission queue
	timeouts int64            // runs that hit the per-request timeout
	errors   int64            // 5xx responses
	inFlight int64            // requests currently inside a handler

	lat  [latencyWindow]float64 // milliseconds, ring
	latN int64                  // total observations ever
}

func newServerMetrics() *serverMetrics {
	return &serverMetrics{start: time.Now(), requests: make(map[string]int64)}
}

func (m *serverMetrics) requestStart(route string) {
	m.mu.Lock()
	m.requests[route]++
	m.inFlight++
	m.mu.Unlock()
}

func (m *serverMetrics) requestEnd(elapsed time.Duration) {
	ms := float64(elapsed.Microseconds()) / 1000
	m.mu.Lock()
	m.inFlight--
	m.lat[m.latN%latencyWindow] = ms
	m.latN++
	m.mu.Unlock()
}

func (m *serverMetrics) addRejected() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

func (m *serverMetrics) addTimeout() {
	m.mu.Lock()
	m.timeouts++
	m.mu.Unlock()
}

func (m *serverMetrics) addError() {
	m.mu.Lock()
	m.errors++
	m.mu.Unlock()
}

// CacheMetrics mirrors blp.CacheStats on the wire.
type CacheMetrics struct {
	Hits      int64 `json:"hits"`
	Joined    int64 `json:"joined"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Budget    int64 `json:"budget"`
}

// StoreMetrics mirrors blp.StoreStats on the wire: the durable result
// store behind the in-memory caches. hits are memo misses answered from
// disk without simulating (the warm-start path); invalidated counts
// stale-version or corrupt objects dropped instead of served.
type StoreMetrics struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Writes      int64 `json:"writes"`
	Invalidated int64 `json:"invalidated"`
	Evictions   int64 `json:"evictions"`
	Entries     int   `json:"entries"`
	Bytes       int64 `json:"bytes"`
	Budget      int64 `json:"budget"`
}

// SimMetrics mirrors blp.RunnerStats on the wire. Captured/Replayed
// expose the trace-once/simulate-many accounting: the functional
// emulator ran simulated - replayed + captured times. Batched counts
// the replayed runs that rode a shared-decode batch (BatchGroups of
// them), and the seg_* counters expose the wrong-path segment cache:
// hits replayed a memoized wrong path with zero shadow emulation,
// invalidated counts fingerprint mismatches that fell back to live.
type SimMetrics struct {
	Simulated      int   `json:"simulated"`
	Cached         int   `json:"cached"`
	InFlight       int   `json:"in_flight"`
	Captured       int   `json:"captured"`
	Replayed       int   `json:"replayed"`
	Batched        int   `json:"batched"`
	BatchGroups    int   `json:"batch_groups"`
	SegHits        int64 `json:"seg_hits"`
	SegMisses      int64 `json:"seg_misses"`
	SegInvalidated int64 `json:"seg_invalidated"`
	SegBypassed    int64 `json:"seg_bypassed"`
}

// PeerMetrics is one peer's forwarding counters from this node's point
// of view: forwarded counts runs and sweep items routed to the peer,
// failed the forwards that died (peer down, draining, stream torn), and
// fallback the requests recomputed locally after a failed forward.
// failed <= forwarded and fallback <= failed+1 shapes never hold exactly
// (a torn sweep fails per missing item) — the invariants that do:
// fallback items always produced a response, and forwarded - failed
// items were answered by the peer.
type PeerMetrics struct {
	Forwarded int64 `json:"forwarded"`
	Failed    int64 `json:"failed"`
	Fallback  int64 `json:"fallback"`
}

// ClusterMetrics is the cluster section of /metrics (null when the
// server runs unclustered).
type ClusterMetrics struct {
	Self string `json:"self"`
	// RingNodes is the full membership (self included, sorted) this
	// node routes against.
	RingNodes []string `json:"ring_nodes"`
	// ReceivedForwards counts requests that arrived already routed by a
	// peer (the inbound half of Forwarded); ShedForwards counts the ones
	// refused with 503 because this node was draining.
	ReceivedForwards int64                  `json:"received_forwards"`
	ShedForwards     int64                  `json:"shed_forwards"`
	Peers            map[string]PeerMetrics `json:"peers"`
}

// LatencyMetrics summarizes the recent-request latency window.
type LatencyMetrics struct {
	Count int64      `json:"count"` // observations ever, not window size
	P50MS blp.Metric `json:"p50_ms"`
	P90MS blp.Metric `json:"p90_ms"`
	P99MS blp.Metric `json:"p99_ms"`
	MaxMS blp.Metric `json:"max_ms"` // max over the window
}

// MetricsSnapshot answers GET /metrics: request counters, the admission
// queue, the Runner's simulation and cache counters, and recent-latency
// percentiles. The singleflight story is directly legible here:
// cache.joined counts requests that attached to an identical in-flight
// simulation, cache.hits the ones served from the resident LRU.
type MetricsSnapshot struct {
	SchemaVersion    int              `json:"schema_version"`
	UptimeSeconds    float64          `json:"uptime_seconds"`
	Draining         bool             `json:"draining"`
	Requests         map[string]int64 `json:"requests"`
	Rejected         int64            `json:"rejected"` // 429 backpressure
	Timeouts         int64            `json:"timeouts"`
	Errors           int64            `json:"errors"`
	InFlightRequests int64            `json:"in_flight_requests"`
	QueueDepth       int64            `json:"queue_depth"` // waiting for admission
	QueueCapacity    int64            `json:"queue_capacity"`
	Sims             SimMetrics       `json:"sims"`
	Cache            CacheMetrics     `json:"cache"`
	TraceCache       CacheMetrics     `json:"trace_cache"`
	// Store is the durable second level (null when the server runs
	// without one); BehaviorVersion is the stamp its objects are keyed
	// under — it changes exactly when the simulator's numbers do.
	Store           *StoreMetrics `json:"store"`
	BehaviorVersion string        `json:"behavior_version"`
	// BatchGroupSizes histograms the Runner's batch groups by lane
	// count: key "6" -> 1 means one six-configuration sweep was run as
	// a single shared-decode batch. Empty until a batch has run.
	BatchGroupSizes map[string]int `json:"batch_group_sizes"`
	// Cluster is the peer-forwarding view (null when unclustered).
	Cluster *ClusterMetrics `json:"cluster"`
	Latency LatencyMetrics  `json:"latency"`
}

// snapshot assembles the exported metrics view; c is nil on an
// unclustered server.
func (m *serverMetrics) snapshot(runner *blp.Runner, q *queue, c *cluster, draining bool) MetricsSnapshot {
	m.mu.Lock()
	reqs := make(map[string]int64, len(m.requests))
	for k, v := range m.requests {
		reqs[k] = v
	}
	snap := MetricsSnapshot{
		SchemaVersion:    SchemaVersion,
		UptimeSeconds:    time.Since(m.start).Seconds(),
		Draining:         draining,
		Requests:         reqs,
		Rejected:         m.rejected,
		Timeouts:         m.timeouts,
		Errors:           m.errors,
		InFlightRequests: m.inFlight,
		Latency:          latencyLocked(&m.lat, m.latN),
	}
	m.mu.Unlock()

	rs := runner.Stats()
	snap.Sims = SimMetrics{
		Simulated: rs.Simulated, Cached: rs.Cached, InFlight: rs.InFlight,
		Captured: rs.Captured, Replayed: rs.Replayed,
		Batched: rs.Batched, BatchGroups: rs.BatchGroups,
		SegHits: rs.SegHits, SegMisses: rs.SegMisses,
		SegInvalidated: rs.SegInvalidated, SegBypassed: rs.SegBypassed,
	}
	snap.BatchGroupSizes = make(map[string]int)
	for k, v := range runner.BatchHistogram() {
		snap.BatchGroupSizes[strconv.Itoa(k)] = v
	}
	cs := runner.CacheStats()
	snap.Cache = CacheMetrics{
		Hits: cs.Hits, Joined: cs.Joined, Misses: cs.Misses,
		Evictions: cs.Evictions, Entries: cs.Entries, Bytes: cs.Bytes, Budget: cs.Budget,
	}
	snap.TraceCache = CacheMetrics{
		Hits: cs.Trace.Hits, Joined: cs.Trace.Joined, Misses: cs.Trace.Misses,
		Evictions: cs.Trace.Evictions, Entries: cs.Trace.Entries,
		Bytes: cs.Trace.Bytes, Budget: cs.Trace.Budget,
	}
	snap.BehaviorVersion = blp.BehaviorVersion()
	if st := cs.Store; st != nil {
		snap.Store = &StoreMetrics{
			Hits: st.Hits, Misses: st.Misses, Writes: st.Writes,
			Invalidated: st.Invalidated, Evictions: st.Evictions,
			Entries: st.Entries, Bytes: st.Bytes, Budget: st.Budget,
		}
	}
	if q != nil {
		snap.QueueDepth = q.depth()
		snap.QueueCapacity = int64(q.maxWait)
	}
	if c != nil {
		snap.Cluster = &ClusterMetrics{
			Self:             c.self,
			RingNodes:        c.ring.Nodes(),
			ReceivedForwards: c.received.Load(),
			ShedForwards:     c.shed.Load(),
			Peers:            c.snapshot(),
		}
	}
	return snap
}

// latencyLocked computes percentiles over the retained window; caller
// holds the metrics mutex.
func latencyLocked(ring *[latencyWindow]float64, n int64) LatencyMetrics {
	lm := LatencyMetrics{Count: n, P50MS: nan(), P90MS: nan(), P99MS: nan(), MaxMS: nan()}
	w := int(n)
	if w > latencyWindow {
		w = latencyWindow
	}
	if w == 0 {
		return lm
	}
	xs := make([]float64, w)
	copy(xs, ring[:w])
	sort.Float64s(xs)
	pick := func(p float64) blp.Metric {
		i := int(p * float64(w-1))
		return blp.Metric(xs[i])
	}
	lm.P50MS = pick(0.50)
	lm.P90MS = pick(0.90)
	lm.P99MS = pick(0.99)
	lm.MaxMS = blp.Metric(xs[w-1])
	return lm
}

func nan() blp.Metric { return blp.Metric(math.NaN()) }
