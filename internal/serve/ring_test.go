package serve

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func ringNodes(n int) []string {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("http://node-%d:8344", i)
	}
	return nodes
}

// Every key is owned by exactly one member of the ring: ownership is a
// total, deterministic function into the membership set, whatever the
// key material and cluster size.
func TestRingEveryKeyOwnedByExactlyOneNode(t *testing.T) {
	prop := func(keys []string, nodeCount uint8) bool {
		n := int(nodeCount%8) + 1
		r := NewRing(ringNodes(n), 0)
		members := make(map[string]bool, n)
		for _, m := range r.Nodes() {
			members[m] = true
		}
		for _, k := range keys {
			o := r.Owner(k)
			if !members[o] || o != r.Owner(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Removing one member moves only that member's keys: every key owned by
// a survivor keeps its owner — the consistent-hashing property that
// makes membership churn cheap for the caches.
func TestRingRemovalMovesOnlyVictimKeys(t *testing.T) {
	prop := func(seed int64, nodeCount, victim uint8) bool {
		n := int(nodeCount%6) + 2 // 2..7 members, so a survivor exists
		nodes := ringNodes(n)
		dead := nodes[int(victim)%n]
		before := NewRing(nodes, 0)
		after := before.Without(dead)
		if after.Len() != n-1 {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			k := fmt.Sprintf("key-%d", rng.Int63())
			was := before.Owner(k)
			if was == dead {
				continue // this key must move; anywhere live is fine
			}
			if after.Owner(k) != was {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Balance: with the default virtual-node count, no member's share of a
// large key population strays past keys/n ± 50% — the tolerance the
// cluster's capacity planning (and this suite) is allowed to assume.
func TestRingBalanceWithinTolerance(t *testing.T) {
	const keys = 20000
	for _, n := range []int{2, 3, 5, 8} {
		r := NewRing(ringNodes(n), 0)
		counts := make(map[string]int, n)
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < keys; i++ {
			counts[r.Owner(fmt.Sprintf("key-%d", rng.Int63()))]++
		}
		if len(counts) != n {
			t.Fatalf("n=%d: only %d members own keys", n, len(counts))
		}
		share := float64(keys) / float64(n)
		for node, c := range counts {
			if f := float64(c); f > 1.5*share || f < 0.5*share {
				t.Errorf("n=%d: %s owns %d keys, outside [%d, %d]",
					n, node, c, int(0.5*share), int(1.5*share))
			}
		}
	}
}

// Placement is pinned: the owner of these keys under this membership is
// part of the compatibility surface. If this test fails, placement
// drifted across a release — every deployed cluster would re-shard its
// entire cache on upgrade. Do not "fix" the expectations without
// meaning exactly that.
func TestRingPlacementPinned(t *testing.T) {
	r := NewRing([]string{"http://a:1", "http://b:1", "http://c:1"}, 0)
	want := map[string]string{
		"bench=cc scale=6":  "http://c:1",
		"bench=bfs scale=6": "http://a:1",
		"k0":                "http://b:1",
		"k1":                "http://a:1",
		"k2":                "http://c:1",
		"k3":                "http://c:1",
		"k4":                "http://a:1",
	}
	for k, w := range want {
		if got := r.Owner(k); got != w {
			t.Errorf("Owner(%q) = %q, want %q (placement drift!)", k, got, w)
		}
	}
	// The same membership spelled in a different order and with
	// duplicates is the same ring.
	r2 := NewRing([]string{"http://c:1", "http://a:1", "http://b:1", "http://a:1"}, 0)
	for k, w := range want {
		if got := r2.Owner(k); got != w {
			t.Errorf("reordered membership: Owner(%q) = %q, want %q", k, got, w)
		}
	}
}
