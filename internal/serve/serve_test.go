package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	blp "repro"
)

// newTestServer builds a Server (no listener) and an httptest front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeInto(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
}

func getMetrics(t *testing.T, baseURL string) MetricsSnapshot {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	var snap MetricsSnapshot
	decodeInto(t, resp, &snap)
	return snap
}

func TestRunEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"benchmark":"cc","scale":6}`

	resp := postJSON(t, ts.URL+"/v1/run", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var rr RunResponse
	decodeInto(t, resp, &rr)
	if rr.SchemaVersion != SchemaVersion {
		t.Fatalf("schema_version %d, want %d", rr.SchemaVersion, SchemaVersion)
	}
	if rr.Cached {
		t.Fatal("first request reported cached")
	}
	if rr.Result == nil || rr.Result.Cycles <= 0 || rr.Result.Stats.Committed == 0 {
		t.Fatalf("implausible result: %+v", rr.Result)
	}
	if rr.Key == "" {
		t.Fatal("missing canonical key")
	}

	// The identical request — spelled with explicit defaults — is served
	// from the shared cache.
	resp = postJSON(t, ts.URL+"/v1/run", `{"benchmark":"cc","scale":6,"seed":1,"degree":16}`)
	var rr2 RunResponse
	decodeInto(t, resp, &rr2)
	if !rr2.Cached {
		t.Fatal("duplicate request was not served from cache")
	}
	if rr2.Key != rr.Key || rr2.Result.Cycles != rr.Result.Cycles {
		t.Fatal("duplicate served a different result")
	}
	snap := getMetrics(t, ts.URL)
	if snap.Cache.Hits+snap.Cache.Joined == 0 {
		t.Fatalf("metrics show no cache sharing: %+v", snap.Cache)
	}
	if snap.Sims.Simulated != 1 {
		t.Fatalf("simulated %d, want 1", snap.Sims.Simulated)
	}
	// A one-shot workload must not pay for a trace capture.
	if snap.Sims.Captured != 0 || snap.Sims.Replayed != 0 {
		t.Fatalf("one-shot run used the trace path: captured=%d replayed=%d",
			snap.Sims.Captured, snap.Sims.Replayed)
	}

	// A second timing configuration of the same workload is the Runner's
	// cue to capture the trace and replay it; the accounting must be
	// visible on the wire.
	resp = postJSON(t, ts.URL+"/v1/run", `{"benchmark":"cc","scale":6,"predictor":"oracle"}`)
	var rr3 RunResponse
	decodeInto(t, resp, &rr3)
	if rr3.Cached {
		t.Fatal("distinct timing configuration reported cached")
	}
	snap = getMetrics(t, ts.URL)
	if snap.Sims.Captured != 1 || snap.Sims.Replayed != 1 {
		t.Fatalf("trace accounting: captured=%d replayed=%d, want 1/1",
			snap.Sims.Captured, snap.Sims.Replayed)
	}
	if snap.TraceCache.Entries != 1 || snap.TraceCache.Bytes <= 0 {
		t.Fatalf("trace cache not visible in metrics: %+v", snap.TraceCache)
	}
}

// TestRunPolicyEndpoint drives the recovery-policy matrix over the wire:
// each policy string is a distinct timing configuration (own key, own
// simulation) of the same captured workload, and the policy-specific
// counters surface in the returned stats.
func TestRunPolicyEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	run := func(body string) RunResponse {
		t.Helper()
		resp := postJSON(t, ts.URL+"/v1/run", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d for %s", resp.StatusCode, body)
		}
		var rr RunResponse
		decodeInto(t, resp, &rr)
		if rr.Result == nil || rr.Result.Cycles <= 0 || rr.Result.Stats.Committed == 0 {
			t.Fatalf("implausible result for %s: %+v", body, rr.Result)
		}
		return rr
	}

	base := run(`{"benchmark":"cc","scale":6}`)
	part := run(`{"benchmark":"cc","scale":6,"policy":"partial:8"}`)
	thr := run(`{"benchmark":"cc","scale":6,"policy":"throttle:4"}`)

	if part.Key == base.Key || thr.Key == base.Key || part.Key == thr.Key {
		t.Fatalf("policies did not get distinct cache keys:\n%s\n%s\n%s",
			base.Key, part.Key, thr.Key)
	}
	if part.Result.Stats.Committed != base.Result.Stats.Committed ||
		thr.Result.Stats.Committed != base.Result.Stats.Committed {
		t.Fatal("a recovery policy changed the committed instruction count")
	}
	if part.Result.Stats.DrainCycles == 0 {
		t.Fatal("partial:8 run reported no drain cycles")
	}
	if thr.Result.Stats.ThrottledCycles == 0 {
		t.Fatal("throttle:4 run reported no throttled cycles")
	}

	// An explicitly spelled default policy is the same simulation: it must
	// normalize onto the baseline's cache entry, not fork a new one.
	conv := run(`{"benchmark":"cc","scale":6,"policy":"conventional"}`)
	if !conv.Cached || conv.Key != base.Key {
		t.Fatalf("explicit default policy missed the cache: cached=%v key=%s",
			conv.Cached, conv.Key)
	}
}

func TestRunValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body string
	}{
		{"malformed json", `{"benchmark":`},
		{"unknown field", `{"benchmark":"cc","bogus":1}`},
		{"missing benchmark", `{}`},
		{"unknown benchmark", `{"benchmark":"dijkstra"}`},
		{"unknown mode", `{"benchmark":"cc","mode":"sideways"}`},
		{"inner on non-sliceable", `{"benchmark":"bfs","mode":"inner"}`},
		{"bad smt", `{"benchmark":"cc","smt":3}`},
		{"bad scale", `{"benchmark":"cc","scale":31}`},
		{"bad predictor", `{"benchmark":"cc","predictor":"psychic"}`},
		{"bad policy", `{"benchmark":"cc","policy":"psychic"}`},
		{"bad policy depth", `{"benchmark":"cc","policy":"partial:x"}`},
		{"bad policy conf", `{"benchmark":"cc","policy":"throttle:9"}`},
		{"reserve below sentinel", `{"benchmark":"cc","reserve":-2}`},
		{"negative watchdog", `{"benchmark":"cc","watchdog_cycles":-1}`},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+"/v1/run", tc.body)
		var er errorResponse
		decodeInto(t, resp, &er)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, er.Error)
			continue
		}
		if er.Error == "" {
			t.Errorf("%s: empty error body", tc.name)
		}
	}
	// None of those may have reached a simulator.
	if snap := getMetrics(t, ts.URL); snap.Sims.Simulated != 0 {
		t.Fatalf("validation failures simulated %d runs", snap.Sims.Simulated)
	}

	// Wrong method on a valid route.
	resp, err := http.Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/run status %d, want 405", resp.StatusCode)
	}
}

// readSweepItems parses an NDJSON sweep response.
func readSweepItems(t *testing.T, resp *http.Response) []SweepItem {
	t.Helper()
	defer resp.Body.Close()
	var items []SweepItem
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var it SweepItem
		if err := json.Unmarshal(line, &it); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		items = append(items, it)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return items
}

func TestSweepStreaming(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"runs":[
		{"benchmark":"cc","scale":6},
		{"benchmark":"cc","scale":6,"mode":"outer"},
		{"benchmark":"cc","scale":6}
	]}`
	resp := postJSON(t, ts.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content-type %q", ct)
	}
	items := readSweepItems(t, resp)
	if len(items) != 3 {
		t.Fatalf("got %d items, want 3", len(items))
	}
	seen := map[int]bool{}
	cached := 0
	for _, it := range items {
		if it.SchemaVersion != SchemaVersion {
			t.Fatalf("item schema_version %d", it.SchemaVersion)
		}
		if it.Error != "" || it.Result == nil || it.Result.Cycles <= 0 {
			t.Fatalf("bad item: %+v", it)
		}
		seen[it.Index] = true
		if it.Cached {
			cached++
		}
	}
	if len(seen) != 3 {
		t.Fatalf("indices %v do not cover the request", seen)
	}
	// Runs 0 and 2 share a canonical key: one simulated, one shared.
	if cached == 0 {
		t.Fatal("duplicate run inside the sweep was not deduplicated")
	}
}

func TestSweepValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/sweep", `{"runs":[]}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty sweep: status %d, want 400", resp.StatusCode)
	}

	resp = postJSON(t, ts.URL+"/v1/sweep",
		`{"runs":[{"benchmark":"cc","scale":6},{"benchmark":"zz"}]}`)
	var er errorResponse
	decodeInto(t, resp, &er)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid entry: status %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(er.Error, "runs[1]") {
		t.Fatalf("error %q does not name the offending entry", er.Error)
	}

	var big strings.Builder
	big.WriteString(`{"runs":[`)
	for i := 0; i <= maxSweepRuns; i++ {
		if i > 0 {
			big.WriteString(",")
		}
		fmt.Fprintf(&big, `{"benchmark":"cc","seed":%d}`, i+1)
	}
	big.WriteString(`]}`)
	resp = postJSON(t, ts.URL+"/v1/sweep", big.String())
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized sweep: status %d, want 400", resp.StatusCode)
	}
	if snap := getMetrics(t, ts.URL); snap.Sims.Simulated != 0 {
		t.Fatalf("rejected sweeps simulated %d runs", snap.Sims.Simulated)
	}
}

// A run that fails structural validation deep in the core (zero reserve
// under selective flush) reports its error on its own NDJSON line; the
// sweep itself still succeeds.
func TestSweepItemError(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"runs":[
		{"benchmark":"cc","scale":6},
		{"benchmark":"cc","scale":6,"mode":"outer","reserve":-1}
	]}`
	resp := postJSON(t, ts.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	items := readSweepItems(t, resp)
	if len(items) != 2 {
		t.Fatalf("got %d items", len(items))
	}
	var ok, failed int
	for _, it := range items {
		switch {
		case it.Error == "" && it.Result != nil:
			ok++
		case it.Error != "" && it.Result == nil:
			failed++
		default:
			t.Fatalf("inconsistent item: %+v", it)
		}
	}
	if ok != 1 || failed != 1 {
		t.Fatalf("ok=%d failed=%d, want 1/1", ok, failed)
	}
}

func TestFigureEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// table1 is computed without simulations.
	resp, err := http.Get(ts.URL + "/v1/figures/table1")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("table1 status %d", resp.StatusCode)
	}
	var rep blp.Report
	decodeInto(t, resp, &rep)
	if rep.SchemaVersion != blp.MetricsSchemaVersion || len(rep.Figures) != 1 {
		t.Fatalf("bad report: %+v", rep)
	}
	if rep.Figures[0].ID != "table1" {
		t.Fatalf("unexpected figure id %q", rep.Figures[0].ID)
	}

	resp, err = http.Get(ts.URL + "/v1/figures/table1?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/csv" {
		t.Fatalf("csv content-type %q", ct)
	}
	rows, err := csv.NewReader(resp.Body).ReadAll()
	resp.Body.Close()
	if err != nil {
		t.Fatalf("csv parse: %v", err)
	}
	if len(rows) < 2 {
		t.Fatalf("csv has %d rows", len(rows))
	}

	for path, want := range map[string]int{
		"/v1/figures/nope":              http.StatusNotFound,
		"/v1/figures/4?delta=x":         http.StatusBadRequest,
		"/v1/figures/4?format=yaml":     http.StatusBadRequest,
		"/v1/figures/table1?cores=zero": http.StatusBadRequest,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// A simulation-backed figure regenerates through the shared Runner and
// reuses the cache across requests.
func TestFigureWithRuns(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/figures/4?delta=-10")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fig4 status %d", resp.StatusCode)
	}
	var rep blp.Report
	decodeInto(t, resp, &rep)
	if len(rep.Figures) != 1 || len(rep.Figures[0].Values) == 0 {
		t.Fatalf("fig4 report empty: %+v", rep)
	}
	simulated := s.Runner().Stats().Simulated
	if simulated == 0 {
		t.Fatal("figure ran no simulations")
	}
	// Second request: fully served from the Runner's cache.
	resp, err = http.Get(ts.URL + "/v1/figures/4?delta=-10")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if again := s.Runner().Stats().Simulated; again != simulated {
		t.Fatalf("figure re-simulated: %d -> %d", simulated, again)
	}
}

// Backpressure: with one execution slot and a one-deep waiting room, a
// third concurrent request is rejected with 429 + Retry-After while the
// first two eventually succeed. The blocking "simulation" is a test seam
// — no timing assumptions.
func TestBackpressure429(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 1})
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	s.runCached = func(ctx context.Context, o blp.Options) (*blp.Result, bool, error) {
		started <- struct{}{}
		select {
		case <-release:
			return &blp.Result{Cycles: 7}, false, nil
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}

	body := `{"benchmark":"cc","scale":6}`
	type outcome struct{ status int }
	results := make(chan outcome, 2)
	do := func() {
		resp := postJSON(t, ts.URL+"/v1/run", body)
		resp.Body.Close()
		results <- outcome{resp.StatusCode}
	}
	go do()
	<-started // A holds the only slot

	go do() // B queues
	deadline := time.Now().Add(10 * time.Second)
	for getMetrics(t, ts.URL).QueueDepth != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	resp := postJSON(t, ts.URL+"/v1/run", body) // C: waiting room full
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third request status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	close(release)
	for i := 0; i < 2; i++ {
		if o := <-results; o.status != http.StatusOK {
			t.Fatalf("admitted request status %d", o.status)
		}
	}
	snap := getMetrics(t, ts.URL)
	if snap.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", snap.Rejected)
	}
	if snap.QueueDepth != 0 {
		t.Fatalf("queue depth %d after drain", snap.QueueDepth)
	}
}

// The per-run timeout propagates as context cancellation and surfaces as
// 504.
func TestRunTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{RunTimeout: 20 * time.Millisecond})
	s.runCached = func(ctx context.Context, o blp.Options) (*blp.Result, bool, error) {
		<-ctx.Done()
		return nil, false, ctx.Err()
	}
	resp := postJSON(t, ts.URL+"/v1/run", `{"benchmark":"cc","scale":6}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if snap := getMetrics(t, ts.URL); snap.Timeouts != 1 {
		t.Fatalf("timeouts = %d, want 1", snap.Timeouts)
	}
}

func TestHealthz(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	s.draining.Store(true)
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status %d, want 503", resp.StatusCode)
	}
}

// A panicking handler answers 500 and the server keeps serving.
func TestPanicContained(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.runCached = func(ctx context.Context, o blp.Options) (*blp.Result, bool, error) {
		panic("injected handler panic")
	}
	resp := postJSON(t, ts.URL+"/v1/run", `{"benchmark":"cc","scale":6}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatal("server unusable after handler panic")
	}
}

// TestMetricsSchemaV4Fields pins the v4 additions to GET /metrics: the
// wrong-path segment-cache counters surface once a replayed run has
// exercised the cache, and the batch fields are on the wire. (The sweep
// endpoint runs items individually to stream them in completion order,
// so the batch counters stay zero here; they count RunAllContext groups
// on an embedded Runner.)
func TestMetricsSchemaV4Fields(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"runs":[
		{"benchmark":"cc","scale":6,"mode":"outer"},
		{"benchmark":"cc","scale":6,"mode":"outer","predictor":"oracle"}
	]}`
	resp := postJSON(t, ts.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if items := readSweepItems(t, resp); len(items) != 2 {
		t.Fatalf("got %d items, want 2", len(items))
	}
	snap := getMetrics(t, ts.URL)
	if snap.SchemaVersion != SchemaVersion {
		t.Fatalf("schema_version %d, want %d", snap.SchemaVersion, SchemaVersion)
	}
	if snap.Sims.Replayed == 0 {
		t.Fatalf("two timing configs of one workload did not replay: %+v", snap.Sims)
	}
	if snap.Sims.SegMisses == 0 {
		t.Fatalf("segment-cache counters missing from the wire: %+v", snap.Sims)
	}
	if snap.BatchGroupSizes == nil {
		t.Fatal("batch_group_sizes absent from the snapshot")
	}
	if snap.Sims.Batched != 0 || snap.Sims.BatchGroups != 0 || len(snap.BatchGroupSizes) != 0 {
		t.Fatalf("per-item sweep reported batch groups: %+v sizes=%v",
			snap.Sims, snap.BatchGroupSizes)
	}
}
