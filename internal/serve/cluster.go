package serve

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"

	blp "repro"
)

// cluster is a Server's view of its peer group: the consistent-hash
// ring over every member (self included), one Backend per member, and
// the per-peer forwarding counters surfaced on /metrics. nil on an
// unclustered server — cluster mode is strictly additive.
type cluster struct {
	self     string
	ring     *Ring
	backends map[string]Backend // every ring member; self maps to the localBackend

	// received counts requests that arrived carrying forwardedHeader —
	// the inbound half of the forwarding story, so a test (or operator)
	// can see from the owner's side that routing works.
	received atomic.Int64
	// shed counts forwarded requests refused with 503 because this node
	// was draining (peers reroute them to local compute).
	shed atomic.Int64

	mu    sync.Mutex
	peers map[string]*peerCounters // keyed by peer name; self never appears
}

// peerCounters tracks one peer from this node's point of view.
type peerCounters struct {
	forwarded int64 // requests routed to the peer (runs + sweep items)
	failed    int64 // forwards that died (peer down/draining/stream torn)
	fallback  int64 // requests recomputed locally after a failed forward
}

func newCluster(self string, peers []string, mkPeer func(name string) Backend, local Backend) *cluster {
	members := append([]string{self}, peers...)
	c := &cluster{
		self:     self,
		ring:     NewRing(members, 0),
		backends: make(map[string]Backend),
		peers:    make(map[string]*peerCounters),
	}
	for _, n := range c.ring.Nodes() {
		if n == self {
			c.backends[n] = local
			continue
		}
		c.backends[n] = mkPeer(n)
		c.peers[n] = &peerCounters{}
	}
	return c
}

// countersLocked returns peer's counter struct; caller holds c.mu.
func (c *cluster) countersLocked(peer string) *peerCounters {
	pc := c.peers[peer]
	if pc == nil {
		pc = &peerCounters{}
		c.peers[peer] = pc
	}
	return pc
}

func (c *cluster) addForwarded(peer string, n int64) {
	c.mu.Lock()
	c.countersLocked(peer).forwarded += n
	c.mu.Unlock()
}

func (c *cluster) addFailed(peer string, n int64) {
	c.mu.Lock()
	c.countersLocked(peer).failed += n
	c.mu.Unlock()
}

func (c *cluster) addFallback(peer string, n int64) {
	c.mu.Lock()
	c.countersLocked(peer).fallback += n
	c.mu.Unlock()
}

// snapshot copies the per-peer counters for /metrics.
func (c *cluster) snapshot() map[string]PeerMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]PeerMetrics, len(c.peers))
	for name, pc := range c.peers {
		out[name] = PeerMetrics{Forwarded: pc.forwarded, Failed: pc.failed, Fallback: pc.fallback}
	}
	return out
}

// nodeName is this server's identity for logs and Backend.Name.
func (s *Server) nodeName() string {
	if s.cluster != nil {
		return s.cluster.self
	}
	return "local"
}

// wireNodeName is the node field stamped on responses: the advertised
// name in cluster mode, empty (omitted from JSON) on a single node so
// the single-node wire format is unchanged.
func (s *Server) wireNodeName() string {
	if s.cluster != nil {
		return s.cluster.self
	}
	return ""
}

// fromPeer reports whether the request was forwarded by a cluster
// member (and therefore must be executed locally, never re-forwarded).
func fromPeer(r *http.Request) bool { return r.Header.Get(forwardedHeader) != "" }

// refuseForwardWhileDraining answers a forwarded request with 503 when
// the node is draining, so peers fail over instead of queueing work on
// a node that is leaving. Returns true if it wrote the response.
// Direct client requests are unaffected — the closing listener handles
// those — but forwarded traffic rides pooled keep-alive connections
// that outlive the listener, so the drain must be explicit here.
func (s *Server) refuseForwardWhileDraining(w http.ResponseWriter, r *http.Request) bool {
	if s.cluster == nil || !fromPeer(r) {
		return false
	}
	s.cluster.received.Add(1)
	if !s.draining.Load() {
		return false
	}
	s.cluster.shed.Add(1)
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, "draining; reroute to another member")
	return true
}

// routeRun decides where a validated /v1/run executes. It returns
// handled=true when it wrote the whole response (a successful forward,
// a propagated 429/504, or a client that went away); handled=false
// means the caller must execute locally — either this node owns the
// key, the request is already a forward, or the owner is down and
// local compute is the failover (counted per peer).
func (s *Server) routeRun(w http.ResponseWriter, r *http.Request, rq RunRequest, o blp.Options) (handled bool) {
	c := s.cluster
	if c == nil || fromPeer(r) {
		return false
	}
	owner := c.ring.Owner(o.Key())
	if owner == c.self {
		return false
	}
	backend := c.backends[owner]
	c.addForwarded(owner, 1)
	// The origin acts as a router here: it holds no local admission slot
	// while forwarding (admission is the owner's decision), but it does
	// apply its own per-run timeout so a wedged peer cannot pin the
	// client past the origin's contract.
	ctx, cancel := s.runCtx(r.Context())
	defer cancel()
	rr, err := backend.Run(ctx, rq, o)
	if err == nil {
		writeJSON(w, http.StatusOK, *rr)
		return true
	}
	var busy *peerBusyError
	var remote *remoteError
	switch {
	case errors.As(err, &busy):
		// The owner is shedding load; honor its decision and its
		// Retry-After rather than absorbing the overload locally.
		s.metrics.addRejected()
		ra := busy.retryAfter
		if ra == "" {
			ra = "1"
		}
		w.Header().Set("Retry-After", ra)
		writeError(w, http.StatusTooManyRequests, "owner at capacity; retry later")
		return true
	case errors.As(err, &remote):
		// The run reached the owner and failed there (bad configuration,
		// simulation error, owner-side timeout). Local compute would fail
		// identically; surface the owner's verdict.
		s.runError(w, remoteRunError(remote))
		return true
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.addTimeout()
		writeError(w, http.StatusGatewayTimeout, "run exceeded the server's per-run timeout")
		return true
	case errors.Is(err, context.Canceled):
		// Client gone; the cancellation has already propagated across
		// the hop and stopped the peer-side simulation.
		return true
	default:
		// Peer down or draining: fail over to local compute.
		c.addFailed(owner, 1)
		c.addFallback(owner, 1)
		s.logf("forward to %s failed (%v); falling back to local compute", owner, err)
		return false
	}
}

// remoteRunError converts a peer's terminal answer into the error shape
// runError classifies: a 504 stays a timeout, anything else surfaces as
// the peer's message.
func remoteRunError(e *remoteError) error {
	if e.status == http.StatusGatewayTimeout {
		return context.DeadlineExceeded
	}
	return errors.New(e.msg)
}
