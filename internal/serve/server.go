// Package serve exposes the blp simulation harness as a multi-tenant
// HTTP service: simulation-as-a-service on top of the memoized,
// concurrency-bounded blp.Runner.
//
// Endpoints:
//
//	POST /v1/run          one blp.Options → versioned result JSON
//	POST /v1/sweep        batch of options → streamed NDJSON, one line
//	                      per run in completion order
//	GET  /v1/figures/{id} paper figure/table as JSON (blp.Report) or CSV
//	GET  /healthz         liveness (503 while draining)
//	GET  /metrics         counters: requests, cache hits/joins/misses,
//	                      queue depth, in-flight sims, p50/p99 latency
//
// Behind the handlers sit the Runner's sharded byte-budgeted LRU result
// cache and singleflight dedup (identical requests from different HTTP
// clients simulate once), a bounded admission queue with 429
// backpressure, per-request timeouts plumbed as context cancellation
// into the sim driver loop, and graceful drain: Shutdown (or the
// DrainOnSignal helper wired to SIGTERM in cmd/sfserved) stops
// accepting, lets in-flight requests finish, and flushes a final
// metrics snapshot.
package serve

import (
	"context"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"time"

	blp "repro"
	"repro/internal/store"
)

// Config sizes a Server. The zero value is usable: defaults are filled
// in by New.
type Config struct {
	// Addr is the listen address for ListenAndServe (default ":8344").
	Addr string
	// Jobs bounds concurrent simulations in the shared Runner
	// (<= 0: runtime.NumCPU).
	Jobs int
	// CacheBytes is the Runner's result-cache budget
	// (0: blp.DefaultCacheBudget; negative: unbounded).
	CacheBytes int64
	// MaxConcurrent bounds simulation requests admitted at once
	// (<= 0: 2×Jobs). A sweep counts as one admitted request.
	MaxConcurrent int
	// QueueDepth bounds requests waiting for admission beyond
	// MaxConcurrent; anything more is answered 429 (< 0: 0 — reject as
	// soon as all slots are busy; 0 selects the default 64).
	QueueDepth int
	// RunTimeout bounds each simulation run (not each figure); the
	// deadline propagates as context cancellation into the sim loop.
	// 0 disables.
	RunTimeout time.Duration
	// Store, when non-nil, is the durable result store behind the
	// Runner's in-memory caches (open one with blp.OpenStore): memo
	// misses consult it before simulating, fresh results and traces are
	// written through, and a restarted server warm-starts from it. The
	// caller owns the store's lifecycle (Close it after Shutdown).
	Store *store.Store
	// Self is this node's advertised base URL in a cluster
	// ("http://10.0.0.1:8344") — its name on the consistent-hash ring
	// and the value peers see in the forwarded-by header. Required when
	// Peers is non-empty; ignored otherwise.
	Self string
	// Peers lists the other cluster members' base URLs. Non-empty
	// enables cluster mode: each /v1/run routes to the ring owner of its
	// Options.Key (forwarding if that is a peer), and /v1/sweep scatters
	// its items across owners and merges the streams. Self may appear in
	// the list (it is deduplicated); every member must be configured
	// with the same membership set for placement to agree.
	Peers []string
	// Logf receives operational log lines (nil: discard).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8344"
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = blp.DefaultCacheBudget
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	} else if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	return c
}

// Server is one simulation service instance. Create with New; it is
// ready to serve via Handler, Serve, or ListenAndServe.
type Server struct {
	cfg      Config
	runner   *blp.Runner
	q        *queue
	metrics  *serverMetrics
	hs       *http.Server
	ln       net.Listener
	draining atomic.Bool

	// local is the Backend over this process's Runner; cluster is the
	// peer group (nil on an unclustered server — see Config.Peers).
	local   *localBackend
	cluster *cluster

	// runCached is the Runner call behind /v1/run and /v1/sweep;
	// a test seam (deterministic slow/blocking "simulations" for the
	// backpressure and shutdown tests without burning sim time).
	runCached func(ctx context.Context, o blp.Options) (*blp.Result, bool, error)
}

// New builds a Server from cfg (see Config for defaulting). It panics
// if cfg.Peers is set without cfg.Self — a cluster member that does not
// know its own ring name cannot route (cmd/sfserved validates the flags
// before getting here).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	if len(cfg.Peers) > 0 && cfg.Self == "" {
		panic("serve: Config.Peers set without Config.Self")
	}
	runner := blp.NewRunnerStore(cfg.Jobs, cfg.CacheBytes, cfg.Store)
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2 * runner.Jobs()
	}
	s := &Server{
		cfg:       cfg,
		runner:    runner,
		q:         newQueue(cfg.MaxConcurrent, cfg.QueueDepth),
		metrics:   newServerMetrics(),
		runCached: runner.RunCached,
	}
	s.local = &localBackend{s: s}
	if peers := clusterPeers(cfg.Self, cfg.Peers); len(peers) > 0 {
		s.cluster = newCluster(cfg.Self, peers,
			func(name string) Backend { return newPeerBackend(name, cfg.Self) }, s.local)
	}
	s.hs = &http.Server{
		Addr:              cfg.Addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// clusterPeers filters Self out of the configured peer list (operators
// commonly hand every member the same full membership list).
func clusterPeers(self string, peers []string) []string {
	out := make([]string, 0, len(peers))
	for _, p := range peers {
		if p != "" && p != self {
			out = append(out, p)
		}
	}
	return out
}

// Runner exposes the shared Runner (figure regeneration in handlers,
// introspection in tests).
func (s *Server) Runner() *blp.Runner { return s.runner }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Handler returns the service's routed handler; useful for tests
// (httptest) and embedding.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.instrument("/v1/run", s.handleRun))
	mux.HandleFunc("POST /v1/sweep", s.instrument("/v1/sweep", s.handleSweep))
	mux.HandleFunc("GET /v1/figures/{id}", s.instrument("/v1/figures", s.handleFigure))
	// healthz and metrics bypass the admission queue by construction:
	// they must answer even when the service is saturated.
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	return mux
}

// ListenAndServe listens on cfg.Addr and serves until Shutdown or
// failure, like http.Server.ListenAndServe (returns
// http.ErrServerClosed after a clean drain).
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve serves on an existing listener (tests use :0).
func (s *Server) Serve(ln net.Listener) error {
	s.ln = ln
	s.logf("serving on %s (jobs=%d, concurrent=%d, queue=%d, cache=%d bytes)",
		ln.Addr(), s.runner.Jobs(), s.cfg.MaxConcurrent, s.cfg.QueueDepth, s.cfg.CacheBytes)
	if c := s.cluster; c != nil {
		s.logf("cluster member %s routing across %v", c.self, c.ring.Nodes())
	}
	return s.hs.Serve(ln)
}

// Addr returns the bound listen address once Serve has been called.
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown drains the server gracefully: the listener closes (Serve
// returns http.ErrServerClosed), healthz flips to 503 so load balancers
// stop routing here, in-flight requests — including queued ones — run
// to completion, and a final metrics snapshot is flushed to the log.
// ctx bounds the drain; on expiry remaining connections are dropped and
// ctx.Err() returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	err := s.hs.Shutdown(ctx)
	snap := s.metrics.snapshot(s.runner, s.q, s.cluster, true)
	s.logf("drained: %d simulated, %d cached (%d hits + %d joined), %d evictions, %d rejected, %d errors",
		snap.Sims.Simulated, snap.Sims.Cached, snap.Cache.Hits, snap.Cache.Joined,
		snap.Cache.Evictions, snap.Rejected, snap.Errors)
	return err
}

// DrainOnSignal installs the standard operational shutdown policy: the
// first of the given signals (default SIGINT/SIGTERM in cmd/sfserved)
// triggers a graceful Shutdown bounded by drainTimeout; a second signal
// forces an immediate close. The returned channel delivers the drain's
// outcome once.
func (s *Server) DrainOnSignal(drainTimeout time.Duration, sigs ...os.Signal) <-chan error {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, sigs...)
	done := make(chan error, 1)
	go func() {
		sig := <-ch
		s.logf("received %v: draining (timeout %s, signal again to force)", sig, drainTimeout)
		ctx := context.Background()
		var cancel context.CancelFunc = func() {}
		if drainTimeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, drainTimeout)
		}
		defer cancel()
		go func() {
			<-ch
			s.logf("second signal: forcing close")
			s.hs.Close()
		}()
		done <- s.Shutdown(ctx)
	}()
	return done
}
