package serve

import (
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// The acceptance soak: 64 concurrent sweep clients against one server —
// half submitting an identical sweep (singleflight + cache territory),
// half submitting client-distinct sweeps (cache churn) — over real
// scale-6 simulations, with a cache budget small enough to force LRU
// eviction. Run under -race in CI's serve job. Asserts:
//
//   - every sweep is admitted (no 429s at this queue depth) and every
//     run line is well-formed,
//   - duplicate requests were shared rather than re-simulated
//     (cache hits + joins visible in /metrics),
//   - the resident cache respected its byte budget and actually evicted,
//   - the admission queue returned to empty.
func TestSoakConcurrentSweeps(t *testing.T) {
	const (
		clients     = 64
		runsPerSwp  = 4
		cacheBudget = 32 << 10
	)
	s, ts := newTestServer(t, Config{
		Jobs:          runtime.NumCPU(),
		CacheBytes:    cacheBudget,
		MaxConcurrent: clients,
		QueueDepth:    2 * clients,
	})

	identical := `{"runs":[
		{"benchmark":"cc","scale":6},
		{"benchmark":"cc","scale":6,"mode":"outer"},
		{"benchmark":"bfs","scale":6},
		{"benchmark":"bfs","scale":6,"mode":"outer"}
	]}`
	distinct := func(client int) string {
		var runs []string
		for j := 0; j < runsPerSwp; j++ {
			// Seed partitions the key space per client: every run is a
			// distinct canonical configuration.
			runs = append(runs,
				fmt.Sprintf(`{"benchmark":"cc","scale":6,"seed":%d}`, client*runsPerSwp+j+100))
		}
		return `{"runs":[` + strings.Join(runs, ",") + `]}`
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			body := identical
			if c%2 == 1 {
				body = distinct(c)
			}
			resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				resp.Body.Close()
				errs <- fmt.Errorf("client %d: status %d", c, resp.StatusCode)
				return
			}
			items := readSweepItems(t, resp)
			if len(items) != runsPerSwp {
				errs <- fmt.Errorf("client %d: %d items", c, len(items))
				return
			}
			for _, it := range items {
				if it.Error != "" || it.Result == nil || it.Result.Cycles <= 0 {
					errs <- fmt.Errorf("client %d: bad item %+v", c, it)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	snap := getMetrics(t, ts.URL)
	if snap.Rejected != 0 {
		t.Fatalf("soak shed load: %d rejections at queue depth %d", snap.Rejected, snap.QueueCapacity)
	}
	totalRuns := clients * runsPerSwp
	if snap.Sims.Simulated+snap.Sims.Cached != totalRuns {
		t.Fatalf("simulated %d + cached %d != %d requests",
			snap.Sims.Simulated, snap.Sims.Cached, totalRuns)
	}
	// 32 identical clients × 4 runs share 4 canonical keys: the bulk of
	// those 128 requests must have been answered by singleflight joins or
	// cache hits, and the counters must say so.
	if snap.Cache.Hits+snap.Cache.Joined < 32 {
		t.Fatalf("only %d hits + %d joins across %d duplicate requests",
			snap.Cache.Hits, snap.Cache.Joined, totalRuns)
	}
	// 132 distinct keys at ~1 KiB each against a 32 KiB budget: the LRU
	// must have evicted, and the resident set must respect the budget.
	if snap.Cache.Evictions == 0 {
		t.Fatal("soak caused no evictions — cache is not bounded")
	}
	if snap.Cache.Bytes > cacheBudget {
		t.Fatalf("resident cache %d bytes exceeds budget %d", snap.Cache.Bytes, cacheBudget)
	}
	// Re-simulations can only come from evictions: each key simulates
	// once plus at most once per eviction of that key.
	distinctKeys := 4 + clients/2*runsPerSwp
	if max := distinctKeys + int(snap.Cache.Evictions); snap.Sims.Simulated > max {
		t.Fatalf("simulated %d > distinct %d + evictions %d",
			snap.Sims.Simulated, distinctKeys, snap.Cache.Evictions)
	}
	// The only in-flight request at snapshot time is the /metrics scrape
	// itself.
	if snap.QueueDepth != 0 || snap.InFlightRequests != 1 {
		t.Fatalf("work left behind: %+v", snap)
	}
	if ru := s.Runner().Stats(); ru.InFlight != 0 {
		t.Fatalf("%d simulations still in flight", ru.InFlight)
	}
}
