package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	blp "repro"
)

// startServer runs a Server on a real loopback listener (unlike httptest,
// its listener participates in Shutdown) and returns its base URL and
// the channel Serve's error arrives on.
func startServer(t *testing.T, s *Server) (string, <-chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve(ln) }()
	return "http://" + ln.Addr().String(), served
}

// blockingSeam installs a deterministic "simulation" that parks until
// released; returns (started, release).
func blockingSeam(s *Server) (chan struct{}, chan struct{}) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	s.runCached = func(ctx context.Context, o blp.Options) (*blp.Result, bool, error) {
		started <- struct{}{}
		select {
		case <-release:
			return &blp.Result{Cycles: 7}, false, nil
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	return started, release
}

// Graceful shutdown: the in-flight request completes with a full 200
// response, new connections are refused once the listener closes, Serve
// returns http.ErrServerClosed, and Shutdown returns nil within its
// bound.
func TestGracefulShutdown(t *testing.T) {
	s := New(Config{})
	started, release := blockingSeam(s)
	base, served := startServer(t, s)

	var status atomic.Int64
	reqDone := make(chan error, 1)
	go func() {
		resp, err := http.Post(base+"/v1/run", "application/json",
			strings.NewReader(`{"benchmark":"cc","scale":6}`))
		if err != nil {
			reqDone <- err
			return
		}
		defer resp.Body.Close()
		status.Store(int64(resp.StatusCode))
		var rr RunResponse
		reqDone <- decodeJSONBody(resp, &rr)
	}()
	<-started // the request is inside its "simulation"

	shutDone := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go func() { shutDone <- s.Shutdown(ctx) }()

	// The listener must close: new connections fail while the in-flight
	// request is still running.
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", s.Addr().String(), time.Second)
		if err != nil {
			break
		}
		conn.Close()
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting during drain")
		}
		time.Sleep(5 * time.Millisecond)
	}
	select {
	case err := <-reqDone:
		t.Fatalf("in-flight request finished before release: %v", err)
	default:
	}

	close(release)
	if err := <-reqDone; err != nil {
		t.Fatalf("in-flight request failed during drain: %v", err)
	}
	if status.Load() != http.StatusOK {
		t.Fatalf("in-flight request status %d", status.Load())
	}
	if err := <-shutDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-served; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
}

// An expired drain context gives up on stuck requests and reports it.
func TestShutdownDrainTimeout(t *testing.T) {
	s := New(Config{})
	started, release := blockingSeam(s)
	defer close(release)
	base, served := startServer(t, s)

	go http.Post(base+"/v1/run", "application/json",
		strings.NewReader(`{"benchmark":"cc","scale":6}`))
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	if err := <-served; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v", err)
	}
}

// SIGTERM (via DrainOnSignal, exactly as cmd/sfserved wires it) drains
// cleanly: the signal is delivered to this test process, the in-flight
// request completes, and the drain reports success.
func TestSIGTERMDrains(t *testing.T) {
	s := New(Config{})
	started, release := blockingSeam(s)
	base, served := startServer(t, s)
	drained := s.DrainOnSignal(30*time.Second, syscall.SIGTERM)

	reqDone := make(chan error, 1)
	go func() {
		resp, err := http.Post(base+"/v1/run", "application/json",
			strings.NewReader(`{"benchmark":"cc","scale":6}`))
		if err != nil {
			reqDone <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			reqDone <- fmt.Errorf("status %d", resp.StatusCode)
			return
		}
		var rr RunResponse
		reqDone <- decodeJSONBody(resp, &rr)
	}()
	<-started

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Drain has begun once the listener refuses new connections.
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", s.Addr().String(), time.Second)
		if err != nil {
			break
		}
		conn.Close()
		if time.Now().After(deadline) {
			t.Fatal("SIGTERM did not close the listener")
		}
		time.Sleep(5 * time.Millisecond)
	}

	close(release)
	if err := <-reqDone; err != nil {
		t.Fatalf("in-flight request failed across SIGTERM: %v", err)
	}
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("drain never completed")
	}
	if err := <-served; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v", err)
	}
}

// decodeJSONBody is decodeInto without the testing.T plumbing (usable
// from client goroutines).
func decodeJSONBody(resp *http.Response, v any) error {
	return json.NewDecoder(resp.Body).Decode(v)
}
