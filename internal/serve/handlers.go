package serve

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	blp "repro"
)

// maxSweepRuns bounds one sweep request; bigger parameter grids should
// be split client-side (results are memoized server-side, so splitting
// costs nothing but requests).
const maxSweepRuns = 1024

// admit runs the request through the bounded admission queue, answering
// 429 (+ Retry-After) or client-gone itself. The caller must release()
// iff admit returns true.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) bool {
	err := s.q.acquire(r.Context())
	switch {
	case err == nil:
		return true
	case errors.Is(err, ErrQueueFull):
		s.metrics.addRejected()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "admission queue full; retry later")
		return false
	default:
		// The client went away (or drain canceled it) while queued;
		// nothing useful can be written.
		return false
	}
}

// runCtx applies the per-run timeout to a request context.
func (s *Server) runCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.cfg.RunTimeout > 0 {
		return context.WithTimeout(ctx, s.cfg.RunTimeout)
	}
	return ctx, func() {}
}

// handleRun answers POST /v1/run: one Options, one result. In cluster
// mode the request first routes to the ring owner of its canonical key
// (routeRun): forwarded to a peer Backend, or — when this node owns it,
// the request is itself a forward, or the owner is down — executed on
// the local Backend under this node's admission queue.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var rq RunRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rq); err != nil {
		writeError(w, http.StatusBadRequest, "malformed request body: "+err.Error())
		return
	}
	o, err := rq.Options()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if s.refuseForwardWhileDraining(w, r) {
		return
	}
	if s.routeRun(w, r, rq, o) {
		return
	}
	if !s.admit(w, r) {
		return
	}
	defer s.q.release()

	ctx, cancel := s.runCtx(r.Context())
	defer cancel()
	rr, err := s.local.Run(ctx, rq, o)
	if err != nil {
		s.runError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, *rr)
}

// runError maps a simulation failure to a response: deadline → 504,
// client-gone → nothing, anything else → 500 (the request was
// well-formed; the configuration itself failed validation or simulation
// deeper in the stack).
func (s *Server) runError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.addTimeout()
		writeError(w, http.StatusGatewayTimeout, "run exceeded the server's per-run timeout")
	case errors.Is(err, context.Canceled):
		// Client disconnected; the response writer is dead.
	default:
		s.metrics.addError()
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// handleSweep answers POST /v1/sweep: every run is validated up front
// (any invalid entry fails the whole batch with a 400 before simulation
// starts), then all runs execute through the shared Runner — deduped
// against each other and every other client — and stream back as NDJSON
// in completion order.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var rq SweepRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rq); err != nil {
		writeError(w, http.StatusBadRequest, "malformed request body: "+err.Error())
		return
	}
	if len(rq.Runs) == 0 {
		writeError(w, http.StatusBadRequest, "sweep has no runs")
		return
	}
	if len(rq.Runs) > maxSweepRuns {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("sweep has %d runs; max %d per request", len(rq.Runs), maxSweepRuns))
		return
	}
	runs := make([]indexedRun, len(rq.Runs))
	for i, rr := range rq.Runs {
		o, err := rr.Options()
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("runs[%d]: %v", i, err))
			return
		}
		runs[i] = indexedRun{Index: i, Req: rr, Opts: o}
	}
	if s.refuseForwardWhileDraining(w, r) {
		return
	}
	if !s.admit(w, r) {
		return
	}
	defer s.q.release()

	scatter := s.cluster != nil && !fromPeer(r)
	if !scatter {
		// A locally executed sweep is a batch the Runner can see whole:
		// hint it exactly as RunAllContext hints its own fan-outs, so a
		// sweep varying only timing configuration captures each
		// workload's trace once and replays it for every other run,
		// instead of re-running the functional emulator per
		// configuration. (A scattered sweep hints per owner group: this
		// node's share below, each peer's share when the sub-sweep
		// arrives there through this same path.)
		release := s.runner.HintTraces(optsOf(runs))
		defer release()
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	items := make(chan SweepItem)
	deliver := func(item SweepItem) { items <- item }
	go func() {
		if scatter {
			s.scatterSweep(r.Context(), runs, deliver)
		} else {
			s.local.SweepItems(r.Context(), runs, deliver)
		}
		close(items)
	}()
	enc := json.NewEncoder(w)
	for item := range items {
		enc.Encode(item)
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// figureFuncs regenerates one figure by id through the shared Runner, so
// repeated figure requests — and single runs that overlap a figure's
// grid — reuse each other's simulations. Matches cmd/experiments' ids.
func (s *Server) figureByID(id string, q map[string]int) (*blp.Figure, error) {
	r := s.runner
	delta := q["delta"]
	switch id {
	case "table1", "1":
		return blp.Table1(), nil
	case "motivation", "3":
		return r.Motivation(delta)
	case "4":
		return r.Fig4(delta)
	case "5":
		return r.Fig5(delta)
	case "6":
		return r.Fig6(delta)
	case "7":
		return r.Fig7(delta, nil)
	case "8":
		return r.Fig8(delta, nil)
	case "9":
		return r.Fig9(delta)
	case "10":
		return r.Fig10(delta, q["cores"], q["sizedelta"])
	case "11":
		return r.Fig11(delta)
	}
	return nil, nil
}

// figureParamRange bounds each figure query parameter. Parsing alone is
// not validation: a syntactically fine integer like cores=-1 or
// sizedelta=-10 used to sail through to the figure functions and
// surface as a 500 (or worse, a silently clamped nonsense sweep). The
// ranges are generous — delta reaches far below the smallest useful
// scale (scaled() clamps at its per-benchmark minimum), cores covers
// any plausible Fig. 10 sweep, sizedelta stays within what keeps the
// scaled working set at least one — but anything outside them is the
// client's mistake and is answered 400 before a simulation starts.
var figureParamRange = map[string][2]int{
	"delta":     {-24, 8},
	"cores":     {1, 256},
	"sizedelta": {-5, 8},
}

// handleFigure answers GET /v1/figures/{id}?delta=…&format=json|csv.
// Figure regeneration is not cancelable mid-flight (the figure API
// predates contexts); the admission queue still bounds how many can run
// and the underlying runs stay memoized for the next request.
func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	q := map[string]int{"delta": 0, "cores": 16, "sizedelta": 3}
	for name := range q {
		if v := r.URL.Query().Get(name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("bad %s %q", name, v))
				return
			}
			if rng := figureParamRange[name]; n < rng[0] || n > rng[1] {
				writeError(w, http.StatusBadRequest,
					fmt.Sprintf("%s %d out of range [%d, %d]", name, n, rng[0], rng[1]))
				return
			}
			q[name] = n
		}
	}
	format := r.URL.Query().Get("format")
	switch format {
	case "", "json", "csv":
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown format %q (json or csv)", format))
		return
	}
	if !s.admit(w, r) {
		return
	}
	defer s.q.release()

	fig, err := s.figureByID(id, q)
	if err != nil {
		s.runError(w, err)
		return
	}
	if fig == nil {
		writeError(w, http.StatusNotFound,
			fmt.Sprintf("unknown figure %q (table1, motivation, 4..11)", id))
		return
	}
	if format == "csv" {
		m := fig.Metrics()
		w.Header().Set("Content-Type", "text/csv")
		cw := csv.NewWriter(w)
		cw.Write(m.Header)
		cw.WriteAll(m.Rows)
		return
	}
	writeJSON(w, http.StatusOK, blp.NewReport(fig))
}

// healthzResponse is the body of GET /healthz. The cluster section is
// present only in cluster mode; with ?peers=1 it additionally probes
// every peer's /healthz (bounded to a second) so one member answers for
// the whole ring's reachability.
type healthzResponse struct {
	Status  string          `json:"status"`
	Cluster *clusterHealthz `json:"cluster,omitempty"`
}

type clusterHealthz struct {
	Self  string            `json:"self"`
	Nodes []string          `json:"nodes"`
	Peers map[string]string `json:"peers,omitempty"` // name -> "ok" | error
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	hr := healthzResponse{Status: "ok"}
	if c := s.cluster; c != nil {
		hr.Cluster = &clusterHealthz{Self: c.self, Nodes: c.ring.Nodes()}
		if r.URL.Query().Get("peers") != "" {
			ctx, cancel := context.WithTimeout(r.Context(), time.Second)
			defer cancel()
			hr.Cluster.Peers = make(map[string]string, len(c.backends)-1)
			for name, b := range c.backends {
				if name == c.self {
					continue
				}
				if err := b.Healthy(ctx); err != nil {
					hr.Cluster.Peers[name] = err.Error()
				} else {
					hr.Cluster.Peers[name] = "ok"
				}
			}
		}
	}
	if s.draining.Load() {
		hr.Status = "draining"
		writeJSON(w, http.StatusServiceUnavailable, hr)
		return
	}
	writeJSON(w, http.StatusOK, hr)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.snapshot(s.runner, s.q, s.cluster, s.draining.Load()))
}
