// Package stats provides the aggregation and formatting helpers the
// experiment harness uses to report the paper's figures: speedups,
// harmonic means, normalized cycle stacks, and aligned text tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// HarmonicMeanSpeedup returns the harmonic mean of per-benchmark speedups,
// the aggregation the paper reports ("the overall average speedup is 1.29
// (harmonic mean)", §6.1). A NaN input (an unmeasurable speedup, e.g.
// blp.Speedup against a zero-cycle run) propagates to a NaN mean rather
// than being silently averaged in or dropped, so a poisoned series is
// visible in the output.
func HarmonicMeanSpeedup(speedups []float64) float64 {
	if len(speedups) == 0 {
		return 0
	}
	var inv float64
	for _, s := range speedups {
		if math.IsNaN(s) {
			return math.NaN()
		}
		if s <= 0 {
			return 0
		}
		inv += 1 / s
	}
	return float64(len(speedups)) / inv
}

// GeoMean returns the geometric mean.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Table accumulates rows and renders them with aligned columns, suitable
// for terminal output and for pasting next to the paper's figures.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Header returns the column headers.
func (t *Table) Header() []string { return t.header }

// Rows returns the formatted cells, row-major, in insertion order — the
// machine-readable form of exactly what String renders, so a JSON export
// and the text table can never disagree.
func (t *Table) Rows() [][]string { return t.rows }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Series is a named sequence of (label, value) points — one bar group of a
// paper figure.
type Series struct {
	Name   string
	Labels []string
	Values []float64
}

// Add appends a point.
func (s *Series) Add(label string, v float64) {
	s.Labels = append(s.Labels, label)
	s.Values = append(s.Values, v)
}

// SortedKeys returns map keys in sorted order (deterministic reports).
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
