package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHarmonicMean(t *testing.T) {
	if hm := HarmonicMeanSpeedup([]float64{1, 1, 1}); hm != 1 {
		t.Fatalf("hm of ones = %f", hm)
	}
	if hm := HarmonicMeanSpeedup([]float64{2, 2}); math.Abs(hm-2) > 1e-12 {
		t.Fatalf("hm = %f", hm)
	}
	// Harmonic mean of {1,2} is 4/3.
	if hm := HarmonicMeanSpeedup([]float64{1, 2}); math.Abs(hm-4.0/3) > 1e-12 {
		t.Fatalf("hm = %f", hm)
	}
	if HarmonicMeanSpeedup(nil) != 0 || HarmonicMeanSpeedup([]float64{0}) != 0 {
		t.Fatal("degenerate inputs")
	}
}

// A NaN speedup (an unmeasurable comparison, e.g. against a zero-cycle
// run) must poison the mean visibly rather than be averaged in, dropped,
// or — worst — surface as a plausible-looking finite value.
func TestHarmonicMeanPropagatesNaN(t *testing.T) {
	nan := math.NaN()
	for _, in := range [][]float64{
		{nan},
		{1.2, nan, 1.4},
		{nan, nan},
		{nan, 0}, // NaN wins over the zero short-circuit: checked first
	} {
		if hm := HarmonicMeanSpeedup(in); !math.IsNaN(hm) {
			t.Fatalf("hm(%v) = %f, want NaN", in, hm)
		}
	}
	if hm := HarmonicMeanSpeedup([]float64{1, 2}); math.IsNaN(hm) {
		t.Fatal("NaN-free input should stay finite")
	}
}

func TestGeoMean(t *testing.T) {
	if gm := GeoMean([]float64{2, 8}); math.Abs(gm-4) > 1e-12 {
		t.Fatalf("gm = %f", gm)
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{-1}) != 0 {
		t.Fatal("degenerate inputs")
	}
}

// Harmonic mean never exceeds geometric mean (AM-GM-HM chain).
func TestMeanOrderingQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = 0.1 + float64(r)/1000
		}
		return HarmonicMeanSpeedup(xs) <= GeoMean(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 42)
	out := tb.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.500") ||
		!strings.Contains(out, "42") {
		t.Fatalf("table output missing data:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Fatalf("got %d lines", len(lines))
	}
	// Columns align: every line has the same prefix width for column 2.
	col2 := strings.Index(lines[0], "value")
	for _, ln := range lines[2:] {
		if len(ln) < col2 {
			t.Fatalf("misaligned row %q", ln)
		}
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Add("a", 1)
	s.Add("b", 2)
	if len(s.Labels) != 2 || s.Values[1] != 2 {
		t.Fatal("series add")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	keys := SortedKeys(m)
	if keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Fatalf("keys = %v", keys)
	}
}
