package rob

// Space tracks physical ROB capacity for the block-partitioned linked
// list (paper §4.3, Fig. 3). With block size 1 (a pure linked list) every
// entry is individually reusable and Space degenerates to a counter. With
// larger blocks, selective flushes strand entries:
//
//   - the tail of the block holding the last flushed instruction stays
//     empty until the surrounding block commits (Fig. 3(b)),
//   - the tail of the last resolved-path block stays empty because its
//     pointer links back into the original stream (Fig. 3(b)),
//   - when a mispredicted slice branch and the slice_end share a block,
//     the dispatcher pads to the block boundary (Fig. 3(d)).
//
// Gaps are tagged with the sequence number whose commit reclaims them
// ("as soon as all instructions in a block with a gap are committed,
// these gaps can be reclaimed").
type Space struct {
	size      int
	blockSize int
	used      int // live entries
	gaps      int // stranded entries
	pending   []gapTag
}

type gapTag struct {
	count      int
	releaseSeq uint64
}

// NewSpace returns a capacity tracker for a ROB of size entries divided
// into blocks of blockSize (1 = unblocked).
func NewSpace(size, blockSize int) *Space {
	if blockSize < 1 {
		blockSize = 1
	}
	return &Space{size: size, blockSize: blockSize}
}

// BlockSize returns the configured block size.
func (s *Space) BlockSize() int { return s.blockSize }

// Free returns the number of allocatable entries.
func (s *Space) Free() int { return s.size - s.used - s.gaps }

// Used returns the number of live entries.
func (s *Space) Used() int { return s.used }

// Gaps returns the number of currently stranded entries.
func (s *Space) Gaps() int { return s.gaps }

// Alloc takes one entry for a dispatched instruction. It returns false
// when the ROB is full.
func (s *Space) Alloc() bool {
	if s.Free() <= 0 {
		return false
	}
	s.used++
	return true
}

// Release returns one entry (commit or flush of an instruction whose
// block carries no gap).
func (s *Space) Release() {
	if s.used <= 0 {
		panic("rob: Release with no used entries")
	}
	s.used--
}

// blockWaste returns the stranded tail of a run of n entries packed into
// blocks.
func (s *Space) blockWaste(n int) int {
	if s.blockSize <= 1 || n == 0 {
		return 0
	}
	r := n % s.blockSize
	if r == 0 {
		return 0
	}
	return s.blockSize - r
}

// FlushGaps records the stranded entries produced by selectively flushing
// flushLen instructions and later splicing a resolved path of resolveLen
// instructions, per the Fig. 3 rules. releaseSeq is the sequence number
// whose commit reclaims the gaps (the end of the affected region).
// keepFree bounds the stranding so at least that many entries stay
// allocatable — the §4.7 reservation must survive block padding, or the
// resolve path deadlocks against its own gaps. It returns the number of
// entries stranded.
func (s *Space) FlushGaps(flushLen, resolveLen int, releaseSeq uint64, keepFree int) int {
	g := s.blockWaste(flushLen) + s.blockWaste(resolveLen)
	if g == 0 {
		return 0
	}
	// Gaps can strand at most the capacity above the reserved floor.
	if free := s.Free() - keepFree; g > free {
		g = free
	}
	if g <= 0 {
		return 0
	}
	s.gaps += g
	s.pending = append(s.pending, gapTag{count: g, releaseSeq: releaseSeq})
	return g
}

// CommitSeq reclaims all gaps whose release point is at or before seq.
func (s *Space) CommitSeq(seq uint64) {
	live := s.pending[:0]
	for _, g := range s.pending {
		if g.releaseSeq <= seq {
			s.gaps -= g.count
		} else {
			live = append(live, g)
		}
	}
	s.pending = live
}

// ReleaseAllGaps reclaims every gap (conventional full flush discards the
// affected blocks wholesale).
func (s *Space) ReleaseAllGaps() {
	s.gaps = 0
	s.pending = s.pending[:0]
}
