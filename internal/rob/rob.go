// Package rob implements the linked-list reorder buffer of paper §4.3: an
// intrusive doubly-linked list that supports removing and inserting
// instructions in the middle of the stream (selective flush and correct-
// path splicing), plus block-partitioning overhead accounting (gaps and
// padding) for the blocked variant of Fig. 3/Fig. 8.
//
// The list stores logical instruction order; physical capacity (entry
// counts and block gaps) is tracked by Space. Keeping them separate
// mirrors the hardware split between the ROB's ordering function and its
// storage function.
package rob

// Node is one ROB entry holding a value of type T (the core's uop).
type Node[T any] struct {
	Prev, Next *Node[T]
	Val        T
	linked     bool
}

// InList reports whether the node is currently linked.
func (n *Node[T]) InList() bool { return n.linked }

// List is the linked-list ROB. The zero value is an empty list.
type List[T any] struct {
	head, tail *Node[T]
	count      int
}

// Len returns the number of linked entries.
func (l *List[T]) Len() int { return l.count }

// Head returns the oldest entry, or nil.
func (l *List[T]) Head() *Node[T] { return l.head }

// Tail returns the youngest entry, or nil.
func (l *List[T]) Tail() *Node[T] { return l.tail }

// PushBack appends n as the youngest entry.
func (l *List[T]) PushBack(n *Node[T]) {
	if n.linked {
		panic("rob: PushBack of linked node")
	}
	n.Prev = l.tail
	n.Next = nil
	if l.tail != nil {
		l.tail.Next = n
	} else {
		l.head = n
	}
	l.tail = n
	n.linked = true
	l.count++
}

// InsertAfter links n immediately after pos (correct-path splicing: the
// resolved path is inserted in the middle of the stream, Fig. 2(c,d)).
func (l *List[T]) InsertAfter(pos, n *Node[T]) {
	if n.linked {
		panic("rob: InsertAfter of linked node")
	}
	if !pos.linked {
		panic("rob: InsertAfter at unlinked position")
	}
	n.Prev = pos
	n.Next = pos.Next
	if pos.Next != nil {
		pos.Next.Prev = n
	} else {
		l.tail = n
	}
	pos.Next = n
	n.linked = true
	l.count++
}

// Remove unlinks n (selective flush of one entry, or commit of the head).
func (l *List[T]) Remove(n *Node[T]) {
	if !n.linked {
		panic("rob: Remove of unlinked node")
	}
	if n.Prev != nil {
		n.Prev.Next = n.Next
	} else {
		l.head = n.Next
	}
	if n.Next != nil {
		n.Next.Prev = n.Prev
	} else {
		l.tail = n.Prev
	}
	n.Prev, n.Next = nil, nil
	n.linked = false
	l.count--
}

// RemoveRangeAfter unlinks every entry younger than n (conventional full
// flush after a mispredicted branch) and returns them oldest-first.
func (l *List[T]) RemoveRangeAfter(n *Node[T]) []*Node[T] {
	var out []*Node[T]
	for cur := n.Next; cur != nil; {
		next := cur.Next
		l.Remove(cur)
		out = append(out, cur)
		cur = next
	}
	return out
}

// Walk calls f on each entry oldest-first; stops early if f returns false.
func (l *List[T]) Walk(f func(*Node[T]) bool) {
	for cur := l.head; cur != nil; cur = cur.Next {
		if !f(cur) {
			return
		}
	}
}

// Check validates list invariants (test helper): consistent prev/next
// links, head/tail endpoints, and the count.
func (l *List[T]) Check() bool {
	n := 0
	var prev *Node[T]
	for cur := l.head; cur != nil; cur = cur.Next {
		if cur.Prev != prev || !cur.linked {
			return false
		}
		prev = cur
		n++
		if n > l.count {
			return false
		}
	}
	return prev == l.tail && n == l.count
}
