package rob

import "testing"

// TestSpaceBlockWasteTable: the Fig. 3 stranding rules across block sizes —
// a selective flush strands the tail of the last flushed block and the
// tail of the last resolve-path block, independently.
func TestSpaceBlockWasteTable(t *testing.T) {
	cases := []struct {
		block              int
		flush, resolve     int
		want               int
	}{
		{1, 7, 13, 0},  // unblocked: no stranding ever
		{2, 7, 13, 2},  // one odd entry stranded on each side
		{2, 8, 12, 0},  // both aligned
		{4, 7, 13, 4},  // (4-3) + (4-1)
		{4, 0, 13, 3},  // nothing flushed: only the splice tail strands
		{4, 7, 0, 1},   // empty resolve path: only the flush tail strands
		{8, 10, 13, 9}, // (8-2) + (8-5)
		{8, 16, 8, 0},  // aligned on both sides
		{8, 1, 1, 14},  // worst case: two nearly-empty blocks
	}
	for _, tc := range cases {
		s := NewSpace(64, tc.block)
		g := s.FlushGaps(tc.flush, tc.resolve, 100, 0)
		if g != tc.want {
			t.Errorf("block %d flush %d resolve %d: stranded %d, want %d",
				tc.block, tc.flush, tc.resolve, g, tc.want)
			continue
		}
		if s.Gaps() != g || s.Free() != 64-g {
			t.Errorf("block %d: Gaps/Free inconsistent after FlushGaps", tc.block)
		}
		s.CommitSeq(100)
		if s.Gaps() != 0 || s.Free() != 64 {
			t.Errorf("block %d: gaps not reclaimed at release seq", tc.block)
		}
	}
}

// TestSpaceKeepFreeClamp: stranding never eats into the reserved floor —
// the §4.7 reservation must survive block padding or the resolve path
// deadlocks against its own gaps.
func TestSpaceKeepFreeClamp(t *testing.T) {
	for _, keep := range []int{0, 1, 3, 8} {
		s := NewSpace(16, 8)
		for i := 0; i < 8; i++ {
			s.Alloc()
		}
		// Hypothetical waste 7+7=14 against 8 free entries.
		g := s.FlushGaps(1, 1, 1, keep)
		wantG := 8 - keep
		if wantG > 14 {
			wantG = 14
		}
		if wantG < 0 {
			wantG = 0
		}
		if g != wantG {
			t.Errorf("keepFree %d: stranded %d, want %d", keep, g, wantG)
		}
		if s.Free() < keep {
			t.Errorf("keepFree %d: only %d entries left allocatable", keep, s.Free())
		}
	}
}

// TestSpaceGapReclaimOrder: gap batches from independent splices are
// reclaimed individually as their release points commit, oldest first or
// out of order alike.
func TestSpaceGapReclaimOrder(t *testing.T) {
	s := NewSpace(64, 4)
	if g := s.FlushGaps(1, 1, 10, 0); g != 6 {
		t.Fatalf("first splice stranded %d, want 6", g)
	}
	if g := s.FlushGaps(2, 2, 20, 0); g != 4 {
		t.Fatalf("second splice stranded %d, want 4", g)
	}
	if g := s.FlushGaps(3, 3, 5, 0); g != 2 {
		t.Fatalf("third splice stranded %d, want 2", g)
	}
	// Committing seq 5 reclaims only the third batch (release 5).
	s.CommitSeq(5)
	if s.Gaps() != 10 {
		t.Fatalf("gaps = %d after seq 5, want 10", s.Gaps())
	}
	// Seq 15 reclaims the first batch (release 10), not the second (20).
	s.CommitSeq(15)
	if s.Gaps() != 4 {
		t.Fatalf("gaps = %d after seq 15, want 4", s.Gaps())
	}
	s.CommitSeq(20)
	if s.Gaps() != 0 || s.Free() != 64 {
		t.Fatalf("gaps = %d free = %d after all commits", s.Gaps(), s.Free())
	}
}

// TestSpaceAllocBlockedByGaps: stranded entries consume real capacity —
// allocation fails when used+gaps reach the size, and resumes once a
// conventional flush reclaims everything.
func TestSpaceAllocBlockedByGaps(t *testing.T) {
	s := NewSpace(8, 4)
	for i := 0; i < 4; i++ {
		if !s.Alloc() {
			t.Fatalf("alloc %d failed", i)
		}
	}
	if g := s.FlushGaps(1, 1, 50, 0); g != 4 {
		t.Fatalf("stranded %d, want 4 (clamped to free)", g)
	}
	if s.Alloc() {
		t.Fatal("allocation succeeded with zero free entries")
	}
	s.ReleaseAllGaps()
	if s.Free() != 4 || !s.Alloc() {
		t.Fatal("allocation still blocked after ReleaseAllGaps")
	}
}
