package rob

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func nodes(n int) []*Node[int] {
	ns := make([]*Node[int], n)
	for i := range ns {
		ns[i] = &Node[int]{Val: i}
	}
	return ns
}

func collect(l *List[int]) []int {
	var out []int
	l.Walk(func(n *Node[int]) bool {
		out = append(out, n.Val)
		return true
	})
	return out
}

func TestListPushRemove(t *testing.T) {
	var l List[int]
	ns := nodes(5)
	for _, n := range ns {
		l.PushBack(n)
	}
	if !l.Check() || l.Len() != 5 {
		t.Fatalf("bad list after pushes")
	}
	l.Remove(ns[2])
	if got := collect(&l); len(got) != 4 || got[2] != 3 {
		t.Fatalf("middle removal wrong: %v", got)
	}
	l.Remove(ns[0])
	l.Remove(ns[4])
	if got := collect(&l); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("endpoint removal wrong: %v", got)
	}
	if !l.Check() {
		t.Fatal("invariants broken")
	}
}

func TestInsertAfter(t *testing.T) {
	var l List[int]
	ns := nodes(3)
	l.PushBack(ns[0])
	l.PushBack(ns[2])
	l.InsertAfter(ns[0], ns[1])
	if got := collect(&l); got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("splice wrong: %v", got)
	}
	// Insert at the tail position.
	n3 := &Node[int]{Val: 3}
	l.InsertAfter(ns[2], n3)
	if l.Tail() != n3 || !l.Check() {
		t.Fatal("tail splice wrong")
	}
}

func TestRemoveRangeAfter(t *testing.T) {
	var l List[int]
	ns := nodes(6)
	for _, n := range ns {
		l.PushBack(n)
	}
	victims := l.RemoveRangeAfter(ns[2])
	if len(victims) != 3 {
		t.Fatalf("flushed %d, want 3", len(victims))
	}
	for i, v := range victims {
		if v.Val != 3+i {
			t.Fatalf("victims out of order: %v", v.Val)
		}
		if v.InList() {
			t.Fatal("victim still linked")
		}
	}
	if l.Tail() != ns[2] || !l.Check() {
		t.Fatal("tail not restored")
	}
}

func TestListPanics(t *testing.T) {
	var l List[int]
	n := &Node[int]{}
	expectPanic(t, "remove unlinked", func() { l.Remove(n) })
	l.PushBack(n)
	expectPanic(t, "double push", func() { l.PushBack(n) })
	m := &Node[int]{}
	expectPanic(t, "insert after unlinked", func() {
		var l2 List[int]
		l2.InsertAfter(m, &Node[int]{})
	})
}

func expectPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", name)
		}
	}()
	f()
}

// TestListQuick performs random operation sequences against a slice model
// (the selective-flush access pattern: push, splice after a survivor,
// remove from the middle) and checks structural invariants throughout.
func TestListQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var l List[int]
		var model []*Node[int]
		next := 0
		for op := 0; op < 200; op++ {
			switch r := rng.Intn(3); {
			case r == 0 || len(model) == 0: // push back
				n := &Node[int]{Val: next}
				next++
				l.PushBack(n)
				model = append(model, n)
			case r == 1: // remove random
				i := rng.Intn(len(model))
				l.Remove(model[i])
				model = append(model[:i], model[i+1:]...)
			default: // splice after random
				i := rng.Intn(len(model))
				n := &Node[int]{Val: next}
				next++
				l.InsertAfter(model[i], n)
				model = append(model[:i+1], append([]*Node[int]{n}, model[i+1:]...)...)
			}
			if !l.Check() || l.Len() != len(model) {
				return false
			}
		}
		got := collect(&l)
		for i, n := range model {
			if got[i] != n.Val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceBasics(t *testing.T) {
	s := NewSpace(8, 1)
	for i := 0; i < 8; i++ {
		if !s.Alloc() {
			t.Fatalf("alloc %d failed", i)
		}
	}
	if s.Alloc() {
		t.Fatal("over-allocation")
	}
	s.Release()
	if s.Free() != 1 || !s.Alloc() {
		t.Fatal("release/realloc")
	}
}

func TestSpaceBlockGaps(t *testing.T) {
	s := NewSpace(64, 8)
	// Flush 10 entries, splice 13: waste = (8-10%8) + (8-13%8) = 6+3 = 9.
	g := s.FlushGaps(10, 13, 100, 0)
	if g != 9 {
		t.Fatalf("gaps = %d, want 9", g)
	}
	if s.Free() != 64-9 {
		t.Fatalf("free = %d", s.Free())
	}
	// Commit before the release point keeps the gaps.
	s.CommitSeq(99)
	if s.Gaps() != 9 {
		t.Fatal("gaps released early")
	}
	s.CommitSeq(100)
	if s.Gaps() != 0 || s.Free() != 64 {
		t.Fatal("gaps not reclaimed")
	}
}

func TestSpaceNoBlocksNoGaps(t *testing.T) {
	s := NewSpace(64, 1)
	if g := s.FlushGaps(7, 13, 1, 0); g != 0 {
		t.Fatalf("unblocked ROB produced gaps: %d", g)
	}
}

func TestSpaceAlignedNoWaste(t *testing.T) {
	s := NewSpace(64, 8)
	if g := s.FlushGaps(16, 8, 1, 0); g != 0 {
		t.Fatalf("block-aligned flush wasted %d", g)
	}
}

func TestSpaceGapCap(t *testing.T) {
	s := NewSpace(8, 8)
	for i := 0; i < 6; i++ {
		s.Alloc()
	}
	// Hypothetical waste 7+7=14 exceeds the 2 free entries: clamp.
	if g := s.FlushGaps(1, 1, 1, 0); g != 2 {
		t.Fatalf("gap clamp = %d, want 2", g)
	}
	s.ReleaseAllGaps()
	if s.Gaps() != 0 {
		t.Fatal("ReleaseAllGaps")
	}
}

// TestSpaceQuick: allocations plus gap bookkeeping never exceed capacity
// and never go negative.
func TestSpaceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSpace(32, 4)
		used := 0
		seq := uint64(0)
		for op := 0; op < 300; op++ {
			switch rng.Intn(4) {
			case 0:
				if s.Alloc() {
					used++
				}
			case 1:
				if used > 0 {
					s.Release()
					used--
				}
			case 2:
				s.FlushGaps(rng.Intn(10), rng.Intn(10), seq+uint64(rng.Intn(5)), rng.Intn(3))
			case 3:
				seq++
				s.CommitSeq(seq)
			}
			if s.Free() < 0 || s.Used() != used || s.Gaps() < 0 ||
				s.Used()+s.Gaps()+s.Free() != 32 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
