// Package store is the durable second level of the simulation result
// cache: a disk-backed, content-addressed object store that outlives the
// process. The in-memory memo.Cache stays the fast front; on a memo miss
// the Runner consults the store before simulating, and completed (or
// LRU-evicted) entries are written back, so a restarted service warm-
// starts from previously computed results instead of re-simulating the
// world.
//
// Every object is stamped with the simulator-behavior version the store
// was opened with (blp.BehaviorVersion derives it from the committed
// golden files). A Get that finds an object carrying a different stamp
// deletes it and reports a miss — a behavior-changing PR therefore
// silently invalidates every stale entry rather than serving numbers the
// current simulator would no longer produce. Payloads are additionally
// checksummed; torn or bit-rotted files are dropped the same way.
//
// Objects live under dir/objects/<aa>/<sha256(key)>, so the key space is
// flat and lookup is one hash away; the full key is recorded inside each
// object and verified on read (a hash collision degrades to a miss, never
// to a wrong result). A byte budget bounds the directory: when a Put
// would exceed it, the least recently used objects (by access time,
// refreshed on Get) are removed first.
//
// The store also keeps an append-only NDJSON experiment ledger
// (dir/ledger.ndjson): one line per completed simulation, readable back
// as trajectory history (see ReadLedger and cmd/benchreport -ledger).
package store

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// magic is the first line of every object file; bump the trailing digit
// on any container-format change (the payload schema is governed by the
// version stamp, not by magic).
const magic = "sfstore v1"

// Stats is a point-in-time snapshot of a Store's activity and resident
// set.
type Stats struct {
	// Hits counts Gets answered from a valid on-disk object; Misses
	// counts Gets that found nothing usable.
	Hits, Misses int64
	// Writes counts objects actually written (Put on an already-present
	// key is a no-op and does not count).
	Writes int64
	// Invalidated counts objects dropped because their version stamp no
	// longer matches the store's, their payload failed the checksum, or
	// their container was malformed — plus explicit Delete calls.
	Invalidated int64
	// Evictions counts objects removed to keep the store under budget.
	Evictions int64
	// Entries and Bytes describe the on-disk resident set; Budget is the
	// configured byte limit (0 = unbounded).
	Entries int
	Bytes   int64
	Budget  int64
}

// object is the in-memory index entry for one on-disk file.
type object struct {
	hash string // sha256(key), the file name
	size int64  // whole-file size
	used time.Time
}

// Store is one open store directory. Safe for concurrent use by a single
// process; concurrent processes sharing a directory are not coordinated
// (last write wins, which is safe because objects are immutable values
// of their key).
type Store struct {
	dir     string
	version string
	budget  int64

	mu     sync.Mutex
	index  map[string]*object // keyed by hash
	bytes  int64
	ledger *os.File

	hits, misses, writes, invalidated, evictions int64
}

// Open opens (creating if needed) the store rooted at dir, stamped with
// the given simulator-behavior version. budgetBytes bounds the on-disk
// object set (<= 0: unbounded); the ledger is append-only and not
// counted against the budget. Existing objects are indexed by a stat
// walk — their contents are validated lazily, on first Get.
func Open(dir, version string, budgetBytes int64) (*Store, error) {
	if version == "" {
		return nil, fmt.Errorf("store: empty version stamp")
	}
	if budgetBytes < 0 {
		budgetBytes = 0
	}
	objDir := filepath.Join(dir, "objects")
	if err := os.MkdirAll(objDir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:     dir,
		version: version,
		budget:  budgetBytes,
		index:   make(map[string]*object),
	}
	err := filepath.WalkDir(objDir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return nil // raced with a concurrent delete; skip
		}
		hash := d.Name()
		s.index[hash] = &object{hash: hash, size: info.Size(), used: accessTime(info)}
		s.bytes += info.Size()
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: indexing %s: %w", objDir, err)
	}
	lf, err := os.OpenFile(filepath.Join(dir, "ledger.ndjson"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.ledger = lf
	return s, nil
}

// accessTime approximates an object's recency from file metadata; the
// modification time is refreshed on every Get (os.Chtimes), so it
// survives restarts as the LRU clock.
func accessTime(info fs.FileInfo) time.Time { return info.ModTime() }

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Version returns the behavior stamp the store was opened with.
func (s *Store) Version() string { return s.version }

// Close closes the ledger. Object operations after Close still work; the
// ledger is the only held resource.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ledger == nil {
		return nil
	}
	err := s.ledger.Close()
	s.ledger = nil
	return err
}

func keyHash(key string) string {
	h := sha256.Sum256([]byte(key))
	return hex.EncodeToString(h[:])
}

func (s *Store) pathFor(hash string) string {
	return filepath.Join(s.dir, "objects", hash[:2], hash)
}

// Get returns the stored payload for key, or ok=false. A stored object
// whose version stamp, key, or payload checksum does not match is
// deleted and reported as a miss (counted in Stats.Invalidated); the
// store never returns bytes it cannot vouch for. I/O errors degrade to
// misses — persistence is an optimization, not a dependency.
func (s *Store) Get(key string) (data []byte, ok bool) {
	hash := keyHash(key)
	s.mu.Lock()
	obj := s.index[hash]
	s.mu.Unlock()
	if obj == nil {
		s.count(&s.misses)
		return nil, false
	}
	payload, err := s.readObject(hash, key)
	if err != nil {
		s.dropObject(hash, &s.invalidated)
		s.count(&s.misses)
		return nil, false
	}
	now := time.Now()
	os.Chtimes(s.pathFor(hash), now, now) // best-effort recency refresh
	s.mu.Lock()
	if o := s.index[hash]; o != nil {
		o.used = now
	}
	s.hits++
	s.mu.Unlock()
	return payload, true
}

// readObject reads and fully validates one object file, returning its
// payload.
func (s *Store) readObject(hash, key string) ([]byte, error) {
	raw, err := os.ReadFile(s.pathFor(hash))
	if err != nil {
		return nil, err
	}
	br := bufio.NewReader(bytes.NewReader(raw))
	line := func() (string, error) {
		l, err := br.ReadString('\n')
		return strings.TrimSuffix(l, "\n"), err
	}
	if l, err := line(); err != nil || l != magic {
		return nil, fmt.Errorf("store: %s: bad magic", hash)
	}
	ver, err := line()
	if err != nil {
		return nil, err
	}
	if ver != s.version {
		return nil, fmt.Errorf("store: %s: version %q, store is %q", hash, ver, s.version)
	}
	quoted, err := line()
	if err != nil {
		return nil, err
	}
	gotKey, err := strconv.Unquote(quoted)
	if err != nil || gotKey != key {
		return nil, fmt.Errorf("store: %s: key mismatch", hash)
	}
	sumLine, err := line()
	if err != nil {
		return nil, err
	}
	sum, lenStr, ok := strings.Cut(sumLine, " ")
	if !ok {
		return nil, fmt.Errorf("store: %s: malformed checksum line", hash)
	}
	n, err := strconv.Atoi(lenStr)
	if err != nil {
		return nil, err
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("store: %s: truncated payload: %w", hash, err)
	}
	if got := sha256.Sum256(payload); hex.EncodeToString(got[:]) != sum {
		return nil, fmt.Errorf("store: %s: payload checksum mismatch", hash)
	}
	return payload, nil
}

// Has reports whether an object for key is currently indexed (without
// validating its contents or touching recency/counters).
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.index[keyHash(key)] != nil
}

// Put stores payload under key, atomically (temp file + rename): a
// process killed mid-write leaves no torn object behind. A key that is
// already present is left untouched — objects are immutable values of
// their key, so rewriting identical bytes would only churn the disk.
// Storing may evict least-recently-used objects to stay under budget;
// the just-written object itself is never the eviction victim.
func (s *Store) Put(key string, payload []byte) error {
	hash := keyHash(key)
	s.mu.Lock()
	if s.index[hash] != nil {
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()

	sum := sha256.Sum256(payload)
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s\n%s\n%s\n%s %d\n",
		magic, s.version, strconv.Quote(key), hex.EncodeToString(sum[:]), len(payload))
	buf.Write(payload)

	path := s.pathFor(hash)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-"+hash[:8]+"-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	_, werr := tmp.Write(buf.Bytes())
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: writing %s: %w", hash, firstErr(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}

	size := int64(buf.Len())
	s.mu.Lock()
	if s.index[hash] == nil {
		s.index[hash] = &object{hash: hash, size: size, used: time.Now()}
		s.bytes += size
		s.writes++
	}
	victims := s.evictToLocked(hash)
	s.mu.Unlock()
	for _, v := range victims {
		os.Remove(s.pathFor(v))
	}
	return nil
}

// evictToLocked selects least-recently-used objects until the store fits
// its budget, removing them from the index; keep is exempt (the entry
// being inserted). Caller holds s.mu and removes the returned files.
func (s *Store) evictToLocked(keep string) []string {
	if s.budget <= 0 || s.bytes <= s.budget {
		return nil
	}
	objs := make([]*object, 0, len(s.index))
	for _, o := range s.index {
		if o.hash != keep {
			objs = append(objs, o)
		}
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].used.Before(objs[j].used) })
	var out []string
	for _, o := range objs {
		if s.bytes <= s.budget {
			break
		}
		delete(s.index, o.hash)
		s.bytes -= o.size
		s.evictions++
		out = append(out, o.hash)
	}
	return out
}

// Delete removes the object for key, counting it as invalidated.
func (s *Store) Delete(key string) {
	s.dropObject(keyHash(key), &s.invalidated)
}

// dropObject removes one object from disk and index, bumping the given
// counter if it was present.
func (s *Store) dropObject(hash string, counter *int64) {
	s.mu.Lock()
	obj := s.index[hash]
	if obj != nil {
		delete(s.index, hash)
		s.bytes -= obj.size
		*counter++
	}
	s.mu.Unlock()
	if obj != nil {
		os.Remove(s.pathFor(hash))
	}
}

func (s *Store) count(c *int64) {
	s.mu.Lock()
	*c++
	s.mu.Unlock()
}

// Stats returns the store's counters and on-disk resident set.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits: s.hits, Misses: s.misses, Writes: s.writes,
		Invalidated: s.invalidated, Evictions: s.evictions,
		Entries: len(s.index), Bytes: s.bytes, Budget: s.budget,
	}
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
