package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// LedgerEntry is one line of the append-only experiment ledger: a record
// that a simulation was completed (not served from any cache) at a point
// in time, under a given behavior version. The ledger is the durable
// trajectory of the experiment campaign — unlike the object store it is
// never evicted or invalidated, so `benchreport -ledger` can read the
// full history back even across behavior-version bumps.
type LedgerEntry struct {
	// Time is the completion time, RFC3339 UTC.
	Time string `json:"time"`
	// Kind classifies the record ("result" for a simulation, "trace" for
	// a functional capture).
	Kind string `json:"kind"`
	// Key is the canonical identity of the computation (Options.Key or
	// Options.TraceKey).
	Key string `json:"key"`
	// Version is the behavior stamp the computation ran under.
	Version string `json:"version"`

	Benchmark string `json:"benchmark,omitempty"`
	Mode      string `json:"mode,omitempty"`
	// Cycles and IPC summarize a result record.
	Cycles int64   `json:"cycles,omitempty"`
	IPC    float64 `json:"ipc,omitempty"`
	// WallSeconds is the host time the computation took.
	WallSeconds float64 `json:"wall_seconds"`
}

// AppendLedger appends one entry to the ledger as a single NDJSON line.
// Entries with no Time are stamped now. Append is atomic at the line
// level (one O_APPEND write per entry).
func (s *Store) AppendLedger(e LedgerEntry) error {
	if e.Time == "" {
		e.Time = time.Now().UTC().Format(time.RFC3339Nano)
	}
	if e.Version == "" {
		e.Version = s.version
	}
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("store: ledger: %w", err)
	}
	data = append(data, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ledger == nil {
		return fmt.Errorf("store: ledger closed")
	}
	_, err = s.ledger.Write(data)
	return err
}

// LedgerPath returns the ledger file inside a store directory.
func LedgerPath(dir string) string { return filepath.Join(dir, "ledger.ndjson") }

// ReadLedger reads a ledger file (a path to either the NDJSON file
// itself or a store directory containing one) back into entries, in
// append order. Unparseable lines — for instance the torn tail of a
// crashed process — are skipped rather than failing the read: the
// ledger is history, and most of it being readable beats none.
func ReadLedger(path string) ([]LedgerEntry, error) {
	if info, err := os.Stat(path); err == nil && info.IsDir() {
		path = LedgerPath(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []LedgerEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e LedgerEntry
		if err := json.Unmarshal(line, &e); err != nil {
			continue
		}
		out = append(out, e)
	}
	return out, sc.Err()
}
