package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func mustOpen(t *testing.T, dir, version string, budget int64) *Store {
	t.Helper()
	s, err := Open(dir, version, budget)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, "v-test", 0)
	payload := []byte("the quick brown payload")
	key := "result/cc scale 6"

	if _, ok := s.Get(key); ok {
		t.Fatal("empty store reported a hit")
	}
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Invalidated != 0 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 write", st)
	}
	if st.Entries != 1 || st.Bytes <= int64(len(payload)) {
		t.Fatalf("resident set %+v implausible", st)
	}

	// Re-putting an existing key is a no-op, not a rewrite.
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Writes != 1 {
		t.Fatalf("re-put wrote again: %+v", st)
	}
}

// A restart (new Store over the same directory, same version) serves the
// previously written objects.
func TestSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, "v-test", 0)
	if err := s.Put("k", []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := mustOpen(t, dir, "v-test", 0)
	got, ok := s2.Get("k")
	if !ok || string(got) != "persisted" {
		t.Fatalf("reopened Get = %q, %v", got, ok)
	}
	if st := s2.Stats(); st.Entries != 1 || st.Hits != 1 {
		t.Fatalf("reopened stats = %+v", st)
	}
}

// Bumping the behavior version invalidates every stale entry: the object
// is deleted on first Get under the new version, never returned.
func TestVersionMismatchInvalidates(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, "golden-A", 0)
	if err := s.Put("k", []byte("old-behavior result")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := mustOpen(t, dir, "golden-B", 0)
	if _, ok := s2.Get("k"); ok {
		t.Fatal("stale-version object served")
	}
	st := s2.Stats()
	if st.Invalidated != 1 || st.Misses != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v, want 1 invalidated / 1 miss / 0 entries", st)
	}
	// The file is gone from disk, not just the index.
	if _, err := os.Stat(s2.pathFor(keyHash("k"))); !os.IsNotExist(err) {
		t.Fatalf("stale object still on disk: %v", err)
	}
	// Rewriting under the new version works.
	if err := s2.Put("k", []byte("new")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get("k"); !ok || string(got) != "new" {
		t.Fatalf("post-invalidation Get = %q, %v", got, ok)
	}
}

// A corrupted payload (bit flip or truncation) is dropped and missed,
// never returned.
func TestCorruptionDetected(t *testing.T) {
	for name, corrupt := range map[string]func([]byte) []byte{
		"bitflip":  func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b },
		"truncate": func(b []byte) []byte { return b[:len(b)-3] },
		"garbage":  func(b []byte) []byte { return []byte("not an object at all") },
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s := mustOpen(t, dir, "v", 0)
			if err := s.Put("k", []byte("precious bytes")); err != nil {
				t.Fatal(err)
			}
			path := s.pathFor(keyHash("k"))
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get("k"); ok {
				t.Fatal("corrupted object served")
			}
			if st := s.Stats(); st.Invalidated != 1 {
				t.Fatalf("stats = %+v, want 1 invalidated", st)
			}
		})
	}
}

// The disk budget bounds the object set, evicting least recently used
// first; the ledger does not count against it.
func TestBudgetEviction(t *testing.T) {
	dir := t.TempDir()
	// Each object is ~1 KiB payload + ~160 B header; budget fits ~4.
	s := mustOpen(t, dir, "v", 5<<10)
	payload := bytes.Repeat([]byte("x"), 1<<10)
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := s.Put(key, payload); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so LRU order is well defined even on coarse
		// filesystem timestamp granularity.
		past := time.Now().Add(time.Duration(i-10) * time.Hour)
		os.Chtimes(s.pathFor(keyHash(key)), past, past)
		s.mu.Lock()
		s.index[keyHash(key)].used = past
		s.mu.Unlock()
	}
	st := s.Stats()
	if st.Bytes > 5<<10 {
		t.Fatalf("resident bytes %d exceed budget", st.Bytes)
	}
	if st.Evictions == 0 || st.Entries >= 8 {
		t.Fatalf("no eviction under budget pressure: %+v", st)
	}
	// Oldest keys gone, newest retained.
	if s.Has("k0") {
		t.Fatal("least recently used object survived")
	}
	if !s.Has("k7") {
		t.Fatal("most recent object evicted")
	}
	// The evicted files are actually gone from disk.
	var files int
	filepath.Walk(filepath.Join(dir, "objects"), func(_ string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			files++
		}
		return nil
	})
	if files != st.Entries {
		t.Fatalf("%d files on disk, index has %d", files, st.Entries)
	}
}

// Hash collisions cannot serve a wrong payload: the full key inside the
// object is verified, so a mismatched key reads as a miss.
func TestKeyVerified(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, "v", 0)
	if err := s.Put("real-key", []byte("data")); err != nil {
		t.Fatal(err)
	}
	// Simulate a collision by renaming the object to another key's hash.
	other := keyHash("other-key")
	src := s.pathFor(keyHash("real-key"))
	dst := s.pathFor(other)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(src, dst); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.index[other] = s.index[keyHash("real-key")]
	delete(s.index, keyHash("real-key"))
	s.mu.Unlock()
	if _, ok := s.Get("other-key"); ok {
		t.Fatal("object with mismatched embedded key served")
	}
}

func TestDelete(t *testing.T) {
	s := mustOpen(t, t.TempDir(), "v", 0)
	s.Put("k", []byte("x"))
	s.Delete("k")
	if s.Has("k") {
		t.Fatal("deleted key still present")
	}
	if st := s.Stats(); st.Invalidated != 1 {
		t.Fatalf("stats = %+v, want 1 invalidated", st)
	}
}

func TestLedgerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, "v-stamp", 0)
	for i := 0; i < 3; i++ {
		err := s.AppendLedger(LedgerEntry{
			Kind: "result", Key: fmt.Sprintf("k%d", i),
			Benchmark: "cc", Cycles: int64(100 + i), WallSeconds: 0.5,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Readable via the directory or the file path, across restarts.
	s.Close()
	for _, path := range []string{dir, LedgerPath(dir)} {
		entries, err := ReadLedger(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 3 {
			t.Fatalf("read %d entries, want 3", len(entries))
		}
		for i, e := range entries {
			if e.Key != fmt.Sprintf("k%d", i) || e.Kind != "result" ||
				e.Version != "v-stamp" || e.Time == "" {
				t.Fatalf("entry %d = %+v", i, e)
			}
		}
	}
	// A torn final line (crashed process) is skipped, not fatal.
	f, err := os.OpenFile(LedgerPath(dir), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"time":"2026-`)
	f.Close()
	entries, err := ReadLedger(dir)
	if err != nil || len(entries) != 3 {
		t.Fatalf("torn tail: %d entries, %v", len(entries), err)
	}
}
