package fuzz

import (
	"fmt"

	"repro/internal/graph"
)

// SegKind classifies one segment of a generated program's outer-loop body.
type SegKind int

const (
	SegStraight SegKind = iota // outside-slice arithmetic/memory statements
	SegBranchy                 // outside-slice code biased toward branch diamonds
	SegSlice                   // a slice_start..slice_end region (branch-heavy)
	SegLoop                    // a short counted loop of outside-slice statements
	SegFence                   // a slice_fence
	SegBarrier                 // a global barrier
	numSegKinds
)

// SegShape is the minimizer-addressable description of one segment. Seed
// fixes its content; Skip bit i disables statement i and Off disables the
// whole segment — both without disturbing the surviving statements, because
// every statement index derives its own sub-RNG from Seed (greedy removal
// stays local).
type SegShape struct {
	Kind  SegKind `json:"kind"`
	Seed  uint64  `json:"seed"`
	Stmts int     `json:"stmts"`
	Skip  uint64  `json:"skip,omitempty"`
	Off   bool    `json:"off,omitempty"`
}

// Shape is a generated sample before rendering: an outer-loop iteration
// count, a segment skeleton, and a sampled hardware configuration. Every
// hardware thread renders the same skeleton (so dynamic barrier counts line
// up) with thread-salted statement content. The minimizer edits Shapes and
// re-renders; repro files store the rendered Case instead, so they outlive
// generator changes.
type Shape struct {
	Seed       uint64     `json:"seed"`
	OuterIters int        `json:"outerIters"`
	Segs       []SegShape `json:"segs"`
	Cfg        CaseConfig `json:"cfg"`
}

// Clone returns a deep copy (the minimizer mutates candidates freely).
func (s *Shape) Clone() *Shape {
	c := *s
	c.Segs = append([]SegShape(nil), s.Segs...)
	return &c
}

// NewShape samples a fresh fuzz shape from seed. Storm mode squeezes the
// window structures (tiny ROB/FRQ/Reserve) and biases segments toward
// slices and fences, the regime where recovery machinery is under maximal
// concurrent pressure.
func NewShape(seed uint64, storm bool) *Shape {
	rng := graph.NewRNG(seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d)
	s := &Shape{Seed: seed, Cfg: sampleConfig(rng, storm)}
	s.OuterIters = 2 + rng.Intn(5)
	nseg := 4 + rng.Intn(8)
	if storm {
		nseg = 6 + rng.Intn(8)
	}
	haveSlice := false
	for i := 0; i < nseg; i++ {
		k := sampleKind(rng, storm)
		if k == SegSlice {
			haveSlice = true
		}
		s.Segs = append(s.Segs, SegShape{
			Kind:  k,
			Seed:  rng.Next(),
			Stmts: 2 + rng.Intn(6),
		})
	}
	if !haveSlice {
		s.Segs[0].Kind = SegSlice
	}
	return s
}

func sampleKind(rng *graph.RNG, storm bool) SegKind {
	w := rng.Intn(100)
	if storm {
		switch {
		case w < 50:
			return SegSlice
		case w < 70:
			return SegFence
		case w < 80:
			return SegBranchy
		case w < 88:
			return SegStraight
		case w < 94:
			return SegLoop
		default:
			return SegBarrier
		}
	}
	switch {
	case w < 30:
		return SegSlice
	case w < 50:
		return SegBranchy
	case w < 65:
		return SegStraight
	case w < 75:
		return SegLoop
	case w < 93:
		return SegFence
	default:
		return SegBarrier
	}
}

// sampleConfig draws a hardware configuration. Ranges deliberately reach
// far below the paper's Table 1 (ROB of a few dozen entries, FRQ of 1,
// Reserve of 1) because the interesting recovery interleavings happen when
// structures fill up.
func sampleConfig(rng *graph.RNG, storm bool) CaseConfig {
	cc := CaseConfig{Cores: 1, SMT: 1}
	switch p := rng.Intn(10); {
	case p >= 9:
		cc.Cores = 2
	case p >= 7:
		cc.SMT = 2
	}

	if storm {
		cc.ROBSize = 16 + rng.Intn(17)
		cc.FRQSize = 1 + rng.Intn(2)
	} else {
		cc.ROBSize = 24 + rng.Intn(105)
		cc.FRQSize = 1 + rng.Intn(8)
	}
	cc.RS = 8 + rng.Intn(33)
	cc.LQ = 6 + rng.Intn(24)
	cc.SQ = 6 + rng.Intn(24)
	maxReserve := cc.RS
	if cc.LQ < maxReserve {
		maxReserve = cc.LQ
	}
	if cc.SQ < maxReserve {
		maxReserve = cc.SQ
	}
	if storm {
		cc.Reserve = 1 + rng.Intn(2)
	} else {
		cc.Reserve = 1 + rng.Intn(6)
	}
	if cc.Reserve >= maxReserve {
		cc.Reserve = maxReserve - 1
	}
	cc.ROBBlockSize = []int{1, 1, 1, 2, 4, 8}[rng.Intn(6)]

	widths := []int{2, 4}
	cc.FetchWidth = widths[rng.Intn(2)]
	cc.DispatchWidth = widths[rng.Intn(2)]
	cc.IssueWidth = []int{2, 4, 8}[rng.Intn(3)]
	cc.CommitWidth = widths[rng.Intn(2)]
	cc.FrontendDepth = []int{4, 8, 12}[rng.Intn(3)]
	cc.FrontendQueue = []int{16, 32, 64}[rng.Intn(3)]

	// "oracle" is excluded: a perfect predictor never mispredicts, which
	// defeats the point of fuzzing recovery.
	preds := []string{"tage", "tage", "tage", "tage", "gshare", "gshare",
		"gshare", "bimodal", "bimodal", "static"}
	cc.Predictor = preds[rng.Intn(len(preds))]
	cc.WrongPathMemAccess = rng.Intn(2) == 1

	// Policy leg: roughly half of all samples additionally exercise a
	// random recovery policy (drawn last so the draws above keep their
	// per-seed values).
	if rng.Intn(2) == 1 {
		cc.Policy = samplePolicy(rng, cc.ROBSize)
	}
	return cc
}

// samplePolicy draws a random explicit recovery-policy spelling for a
// machine with the given ROB size. Partial depths cover 1..ROB with an
// occasional "inf"; throttle draws every threshold, including the
// degenerate 0 (whose byte-identity with the conv leg is itself an
// oracle).
func samplePolicy(rng *graph.RNG, robSize int) string {
	switch w := rng.Intn(10); {
	case w < 1:
		return "selective"
	case w < 3:
		return "conventional"
	case w < 7:
		if rng.Intn(8) == 0 {
			return "partial:inf"
		}
		return fmt.Sprintf("partial:%d", 1+rng.Intn(robSize))
	default:
		return fmt.Sprintf("throttle:%d", rng.Intn(5))
	}
}

// ForcePolicy ensures the shape's configuration carries an explicit
// recovery policy (the sfuzz -policy batch mode), drawing one from a
// seed-derived stream when the sampler left it empty.
func (s *Shape) ForcePolicy() {
	if s.Cfg.Policy != "" {
		return
	}
	rng := graph.NewRNG(s.Seed*0x9e3779b97f4a7c15 + 0x7f4a7c159e3779b9)
	s.Cfg.Policy = samplePolicy(rng, s.Cfg.ROBSize)
}
