package fuzz

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/isa"
	"repro/internal/program"
)

// Arena geometry. All generated memory traffic stays inside these regions:
// a shared read-only data array, a shared atomic arena, and per-thread
// outer/slice/dump arenas. This is what makes generated programs obey the
// §4.1 contract by construction (the emulator's checker then verifies it on
// every reference run).
const (
	dataWords   = 64 // shared, read-only random data
	sharedWords = 8  // shared, atomics only: words 0-3 AAdd64, 4-7 AMin64
	arenaWords  = 16 // per-thread outer and slice store arenas
	dumpWords   = 16 // per-thread final register dump
)

// Render materializes a shape into a runnable Case: one program per
// hardware thread plus the initial memory image.
//
// The register and memory discipline, by construction:
//
//   - outer[0..3], iter: written only outside slices → register owner 0
//     forever → readable everywhere (including inside slices).
//   - slice[0..3]: written only inside slices, readable only inside the
//     same slice after being written there (per-slice init tracking), and
//     never read outside a slice. Their values escape through stores to the
//     slice arena, which the epilogue reads back after a slice_fence.
//   - accI/accF: updated only by reduce-prefixed instructions (checker-
//     exempt, §4.5) and read only by the epilogue dump.
//   - tmp/tmp2/loopCtr/loopLim: scratch, always written before read at
//     each use site, never carried across context boundaries.
//   - Slice stores target only the thread's slice arena; outside stores
//     only its outer arena; loads only the shared data array, the outer
//     arena, or slice-arena words stored earlier in the same slice.
//   - Shared-arena traffic is commutative unobserved atomics (AAdd64 or
//     AMin64 per fixed word, Dst=r0), so racing threads still produce a
//     deterministic final image.
type renderer struct {
	b   *program.Builder
	lbl *int // shared label counter (unique across helper calls)

	rData, rOuter, rSlice, rShared, rDump isa.Reg
	iter, limit                           isa.Reg
	inner, innerLim                       isa.Reg
	loopCtr, loopLim                      isa.Reg
	tmp, tmp2                             isa.Reg
	outer, slice                          []isa.Reg
	accI, accF                            isa.Reg

	inSlice     bool
	readable    []isa.Reg // registers legal to read in the current context
	branches    int       // branches emitted in the current slice
	sliceStored []int64   // 8-byte slice-arena offsets stored at depth 0 this slice

	dataBase, sharedBase, outerBase, sliceBase, dumpBase uint64
}

// Render renders every hardware thread of the shape and returns the Case.
func Render(s *Shape) *Case {
	threads := s.Cfg.Cores * s.Cfg.SMT
	lay := program.NewLayout()
	mrng := graph.NewRNG(s.Seed ^ 0xdeadbeefcafef00d)

	dataVals := make([]uint64, dataWords)
	for i := range dataVals {
		dataVals[i] = mrng.Next()
	}
	dataBase := lay.AllocU64(dataWords, dataVals)

	sharedVals := make([]uint64, sharedWords)
	for i := 0; i < 4; i++ {
		sharedVals[i] = mrng.Next() & 0xffff
	}
	for i := 4; i < 8; i++ {
		sharedVals[i] = mrng.Next() | 1<<63 // large, so AMin64 can win
	}
	sharedBase := lay.AllocU64(sharedWords, sharedVals)

	c := &Case{Name: fmt.Sprintf("gen-%#x", s.Seed), Cfg: s.Cfg}
	for ti := 0; ti < threads; ti++ {
		outerVals := make([]uint64, arenaWords)
		for i := range outerVals {
			outerVals[i] = mrng.Next() & 0xffffff
		}
		tr := &renderer{
			b:          program.NewBuilder(fmt.Sprintf("t%d", ti)),
			lbl:        new(int),
			dataBase:   dataBase,
			sharedBase: sharedBase,
			outerBase:  lay.AllocU64(arenaWords, outerVals),
			sliceBase:  lay.AllocU64(arenaWords, nil),
			dumpBase:   lay.AllocU64(dumpWords, nil),
		}
		c.Progs = append(c.Progs, tr.render(s, uint64(ti)))
	}
	c.Mem = lay.Image()
	return c
}

func (tr *renderer) label() string {
	*tr.lbl++
	return fmt.Sprintf("L%d", *tr.lbl)
}

// resetReadable restores the context-independent readable set (owner-0
// registers). Called on every slice boundary.
func (tr *renderer) resetReadable() {
	tr.readable = tr.readable[:0]
	tr.readable = append(tr.readable, tr.outer...)
	tr.readable = append(tr.readable, tr.iter)
}

func (tr *renderer) markWritten(r isa.Reg) {
	for _, x := range tr.readable {
		if x == r {
			return
		}
	}
	tr.readable = append(tr.readable, r)
}

func (tr *renderer) pickReadable(rng *graph.RNG) isa.Reg {
	return tr.readable[rng.Intn(len(tr.readable))]
}

// pickWritable returns a destination register legal in the current
// context: slice regs inside a slice, outer regs outside.
func (tr *renderer) pickWritable(rng *graph.RNG) isa.Reg {
	if tr.inSlice {
		return tr.slice[rng.Intn(len(tr.slice))]
	}
	return tr.outer[rng.Intn(len(tr.outer))]
}

// render builds one thread's program.
func (tr *renderer) render(s *Shape, ti uint64) *isa.Program {
	salt := (ti + 1) * 0x7f4a7c15517cc1b7
	prng := graph.NewRNG(s.Seed ^ salt ^ 0xa5a5a5a5a5a5a5a5)
	b := tr.b

	tr.rData, tr.rOuter, tr.rSlice, tr.rShared, tr.rDump = b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	tr.iter, tr.limit = b.Reg(), b.Reg()
	tr.inner, tr.innerLim = b.Reg(), b.Reg()
	tr.loopCtr, tr.loopLim = b.Reg(), b.Reg()
	tr.tmp, tr.tmp2 = b.Reg(), b.Reg()
	tr.outer = b.Regs(4)
	tr.slice = b.Regs(4)
	tr.accI, tr.accF = b.Reg(), b.Reg()

	b.Li(tr.rData, int64(tr.dataBase))
	b.Li(tr.rOuter, int64(tr.outerBase))
	b.Li(tr.rSlice, int64(tr.sliceBase))
	b.Li(tr.rShared, int64(tr.sharedBase))
	b.Li(tr.rDump, int64(tr.dumpBase))
	for _, r := range tr.outer {
		b.Li(r, int64(prng.Next()&0xffff))
	}
	b.Li(tr.accI, 0)
	b.LiF(tr.accF, 1.0)
	b.Li(tr.iter, 0)
	b.Li(tr.limit, int64(s.OuterIters))
	tr.resetReadable()

	outerTop := tr.label()
	b.Label(outerTop)
	for _, seg := range s.Segs {
		if seg.Off {
			continue
		}
		tr.segment(seg, salt)
	}
	b.AddI(tr.iter, tr.iter, 1)
	b.Blt(tr.iter, tr.limit, outerTop)

	// Epilogue: fence (the sanctioned slice→outside communication point,
	// §4.4), then dump every architecturally-live register plus the slice
	// arena's first words so the memory oracle observes them.
	b.SliceFence(true)
	for i, r := range tr.outer {
		b.St64(tr.rDump, int64(8*i), r)
	}
	b.St64(tr.rDump, 32, tr.accI)
	b.St64(tr.rDump, 40, tr.accF)
	b.St64(tr.rDump, 48, tr.iter)
	for i := 0; i < 4; i++ {
		b.Ld64(tr.tmp, tr.rSlice, int64(8*i))
		b.St64(tr.rDump, int64(64+8*i), tr.tmp)
	}
	b.Halt()
	return b.Build()
}

// stmtRNG derives the sub-RNG of statement i: independent of all other
// statements, so the minimizer's Skip bits do not reshuffle survivors.
func stmtRNG(seg SegShape, salt uint64, i int) *graph.RNG {
	return graph.NewRNG(seg.Seed ^ salt ^ (uint64(i)+0x1000)*0x9e3779b97f4a7c15)
}

func (tr *renderer) segment(seg SegShape, salt uint64) {
	switch seg.Kind {
	case SegFence:
		tr.b.SliceFence(true)
		return
	case SegBarrier:
		tr.b.Barrier()
		return
	case SegLoop:
		rng := stmtRNG(seg, salt, -1)
		tr.b.Li(tr.inner, 0)
		tr.b.Li(tr.innerLim, int64(2+rng.Intn(3)))
		top := tr.label()
		tr.b.Label(top)
		for i := 0; i < seg.Stmts; i++ {
			if seg.Skip&(1<<uint(i)) != 0 {
				continue
			}
			tr.simpleStmt(stmtRNG(seg, salt, i))
		}
		tr.b.AddI(tr.inner, tr.inner, 1)
		tr.b.Blt(tr.inner, tr.innerLim, top)
		return
	case SegSlice:
		tr.b.SliceStart(true)
		tr.inSlice = true
		tr.resetReadable()
		tr.sliceStored = tr.sliceStored[:0]
		tr.branches = 0
		for i := 0; i < seg.Stmts; i++ {
			if seg.Skip&(1<<uint(i)) != 0 {
				continue
			}
			tr.stmt(stmtRNG(seg, salt, i), 0)
		}
		// A slice without a branch never exercises selective recovery;
		// force one (the minimizer can still drop it via bit Stmts).
		if tr.branches == 0 && seg.Skip&(1<<uint(seg.Stmts)) == 0 {
			tr.diamond(stmtRNG(seg, salt, seg.Stmts), 0)
		}
		tr.b.SliceEnd(true)
		tr.inSlice = false
		tr.resetReadable()
		return
	}

	// SegStraight / SegBranchy.
	branchy := seg.Kind == SegBranchy
	for i := 0; i < seg.Stmts; i++ {
		if seg.Skip&(1<<uint(i)) != 0 {
			continue
		}
		rng := stmtRNG(seg, salt, i)
		if branchy && rng.Intn(100) < 45 {
			tr.diamond(rng, 0)
		} else {
			tr.stmt(rng, 0)
		}
	}
}

// stmt emits one random statement. Inside slices the mix is biased toward
// loads and branches (the paper's slice idiom: a data-dependent branch on
// a long-latency load).
func (tr *renderer) stmt(rng *graph.RNG, depth int) {
	w := rng.Intn(100)
	if tr.inSlice {
		switch {
		case w < 18:
			tr.arith(rng)
		case w < 42:
			tr.load(rng, depth)
		case w < 54:
			tr.store(rng, depth)
		case w < 62:
			tr.atomic(rng)
		case w < 72:
			tr.reduce(rng)
		case w < 92:
			if depth < 2 {
				tr.diamond(rng, depth)
			} else {
				tr.arith(rng)
			}
		default:
			if depth == 0 {
				tr.sliceLoop(rng)
			} else {
				tr.load(rng, depth)
			}
		}
		return
	}
	switch {
	case w < 30:
		tr.arith(rng)
	case w < 52:
		tr.load(rng, depth)
	case w < 68:
		tr.store(rng, depth)
	case w < 78:
		tr.atomic(rng)
	case w < 86:
		tr.reduce(rng)
	default:
		if depth < 2 {
			tr.diamond(rng, depth)
		} else {
			tr.arith(rng)
		}
	}
}

// simpleStmt is the loop-body restriction: no control flow (loop counter
// registers must not be clobbered, and diamonds inside tight loops add
// little coverage).
func (tr *renderer) simpleStmt(rng *graph.RNG) {
	switch rng.Intn(5) {
	case 0:
		tr.arith(rng)
	case 1:
		tr.load(rng, 1)
	case 2:
		tr.store(rng, 1)
	case 3:
		tr.atomic(rng)
	default:
		tr.reduce(rng)
	}
}

func (tr *renderer) arith(rng *graph.RNG) {
	d := tr.pickWritable(rng)
	s1 := tr.pickReadable(rng)
	switch rng.Intn(16) {
	case 0:
		tr.b.Add(d, s1, tr.pickReadable(rng))
	case 1:
		tr.b.Sub(d, s1, tr.pickReadable(rng))
	case 2:
		tr.b.Mul(d, s1, tr.pickReadable(rng))
	case 3:
		tr.b.And(d, s1, tr.pickReadable(rng))
	case 4:
		tr.b.Or(d, s1, tr.pickReadable(rng))
	case 5:
		tr.b.Xor(d, s1, tr.pickReadable(rng))
	case 6:
		tr.b.Min(d, s1, tr.pickReadable(rng))
	case 7:
		tr.b.Max(d, s1, tr.pickReadable(rng))
	case 8:
		tr.b.Div(d, s1, tr.pickReadable(rng))
	case 9:
		tr.b.Rem(d, s1, tr.pickReadable(rng))
	case 10:
		tr.b.AddI(d, s1, int64(rng.Intn(1<<12))-1<<11)
	case 11:
		tr.b.XorI(d, s1, int64(rng.Next()&0xffff))
	case 12:
		tr.b.MulI(d, s1, int64(1+rng.Intn(13)))
	case 13:
		tr.b.ShrI(d, s1, int64(rng.Intn(24)))
	case 14:
		tr.b.FAdd(d, s1, tr.pickReadable(rng))
	default:
		tr.b.FMul(d, s1, tr.pickReadable(rng))
	}
	tr.markWritten(d)
}

func (tr *renderer) load(rng *graph.RNG, depth int) {
	d := tr.pickWritable(rng)
	// Slice-arena readback: only from words this slice already stored at
	// depth 0 (those dominate this statement, so the bytes are owned by
	// the current slice when the load executes).
	if tr.inSlice && len(tr.sliceStored) > 0 && rng.Intn(100) < 30 {
		off := tr.sliceStored[rng.Intn(len(tr.sliceStored))]
		tr.b.Ld64(d, tr.rSlice, off)
		tr.markWritten(d)
		return
	}
	base, words := tr.rData, dataWords
	if rng.Intn(100) < 35 {
		base, words = tr.rOuter, arenaWords
	}
	switch rng.Intn(4) {
	case 0: // indexed 64-bit through a masked random index
		tr.b.AndI(tr.tmp, tr.pickReadable(rng), int64(words-1))
		tr.b.LdX64(d, base, tr.tmp, 3)
	case 1: // indexed 32-bit
		tr.b.AndI(tr.tmp, tr.pickReadable(rng), int64(2*words-1))
		tr.b.LdX32(d, base, tr.tmp, 2)
	case 2:
		tr.b.Ld32(d, base, int64(4*rng.Intn(2*words)))
	default:
		tr.b.Ld64(d, base, int64(8*rng.Intn(words)))
	}
	tr.markWritten(d)
}

func (tr *renderer) store(rng *graph.RNG, depth int) {
	base := tr.rOuter
	if tr.inSlice {
		base = tr.rSlice
	}
	val := tr.pickReadable(rng)
	switch rng.Intn(4) {
	case 0:
		tr.b.AndI(tr.tmp, tr.pickReadable(rng), arenaWords-1)
		tr.b.StX64(base, tr.tmp, 3, val)
	case 1:
		tr.b.AndI(tr.tmp, tr.pickReadable(rng), 2*arenaWords-1)
		tr.b.StX32(base, tr.tmp, 2, val)
	case 2:
		tr.b.St32(base, int64(4*rng.Intn(2*arenaWords)), val)
	default:
		off := int64(8 * rng.Intn(arenaWords))
		tr.b.St64(base, off, val)
		if tr.inSlice && depth == 0 {
			tr.sliceStored = append(tr.sliceStored, off)
		}
	}
}

func (tr *renderer) atomic(rng *graph.RNG) {
	val := tr.pickReadable(rng)
	if tr.sharedBase != 0 && rng.Intn(100) < 40 {
		// Shared arena: commutative, result-unobserved (Dst=r0), one op
		// kind per word so racing threads commute.
		if rng.Intn(2) == 0 {
			tr.b.AAdd64(isa.R0, tr.rShared, int64(8*rng.Intn(4)), val)
		} else {
			tr.b.AMin64(isa.R0, tr.rShared, int64(32+8*rng.Intn(4)), val)
		}
		return
	}
	d := tr.pickWritable(rng)
	switch rng.Intn(5) {
	case 0:
		tr.b.AAdd64(d, tr.rOuter, int64(8*rng.Intn(arenaWords)), val)
	case 1:
		tr.b.AAdd32(d, tr.rOuter, int64(4*rng.Intn(2*arenaWords)), val)
	case 2:
		tr.b.AMin64(d, tr.rOuter, int64(8*rng.Intn(arenaWords)), val)
	case 3:
		tr.b.AndI(tr.tmp, tr.pickReadable(rng), arenaWords-1)
		tr.b.AAddX64(d, tr.rOuter, tr.tmp, 3, val)
	default:
		tr.b.AndI(tr.tmp, tr.pickReadable(rng), arenaWords-1)
		tr.b.AMinX64(d, tr.rOuter, tr.tmp, 3, val)
	}
	tr.markWritten(d)
}

func (tr *renderer) reduce(rng *graph.RNG) {
	src := tr.pickReadable(rng)
	switch rng.Intn(4) {
	case 0:
		tr.b.Reduce().Add(tr.accI, tr.accI, src)
	case 1:
		tr.b.Reduce().Min(tr.accI, tr.accI, src)
	case 2:
		tr.b.Reduce().Max(tr.accI, tr.accI, src)
	default:
		tr.b.Reduce().FAdd(tr.accF, tr.accF, src)
	}
}

// diamond emits a two-armed conditional region (optionally with an else
// arm). Conditions read random data, so directions are data-dependent and
// mispredict-prone — the fuel of every recovery path under test.
func (tr *renderer) diamond(rng *graph.RNG, depth int) {
	els, end := tr.label(), tr.label()
	src := tr.pickReadable(rng)
	switch rng.Intn(4) {
	case 0:
		tr.b.AndI(tr.tmp2, src, 1<<uint(rng.Intn(8)))
		if rng.Intn(2) == 0 {
			tr.b.Bne(tr.tmp2, isa.R0, els)
		} else {
			tr.b.Beq(tr.tmp2, isa.R0, els)
		}
	case 1:
		s2 := tr.pickReadable(rng)
		switch rng.Intn(4) {
		case 0:
			tr.b.Blt(src, s2, els)
		case 1:
			tr.b.Bge(src, s2, els)
		case 2:
			tr.b.Bltu(src, s2, els)
		default:
			tr.b.Bgeu(src, s2, els)
		}
	case 2:
		s2 := tr.pickReadable(rng)
		if rng.Intn(2) == 0 {
			tr.b.Bflt(src, s2, els)
		} else {
			tr.b.Bfge(src, s2, els)
		}
	default:
		tr.b.Bne(src, tr.pickReadable(rng), els)
	}
	tr.branches++

	// Writes inside an arm do not dominate code after the join point, so
	// they must not extend the readable set beyond the arm: snapshot it
	// and restore after each arm. (Within an arm, straight-line order
	// still lets later arm statements read earlier arm writes.)
	saved := append([]isa.Reg(nil), tr.readable...)
	for i := 1 + rng.Intn(2); i > 0; i-- {
		tr.stmt(rng, depth+1)
	}
	tr.readable = append(tr.readable[:0], saved...)
	if rng.Intn(2) == 0 {
		tr.b.Jmp(end)
		tr.b.Label(els)
		for i := 1 + rng.Intn(2); i > 0; i-- {
			tr.stmt(rng, depth+1)
		}
		tr.readable = append(tr.readable[:0], saved...)
		tr.b.Label(end)
	} else {
		tr.b.Label(els)
	}
}

// sliceLoop emits a short counted loop inside a slice: its backward branch
// stretches the dynamic slice and its body pressures the reserved
// resources (§4.7).
func (tr *renderer) sliceLoop(rng *graph.RNG) {
	tr.b.Li(tr.loopCtr, 0)
	tr.b.Li(tr.loopLim, int64(1+rng.Intn(3)))
	top := tr.label()
	tr.b.Label(top)
	for i := 1 + rng.Intn(2); i > 0; i-- {
		tr.simpleStmt(rng)
	}
	tr.b.AddI(tr.loopCtr, tr.loopCtr, 1)
	tr.b.Blt(tr.loopCtr, tr.loopLim, top)
	tr.branches++
}
