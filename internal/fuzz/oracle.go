package fuzz

import (
	"bytes"
	"context"
	"fmt"
	"reflect"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/trace"
)

// refBudget bounds the reference run; generated programs execute a few
// thousand dynamic instructions, so hitting this means the generator built
// an unintended long/infinite loop.
const refBudget = 2_000_000

// Violation is one oracle failure. Kind is stable across runs of the same
// case (the minimizer shrinks while preserving Kind); Detail is free-form
// diagnostics.
type Violation struct {
	Kind   string
	Detail string
}

func (v *Violation) Error() string { return v.Kind + ": " + v.Detail }

func violationf(kind, format string, args ...any) *Violation {
	return &Violation{Kind: kind, Detail: fmt.Sprintf(format, args...)}
}

// runRef executes the case on the architectural emulator (with the §4.1
// discipline checker on) and returns the final memory image and the number
// of instructions the pipeline is expected to commit: every dynamic
// instruction except slice markers and nops, which the core discards at
// dispatch.
func runRef(c *Case) ([]byte, uint64, error) {
	mem := append([]byte(nil), c.Mem...)
	ms := make([]*emu.Machine, len(c.Progs))
	for i, p := range c.Progs {
		m := emu.New(p, mem)
		m.CheckIndependence = true
		ms[i] = m
	}
	var commits, total uint64
	for {
		alive := false
		for _, m := range ms {
			if m.Halted {
				continue
			}
			alive = true
			for !m.Halted {
				d, err := m.Step()
				if err != nil {
					return nil, 0, err
				}
				if total++; total > refBudget {
					return nil, 0, fmt.Errorf("%s: reference budget %d exhausted", c.Name, refBudget)
				}
				op := d.Inst.Op
				if !op.IsSlice() && op != isa.Nop {
					commits++
				}
				if op == isa.Barrier {
					break
				}
			}
		}
		if !alive {
			return mem, commits, nil
		}
	}
}

// runSim runs one timing variant, converting panics (the core panics on
// invariant breaks, by design) into errors so the fuzz loop survives them.
func runSim(c *Case, selective, cycleAccurate bool) (res *sim.Result, mem []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("panic: %v", r)
		}
	}()
	mem = append([]byte(nil), c.Mem...)
	w := &sim.Workload{Name: c.Name, Progs: c.Progs, Mem: mem}
	res, err = sim.Run(c.Cfg.simConfig(selective, cycleAccurate), w)
	return res, mem, err
}

// RunCase runs the full differential battery on one case and returns the
// first violation found (nil = clean):
//
//	ref       architectural emulator, independence checker on
//	sel       core sim, selective flush, event-driven stepping
//	ca        core sim, selective flush, forced cycle-accurate stepping
//	conv      core sim, conventional full flush
//	replay    core sim, selective flush, frontend fed from a captured
//	          trace (single-threaded cases only — replay's domain)
//	batch     the sel/ca/conv variants re-run as lanes of one batched
//	          replay: a shared trace decode ring and a shared wrong-path
//	          segment cache (single-threaded cases only)
//	policy    when Cfg.Policy is set: the sampled recovery policy run
//	          event-driven and cycle-accurate (the seventh leg; see
//	          RunPolicy)
//
// Oracles: every sim variant must finish (no watchdog hang, no panic, and
// — via the always-on quiescence check inside sim.Run — no leaked ROB/RS/
// LQ/SQ/FRQ entries and an exactly-balanced uop conservation law); every
// variant's final memory must equal the reference image; every variant
// must commit exactly the expected instruction count; the event-driven
// and cycle-accurate selective runs must produce byte-identical results;
// the replayed run must be byte-identical to the live selective run; and
// every batched lane must be byte-identical to its serial counterpart.
func RunCase(c *Case) *Violation {
	refMem, wantCommits, err := runRef(c)
	if err != nil {
		return violationf("ref-fault", "%v", err)
	}

	type variant struct {
		key        string
		selective  bool
		cycleAccur bool
	}
	variants := []variant{
		{"sel", true, false},
		{"ca", true, true},
		{"conv", false, false},
	}
	results := make(map[string]*sim.Result, len(variants))
	for _, vr := range variants {
		res, mem, err := runSim(c, vr.selective, vr.cycleAccur)
		if err != nil {
			return violationf(vr.key+"-run", "%s: %v", c.Name, err)
		}
		if !bytes.Equal(mem, refMem) {
			i := firstDiff(mem, refMem)
			return violationf("mem-"+vr.key,
				"%s: final memory diverges from reference at byte %#x (got %#x want %#x)",
				c.Name, i, mem[i], refMem[i])
		}
		if res.Total.Committed != wantCommits {
			return violationf("commit-"+vr.key,
				"%s: committed %d instructions, reference executed %d (non-marker)",
				c.Name, res.Total.Committed, wantCommits)
		}
		results[vr.key] = res
	}

	// PR3's guarantee: the event-driven fast paths are result-invariant.
	if !reflect.DeepEqual(*results["sel"], *results["ca"]) {
		return violationf("ca-equiv",
			"%s: event-driven and cycle-accurate selective runs diverge: %s",
			c.Name, diffResults(results["sel"], results["ca"]))
	}

	// PR9's guarantee: every recovery policy passes the same oracles, and
	// the degenerate parameterizations are byte-identical to the legacy
	// legs.
	if c.Cfg.Policy != "" {
		if v := RunPolicy(c, refMem, wantCommits, results); v != nil {
			return v
		}
	}

	// PR6's guarantee: a trace-replayed run is indistinguishable from a
	// live-emulated one. Single-threaded cases only (replay's domain).
	if len(c.Progs) == 1 {
		capMem := append([]byte(nil), c.Mem...)
		tr, err := trace.Capture(context.Background(), c.Progs[0], capMem)
		if err != nil {
			return violationf("capture-fault", "%s: %v", c.Name, err)
		}
		if !bytes.Equal(capMem, refMem) {
			i := firstDiff(capMem, refMem)
			return violationf("mem-capture",
				"%s: capture's final memory diverges from reference at byte %#x (got %#x want %#x)",
				c.Name, i, capMem[i], refMem[i])
		}
		res, mem, err := runReplay(c, tr)
		if err != nil {
			return violationf("replay-run", "%s: %v", c.Name, err)
		}
		if !bytes.Equal(mem, refMem) {
			i := firstDiff(mem, refMem)
			return violationf("mem-replay",
				"%s: replayed final memory diverges from reference at byte %#x (got %#x want %#x)",
				c.Name, i, mem[i], refMem[i])
		}
		if !reflect.DeepEqual(*res, *results["sel"]) {
			return violationf("replay-equiv",
				"%s: replayed and live selective runs diverge: %s",
				c.Name, diffResults(res, results["sel"]))
		}

		// PR8's guarantee: batched replay — one shared decode ring, one
		// shared wrong-path segment cache — is indistinguishable from a
		// serial run, lane by lane, even with flush modes and stepping
		// styles mixed in the same batch.
		tr.EnsureSegs(0, nil)
		keys := []string{"sel", "ca", "conv"}
		bres, bmems, err := runBatch(c, tr)
		if err != nil {
			return violationf("batch-run", "%s: %v", c.Name, err)
		}
		for i, k := range keys {
			if !bytes.Equal(bmems[i], refMem) {
				j := firstDiff(bmems[i], refMem)
				return violationf("mem-batch",
					"%s: batched %s lane's final memory diverges from reference at byte %#x (got %#x want %#x)",
					c.Name, k, j, bmems[i][j], refMem[j])
			}
			if !reflect.DeepEqual(*bres[i], *results[k]) {
				return violationf("batch-equiv",
					"%s: batched %s lane diverges from its serial run: %s",
					c.Name, k, diffResults(bres[i], results[k]))
			}
		}
	}
	return nil
}

// runBatch re-runs the three live variants as lanes of one sim.RunBatch
// call over tr, in the same order as RunCase's variants table. The
// independence checker is off for the same reason as runReplay.
func runBatch(c *Case, tr *trace.Trace) (res []*sim.Result, mems [][]byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("panic: %v", r)
		}
	}()
	variants := []struct{ selective, cycleAccur bool }{
		{true, false}, {true, true}, {false, false},
	}
	cfgs := make([]sim.Config, len(variants))
	ws := make([]*sim.Workload, len(variants))
	mems = make([][]byte, len(variants))
	for i, vr := range variants {
		mems[i] = append([]byte(nil), c.Mem...)
		ws[i] = &sim.Workload{Name: c.Name, Progs: c.Progs, Mem: mems[i]}
		cfg := c.Cfg.simConfig(vr.selective, vr.cycleAccur)
		cfg.CheckIndependence = false
		cfgs[i] = cfg
	}
	results, errs := sim.RunBatch(tr, cfgs, ws)
	for i, e := range errs {
		if e != nil {
			return nil, nil, fmt.Errorf("lane %d: %w", i, e)
		}
	}
	return results, mems, nil
}

// runReplay is runSim for the trace-fed variant: selective flush,
// event-driven stepping, frontend replaying tr. The independence checker
// must be off — it observes the live emulator, which a replayed run does
// not have (and checking happened in runRef and the live legs anyway).
func runReplay(c *Case, tr *trace.Trace) (res *sim.Result, mem []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("panic: %v", r)
		}
	}()
	mem = append([]byte(nil), c.Mem...)
	w := &sim.Workload{Name: c.Name, Progs: c.Progs, Mem: mem}
	cfg := c.Cfg.simConfig(true, false)
	cfg.CheckIndependence = false
	cfg.Replay = tr
	res, err = sim.Run(cfg, w)
	return res, mem, err
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// diffResults names the first differing field of two results (DeepEqual
// says only "not equal"; the fuzzer wants to say where).
func diffResults(a, b *sim.Result) string {
	av, bv := reflect.ValueOf(*a), reflect.ValueOf(*b)
	t := av.Type()
	for i := 0; i < t.NumField(); i++ {
		if !reflect.DeepEqual(av.Field(i).Interface(), bv.Field(i).Interface()) {
			return fmt.Sprintf("field %s: %v vs %v", t.Field(i).Name,
				av.Field(i).Interface(), bv.Field(i).Interface())
		}
	}
	return "results differ (field-level diff found nothing?)"
}
