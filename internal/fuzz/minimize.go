package fuzz

// Minimize greedily shrinks a failing shape while preserving the
// violation's Kind, re-rendering and re-running the full oracle battery on
// every candidate. Levers, coarse to fine: collapse to one hardware
// thread, halve the outer iteration count, disable whole segments, then
// disable individual statements (Skip bits, which do not perturb the
// surviving statements' content). budget bounds the number of candidate
// runs. Returns the smallest still-failing shape and its violation.
func Minimize(s *Shape, v *Violation, budget int) (*Shape, *Violation) {
	fails := func(cand *Shape) *Violation {
		if budget <= 0 {
			return nil
		}
		budget--
		if cv := RunCase(Render(cand)); cv != nil && cv.Kind == v.Kind {
			return cv
		}
		return nil
	}

	cur := s.Clone()
	for improved := true; improved && budget > 0; {
		improved = false

		if cur.Cfg.Cores*cur.Cfg.SMT > 1 {
			cand := cur.Clone()
			cand.Cfg.Cores, cand.Cfg.SMT = 1, 1
			if cv := fails(cand); cv != nil {
				cur, v, improved = cand, cv, true
			}
		}

		for cur.OuterIters > 1 {
			cand := cur.Clone()
			cand.OuterIters = cur.OuterIters / 2
			cv := fails(cand)
			if cv == nil {
				break
			}
			cur, v, improved = cand, cv, true
		}

		for i := range cur.Segs {
			if cur.Segs[i].Off {
				continue
			}
			cand := cur.Clone()
			cand.Segs[i].Off = true
			if cv := fails(cand); cv != nil {
				cur, v, improved = cand, cv, true
			}
		}

		for i := range cur.Segs {
			if cur.Segs[i].Off {
				continue
			}
			// Bit Stmts is the forced slice branch; it is droppable too.
			for b := 0; b <= cur.Segs[i].Stmts; b++ {
				if cur.Segs[i].Skip&(1<<uint(b)) != 0 {
					continue
				}
				cand := cur.Clone()
				cand.Segs[i].Skip |= 1 << uint(b)
				if cv := fails(cand); cv != nil {
					cur, v, improved = cand, cv, true
				}
			}
		}
	}
	return cur, v
}
