package fuzz

import (
	"bytes"
	"fmt"
	"reflect"

	"repro/internal/core"
	"repro/internal/sim"
)

// RunPolicy is the policy-equivalence oracle leg: it runs the case under
// the recovery policy named by c.Cfg.Policy, event-driven and forced
// cycle-accurate, and checks
//
//   - both runs finish (no watchdog hang, no panic, quiescent machine),
//   - both final memory images equal the reference image,
//   - both commit exactly the reference instruction count,
//   - the two stepping styles produce byte-identical results,
//   - a degenerate parameterization is byte-identical to its legacy leg:
//     "selective" to the sel leg, and "conventional"/"partial:inf"/
//     "throttle:0" to the conv leg (when legacy is non-nil).
//
// legacy is RunCase's results map ("sel"/"ca"/"conv"); pass nil to skip
// the identity checks (the conformance suite builds its own pairs).
func RunPolicy(c *Case, refMem []byte, wantCommits uint64, legacy map[string]*sim.Result) *Violation {
	spec, err := core.ParsePolicy(c.Cfg.Policy)
	if err != nil {
		return violationf("policy-parse", "%s: %v", c.Name, err)
	}
	if spec.Kind == core.PolicyAuto {
		return violationf("policy-parse", "%s: policy leg needs an explicit policy, got %q",
			c.Name, c.Cfg.Policy)
	}

	variants := []struct {
		key        string
		cycleAccur bool
	}{
		{"policy", false},
		{"policy-ca", true},
	}
	results := make(map[string]*sim.Result, len(variants))
	for _, vr := range variants {
		res, mem, err := runPolicySim(c, spec, vr.cycleAccur)
		if err != nil {
			return violationf(vr.key+"-run", "%s [%s]: %v", c.Name, spec, err)
		}
		if !bytes.Equal(mem, refMem) {
			i := firstDiff(mem, refMem)
			return violationf("mem-"+vr.key,
				"%s [%s]: final memory diverges from reference at byte %#x (got %#x want %#x)",
				c.Name, spec, i, mem[i], refMem[i])
		}
		if res.Total.Committed != wantCommits {
			return violationf("commit-"+vr.key,
				"%s [%s]: committed %d instructions, reference executed %d (non-marker)",
				c.Name, spec, res.Total.Committed, wantCommits)
		}
		results[vr.key] = res
	}

	if !reflect.DeepEqual(*results["policy"], *results["policy-ca"]) {
		return violationf("policy-ca-equiv",
			"%s [%s]: event-driven and cycle-accurate policy runs diverge: %s",
			c.Name, spec, diffResults(results["policy"], results["policy-ca"]))
	}

	if legacy != nil {
		if twin := degenerateTwin(spec); twin != "" {
			if !reflect.DeepEqual(*results["policy"], *legacy[twin]) {
				return violationf("policy-identity",
					"%s: policy %s must be byte-identical to the %s leg: %s",
					c.Name, spec, twin, diffResults(results["policy"], legacy[twin]))
			}
		}
	}
	return nil
}

// degenerateTwin names the legacy leg a policy spec must be byte-identical
// to, or "" when the spec is a genuinely new machine.
func degenerateTwin(spec core.PolicySpec) string {
	switch {
	case spec.Kind == core.PolicySelective:
		return "sel"
	case spec.Kind == core.PolicyConventional:
		return "conv"
	case spec.Kind == core.PolicyPartial && spec.Depth == 0:
		return "conv" // partial:inf releases everything at resolution
	case spec.Kind == core.PolicyThrottle && spec.Conf == 0:
		return "conv" // a threshold of 0 never gates fetch
	}
	return ""
}

// runPolicySim is runSim for the policy leg.
func runPolicySim(c *Case, spec core.PolicySpec, cycleAccurate bool) (res *sim.Result, mem []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("panic: %v", r)
		}
	}()
	mem = append([]byte(nil), c.Mem...)
	w := &sim.Workload{Name: c.Name, Progs: c.Progs, Mem: mem}
	res, err = sim.Run(c.Cfg.policySimConfig(spec, cycleAccurate), w)
	return res, mem, err
}
