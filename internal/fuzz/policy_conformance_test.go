package fuzz

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// conformanceCases returns the corpus the policy matrix runs over: the
// committed scenario corpus under testdata/ (which includes every
// hand-built adversarial scenario, via TestExportCorpus) plus a couple of
// generated shapes so single-threaded replay-style programs are
// represented too.
func conformanceCases(t *testing.T) []*Case {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no corpus files under testdata/")
	}
	var cases []*Case
	for _, f := range files {
		c, err := ReadCaseFile(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		cases = append(cases, c)
	}
	for seed := uint64(1); seed <= 2; seed++ {
		cases = append(cases, Render(NewShape(seed, true)))
	}
	return cases
}

// TestPolicyConformance is the differential conformance suite: every
// registered recovery policy, at every representative parameterization
// (core.ConformanceMatrix), runs every corpus case and must produce the
// reference memory image and commit count under both stepping styles —
// and the degenerate parameterizations (selective, conventional,
// partial:inf, throttle:0) must be byte-identical to the legacy
// selective/conventional legs. A new policy registered in internal/core
// enters this matrix automatically.
func TestPolicyConformance(t *testing.T) {
	for _, c := range conformanceCases(t) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			refMem, wantCommits, err := runRef(c)
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			legacy := make(map[string]*sim.Result, 2)
			for key, selective := range map[string]bool{"sel": true, "conv": false} {
				res, mem, err := runSim(c, selective, false)
				if err != nil {
					t.Fatalf("%s leg: %v", key, err)
				}
				if i := firstDiff(mem, refMem); i < len(refMem) {
					t.Fatalf("%s leg memory diverges at byte %#x", key, i)
				}
				legacy[key] = res
			}
			specs := core.ConformanceMatrix(c.Cfg.ROBSize)
			if len(specs) < len(core.RegisteredPolicies()) {
				t.Fatalf("conformance matrix has %d rows for %d registered policies",
					len(specs), len(core.RegisteredPolicies()))
			}
			for _, spec := range specs {
				spec := spec
				t.Run(spec.String(), func(t *testing.T) {
					cc := *c
					cc.Cfg.Policy = spec.String()
					if v := RunPolicy(&cc, refMem, wantCommits, legacy); v != nil {
						t.Fatalf("%v", v)
					}
				})
			}
		})
	}
}

// TestPolicyFaultInjectionCaught extends the fault-attribution proof to
// the full-squash policies: with an injected recovery bug armed, the
// policy leg's oracles must catch it for conventional, partial, and
// throttle machines alike — the regression for faults that used to fire
// only on the selective path.
func TestPolicyFaultInjectionCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-injection sweep is slow")
	}
	modes := []struct {
		name string
		mode core.FaultMode
	}{
		{"skip-unlink", core.FaultSkipUnlink},
		{"leak-pending", core.FaultLeakPending},
	}
	policies := []string{"conventional", "partial:2", "throttle:4"}
	for _, m := range modes {
		for _, pol := range policies {
			m, pol := m, pol
			t.Run(fmt.Sprintf("%s/%s", m.name, pol), func(t *testing.T) {
				core.SetFaultInjection(m.mode)
				defer core.SetFaultInjection(core.FaultNone)
				const maxSamples = 200
				for seed := uint64(1); seed <= maxSamples; seed++ {
					c := Render(NewShape(seed, true))
					c.Cfg.Policy = pol
					refMem, wantCommits, err := runRef(c)
					if err != nil {
						t.Fatalf("seed %d: reference run: %v", seed, err)
					}
					if v := RunPolicy(c, refMem, wantCommits, nil); v != nil {
						t.Logf("%s under %s caught at seed %d: %s", m.name, pol, seed, v.Kind)
						return
					}
				}
				t.Fatalf("%s under %s: no violation within %d samples — the oracles are blind",
					m.name, pol, maxSamples)
			})
		}
	}
}
