// Package fuzz implements differential fuzzing of the selective-flush
// pipeline: a seeded random generator of slice-annotated programs that
// respect the §4.1 independence contract, a configuration sampler over the
// window/FRQ/reserve/SMT space, an oracle battery that runs every sample
// through the architectural emulator and the timing simulator (selective
// flush, conventional full flush, and forced cycle-accurate stepping) and
// cross-checks the results, and a greedy minimizer that shrinks failing
// samples into replayable repro files under testdata/.
package fuzz

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/sim"
)

// CaseConfig is the sampled hardware configuration of one fuzz case: a
// flat, JSON-stable subset of core.Config plus the system shape. Repro
// files serialize this instead of core.Config so they keep replaying even
// as the config struct grows.
type CaseConfig struct {
	Cores int `json:"cores"`
	SMT   int `json:"smt"`

	ROBSize      int `json:"rob"`
	RS           int `json:"rs"`
	LQ           int `json:"lq"`
	SQ           int `json:"sq"`
	Reserve      int `json:"reserve"`
	ROBBlockSize int `json:"robBlock"`
	FRQSize      int `json:"frq"`

	FetchWidth    int `json:"fetchW"`
	DispatchWidth int `json:"dispatchW"`
	IssueWidth    int `json:"issueW"`
	CommitWidth   int `json:"commitW"`
	FrontendDepth int `json:"feDepth"`
	FrontendQueue int `json:"feQueue"`

	Predictor          string `json:"predictor"`
	WrongPathMemAccess bool   `json:"wpMem"`

	// Policy, when non-empty, arms the policy-equivalence oracle leg:
	// RunCase additionally runs this recovery policy (core.ParsePolicy
	// spelling) through the memory/commit/quiescence oracles, checks its
	// event-driven and cycle-accurate runs agree, and — for the
	// degenerate parameterizations — demands byte-identity with the
	// legacy legs. Empty (the default, and every pre-policy repro file)
	// changes nothing.
	Policy string `json:"policy,omitempty"`
}

// Case is one concrete fuzz sample: the programs (one per hardware
// thread), the initial memory image, and the sampled configuration. A Case
// is self-contained — it replays identically regardless of how the
// generator evolves.
type Case struct {
	Name  string
	Cfg   CaseConfig
	Progs []*isa.Program
	Mem   []byte
}

// simConfig builds the sim configuration for one legacy oracle variant.
// It deliberately ignores cc.Policy: the sel/ca/conv legs must keep
// running the exact machines they always ran (policySimConfig builds the
// policy leg's).
func (cc CaseConfig) simConfig(selective, cycleAccurate bool) sim.Config {
	c := core.DefaultConfig()
	c.ROBSize = cc.ROBSize
	c.RS = cc.RS
	c.LQ = cc.LQ
	c.SQ = cc.SQ
	c.Reserve = cc.Reserve
	c.ROBBlockSize = cc.ROBBlockSize
	c.FRQSize = cc.FRQSize
	c.FetchWidth = cc.FetchWidth
	c.DispatchWidth = cc.DispatchWidth
	c.IssueWidth = cc.IssueWidth
	c.CommitWidth = cc.CommitWidth
	c.FrontendDepth = cc.FrontendDepth
	c.FrontendQueue = cc.FrontendQueue
	c.Predictor = cc.Predictor
	c.WrongPathMemAccess = cc.WrongPathMemAccess
	c.SMT = cc.SMT
	c.SelectiveFlush = selective
	c.ForceCycleAccurate = cycleAccurate
	return sim.Config{
		Core:  c,
		Mem:   sim.ScaledMemConfig(cc.Cores),
		Cores: cc.Cores,
		// Generated programs run a few thousand dynamic instructions;
		// these bounds catch hangs quickly without false positives.
		MaxCycles:         8_000_000,
		WatchdogCycles:    100_000,
		CheckIndependence: true,
	}
}

// policySimConfig builds the sim configuration for the policy-equivalence
// leg: the sampled machine with an explicit recovery policy. The legacy
// SelectiveFlush switch is set iff the policy is selective, so the
// degenerate spellings ("selective", "conventional") configure machines
// identical to the legacy legs.
func (cc CaseConfig) policySimConfig(spec core.PolicySpec, cycleAccurate bool) sim.Config {
	c := cc.simConfig(spec.Kind == core.PolicySelective, cycleAccurate)
	c.Core.Recovery = spec
	return c
}

// JSON wire format for repro files.

type instJSON struct {
	Op     string `json:"op"`
	Dst    uint8  `json:"dst,omitempty"`
	Src1   uint8  `json:"src1,omitempty"`
	Src2   uint8  `json:"src2,omitempty"`
	Val    uint8  `json:"val,omitempty"`
	Imm    int64  `json:"imm,omitempty"`
	Reduce bool   `json:"reduce,omitempty"`
}

type progJSON struct {
	Name string     `json:"name"`
	Code []instJSON `json:"code"`
}

type caseJSON struct {
	Name  string     `json:"name"`
	Cfg   CaseConfig `json:"cfg"`
	Progs []progJSON `json:"progs"`
	Mem   string     `json:"mem"` // base64 of the initial image
}

// Encode serializes the case as indented JSON.
func (c *Case) Encode() ([]byte, error) {
	cj := caseJSON{
		Name: c.Name,
		Cfg:  c.Cfg,
		Mem:  base64.StdEncoding.EncodeToString(c.Mem),
	}
	for _, p := range c.Progs {
		pj := progJSON{Name: p.Name}
		for _, in := range p.Code {
			pj.Code = append(pj.Code, instJSON{
				Op:     in.Op.String(),
				Dst:    uint8(in.Dst),
				Src1:   uint8(in.Src1),
				Src2:   uint8(in.Src2),
				Val:    uint8(in.Val),
				Imm:    in.Imm,
				Reduce: in.Reduce(),
			})
		}
		cj.Progs = append(cj.Progs, pj)
	}
	return json.MarshalIndent(cj, "", " ")
}

// DecodeCase parses a serialized case and validates its programs.
func DecodeCase(data []byte) (*Case, error) {
	var cj caseJSON
	if err := json.Unmarshal(data, &cj); err != nil {
		return nil, fmt.Errorf("fuzz: bad case file: %w", err)
	}
	mem, err := base64.StdEncoding.DecodeString(cj.Mem)
	if err != nil {
		return nil, fmt.Errorf("fuzz: bad case memory: %w", err)
	}
	c := &Case{Name: cj.Name, Cfg: cj.Cfg, Mem: mem}
	for _, pj := range cj.Progs {
		p := &isa.Program{Name: pj.Name}
		for i, ij := range pj.Code {
			op, ok := isa.OpByName(ij.Op)
			if !ok {
				return nil, fmt.Errorf("fuzz: %s: pc %d: unknown op %q", pj.Name, i, ij.Op)
			}
			in := isa.Inst{
				Op:   op,
				Dst:  isa.Reg(ij.Dst),
				Src1: isa.Reg(ij.Src1),
				Src2: isa.Reg(ij.Src2),
				Val:  isa.Reg(ij.Val),
				Imm:  ij.Imm,
			}
			if ij.Reduce {
				in.Flags |= isa.FlagReduce
			}
			p.Code = append(p.Code, in)
		}
		if err := isa.Validate(p); err != nil {
			return nil, fmt.Errorf("fuzz: %w", err)
		}
		c.Progs = append(c.Progs, p)
	}
	if want := c.Cfg.Cores * c.Cfg.SMT; len(c.Progs) != want {
		return nil, fmt.Errorf("fuzz: case %s has %d programs for %d hardware threads",
			c.Name, len(c.Progs), want)
	}
	return c, nil
}

// WriteFile writes the case to path as a repro file.
func (c *Case) WriteFile(path string) error {
	data, err := c.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadCaseFile loads a repro file.
func ReadCaseFile(path string) (*Case, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeCase(data)
}
