package fuzz

import (
	"repro/internal/graph"
	"repro/internal/isa"
	"repro/internal/program"
)

// Hand-built adversarial cases: each aims one oracle at one stress point
// of the selective-flush machinery. They double as the committed seed
// corpus (testdata/) and as always-on regression tests (TestScenarios).

// Scenarios returns every named adversarial case.
func Scenarios() []*Case {
	return []*Case{
		ScenarioFence(),
		ScenarioFRQStorm(),
		ScenarioReserveExhaustion(),
		ScenarioReduceSMT(),
	}
}

func scenarioConfig() CaseConfig {
	return CaseConfig{
		Cores: 1, SMT: 1,
		ROBSize: 64, RS: 24, LQ: 16, SQ: 16,
		Reserve: 4, ROBBlockSize: 1, FRQSize: 4,
		FetchWidth: 4, DispatchWidth: 4, IssueWidth: 8, CommitWidth: 4,
		FrontendDepth: 8, FrontendQueue: 32,
		Predictor: "tage", WrongPathMemAccess: true,
	}
}

func randomData(lay *program.Layout, seed uint64) uint64 {
	rng := graph.NewRNG(seed)
	vals := make([]uint64, dataWords)
	for i := range vals {
		vals[i] = rng.Next()
	}
	return lay.AllocU64(dataWords, vals)
}

// ScenarioFence: every iteration runs a slice with a data-dependent
// branch and hits a slice_fence immediately after slice_end, so fences
// repeatedly arrive while the in-slice miss is still pending (the
// fenceStall path) and post-fence code reads the slice's memory output.
func ScenarioFence() *Case {
	cc := scenarioConfig()
	cc.FRQSize = 2
	cc.Reserve = 2

	lay := program.NewLayout()
	dataBase := randomData(lay, 0x5eedfe4ce0001)
	sliceBase := lay.AllocU64(arenaWords, nil)
	dumpBase := lay.AllocU64(dumpWords, nil)

	b := program.NewBuilder("fence")
	rData, rSlice, rDump := b.Reg(), b.Reg(), b.Reg()
	iter, limit, acc := b.Reg(), b.Reg(), b.Reg()
	t, v, w := b.Reg(), b.Reg(), b.Reg()

	b.Li(rData, int64(dataBase))
	b.Li(rSlice, int64(sliceBase))
	b.Li(rDump, int64(dumpBase))
	b.Li(iter, 0)
	b.Li(limit, 40)
	b.Li(acc, 0)
	b.Label("top")
	b.SliceStart(true)
	b.AndI(t, iter, dataWords-1)
	b.LdX64(v, rData, t, 3)
	b.AndI(t, v, 1)
	b.Bne(t, isa.R0, "skip")
	b.St64(rSlice, 0, v)
	b.Label("skip")
	b.St64(rSlice, 8, v)
	b.SliceEnd(true)
	b.SliceFence(true)
	b.Ld64(w, rSlice, 8) // sanctioned post-fence read of the slice's output
	b.Add(acc, acc, w)
	b.AddI(iter, iter, 1)
	b.Blt(iter, limit, "top")
	b.St64(rDump, 0, acc)
	b.St64(rDump, 8, iter)
	b.Halt()

	return &Case{Name: "scenario-fence", Cfg: cc,
		Progs: []*isa.Program{b.Build()}, Mem: lay.Image()}
}

// ScenarioFRQStorm: FRQ of 1 and a weak predictor against four chained
// data-dependent in-slice branches per iteration — most in-slice misses
// find the FRQ full and must take the conventional-fallback path while a
// selective recovery is still in flight.
func ScenarioFRQStorm() *Case {
	cc := scenarioConfig()
	cc.FRQSize = 1
	cc.Reserve = 1
	cc.ROBSize = 24
	cc.RS, cc.LQ, cc.SQ = 10, 8, 8
	cc.Predictor = "bimodal"

	lay := program.NewLayout()
	dataBase := randomData(lay, 0x5eedf4a570a2)
	sliceBase := lay.AllocU64(arenaWords, nil)
	dumpBase := lay.AllocU64(dumpWords, nil)

	b := program.NewBuilder("frqstorm")
	rData, rSlice, rDump := b.Reg(), b.Reg(), b.Reg()
	iter, limit, acc := b.Reg(), b.Reg(), b.Reg()
	t, v, w := b.Reg(), b.Reg(), b.Reg()

	b.Li(rData, int64(dataBase))
	b.Li(rSlice, int64(sliceBase))
	b.Li(rDump, int64(dumpBase))
	b.Li(iter, 0)
	b.Li(limit, 32)
	b.Li(acc, 0)
	b.Label("top")
	b.SliceStart(true)
	b.AndI(t, iter, dataWords-1)
	b.LdX64(v, rData, t, 3)
	b.AndI(t, v, 1)
	b.Bne(t, isa.R0, "b1")
	b.St64(rSlice, 0, v)
	b.Label("b1")
	b.AndI(t, v, 2)
	b.Beq(t, isa.R0, "b2")
	b.St64(rSlice, 8, v)
	b.Label("b2")
	b.AndI(t, v, 4)
	b.Bne(t, isa.R0, "b3")
	b.Reduce().Add(acc, acc, v)
	b.Label("b3")
	b.AndI(t, v, 8)
	b.Beq(t, isa.R0, "b4")
	b.St64(rSlice, 16, v)
	b.Label("b4")
	b.SliceEnd(true)
	b.AddI(iter, iter, 1)
	b.Blt(iter, limit, "top")
	b.SliceFence(true)
	b.St64(rDump, 0, acc)
	b.St64(rDump, 8, iter)
	for i := 0; i < 3; i++ {
		b.Ld64(w, rSlice, int64(8*i))
		b.St64(rDump, int64(16+8*i), w)
	}
	b.Halt()

	return &Case{Name: "scenario-frq-storm", Cfg: cc,
		Progs: []*isa.Program{b.Build()}, Mem: lay.Image()}
}

// ScenarioReserveExhaustion: tiny RS/LQ/SQ with Reserve=1 and slices that
// burst loads and stores on both the slice and the post-slice path — the
// §4.7 admission tiers (regular vs resolve-path vs oldest-hole) are all
// forced to turn work away, and forward progress rests entirely on the
// reserved entries.
func ScenarioReserveExhaustion() *Case {
	cc := scenarioConfig()
	cc.RS, cc.LQ, cc.SQ = 8, 6, 6
	cc.Reserve = 1
	cc.ROBSize = 24
	cc.ROBBlockSize = 4
	cc.FRQSize = 2
	cc.Predictor = "gshare"

	lay := program.NewLayout()
	dataBase := randomData(lay, 0x5eed4e5e47e)
	outerVals := make([]uint64, arenaWords)
	rng := graph.NewRNG(0x0072a1e5)
	for i := range outerVals {
		outerVals[i] = rng.Next() & 0xffffff
	}
	outerBase := lay.AllocU64(arenaWords, outerVals)
	sliceBase := lay.AllocU64(arenaWords, nil)
	dumpBase := lay.AllocU64(dumpWords, nil)

	b := program.NewBuilder("reserve")
	rData, rOuter, rSlice, rDump := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	iter, limit := b.Reg(), b.Reg()
	t, v, v2, w, o1, o2 := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()

	b.Li(rData, int64(dataBase))
	b.Li(rOuter, int64(outerBase))
	b.Li(rSlice, int64(sliceBase))
	b.Li(rDump, int64(dumpBase))
	b.Li(iter, 0)
	b.Li(limit, 24)
	b.Li(o1, 0)
	b.Label("top")
	b.SliceStart(true)
	b.AndI(t, iter, dataWords-1)
	b.LdX64(v, rData, t, 3)
	b.AndI(t, v, 3)
	b.Beq(t, isa.R0, "arm")
	b.Ld64(v2, rData, 16)
	b.St64(rSlice, 0, v2)
	b.Ld64(v2, rData, 24)
	b.St64(rSlice, 8, v2)
	b.Label("arm")
	b.Ld64(v2, rData, 32)
	b.St64(rSlice, 16, v2)
	b.St64(rSlice, 24, v)
	b.SliceEnd(true)
	// Post-slice burst: fills the unreserved LQ/SQ entries while the
	// in-slice miss above is still unresolved.
	b.Ld64(o2, rOuter, 0)
	b.St64(rOuter, 8, o2)
	b.Ld64(o2, rOuter, 16)
	b.St64(rOuter, 24, o2)
	b.Ld64(o2, rOuter, 32)
	b.Add(o1, o1, o2)
	b.St64(rOuter, 40, o1)
	b.AddI(iter, iter, 1)
	b.Blt(iter, limit, "top")
	b.SliceFence(true)
	b.St64(rDump, 0, o1)
	b.St64(rDump, 8, iter)
	for i := 0; i < 4; i++ {
		b.Ld64(w, rSlice, int64(8*i))
		b.St64(rDump, int64(16+8*i), w)
	}
	b.Halt()

	return &Case{Name: "scenario-reserve", Cfg: cc,
		Progs: []*isa.Program{b.Build()}, Mem: lay.Image()}
}

// ScenarioReduceSMT: two SMT threads whose slices lead with commit-time
// reduce updates (§4.5) and race commutative atomics on a shared word,
// synchronizing with a barrier every iteration. Exercises reduce-at-head
// commit ordering under SMT resource sharing.
func ScenarioReduceSMT() *Case {
	cc := scenarioConfig()
	cc.SMT = 2
	cc.ROBSize = 48
	cc.RS, cc.LQ, cc.SQ = 16, 12, 12
	cc.Reserve = 2
	cc.FRQSize = 2

	lay := program.NewLayout()
	dataBase := randomData(lay, 0x5eed4edce5)
	sharedBase := lay.AllocU64(sharedWords, []uint64{0, 0, 0, 0,
		^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)})

	c := &Case{Name: "scenario-reduce-smt", Cfg: cc}
	for ti := 0; ti < 2; ti++ {
		sliceBase := lay.AllocU64(arenaWords, nil)
		dumpBase := lay.AllocU64(dumpWords, nil)

		b := program.NewBuilder(c.Name + []string{"-t0", "-t1"}[ti])
		rData, rSlice, rShared, rDump := b.Reg(), b.Reg(), b.Reg(), b.Reg()
		iter, limit, accI, accF, o1 := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
		t, v, w := b.Reg(), b.Reg(), b.Reg()

		b.Li(rData, int64(dataBase))
		b.Li(rSlice, int64(sliceBase))
		b.Li(rShared, int64(sharedBase))
		b.Li(rDump, int64(dumpBase))
		b.Li(iter, 0)
		b.Li(limit, 24)
		b.Li(accI, 0)
		b.LiF(accF, 1.0)
		b.Li(o1, int64(7+ti))
		b.Label("top")
		b.SliceStart(true)
		b.Reduce().Add(accI, accI, o1) // reduce at the slice head
		b.AndI(t, iter, dataWords-1)
		b.LdX64(v, rData, t, 3)
		b.AndI(t, v, 1)
		b.Bne(t, isa.R0, "skip")
		b.Reduce().FAdd(accF, accF, v)
		b.Label("skip")
		b.St64(rSlice, 0, v)
		b.SliceEnd(true)
		b.AAdd64(isa.R0, rShared, 0, o1)  // commutative, racing with the other thread
		b.AMin64(isa.R0, rShared, 32, o1) // likewise
		b.Barrier()
		b.AddI(iter, iter, 1)
		b.Blt(iter, limit, "top")
		b.SliceFence(true)
		b.St64(rDump, 0, accI)
		b.St64(rDump, 8, accF)
		b.St64(rDump, 16, iter)
		b.Ld64(w, rSlice, 0)
		b.St64(rDump, 24, w)
		b.Halt()

		c.Progs = append(c.Progs, b.Build())
	}
	c.Mem = lay.Image()
	return c
}
