package fuzz

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

var update = flag.Bool("update", false, "rewrite the testdata seed corpus")

// TestGeneratedSamplesSmoke runs a deterministic batch of generated cases
// through the full differential battery. Any violation here is a real bug
// (in the pipeline or in the generator's discipline).
func TestGeneratedSamplesSmoke(t *testing.T) {
	n := 25
	if testing.Short() {
		n = 6
	}
	for seed := uint64(1); seed <= uint64(n); seed++ {
		s := NewShape(seed, false)
		if v := RunCase(Render(s)); v != nil {
			t.Fatalf("seed %d: %v", seed, v)
		}
	}
}

// TestStormSamplesSmoke is the same under storm shapes (tiny ROB/FRQ/
// Reserve, slice/fence-heavy programs).
func TestStormSamplesSmoke(t *testing.T) {
	n := 15
	if testing.Short() {
		n = 4
	}
	for seed := uint64(1); seed <= uint64(n); seed++ {
		s := NewShape(seed, true)
		if v := RunCase(Render(s)); v != nil {
			t.Fatalf("storm seed %d: %v", seed, v)
		}
	}
}

// TestScenarios replays the hand-built adversarial cases.
func TestScenarios(t *testing.T) {
	for _, c := range Scenarios() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			if v := RunCase(c); v != nil {
				t.Fatalf("%s: %v", c.Name, v)
			}
		})
	}
}

// TestReplayRepros replays every committed repro file. These are
// regression cases: once their bug is fixed, they must stay clean forever.
func TestReplayRepros(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no repro files under testdata/ (the seed corpus should be committed)")
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			c, err := ReadCaseFile(f)
			if err != nil {
				t.Fatal(err)
			}
			if v := RunCase(c); v != nil {
				t.Fatalf("%s: %v", c.Name, v)
			}
		})
	}
}

// TestCaseRoundTrip: serialization is lossless — a decoded case must be
// instruction-identical and byte-identical to the original.
func TestCaseRoundTrip(t *testing.T) {
	orig := Render(NewShape(7, false))
	data, err := orig.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeCase(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name || !bytes.Equal(back.Mem, orig.Mem) {
		t.Fatalf("name/mem mismatch after round trip")
	}
	if len(back.Progs) != len(orig.Progs) {
		t.Fatalf("program count: got %d want %d", len(back.Progs), len(orig.Progs))
	}
	for i := range orig.Progs {
		a, b := orig.Progs[i], back.Progs[i]
		if len(a.Code) != len(b.Code) {
			t.Fatalf("prog %d: length %d vs %d", i, len(a.Code), len(b.Code))
		}
		for pc := range a.Code {
			ai, bi := a.Code[pc], b.Code[pc]
			// Labels are not serialized; compare the executable fields.
			if ai.Op != bi.Op || ai.Dst != bi.Dst || ai.Src1 != bi.Src1 ||
				ai.Src2 != bi.Src2 || ai.Val != bi.Val || ai.Imm != bi.Imm ||
				ai.Reduce() != bi.Reduce() {
				t.Fatalf("prog %d pc %d: %v vs %v", i, pc, ai, bi)
			}
		}
	}
	data2, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("encode(decode(x)) != x")
	}
}

// TestFaultInjectionCaught proves the oracle battery has teeth: with a
// deliberately broken recovery path armed, a modest batch of storm samples
// must produce at least one violation (the ISSUE's acceptance bar is 500
// samples; these faults fall within a handful).
func TestFaultInjectionCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-injection sweep is slow")
	}
	modes := []struct {
		name string
		mode core.FaultMode
	}{
		{"skip-unlink", core.FaultSkipUnlink},
		{"leak-pending", core.FaultLeakPending},
	}
	for _, m := range modes {
		m := m
		t.Run(m.name, func(t *testing.T) {
			core.SetFaultInjection(m.mode)
			defer core.SetFaultInjection(core.FaultNone)
			const maxSamples = 200
			for seed := uint64(1); seed <= maxSamples; seed++ {
				s := NewShape(seed, true)
				if v := RunCase(Render(s)); v != nil {
					t.Logf("%s caught at seed %d after %d samples: %s",
						m.name, seed, seed, v.Kind)
					return
				}
			}
			t.Fatalf("%s: no violation within %d samples — the oracles are blind to this bug",
				m.name, maxSamples)
		})
	}
}

// TestMinimizePreservesKind: under an injected fault, the minimizer must
// hand back a still-failing shape with the same violation kind, no larger
// than the original.
func TestMinimizePreservesKind(t *testing.T) {
	if testing.Short() {
		t.Skip("minimization is slow")
	}
	core.SetFaultInjection(core.FaultSkipUnlink)
	defer core.SetFaultInjection(core.FaultNone)

	var s *Shape
	var v *Violation
	for seed := uint64(1); seed <= 100; seed++ {
		cand := NewShape(seed, true)
		if cv := RunCase(Render(cand)); cv != nil {
			s, v = cand, cv
			break
		}
	}
	if s == nil {
		t.Fatal("no failing sample to minimize")
	}
	ms, mv := Minimize(s, v, 120)
	if mv == nil || mv.Kind != v.Kind {
		t.Fatalf("minimizer lost the violation: had %v, got %v", v, mv)
	}
	if len(renderedCode(ms)) > len(renderedCode(s)) {
		t.Fatalf("minimized case grew: %d > %d instructions",
			len(renderedCode(ms)), len(renderedCode(s)))
	}
	if rv := RunCase(Render(ms)); rv == nil || rv.Kind != v.Kind {
		t.Fatalf("minimized shape does not reproduce: %v", rv)
	}
}

func renderedCode(s *Shape) []struct{} {
	n := 0
	for _, p := range Render(s).Progs {
		n += len(p.Code)
	}
	return make([]struct{}, n)
}

// TestExportCorpus regenerates the committed seed corpus when -update is
// set (mirrors the golden-file idiom) and otherwise verifies the files on
// disk match the in-tree scenario builders.
func TestExportCorpus(t *testing.T) {
	for _, c := range Scenarios() {
		c := c
		path := filepath.Join("testdata", c.Name+".json")
		data, err := c.Encode()
		if err != nil {
			t.Fatal(err)
		}
		data = append(data, '\n')
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (run `go test ./internal/fuzz -run TestExportCorpus -update`)", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s is stale; regenerate with -update", path)
		}
	}
}

// FuzzSelectiveFlushEquivalence is the native fuzz entry: each input seed
// becomes a full generated case run through the differential battery.
func FuzzSelectiveFlushEquivalence(f *testing.F) {
	for seed := uint64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		s := NewShape(seed, false)
		if v := RunCase(Render(s)); v != nil {
			t.Fatalf("seed %#x: %v", seed, v)
		}
	})
}

// FuzzRecoveryStorm fuzzes the storm regime: tiny windows, FRQ/Reserve of
// 1-2, slice- and fence-dense programs.
func FuzzRecoveryStorm(f *testing.F) {
	for seed := uint64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		s := NewShape(seed, true)
		if v := RunCase(Render(s)); v != nil {
			t.Fatalf("storm seed %#x: %v", seed, v)
		}
	})
}
