package emu

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/program"
)

// buildArith assembles a little program exercising the integer ALU,
// writing results to memory for inspection.
func buildArith() (*isa.Program, []byte, uint64) {
	l := program.NewLayout()
	out := l.Alloc(128)
	b := program.NewBuilder("arith")
	rOut, rA, rB, rT := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.Li(rOut, int64(out))
	b.Li(rA, 100)
	b.Li(rB, 7)
	b.Add(rT, rA, rB)
	b.St64(rOut, 0, rT) // 107
	b.Sub(rT, rA, rB)
	b.St64(rOut, 8, rT) // 93
	b.Mul(rT, rA, rB)
	b.St64(rOut, 16, rT) // 700
	b.Div(rT, rA, rB)
	b.St64(rOut, 24, rT) // 14
	b.Rem(rT, rA, rB)
	b.St64(rOut, 32, rT) // 2
	b.ShlI(rT, rA, 3)
	b.St64(rOut, 40, rT) // 800
	b.Min(rT, rA, rB)
	b.St64(rOut, 48, rT) // 7
	b.Max(rT, rA, rB)
	b.St64(rOut, 56, rT) // 100
	b.Div(rT, rA, isa.R0)
	b.St64(rOut, 64, rT) // x/0 = 0
	b.Halt()
	return b.Build(), l.Image(), out
}

func TestMachineArith(t *testing.T) {
	p, mem, out := buildArith()
	m := New(p, mem)
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []uint64{107, 93, 700, 14, 2, 800, 7, 100, 0}
	for i, w := range want {
		if got := program.ReadU64(mem, out+uint64(i)*8); got != w {
			t.Errorf("out[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestMachineFloat(t *testing.T) {
	l := program.NewLayout()
	out := l.Alloc(64)
	b := program.NewBuilder("float")
	rOut, rA, rB, rT := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.Li(rOut, int64(out))
	b.LiF(rA, 2.5)
	b.LiF(rB, 4.0)
	b.FAdd(rT, rA, rB)
	b.St64(rOut, 0, rT) // 6.5
	b.FMul(rT, rA, rB)
	b.St64(rOut, 8, rT) // 10.0
	b.FDiv(rT, rB, rA)
	b.St64(rOut, 16, rT) // 1.6
	b.LiF(rT, -3.75)
	b.FAbs(rT, rT)
	b.St64(rOut, 24, rT) // 3.75
	b.Li(rT, 9)
	b.CvtIF(rT, rT)
	b.St64(rOut, 32, rT) // 9.0
	b.Halt()
	m := New(b.Build(), l.Image())
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, w := range []float64{6.5, 10.0, 1.6, 3.75, 9.0} {
		if got := program.ReadF64(m.Mem, out+uint64(i)*8); got != w {
			t.Errorf("out[%d] = %g, want %g", i, got, w)
		}
	}
}

func TestMachineAtomics(t *testing.T) {
	l := program.NewLayout()
	word := l.AllocU64(2, []uint64{10, 100})
	b := program.NewBuilder("atomics")
	rW, rV, rOld := b.Reg(), b.Reg(), b.Reg()
	b.Li(rW, int64(word))
	b.Li(rV, 5)
	b.AAdd64(rOld, rW, 0, rV) // 10 -> 15, old 10
	b.St64(rW, 8, rOld)       // word[1] = 10
	b.Li(rV, 3)
	b.AMin64(rOld, rW, 0, rV) // 15 -> 3
	b.Halt()
	m := New(b.Build(), l.Image())
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := program.ReadU64(m.Mem, word); got != 3 {
		t.Errorf("word = %d, want 3", got)
	}
	if got := program.ReadU64(m.Mem, word+8); got != 10 {
		t.Errorf("old = %d, want 10", got)
	}
}

func TestMachineFaults(t *testing.T) {
	b := program.NewBuilder("oob")
	r := b.Reg()
	b.Li(r, 1<<40)
	b.Ld64(r, r, 0)
	b.Halt()
	m := New(b.Build(), make([]byte, 64))
	if _, err := m.Run(0); err == nil {
		t.Fatal("out-of-bounds load not detected")
	}

	// Step after halt errors.
	b2 := program.NewBuilder("halt")
	b2.Halt()
	m2 := New(b2.Build(), nil)
	if _, err := m2.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Step(); err == nil {
		t.Fatal("step after halt should fail")
	}
}

// TestDeterminism: the same program and seed memory produce identical
// dynamic streams.
func TestDeterminism(t *testing.T) {
	f := func(a, bv uint64) bool {
		p, mem1, _ := buildArith()
		_, mem2, _ := buildArith()
		m1, m2 := New(p, mem1), New(p, mem2)
		for !m1.Halted {
			d1, err1 := m1.Step()
			d2, err2 := m2.Step()
			if err1 != nil || err2 != nil {
				return false
			}
			if d1 != d2 {
				return false
			}
		}
		return bytes.Equal(mem1, mem2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// buildSliceLoop builds a sliced loop whose branch outcome depends on the
// memory values, for shadow and RunToSliceEnd tests.
func buildSliceLoop(n int, vals []uint32) (*isa.Program, []byte, uint64) {
	l := program.NewLayout()
	in := l.AllocU32(n, vals)
	out := l.AllocU32(n, nil)
	b := program.NewBuilder("sliceloop")
	rI, rN, rIn, rOut, rX, rT := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.Li(rI, 0)
	b.Li(rN, int64(n))
	b.Li(rIn, int64(in))
	b.Li(rOut, int64(out))
	b.Label("loop")
	b.Bge(rI, rN, "done")
	b.SliceStart(true)
	b.LdX32(rX, rIn, rI, 2)
	b.AndI(rT, rX, 1)
	b.Beq(rT, isa.R0, "even")
	b.MulI(rX, rX, 3)
	b.Label("even")
	b.StX32(rOut, rI, 2, rX)
	b.SliceEnd(true)
	b.AddI(rI, rI, 1)
	b.Jmp("loop")
	b.Label("done")
	b.SliceFence(true)
	b.Halt()
	return b.Build(), l.Image(), out
}

func TestRunToSliceEnd(t *testing.T) {
	p, mem, _ := buildSliceLoop(4, []uint32{1, 2, 3, 4})
	m := New(p, mem)
	// Step until inside the first slice (after the in-slice branch).
	for !m.InSlice() {
		if _, err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// Execute the branch inside the slice.
	for {
		d, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		if d.IsBranch() {
			break
		}
	}
	seg, err := m.RunToSliceEnd(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(seg) == 0 {
		t.Fatal("empty segment")
	}
	last := seg[len(seg)-1]
	if last.Inst.Op != isa.SliceEnd {
		t.Fatalf("segment must end with slice_end, got %v", last.Inst.Op)
	}
	if m.InSlice() {
		t.Fatal("machine still in slice after RunToSliceEnd")
	}
	// Sequence numbers are strictly increasing program order.
	for i := 1; i < len(seg); i++ {
		if seg[i].Seq != seg[i-1].Seq+1 {
			t.Fatalf("non-contiguous seq at %d", i)
		}
	}
}

func TestRunToSliceEndOutsideSlice(t *testing.T) {
	p, mem, _ := buildSliceLoop(2, []uint32{1, 2})
	m := New(p, mem)
	if _, err := m.RunToSliceEnd(nil); err == nil {
		t.Fatal("RunToSliceEnd outside a slice should fail")
	}
}

func TestShadowIsolation(t *testing.T) {
	p, mem, out := buildSliceLoop(4, []uint32{1, 2, 3, 4})
	m := New(p, mem)
	// Run to just after the first in-slice branch.
	for {
		d, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		if d.IsBranch() && d.InSlice {
			break
		}
	}
	before := append([]byte(nil), mem...)
	regsBefore := m.Regs

	// Shadow down the not-actually-taken direction; force everything
	// not-taken so it rolls forward through stores.
	s := m.Shadow(m.PC, true, 1)
	dir := func(pc int, in isa.Inst, actual bool) bool { return false }
	for i := 0; i < 50 && !s.Dead(); i++ {
		if _, ok := s.Step(dir); !ok {
			break
		}
	}
	// Architectural state untouched.
	if !bytes.Equal(before, mem) {
		t.Fatal("shadow leaked stores into architectural memory")
	}
	if regsBefore != m.Regs {
		t.Fatal("shadow modified machine registers")
	}
	_ = out
}

func TestShadowForwarding(t *testing.T) {
	// A shadow's own stores must be visible to its later loads.
	l := program.NewLayout()
	buf := l.Alloc(64)
	b := program.NewBuilder("fwd")
	rB, rV, rT := b.Reg(), b.Reg(), b.Reg()
	b.Li(rB, int64(buf))
	b.Li(rV, 1234)
	b.St64(rB, 0, rV)
	b.Ld64(rT, rB, 0)
	b.St64(rB, 8, rT)
	b.Halt()
	p := b.Build()
	m := New(p, l.Image())
	s := m.Shadow(0, false, 0)
	dir := func(int, isa.Inst, bool) bool { return false }
	var lastLd DynInst
	for !s.Dead() {
		d, ok := s.Step(dir)
		if !ok {
			break
		}
		if d.Inst.Op == isa.Ld64 {
			lastLd = d
		}
	}
	if lastLd.PC == 0 {
		t.Fatal("shadow never executed the load")
	}
	// Architectural memory still zero at buf.
	if got := program.ReadU64(m.Mem, buf); got != 0 {
		t.Fatalf("architectural memory modified: %d", got)
	}
}

func TestShadowOOB(t *testing.T) {
	b := program.NewBuilder("oob")
	r := b.Reg()
	b.Li(r, 1<<40)
	b.Ld64(r, r, 0)
	b.Halt()
	p := b.Build()
	m := New(p, make([]byte, 64))
	s := m.Shadow(0, false, 0)
	dir := func(int, isa.Inst, bool) bool { return false }
	oob := false
	for !s.Dead() {
		d, ok := s.Step(dir)
		if !ok {
			break
		}
		if d.MemOOB {
			oob = true
		}
	}
	if !oob {
		t.Fatal("shadow out-of-bounds access not flagged")
	}
}

func TestIndependenceCheckerCatchesViolation(t *testing.T) {
	// A slice stores to memory; code after the slice (before the fence)
	// reads it: a §4.1 contract violation.
	l := program.NewLayout()
	buf := l.Alloc(64)
	b := program.NewBuilder("violate")
	rB, rV := b.Reg(), b.Reg()
	b.Li(rB, int64(buf))
	b.Li(rV, 1)
	b.SliceStart(true)
	b.St64(rB, 0, rV)
	b.SliceEnd(true)
	b.Ld64(rV, rB, 0) // reads slice-written memory before the fence
	b.SliceFence(true)
	b.Halt()
	m := New(b.Build(), l.Image())
	m.CheckIndependence = true
	if _, err := m.Run(0); err == nil {
		t.Fatal("memory independence violation not caught")
	}
}

func TestIndependenceCheckerRegisterViolation(t *testing.T) {
	b := program.NewBuilder("regviolate")
	rA, rB := b.Reg(), b.Reg()
	b.SliceStart(true)
	b.Li(rA, 42)
	b.SliceEnd(true)
	b.Mov(rB, rA) // reads a slice-written register outside the slice
	b.SliceFence(true)
	b.Halt()
	m := New(b.Build(), make([]byte, 64))
	m.CheckIndependence = true
	if _, err := m.Run(0); err == nil {
		t.Fatal("register independence violation not caught")
	}
}

func TestIndependenceCheckerAllowsFenceReads(t *testing.T) {
	l := program.NewLayout()
	buf := l.Alloc(64)
	b := program.NewBuilder("fenced")
	rB, rV := b.Reg(), b.Reg()
	b.Li(rB, int64(buf))
	b.Li(rV, 1)
	b.SliceStart(true)
	b.St64(rB, 0, rV)
	b.SliceEnd(true)
	b.SliceFence(true)
	b.Ld64(rV, rB, 0) // after the fence: the sanctioned channel
	b.Halt()
	m := New(b.Build(), l.Image())
	m.CheckIndependence = true
	if _, err := m.Run(0); err != nil {
		t.Fatalf("legal post-fence read rejected: %v", err)
	}
}

func TestIndependenceCheckerAllowsReduce(t *testing.T) {
	b := program.NewBuilder("reduce")
	acc := b.Reg()
	b.Li(acc, 0)
	for i := 0; i < 2; i++ {
		b.SliceStart(true)
		b.Reduce().AddI(acc, acc, 1)
		b.SliceEnd(true)
	}
	b.SliceFence(true)
	b.Halt()
	m := New(b.Build(), make([]byte, 64))
	m.CheckIndependence = true
	if _, err := m.Run(0); err != nil {
		t.Fatalf("reduce accumulator rejected: %v", err)
	}
	if m.Regs[1] != 2 {
		t.Fatalf("acc = %d, want 2", m.Regs[1])
	}
}

func TestRunAllBarrierPhases(t *testing.T) {
	// Two machines: A writes, barrier, B reads A's value in phase 2.
	l := program.NewLayout()
	buf := l.Alloc(64)

	ba := program.NewBuilder("writer")
	rB, rV := ba.Reg(), ba.Reg()
	ba.Li(rB, int64(buf))
	ba.Li(rV, 77)
	ba.St64(rB, 0, rV)
	ba.Barrier()
	ba.Halt()

	bb := program.NewBuilder("reader")
	rB2, rV2 := bb.Reg(), bb.Reg()
	bb.Li(rB2, int64(buf))
	bb.Barrier()
	bb.Ld64(rV2, rB2, 0)
	bb.St64(rB2, 8, rV2)
	bb.Halt()

	mem := l.Image()
	ms := []*Machine{New(bb.Build(), mem), New(ba.Build(), mem)}
	if _, err := RunAll(ms, 0); err != nil {
		t.Fatal(err)
	}
	if got := program.ReadU64(mem, buf+8); got != 77 {
		t.Fatalf("reader saw %d, want 77", got)
	}
}
