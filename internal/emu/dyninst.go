// Package emu implements the functional emulator for the virtual ISA.
//
// A Machine executes a program architecturally, strictly in program order,
// and produces the dynamic instruction stream the timing model consumes.
// A Shadow is a fork of the machine used as the wrong-path engine: it runs
// down a mispredicted direction with buffered stores, so wrong-path
// instructions carry realistic addresses without disturbing architectural
// state (the role Pin's code cache plays in the paper's setup, §5.2).
package emu

import (
	"fmt"

	"repro/internal/isa"
)

// DynInst is one dynamic instruction: a static instruction plus everything
// the timing model needs to know about this execution of it.
type DynInst struct {
	Seq    uint64   // program-order sequence number (correct path only)
	PC     int      // code index of the instruction
	Inst   isa.Inst // the static instruction
	NextPC int      // PC of the dynamically next instruction
	Taken  bool     // branch outcome (conditional branches)

	Addr    uint64 // effective address (memory ops)
	MemOOB  bool   // wrong-path access fell outside data memory
	InSlice bool   // instruction lies between slice_start and slice_end
	SliceID uint64 // which dynamic slice instance (valid when InSlice)
	Wrong   bool   // produced by the wrong-path engine
}

// IsBranch reports whether the instruction is a conditional branch.
func (d *DynInst) IsBranch() bool { return d.Inst.Op.IsBranch() }

func (d *DynInst) String() string {
	tag := ""
	if d.Wrong {
		tag = " WP"
	}
	if d.InSlice {
		tag += fmt.Sprintf(" s%d", d.SliceID)
	}
	return fmt.Sprintf("#%d @%d %v%s", d.Seq, d.PC, d.Inst, tag)
}
