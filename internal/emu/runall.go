package emu

import (
	"fmt"

	"repro/internal/isa"
)

// RunAll executes a set of machines (sharing one memory image) purely
// functionally, honoring barriers: each machine runs until its next
// Barrier or Halt; when all have arrived, the barrier opens and the next
// phase starts. It is the fast validation path for multi-threaded
// workloads (no timing). Returns the total instruction count.
func RunAll(machines []*Machine, maxInsts uint64) (uint64, error) {
	var total uint64
	for {
		alive := false
		for _, m := range machines {
			if m.Halted {
				continue
			}
			alive = true
			for !m.Halted {
				d, err := m.Step()
				if err != nil {
					return total, err
				}
				total++
				if maxInsts > 0 && total > maxInsts {
					return total, fmt.Errorf("emu: RunAll budget %d exhausted", maxInsts)
				}
				if d.Inst.Op == isa.Barrier {
					break
				}
			}
		}
		if !alive {
			return total, nil
		}
	}
}
