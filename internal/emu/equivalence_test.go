package emu

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/isa"
	"repro/internal/program"
)

// genStraightLine builds a random straight-line program over every
// non-control opcode, with memory accesses confined to a scratch buffer.
func genStraightLine(rng *graph.RNG, scratch uint64, words int) *isa.Program {
	b := program.NewBuilder("straight")
	regs := b.Regs(8)
	rBase := regs[0]
	b.Li(rBase, int64(scratch))
	for i, r := range regs[1:] {
		b.Li(r, int64(rng.Next()%1024)+1)
		_ = i
	}
	pick := func() isa.Reg { return regs[1+int(rng.Next()%7)] }
	n := 20 + int(rng.Next()%40)
	for i := 0; i < n; i++ {
		d, s1, s2 := pick(), pick(), pick()
		off := int64(rng.Next()%uint64(words)) * 8
		switch rng.Next() % 20 {
		case 0:
			b.Add(d, s1, s2)
		case 1:
			b.Sub(d, s1, s2)
		case 2:
			b.Mul(d, s1, s2)
		case 3:
			b.Div(d, s1, s2)
		case 4:
			b.Rem(d, s1, s2)
		case 5:
			b.And(d, s1, s2)
		case 6:
			b.Or(d, s1, s2)
		case 7:
			b.Xor(d, s1, s2)
		case 8:
			b.Shl(d, s1, s2)
		case 9:
			b.Shr(d, s1, s2)
		case 10:
			b.Sra(d, s1, s2)
		case 11:
			b.Min(d, s1, s2)
		case 12:
			b.Max(d, s1, s2)
		case 13:
			b.AddI(d, s1, int64(rng.Next()%997))
		case 14:
			b.FAdd(d, s1, s2)
		case 15:
			b.FMul(d, s1, s2)
		case 16:
			b.Ld64(d, rBase, off)
		case 17:
			b.St64(rBase, off, s1)
		case 18:
			b.AAdd64(d, rBase, off, s1)
		case 19:
			b.AMin64(d, rBase, off, s1)
		}
	}
	b.Halt()
	return b.Build()
}

// TestShadowMatchesMachine: for straight-line code, the shadow wrong-path
// engine computes exactly the machine's register results and observes the
// same memory values through its overlay, while never mutating the
// architectural image.
func TestShadowMatchesMachine(t *testing.T) {
	f := func(seed uint64) bool {
		rng := graph.NewRNG(seed)
		const words = 16
		l := program.NewLayout()
		scratch := l.AllocU64(words, nil)
		for i := 0; i < words; i++ {
			l.PutU64(scratch+uint64(i)*8, rng.Next()%4096)
		}
		p := genStraightLine(graph.NewRNG(seed+1), scratch, words)

		memM := append([]byte(nil), l.Image()...)
		memS := append([]byte(nil), l.Image()...)

		m := New(p, memM)
		if _, err := m.Run(0); err != nil {
			t.Logf("seed %d: machine: %v", seed, err)
			return false
		}

		ms := New(p, memS)
		s := ms.Shadow(0, false, 0)
		dir := func(int, isa.Inst, bool) bool { return false }
		for !s.Dead() {
			if _, ok := s.Step(dir); !ok {
				break
			}
		}
		// Architectural memory untouched by the shadow.
		for i := range memS {
			if memS[i] != l.Image()[i] {
				t.Logf("seed %d: shadow mutated memory", seed)
				return false
			}
		}
		// Register results identical.
		if s.regs != m.Regs {
			t.Logf("seed %d: registers diverge", seed)
			return false
		}
		// The shadow's overlay view of scratch equals the machine's
		// final memory.
		for i := 0; i < words; i++ {
			want, _ := m.load(scratch+uint64(i)*8, 8)
			got, ok := s.load(scratch+uint64(i)*8, 8)
			if !ok || got != want {
				t.Logf("seed %d: overlay word %d: %d vs %d", seed, i, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestShadowBranchesFollowDirector: whatever the director returns is the
// direction the shadow takes, regardless of the computed condition.
func TestShadowBranchesFollowDirector(t *testing.T) {
	b := program.NewBuilder("dir")
	r := b.Reg()
	b.Li(r, 5)
	b.Beq(r, isa.R0, "taken") // condition false
	b.Li(r, 111)
	b.Halt()
	b.Label("taken")
	b.Li(r, 222)
	b.Halt()
	p := b.Build()

	for _, force := range []bool{false, true} {
		m := New(p, make([]byte, 64))
		s := m.Shadow(0, false, 0)
		dir := func(int, isa.Inst, bool) bool { return force }
		for !s.Dead() {
			if _, ok := s.Step(dir); !ok {
				break
			}
		}
		want := uint64(111)
		if force {
			want = 222
		}
		if s.regs[1] != want {
			t.Fatalf("force=%v: r1 = %d, want %d", force, s.regs[1], want)
		}
	}
}
