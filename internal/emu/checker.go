package emu

import "repro/internal/isa"

// independenceChecker validates the software contract of paper §4.1 at
// runtime: instructions following a slice must be control and data
// independent of the instructions in the slice, up to the slice_fence.
// Concretely it flags:
//
//   - a read (inside a different slice, or outside any slice but before
//     the fence) of a memory location written by a slice,
//   - a read of a register last written inside a slice by any later
//     instruction outside that slice (register values produced in a slice
//     are dead at slice_end; cross-slice communication must go through
//     memory, §4.4),
//
// with exemptions for reduce-prefixed instructions and atomic adds, which
// are commutative by contract (§4.5).
//
// The checker is a test aid, enabled via Machine.CheckIndependence; the
// timing model relies on the contract rather than enforcing it, exactly as
// the proposed hardware does.
type independenceChecker struct {
	memOwner map[uint64]uint64   // byte address -> slice id that wrote it
	regOwner [isa.NumRegs]uint64 // register -> slice id of last writer (0 = none)
}

func (m *Machine) checker() *independenceChecker {
	if m.chk == nil {
		m.chk = &independenceChecker{memOwner: make(map[uint64]uint64)}
	}
	return m.chk
}

func (c *independenceChecker) write(m *Machine, addr uint64, size int) {
	for i := 0; i < size; i++ {
		if m.inSlice {
			c.memOwner[addr+uint64(i)] = m.sliceID
		} else {
			delete(c.memOwner, addr+uint64(i))
		}
	}
}

func (c *independenceChecker) read(m *Machine, addr uint64, size int) error {
	for i := 0; i < size; i++ {
		owner, ok := c.memOwner[addr+uint64(i)]
		if !ok {
			continue
		}
		if m.inSlice && owner == m.sliceID {
			continue // a slice may read its own writes
		}
		return m.fault("independence violation: read of %#x written by slice %d before fence",
			addr+uint64(i), owner)
	}
	return nil
}

func (c *independenceChecker) sliceEnded(uint64) {}

// fence clears memory ownership: after slice_fence, reads of slice-written
// memory are the sanctioned communication channel (§4.4).
func (c *independenceChecker) fence() {
	clear(c.memOwner)
}

// checkRegDiscipline enforces the register half of the contract for the
// instruction that just executed. inSlice is the slice state the
// instruction executed under.
func (m *Machine) checkRegDiscipline(in isa.Inst, inSlice bool) error {
	c := m.checker()
	if in.Reduce() {
		// Reduction accumulators legitimately live across slices and
		// are neither marked nor checked.
		return nil
	}
	check := func(r isa.Reg) error {
		if r == isa.R0 {
			return nil
		}
		owner := c.regOwner[r]
		if owner == 0 {
			return nil
		}
		if inSlice && owner == m.sliceID {
			return nil
		}
		return m.fault("independence violation: %v reads %v written inside slice %d", in, r, owner)
	}
	reads := []isa.Reg{in.Src1, in.Src2}
	if in.Op.IsStore() || in.Op.IsAtomic() {
		reads = append(reads, in.Val)
	}
	for _, r := range reads {
		if err := check(r); err != nil {
			return err
		}
	}
	if in.Op.HasDst() && in.Dst != isa.R0 {
		if inSlice {
			c.regOwner[in.Dst] = m.sliceID
		} else {
			c.regOwner[in.Dst] = 0
		}
	}
	return nil
}
