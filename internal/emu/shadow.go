package emu

import (
	"encoding/binary"
	"math"

	"repro/internal/isa"
)

// BranchDir decides the direction a wrong-path conditional branch takes.
// The core passes the branch predictor's decision here, so the wrong path
// follows exactly what the frontend would fetch. actual is the direction
// the shadow's own (wrong-path) register values produce, which a predictor
// model may ignore.
type BranchDir func(pc int, in isa.Inst, actual bool) bool

// ReadObserver receives the base-memory component of every in-range
// wrong-path load: which bytes of the access came from the forked memory
// image (mask bit i set = byte i read from base memory, clear = served by
// the store overlay) and their value with overlay bytes zeroed. The trace
// layer uses it to fingerprint the memory a recorded wrong-path segment
// consumed, so a later fork can validate the segment against its own
// memory image. Out-of-range loads are not reported.
type ReadObserver func(addr uint64, size int, mask uint8, base uint64)

// Shadow is the wrong-path engine: a fork of a Machine's architectural
// state that executes down a mispredicted path. Stores are buffered in an
// overlay and never reach real memory; loads read through the overlay.
// Out-of-range accesses are tolerated (flagged MemOOB) because wrong-path
// address computations can be arbitrary garbage.
type Shadow struct {
	prog    *isa.Program
	mem     []byte // read-only view of the machine's memory
	regs    [isa.NumRegs]uint64
	pc      int
	overlay map[uint64]byte // allocated lazily on the first buffered store
	onRead  ReadObserver
	dead    bool // ran off the code, halted, or otherwise cannot continue

	inSlice bool
	sliceID uint64
	steps   uint64
}

// Shadow forks the machine's register state into a wrong-path engine that
// begins fetching at startPC. inSlice/sliceID seed the slice context the
// wrong path starts in (the context of the mispredicted branch).
func (m *Machine) Shadow(startPC int, inSlice bool, sliceID uint64) *Shadow {
	return NewShadow(m.Prog, m.Mem, m.Regs, startPC, inSlice, sliceID)
}

// NewShadow builds a wrong-path engine from an explicit architectural
// snapshot (program, memory view, register file). It is the fork entry
// point for frontends that maintain architectural state outside a Machine,
// such as the trace replayer.
func NewShadow(prog *isa.Program, mem []byte, regs [isa.NumRegs]uint64,
	startPC int, inSlice bool, sliceID uint64) *Shadow {
	return &Shadow{
		prog:    prog,
		mem:     mem,
		regs:    regs,
		pc:      startPC,
		inSlice: inSlice,
		sliceID: sliceID,
	}
}

// SetReadObserver installs fn as the shadow's load observer (nil detaches).
func (s *Shadow) SetReadObserver(fn ReadObserver) { s.onRead = fn }

// Dead reports whether the shadow can no longer produce instructions.
func (s *Shadow) Dead() bool { return s.dead }

// NextPC returns the code index the shadow will fetch next.
func (s *Shadow) NextPC() int { return s.pc }

// InSlice reports the shadow's current slice context.
func (s *Shadow) InSlice() bool { return s.inSlice }

func (s *Shadow) get(r isa.Reg) uint64 {
	if r == isa.R0 {
		return 0
	}
	return s.regs[r]
}

func (s *Shadow) set(r isa.Reg, v uint64) {
	if r != isa.R0 {
		s.regs[r] = v
	}
}

func (s *Shadow) load(addr uint64, size int) (uint64, bool) {
	if addr+uint64(size) > uint64(len(s.mem)) || addr+uint64(size) < addr {
		return 0, false
	}
	var v uint64
	if size == 4 {
		v = uint64(binary.LittleEndian.Uint32(s.mem[addr:]))
	} else {
		v = binary.LittleEndian.Uint64(s.mem[addr:])
	}
	// Patch in overlay bytes from buffered wrong-path stores. mask tracks
	// which bytes still came from base memory.
	mask := uint8(uint(1)<<uint(size) - 1)
	if len(s.overlay) != 0 {
		for i := 0; i < size; i++ {
			if b, ok := s.overlay[addr+uint64(i)]; ok {
				shift := uint(8 * i)
				v = v&^(0xff<<shift) | uint64(b)<<shift
				mask &^= 1 << uint(i)
			}
		}
	}
	if s.onRead != nil {
		base := v
		for i := 0; i < size; i++ {
			if mask&(1<<uint(i)) == 0 {
				base &^= 0xff << uint(8*i)
			}
		}
		s.onRead(addr, size, mask, base)
	}
	return v, true
}

func (s *Shadow) store(addr uint64, size int, v uint64) bool {
	if addr+uint64(size) > uint64(len(s.mem)) || addr+uint64(size) < addr {
		return false
	}
	if s.overlay == nil {
		s.overlay = make(map[uint64]byte)
	}
	for i := 0; i < size; i++ {
		s.overlay[addr+uint64(i)] = byte(v >> uint(8*i))
	}
	return true
}

// Step executes one wrong-path instruction. Conditional branches follow
// the direction dir returns (the predicted direction). ok is false when
// the shadow is dead; the caller must stop fetching from it.
func (s *Shadow) Step(dir BranchDir) (DynInst, bool) {
	if s.dead || s.pc < 0 || s.pc >= len(s.prog.Code) {
		s.dead = true
		return DynInst{}, false
	}
	in := s.prog.Code[s.pc]
	d := DynInst{
		PC:      s.pc,
		Inst:    in,
		InSlice: s.inSlice,
		SliceID: s.sliceID,
		Wrong:   true,
	}
	next := s.pc + 1
	s1, s2 := s.get(in.Src1), s.get(in.Src2)

	switch in.Op {
	case isa.Nop:
	case isa.Add:
		s.set(in.Dst, s1+s2)
	case isa.Sub:
		s.set(in.Dst, s1-s2)
	case isa.Mul:
		s.set(in.Dst, s1*s2)
	case isa.Div:
		if s2 == 0 {
			s.set(in.Dst, 0)
		} else {
			s.set(in.Dst, uint64(int64(s1)/int64(s2)))
		}
	case isa.Rem:
		if s2 == 0 {
			s.set(in.Dst, s1)
		} else {
			s.set(in.Dst, uint64(int64(s1)%int64(s2)))
		}
	case isa.And:
		s.set(in.Dst, s1&s2)
	case isa.Or:
		s.set(in.Dst, s1|s2)
	case isa.Xor:
		s.set(in.Dst, s1^s2)
	case isa.Shl:
		s.set(in.Dst, s1<<(s2&63))
	case isa.Shr:
		s.set(in.Dst, s1>>(s2&63))
	case isa.Sra:
		s.set(in.Dst, uint64(int64(s1)>>(s2&63)))
	case isa.Min:
		s.set(in.Dst, uint64(min(int64(s1), int64(s2))))
	case isa.Max:
		s.set(in.Dst, uint64(max(int64(s1), int64(s2))))
	case isa.AddI:
		s.set(in.Dst, s1+uint64(in.Imm))
	case isa.AndI:
		s.set(in.Dst, s1&uint64(in.Imm))
	case isa.OrI:
		s.set(in.Dst, s1|uint64(in.Imm))
	case isa.XorI:
		s.set(in.Dst, s1^uint64(in.Imm))
	case isa.ShlI:
		s.set(in.Dst, s1<<(uint64(in.Imm)&63))
	case isa.ShrI:
		s.set(in.Dst, s1>>(uint64(in.Imm)&63))
	case isa.MulI:
		s.set(in.Dst, s1*uint64(in.Imm))
	case isa.Li:
		s.set(in.Dst, uint64(in.Imm))
	case isa.Mov:
		s.set(in.Dst, s1)
	case isa.FAdd:
		s.set(in.Dst, fop(s1, s2, '+'))
	case isa.FSub:
		s.set(in.Dst, fop(s1, s2, '-'))
	case isa.FMul:
		s.set(in.Dst, fop(s1, s2, '*'))
	case isa.FDiv:
		s.set(in.Dst, fop(s1, s2, '/'))
	case isa.FAbs:
		s.set(in.Dst, math.Float64bits(math.Abs(math.Float64frombits(s1))))
	case isa.FMax:
		s.set(in.Dst, math.Float64bits(math.Max(math.Float64frombits(s1), math.Float64frombits(s2))))
	case isa.CvtIF:
		s.set(in.Dst, math.Float64bits(float64(int64(s1))))
	case isa.CvtFI:
		s.set(in.Dst, uint64(int64(math.Float64frombits(s1))))

	case isa.Ld64, isa.Ld32, isa.LdX64, isa.LdX32:
		d.Addr = effAddr(in, s1, s2)
		v, ok := s.load(d.Addr, in.Op.MemSize())
		if !ok {
			d.MemOOB = true
			v = 0
		}
		s.set(in.Dst, v)
	case isa.St64, isa.St32, isa.StX64, isa.StX32:
		d.Addr = effAddr(in, s1, s2)
		if !s.store(d.Addr, in.Op.MemSize(), s.get(in.Val)) {
			d.MemOOB = true
		}
	case isa.AAdd64, isa.AAdd32, isa.AAddX64, isa.AAddX32,
		isa.AMin64, isa.AMin32, isa.AMinX64, isa.AMinX32:
		d.Addr = effAddr(in, s1, s2)
		size := in.Op.MemSize()
		old, ok := s.load(d.Addr, size)
		if !ok {
			d.MemOOB = true
			old = 0
		} else {
			nv := old + s.get(in.Val)
			switch in.Op {
			case isa.AMin64, isa.AMin32, isa.AMinX64, isa.AMinX32:
				nv = min(old, s.get(in.Val))
			}
			s.store(d.Addr, size, nv)
		}
		s.set(in.Dst, old)

	case isa.Beq:
		d.Taken = s1 == s2
	case isa.Bne:
		d.Taken = s1 != s2
	case isa.Blt:
		d.Taken = int64(s1) < int64(s2)
	case isa.Bge:
		d.Taken = int64(s1) >= int64(s2)
	case isa.Bltu:
		d.Taken = s1 < s2
	case isa.Bgeu:
		d.Taken = s1 >= s2
	case isa.Bflt:
		d.Taken = math.Float64frombits(s1) < math.Float64frombits(s2)
	case isa.Bfge:
		d.Taken = math.Float64frombits(s1) >= math.Float64frombits(s2)
	case isa.Jmp:
		next = int(in.Imm)

	case isa.SliceStart:
		if !s.inSlice {
			s.inSlice = true
			s.sliceID = ^uint64(0) // wrong-path slices have no real id
		}
		d.SliceID = s.sliceID
	case isa.SliceEnd:
		s.inSlice = false
	case isa.SliceFence:
		// Nothing to track on a wrong path.
	case isa.Barrier:
		// A wrong path reaching a barrier stops: the frontend would
		// stall here anyway.
		s.dead = true
	case isa.Halt:
		s.dead = true
	}

	if in.Op.IsBranch() {
		d.Taken = dir(s.pc, in, d.Taken)
		if d.Taken {
			next = int(in.Imm)
		} else {
			next = s.pc + 1
		}
	}
	d.NextPC = next
	s.pc = next
	s.steps++
	if s.pc < 0 || s.pc >= len(s.prog.Code) {
		s.dead = true
	}
	return d, true
}
