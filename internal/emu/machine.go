package emu

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/isa"
)

// Machine is the architectural state of one hardware thread. Step executes
// exactly one instruction in program order. Memory may be shared between
// machines (multicore workloads); the simulator interleaves Step calls
// deterministically and separates racing phases with barriers.
type Machine struct {
	Prog *isa.Program
	Regs [isa.NumRegs]uint64
	PC   int
	Mem  []byte
	// Halted is set once a Halt instruction executes.
	Halted bool

	seq     uint64
	inSlice bool
	sliceID uint64 // id of the current (or most recent) slice; 1-based

	// CheckIndependence enables the dynamic slice-discipline checker,
	// which validates the software contract of §4.1: no instruction
	// after a slice may read data the slice wrote (registers or memory)
	// before the next slice_fence. Intended for tests; adds overhead.
	CheckIndependence bool
	chk               *independenceChecker
}

// New returns a machine ready to run prog against the given memory image.
// The memory slice is used directly (not copied) so that multiple machines
// can share it.
func New(prog *isa.Program, mem []byte) *Machine {
	return &Machine{Prog: prog, Mem: mem}
}

// Seq returns the number of instructions executed so far.
func (m *Machine) Seq() uint64 { return m.seq }

// InSlice reports whether the next instruction to execute lies inside a
// slice.
func (m *Machine) InSlice() bool { return m.inSlice }

func (m *Machine) fault(format string, args ...any) error {
	return fmt.Errorf("%s: pc %d (#%d): %s", m.Prog.Name, m.PC, m.seq,
		fmt.Sprintf(format, args...))
}

func (m *Machine) get(r isa.Reg) uint64 {
	if r == isa.R0 {
		return 0
	}
	return m.Regs[r]
}

func (m *Machine) set(r isa.Reg, v uint64) {
	if r != isa.R0 {
		m.Regs[r] = v
	}
}

func (m *Machine) load(addr uint64, size int) (uint64, error) {
	if addr+uint64(size) > uint64(len(m.Mem)) {
		return 0, m.fault("load of %d bytes at %#x outside memory (%d bytes)",
			size, addr, len(m.Mem))
	}
	if size == 4 {
		return uint64(binary.LittleEndian.Uint32(m.Mem[addr:])), nil
	}
	return binary.LittleEndian.Uint64(m.Mem[addr:]), nil
}

func (m *Machine) store(addr uint64, size int, v uint64) error {
	if addr+uint64(size) > uint64(len(m.Mem)) {
		return m.fault("store of %d bytes at %#x outside memory (%d bytes)",
			size, addr, len(m.Mem))
	}
	if size == 4 {
		binary.LittleEndian.PutUint32(m.Mem[addr:], uint32(v))
	} else {
		binary.LittleEndian.PutUint64(m.Mem[addr:], v)
	}
	return nil
}

// effAddr computes the effective address of a memory instruction.
func effAddr(in isa.Inst, src1, src2 uint64) uint64 {
	if in.Op.Indexed() {
		return src1 + (src2 << uint(in.Imm))
	}
	return src1 + uint64(in.Imm)
}

// Step executes one instruction and returns its dynamic record.
// Calling Step on a halted machine is an error.
func (m *Machine) Step() (DynInst, error) {
	if m.Halted {
		return DynInst{}, fmt.Errorf("%s: step after halt", m.Prog.Name)
	}
	if m.PC < 0 || m.PC >= len(m.Prog.Code) {
		return DynInst{}, m.fault("pc out of range")
	}
	in := m.Prog.Code[m.PC]
	d := DynInst{
		Seq:     m.seq,
		PC:      m.PC,
		Inst:    in,
		InSlice: m.inSlice,
		SliceID: m.sliceID,
	}
	next := m.PC + 1

	s1, s2 := m.get(in.Src1), m.get(in.Src2)
	switch in.Op {
	case isa.Nop:
	case isa.Add:
		m.set(in.Dst, s1+s2)
	case isa.Sub:
		m.set(in.Dst, s1-s2)
	case isa.Mul:
		m.set(in.Dst, s1*s2)
	case isa.Div:
		if s2 == 0 {
			m.set(in.Dst, 0)
		} else {
			m.set(in.Dst, uint64(int64(s1)/int64(s2)))
		}
	case isa.Rem:
		if s2 == 0 {
			m.set(in.Dst, s1)
		} else {
			m.set(in.Dst, uint64(int64(s1)%int64(s2)))
		}
	case isa.And:
		m.set(in.Dst, s1&s2)
	case isa.Or:
		m.set(in.Dst, s1|s2)
	case isa.Xor:
		m.set(in.Dst, s1^s2)
	case isa.Shl:
		m.set(in.Dst, s1<<(s2&63))
	case isa.Shr:
		m.set(in.Dst, s1>>(s2&63))
	case isa.Sra:
		m.set(in.Dst, uint64(int64(s1)>>(s2&63)))
	case isa.Min:
		m.set(in.Dst, uint64(min(int64(s1), int64(s2))))
	case isa.Max:
		m.set(in.Dst, uint64(max(int64(s1), int64(s2))))

	case isa.AddI:
		m.set(in.Dst, s1+uint64(in.Imm))
	case isa.AndI:
		m.set(in.Dst, s1&uint64(in.Imm))
	case isa.OrI:
		m.set(in.Dst, s1|uint64(in.Imm))
	case isa.XorI:
		m.set(in.Dst, s1^uint64(in.Imm))
	case isa.ShlI:
		m.set(in.Dst, s1<<(uint64(in.Imm)&63))
	case isa.ShrI:
		m.set(in.Dst, s1>>(uint64(in.Imm)&63))
	case isa.MulI:
		m.set(in.Dst, s1*uint64(in.Imm))

	case isa.Li:
		m.set(in.Dst, uint64(in.Imm))
	case isa.Mov:
		m.set(in.Dst, s1)

	case isa.FAdd:
		m.set(in.Dst, fop(s1, s2, '+'))
	case isa.FSub:
		m.set(in.Dst, fop(s1, s2, '-'))
	case isa.FMul:
		m.set(in.Dst, fop(s1, s2, '*'))
	case isa.FDiv:
		m.set(in.Dst, fop(s1, s2, '/'))
	case isa.FAbs:
		m.set(in.Dst, math.Float64bits(math.Abs(math.Float64frombits(s1))))
	case isa.FMax:
		m.set(in.Dst, math.Float64bits(math.Max(math.Float64frombits(s1), math.Float64frombits(s2))))
	case isa.CvtIF:
		m.set(in.Dst, math.Float64bits(float64(int64(s1))))
	case isa.CvtFI:
		m.set(in.Dst, uint64(int64(math.Float64frombits(s1))))

	case isa.Ld64, isa.Ld32, isa.LdX64, isa.LdX32:
		d.Addr = effAddr(in, s1, s2)
		v, err := m.load(d.Addr, in.Op.MemSize())
		if err != nil {
			return d, err
		}
		m.set(in.Dst, v)
		if m.CheckIndependence {
			if err := m.checker().read(m, d.Addr, in.Op.MemSize()); err != nil {
				return d, err
			}
		}
	case isa.St64, isa.St32, isa.StX64, isa.StX32:
		d.Addr = effAddr(in, s1, s2)
		if err := m.store(d.Addr, in.Op.MemSize(), m.get(in.Val)); err != nil {
			return d, err
		}
		if m.CheckIndependence {
			m.checker().write(m, d.Addr, in.Op.MemSize())
		}
	case isa.AAdd64, isa.AAdd32, isa.AAddX64, isa.AAddX32,
		isa.AMin64, isa.AMin32, isa.AMinX64, isa.AMinX32:
		d.Addr = effAddr(in, s1, s2)
		size := in.Op.MemSize()
		old, err := m.load(d.Addr, size)
		if err != nil {
			return d, err
		}
		nv := old + m.get(in.Val)
		switch in.Op {
		case isa.AMin64, isa.AMin32, isa.AMinX64, isa.AMinX32:
			nv = min(old, m.get(in.Val))
		}
		if err := m.store(d.Addr, size, nv); err != nil {
			return d, err
		}
		m.set(in.Dst, old)
		// Atomics are commutative read-modify-writes; the checker
		// treats them like reductions and exempts them.

	case isa.Beq:
		d.Taken = s1 == s2
	case isa.Bne:
		d.Taken = s1 != s2
	case isa.Blt:
		d.Taken = int64(s1) < int64(s2)
	case isa.Bge:
		d.Taken = int64(s1) >= int64(s2)
	case isa.Bltu:
		d.Taken = s1 < s2
	case isa.Bgeu:
		d.Taken = s1 >= s2
	case isa.Bflt:
		d.Taken = math.Float64frombits(s1) < math.Float64frombits(s2)
	case isa.Bfge:
		d.Taken = math.Float64frombits(s1) >= math.Float64frombits(s2)
	case isa.Jmp:
		next = int(in.Imm)

	case isa.SliceStart:
		if m.inSlice {
			return d, m.fault("dynamic nested slice_start")
		}
		m.inSlice = true
		m.sliceID++
		d.SliceID = m.sliceID
	case isa.SliceEnd:
		if !m.inSlice {
			return d, m.fault("dynamic slice_end outside slice")
		}
		m.inSlice = false
		if m.CheckIndependence {
			m.checker().sliceEnded(m.sliceID)
		}
	case isa.SliceFence:
		if m.inSlice {
			return d, m.fault("dynamic slice_fence inside slice")
		}
		if m.CheckIndependence {
			m.checker().fence()
		}
	case isa.Barrier:
		// Synchronization is coordinated by the simulator driver.
	case isa.Halt:
		m.Halted = true
	default:
		return d, m.fault("unimplemented opcode %v", in.Op)
	}

	if in.Op.IsBranch() && d.Taken {
		next = int(in.Imm)
	}
	d.NextPC = next

	if m.CheckIndependence {
		if err := m.checkRegDiscipline(in, d.InSlice); err != nil {
			return d, err
		}
	}

	m.PC = next
	m.seq++
	return d, nil
}

// RunToSliceEnd executes instructions until the current slice's slice_end
// has executed (inclusive), appending every dynamic instruction to buf.
// It is used by the selective-flush model: when an in-slice branch
// mispredicts, the correct-path remainder of the slice is executed now
// (keeping functional execution in program order) but delivered to the
// pipeline later, when the branch resolves (paper Fig. 2(d)).
// The machine must currently be inside a slice.
func (m *Machine) RunToSliceEnd(buf []DynInst) ([]DynInst, error) {
	if !m.inSlice {
		return buf, m.fault("RunToSliceEnd outside slice")
	}
	id := m.sliceID
	for {
		d, err := m.Step()
		if err != nil {
			return buf, err
		}
		buf = append(buf, d)
		if d.Inst.Op == isa.SliceEnd && d.SliceID == id {
			return buf, nil
		}
		if m.Halted {
			return buf, m.fault("halt inside slice %d", id)
		}
	}
}

// Run executes until halt and returns the instruction count. It is the
// plain functional-simulation entry point (no timing), used by tests and
// by workload validation.
func (m *Machine) Run(maxInsts uint64) (uint64, error) {
	start := m.seq
	for !m.Halted {
		if _, err := m.Step(); err != nil {
			return m.seq - start, err
		}
		if maxInsts > 0 && m.seq-start >= maxInsts {
			return m.seq - start, m.fault("instruction budget %d exhausted", maxInsts)
		}
	}
	return m.seq - start, nil
}

func fop(a, b uint64, op byte) uint64 {
	x, y := math.Float64frombits(a), math.Float64frombits(b)
	var r float64
	switch op {
	case '+':
		r = x + y
	case '-':
		r = x - y
	case '*':
		r = x * y
	case '/':
		r = x / y
	}
	return math.Float64bits(r)
}
