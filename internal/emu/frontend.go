package emu

// Frontend is the correct-path instruction source a core's thread fetches
// from: the architectural stream in program order plus the two extra
// operations the selective-flush model needs (running ahead to a slice
// boundary, and forking a wrong-path engine from the current state).
//
// Two implementations exist: the live functional emulator (*Machine, via
// AsFrontend) and the trace replayer (internal/trace.Replay), which feeds
// the identical stream from a captured trace without re-executing the
// emulator. The timing model is written against this interface only, so
// the two are interchangeable and results are byte-identical.
type Frontend interface {
	// Step produces the next correct-path dynamic instruction.
	Step() (DynInst, error)
	// RunToSliceEnd advances through the current slice's remaining
	// instructions (inclusive of its slice_end), appending them to buf.
	RunToSliceEnd(buf []DynInst) ([]DynInst, error)
	// Fork starts a wrong-path engine at startPC from the current
	// architectural register state; inSlice/sliceID seed its slice
	// context (that of the mispredicted branch).
	Fork(startPC int, inSlice bool, sliceID uint64) WrongPath
	// Halted reports whether the stream has ended (Halt executed).
	Halted() bool
	// NextPC is the code index of the next instruction Step would
	// produce.
	NextPC() int
}

// WrongPath is the wrong-path engine behind a Frontend fork: it executes
// down a mispredicted direction with buffered stores (see Shadow, its
// canonical implementation).
type WrongPath interface {
	Step(dir BranchDir) (DynInst, bool)
	Dead() bool
	NextPC() int
	InSlice() bool
}

// machineFrontend adapts *Machine to Frontend. Machine exposes Halted and
// PC as fields (the emulator's tests and tools poke them directly), so the
// method set lives on this wrapper instead.
type machineFrontend struct{ m *Machine }

// AsFrontend wraps a live machine as a core frontend.
func AsFrontend(m *Machine) Frontend { return machineFrontend{m} }

func (f machineFrontend) Step() (DynInst, error) { return f.m.Step() }

func (f machineFrontend) RunToSliceEnd(buf []DynInst) ([]DynInst, error) {
	return f.m.RunToSliceEnd(buf)
}

func (f machineFrontend) Fork(startPC int, inSlice bool, sliceID uint64) WrongPath {
	return f.m.Shadow(startPC, inSlice, sliceID)
}

func (f machineFrontend) Halted() bool { return f.m.Halted }

func (f machineFrontend) NextPC() int { return f.m.PC }
