package graph

import (
	"testing"
	"testing/quick"
)

func TestRMATValid(t *testing.T) {
	for _, scale := range []int{4, 8, 10} {
		g := RMAT(scale, 8, 1, false)
		if g.N != 1<<scale {
			t.Fatalf("N = %d", g.N)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("scale %d: %v", scale, err)
		}
	}
}

func TestRMATSymmetric(t *testing.T) {
	g := RMAT(8, 8, 3, false)
	adj := map[[2]uint32]bool{}
	for v := 0; v < g.N; v++ {
		for _, w := range g.Neigh[g.Offsets[v]:g.Offsets[v+1]] {
			adj[[2]uint32{uint32(v), w}] = true
		}
	}
	for e := range adj {
		if !adj[[2]uint32{e[1], e[0]}] {
			t.Fatalf("edge %v has no reverse", e)
		}
	}
}

func TestRMATNoSelfLoopsNoDuplicates(t *testing.T) {
	g := RMAT(8, 8, 5, false)
	for v := 0; v < g.N; v++ {
		var prev int64 = -1
		for _, w := range g.Neigh[g.Offsets[v]:g.Offsets[v+1]] {
			if int(w) == v {
				t.Fatalf("self loop at %d", v)
			}
			if int64(w) <= prev {
				t.Fatalf("duplicate/unsorted neighbor at %d", v)
			}
			prev = int64(w)
		}
	}
}

func TestRMATDeterministic(t *testing.T) {
	a := RMAT(8, 8, 42, true)
	b := RMAT(8, 8, 42, true)
	if len(a.Neigh) != len(b.Neigh) {
		t.Fatal("nondeterministic edge count")
	}
	for i := range a.Neigh {
		if a.Neigh[i] != b.Neigh[i] || a.Weights[i] != b.Weights[i] {
			t.Fatal("nondeterministic graph")
		}
	}
}

func TestRMATSkewed(t *testing.T) {
	// RMAT graphs are power-law-ish: the max degree should far exceed
	// the average.
	g := RMAT(10, 8, 1, false)
	maxDeg, sum := 0, 0
	for v := 0; v < g.N; v++ {
		d := g.Degree(v)
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := sum / g.N
	if maxDeg < 4*avg {
		t.Fatalf("degree distribution not skewed: max %d avg %d", maxDeg, avg)
	}
}

func TestWeightsSymmetric(t *testing.T) {
	g := RMAT(7, 8, 9, true)
	w := func(a, b uint32) uint32 {
		for i := g.Offsets[a]; i < g.Offsets[a+1]; i++ {
			if g.Neigh[i] == b {
				return g.Weights[i]
			}
		}
		return 0
	}
	for v := 0; v < g.N; v++ {
		for i := g.Offsets[v]; i < g.Offsets[v+1]; i++ {
			u := g.Neigh[i]
			if g.Weights[i] != w(u, uint32(v)) {
				t.Fatalf("asymmetric weight (%d,%d)", v, u)
			}
			if g.Weights[i] == 0 || g.Weights[i] > 255 {
				t.Fatalf("weight out of range: %d", g.Weights[i])
			}
		}
	}
}

func TestUniformValid(t *testing.T) {
	g := Uniform(8, 8, 1, true)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestRNGQuick: splitmix64 streams from distinct seeds differ, and the
// same seed reproduces.
func TestRNGQuick(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := NewRNG(seed), NewRNG(seed)
		for i := 0; i < 10; i++ {
			if a.Next() != b.Next() {
				return false
			}
		}
		c := NewRNG(seed + 1)
		same := 0
		for i := 0; i < 10; i++ {
			if NewRNG(seed).Next() == c.Next() {
				same++
			}
		}
		return same < 10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFootprint(t *testing.T) {
	g := RMAT(8, 8, 1, false)
	fp := g.FootprintBytes(2, 4)
	if fp < 4*(g.N+1)+4*len(g.Neigh) {
		t.Fatal("footprint too small")
	}
}
