// Package graph provides the synthetic RMAT graph generator and the CSR
// representation the GAP-style kernels run on (paper §5.1: synthetically
// generated RMAT graphs, Chakrabarti et al. 2004).
package graph

import (
	"fmt"
	"sort"
)

// CSR is a graph in compressed sparse row form. Offsets has N+1 entries;
// the neighbors of vertex v are Neigh[Offsets[v]:Offsets[v+1]], sorted
// ascending. Weights, when present, parallels Neigh.
type CSR struct {
	N       int
	Offsets []uint32
	Neigh   []uint32
	Weights []uint32
}

// Degree returns the out-degree of v.
func (g *CSR) Degree(v int) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// NumEdges returns the number of directed edges stored.
func (g *CSR) NumEdges() int { return len(g.Neigh) }

// Validate checks CSR structural invariants (test helper).
func (g *CSR) Validate() error {
	if len(g.Offsets) != g.N+1 {
		return fmt.Errorf("offsets length %d, want %d", len(g.Offsets), g.N+1)
	}
	if g.Offsets[0] != 0 {
		return fmt.Errorf("offsets[0] = %d, want 0", g.Offsets[0])
	}
	for v := 0; v < g.N; v++ {
		if g.Offsets[v] > g.Offsets[v+1] {
			return fmt.Errorf("offsets not monotone at %d", v)
		}
		prev := int64(-1)
		for i := g.Offsets[v]; i < g.Offsets[v+1]; i++ {
			n := g.Neigh[i]
			if int(n) >= g.N {
				return fmt.Errorf("vertex %d: neighbor %d out of range", v, n)
			}
			if int64(n) <= prev {
				return fmt.Errorf("vertex %d: neighbors not strictly ascending", v)
			}
			prev = int64(n)
		}
	}
	if int(g.Offsets[g.N]) != len(g.Neigh) {
		return fmt.Errorf("offsets[N] = %d, want %d", g.Offsets[g.N], len(g.Neigh))
	}
	if g.Weights != nil && len(g.Weights) != len(g.Neigh) {
		return fmt.Errorf("weights length %d, want %d", len(g.Weights), len(g.Neigh))
	}
	return nil
}

// RNG is splitmix64: tiny, fast, deterministic across platforms.
type RNG struct{ state uint64 }

// NewRNG seeds a deterministic generator.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Next returns the next 64 random bits.
func (r *RNG) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float returns a float64 in [0,1).
func (r *RNG) Float() float64 { return float64(r.Next()>>11) / (1 << 53) }

// Intn returns a value in [0,n).
func (r *RNG) Intn(n int) int { return int(r.Next() % uint64(n)) }

// RMAT parameters from the GAP/Graph500 convention.
const (
	rmatA = 0.57
	rmatB = 0.19
	rmatC = 0.19
)

// RMAT generates an undirected RMAT graph with 2^scale vertices and about
// degree*2^scale undirected edges (each stored in both directions),
// deduplicated, self-loops removed, neighbors sorted. When weighted is
// true, edge weights in [1,255] are assigned symmetrically.
func RMAT(scale, degree int, seed uint64, weighted bool) *CSR {
	n := 1 << scale
	m := n * degree
	rng := NewRNG(seed)

	type edge struct{ u, v uint32 }
	edges := make([]edge, 0, 2*m)
	for i := 0; i < m; i++ {
		var u, v int
		for bit := scale - 1; bit >= 0; bit-- {
			p := rng.Float()
			switch {
			case p < rmatA:
				// top-left: nothing set
			case p < rmatA+rmatB:
				v |= 1 << bit
			case p < rmatA+rmatB+rmatC:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v {
			continue
		}
		edges = append(edges, edge{uint32(u), uint32(v)}, edge{uint32(v), uint32(u)})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})

	g := &CSR{N: n, Offsets: make([]uint32, n+1)}
	g.Neigh = make([]uint32, 0, len(edges))
	var last edge
	havePrev := false
	for _, e := range edges {
		if havePrev && e == last {
			continue
		}
		g.Neigh = append(g.Neigh, e.v)
		g.Offsets[e.u+1]++
		last, havePrev = e, true
	}
	for v := 0; v < n; v++ {
		g.Offsets[v+1] += g.Offsets[v]
	}

	if weighted {
		g.Weights = make([]uint32, len(g.Neigh))
		for v := 0; v < n; v++ {
			for i := g.Offsets[v]; i < g.Offsets[v+1]; i++ {
				u := g.Neigh[i]
				// Symmetric weights: derive from the unordered
				// vertex pair so (v,u) and (u,v) match.
				a, b := uint64(v), uint64(u)
				if a > b {
					a, b = b, a
				}
				h := NewRNG(seed ^ a<<32 ^ b).Next()
				g.Weights[i] = uint32(h%255) + 1
			}
		}
	}
	return g
}

// Uniform generates an Erdős–Rényi-style random graph with the same
// interface as RMAT (used in tests and examples for contrast).
func Uniform(scale, degree int, seed uint64, weighted bool) *CSR {
	n := 1 << scale
	rng := NewRNG(seed)
	type edge struct{ u, v uint32 }
	edges := make([]edge, 0, 2*n*degree)
	for i := 0; i < n*degree; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		edges = append(edges, edge{uint32(u), uint32(v)}, edge{uint32(v), uint32(u)})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})
	g := &CSR{N: n, Offsets: make([]uint32, n+1)}
	var last edge
	havePrev := false
	for _, e := range edges {
		if havePrev && e == last {
			continue
		}
		g.Neigh = append(g.Neigh, e.v)
		g.Offsets[e.u+1]++
		last, havePrev = e, true
	}
	for v := 0; v < n; v++ {
		g.Offsets[v+1] += g.Offsets[v]
	}
	if weighted {
		g.Weights = make([]uint32, len(g.Neigh))
		for i := range g.Weights {
			g.Weights[i] = uint32(NewRNG(seed^uint64(i)).Next()%255) + 1
		}
	}
	return g
}

// FootprintBytes estimates the memory image size of the CSR arrays plus
// per-vertex property arrays of propBytes bytes each.
func (g *CSR) FootprintBytes(propArrays, propBytes int) int {
	return 4*(g.N+1) + 4*len(g.Neigh) + propArrays*propBytes*g.N
}
