package cache

// Memory is the DRAM backend: fixed access latency plus a bandwidth token
// bucket shared by everything that reaches it. When multiple cores share
// one Memory, bandwidth contention between them is modeled by the bucket.
type Memory struct {
	// Latency is the DRAM access latency in core cycles.
	Latency int
	// CyclesPerLine is the bandwidth cost of transferring one cache
	// line, in cycles (line bytes / bytes-per-cycle).
	CyclesPerLine float64

	nextFree float64
	accesses uint64
}

// NewMemory returns a DRAM model. bytesPerCycle is the sustained
// bandwidth; lineBytes is the transfer granule.
func NewMemory(latency int, bytesPerCycle float64, lineBytes int) *Memory {
	if bytesPerCycle <= 0 {
		bytesPerCycle = 64
	}
	return &Memory{
		Latency:       latency,
		CyclesPerLine: float64(lineBytes) / bytesPerCycle,
	}
}

// Name implements Level.
func (m *Memory) Name() string { return "mem" }

// Accesses returns the number of line transfers served.
func (m *Memory) Accesses() uint64 { return m.accesses }

// Access implements Level: the request waits for a bandwidth slot, then
// pays the DRAM latency.
func (m *Memory) Access(_ uint64, now int64, _, _ bool) int64 {
	m.accesses++
	start := float64(now)
	if m.nextFree > start {
		start = m.nextFree
	}
	m.nextFree = start + m.CyclesPerLine
	return int64(start) + int64(m.Latency)
}
