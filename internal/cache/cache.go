// Package cache models a multi-level cache hierarchy: set-associative
// write-back caches with LRU replacement, MSHR-limited outstanding misses,
// optional next-line and stride prefetchers, and a DRAM backend with fixed
// latency plus a shared-bandwidth token bucket.
//
// Timing style: an access is resolved immediately into the cycle at which
// its data is available; in-flight fills are modeled by a per-line readyAt
// timestamp, so overlapping accesses to the same line see the remaining
// fill latency rather than a fresh miss. This latency-composition style is
// the standard approach for Sniper-class simulators.
package cache

import "fmt"

// Level is anything an upper cache can fetch lines from.
type Level interface {
	// Access requests the line containing addr at time now. write marks
	// stores (for dirty state); prefetch marks prefetcher-initiated
	// fills (accounted separately, and not propagated recursively as
	// demand). It returns the cycle at which the line is available.
	Access(addr uint64, now int64, write, prefetch bool) int64
	// Name identifies the level in stats output.
	Name() string
}

// Config describes one cache level.
type Config struct {
	Name       string
	SizeBytes  int
	Ways       int
	LineBytes  int
	HitLatency int // cycles from access to data for a hit
	MSHRs      int // max outstanding misses; 0 = unlimited
	// ExtraLatency is added to every access that reaches this level
	// (NUCA/mesh hop latency for a shared LLC).
	ExtraLatency int
	// NextLinePrefetch fetches line+1 on every demand miss.
	NextLinePrefetch bool
	// StridePrefetch enables a PC-indexed stride prefetcher trained on
	// demand accesses to this level.
	StridePrefetch bool
	// StrideDegree is how many strides ahead the stride prefetcher
	// runs (default 2).
	StrideDegree int
}

// Stats counts cache events.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Prefetches uint64
	Writebacks uint64
}

// MissRate returns misses/accesses, or 0 for an idle cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	valid   bool
	tag     uint64
	dirty   bool
	lru     uint64
	readyAt int64
}

// Cache is one set-associative cache level.
type Cache struct {
	cfg     Config
	sets    []([]line)
	numSets uint64
	shift   uint
	next    Level
	clock   uint64
	stats   Stats

	// MSHR occupancy: completion times of outstanding misses, as a binary
	// min-heap — mshrDelay only ever consumes the earliest completion, so
	// expired entries are dropped lazily from the top instead of filtering
	// the whole slice on every miss.
	mshr minHeap

	// Stride prefetcher state.
	stride map[uint64]*strideEntry
}

type strideEntry struct {
	lastAddr uint64
	stride   int64
	conf     int8
}

// New returns a cache level backed by next.
func New(cfg Config, next Level) *Cache {
	if cfg.LineBytes == 0 {
		cfg.LineBytes = 64
	}
	if cfg.Ways <= 0 {
		cfg.Ways = 8
	}
	if cfg.StrideDegree == 0 {
		cfg.StrideDegree = 2
	}
	numSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	if numSets < 1 {
		numSets = 1
	}
	// Force power-of-two sets for cheap indexing.
	for numSets&(numSets-1) != 0 {
		numSets--
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	c := &Cache{
		cfg:     cfg,
		sets:    make([][]line, numSets),
		numSets: uint64(numSets),
		shift:   shift,
		next:    next,
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	if cfg.StridePrefetch {
		c.stride = make(map[uint64]*strideEntry)
	}
	return c
}

// Name implements Level.
func (c *Cache) Name() string { return c.cfg.Name }

// Stats returns a copy of the level's counters.
func (c *Cache) Stats() Stats { return c.stats }

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) setIndex(addr uint64) uint64 { return (addr >> c.shift) % c.numSets }
func (c *Cache) tagOf(addr uint64) uint64    { return addr >> c.shift }

// lookup returns the way holding addr's line, or -1.
func (c *Cache) lookup(set []line, tag uint64) int {
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return i
		}
	}
	return -1
}

// mshrDelay models MSHR occupancy: if all MSHRs hold outstanding misses at
// time now, the new miss waits for the earliest to complete.
func (c *Cache) mshrDelay(now int64) int64 {
	if c.cfg.MSHRs <= 0 {
		return now
	}
	// Drop completed entries.
	for len(c.mshr) > 0 && c.mshr[0] <= now {
		c.mshr.pop()
	}
	if len(c.mshr) < c.cfg.MSHRs {
		return now
	}
	// Full: the new miss takes over the earliest-completing entry's slot.
	return c.mshr.pop()
}

// minHeap is a binary min-heap of completion times.
type minHeap []int64

func (h *minHeap) push(v int64) {
	*h = append(*h, v)
	s := *h
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2
		if s[i] <= s[j] {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
}

func (h *minHeap) pop() int64 {
	s := *h
	n := len(s) - 1
	v := s[0]
	s[0] = s[n]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if k := j + 1; k < n && s[k] < s[j] {
			j = k
		}
		if s[i] <= s[j] {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	*h = s[:n]
	return v
}

func (c *Cache) trackMiss(doneAt int64) {
	if c.cfg.MSHRs > 0 {
		c.mshr.push(doneAt)
	}
}

// Access implements Level.
func (c *Cache) Access(addr uint64, now int64, write, prefetch bool) int64 {
	now += int64(c.cfg.ExtraLatency)
	tag := c.tagOf(addr)
	set := c.sets[c.setIndex(addr)]
	c.clock++
	if !prefetch {
		c.stats.Accesses++
	}

	if w := c.lookup(set, tag); w >= 0 {
		ln := &set[w]
		ln.lru = c.clock
		if write {
			ln.dirty = true
		}
		start := now
		if ln.readyAt > start {
			start = ln.readyAt // fill still in flight
		}
		if !prefetch && c.cfg.StridePrefetch {
			// Training happens at the caller via AccessPC; plain
			// Access does not train.
			_ = start
		}
		return start + int64(c.cfg.HitLatency)
	}

	// Miss.
	if !prefetch {
		c.stats.Misses++
	} else {
		c.stats.Prefetches++
	}
	start := c.mshrDelay(now)
	fillDone := start + int64(c.cfg.HitLatency)
	if c.next != nil {
		fillDone = c.next.Access(addr, start+int64(c.cfg.HitLatency), false, prefetch)
	}
	c.install(addr, fillDone, write)
	c.trackMiss(fillDone)

	if c.cfg.NextLinePrefetch && !prefetch {
		c.Access(addr+uint64(c.cfg.LineBytes), now, false, true)
	}
	return fillDone
}

// install places addr's line into its set, evicting LRU.
func (c *Cache) install(addr uint64, readyAt int64, dirty bool) {
	tag := c.tagOf(addr)
	set := c.sets[c.setIndex(addr)]
	if w := c.lookup(set, tag); w >= 0 {
		// Raced install (e.g. prefetch after demand): keep earliest.
		if set[w].readyAt > readyAt {
			set[w].readyAt = readyAt
		}
		set[w].dirty = set[w].dirty || dirty
		return
	}
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].valid && set[victim].dirty {
		c.stats.Writebacks++
		if c.next != nil {
			// Writebacks consume downstream bandwidth but are off
			// the load's critical path.
			c.next.Access(set[victim].tag<<c.shift, readyAt, true, true)
		}
	}
	c.clock++
	set[victim] = line{valid: true, tag: tag, dirty: dirty, lru: c.clock, readyAt: readyAt}
}

// AccessPC is Access plus stride-prefetcher training keyed by the load's
// PC. Cores use this entry point for demand data accesses.
func (c *Cache) AccessPC(addr uint64, pc uint64, now int64, write bool) int64 {
	done := c.Access(addr, now, write, false)
	if c.stride == nil {
		return done
	}
	e := c.stride[pc]
	if e == nil {
		if len(c.stride) > 1024 {
			clear(c.stride)
		}
		c.stride[pc] = &strideEntry{lastAddr: addr}
		return done
	}
	d := int64(addr) - int64(e.lastAddr)
	if d == e.stride && d != 0 {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.stride = d
		if e.conf > 0 {
			e.conf--
		}
	}
	e.lastAddr = addr
	if e.conf >= 2 && e.stride != 0 {
		for k := 1; k <= c.cfg.StrideDegree; k++ {
			pa := uint64(int64(addr) + e.stride*int64(k+1))
			c.Access(pa, now, false, true)
		}
	}
	return done
}

// Contains reports whether addr's line is present (test helper).
func (c *Cache) Contains(addr uint64) bool {
	return c.lookup(c.sets[c.setIndex(addr)], c.tagOf(addr)) >= 0
}

func (c *Cache) String() string {
	return fmt.Sprintf("%s{%dKB %d-way}", c.cfg.Name, c.cfg.SizeBytes/1024, c.cfg.Ways)
}
