package cache

// HierConfig configures a per-core cache hierarchy. LLC and memory may be
// shared between cores (multicore runs): pass the same *Cache / *Memory to
// every core's NewHierarchy call.
type HierConfig struct {
	L1I Config
	L1D Config
	L2  Config
}

// Hierarchy bundles a core's private L1I/L1D/L2 over a (possibly shared)
// LLC and memory.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache
	LLC *Cache
	Mem *Memory
}

// NewHierarchy builds private levels over the given shared LLC.
func NewHierarchy(cfg HierConfig, llc *Cache, mem *Memory) *Hierarchy {
	l2 := New(cfg.L2, llc)
	return &Hierarchy{
		L1I: New(cfg.L1I, l2),
		L1D: New(cfg.L1D, l2),
		L2:  l2,
		LLC: llc,
		Mem: mem,
	}
}

// Data performs a demand data access (with stride training at L1D).
func (h *Hierarchy) Data(addr, pc uint64, now int64, write bool) int64 {
	return h.L1D.AccessPC(addr, pc, now, write)
}

// instBase offsets instruction addresses away from data addresses so code
// and data never alias in the shared levels. Each instruction occupies 4
// synthetic bytes.
const instBase = uint64(1) << 40

// Inst performs an instruction fetch for the instruction at code index pc.
func (h *Hierarchy) Inst(pc int, now int64) int64 {
	return h.L1I.Access(instBase+uint64(pc)*4, now, false, false)
}
