package cache

import (
	"testing"
	"testing/quick"
)

func newTestCache(sizeKB, ways int, next Level) *Cache {
	return New(Config{
		Name: "t", SizeBytes: sizeKB << 10, Ways: ways, LineBytes: 64,
		HitLatency: 4,
	}, next)
}

func TestHitMiss(t *testing.T) {
	mem := NewMemory(100, 64, 64)
	c := newTestCache(4, 4, mem)

	// Cold miss goes to memory.
	done := c.Access(0x1000, 0, false, false)
	if done < 100 {
		t.Fatalf("cold miss done at %d, want >= 100", done)
	}
	if !c.Contains(0x1000) {
		t.Fatal("line not installed")
	}
	// Hit after the fill completes.
	hit := c.Access(0x1000, done, false, false)
	if hit != done+4 {
		t.Fatalf("hit latency = %d, want %d", hit-done, 4)
	}
	st := c.Stats()
	if st.Accesses != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInFlightFill(t *testing.T) {
	mem := NewMemory(100, 64, 64)
	c := newTestCache(4, 4, mem)
	done := c.Access(0x2000, 0, false, false)
	// A second access during the fill waits for it, not a fresh miss.
	second := c.Access(0x2000, 10, false, false)
	if second < done || second > done+8 {
		t.Fatalf("in-flight access done at %d vs fill %d", second, done)
	}
	if c.Stats().Misses != 1 {
		t.Fatal("in-flight access counted as a miss")
	}
}

func TestLRUEviction(t *testing.T) {
	mem := NewMemory(10, 64, 64)
	// 2 sets x 2 ways of 64B lines = 256 B.
	c := New(Config{Name: "t", SizeBytes: 256, Ways: 2, HitLatency: 1}, mem)
	// Three lines mapping to set 0 (stride = 2 lines).
	a, b, d := uint64(0), uint64(128), uint64(256)
	c.Access(a, 0, false, false)
	c.Access(b, 100, false, false)
	c.Access(a, 200, false, false) // refresh a
	c.Access(d, 300, false, false) // evicts b (LRU)
	if !c.Contains(a) || !c.Contains(d) {
		t.Fatal("wrong victim")
	}
	if c.Contains(b) {
		t.Fatal("LRU line not evicted")
	}
}

func TestWritebackDirty(t *testing.T) {
	mem := NewMemory(10, 64, 64)
	c := New(Config{Name: "t", SizeBytes: 128, Ways: 1, HitLatency: 1}, mem)
	c.Access(0, 0, true, false)      // dirty line in set 0
	c.Access(128, 100, false, false) // evicts it -> writeback
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestMSHRLimit(t *testing.T) {
	mem := NewMemory(100, 6400, 64)
	c := New(Config{Name: "t", SizeBytes: 4 << 10, Ways: 4, HitLatency: 1, MSHRs: 2}, mem)
	// Three concurrent misses with only 2 MSHRs: the third must wait for
	// the first fill.
	d1 := c.Access(0x0000, 0, false, false)
	d2 := c.Access(0x1000, 0, false, false)
	d3 := c.Access(0x2000, 0, false, false)
	if d1 > 110 || d2 > 110 {
		t.Fatalf("first two misses delayed: %d %d", d1, d2)
	}
	if d3 < 195 {
		t.Fatalf("third miss done at %d, want MSHR-delayed (>= 195)", d3)
	}
}

func TestNextLinePrefetch(t *testing.T) {
	mem := NewMemory(50, 64, 64)
	c := New(Config{Name: "t", SizeBytes: 4 << 10, Ways: 4, HitLatency: 1,
		NextLinePrefetch: true}, mem)
	c.Access(0x100, 0, false, false)
	if !c.Contains(0x140) {
		t.Fatal("next line not prefetched")
	}
	if c.Stats().Prefetches == 0 {
		t.Fatal("prefetch not counted")
	}
}

func TestStridePrefetch(t *testing.T) {
	mem := NewMemory(50, 64, 64)
	c := New(Config{Name: "t", SizeBytes: 8 << 10, Ways: 4, HitLatency: 1,
		StridePrefetch: true, StrideDegree: 2}, mem)
	// Train a 128-byte stride at one PC.
	pc := uint64(42)
	for i := 0; i < 4; i++ {
		c.AccessPC(uint64(i)*128, pc, int64(i)*200, false)
	}
	// After confidence builds, lines ahead should be resident.
	if !c.Contains(4*128) && !c.Contains(5*128) {
		t.Fatal("stride prefetcher did not run ahead")
	}
}

func TestMemoryBandwidth(t *testing.T) {
	// 64-byte lines at 4 bytes/cycle: 16 cycles per transfer.
	mem := NewMemory(100, 4, 64)
	d1 := mem.Access(0, 0, false, false)
	d2 := mem.Access(64, 0, false, false)
	if d1 != 100 {
		t.Fatalf("first access at %d", d1)
	}
	if d2 != 116 {
		t.Fatalf("second access at %d, want bandwidth-delayed 116", d2)
	}
	if mem.Accesses() != 2 {
		t.Fatal("access count")
	}
}

// TestMonotonicCompletion: completion times never precede request times,
// regardless of the access pattern.
func TestMonotonicCompletion(t *testing.T) {
	f := func(addrs []uint16, writes []bool) bool {
		mem := NewMemory(100, 8, 64)
		l2 := New(Config{Name: "l2", SizeBytes: 2 << 10, Ways: 4, HitLatency: 10}, mem)
		l1 := New(Config{Name: "l1", SizeBytes: 512, Ways: 2, HitLatency: 2, MSHRs: 4}, l2)
		now := int64(0)
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			done := l1.Access(uint64(a), now, w, false)
			if done < now+2 {
				return false
			}
			now += 3
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchy(t *testing.T) {
	mem := NewMemory(100, 64, 64)
	llc := New(Config{Name: "llc", SizeBytes: 16 << 10, Ways: 8, HitLatency: 30}, mem)
	h := NewHierarchy(HierConfig{
		L1I: Config{Name: "l1i", SizeBytes: 4 << 10, Ways: 4, HitLatency: 1},
		L1D: Config{Name: "l1d", SizeBytes: 4 << 10, Ways: 4, HitLatency: 4},
		L2:  Config{Name: "l2", SizeBytes: 8 << 10, Ways: 8, HitLatency: 12},
	}, llc, mem)

	// Data and instruction streams must not alias.
	h.Data(0x100, 1, 0, false)
	d := h.Inst(0x100/4, 0)
	if d <= 1 {
		t.Fatal("instruction fetch suspiciously instant")
	}
	// Second access to each is a hit.
	if hit := h.Data(0x100, 1, 1000, false); hit != 1004 {
		t.Fatalf("L1D hit latency %d", hit-1000)
	}
}

// TestMSHRHeapMatchesScan pins the min-heap MSHR model to the original
// linear-scan semantics: drop entries completed by now, and when all MSHRs
// are still busy, the new miss inherits the earliest completion time.
func TestMSHRHeapMatchesScan(t *testing.T) {
	f := func(times []int64, mshrs uint8) bool {
		n := int(mshrs%8) + 1
		c := &Cache{cfg: Config{MSHRs: n}}
		var ref []int64 // the pre-heap representation
		now := int64(0)
		for _, dt := range times {
			if dt < 0 {
				dt = -dt
			}
			now += dt % 50
			// Reference: filter expired, then take the earliest if full.
			live := ref[:0]
			for _, at := range ref {
				if at > now {
					live = append(live, at)
				}
			}
			ref = live
			want := now
			if len(ref) >= n {
				ei := 0
				for i, at := range ref {
					if at < ref[ei] {
						ei = i
					}
				}
				want = ref[ei]
				ref = append(ref[:ei], ref[ei+1:]...)
			}
			got := c.mshrDelay(now)
			if got != want {
				t.Logf("mshrDelay(%d) = %d, want %d", now, got, want)
				return false
			}
			done := want + 100 + dt%97
			c.trackMiss(done)
			ref = append(ref, done)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkMSHRFull drives a stream of misses through a cache whose MSHRs
// are permanently saturated (tiny cache, huge stride, fills slower than the
// request rate), the path where occupancy tracking cost is hottest.
func BenchmarkMSHRFull(b *testing.B) {
	mem := NewMemory(400, 64, 64)
	c := New(Config{Name: "b", SizeBytes: 4 << 10, Ways: 4, HitLatency: 4, MSHRs: 32}, mem)
	b.ReportAllocs()
	now := int64(0)
	for i := 0; i < b.N; i++ {
		// Distinct sets, never reused: every access is a demand miss.
		addr := uint64(i) * 4096
		c.Access(addr, now, false, false)
		now += 2 // misses arrive far faster than the 400-cycle fills
	}
}

// BenchmarkCacheHit measures the hit path for contrast.
func BenchmarkCacheHit(b *testing.B) {
	mem := NewMemory(100, 64, 64)
	c := newTestCache(4, 4, mem)
	c.Access(0x1000, 0, false, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Access(0x1000, int64(i)+1000, false, false)
	}
}
