package bpred

import "testing"

// pickCleanPC returns a PC whose tag is nonzero in every TAGE table under
// an all-zero history, so a fresh table (tags zeroed) can never provide a
// prediction for it by accident.
func pickCleanPC(t *testing.T, tg *TAGE) uint64 {
	for pc := uint64(1); pc < 4096; pc++ {
		ok := true
		for i := 0; i < tageTables; i++ {
			if tg.tagOf(pc, i, 0) == 0 {
				ok = false
				break
			}
		}
		if ok {
			return pc
		}
	}
	t.Fatal("no PC with all-nonzero tags found")
	return 0
}

// TestTAGEAllocateOnMispredict: a base-provided misprediction must
// allocate a tagged entry (weak counter toward the actual outcome), and
// the next prediction for the same PC/history must come from it.
func TestTAGEAllocateOnMispredict(t *testing.T) {
	tg := NewTAGE()
	pc := pickCleanPC(t, tg)

	pred, tok := tg.Predict(pc, false)
	if tok.provider != -1 {
		t.Fatalf("fresh TAGE provided from table %d", tok.provider)
	}
	if !pred {
		t.Fatal("fresh base predictor should predict taken (ctr 0 >= 0)")
	}
	tg.Resolve(tok, pc, false, true) // mispredict: predicted taken, was not

	allocated := -1
	for i := 0; i < tageTables; i++ {
		e := tg.tables[i][tok.idx[i]]
		if e.tag == tok.tag[i] {
			allocated = i
			if e.ctr != -1 {
				t.Fatalf("table %d allocated with ctr %d, want weak -1", i, e.ctr)
			}
			if e.u != 0 {
				t.Fatalf("table %d allocated with u %d, want 0", i, e.u)
			}
		}
	}
	if allocated < 0 {
		t.Fatal("misprediction allocated no tagged entry")
	}

	pred2, tok2 := tg.Predict(pc, false)
	if tok2.provider != allocated {
		t.Fatalf("provider %d after allocation, want %d", tok2.provider, allocated)
	}
	if pred2 {
		t.Fatal("allocated entry did not flip the prediction")
	}
}

// TestTAGENoFreeEntryDecaysUseful: when every allocation candidate is
// protected (u > 0), a misprediction must decrement their u bits instead
// of allocating, so repeated pressure eventually frees a slot.
func TestTAGENoFreeEntryDecaysUseful(t *testing.T) {
	tg := NewTAGE()
	pc := pickCleanPC(t, tg)

	_, tok := tg.Predict(pc, false)
	for i := 0; i < tageTables; i++ {
		e := &tg.tables[i][tok.idx[i]]
		e.tag = tok.tag[i] ^ 1 // occupied by someone else
		e.u = 2
	}
	tg.Resolve(tok, pc, false, true) // mispredict, all candidates protected

	// Allocation starts at provider+1 (= table 0 here), possibly skipping
	// one table; tables 1..4 are candidates either way.
	for i := 1; i < tageTables; i++ {
		if u := tg.tables[i][tok.idx[i]].u; u != 1 {
			t.Fatalf("table %d u = %d after failed allocation, want 1", i, u)
		}
		if tg.tables[i][tok.idx[i]].tag != tok.tag[i]^1 {
			t.Fatalf("table %d entry was overwritten despite u > 0", i)
		}
	}
}

// TestTAGEUsefulBitTracksProvider: u increments when the provider beats
// the alternate prediction and decrements when it loses to it.
func TestTAGEUsefulBitTracksProvider(t *testing.T) {
	tg := NewTAGE()
	pc := pickCleanPC(t, tg)

	// Plant a provider in the longest table predicting not-taken; the
	// base (alternate) predicts taken, so the two always disagree.
	idx := tg.index(pc, tageTables-1, 0)
	tg.tables[tageTables-1][idx] = tageEntry{tag: tg.tagOf(pc, tageTables-1, 0), ctr: -1}

	pred, tok := tg.Predict(pc, false)
	if tok.provider != tageTables-1 || pred {
		t.Fatalf("provider %d pred %v, want planted table %d not-taken",
			tok.provider, pred, tageTables-1)
	}
	tg.Resolve(tok, pc, false, false) // provider right, altpred wrong
	if u := tg.tables[tageTables-1][idx].u; u != 1 {
		t.Fatalf("u = %d after useful prediction, want 1", u)
	}

	_, tok = tg.Predict(pc, false)
	tg.Resolve(tok, pc, true, false) // provider wrong, altpred right
	if u := tg.tables[tageTables-1][idx].u; u != 0 {
		t.Fatalf("u = %d after useless prediction, want 0", u)
	}
}

// TestTAGEUsefulDecay: the periodic decay halves every u bit once per
// decayPeriod updates.
func TestTAGEUsefulDecay(t *testing.T) {
	tg := NewTAGE()
	tg.tables[2][5].u = 3
	tg.tables[4][9].u = 1

	// Resolve with a base-only token and a matching outcome: no
	// misprediction, no allocation — only the update counter advances.
	p := Pred{provider: -1, Taken: false}
	for i := 0; i < decayPeriod; i++ {
		tg.Resolve(p, 0, false, false)
	}
	if u := tg.tables[2][5].u; u != 1 {
		t.Fatalf("u = %d after one decay, want 3>>1 = 1", u)
	}
	if u := tg.tables[4][9].u; u != 0 {
		t.Fatalf("u = %d after one decay, want 1>>1 = 0", u)
	}
}

// TestTAGETagAliasing: two different PCs that collide in both index and
// tag of table 0 share an entry — the second PC is provided by the first
// PC's counter. This destructive aliasing is by design (partial tags);
// the test pins the collision behaviour so a tag-width change that breaks
// the hash shows up.
func TestTAGETagAliasing(t *testing.T) {
	tg := NewTAGE()
	type key struct {
		idx uint32
		tag uint16
	}
	seen := map[key]uint64{}
	var pc1, pc2 uint64
	for pc := uint64(1); pc < 1<<20; pc++ {
		k := key{tg.index(pc, 0, 0), tg.tagOf(pc, 0, 0)}
		if k.tag == 0 {
			continue
		}
		if prev, ok := seen[k]; ok {
			pc1, pc2 = prev, pc
			break
		}
		seen[k] = pc
	}
	if pc2 == 0 {
		t.Fatal("no index+tag collision found in table 0")
	}

	idx := tg.index(pc1, 0, 0)
	tg.tables[0][idx] = tageEntry{tag: tg.tagOf(pc1, 0, 0), ctr: -2}
	_, tok := tg.Predict(pc2, false)
	if tok.provider != 0 {
		t.Fatalf("aliased PC %#x not provided by table 0 (provider %d)", pc2, tok.provider)
	}
	if tok.provPred {
		t.Fatal("aliased PC did not read the colliding entry's counter")
	}
}

// TestTAGEHistoryRepair: a mispredict with repairHist must rebuild the
// speculative history as snapshot<<1|actual, discarding wrong-path shifts.
func TestTAGEHistoryRepair(t *testing.T) {
	tg := NewTAGE()
	for i := 0; i < 64; i++ {
		tg.OnFetch(i%3 == 0)
	}
	pred, tok := tg.Predict(77, false)
	tg.OnFetch(pred)
	tg.OnFetch(true) // wrong-path pollution
	tg.OnFetch(false)
	actual := !pred
	tg.Resolve(tok, 77, actual, true)
	if want := tok.Hist<<1 | b2u(actual); tg.hist != want {
		t.Fatalf("history %#x after repair, want %#x", tg.hist, want)
	}
}
