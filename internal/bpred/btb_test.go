package bpred

import "testing"

// TestBTBLRUEviction: inserting into a full set evicts the
// least-recently-used way, where a Lookup hit counts as a use.
func TestBTBLRUEviction(t *testing.T) {
	b := NewBTB(4, 2)
	// PCs 1, 5, 9 all map to set 1 of a 4-set BTB.
	b.Insert(1, 10)
	b.Insert(5, 50)
	if _, hit := b.Lookup(1); !hit {
		t.Fatal("pc 1 missing before eviction")
	}
	// Set is full and pc 5 is now LRU: inserting pc 9 must evict it.
	b.Insert(9, 90)
	if _, hit := b.Lookup(5); hit {
		t.Fatal("LRU entry (pc 5) survived eviction")
	}
	if tgt, hit := b.Lookup(1); !hit || tgt != 10 {
		t.Fatal("recently used entry (pc 1) was evicted")
	}
	if tgt, hit := b.Lookup(9); !hit || tgt != 90 {
		t.Fatal("newly inserted entry (pc 9) missing")
	}
}

// TestBTBInsertPrefersInvalid: an invalid way is always filled before any
// valid entry is evicted.
func TestBTBInsertPrefersInvalid(t *testing.T) {
	b := NewBTB(2, 4)
	for i, pc := range []uint64{0, 2, 4} {
		b.Insert(pc, i)
	}
	b.Insert(6, 3) // set 0 has one invalid way left
	for i, pc := range []uint64{0, 2, 4, 6} {
		if tgt, hit := b.Lookup(pc); !hit || tgt != i {
			t.Fatalf("pc %d lost while invalid ways remained", pc)
		}
	}
}

// TestBTBFullTagNoFalseHits: the tag is the full PC, so same-set PCs can
// never alias onto each other's targets.
func TestBTBFullTagNoFalseHits(t *testing.T) {
	b := NewBTB(4, 2)
	b.Insert(1, 10)
	for _, pc := range []uint64{5, 9, 13} { // same set, different PC
		if _, hit := b.Lookup(pc); hit {
			t.Fatalf("false hit for pc %d on pc 1's entry", pc)
		}
	}
}

// TestBTBStatsExact: hits and misses are counted per Lookup, and Insert
// counts neither.
func TestBTBStatsExact(t *testing.T) {
	b := NewBTB(8, 2)
	b.Lookup(3) // miss
	b.Insert(3, 30)
	b.Lookup(3) // hit
	b.Lookup(3) // hit
	b.Lookup(11) // miss (same set)
	if h, m := b.Stats(); h != 2 || m != 2 {
		t.Fatalf("stats = %d hits, %d misses; want 2, 2", h, m)
	}
}

// TestBTBGeometries: insert-then-lookup works across set/way shapes, and
// capacity-plus-one inserts into one set evict exactly one entry.
func TestBTBGeometries(t *testing.T) {
	cases := []struct{ sets, ways int }{
		{1, 1}, {1, 4}, {16, 1}, {16, 4}, {64, 2},
	}
	for _, tc := range cases {
		b := NewBTB(tc.sets, tc.ways)
		// Fill one set past capacity.
		for i := 0; i <= tc.ways; i++ {
			pc := uint64(tc.sets * i) // all in set 0
			b.Insert(pc, i)
		}
		live := 0
		for i := 0; i <= tc.ways; i++ {
			if _, hit := b.Lookup(uint64(tc.sets * i)); hit {
				live++
			}
		}
		if live != tc.ways {
			t.Errorf("%dx%d: %d live entries after %d inserts, want %d",
				tc.sets, tc.ways, live, tc.ways+1, tc.ways)
		}
	}
}
