package bpred

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// runPattern feeds a branch outcome pattern and returns the accuracy.
func runPattern(p Predictor, pcs []uint64, outcome func(i int, pc uint64) bool, n int) float64 {
	correct := 0
	for i := 0; i < n; i++ {
		pc := pcs[i%len(pcs)]
		actual := outcome(i, pc)
		pred, tok := p.Predict(pc, actual)
		p.OnFetch(pred)
		if pred == actual {
			correct++
		}
		p.Resolve(tok, pc, actual, true)
	}
	return float64(correct) / float64(n)
}

func TestOracleAlwaysRight(t *testing.T) {
	rng := graph.NewRNG(7)
	acc := runPattern(&Oracle{}, []uint64{4, 8}, func(i int, pc uint64) bool {
		return rng.Next()&1 == 0
	}, 2000)
	if acc != 1.0 {
		t.Fatalf("oracle accuracy %f", acc)
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	acc := runPattern(NewBimodal(12), []uint64{100}, func(i int, pc uint64) bool {
		return i%10 != 0 // 90% taken
	}, 5000)
	if acc < 0.85 {
		t.Fatalf("bimodal accuracy %f on 90%% biased branch", acc)
	}
}

func TestGshareLearnsAlternation(t *testing.T) {
	acc := runPattern(NewGshare(14, 12), []uint64{100}, func(i int, pc uint64) bool {
		return i%2 == 0
	}, 5000)
	if acc < 0.95 {
		t.Fatalf("gshare accuracy %f on alternating branch", acc)
	}
}

func TestTAGELearnsLoop(t *testing.T) {
	// An inner loop of fixed trip count 7: taken 6x then not taken.
	// TAGE's history tables should learn the exit.
	acc := runPattern(NewTAGE(), []uint64{100}, func(i int, pc uint64) bool {
		return i%7 != 6
	}, 20000)
	if acc < 0.95 {
		t.Fatalf("TAGE accuracy %f on trip-count-7 loop", acc)
	}
}

func TestTAGEBeatsBimodalOnHistory(t *testing.T) {
	// Outcome depends on the previous two outcomes of another branch —
	// bimodal cannot see it, history predictors can.
	pattern := []bool{true, true, false, true, false, false, true, false}
	out := func(i int, pc uint64) bool { return pattern[i%len(pattern)] }
	tage := runPattern(NewTAGE(), []uint64{100}, out, 20000)
	bim := runPattern(NewBimodal(12), []uint64{100}, out, 20000)
	if tage <= bim {
		t.Fatalf("TAGE %.3f not better than bimodal %.3f on a periodic pattern", tage, bim)
	}
	if tage < 0.95 {
		t.Fatalf("TAGE accuracy %f on periodic pattern", tage)
	}
}

func TestTAGERandomIsHarmless(t *testing.T) {
	// On incompressible outcomes, any predictor hovers near 50%; the
	// test guards against pathological (< 40%) behavior.
	rng := graph.NewRNG(99)
	acc := runPattern(NewTAGE(), []uint64{1, 2, 3}, func(i int, pc uint64) bool {
		return rng.Next()&1 == 0
	}, 20000)
	if acc < 0.40 {
		t.Fatalf("TAGE accuracy %f on random branches", acc)
	}
}

func TestHistoryRepair(t *testing.T) {
	// After a misprediction with repairHist, the speculative history must
	// equal snapshot<<1|actual.
	g := NewGshare(14, 12)
	for i := 0; i < 100; i++ {
		actual := i%3 == 0
		pred, tok := g.Predict(uint64(50), actual)
		g.OnFetch(pred)
		// Pollute history with wrong-path fetches.
		g.OnFetch(!actual)
		g.OnFetch(actual)
		g.Resolve(tok, 50, actual, true)
		if pred != actual {
			want := tok.Hist<<1 | b2u(actual)
			if g.hist != want {
				t.Fatalf("history not repaired: got %x want %x", g.hist, want)
			}
		}
	}
}

func TestNoRepairKeepsHistory(t *testing.T) {
	g := NewGshare(14, 12)
	actual := true
	pred, tok := g.Predict(10, actual)
	g.OnFetch(pred)
	g.OnFetch(false)
	before := g.hist
	g.Resolve(tok, 10, !pred, false) // mispredicted, no repair (selective flush)
	if g.hist != before {
		t.Fatal("history repaired despite repairHist=false")
	}
}

// TestTAGEFoldBounds: table indices stay in range for arbitrary histories.
func TestTAGEFoldBounds(t *testing.T) {
	tg := NewTAGE()
	f := func(pc, hist uint64) bool {
		for i := 0; i < tageTables; i++ {
			if tg.index(pc, i, hist) >= 1<<tageIdxBits {
				return false
			}
			if tg.tagOf(pc, i, hist) >= 1<<tageTagBits {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestBTB(t *testing.T) {
	b := NewBTB(16, 2)
	if _, hit := b.Lookup(100); hit {
		t.Fatal("cold hit")
	}
	b.Insert(100, 7)
	if tgt, hit := b.Lookup(100); !hit || tgt != 7 {
		t.Fatal("lookup after insert")
	}
	// Conflict eviction: three PCs in the same set of a 2-way BTB.
	b.Insert(116, 1) // 116 % 16 == 100 % 16? No: use same set via +16*k
	b.Insert(100+16, 2)
	b.Insert(100+32, 3)
	hits := 0
	for _, pc := range []uint64{100, 116, 132} {
		if _, h := b.Lookup(pc); h {
			hits++
		}
	}
	if hits > 2 {
		t.Fatal("eviction did not happen in a 2-way set")
	}
	h, m := b.Stats()
	if h == 0 || m == 0 {
		t.Fatal("stats not counted")
	}
}

func TestNewByName(t *testing.T) {
	for _, name := range []string{"tage", "gshare", "bimodal", "static", "oracle"} {
		if p := New(name); p.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, p.Name())
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown predictor did not panic")
		}
	}()
	New("nope")
}
