package bpred

// BTB is a set-associative branch target buffer. The virtual ISA has only
// direct branches, so the BTB's role in the model is detecting
// taken-branch redirects early in fetch: a predicted-taken branch that
// misses in the BTB costs a decode-stage redirect bubble.
type BTB struct {
	sets    int
	ways    int
	entries [][]btbEntry
	hits    uint64
	misses  uint64
	clock   uint64
}

type btbEntry struct {
	valid  bool
	tag    uint64
	target int
	lru    uint64
}

// NewBTB returns a BTB with the given geometry.
func NewBTB(sets, ways int) *BTB {
	e := make([][]btbEntry, sets)
	for i := range e {
		e[i] = make([]btbEntry, ways)
	}
	return &BTB{sets: sets, ways: ways, entries: e}
}

// Lookup returns the stored target for pc, if present.
func (b *BTB) Lookup(pc uint64) (int, bool) {
	set := b.entries[pc%uint64(b.sets)]
	for i := range set {
		if set[i].valid && set[i].tag == pc {
			b.clock++
			set[i].lru = b.clock
			b.hits++
			return set[i].target, true
		}
	}
	b.misses++
	return 0, false
}

// Insert records the target of the branch at pc, evicting LRU on conflict.
func (b *BTB) Insert(pc uint64, target int) {
	set := b.entries[pc%uint64(b.sets)]
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	b.clock++
	set[victim] = btbEntry{valid: true, tag: pc, target: target, lru: b.clock}
}

// Stats returns hit and miss counts.
func (b *BTB) Stats() (hits, misses uint64) { return b.hits, b.misses }
