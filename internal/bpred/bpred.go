// Package bpred implements branch direction predictors (TAGE, gshare,
// bimodal, static, oracle) and a branch target buffer.
//
// The simulator is trace-driven: the actual branch outcome is known at
// prediction time and is passed to Predict so that the oracle predictor
// can be expressed uniformly. Honest predictors ignore it.
//
// History management follows hardware practice: the global history is
// updated speculatively at fetch with the *predicted* direction (wrong-path
// branches included), and repaired from a snapshot when a misprediction
// resolves. Predict returns a Pred token holding the snapshot and the
// table indices computed from prediction-time history; Resolve consumes it.
package bpred

// Predictor is the common direction-predictor interface.
type Predictor interface {
	// Predict returns the predicted direction for the conditional
	// branch at pc and a token to pass back to Resolve. actual is the
	// trace outcome (used only by the oracle).
	Predict(pc uint64, actual bool) (bool, Pred)
	// OnFetch shifts the direction the frontend actually followed into
	// the speculative global history. Call once per fetched conditional
	// branch (correct or wrong path).
	OnFetch(taken bool)
	// Resolve trains the predictor with the actual outcome of a
	// correct-path branch. When the prediction was wrong and repairHist
	// is true (a conventional flush discarded everything fetched since),
	// the speculative history is repaired from the token's snapshot; a
	// selective flush keeps younger fetched branches in flight, so the
	// core passes repairHist=false and the history keeps evolving.
	Resolve(p Pred, pc uint64, actual bool, repairHist bool)
	// Name identifies the predictor in reports.
	Name() string
}

// Pred is the per-prediction token: the predicted direction, the history
// snapshot for repair, and predictor-specific indices computed at
// prediction time.
type Pred struct {
	Taken bool
	Hist  uint64 // speculative global history at prediction time
	// Conf is the predictor's confidence in this prediction on a 0..3
	// scale (0 = lowest). TAGE reports the provider entry's usefulness
	// counter; the counter-table predictors (and TAGE's base fallback)
	// report 1 when the counter is saturated and 0 otherwise; the oracle
	// reports 3 and static 0. Consumed by the throttle recovery policy's
	// fetch gate.
	Conf uint8

	// TAGE fields (see tage.go).
	provider int // table number of the providing component, -1 = base
	altPred  bool
	provPred bool
	idx      [tageTables]uint32
	tag      [tageTables]uint16
	baseIdx  uint32
}

// New constructs a predictor by name: "tage", "gshare", "bimodal",
// "static", or "oracle". Unknown names panic: predictor choice is a
// configuration-time decision.
func New(name string) Predictor {
	switch name {
	case "tage":
		return NewTAGE()
	case "gshare":
		return NewGshare(14, 12)
	case "bimodal":
		return NewBimodal(14)
	case "static":
		return Static{}
	case "oracle":
		return &Oracle{}
	}
	panic("bpred: unknown predictor " + name)
}

// ctrUpdate saturates a small signed counter in [-(1<<(bits-1)), (1<<(bits-1))-1].
func ctrUpdate(ctr int8, taken bool, bits uint) int8 {
	maxv := int8(1<<(bits-1)) - 1
	minv := -int8(1 << (bits - 1))
	if taken {
		if ctr < maxv {
			ctr++
		}
	} else {
		if ctr > minv {
			ctr--
		}
	}
	return ctr
}

// Static predicts backward branches taken and forward branches not taken.
// Lacking target information at this layer, it predicts not-taken, which
// matches the forward data-dependent branches that dominate the evaluated
// kernels; loop closers are mispredicted once per loop.
type Static struct{}

// Predict implements Predictor.
func (Static) Predict(uint64, bool) (bool, Pred) { return false, Pred{} }

// OnFetch implements Predictor.
func (Static) OnFetch(bool) {}

// Resolve implements Predictor.
func (Static) Resolve(Pred, uint64, bool, bool) {}

// Name implements Predictor.
func (Static) Name() string { return "static" }

// Oracle always predicts correctly: the perfect-branch-prediction
// configuration of Figs. 4 and 11.
type Oracle struct{}

// Predict implements Predictor.
func (*Oracle) Predict(_ uint64, actual bool) (bool, Pred) {
	return actual, Pred{Taken: actual, Conf: 3}
}

// OnFetch implements Predictor.
func (*Oracle) OnFetch(bool) {}

// Resolve implements Predictor.
func (*Oracle) Resolve(Pred, uint64, bool, bool) {}

// Name implements Predictor.
func (*Oracle) Name() string { return "oracle" }

// Bimodal is a table of 2-bit saturating counters indexed by PC.
type Bimodal struct {
	ctr  []int8
	mask uint64
}

// NewBimodal returns a bimodal predictor with 2^bits counters.
func NewBimodal(bits uint) *Bimodal {
	return &Bimodal{ctr: make([]int8, 1<<bits), mask: 1<<bits - 1}
}

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint64, _ bool) (bool, Pred) {
	c := b.ctr[pc&b.mask]
	t := c >= 0
	return t, Pred{Taken: t, Conf: ctrConf(c, 2)}
}

// OnFetch implements Predictor.
func (b *Bimodal) OnFetch(bool) {}

// Resolve implements Predictor.
func (b *Bimodal) Resolve(_ Pred, pc uint64, actual bool, _ bool) {
	i := pc & b.mask
	b.ctr[i] = ctrUpdate(b.ctr[i], actual, 2)
}

// Name implements Predictor.
func (b *Bimodal) Name() string { return "bimodal" }

// Gshare XORs the global history with the PC to index a counter table.
type Gshare struct {
	ctr      []int8
	mask     uint64
	hist     uint64
	histBits uint
}

// NewGshare returns a gshare predictor with 2^tableBits counters and
// histBits bits of global history.
func NewGshare(tableBits, histBits uint) *Gshare {
	return &Gshare{
		ctr:      make([]int8, 1<<tableBits),
		mask:     1<<tableBits - 1,
		histBits: histBits,
	}
}

// Predict implements Predictor.
func (g *Gshare) Predict(pc uint64, _ bool) (bool, Pred) {
	idx := (pc ^ (g.hist & (1<<g.histBits - 1))) & g.mask
	c := g.ctr[idx]
	t := c >= 0
	return t, Pred{Taken: t, Hist: g.hist, Conf: ctrConf(c, 2)}
}

// OnFetch implements Predictor.
func (g *Gshare) OnFetch(taken bool) {
	g.hist = g.hist<<1 | b2u(taken)
}

// Resolve implements Predictor.
func (g *Gshare) Resolve(p Pred, pc uint64, actual bool, repairHist bool) {
	idx := (pc ^ (p.Hist & (1<<g.histBits - 1))) & g.mask
	g.ctr[idx] = ctrUpdate(g.ctr[idx], actual, 2)
	if p.Taken != actual && repairHist {
		g.hist = p.Hist<<1 | b2u(actual)
	}
}

// Name implements Predictor.
func (g *Gshare) Name() string { return "gshare" }

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// ctrConf maps a saturating counter to a confidence: 1 at either
// saturation point, 0 for the weak middle states.
func ctrConf(ctr int8, bits uint) uint8 {
	if ctr == int8(1<<(bits-1))-1 || ctr == -int8(1<<(bits-1)) {
		return 1
	}
	return 0
}
