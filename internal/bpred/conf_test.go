package bpred

import "testing"

// TestConfidenceScale pins the Pred.Conf contract the throttle recovery
// policy relies on: a fresh predictor reports low confidence, a
// well-trained one reports non-zero confidence, the oracle is always
// certain, and static never is.
func TestConfidenceScale(t *testing.T) {
	// Oracle: maximal confidence, always.
	if _, p := (&Oracle{}).Predict(4, true); p.Conf != 3 {
		t.Fatalf("oracle Conf = %d, want 3", p.Conf)
	}
	// Static: no confidence, ever.
	if _, p := (Static{}).Predict(4, false); p.Conf != 0 {
		t.Fatalf("static Conf = %d, want 0", p.Conf)
	}

	// Counter predictors: a fresh table is weak (Conf 0); saturating it
	// on a biased branch raises Conf to 1.
	for _, tc := range []struct {
		name string
		p    Predictor
	}{
		{"bimodal", NewBimodal(12)},
		{"gshare", NewGshare(14, 12)},
	} {
		_, pr := tc.p.Predict(100, true)
		if pr.Conf != 0 {
			t.Fatalf("%s: fresh Conf = %d, want 0", tc.name, pr.Conf)
		}
		for i := 0; i < 64; i++ {
			_, tok := tc.p.Predict(100, true)
			tc.p.OnFetch(true)
			tc.p.Resolve(tok, 100, true, true)
		}
		if _, pr := tc.p.Predict(100, true); pr.Conf != 1 {
			t.Fatalf("%s: trained Conf = %d, want 1", tc.name, pr.Conf)
		}
	}

	// TAGE: base fallback follows the saturation rule; once a provider
	// entry earns usefulness on a history-dependent branch, Conf tracks
	// its u counter into the 0..3 range.
	tg := NewTAGE()
	if _, pr := tg.Predict(100, true); pr.Conf != 0 {
		t.Fatalf("tage: fresh Conf = %d, want 0", pr.Conf)
	}
	maxConf := uint8(0)
	for i := 0; i < 20000; i++ {
		actual := i%7 != 6 // fixed-trip loop: pure history signal
		pred, tok := tg.Predict(100, actual)
		tg.OnFetch(pred)
		tg.Resolve(tok, 100, actual, true)
		if _, pr := tg.Predict(100, actual); pr.Conf > maxConf {
			maxConf = pr.Conf
		}
	}
	if maxConf == 0 {
		t.Fatal("tage: confidence never rose above 0 on a learnable loop")
	}
	if maxConf > 3 {
		t.Fatalf("tage: Conf %d exceeds the u-bit ceiling of 3", maxConf)
	}
}
