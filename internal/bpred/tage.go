package bpred

// TAGE — TAgged GEometric-history-length predictor (Seznec, "A new case
// for the TAGE branch predictor", MICRO 2011), the predictor of the
// paper's Table 1 configuration.
//
// Structure: a bimodal base predictor plus tageTables tagged components
// indexed by hashes of the PC and geometrically increasing slices of the
// global history. Prediction comes from the matching component with the
// longest history ("provider"); on a misprediction a new entry is
// allocated in a longer-history component. Usefulness (u) bits protect
// entries that outperformed the alternate prediction and decay
// periodically.
//
// This implementation caps the global history at 64 bits (lengths
// 4/8/16/32/64), which preserves TAGE's behaviour on the loop and
// data-dependent branches of the evaluated kernels while keeping history
// snapshots O(1).

const (
	tageTables  = 5
	tageIdxBits = 10
	tageTagBits = 9
	baseBits    = 13
	tageCtrBits = 3
	decayPeriod = 1 << 18 // u-bit decay interval, in updates
)

var tageHistLen = [tageTables]uint{4, 8, 16, 32, 64}

type tageEntry struct {
	tag uint16
	ctr int8 // 3-bit signed, >= 0 means taken
	u   uint8
}

// TAGE implements Predictor.
type TAGE struct {
	base    []int8
	tables  [tageTables][]tageEntry
	hist    uint64
	updates uint64
	lfsr    uint32 // deterministic pseudo-randomness for allocation
}

// NewTAGE returns a TAGE predictor with the default geometry.
func NewTAGE() *TAGE {
	t := &TAGE{base: make([]int8, 1<<baseBits), lfsr: 0xace1}
	for i := range t.tables {
		t.tables[i] = make([]tageEntry, 1<<tageIdxBits)
	}
	return t
}

// Name implements Predictor.
func (t *TAGE) Name() string { return "tage" }

// fold compresses the low n bits of h into chunks of width bits, XORed.
func fold(h uint64, n, width uint) uint64 {
	h &= 1<<n - 1
	var f uint64
	for n > 0 {
		f ^= h & (1<<width - 1)
		h >>= width
		if n >= width {
			n -= width
		} else {
			n = 0
		}
	}
	return f
}

func (t *TAGE) index(pc uint64, table int, hist uint64) uint32 {
	hl := tageHistLen[table]
	h := fold(hist, hl, tageIdxBits)
	return uint32((pc ^ pc>>tageIdxBits ^ h ^ uint64(table)*0x9e37) & (1<<tageIdxBits - 1))
}

func (t *TAGE) tagOf(pc uint64, table int, hist uint64) uint16 {
	hl := tageHistLen[table]
	h := fold(hist, hl, tageTagBits) ^ fold(hist, hl, tageTagBits-1)<<1
	return uint16((pc ^ pc>>(tageTagBits+2) ^ h) & (1<<tageTagBits - 1))
}

// Predict implements Predictor.
func (t *TAGE) Predict(pc uint64, _ bool) (bool, Pred) {
	p := Pred{Hist: t.hist, provider: -1}
	p.baseIdx = uint32(pc & (1<<baseBits - 1))
	basePred := t.base[p.baseIdx] >= 0

	alt := -1
	for i := 0; i < tageTables; i++ {
		p.idx[i] = t.index(pc, i, t.hist)
		p.tag[i] = t.tagOf(pc, i, t.hist)
		if t.tables[i][p.idx[i]].tag == p.tag[i] {
			alt = p.provider
			p.provider = i
		}
	}
	if p.provider >= 0 {
		e := t.tables[p.provider][p.idx[p.provider]]
		p.provPred = e.ctr >= 0
		p.Conf = e.u
		if alt >= 0 {
			p.altPred = t.tables[alt][p.idx[alt]].ctr >= 0
		} else {
			p.altPred = basePred
		}
		p.Taken = p.provPred
	} else {
		p.altPred = basePred
		p.Taken = basePred
		p.Conf = ctrConf(t.base[p.baseIdx], 2)
	}
	return p.Taken, p
}

// OnFetch implements Predictor.
func (t *TAGE) OnFetch(taken bool) {
	t.hist = t.hist<<1 | b2u(taken)
}

func (t *TAGE) rand() uint32 {
	// 16-bit Galois LFSR.
	lsb := t.lfsr & 1
	t.lfsr >>= 1
	if lsb != 0 {
		t.lfsr ^= 0xb400
	}
	return t.lfsr
}

// Resolve implements Predictor.
func (t *TAGE) Resolve(p Pred, pc uint64, actual bool, repairHist bool) {
	t.updates++
	mispred := p.Taken != actual

	// Train the provider (or the base predictor).
	if p.provider >= 0 {
		e := &t.tables[p.provider][p.idx[p.provider]]
		// Usefulness: provider differed from altpred and was right.
		if p.provPred != p.altPred {
			if p.provPred == actual {
				if e.u < 3 {
					e.u++
				}
			} else if e.u > 0 {
				e.u--
			}
		}
		e.ctr = ctrUpdate(e.ctr, actual, tageCtrBits)
		// Weak new entries also train the base so it stays a sane
		// fallback.
		if e.u == 0 {
			t.base[p.baseIdx] = ctrUpdate(t.base[p.baseIdx], actual, 2)
		}
	} else {
		t.base[p.baseIdx] = ctrUpdate(t.base[p.baseIdx], actual, 2)
	}

	// On a misprediction, allocate an entry in a longer-history table.
	if mispred && p.provider < tageTables-1 {
		start := p.provider + 1
		allocated := false
		// Slightly favour shorter tables, as in the reference design:
		// skip the first candidate with probability 1/2.
		if start < tageTables-1 && t.rand()&1 == 0 {
			start++
		}
		for i := start; i < tageTables; i++ {
			e := &t.tables[i][p.idx[i]]
			if e.u == 0 {
				e.tag = p.tag[i]
				if actual {
					e.ctr = 0
				} else {
					e.ctr = -1
				}
				e.u = 0
				allocated = true
				break
			}
		}
		if !allocated {
			for i := start; i < tageTables; i++ {
				e := &t.tables[i][p.idx[i]]
				if e.u > 0 {
					e.u--
				}
			}
		}
	}

	// Periodic graceful decay of u bits.
	if t.updates%decayPeriod == 0 {
		for i := range t.tables {
			for j := range t.tables[i] {
				t.tables[i][j].u >>= 1
			}
		}
	}

	// Repair speculative history after a misprediction that flushed
	// everything younger.
	if mispred && repairHist {
		t.hist = p.Hist<<1 | b2u(actual)
	}
}
