package isa

import "fmt"

// Validate checks static well-formedness of a program:
//
//   - all control-flow targets are within the code,
//   - the program ends in Halt (or an unconditional backward jump),
//   - slice instructions are well formed: slices never nest, every
//     slice_start is closed by a slice_end, and slice_fence never appears
//     inside a slice,
//   - register indices are in range.
//
// Slice structure is checked linearly over the static code, which is the
// form the kernels in this repository use (a slice is a contiguous static
// range of instructions). Control flow may leave a slice only via its
// conditional branches; the emulator additionally checks dynamic slice
// discipline (see emu.Machine).
func Validate(p *Program) error {
	if len(p.Code) == 0 {
		return fmt.Errorf("%s: empty program", p.Name)
	}
	inSlice := false
	for pc, in := range p.Code {
		if in.Op >= numOps {
			return fmt.Errorf("%s: pc %d: invalid opcode %d", p.Name, pc, in.Op)
		}
		if in.Dst >= NumRegs || in.Src1 >= NumRegs || in.Src2 >= NumRegs || in.Val >= NumRegs {
			return fmt.Errorf("%s: pc %d: register out of range in %v", p.Name, pc, in)
		}
		if in.Op.IsControl() {
			if in.Imm < 0 || in.Imm >= int64(len(p.Code)) {
				return fmt.Errorf("%s: pc %d: control target @%d out of range [0,%d)",
					p.Name, pc, in.Imm, len(p.Code))
			}
		}
		switch in.Op {
		case SliceStart:
			if inSlice {
				return fmt.Errorf("%s: pc %d: nested slice_start", p.Name, pc)
			}
			inSlice = true
		case SliceEnd:
			if !inSlice {
				return fmt.Errorf("%s: pc %d: slice_end without slice_start", p.Name, pc)
			}
			inSlice = false
		case SliceFence:
			if inSlice {
				return fmt.Errorf("%s: pc %d: slice_fence inside a slice", p.Name, pc)
			}
		}
		if in.Reduce() && in.Op.IsControl() {
			return fmt.Errorf("%s: pc %d: reduce prefix on control instruction", p.Name, pc)
		}
	}
	if inSlice {
		return fmt.Errorf("%s: unterminated slice at end of code", p.Name)
	}
	last := p.Code[len(p.Code)-1]
	if last.Op != Halt && last.Op != Jmp {
		return fmt.Errorf("%s: program must end in halt or jmp, got %v", p.Name, last.Op)
	}
	return nil
}
