package isa

import (
	"testing"
	"testing/quick"
)

func TestOpClassification(t *testing.T) {
	cases := []struct {
		op     Op
		load   bool
		store  bool
		atomic bool
		branch bool
		slice  bool
		size   int
	}{
		{Add, false, false, false, false, false, 0},
		{Ld64, true, false, false, false, false, 8},
		{Ld32, true, false, false, false, false, 4},
		{LdX32, true, false, false, false, false, 4},
		{St64, false, true, false, false, false, 8},
		{StX32, false, true, false, false, false, 4},
		{AAdd64, false, false, true, false, false, 8},
		{AMin32, false, false, true, false, false, 4},
		{AMinX64, false, false, true, false, false, 8},
		{Beq, false, false, false, true, false, 0},
		{Bfge, false, false, false, true, false, 0},
		{Jmp, false, false, false, false, false, 0},
		{SliceStart, false, false, false, false, true, 0},
		{SliceEnd, false, false, false, false, true, 0},
		{SliceFence, false, false, false, false, true, 0},
	}
	for _, c := range cases {
		if c.op.IsLoad() != c.load {
			t.Errorf("%v IsLoad = %v", c.op, c.op.IsLoad())
		}
		if c.op.IsStore() != c.store {
			t.Errorf("%v IsStore = %v", c.op, c.op.IsStore())
		}
		if c.op.IsAtomic() != c.atomic {
			t.Errorf("%v IsAtomic = %v", c.op, c.op.IsAtomic())
		}
		if c.op.IsBranch() != c.branch {
			t.Errorf("%v IsBranch = %v", c.op, c.op.IsBranch())
		}
		if c.op.IsSlice() != c.slice {
			t.Errorf("%v IsSlice = %v", c.op, c.op.IsSlice())
		}
		if c.op.MemSize() != c.size {
			t.Errorf("%v MemSize = %d, want %d", c.op, c.op.MemSize(), c.size)
		}
	}
}

// TestOpInvariantsQuick checks cross-cutting op predicates for every
// opcode value.
func TestOpInvariantsQuick(t *testing.T) {
	f := func(raw uint8) bool {
		op := Op(raw % uint8(numOps))
		// Memory predicate consistency.
		if op.IsMem() != (op.IsLoad() || op.IsStore() || op.IsAtomic()) {
			return false
		}
		// Mutually exclusive categories.
		n := 0
		for _, b := range []bool{op.IsLoad(), op.IsStore(), op.IsAtomic(), op.IsBranch(), op.IsSlice()} {
			if b {
				n++
			}
		}
		if n > 1 {
			return false
		}
		// Memory ops have a size; others don't.
		if op.IsMem() != (op.MemSize() > 0) {
			return false
		}
		// Control and stores have no destination; loads and atomics do.
		if (op.IsLoad() || op.IsAtomic()) && !op.HasDst() {
			return false
		}
		if (op.IsStore() || op.IsControl() || op.IsSlice()) && op.HasDst() {
			return false
		}
		// Every op has a name and a class with positive latency.
		if op.String() == "" || op.Class().Latency() < 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestClassLatencies(t *testing.T) {
	if ClassIntAlu.Latency() != 1 {
		t.Errorf("alu latency %d", ClassIntAlu.Latency())
	}
	if ClassIntDiv.Latency() <= ClassIntMul.Latency() {
		t.Errorf("div should be slower than mul")
	}
	if ClassFpDiv.Latency() <= ClassFp.Latency() {
		t.Errorf("fdiv should be slower than fp")
	}
}

func TestValidate(t *testing.T) {
	ok := &Program{Name: "ok", Code: []Inst{
		{Op: SliceStart},
		{Op: Add, Dst: 1, Src1: 2, Src2: 3},
		{Op: SliceEnd},
		{Op: SliceFence},
		{Op: Halt},
	}}
	if err := Validate(ok); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}

	bad := []struct {
		name string
		code []Inst
	}{
		{"empty", nil},
		{"no halt", []Inst{{Op: Add}}},
		{"branch out of range", []Inst{{Op: Beq, Imm: 5}, {Op: Halt}}},
		{"nested slice", []Inst{{Op: SliceStart}, {Op: SliceStart}, {Op: SliceEnd}, {Op: Halt}}},
		{"unmatched end", []Inst{{Op: SliceEnd}, {Op: Halt}}},
		{"fence in slice", []Inst{{Op: SliceStart}, {Op: SliceFence}, {Op: SliceEnd}, {Op: Halt}}},
		{"unterminated slice", []Inst{{Op: SliceStart}, {Op: Halt}}},
		{"reduce on branch", []Inst{{Op: Beq, Imm: 0, Flags: FlagReduce}, {Op: Halt}}},
		{"bad reg", []Inst{{Op: Add, Dst: 40}, {Op: Halt}}},
	}
	for _, b := range bad {
		p := &Program{Name: b.name, Code: b.code}
		if err := Validate(p); err == nil {
			t.Errorf("%s: invalid program accepted", b.name)
		}
	}
}

func TestInstString(t *testing.T) {
	in := Inst{Op: Add, Dst: 1, Src1: 2, Src2: 3}
	if in.String() == "" {
		t.Fatal("empty String()")
	}
	r := Inst{Op: Add, Dst: 1, Src1: 1, Src2: 2, Flags: FlagReduce}
	if !r.Reduce() {
		t.Fatal("reduce flag lost")
	}
	if got := r.String(); got[:7] != "reduce." {
		t.Fatalf("reduce prefix missing: %q", got)
	}
}

func TestLabelAt(t *testing.T) {
	p := &Program{Name: "x", Labels: map[string]int{"loop": 3}}
	if p.LabelAt(3) != "loop" {
		t.Fatal("LabelAt(3)")
	}
	if p.LabelAt(0) != "" {
		t.Fatal("LabelAt(0) should be empty")
	}
}
