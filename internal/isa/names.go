package isa

var opByName = func() map[string]Op {
	m := make(map[string]Op, numOps)
	for op, name := range opNames {
		if name != "" {
			m[name] = Op(op)
		}
	}
	return m
}()

// OpByName maps a mnemonic (the Op.String form) back to its Op value.
// Used by serialized program formats (fuzz repro files).
func OpByName(name string) (Op, bool) {
	op, ok := opByName[name]
	return op, ok
}
