// Package isa defines the virtual instruction set executed by the
// functional emulator and timed by the out-of-order core model.
//
// The ISA is a small, RISC-like, 64-bit register machine extended with the
// three slice instructions from the paper (slice_start, slice_end,
// slice_fence), a reduce prefix flag for commutative reduction updates that
// must execute non-speculatively at the head of the ROB, and a barrier
// instruction used by multicore (OpenMP-style) workloads.
//
// Instructions are held as structs rather than packed words: the simulator
// is the only consumer, and struct encoding keeps the emulator and the
// pipeline model simple and fast.
package isa

import "fmt"

// Reg names an architectural register. R0 is hardwired to zero: reads
// return 0 and writes are discarded, as in MIPS/RISC-V.
type Reg uint8

// NumRegs is the architectural register count.
const NumRegs = 32

// R0 is the hardwired zero register.
const R0 Reg = 0

func (r Reg) String() string { return fmt.Sprintf("r%d", uint8(r)) }

// Op enumerates the operations of the virtual ISA.
type Op uint8

// Operations. Arithmetic is 64-bit; signed ops interpret register bits as
// two's complement int64. Float ops interpret register bits as IEEE-754
// float64. Memory addresses are byte addresses into the flat data memory.
const (
	Nop Op = iota

	// Integer register-register.
	Add // Dst = Src1 + Src2
	Sub // Dst = Src1 - Src2
	Mul // Dst = Src1 * Src2
	Div // Dst = int64(Src1) / int64(Src2); x/0 = 0
	Rem // Dst = int64(Src1) % int64(Src2); x%0 = x
	And // Dst = Src1 & Src2
	Or  // Dst = Src1 | Src2
	Xor // Dst = Src1 ^ Src2
	Shl // Dst = Src1 << (Src2 & 63)
	Shr // Dst = Src1 >> (Src2 & 63), logical
	Sra // Dst = int64(Src1) >> (Src2 & 63), arithmetic
	Min // Dst = min(int64(Src1), int64(Src2))
	Max // Dst = max(int64(Src1), int64(Src2))

	// Integer register-immediate.
	AddI // Dst = Src1 + Imm
	AndI // Dst = Src1 & Imm
	OrI  // Dst = Src1 | Imm
	XorI // Dst = Src1 ^ Imm
	ShlI // Dst = Src1 << (Imm & 63)
	ShrI // Dst = Src1 >> (Imm & 63), logical
	MulI // Dst = Src1 * Imm

	// Data movement.
	Li  // Dst = Imm (full 64-bit immediate)
	Mov // Dst = Src1

	// Floating point (register bits as float64).
	FAdd  // Dst = Src1 + Src2
	FSub  // Dst = Src1 - Src2
	FMul  // Dst = Src1 * Src2
	FDiv  // Dst = Src1 / Src2
	FAbs  // Dst = |Src1|
	FMax  // Dst = max(Src1, Src2)
	CvtIF // Dst = float64(int64(Src1))
	CvtFI // Dst = int64(float64bits(Src1))

	// Memory. Effective address: base Src1 + Imm for plain forms,
	// Src1 + (Src2 << Imm) for indexed forms. Stores read the value
	// from Val. 32-bit loads zero-extend.
	Ld64
	Ld32
	St64
	St32
	LdX64
	LdX32
	StX64
	StX32

	// Atomic fetch-and-add to memory (the x86 `lock xadd` the GAP
	// kernels rely on). Dst receives the old value; the memory word is
	// incremented by Val's register value. Address forms mirror the
	// plain/indexed load forms.
	AAdd64
	AAdd32
	AAddX64
	AAddX32

	// Atomic unsigned-min to memory (the CAS-min loops GAP kernels use
	// for depth/distance/label updates). Dst receives the old value.
	AMin64
	AMin32
	AMinX64
	AMinX32

	// Control. Conditional branches compare Src1 with Src2 and jump to
	// the absolute code index Imm when the condition holds; otherwise
	// fall through. Jmp is unconditional.
	Beq
	Bne
	Blt  // signed <
	Bge  // signed >=
	Bltu // unsigned <
	Bgeu // unsigned >=
	Bflt // float <
	Bfge // float >=
	Jmp

	// Slice annotations (paper §4.1). Encodable as no-ops on cores
	// without selective-flush support; they carry no operands.
	SliceStart
	SliceEnd
	SliceFence

	// Barrier synchronizes all cores of a multicore run (OpenMP-style
	// implicit barrier). Single-core runs treat it as a no-op.
	Barrier

	// Halt ends the program.
	Halt

	numOps // sentinel
)

var opNames = [numOps]string{
	Nop: "nop",
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Rem: "rem",
	And: "and", Or: "or", Xor: "xor", Shl: "shl", Shr: "shr", Sra: "sra",
	Min: "min", Max: "max",
	AddI: "addi", AndI: "andi", OrI: "ori", XorI: "xori",
	ShlI: "shli", ShrI: "shri", MulI: "muli",
	Li: "li", Mov: "mov",
	FAdd: "fadd", FSub: "fsub", FMul: "fmul", FDiv: "fdiv",
	FAbs: "fabs", FMax: "fmax", CvtIF: "cvtif", CvtFI: "cvtfi",
	Ld64: "ld64", Ld32: "ld32", St64: "st64", St32: "st32",
	LdX64: "ldx64", LdX32: "ldx32", StX64: "stx64", StX32: "stx32",
	AAdd64: "aadd64", AAdd32: "aadd32", AAddX64: "aaddx64", AAddX32: "aaddx32",
	AMin64: "amin64", AMin32: "amin32", AMinX64: "aminx64", AMinX32: "aminx32",
	Beq: "beq", Bne: "bne", Blt: "blt", Bge: "bge",
	Bltu: "bltu", Bgeu: "bgeu", Bflt: "bflt", Bfge: "bfge",
	Jmp:        "jmp",
	SliceStart: "slice_start", SliceEnd: "slice_end", SliceFence: "slice_fence",
	Barrier: "barrier",
	Halt:    "halt",
}

func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Flag is a bit set of instruction modifiers.
type Flag uint8

// FlagReduce marks a commutative reduction update (paper §4.5). Under the
// selective-flush mechanism the instruction is not renamed and executes
// only when it reaches the head of the ROB.
const FlagReduce Flag = 1 << 0

// Inst is one static instruction.
type Inst struct {
	Op    Op
	Dst   Reg
	Src1  Reg
	Src2  Reg
	Val   Reg   // store data register (St*/StX* only)
	Imm   int64 // immediate, address offset, shift scale, or branch target
	Flags Flag
}

// Reduce reports whether the instruction carries the reduce prefix.
func (in Inst) Reduce() bool { return in.Flags&FlagReduce != 0 }

func (in Inst) String() string {
	pfx := ""
	if in.Reduce() {
		pfx = "reduce."
	}
	switch {
	case in.Op.IsBranch():
		return fmt.Sprintf("%s%s %s, %s, @%d", pfx, in.Op, in.Src1, in.Src2, in.Imm)
	case in.Op == Jmp:
		return fmt.Sprintf("jmp @%d", in.Imm)
	case in.Op.IsStore():
		return fmt.Sprintf("%s%s [%s+%s<<%d], %s", pfx, in.Op, in.Src1, in.Src2, in.Imm, in.Val)
	case in.Op.IsLoad():
		return fmt.Sprintf("%s%s %s, [%s+%s<<%d]", pfx, in.Op, in.Dst, in.Src1, in.Src2, in.Imm)
	case in.Op == Li:
		return fmt.Sprintf("li %s, %d", in.Dst, in.Imm)
	default:
		return fmt.Sprintf("%s%s %s, %s, %s, imm=%d", pfx, in.Op, in.Dst, in.Src1, in.Src2, in.Imm)
	}
}

// IsBranch reports whether op is a conditional branch.
func (op Op) IsBranch() bool { return op >= Beq && op <= Bfge }

// IsControl reports whether op redirects the PC (branch or jump).
func (op Op) IsControl() bool { return op.IsBranch() || op == Jmp }

// IsLoad reports whether op reads data memory.
func (op Op) IsLoad() bool {
	return op == Ld64 || op == Ld32 || op == LdX64 || op == LdX32
}

// IsStore reports whether op writes data memory.
func (op Op) IsStore() bool {
	return op == St64 || op == St32 || op == StX64 || op == StX32
}

// IsAtomic reports whether op is an atomic read-modify-write.
func (op Op) IsAtomic() bool {
	switch op {
	case AAdd64, AAdd32, AAddX64, AAddX32, AMin64, AMin32, AMinX64, AMinX32:
		return true
	}
	return false
}

// IsMem reports whether op accesses data memory.
func (op Op) IsMem() bool { return op.IsLoad() || op.IsStore() || op.IsAtomic() }

// IsSlice reports whether op is one of the three slice annotations.
func (op Op) IsSlice() bool {
	return op == SliceStart || op == SliceEnd || op == SliceFence
}

// MemSize returns the access width in bytes for memory ops, else 0.
func (op Op) MemSize() int {
	switch op {
	case Ld64, St64, LdX64, StX64, AAdd64, AAddX64, AMin64, AMinX64:
		return 8
	case Ld32, St32, LdX32, StX32, AAdd32, AAddX32, AMin32, AMinX32:
		return 4
	}
	return 0
}

// Indexed reports whether a memory op uses the scaled-index address form.
func (op Op) Indexed() bool {
	switch op {
	case LdX64, LdX32, StX64, StX32, AAddX64, AAddX32, AMinX64, AMinX32:
		return true
	}
	return false
}

// HasDst reports whether the instruction writes a destination register.
func (op Op) HasDst() bool {
	switch {
	case op.IsStore(), op.IsBranch(), op == Jmp, op.IsSlice(),
		op == Nop, op == Barrier, op == Halt:
		return false
	}
	return true
}

// Class buckets operations for execution-latency and port modeling.
type Class uint8

// Execution classes.
const (
	ClassNop Class = iota
	ClassIntAlu
	ClassIntMul
	ClassIntDiv
	ClassFp
	ClassFpDiv
	ClassLoad
	ClassStore
	ClassAtomic
	ClassBranch
	ClassSlice
	ClassBarrier
	ClassHalt
)

var classNames = map[Class]string{
	ClassNop: "nop", ClassIntAlu: "alu", ClassIntMul: "mul",
	ClassIntDiv: "div", ClassFp: "fp", ClassFpDiv: "fpdiv",
	ClassLoad: "load", ClassStore: "store", ClassAtomic: "atomic", ClassBranch: "branch",
	ClassSlice: "slice", ClassBarrier: "barrier", ClassHalt: "halt",
}

func (c Class) String() string { return classNames[c] }

// Class returns the execution class of op.
func (op Op) Class() Class {
	switch {
	case op == Nop:
		return ClassNop
	case op == Mul || op == MulI:
		return ClassIntMul
	case op == Div || op == Rem:
		return ClassIntDiv
	case op == FDiv:
		return ClassFpDiv
	case op >= FAdd && op <= CvtFI:
		return ClassFp
	case op.IsLoad():
		return ClassLoad
	case op.IsStore():
		return ClassStore
	case op.IsAtomic():
		return ClassAtomic
	case op.IsControl():
		return ClassBranch
	case op.IsSlice():
		return ClassSlice
	case op == Barrier:
		return ClassBarrier
	case op == Halt:
		return ClassHalt
	}
	return ClassIntAlu
}

// Latency returns the execution latency in cycles for non-memory classes.
// Loads and stores are timed by the cache model.
func (c Class) Latency() int {
	switch c {
	case ClassIntMul:
		return 3
	case ClassIntDiv:
		return 20
	case ClassFp:
		return 4
	case ClassFpDiv:
		return 12
	default:
		return 1
	}
}

// Program is a static program: straight code plus metadata. Data memory is
// provided separately by the workload (see internal/emu.Machine).
type Program struct {
	Name   string
	Code   []Inst
	Labels map[string]int // label -> code index, for diagnostics
}

// LabelAt returns the label defined exactly at code index pc, if any.
func (p *Program) LabelAt(pc int) string {
	for name, at := range p.Labels {
		if at == pc {
			return name
		}
	}
	return ""
}
