package uncore

import "testing"

func TestBuildScalesWithCores(t *testing.T) {
	cfg := Config{
		Cores: 1, LLCPerCore: 64 << 10, LLCWays: 8, LLCLatency: 20,
		MeshHopLatency: 2, MemLatency: 100, MemBytesPerCycle: 8,
	}
	llc1, mem1 := Build(cfg)
	cfg.Cores = 16
	cfg.MemBytesPerCycle = 8 * 16
	llc16, mem16 := Build(cfg)

	if llc1 == nil || mem1 == nil || llc16 == nil || mem16 == nil {
		t.Fatal("nil components")
	}
	if llc16.Config().SizeBytes != 16*llc1.Config().SizeBytes {
		t.Fatalf("LLC did not scale: %d vs %d",
			llc16.Config().SizeBytes, llc1.Config().SizeBytes)
	}
	// A bigger mesh means more hop latency.
	if llc16.Config().ExtraLatency <= llc1.Config().ExtraLatency {
		t.Fatalf("mesh latency did not grow: %d vs %d",
			llc16.Config().ExtraLatency, llc1.Config().ExtraLatency)
	}
	// And more bandwidth means a smaller per-line cost.
	if mem16.CyclesPerLine >= mem1.CyclesPerLine {
		t.Fatal("bandwidth did not scale")
	}
}

func TestBuildDefaults(t *testing.T) {
	llc, mem := Build(Config{LLCPerCore: 32 << 10, MemLatency: 50})
	if llc == nil || mem == nil {
		t.Fatal("zero-core config not clamped")
	}
	if done := mem.Access(0, 0, false, false); done < 50 {
		t.Fatalf("latency %d", done)
	}
}
