// Package uncore models the shared part of the chip: the NUCA last-level
// cache reached over a mesh network-on-chip, and the DRAM controllers with
// their shared bandwidth (paper Table 1: 1.375 MB/core NUCA LLC, mesh NoC,
// 50 ns memory latency, 115.2 GB/s bandwidth, 28 cores).
package uncore

import (
	"math"

	"repro/internal/cache"
)

// Config describes the shared uncore.
type Config struct {
	// Cores sharing the LLC and memory bandwidth.
	Cores int
	// LLCPerCore is the LLC capacity contributed per core, in bytes
	// (the paper scales shared resources with core count, §5.2).
	LLCPerCore int
	LLCWays    int
	// LLCLatency is the LLC bank access latency in cycles.
	LLCLatency int
	// MeshHopLatency is the per-hop NoC latency in cycles; the average
	// hop count grows with the mesh diameter (√cores).
	MeshHopLatency int
	// MemLatency is the DRAM latency in core cycles.
	MemLatency int
	// MemBytesPerCycle is the total DRAM bandwidth shared by all cores,
	// in bytes per core cycle.
	MemBytesPerCycle float64
	// LLCMSHRs bounds outstanding LLC misses (0 = unlimited).
	LLCMSHRs int
}

// Build constructs the shared LLC and memory. Every core's private
// hierarchy should be stacked on the returned LLC.
func Build(cfg Config) (*cache.Cache, *cache.Memory) {
	if cfg.Cores < 1 {
		cfg.Cores = 1
	}
	mem := cache.NewMemory(cfg.MemLatency, cfg.MemBytesPerCycle, 64)
	hops := int(math.Round(math.Sqrt(float64(cfg.Cores))))
	llc := cache.New(cache.Config{
		Name:         "llc",
		SizeBytes:    cfg.LLCPerCore * cfg.Cores,
		Ways:         cfg.LLCWays,
		HitLatency:   cfg.LLCLatency,
		ExtraLatency: cfg.MeshHopLatency * hops,
		MSHRs:        cfg.LLCMSHRs,
	}, mem)
	return llc, mem
}
