package trace

import (
	"bytes"
	"context"
	"reflect"
	"testing"
)

// TestBatchViewsMatchSerial fans one trace out to three views stepped at
// deliberately skewed paces and requires each view's stream, final memory
// image, and terminal observations to be byte-identical to a serial
// replay.
func TestBatchViewsMatchSerial(t *testing.T) {
	prog, img := buildSliced(200, 11)
	tr, err := Capture(context.Background(), prog, append([]byte(nil), img...))
	if err != nil {
		t.Fatal(err)
	}

	serialMem := append([]byte(nil), img...)
	serial, err := NewReplay(tr, prog, serialMem)
	if err != nil {
		t.Fatal(err)
	}
	var want []struct {
		d   [3]uint64 // seq, pc, nextpc — cheap spot fields
		all interface{}
	}
	for !serial.Halted() {
		d, err := serial.Step()
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, struct {
			d   [3]uint64
			all interface{}
		}{[3]uint64{d.Seq, uint64(d.PC), uint64(d.NextPC)}, d})
	}

	b, err := NewBatch(tr, prog)
	if err != nil {
		t.Fatal(err)
	}
	mems := make([][]byte, 3)
	views := make([]*Replay, 3)
	for i := range views {
		mems[i] = append([]byte(nil), img...)
		views[i] = b.NewView(mems[i])
	}
	// Skewed lockstep: view 0 advances 3 records per round, view 1 two,
	// view 2 one — so the ring serves a window, not a single cursor.
	pos := make([]int, 3)
	for pos[0] < len(want) || pos[1] < len(want) || pos[2] < len(want) {
		for i, stride := range []int{3, 2, 1} {
			for s := 0; s < stride && pos[i] < len(want); s++ {
				d, err := views[i].Step()
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(interface{}(d), want[pos[i]].all) {
					t.Fatalf("view %d record %d diverges from serial:\n  batch  %+v\n  serial %+v",
						i, pos[i], d, want[pos[i]].all)
				}
				pos[i]++
			}
		}
	}
	for i, v := range views {
		if !v.Halted() || !v.Done() {
			t.Fatalf("view %d not finished (halted=%v done=%v)", i, v.Halted(), v.Done())
		}
		if _, err := v.Step(); err == nil {
			t.Fatalf("view %d: Step after halt should error", i)
		}
		if !bytes.Equal(mems[i], serialMem) {
			t.Fatalf("view %d final memory diverges from serial replay", i)
		}
	}
}

// TestBatchWindowConcurrentViews pins the windowed-barrier case: over a
// trace longer than batchWindow, a full-speed view must block until a
// laggard (stepped one record at a time from another goroutine) drags the
// window's tail forward, and both must still replay byte-identically to a
// serial replay. Completion of the fast goroutine is itself the liveness
// assertion — with a trace this long it cannot finish without waiting on
// the laggard's published cursor.
func TestBatchWindowConcurrentViews(t *testing.T) {
	prog, img := buildSliced(3000, 13)
	tr, err := Capture(context.Background(), prog, append([]byte(nil), img...))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() <= batchWindow {
		t.Fatalf("trace too short (%d records) to exercise the ring window", tr.Len())
	}

	b, err := NewBatch(tr, prog)
	if err != nil {
		t.Fatal(err)
	}
	memA := append([]byte(nil), img...)
	memB := append([]byte(nil), img...)
	va := b.NewView(memA)
	vb := b.NewView(memB)

	fastErr := make(chan error, 1)
	go func() {
		for !va.Halted() {
			if _, err := va.Step(); err != nil {
				fastErr <- err
				return
			}
		}
		fastErr <- nil
	}()

	serialMem := append([]byte(nil), img...)
	serial, err := NewReplay(tr, prog, serialMem)
	if err != nil {
		t.Fatal(err)
	}
	for !vb.Halted() {
		got, err := vb.Step()
		if err != nil {
			t.Fatal(err)
		}
		wantD, err := serial.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, wantD) {
			t.Fatalf("laggard record %d diverges from serial", wantD.Seq)
		}
	}
	if err := <-fastErr; err != nil {
		t.Fatal(err)
	}
	if len(b.ring) != batchRingSize {
		t.Fatalf("ring resized to %d records; it is a fixed window", len(b.ring))
	}
	if !bytes.Equal(memA, memB) || !bytes.Equal(memA, serialMem) {
		t.Fatal("final memory images diverge")
	}
}

// TestBatchDropUnblocksWindow: dropping a stalled view removes it from
// the window bound, so the survivor can consume a longer-than-window
// stream alone — without the drop this loop would block forever waiting
// for the stalled view's cursor.
func TestBatchDropUnblocksWindow(t *testing.T) {
	prog, img := buildSliced(3000, 17)
	tr, err := Capture(context.Background(), prog, append([]byte(nil), img...))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() <= batchWindow {
		t.Fatalf("trace too short (%d records) to exercise the ring window", tr.Len())
	}
	b, err := NewBatch(tr, prog)
	if err != nil {
		t.Fatal(err)
	}
	va := b.NewView(append([]byte(nil), img...))
	vb := b.NewView(append([]byte(nil), img...))
	b.Drop(vb)
	for !va.Halted() {
		if _, err := va.Step(); err != nil {
			t.Fatal(err)
		}
	}
	_ = vb
}
