package trace

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"repro/internal/emu"
	"repro/internal/graph"
	"repro/internal/isa"
	"repro/internal/program"
)

// buildSliced assembles a small sliced loop exercising every record
// class: plain and indexed loads/stores, an atomic reduction, data-
// dependent branches inside the slice, and the slice markers themselves.
func buildSliced(n int, seed uint64) (*isa.Program, []byte) {
	rng := graph.NewRNG(seed)
	a := make([]uint32, n)
	for i := range a {
		a[i] = uint32(rng.Next())
	}
	l := program.NewLayout()
	aBase := l.AllocU32(n, a)
	bBase := l.AllocU32(n, nil)
	cntBase := l.AllocU32(1, nil)

	b := program.NewBuilder("tracetest")
	rI, rN, rA, rB, rC := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	rX, rT, rY, rOne, rOld := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.Li(rI, 0)
	b.Li(rN, int64(n))
	b.Li(rA, int64(aBase))
	b.Li(rB, int64(bBase))
	b.Li(rC, int64(cntBase))
	b.Li(rOne, 1)
	b.Label("loop")
	b.Bge(rI, rN, "done")
	b.SliceStart(true)
	b.LdX32(rX, rA, rI, 2)
	b.AndI(rT, rX, 1)
	b.Beq(rT, isa.R0, "even")
	b.MulI(rY, rX, 3)
	b.StX32(rB, rI, 2, rY)
	b.AAdd32(rOld, rC, 0, rOne) // count odds with an atomic
	b.Jmp("endif")
	b.Label("even")
	b.AddI(rY, rX, 7)
	b.StX32(rB, rI, 2, rY)
	b.Label("endif")
	b.SliceEnd(true)
	b.AddI(rI, rI, 1)
	b.Jmp("loop")
	b.Label("done")
	b.SliceFence(true)
	b.Halt()
	return b.Build(), l.Image()
}

// TestReplayMatchesMachine steps a live machine and a replay of its own
// capture in lockstep and requires identical DynInst streams, identical
// NextPC/Halted observations, and identical final memory.
func TestReplayMatchesMachine(t *testing.T) {
	prog, img := buildSliced(300, 7)

	capMem := append([]byte(nil), img...)
	tr, err := Capture(context.Background(), prog, capMem)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 || tr.ID() == "" {
		t.Fatalf("empty trace: len=%d id=%q", tr.Len(), tr.ID())
	}

	liveMem := append([]byte(nil), img...)
	m := emu.New(prog, liveMem)
	repMem := append([]byte(nil), img...)
	r, err := NewReplay(tr, prog, repMem)
	if err != nil {
		t.Fatal(err)
	}

	for !m.Halted {
		if r.NextPC() != m.PC {
			t.Fatalf("NextPC diverges: replay %d, machine %d", r.NextPC(), m.PC)
		}
		want, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("record %d diverges:\n  replay  %+v\n  machine %+v", want.Seq, got, want)
		}
	}
	if !r.Halted() || !r.Done() {
		t.Fatalf("machine halted but replay is not (halted=%v done=%v)", r.Halted(), r.Done())
	}
	if _, err := r.Step(); err == nil {
		t.Fatal("Step after halt should error")
	}
	if !bytes.Equal(repMem, liveMem) || !bytes.Equal(repMem, capMem) {
		t.Fatal("replayed memory image diverges from live execution")
	}
}

// TestReplayRunToSliceEndAndFork drives machine and replay to the same
// in-slice branch, runs both ahead to the slice end, and forks wrong-path
// engines from both — the selective-flush recovery sequence — requiring
// identical segments and identical wrong-path streams.
func TestReplayRunToSliceEndAndFork(t *testing.T) {
	prog, img := buildSliced(100, 9)
	tr, err := Capture(context.Background(), prog, append([]byte(nil), img...))
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(prog, append([]byte(nil), img...))
	r, err := NewReplay(tr, prog, append([]byte(nil), img...))
	if err != nil {
		t.Fatal(err)
	}

	forks := 0
	for !m.Halted {
		want, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("record %d diverges", want.Seq)
		}
		if !want.IsBranch() || !want.InSlice {
			continue
		}
		// Pretend the branch mispredicted: run to the slice end on both
		// sources, then fork wrong-path engines at the not-taken target.
		wantSeg, err := emu.AsFrontend(m).RunToSliceEnd(nil)
		if err != nil {
			t.Fatal(err)
		}
		gotSeg, err := r.RunToSliceEnd(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotSeg, wantSeg) {
			t.Fatalf("slice segment diverges at branch #%d", want.Seq)
		}
		wrongPC := want.PC + 1
		if !want.Taken {
			wrongPC = int(want.Inst.Imm)
		}
		dir := func(pc int, in isa.Inst, actual bool) bool { return actual }
		ws := emu.AsFrontend(m).Fork(wrongPC, true, want.SliceID)
		gs := r.Fork(wrongPC, true, want.SliceID)
		for i := 0; i < 50; i++ {
			wd, wok := ws.Step(dir)
			gd, gok := gs.Step(dir)
			if wok != gok || !reflect.DeepEqual(gd, wd) {
				t.Fatalf("wrong-path record %d diverges after branch #%d", i, want.Seq)
			}
			if !wok {
				break
			}
		}
		forks++
	}
	if forks == 0 {
		t.Fatal("test never exercised an in-slice branch")
	}
}

// TestTraceContentAddress pins digest behavior: identical executions hash
// identically, different inputs differently.
func TestTraceContentAddress(t *testing.T) {
	prog, img := buildSliced(50, 3)
	t1, err := Capture(context.Background(), prog, append([]byte(nil), img...))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Capture(context.Background(), prog, append([]byte(nil), img...))
	if err != nil {
		t.Fatal(err)
	}
	if t1.ID() != t2.ID() {
		t.Fatalf("same execution, different IDs: %s vs %s", t1.ID(), t2.ID())
	}
	prog3, img3 := buildSliced(50, 4)
	t3, err := Capture(context.Background(), prog3, append([]byte(nil), img3...))
	if err != nil {
		t.Fatal(err)
	}
	if t3.ID() == t1.ID() {
		t.Fatal("different inputs, same trace ID")
	}
}

// TestReplayRejectsWrongProgram checks the cheap identity guard.
func TestReplayRejectsWrongProgram(t *testing.T) {
	prog, img := buildSliced(20, 1)
	tr, err := Capture(context.Background(), prog, append([]byte(nil), img...))
	if err != nil {
		t.Fatal(err)
	}
	other := &isa.Program{Name: "other", Code: prog.Code}
	if _, err := NewReplay(tr, other, img); err == nil {
		t.Fatal("NewReplay accepted a mismatched program")
	}
}

// TestCaptureCanceled checks the capture pass honors cancellation.
func TestCaptureCanceled(t *testing.T) {
	prog, img := buildSliced(100, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Capture(ctx, prog, img); err == nil {
		t.Fatal("capture with canceled context succeeded")
	}
}
