package trace

import (
	"fmt"
	"sync"

	"repro/internal/emu"
	"repro/internal/isa"
)

// Batch decodes each trace record exactly once — PC/flags/vals/addrs
// cursor advance, branch/slice/next-PC reconstruction — into a shared
// ring of immutable records, and fans the stream out to any number of
// per-config Replay views. A view keeps its own memory image, register
// file and stream cursor (architectural effects are per-view: each timing
// config's wrong paths fork from that view's state), but the decode work
// and the DynInst construction are shared across all of them.
//
// Views step concurrently, one goroutine each (sim.RunBatch). The ring is
// a fixed-size window: a view that outruns the slowest live view by more
// than batchWindow records blocks until the stream's tail catches up, so
// the ring never grows and stays hot in cache. Coordination is kept off
// the per-record fast path: each view publishes its cursor under the
// batch mutex only every batchPubChunk records (or when it needs records
// decoded), reads of already-decoded records are lock-free, and the
// publication points establish the happens-before edges that make both
// the lock-free reads and the ring-slot reuse sound — a slot is rewritten
// only when every view's published cursor (a lower bound on its real
// cursor, refreshed at least every batchPubChunk records) has passed it
// by a full window.
type Batch struct {
	tr   *Trace
	prog *isa.Program

	mu   sync.Mutex
	cond sync.Cond

	ring []batchRec
	mask int
	next int // next record index to decode
	low  int // cached lower bound over the views' published cursors

	vi, ai  int // decode cursors into the dense vals/addrs streams
	inSlice bool
	sliceID uint64

	views map[*Replay]int // published stream cursor per live view
}

// batchRec is one decoded record: the DynInst every view returns, plus
// the destination value the view applies to its own register file.
type batchRec struct {
	d   emu.DynInst
	val uint64
	fl  uint8
}

const (
	// batchRingSize is the ring capacity in records; batchWindow (half of
	// it) is how far the decode head may run past the slowest view. The
	// gap between them absorbs publication staleness: a view's published
	// cursor lags its real cursor by at most batchPubChunk records, and
	// batchWindow+batchPubChunk < batchRingSize keeps reuse safe.
	batchRingSize = 1 << 15
	batchWindow   = 1 << 14
	// batchPubChunk is how often (in records consumed) a view publishes
	// its cursor when it has no other reason to take the batch lock.
	batchPubChunk = 1 << 12
	// batchDecodeAhead is how far past its own cursor a decoding view
	// runs the shared decode head per sync. Without it the front view —
	// whose cursor is always at the head — would take the batch lock once
	// per record; with it, once per chunk.
	batchDecodeAhead = 1 << 10
)

// NewBatch builds a shared decoder over tr for prog (the program the
// trace was captured from, checked like NewReplay).
func NewBatch(tr *Trace, prog *isa.Program) (*Batch, error) {
	if prog.Name != tr.progName || len(prog.Code) != tr.progLen {
		return nil, fmt.Errorf("trace: batching %s (%d insts) with trace of %s (%d insts)",
			prog.Name, len(prog.Code), tr.progName, tr.progLen)
	}
	b := &Batch{
		tr:    tr,
		prog:  prog,
		ring:  make([]batchRec, batchRingSize),
		mask:  batchRingSize - 1,
		views: make(map[*Replay]int),
	}
	b.cond.L = &b.mu
	return b, nil
}

// NewView adds a replay view over the shared ring. mem is the view's own
// initial memory image (each timing config mutates its own copy). Views
// must be created before any of them steps.
func (b *Batch) NewView(mem []byte) *Replay {
	r := &Replay{tr: b.tr, prog: b.prog, mem: mem, batch: b, segs: b.tr.segs.Load()}
	if len(b.tr.pcs) > 0 {
		r.nextPC = int(b.tr.pcs[0])
	}
	b.mu.Lock()
	b.views[r] = 0
	b.mu.Unlock()
	return r
}

// Drop detaches a view (finished or failed) so it no longer bounds the
// ring's reuse window; waiters blocked on its progress are woken.
func (b *Batch) Drop(r *Replay) {
	b.mu.Lock()
	delete(b.views, r)
	b.cond.Broadcast()
	b.mu.Unlock()
}

// Cur returns the view's stream cursor (records consumed).
func (r *Replay) Cur() int { return r.cur }

// minPubLocked recomputes the lower bound over published cursors. With no
// live views the decode head bounds itself.
func (b *Batch) minPubLocked() int {
	m := b.next
	for _, c := range b.views {
		if c < m {
			m = c
		}
	}
	return m
}

// publish records the view's cursor under the lock and wakes any view
// waiting for the window's tail to advance.
func (r *Replay) publish() {
	b := r.batch
	b.mu.Lock()
	b.views[r] = r.cur
	r.pubCur = r.cur
	b.cond.Broadcast()
	b.mu.Unlock()
}

// syncBatch publishes the view's cursor and ensures record r.cur is
// decoded, blocking while decoding would overwrite a slot a slower live
// view may still read. On return r.decoded covers r.cur, so subsequent
// steps read the ring lock-free until the next sync point.
//
// The slowest live view never blocks here: its records are either already
// decoded, or the window bound is measured against (at worst) its own
// just-published cursor.
func (r *Replay) syncBatch() error {
	b := r.batch
	b.mu.Lock()
	defer b.mu.Unlock()
	b.views[r] = r.cur
	r.pubCur = r.cur
	b.cond.Broadcast()
	// Decode past r.cur by a whole chunk so the front view amortizes its
	// lock acquisitions; waiting on the window is only allowed while the
	// view's own record is still missing (the decode-ahead tail is
	// opportunistic, never worth blocking for).
	ahead := r.cur + batchDecodeAhead
	if n := len(b.tr.pcs); ahead > n {
		ahead = n // callers never sync with cur at or past the end
	}
	for b.next < ahead {
		if b.next-b.low >= batchWindow {
			b.low = b.minPubLocked()
			if b.next-b.low >= batchWindow {
				if b.next > r.cur {
					break
				}
				// Another view may decode our records while we wait, so
				// re-evaluate the loop condition from scratch on wake.
				b.cond.Wait()
				continue
			}
		}
		if err := b.decodeOne(); err != nil {
			return err
		}
	}
	r.decoded = b.next
	return nil
}

// decodeOne advances the shared decode cursor by one record, mirroring
// Replay.Step's reconstruction exactly (Seq, Taken, Addr, slice context,
// next-PC) minus the per-view architectural effects. Caller holds b.mu
// and has established that the target slot is reusable.
func (b *Batch) decodeOne() error {
	cur := b.next
	if cur >= len(b.tr.pcs) {
		return fmt.Errorf("trace: %s: batch decode past end of stream (record %d)",
			b.prog.Name, cur)
	}
	pc := int(b.tr.pcs[cur])
	fl := b.tr.flags[cur]
	in := b.prog.Code[pc]
	d := emu.DynInst{
		Seq:     uint64(cur),
		PC:      pc,
		Inst:    in,
		Taken:   fl&flagTaken != 0,
		InSlice: b.inSlice,
		SliceID: b.sliceID,
	}
	if fl&flagAddr != 0 {
		d.Addr = b.tr.addrs[b.ai]
		b.ai++
	}
	var val uint64
	if fl&flagVal != 0 {
		val = b.tr.vals[b.vi]
		b.vi++
	}
	next := pc + 1
	switch in.Op {
	case isa.Jmp:
		next = int(in.Imm)
	case isa.SliceStart:
		b.inSlice = true
		b.sliceID++
		d.SliceID = b.sliceID
	case isa.SliceEnd:
		b.inSlice = false
	}
	if in.Op.IsBranch() && d.Taken {
		next = int(in.Imm)
	}
	d.NextPC = next
	b.ring[cur&b.mask] = batchRec{d: d, val: val, fl: fl}
	b.next++
	return nil
}

// batchStep is Replay.Step for a batch view: the decoded record comes
// from the shared ring; only the view's own architectural state (memory
// image, register file, slice context, halt) is advanced here.
func (r *Replay) batchStep() (emu.DynInst, error) {
	if r.halted {
		return emu.DynInst{}, fmt.Errorf("%s: step after halt", r.prog.Name)
	}
	if r.cur >= len(r.tr.pcs) {
		return emu.DynInst{}, fmt.Errorf("trace: %s: stream exhausted without halt at record %d",
			r.prog.Name, r.cur)
	}
	if r.cur >= r.decoded {
		if err := r.syncBatch(); err != nil {
			return emu.DynInst{}, err
		}
	} else if r.cur-r.pubCur >= batchPubChunk {
		r.publish()
	}
	rec := &r.batch.ring[r.cur&r.batch.mask]
	d := rec.d
	in := d.Inst
	op := in.Op
	switch {
	case op.IsStore():
		if err := r.store(d.Addr, op.MemSize(), r.get(in.Val)); err != nil {
			return d, err
		}
	case op.IsAtomic():
		size := op.MemSize()
		old, err := r.load(d.Addr, size)
		if err != nil {
			return d, err
		}
		nv := old + r.get(in.Val)
		switch op {
		case isa.AMin64, isa.AMin32, isa.AMinX64, isa.AMinX32:
			nv = min(old, r.get(in.Val))
		}
		if err := r.store(d.Addr, size, nv); err != nil {
			return d, err
		}
	}
	if rec.fl&flagVal != 0 {
		r.regs[in.Dst] = rec.val
	}
	switch op {
	case isa.SliceStart:
		r.inSlice = true
		r.sliceID = d.SliceID
	case isa.SliceEnd:
		r.inSlice = false
	case isa.Halt:
		r.halted = true
	}
	r.cur++
	r.nextPC = d.NextPC
	return d, nil
}
