package trace

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/program"
)

// buildWPArm assembles a sliced loop whose always-taken in-slice branch
// has a fall-through arm (the wrong path) touching only loop-invariant
// state: rOne, rC, and buffered stores. Every iteration forks the same
// divergence point with the same consumed inputs, so the segment cache
// should hit from the second visit on. The arm also contains a branch of
// its own (Beq rOne,rOne) so predictor-divergence inside a replayed
// segment can be forced. When varyFlag is set, the arm instead loads a
// counter the correct path increments every iteration — the
// store-between-visits case that must invalidate the fingerprint.
func buildWPArm(n int, varyFlag bool) (*isa.Program, []byte) {
	l := program.NewLayout()
	aBase := l.AllocU32(n, nil)
	cnt := l.AllocU32(1, nil)
	scratch := l.AllocU32(4, nil)

	b := program.NewBuilder("segtest")
	rI, rN, rA, rC, rS := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	rOne, rX, rY := b.Reg(), b.Reg(), b.Reg()
	b.Li(rI, 0)
	b.Li(rN, int64(n))
	b.Li(rA, int64(aBase))
	b.Li(rC, int64(cnt))
	b.Li(rS, int64(scratch))
	b.Li(rOne, 1)
	b.Label("loop")
	b.Bge(rI, rN, "done")
	b.SliceStart(true)
	b.LdX32(rX, rA, rI, 2)
	b.Beq(isa.R0, isa.R0, "cont") // always taken: the divergence point
	// Wrong-path arm (never architecturally executed).
	if varyFlag {
		b.Ld32(rY, rC, 0) // reads state the correct path mutates
	} else {
		b.AddI(rY, rOne, 5)
	}
	b.St32(rS, 0, rY)
	b.Beq(rOne, rOne, "wparm2") // always equal; divergence lever
	b.AddI(rY, rY, 2)
	b.Label("wparm2")
	b.AddI(rY, rY, 3)
	b.St32(rS, 4, rY)
	b.Jmp("cont")
	b.Label("cont")
	b.SliceEnd(true)
	// Correct path mutates the counter each iteration.
	b.Ld32(rY, rC, 0)
	b.AddI(rY, rY, 1)
	b.St32(rC, 0, rY)
	b.AddI(rI, rI, 1)
	b.Jmp("loop")
	b.Label("done")
	b.Halt()
	return b.Build(), l.Image()
}

// followActual is the default wrong-path direction callback: follow what
// the shadow's own registers produce (what the core's wrongDir does).
func followActual() emu.BranchDir {
	return func(_ int, _ isa.Inst, actual bool) bool { return actual }
}

// runDualForks drives two replays of identical captures in lockstep — one
// forking live shadows (reference), one through a segment cache — and
// requires byte-identical wrong-path streams and observations at every
// fork decide selects. decide returns how many wrong-path steps to
// consume at the k-th taken in-slice branch (0 = don't fork) and a fresh
// direction callback per engine.
func runDualForks(t *testing.T, prog *isa.Program, img []byte, budget int64,
	decide func(k int) (int, func() emu.BranchDir)) *SegStats {
	t.Helper()
	trRef, err := Capture(context.Background(), prog, append([]byte(nil), img...))
	if err != nil {
		t.Fatal(err)
	}
	trSeg, err := Capture(context.Background(), prog, append([]byte(nil), img...))
	if err != nil {
		t.Fatal(err)
	}
	stats := &SegStats{}
	trSeg.EnsureSegs(budget, stats)

	memRef := append([]byte(nil), img...)
	memSeg := append([]byte(nil), img...)
	ref, err := NewReplay(trRef, prog, memRef)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := NewReplay(trSeg, prog, memSeg)
	if err != nil {
		t.Fatal(err)
	}

	branch := 0
	for !ref.Halted() {
		dr, err := ref.Step()
		if err != nil {
			t.Fatal(err)
		}
		ds, err := seg.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(dr, ds) {
			t.Fatalf("correct-path record %d diverges", dr.Seq)
		}
		if !dr.IsBranch() || !dr.InSlice {
			continue
		}
		steps, mkdir := decide(branch)
		branch++
		if steps == 0 {
			continue
		}
		wrongPC := dr.PC + 1
		if !dr.Taken {
			wrongPC = int(dr.Inst.Imm)
		}
		wr := ref.Fork(wrongPC, dr.InSlice, dr.SliceID)
		ws := seg.Fork(wrongPC, dr.InSlice, dr.SliceID)
		dirR, dirS := mkdir(), mkdir()
		for i := 0; i < steps; i++ {
			rd, rok := wr.Step(dirR)
			sd, sok := ws.Step(dirS)
			if rok != sok || !reflect.DeepEqual(rd, sd) {
				t.Fatalf("fork %d wrong-path step %d diverges:\n  live %v %+v\n  seg  %v %+v",
					branch-1, i, rok, rd, sok, sd)
			}
			if wr.Dead() != ws.Dead() || wr.NextPC() != ws.NextPC() || wr.InSlice() != ws.InSlice() {
				t.Fatalf("fork %d step %d observation diverges (dead %v/%v nextpc %d/%d inslice %v/%v)",
					branch-1, i, wr.Dead(), ws.Dead(), wr.NextPC(), ws.NextPC(), wr.InSlice(), ws.InSlice())
			}
			if !rok {
				break
			}
		}
	}
	if !seg.Halted() || !seg.Done() {
		t.Fatal("segment-cache replay did not finish with the reference")
	}
	if !bytes.Equal(memRef, memSeg) {
		t.Fatal("final memory images diverge")
	}
	if branch == 0 {
		t.Fatal("no in-slice branches exercised")
	}
	return stats
}

// TestSegCacheHitsMatchLive: invariant wrong-path arm, same consumption
// every visit — every fork after the first must hit, and the replayed
// segments must be byte-identical to live shadows (slice ids rewritten
// per fork included, since each iteration forks under a new slice id).
func TestSegCacheHitsMatchLive(t *testing.T) {
	prog, img := buildWPArm(40, false)
	stats := runDualForks(t, prog, img, 0, func(k int) (int, func() emu.BranchDir) {
		return 3, followActual
	})
	if h := stats.Hits.Load(); h < 30 {
		t.Fatalf("expected steady hits, got %d (misses %d invalidated %d)",
			h, stats.Misses.Load(), stats.Invalidated.Load())
	}
	if stats.Misses.Load() == 0 {
		t.Fatal("first visit should have missed")
	}
}

// TestSegCacheOverrunExtends: a later visit consumes deeper than the
// recorded segment; the replayer must fall back live mid-path (byte-
// identical), extend the shared entry, and serve the longer prefix after.
func TestSegCacheOverrunExtends(t *testing.T) {
	prog, img := buildWPArm(40, false)
	stats := runDualForks(t, prog, img, 0, func(k int) (int, func() emu.BranchDir) {
		switch {
		case k < 5:
			return 3, followActual
		case k == 5:
			return 7, followActual // outruns the recorded 3-step prefix
		default:
			return 6, followActual // inside the extended segment
		}
	})
	if stats.Overruns.Load() == 0 {
		t.Fatal("deep visit should have overrun the recorded segment")
	}
	if stats.Hits.Load() < 30 {
		t.Fatalf("extension should keep hitting, got %d hits", stats.Hits.Load())
	}
}

// TestSegCacheStoreBetweenVisitsInvalidates is the acceptance-criterion
// case: the wrong path loads a counter the correct path increments
// between visits, so the forked state differs at every visit. The
// fingerprint must reject the stale segment every time (no hits after
// recording — serving one would replay a stale loaded value) while
// matching the live shadow exactly.
func TestSegCacheStoreBetweenVisitsInvalidates(t *testing.T) {
	prog, img := buildWPArm(40, true)
	stats := runDualForks(t, prog, img, 0, func(k int) (int, func() emu.BranchDir) {
		return 4, followActual
	})
	if stats.Invalidated.Load() < 30 {
		t.Fatalf("store-between-visits must invalidate, got %d invalidated (hits %d)",
			stats.Invalidated.Load(), stats.Hits.Load())
	}
	if stats.Hits.Load() != 0 {
		t.Fatalf("stale segment served: %d hits", stats.Hits.Load())
	}
}

// TestSegCacheDivergenceFallsBackLive: a predictor that leaves the
// recorded path mid-segment (inverting the arm's internal branch) must
// trigger the live fallback and still match a live shadow byte for byte.
func TestSegCacheDivergenceFallsBackLive(t *testing.T) {
	prog, img := buildWPArm(40, false)
	invert := func() emu.BranchDir {
		return func(_ int, _ isa.Inst, actual bool) bool { return !actual }
	}
	stats := runDualForks(t, prog, img, 0, func(k int) (int, func() emu.BranchDir) {
		if k%3 == 2 {
			return 6, invert
		}
		return 6, followActual
	})
	if stats.Divergences.Load() == 0 {
		t.Fatal("inverted direction should have diverged from the recorded path")
	}
	if stats.Hits.Load() == 0 {
		t.Fatal("expected hits on the non-inverted visits")
	}
}

// TestSegCacheBudgetEviction pins the byte bound: a tiny budget must keep
// resident bytes at or under it (the single just-touched key may remain)
// and record evictions.
func TestSegCacheBudgetEviction(t *testing.T) {
	prog, img := buildWPArm(60, false)
	tr, err := Capture(context.Background(), prog, append([]byte(nil), img...))
	if err != nil {
		t.Fatal(err)
	}
	stats := &SegStats{}
	budget := int64(2048)
	sc := tr.EnsureSegs(budget, stats)
	r, err := NewReplay(tr, prog, append([]byte(nil), img...))
	if err != nil {
		t.Fatal(err)
	}
	dir := followActual()
	for !r.Halted() {
		d, err := r.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !d.IsBranch() {
			continue
		}
		// Fork at a per-iteration-unique "PC" surrogate is impossible (PCs
		// repeat), so fork both arms to at least multiply keys; the variant
		// sets under each key still churn the budget.
		wrongPC := d.PC + 1
		if !d.Taken {
			wrongPC = int(d.Inst.Imm)
		}
		wp := r.Fork(wrongPC, d.InSlice, d.SliceID)
		for i := 0; i < 12; i++ {
			if _, ok := wp.Step(dir); !ok {
				break
			}
		}
		if got := sc.Bytes(); got > budget && sc.Keys() > 1 {
			t.Fatalf("resident segment bytes %d exceed budget %d with %d keys", got, budget, sc.Keys())
		}
	}
	if tr.SegBytes() != sc.Bytes() {
		t.Fatalf("SegBytes mismatch: %d vs %d", tr.SegBytes(), sc.Bytes())
	}
	if stats.Evictions.Load() == 0 {
		t.Skipf("budget never pressured (bytes %d); enlarge the program", sc.Bytes())
	}
}

// TestSegCacheAdaptiveBypass: when invalidations persistently swamp hits
// (the store-between-visits arm at scale), the cache must trip its
// adaptive bypass — stop recording, free its segments, and serve plain
// live shadows — while the wrong-path streams stay byte-identical to the
// reference throughout (runDualForks asserts that every step).
func TestSegCacheAdaptiveBypass(t *testing.T) {
	prog, img := buildWPArm(2*segAdaptWarmup, true)
	stats := runDualForks(t, prog, img, 0, func(k int) (int, func() emu.BranchDir) {
		return 4, followActual
	})
	if stats.Hits.Load() != 0 {
		t.Fatalf("stale segment served: %d hits", stats.Hits.Load())
	}
	if by := stats.Bypassed.Load(); by < 300 {
		t.Fatalf("bypass should cover the post-disable forks, got %d (invalidated %d)",
			by, stats.Invalidated.Load())
	}
	if inv := stats.Invalidated.Load(); inv >= segAdaptWarmup+segAdaptCheck {
		t.Fatalf("invalidation churn continued past the disable point: %d", inv)
	}
}

// TestSegCacheDisableFreesBytes pins the residency side of the bypass:
// disabling drops every segment (SegBytes goes to zero, so the trace
// cache reprices the trace down) and later publications are ignored.
func TestSegCacheDisableFreesBytes(t *testing.T) {
	prog, img := buildWPArm(8, false)
	tr, err := Capture(context.Background(), prog, append([]byte(nil), img...))
	if err != nil {
		t.Fatal(err)
	}
	sc := tr.EnsureSegs(0, &SegStats{})
	sc.mu.Lock()
	v := &segVariant{}
	sc.publishLocked(segKey{pc: 1}, v)
	if sc.bytes == 0 || !v.resident() {
		sc.mu.Unlock()
		t.Fatal("setup: variant not resident")
	}
	sc.disableLocked()
	after := &segVariant{}
	sc.publishLocked(segKey{pc: 2}, after)
	sc.mu.Unlock()
	if !sc.Disabled() {
		t.Fatal("cache should report disabled")
	}
	if got := tr.SegBytes(); got != 0 {
		t.Fatalf("disable must free resident segment bytes, got %d", got)
	}
	if v.resident() || after.resident() {
		t.Fatal("variants must be non-resident after disable")
	}
	if sc.Keys() != 0 {
		t.Fatalf("entries survived disable: %d keys", sc.Keys())
	}
}
