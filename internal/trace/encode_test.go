package trace

import (
	"bytes"
	"context"
	"reflect"
	"testing"
)

// A marshal/decode round trip reproduces the trace exactly — streams,
// identity, and content digest — and the decoded trace replays.
func TestEncodeRoundTrip(t *testing.T) {
	prog, img := buildSliced(200, 11)
	tr, err := Capture(context.Background(), prog, append([]byte(nil), img...))
	if err != nil {
		t.Fatal(err)
	}
	data, err := tr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatal("decoded trace differs from the original")
	}
	if got.ID() != tr.ID() || got.Len() != tr.Len() || got.ProgName() != tr.ProgName() {
		t.Fatalf("identity mismatch: %q/%d vs %q/%d", got.ID(), got.Len(), tr.ID(), tr.Len())
	}
	// The decoded trace drives a replay to the same final memory.
	repMem := append([]byte(nil), img...)
	r, err := NewReplay(got, prog, repMem)
	if err != nil {
		t.Fatal(err)
	}
	for !r.Halted() {
		if _, err := r.Step(); err != nil {
			t.Fatal(err)
		}
	}
	capMem := append([]byte(nil), img...)
	if _, err := Capture(context.Background(), prog, capMem); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(repMem, capMem) {
		t.Fatal("replay of a decoded trace diverged in final memory")
	}
}

// Any corruption of the encoding — header, streams, or digest — is
// rejected; Decode never returns a trace it cannot verify.
func TestDecodeRejectsCorruption(t *testing.T) {
	prog, img := buildSliced(64, 3)
	tr, err := Capture(context.Background(), prog, append([]byte(nil), img...))
	if err != nil {
		t.Fatal(err)
	}
	data, err := tr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func([]byte) []byte{
		"empty":       func(b []byte) []byte { return nil },
		"bad magic":   func(b []byte) []byte { b[0] ^= 0xff; return b },
		"bad version": func(b []byte) []byte { b[len(encMagic)] ^= 0xff; return b },
		"truncated":   func(b []byte) []byte { return b[:len(b)/2] },
		"stream-byte": func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b },
		"digest-byte": func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b },
	}
	for name, corrupt := range cases {
		if _, err := Decode(corrupt(append([]byte(nil), data...))); err == nil {
			t.Errorf("%s: corrupted encoding decoded without error", name)
		}
	}
}
