// Package trace implements the capture-once/replay-many decoupling of the
// functional frontend from the timing model — the split the paper's
// Pin + Sniper setup exploits (§5.1): for a fixed workload (kernel, input,
// seed), the committed instruction stream is a property of the program
// alone, identical across every hardware configuration, so it can be
// captured once and replayed under any number of timing configs.
//
// A Trace is a compact, content-addressed record of one single-threaded
// program's complete architectural execution. Per dynamic instruction it
// stores the code index, a flag byte, and — only where needed — the
// effective address (memory ops) and the value written to the destination
// register. Everything else the timing model consumes (the static
// instruction, branch outcomes, next-PC, slice context, sequence numbers)
// is either recorded in the flags or reconstructed deterministically
// during replay.
//
// The destination-value stream is what makes replay a full frontend
// rather than a passive tape: Replay maintains the architectural register
// file and memory image by applying the recorded values and stores in
// program order, so it can fork wrong-path engines (emu.NewShadow) from
// the exact state a live machine would have at any mispredicted branch.
// This matters because the set of mispredicted branches is
// timing-dependent — predictor choice, FRQ occupancy, and resolution
// order all shift speculative history — so wrong paths cannot be
// precomputed at capture; they are regenerated on demand from
// reconstructed state, exactly as the live emulator does.
//
// Traces are invalidated by Version, a simulator-behavior stamp embedded
// in every trace cache key: bump it whenever emulator or capture
// semantics change so stale traces can never feed a newer timing model.
package trace

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync/atomic"

	"repro/internal/emu"
	"repro/internal/isa"
)

// Version stamps the capture/replay behavior. It participates in every
// trace cache key (see blp.Options.TraceKey), so bumping it after an
// emulator or trace-format change invalidates all previously captured
// traces at once.
const Version = 1

// Per-record flag bits.
const (
	flagTaken = 1 << iota // branch outcome (conditional branches only)
	flagVal               // record writes a destination register; vals holds the value
	flagAddr              // record is a memory op; addrs holds the effective address
)

// captureCtxCheck is how many captured instructions elapse between
// context-cancellation polls.
const captureCtxCheck = 1 << 16

// Trace is one captured execution. Immutable after Capture; safe to share
// across any number of concurrent replays.
type Trace struct {
	progName string
	progLen  int // len(prog.Code) at capture, a cheap identity check

	pcs   []int32  // code index per record
	flags []uint8  // flag bits per record
	vals  []uint64 // destination values, dense over records with flagVal
	addrs []uint64 // effective addresses, dense over records with flagAddr

	id string // hex sha256 content digest

	// segs is the trace's wrong-path segment cache, attached lazily by
	// EnsureSegs. It is derived state (never serialized, not part of the
	// content digest) shared by every Replay of this trace.
	segs atomic.Pointer[SegCache]
}

// EnsureSegs attaches a wrong-path segment cache to the trace (idempotent;
// the first caller wins) and returns it. budget bounds the cache's bytes
// (<=0 uses DefaultSegBudget); stats, when non-nil, receives the cache's
// counters — pass one sink to aggregate across traces. Replays created
// after attachment fork through the cache.
func (t *Trace) EnsureSegs(budget int64, stats *SegStats) *SegCache {
	if sc := t.segs.Load(); sc != nil {
		return sc
	}
	sc := newSegCache(budget, stats)
	if t.segs.CompareAndSwap(nil, sc) {
		return sc
	}
	return t.segs.Load()
}

// SegBytes reports the resident bytes of the trace's segment cache (zero
// when none is attached). Cache-cost accounting adds this to the trace's
// own footprint so the trace budget bounds total resident replay state.
func (t *Trace) SegBytes() int64 {
	if sc := t.segs.Load(); sc != nil {
		return sc.Bytes()
	}
	return 0
}

// Len returns the number of recorded dynamic instructions.
func (t *Trace) Len() int { return len(t.pcs) }

// ID returns the content digest of the trace (hex sha256 over the record
// streams and the format version) — the trace's content address.
func (t *Trace) ID() string { return t.id }

// ProgName returns the name of the captured program.
func (t *Trace) ProgName() string { return t.progName }

// Capture executes prog to completion on mem with a fresh functional
// emulator and records its full architectural instruction stream. The
// memory image is executed in place (pass a dedicated copy: after Capture
// it holds the program's final memory, which callers can validate against
// the workload's host reference). ctx is polled every captureCtxCheck
// instructions; a canceled capture returns ctx.Err().
func Capture(ctx context.Context, prog *isa.Program, mem []byte) (*Trace, error) {
	t := &Trace{progName: prog.Name, progLen: len(prog.Code)}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	m := emu.New(prog, mem)
	for !m.Halted {
		if done != nil && len(t.pcs)%captureCtxCheck == 0 {
			select {
			case <-done:
				return nil, fmt.Errorf("trace: capture of %s canceled at instruction %d: %w",
					prog.Name, len(t.pcs), ctx.Err())
			default:
			}
		}
		d, err := m.Step()
		if err != nil {
			return nil, fmt.Errorf("trace: capturing %s: %w", prog.Name, err)
		}
		var fl uint8
		if d.Taken {
			fl |= flagTaken
		}
		op := d.Inst.Op
		if op.HasDst() && d.Inst.Dst != isa.R0 {
			fl |= flagVal
			t.vals = append(t.vals, m.Regs[d.Inst.Dst])
		}
		if op.IsMem() {
			fl |= flagAddr
			t.addrs = append(t.addrs, d.Addr)
		}
		t.pcs = append(t.pcs, int32(d.PC))
		t.flags = append(t.flags, fl)
	}
	t.id = t.digest()
	return t, nil
}

// digest hashes the record streams plus the format version into the
// trace's content address.
func (t *Trace) digest() string {
	h := sha256.New()
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], Version)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(t.pcs)))
	h.Write(hdr[:])
	h.Write([]byte(t.progName))
	buf := make([]byte, 8)
	for _, pc := range t.pcs {
		binary.LittleEndian.PutUint32(buf, uint32(pc))
		h.Write(buf[:4])
	}
	h.Write(t.flags)
	for _, v := range t.vals {
		binary.LittleEndian.PutUint64(buf, v)
		h.Write(buf)
	}
	for _, a := range t.addrs {
		binary.LittleEndian.PutUint64(buf, a)
		h.Write(buf)
	}
	return hex.EncodeToString(h.Sum(nil))
}
