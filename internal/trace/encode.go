package trace

import (
	"encoding/binary"
	"fmt"
)

// encMagic heads every encoded trace; the format version rides on the
// package's Version constant (a version bump invalidates persisted
// traces through their cache keys as well, so Decode rejecting an old
// stamp is a second line of defense, not the primary one).
const encMagic = "sftrace\x00"

// MarshalBinary encodes the trace for persistence (the disk spill path
// of the Runner's trace cache). The layout is the record streams plus
// identity metadata, little-endian, ending with the content digest so
// Decode can verify integrity without trusting the container.
func (t *Trace) MarshalBinary() ([]byte, error) {
	size := len(encMagic) + 8 + // magic, version
		4 + len(t.progName) + 4 + // name, progLen
		3*4 + // stream lengths
		4*len(t.pcs) + len(t.flags) + 8*len(t.vals) + 8*len(t.addrs) +
		4 + len(t.id)
	buf := make([]byte, 0, size)
	buf = append(buf, encMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, Version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.progName)))
	buf = append(buf, t.progName...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.progLen))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.pcs)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.vals)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.addrs)))
	for _, pc := range t.pcs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(pc))
	}
	buf = append(buf, t.flags...)
	for _, v := range t.vals {
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	for _, a := range t.addrs {
		buf = binary.LittleEndian.AppendUint64(buf, a)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.id)))
	buf = append(buf, t.id...)
	return buf, nil
}

// Decode reconstructs a trace encoded by MarshalBinary, recomputing the
// content digest over the decoded streams and requiring it to match the
// recorded one — a corrupted or tampered encoding can therefore never
// feed the timing model. A trace from a different capture-behavior
// Version is rejected outright.
func Decode(data []byte) (*Trace, error) {
	d := decoder{buf: data}
	if string(d.take(len(encMagic))) != encMagic {
		return nil, fmt.Errorf("trace: decode: bad magic")
	}
	if v := d.u64(); v != Version {
		return nil, fmt.Errorf("trace: decode: version %d, want %d", v, Version)
	}
	t := &Trace{}
	t.progName = string(d.take(int(d.u32())))
	t.progLen = int(d.u32())
	nRec, nVal, nAddr := int(d.u32()), int(d.u32()), int(d.u32())
	if d.err != nil {
		return nil, fmt.Errorf("trace: decode: truncated header")
	}
	// The streams are bounded by the remaining bytes; reject absurd
	// counts before allocating.
	if need := 4*nRec + nRec + 8*nVal + 8*nAddr; need < 0 || need > len(d.buf)-d.off {
		return nil, fmt.Errorf("trace: decode: truncated streams")
	}
	t.pcs = make([]int32, nRec)
	for i := range t.pcs {
		t.pcs[i] = int32(d.u32())
	}
	t.flags = append([]uint8(nil), d.take(nRec)...)
	t.vals = make([]uint64, nVal)
	for i := range t.vals {
		t.vals[i] = d.u64()
	}
	t.addrs = make([]uint64, nAddr)
	for i := range t.addrs {
		t.addrs[i] = d.u64()
	}
	t.id = string(d.take(int(d.u32())))
	if d.err != nil {
		return nil, fmt.Errorf("trace: decode: truncated trace")
	}
	if got := t.digest(); got != t.id {
		return nil, fmt.Errorf("trace: decode: content digest mismatch (stored %.12s…, computed %.12s…)",
			t.id, got)
	}
	return t, nil
}

// decoder is a minimal cursor over an encoded trace; the first failed
// read poisons it and every later read returns zeros.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil || n < 0 || d.off+n > len(d.buf) {
		d.err = fmt.Errorf("short read")
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
