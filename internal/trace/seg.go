package trace

import (
	"encoding/binary"
	"math/bits"
	"reflect"
	"sync"
	"sync/atomic"

	"repro/internal/emu"
	"repro/internal/isa"
)

// Wrong-path segment memoization.
//
// The set of mispredicted branches is timing-dependent, but the wrong-path
// instructions generated from a given (divergence PC, slice context) mostly
// are not: the shadow engine is deterministic in the forking replay's
// architectural state, so two forks at the same point with the same
// consumed inputs produce byte-identical segments. A SegCache records the
// segment a live shadow produced together with a read-set fingerprint —
// the registers and base-memory bytes the segment actually consumed — and
// later forks whose state matches the fingerprint replay the recorded
// segment with zero shadow emulation. A mismatch (e.g. a store landed
// between two visits to the same branch) falls back to a live shadow and
// publishes a fresh variant.
//
// The cache is attached to a Trace (EnsureSegs) and shared by every Replay
// of that trace, including the lockstep lanes of a Batch — which is where
// it pays off most: lanes fork at identical stream positions with
// identical architectural state, so after the first lane records a
// segment, the remaining lanes replay it.

const (
	// DefaultSegBudget bounds one trace's resident segment bytes.
	DefaultSegBudget = 32 << 20
	// segVariantsPerKey caps fingerprint variants retained per divergence
	// point; within a key, variants are kept in MRU order.
	segVariantsPerKey = 8
	// maxSegSteps caps a recorded segment's length. Wrong paths longer
	// than this keep executing live past the recorded prefix.
	maxSegSteps = 512
	// segFlushChunk batches recorder publications to amortize cache locking.
	segFlushChunk = 64
	// Adaptive bypass: every segAdaptCheck forks (after segAdaptWarmup of
	// them have seeded the cache), the cache compares its own hits against
	// fingerprint invalidations; when invalidations exceed segAdaptRatio×
	// the hits, the workload's wrong paths are data-dependent (the same
	// divergence PC forks with ever-different register values, as in graph
	// traversals) and caching them is pure churn — record, validate,
	// evict, repeat. The cache then disables itself for this trace:
	// segments are freed, and forks return plain live shadows with zero
	// recording or validation overhead. The decision is one-way and
	// per-trace; workloads whose wrong paths are stable re-hit from the
	// second visit on and never trip it.
	segAdaptWarmup = 1024
	segAdaptCheck  = 512
	segAdaptRatio  = 2
)

// SegStats aggregates segment-cache counters across every trace sharing
// the sink (the Runner passes one sink to all EnsureSegs calls).
type SegStats struct {
	Hits        atomic.Int64 // forks served from a recorded segment
	Misses      atomic.Int64 // forks with no recorded segment at the point
	Invalidated atomic.Int64 // forks where every variant failed fingerprint validation
	Overruns    atomic.Int64 // replays that ran past the recorded segment (live extension)
	Divergences atomic.Int64 // replays where the predictor left the recorded path
	Evictions   atomic.Int64 // divergence points evicted under the byte budget
	Bypassed    atomic.Int64 // forks after the cache disabled itself (adaptive bypass)
}

type segKey struct {
	pc      int32
	inSlice bool
}

// wpStep is one recorded wrong-path instruction. Everything else a
// replayer needs (post-step slice context, death, next fetch PC) is
// derived from the DynInst exactly as the live shadow derives it.
type wpStep struct {
	d      emu.DynInst
	actual bool // direction the shadow's own registers produced (branches)
}

// segRead is one base-memory read the segment consumed: mask bit i set
// means byte i of the access came from the forked memory image (clear
// bytes were served by the shadow's own store overlay and are zeroed in
// base). A future fork validates by re-reading its memory image.
type segRead struct {
	addr uint64
	base uint64
	size uint8
	mask uint8
}

// segVariant is one recorded segment plus the fingerprint that validates
// it: readMask names the registers consumed before being written, with
// their fork-time values in readVals; reads lists the base-memory bytes
// consumed. Both grow if a later replay extends the segment live.
type segVariant struct {
	readMask    uint32
	readVals    [isa.NumRegs]uint64 // meaningful only at readMask bits
	reads       []segRead
	steps       []wpStep
	forkSliceID uint64 // slice id at recording fork, rewritten on replay
	bytes       int64  // resident-byte estimate while published
}

type segEntry struct {
	variants []*segVariant // MRU order
	lastUse  uint64
	key      segKey
}

var (
	wpStepBytes   = int64(reflect.TypeOf(wpStep{}).Size())
	segReadBytes  = int64(reflect.TypeOf(segRead{}).Size())
	segFixedBytes = int64(reflect.TypeOf(segVariant{}).Size()) + int64(reflect.TypeOf(segEntry{}).Size())
)

func (v *segVariant) residentBytes() int64 {
	return segFixedBytes + int64(cap(v.steps))*wpStepBytes + int64(cap(v.reads))*segReadBytes
}

// SegCache is the bounded per-trace wrong-path segment cache. All state is
// guarded by mu; concurrent replays of the shared trace fork through it.
type SegCache struct {
	mu      sync.Mutex
	entries map[segKey]*segEntry
	bytes   int64
	budget  int64
	tick    uint64
	stats   *SegStats

	// Adaptive bypass state: per-trace fork/hit/invalidation tallies
	// (distinct from stats, which may be a sink shared across traces) and
	// the one-way off switch they trip.
	forks      int64
	localHits  int64
	localInval int64
	off        bool
}

func newSegCache(budget int64, stats *SegStats) *SegCache {
	if budget <= 0 {
		budget = DefaultSegBudget
	}
	if stats == nil {
		stats = &SegStats{}
	}
	return &SegCache{entries: make(map[segKey]*segEntry), budget: budget, stats: stats}
}

// Bytes reports the cache's resident segment bytes.
func (sc *SegCache) Bytes() int64 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.bytes
}

// Keys reports how many divergence points currently hold segments.
func (sc *SegCache) Keys() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return len(sc.entries)
}

// validateLocked reports whether the variant's fingerprint matches the
// forking replay's architectural state. Caller holds sc.mu.
func (v *segVariant) validateLocked(r *Replay) bool {
	m := v.readMask
	for m != 0 {
		i := bits.TrailingZeros32(m)
		m &^= 1 << uint(i)
		if r.regs[i] != v.readVals[i] {
			return false
		}
	}
	for i := range v.reads {
		rd := &v.reads[i]
		got, ok := segBaseRead(r.mem, rd.addr, int(rd.size), rd.mask)
		if !ok || got != rd.base {
			return false
		}
	}
	return true
}

// segBaseRead reads size bytes at addr from mem and zeroes the bytes not
// in mask, mirroring how the shadow's ReadObserver reported them.
func segBaseRead(mem []byte, addr uint64, size int, mask uint8) (uint64, bool) {
	if addr+uint64(size) > uint64(len(mem)) || addr+uint64(size) < addr {
		return 0, false
	}
	var v uint64
	if size == 4 {
		v = uint64(binary.LittleEndian.Uint32(mem[addr:]))
	} else {
		v = binary.LittleEndian.Uint64(mem[addr:])
	}
	for i := 0; i < size; i++ {
		if mask&(1<<uint(i)) == 0 {
			v &^= 0xff << uint(8*i)
		}
	}
	return v, true
}

// wpDead reports whether the shadow would be dead after producing d,
// mirroring Shadow.Step's termination rules exactly.
func wpDead(d *emu.DynInst, progLen int) bool {
	op := d.Inst.Op
	if op == isa.Halt || op == isa.Barrier {
		return true
	}
	return d.NextPC < 0 || d.NextPC >= progLen
}

// wpPostInSlice derives the slice context after d, mirroring Shadow.Step.
func wpPostInSlice(d *emu.DynInst) bool {
	switch d.Inst.Op {
	case isa.SliceStart:
		return true
	case isa.SliceEnd:
		return false
	}
	return d.InSlice
}

func regBit(r isa.Reg) uint32 { return uint32(1) << uint(r) }

// noteRegs folds one instruction's register reads/writes into the running
// first-read fingerprint: a register counts as consumed only if read
// before the segment writes it. The shadow reads Src1/Src2 for every
// instruction and Val for stores/atomics; R0 is hardwired zero.
func noteRegs(in isa.Inst, readMask, written *uint32) {
	note := func(r isa.Reg) {
		if r != isa.R0 {
			if b := regBit(r); *written&b == 0 {
				*readMask |= b
			}
		}
	}
	note(in.Src1)
	note(in.Src2)
	if in.Op.IsStore() || in.Op.IsAtomic() {
		note(in.Val)
	}
	if in.Op.HasDst() && in.Dst != isa.R0 {
		*written |= regBit(in.Dst)
	}
}

// fork serves Replay.Fork through the cache: a fingerprint match replays
// the recorded segment; otherwise a live shadow runs with a recorder that
// publishes a fresh variant.
func (sc *SegCache) fork(r *Replay, startPC int, inSlice bool, sliceID uint64) emu.WrongPath {
	key := segKey{pc: int32(startPC), inSlice: inSlice}
	sc.mu.Lock()
	if sc.off {
		sc.mu.Unlock()
		sc.stats.Bypassed.Add(1)
		return emu.NewShadow(r.prog, r.mem, r.regs, startPC, inSlice, sliceID)
	}
	sc.forks++
	if sc.forks >= segAdaptWarmup && sc.forks%segAdaptCheck == 0 &&
		sc.localHits*segAdaptRatio < sc.localInval {
		sc.disableLocked()
		sc.mu.Unlock()
		sc.stats.Bypassed.Add(1)
		return emu.NewShadow(r.prog, r.mem, r.regs, startPC, inSlice, sliceID)
	}
	sc.tick++
	e := sc.entries[key]
	hadVariants := e != nil && len(e.variants) > 0
	var match *segVariant
	if e != nil {
		e.lastUse = sc.tick
		for i, v := range e.variants {
			if v.validateLocked(r) {
				match = v
				if i != 0 {
					copy(e.variants[1:i+1], e.variants[:i])
					e.variants[0] = v
				}
				break
			}
		}
	}
	if match != nil {
		steps := match.steps
		sc.localHits++
		sc.mu.Unlock()
		sc.stats.Hits.Add(1)
		return &segReplayer{
			sc:      sc,
			v:       match,
			steps:   steps,
			r:       r,
			regs:    r.regs,
			startPC: startPC,
			forkIn:  inSlice,
			sliceID: sliceID,
			oldID:   match.forkSliceID,
		}
	}
	if hadVariants {
		sc.localInval++
	}
	sc.mu.Unlock()
	if hadVariants {
		sc.stats.Invalidated.Add(1)
	} else {
		sc.stats.Misses.Add(1)
	}
	sh := emu.NewShadow(r.prog, r.mem, r.regs, startPC, inSlice, sliceID)
	rec := &segRecorder{
		sc:        sc,
		key:       key,
		sh:        sh,
		progLen:   len(r.prog.Code),
		forkIn:    inSlice,
		forkVals:  r.regs,
		recording: true,
	}
	rec.v = &segVariant{forkSliceID: sliceID}
	sh.SetReadObserver(func(addr uint64, size int, mask uint8, base uint64) {
		if rec.recording {
			rec.pendReads = append(rec.pendReads,
				segRead{addr: addr, base: base, size: uint8(size), mask: mask})
		}
	})
	return rec
}

// disableLocked trips the adaptive bypass: every segment is freed and the
// cache stops recording. Outstanding replayers keep their step snapshots
// (immutable once taken); outstanding recorders find their variants
// non-resident and publish nothing further. Caller holds sc.mu.
func (sc *SegCache) disableLocked() {
	sc.off = true
	for _, e := range sc.entries {
		for _, v := range e.variants {
			v.bytes = 0
		}
	}
	sc.entries = make(map[segKey]*segEntry)
	sc.bytes = 0
}

// Disabled reports whether the adaptive bypass has tripped.
func (sc *SegCache) Disabled() bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.off
}

// publishLocked inserts or refreshes the entry for key with v (MRU
// position), evicting the key's LRU variant beyond segVariantsPerKey and
// whole LRU keys beyond the byte budget. Caller holds sc.mu.
func (sc *SegCache) publishLocked(key segKey, v *segVariant) {
	if sc.off {
		return
	}
	e := sc.entries[key]
	if e == nil {
		e = &segEntry{key: key}
		sc.entries[key] = e
	}
	sc.tick++
	e.lastUse = sc.tick
	e.variants = append(e.variants, nil)
	copy(e.variants[1:], e.variants)
	e.variants[0] = v
	if len(e.variants) > segVariantsPerKey {
		last := e.variants[len(e.variants)-1]
		sc.bytes -= last.bytes
		last.bytes = 0
		e.variants = e.variants[:len(e.variants)-1]
	}
	v.bytes = v.residentBytes()
	sc.bytes += v.bytes
	sc.evictLocked(e)
}

// resizeLocked re-accounts v after growth. Caller holds sc.mu; v must be
// resident (bytes > 0) or the delta is ignored.
func (sc *SegCache) resizeLocked(v *segVariant, keep *segEntry) {
	if v.bytes == 0 {
		return
	}
	nb := v.residentBytes()
	sc.bytes += nb - v.bytes
	v.bytes = nb
	sc.evictLocked(keep)
}

// evictLocked drops least-recently-used divergence points until the cache
// fits its budget; keep (the key just touched) is never evicted.
func (sc *SegCache) evictLocked(keep *segEntry) {
	for sc.bytes > sc.budget && len(sc.entries) > 1 {
		var victim *segEntry
		for _, e := range sc.entries {
			if e == keep {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		for _, v := range victim.variants {
			sc.bytes -= v.bytes
			v.bytes = 0
		}
		delete(sc.entries, victim.key)
		sc.stats.Evictions.Add(1)
	}
}

// resident reports whether v is still published (not evicted); callers
// use it to stop extending detached variants. Caller holds sc.mu.
func (v *segVariant) resident() bool { return v.bytes != 0 }

// segRecorder wraps a live shadow on a cache miss and publishes the
// segment it generates. Publication is incremental (every segFlushChunk
// steps, at slice exit, at shadow death, and when the owning replay forks
// again), so lockstep lanes trailing the recorder can already hit the
// growing prefix.
type segRecorder struct {
	sc       *SegCache
	key      segKey
	sh       *emu.Shadow
	v        *segVariant
	progLen  int
	forkIn   bool
	forkVals [isa.NumRegs]uint64 // fork-time registers; first-read rule makes
	// these the values the segment consumed for every readMask bit

	recording bool
	published bool // v inserted into the cache
	steps     int  // total steps recorded into v (published + pending)
	readMask  uint32
	written   uint32
	pendSteps []wpStep
	pendReads []segRead
}

func (rw *segRecorder) Step(dir emu.BranchDir) (emu.DynInst, bool) {
	if !rw.recording {
		return rw.sh.Step(dir)
	}
	var actual bool
	d, ok := rw.sh.Step(func(pc int, in isa.Inst, a bool) bool {
		actual = a
		return dir(pc, in, a)
	})
	if !ok {
		rw.flush()
		rw.recording = false
		return d, ok
	}
	noteRegs(d.Inst, &rw.readMask, &rw.written)
	rw.pendSteps = append(rw.pendSteps, wpStep{d: d, actual: actual})
	rw.steps++
	dead := wpDead(&d, rw.progLen)
	sliceDone := rw.forkIn && !rw.sh.InSlice()
	if dead || sliceDone || len(rw.pendSteps) >= segFlushChunk || rw.steps >= maxSegSteps {
		rw.flush()
	}
	if dead || rw.steps >= maxSegSteps {
		rw.recording = false
	}
	return d, ok
}

// flush publishes the pending steps and reads into the cache. The first
// flush inserts the variant; later flushes extend it in place unless a
// concurrent replay already extended past us (identical content either
// way, so we simply stop) or the variant was evicted.
func (rw *segRecorder) flush() {
	if len(rw.pendSteps) == 0 {
		rw.pendReads = rw.pendReads[:0]
		return
	}
	sc := rw.sc
	sc.mu.Lock()
	defer sc.mu.Unlock()
	v := rw.v
	if !rw.published {
		v.readMask = rw.readMask
		mergeReadVals(v, rw.forkVals, rw.readMask)
		v.reads = append(v.reads, rw.pendReads...)
		v.steps = append(v.steps, rw.pendSteps...)
		sc.publishLocked(rw.key, v)
		rw.published = true
	} else {
		if !v.resident() || len(v.steps) != rw.steps-len(rw.pendSteps) {
			rw.recording = false
			rw.pendSteps, rw.pendReads = nil, nil
			return
		}
		v.readMask |= rw.readMask
		mergeReadVals(v, rw.forkVals, rw.readMask)
		v.reads = append(v.reads, rw.pendReads...)
		v.steps = append(v.steps, rw.pendSteps...)
		sc.resizeLocked(v, sc.entries[rw.key])
	}
	rw.pendSteps = rw.pendSteps[:0]
	rw.pendReads = rw.pendReads[:0]
}

func mergeReadVals(v *segVariant, vals [isa.NumRegs]uint64, mask uint32) {
	for m := mask; m != 0; {
		i := bits.TrailingZeros32(m)
		m &^= 1 << uint(i)
		v.readVals[i] = vals[i]
	}
}

func (rw *segRecorder) Dead() bool    { return rw.sh.Dead() }
func (rw *segRecorder) NextPC() int   { return rw.sh.NextPC() }
func (rw *segRecorder) InSlice() bool { return rw.sh.InSlice() }

// finalize flushes any unpublished tail; called when the owning replay
// forks its next wrong path (this shadow can never be stepped again).
func (rw *segRecorder) finalize() {
	if rw.recording {
		rw.flush()
		rw.recording = false
	}
}

// segReplayer replays a recorded segment as an emu.WrongPath with zero
// shadow emulation. It rewrites the recorded slice id to the new fork's,
// re-runs the predictor callback with the recorded pre-override direction
// per branch, and falls back to a live shadow when the predictor leaves
// the recorded path (divergence) or the consumer outruns it (overrun —
// in which case the live continuation extends the shared variant).
type segReplayer struct {
	sc    *SegCache
	v     *segVariant
	steps []wpStep // snapshot; the shared variant may grow beyond it
	idx   int

	r       *Replay
	regs    [isa.NumRegs]uint64 // fork-time registers, for fallback rebuild
	startPC int
	forkIn  bool
	sliceID uint64
	oldID   uint64

	readMask uint32 // running first-read fingerprint, for extension
	written  uint32

	live      *emu.Shadow // non-nil after divergence or overrun
	extending bool        // live continuation still extends the variant
	pendReads []segRead
	dead      bool
}

func (rp *segReplayer) Step(dir emu.BranchDir) (emu.DynInst, bool) {
	if rp.live != nil {
		return rp.liveStep(dir)
	}
	if rp.dead {
		return emu.DynInst{}, false
	}
	if rp.idx >= len(rp.steps) {
		if !rp.refresh() {
			return rp.overrun(dir)
		}
	}
	st := &rp.steps[rp.idx]
	d := st.d
	if d.Inst.Op.IsBranch() {
		got := dir(d.PC, d.Inst, st.actual)
		if got != d.Taken {
			return rp.diverge(dir, got)
		}
	}
	noteRegs(d.Inst, &rp.readMask, &rp.written)
	if d.SliceID == rp.oldID {
		d.SliceID = rp.sliceID
	}
	rp.idx++
	if wpDead(&st.d, len(rp.r.prog.Code)) {
		rp.dead = true
	}
	return d, true
}

// refresh re-snapshots the shared variant: in lockstep batches the
// recording lane is usually only a flush chunk ahead, so an apparent
// overrun often just means more steps were published since our snapshot.
func (rp *segReplayer) refresh() bool {
	rp.sc.mu.Lock()
	grown := len(rp.v.steps) > len(rp.steps)
	if grown {
		rp.steps = rp.v.steps
	}
	rp.sc.mu.Unlock()
	return grown
}

// overrun switches to a live shadow fast-forwarded over the replayed
// prefix, then continues stepping it (extending the variant in place when
// still possible).
func (rp *segReplayer) overrun(dir emu.BranchDir) (emu.DynInst, bool) {
	rp.sc.stats.Overruns.Add(1)
	rp.buildLive()
	rp.extending = true
	return rp.liveStep(dir)
}

// diverge switches to a live shadow because the predictor chose direction
// got where the recording took the other arm. The current branch is
// re-executed on the live shadow with the already-obtained decision (the
// predictor callback must run exactly once per fetched branch).
func (rp *segReplayer) diverge(dir emu.BranchDir, got bool) (emu.DynInst, bool) {
	rp.sc.stats.Divergences.Add(1)
	rp.buildLive()
	d, ok := rp.live.Step(func(int, isa.Inst, bool) bool { return got })
	if !ok {
		rp.dead = true
	}
	return d, ok
}

// buildLive reconstructs the live shadow state at rp.idx: a fresh shadow
// from the fork-time snapshot, fast-forwarded through the recorded prefix
// with the recorded directions (no predictor callbacks — those already
// ran while replaying). The fingerprint guarantee makes this exact: the
// prefix's consumed inputs match, so the rebuilt overlay and registers
// equal the recording's at this point.
func (rp *segReplayer) buildLive() {
	sh := emu.NewShadow(rp.r.prog, rp.r.mem, rp.regs, rp.startPC, rp.forkIn, rp.sliceID)
	var want bool
	ffDir := func(int, isa.Inst, bool) bool { return want }
	for i := 0; i < rp.idx; i++ {
		want = rp.steps[i].d.Taken
		if _, ok := sh.Step(ffDir); !ok {
			break
		}
	}
	sh.SetReadObserver(func(addr uint64, size int, mask uint8, base uint64) {
		if rp.extending {
			rp.pendReads = append(rp.pendReads,
				segRead{addr: addr, base: base, size: uint8(size), mask: mask})
		}
	})
	rp.live = sh
}

// liveStep executes on the fallback shadow; while extending, each step is
// appended to the shared variant so other lanes stop overrunning here.
func (rp *segReplayer) liveStep(dir emu.BranchDir) (emu.DynInst, bool) {
	var actual bool
	rp.pendReads = rp.pendReads[:0]
	d, ok := rp.live.Step(func(pc int, in isa.Inst, a bool) bool {
		actual = a
		return dir(pc, in, a)
	})
	if !ok {
		return d, ok
	}
	if rp.extending {
		noteRegs(d.Inst, &rp.readMask, &rp.written)
		rp.extend(d, actual)
	}
	return d, true
}

// extend appends one live step to the shared variant. Extension is only
// legal while nobody else moved the variant past our position and it is
// still resident; afterwards the live shadow simply keeps executing
// unrecorded. The recorded step stores the shadow's own slice id (the
// recording's fork id), so the stored form matches what a recorder at
// this fork would have written.
func (rp *segReplayer) extend(d emu.DynInst, actual bool) {
	if rp.idx >= maxSegSteps {
		rp.extending = false
		return
	}
	sc := rp.sc
	sc.mu.Lock()
	defer sc.mu.Unlock()
	v := rp.v
	if !v.resident() || len(v.steps) != rp.idx {
		rp.extending = false
		return
	}
	// Store the step in recording form: the new fork's slice id maps back
	// to the variant's fork id so any future fork can rewrite it again.
	sd := d
	if sd.SliceID == rp.sliceID {
		sd.SliceID = rp.oldID
	}
	newBits := rp.readMask &^ v.readMask
	if newBits != 0 {
		v.readMask |= newBits
		mergeReadVals(v, rp.regs, newBits)
	}
	v.reads = append(v.reads, rp.pendReads...)
	v.steps = append(v.steps, wpStep{d: sd, actual: actual})
	rp.idx = len(v.steps)
	rp.steps = v.steps
	sc.resizeLocked(v, sc.entries[segKey{pc: int32(rp.startPC), inSlice: rp.forkIn}])
}

func (rp *segReplayer) Dead() bool {
	if rp.live != nil {
		return rp.live.Dead()
	}
	if rp.dead {
		return true
	}
	return false
}

func (rp *segReplayer) NextPC() int {
	if rp.live != nil {
		return rp.live.NextPC()
	}
	if rp.idx == 0 {
		return rp.startPC
	}
	return rp.steps[rp.idx-1].d.NextPC
}

func (rp *segReplayer) InSlice() bool {
	if rp.live != nil {
		return rp.live.InSlice()
	}
	if rp.idx == 0 {
		return rp.forkIn
	}
	return wpPostInSlice(&rp.steps[rp.idx-1].d)
}
