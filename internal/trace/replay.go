package trace

import (
	"encoding/binary"
	"fmt"

	"repro/internal/emu"
	"repro/internal/isa"
)

// Replay feeds a captured trace to the timing model as an emu.Frontend.
// It reconstructs every DynInst of the original execution — same sequence
// numbers, branch outcomes, addresses, and slice context — without
// re-executing the functional emulator, and maintains the architectural
// register file and memory image as a cursor over the stream so that
// wrong-path engines can fork from the exact state a live machine would
// have at any branch.
//
// A Replay owns its memory image the way a Machine does: recorded stores
// are applied in program order, so after the stream is consumed the image
// equals the live execution's final memory (workload output checks pass
// unchanged). One Replay serves one run; the underlying Trace is immutable
// and shared.
type Replay struct {
	tr   *Trace
	prog *isa.Program
	mem  []byte
	regs [isa.NumRegs]uint64

	cur    int // next record index; doubles as the sequence number
	vi, ai int // cursors into the dense vals/addrs streams

	nextPC  int
	halted  bool
	inSlice bool
	sliceID uint64

	// batch is non-nil for views created by Batch.NewView: decode comes
	// from the shared ring, while mem/regs/cursors above stay per-view.
	// decoded is the view's local snapshot of the batch's decode head
	// (records below it are read lock-free); pubCur is the cursor value
	// the view last published to the batch under its lock.
	batch   *Batch
	decoded int
	pubCur  int

	// segs memoizes wrong-path segments across every replay of the trace;
	// segRec is the recorder wrapped around the previous Fork, finalized
	// when the next fork proves it abandoned.
	segs   *SegCache
	segRec *segRecorder
}

// NewReplay builds a frontend replaying tr against prog and mem. The
// program must be the one the trace was captured from (checked cheaply by
// name and length); mem is the workload's initial memory image, mutated
// in place as recorded stores are applied.
func NewReplay(tr *Trace, prog *isa.Program, mem []byte) (*Replay, error) {
	if prog.Name != tr.progName || len(prog.Code) != tr.progLen {
		return nil, fmt.Errorf("trace: replaying %s (%d insts) with trace of %s (%d insts)",
			prog.Name, len(prog.Code), tr.progName, tr.progLen)
	}
	r := &Replay{tr: tr, prog: prog, mem: mem, segs: tr.segs.Load()}
	if len(tr.pcs) > 0 {
		r.nextPC = int(tr.pcs[0])
	}
	return r, nil
}

func (r *Replay) get(reg isa.Reg) uint64 {
	if reg == isa.R0 {
		return 0
	}
	return r.regs[reg]
}

func (r *Replay) load(addr uint64, size int) (uint64, error) {
	if addr+uint64(size) > uint64(len(r.mem)) {
		return 0, fmt.Errorf("trace: %s: replayed load of %d bytes at %#x outside memory (%d bytes)",
			r.prog.Name, size, addr, len(r.mem))
	}
	if size == 4 {
		return uint64(binary.LittleEndian.Uint32(r.mem[addr:])), nil
	}
	return binary.LittleEndian.Uint64(r.mem[addr:]), nil
}

func (r *Replay) store(addr uint64, size int, v uint64) error {
	if addr+uint64(size) > uint64(len(r.mem)) {
		return fmt.Errorf("trace: %s: replayed store of %d bytes at %#x outside memory (%d bytes)",
			r.prog.Name, size, addr, len(r.mem))
	}
	if size == 4 {
		binary.LittleEndian.PutUint32(r.mem[addr:], uint32(v))
	} else {
		binary.LittleEndian.PutUint64(r.mem[addr:], v)
	}
	return nil
}

// Step produces the next recorded instruction and applies its
// architectural effects (register write, memory store) to the replay's
// state, mirroring Machine.Step record for record.
func (r *Replay) Step() (emu.DynInst, error) {
	if r.batch != nil {
		return r.batchStep()
	}
	if r.halted {
		return emu.DynInst{}, fmt.Errorf("%s: step after halt", r.prog.Name)
	}
	if r.cur >= len(r.tr.pcs) {
		return emu.DynInst{}, fmt.Errorf("trace: %s: stream exhausted without halt at record %d",
			r.prog.Name, r.cur)
	}
	pc := int(r.tr.pcs[r.cur])
	fl := r.tr.flags[r.cur]
	in := r.prog.Code[pc]
	d := emu.DynInst{
		Seq:     uint64(r.cur),
		PC:      pc,
		Inst:    in,
		Taken:   fl&flagTaken != 0,
		InSlice: r.inSlice,
		SliceID: r.sliceID,
	}
	r.cur++

	if fl&flagAddr != 0 {
		d.Addr = r.tr.addrs[r.ai]
		r.ai++
	}

	// Memory effects first: stores read their data register, atomics read
	// old memory, both before the destination write lands (the recorded
	// destination value of an atomic is the old memory value, so ordering
	// only matters for the memory side).
	op := in.Op
	switch {
	case op.IsStore():
		if err := r.store(d.Addr, op.MemSize(), r.get(in.Val)); err != nil {
			return d, err
		}
	case op.IsAtomic():
		size := op.MemSize()
		old, err := r.load(d.Addr, size)
		if err != nil {
			return d, err
		}
		nv := old + r.get(in.Val)
		switch op {
		case isa.AMin64, isa.AMin32, isa.AMinX64, isa.AMinX32:
			nv = min(old, r.get(in.Val))
		}
		if err := r.store(d.Addr, size, nv); err != nil {
			return d, err
		}
	}

	if fl&flagVal != 0 {
		r.regs[in.Dst] = r.tr.vals[r.vi]
		r.vi++
	}

	// Control flow and slice context, mirroring Machine.Step.
	next := pc + 1
	switch op {
	case isa.Jmp:
		next = int(in.Imm)
	case isa.SliceStart:
		r.inSlice = true
		r.sliceID++
		d.SliceID = r.sliceID
	case isa.SliceEnd:
		r.inSlice = false
	case isa.Halt:
		r.halted = true
	}
	if op.IsBranch() && d.Taken {
		next = int(in.Imm)
	}
	d.NextPC = next
	r.nextPC = next
	return d, nil
}

// RunToSliceEnd advances through the remainder of the current slice
// (inclusive of its slice_end), appending each instruction to buf —
// Machine.RunToSliceEnd over the recorded stream.
func (r *Replay) RunToSliceEnd(buf []emu.DynInst) ([]emu.DynInst, error) {
	if !r.inSlice {
		return buf, fmt.Errorf("trace: %s: RunToSliceEnd outside slice at record %d",
			r.prog.Name, r.cur)
	}
	id := r.sliceID
	for {
		d, err := r.Step()
		if err != nil {
			return buf, err
		}
		buf = append(buf, d)
		if d.Inst.Op == isa.SliceEnd && d.SliceID == id {
			return buf, nil
		}
		if r.halted {
			return buf, fmt.Errorf("trace: %s: halt inside slice %d", r.prog.Name, id)
		}
	}
}

// Fork starts a live wrong-path engine from the replay's current
// architectural state. Wrong paths are the one part of execution that
// cannot come from the trace — which branches mispredict (and therefore
// where wrong paths start) depends on the timing configuration — so they
// are regenerated exactly as a live machine regenerates them.
func (r *Replay) Fork(startPC int, inSlice bool, sliceID uint64) emu.WrongPath {
	if r.segRec != nil {
		// A new fork means the previous wrong path can never be stepped
		// again (the core keeps exactly one live shadow); publish its tail.
		r.segRec.finalize()
		r.segRec = nil
	}
	if r.segs != nil {
		wp := r.segs.fork(r, startPC, inSlice, sliceID)
		if rec, ok := wp.(*segRecorder); ok {
			r.segRec = rec
		}
		return wp
	}
	return emu.NewShadow(r.prog, r.mem, r.regs, startPC, inSlice, sliceID)
}

// Halted reports whether the stream's Halt has been consumed.
func (r *Replay) Halted() bool { return r.halted }

// NextPC is the code index of the next instruction Step would produce.
func (r *Replay) NextPC() int { return r.nextPC }

// Done reports whether every record has been consumed (the replayed run
// reached its halt); the final memory image is complete only then.
func (r *Replay) Done() bool { return r.cur >= len(r.tr.pcs) }
