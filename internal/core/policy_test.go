package core

import (
	"strings"
	"testing"
)

func TestParsePolicyRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want PolicySpec
	}{
		{"", PolicySpec{}},
		{"auto", PolicySpec{}},
		{"selective", PolicySpec{Kind: PolicySelective}},
		{"conventional", PolicySpec{Kind: PolicyConventional}},
		{"partial", PolicySpec{Kind: PolicyPartial}},
		{"partial:inf", PolicySpec{Kind: PolicyPartial}},
		{"partial:1", PolicySpec{Kind: PolicyPartial, Depth: 1}},
		{"partial:224", PolicySpec{Kind: PolicyPartial, Depth: 224}},
		{"throttle", PolicySpec{Kind: PolicyThrottle, Conf: 2}},
		{"throttle:0", PolicySpec{Kind: PolicyThrottle, Conf: 0}},
		{"throttle:4", PolicySpec{Kind: PolicyThrottle, Conf: 4}},
	}
	for _, tc := range cases {
		sp, err := ParsePolicy(tc.in)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", tc.in, err)
		}
		if sp != tc.want {
			t.Fatalf("ParsePolicy(%q) = %+v, want %+v", tc.in, sp, tc.want)
		}
		if err := sp.Validate(); err != nil {
			t.Fatalf("ParsePolicy(%q).Validate: %v", tc.in, err)
		}
		// The canonical spelling re-parses to the same spec.
		back, err := ParsePolicy(sp.String())
		if err != nil {
			t.Fatalf("ParsePolicy(%q canonical %q): %v", tc.in, sp.String(), err)
		}
		// "throttle" canonicalizes to "throttle:2"; "auto" spells the
		// zero spec, which re-parses to the zero spec.
		if back != sp {
			t.Fatalf("canonical %q re-parses to %+v, want %+v", sp.String(), back, sp)
		}
	}
}

func TestParsePolicyErrors(t *testing.T) {
	for _, in := range []string{
		"nope", "partial:x", "partial:-1", "throttle:5", "throttle:-1",
		"selective:1", "conventional:0", "partial:", "throttle:x",
	} {
		if _, err := ParsePolicy(in); err == nil {
			t.Fatalf("ParsePolicy(%q) accepted", in)
		}
	}
	// Unknown-kind errors list the registry so the spelling is
	// discoverable.
	_, err := ParsePolicy("nope")
	if err == nil || !strings.Contains(err.Error(), "selective") {
		t.Fatalf("unknown-policy error does not name the registry: %v", err)
	}
}

func TestPolicySpecValidate(t *testing.T) {
	bad := []PolicySpec{
		{Kind: "bogus"},
		{Kind: PolicySelective, Depth: 1},
		{Kind: PolicyConventional, Conf: 1},
		{Kind: PolicyPartial, Depth: -1},
		{Kind: PolicyPartial, Conf: 2},
		{Kind: PolicyThrottle, Conf: 5},
		{Kind: PolicyThrottle, Conf: -1},
		{Kind: PolicyThrottle, Depth: 3},
	}
	for _, sp := range bad {
		if err := sp.Validate(); err == nil {
			t.Fatalf("Validate accepted %+v", sp)
		}
	}
}

func TestRegisteredPoliciesAndMatrix(t *testing.T) {
	kinds := RegisteredPolicies()
	want := []string{"conventional", "partial", "selective", "throttle"}
	if len(kinds) != len(want) {
		t.Fatalf("registered %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("registered %v, want %v", kinds, want)
		}
	}
	m := ConformanceMatrix(224)
	if len(m) < len(kinds) {
		t.Fatalf("matrix %v smaller than the registry", m)
	}
	seen := map[string]bool{}
	for _, sp := range m {
		if err := sp.Validate(); err != nil {
			t.Fatalf("matrix row %+v invalid: %v", sp, err)
		}
		seen[sp.Kind] = true
	}
	for _, k := range kinds {
		if !seen[k] {
			t.Fatalf("matrix %v has no row for registered policy %q", m, k)
		}
	}
	// The degenerate rows the conformance suite's identity oracle keys on.
	mustHave := []PolicySpec{
		{Kind: PolicyPartial},           // partial:inf ≡ conventional
		{Kind: PolicyThrottle, Conf: 0}, // throttle:0 ≡ conventional
	}
	for _, w := range mustHave {
		found := false
		for _, sp := range m {
			if sp == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("matrix %v lacks degenerate row %s", m, w)
		}
	}
}

func TestConfigPolicyValidation(t *testing.T) {
	// An explicit selective policy demands a reservation even when the
	// legacy SelectiveFlush switch is off...
	cfg := DefaultConfig()
	cfg.Recovery = PolicySpec{Kind: PolicySelective}
	cfg.Reserve = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("selective policy with Reserve 0 accepted")
	}
	// ...and a non-selective policy lifts that demand even when it is on.
	cfg = DefaultConfig()
	cfg.SelectiveFlush = true
	cfg.Recovery = PolicySpec{Kind: PolicyConventional}
	cfg.Reserve = 0
	if err := cfg.Validate(); err != nil {
		t.Fatalf("conventional policy with Reserve 0 rejected: %v", err)
	}
	// Invalid specs are rejected at config validation.
	cfg = DefaultConfig()
	cfg.Recovery = PolicySpec{Kind: PolicyThrottle, Conf: 9}
	if err := cfg.Validate(); err == nil {
		t.Fatal("throttle:9 accepted")
	}
	// newPolicy resolves Auto against SelectiveFlush.
	cfg = DefaultConfig()
	cfg.SelectiveFlush = true
	pol, err := newPolicy(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pol.Name() != PolicySelective || !pol.SelectiveEligible() {
		t.Fatalf("auto under SelectiveFlush resolved to %s", pol.Name())
	}
	cfg.SelectiveFlush = false
	pol, err = newPolicy(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pol.Name() != PolicyConventional || pol.SelectiveEligible() {
		t.Fatalf("auto without SelectiveFlush resolved to %s", pol.Name())
	}
	// Only the throttle policy carries fetch hooks.
	for _, tc := range []struct {
		spec  PolicySpec
		hooks bool
	}{
		{PolicySpec{Kind: PolicySelective}, false},
		{PolicySpec{Kind: PolicyConventional}, false},
		{PolicySpec{Kind: PolicyPartial, Depth: 4}, false},
		{PolicySpec{Kind: PolicyThrottle, Conf: 2}, true},
	} {
		cfg := DefaultConfig()
		cfg.Recovery = tc.spec
		pol, err := newPolicy(&cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.spec, err)
		}
		if _, ok := pol.(fetchHooks); ok != tc.hooks {
			t.Fatalf("%s: fetchHooks = %v, want %v", tc.spec, ok, tc.hooks)
		}
	}
}
