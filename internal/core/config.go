// Package core implements the cycle-level out-of-order core model with the
// selective-flush mechanism of the paper: slice-aware recovery, a linked-
// list ROB with optional block partitioning, a fetch redirect queue for
// concurrent in-slice misses, resource reservation for resolve paths, and
// commit-time reduction execution. SMT (2/4 threads) is supported.
package core

import (
	"fmt"
	"io"

	"repro/internal/flight"
)

// Config holds the core's structural parameters. DefaultConfig reproduces
// the paper's Table 1 (Skylake-like Xeon Platinum 8180 core).
type Config struct {
	// Widths.
	FetchWidth    int
	DispatchWidth int
	IssueWidth    int
	CommitWidth   int

	// Window structures (Table 1).
	ROBSize int
	RS      int // reservation stations
	LQ      int // load queue entries
	SQ      int // store queue entries

	// FrontendDepth is the fetch-to-dispatch latency in cycles; it is
	// the refill part of the branch misprediction penalty.
	FrontendDepth int

	// Predictor selects the direction predictor: "tage" (Table 1),
	// "gshare", "bimodal", "static", or "oracle" (perfect prediction).
	Predictor string
	BTBSets   int
	BTBWays   int

	// SelectiveFlush enables the paper's mechanism. When false the core
	// recovers every misprediction with a conventional full flush.
	SelectiveFlush bool
	// Recovery selects the misprediction-recovery policy explicitly (see
	// policy.go). The zero value (PolicyAuto) follows SelectiveFlush:
	// selective when it is set, conventional otherwise — so existing
	// configurations behave exactly as before. Setting a non-auto kind
	// overrides SelectiveFlush.
	Recovery PolicySpec
	// Reserve is the number of RS/LQ/SQ (and ROB) entries reserved for
	// resolve-path dispatch while in-slice instructions are in flight
	// (§4.7; Fig. 7 sweeps 1..32, default 8).
	Reserve int
	// ROBBlockSize partitions the linked-list ROB into blocks sharing
	// one pointer (§4.3; Fig. 8 sweeps 1..16). 1 = pure linked list.
	ROBBlockSize int
	// FRQSize bounds the fetch redirect queue (§4.6; default 8). When
	// the queue is full, new in-slice misses recover conventionally.
	FRQSize int

	// SMT is the number of hardware threads (1, 2, or 4; Fig. 11).
	SMT int

	// WrongPathMemAccess controls whether wrong-path loads access (and
	// therefore warm or pollute) the data caches. The shadow wrong-path
	// engine computes exact addresses from forked register state, which
	// makes wrong paths unrealistically good prefetchers of the
	// reconverged future; real speculative hardware loses the values of
	// in-flight producers. See DESIGN.md for the calibration discussion.
	WrongPathMemAccess bool

	// StoreFwdLat is the store-to-load forwarding latency.
	StoreFwdLat int
	// AtomicExtra is added to atomic read-modify-write execution.
	AtomicExtra int
	// BarrierLat is the release overhead of a synchronization barrier.
	BarrierLat int

	// FrontendQueue bounds the number of in-flight fetched-but-not-
	// dispatched instructions per thread.
	FrontendQueue int

	// MaxCycles aborts runaway simulations (0 = no limit).
	MaxCycles int64

	// ForceCycleAccurate disables the event-driven fast paths — wakeup-
	// driven issue selection and the sim driver's idle-cycle fast-forward
	// — and steps every cycle with the legacy full-RS scan. The two modes
	// produce byte-identical results (the equivalence test in
	// internal/sim enforces it); this knob exists for that test and for
	// debugging scheduling discrepancies.
	ForceCycleAccurate bool

	// Trace, when non-nil, receives one line per pipeline event (fetch,
	// dispatch, issue, commit, flush, recovery) — the debugging view of
	// the selective-flush mechanism. Expensive; use with small inputs.
	Trace io.Writer
	// TraceLimit stops tracing after this many events (0 = unlimited).
	TraceLimit int64

	// Recorder, when non-nil, receives structured pipeline events
	// (selective-flush unlink/splice/recovery, and per-uop lifetimes if
	// its TraceUops is set) and serves occupancy snapshots — the flight
	// recorder of internal/flight. Nil (the default) records nothing
	// and adds no cost beyond one pointer check per hook site.
	Recorder *flight.Recorder
}

// DefaultConfig returns the paper's Table 1 core configuration.
func DefaultConfig() Config {
	return Config{
		FetchWidth:         4,
		DispatchWidth:      4,
		IssueWidth:         8,
		CommitWidth:        4,
		ROBSize:            224,
		RS:                 97,
		LQ:                 72,
		SQ:                 56,
		FrontendDepth:      12,
		Predictor:          "tage",
		BTBSets:            512,
		BTBWays:            4,
		SelectiveFlush:     false,
		Reserve:            8,
		ROBBlockSize:       1,
		FRQSize:            8,
		SMT:                1,
		WrongPathMemAccess: false,
		StoreFwdLat:        5,
		AtomicExtra:        5,
		BarrierLat:         20,
		FrontendQueue:      64,
		MaxCycles:          0,
	}
}

// Validate checks configuration consistency.
func (c Config) Validate() error {
	if c.SMT != 1 && c.SMT != 2 && c.SMT != 4 {
		return fmt.Errorf("core: SMT must be 1, 2, or 4 (got %d)", c.SMT)
	}
	if c.ROBSize <= 0 || c.RS <= 0 || c.LQ <= 0 || c.SQ <= 0 {
		return fmt.Errorf("core: window structures must be positive")
	}
	if c.Reserve < 0 || c.Reserve >= c.RS || c.Reserve >= c.LQ || c.Reserve >= c.SQ {
		return fmt.Errorf("core: Reserve %d out of range", c.Reserve)
	}
	if err := c.Recovery.Validate(); err != nil {
		return err
	}
	if c.Recovery.effective(c.SelectiveFlush).Kind == PolicySelective && c.Reserve == 0 {
		// §4.7's reservation is the forward-progress guarantee: with no
		// entries held back, regular fetch packs the RS/LQ/SQ with
		// instructions that cannot complete until the resolve path of an
		// unresolved branch dispatches — which then has no entries. The
		// resulting deadlock is architectural, so reject it up front
		// instead of letting the watchdog time out.
		return fmt.Errorf("core: Reserve 0 with selective flush deadlocks " +
			"(resolve paths starve, §4.7); reserve at least 1 entry")
	}
	if c.FetchWidth <= 0 || c.DispatchWidth <= 0 || c.IssueWidth <= 0 || c.CommitWidth <= 0 {
		return fmt.Errorf("core: widths must be positive")
	}
	if c.ROBBlockSize < 1 {
		return fmt.Errorf("core: ROBBlockSize must be >= 1")
	}
	return nil
}
