package core

import "repro/internal/flight"

// resolveBranch handles execution-time resolution of a correct-path
// conditional branch: predictor training, and — for mispredictions —
// either the selective flush of §4.2 or the configured recovery
// policy's full-squash repair.
func (c *Core) resolveBranch(u *uop) {
	t := u.t
	if c.polFetch != nil {
		c.polFetch.OnBranchResolved(c, t, u)
	}

	if !u.mispred {
		t.pred.Resolve(u.pred, uint64(u.d.PC), u.d.Taken, true)
		return
	}

	switch {
	case u.miss != nil && !u.miss.cancelled:
		// In-slice miss — including nested misses detected inside a
		// resolve path, which recurse through the same mechanism.
		c.resolveSelective(t, u)
	case u.resolvePath:
		// Nested miss handled by the stall fallback (FRQ was full at
		// detection): the rest of the segment is the correct path;
		// fetch resumes from it after a redirect bubble.
		t.pred.Resolve(u.pred, uint64(u.d.PC), u.d.Taken, false)
		if u.resolveOf != nil && u.resolveOf.stall == u {
			u.resolveOf.stall = nil
		}
		t.fetchStallUntil = maxi64(t.fetchStallUntil, c.now+1)
	default:
		c.policy.Recover(c, t, u)
	}
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// resolveSelective performs the §4.2 recovery: flush only the wrong-path
// instructions of the slice, push the miss onto the FRQ, and let fetch
// splice the buffered correct path into the linked ROB.
func (c *Core) resolveSelective(t *thread, u *uop) {
	mi := u.miss

	// Detection-time gating (fetchNormal) bounds concurrent selective
	// recoveries to the FRQ capacity, so the push cannot fail.
	if !t.fq.Push(mi) {
		panic("core: FRQ overflow despite detection-time gating")
	}
	if t.fq.Peak() > c.stats.FRQPeak {
		c.stats.FRQPeak = t.fq.Peak()
	}

	t.pred.Resolve(u.pred, uint64(u.d.PC), u.d.Taken, false)
	c.stats.SliceRecoveries++
	if c.rec != nil {
		c.recordMechanism(flight.EvRecoverSel, t, u, int64(len(mi.seg)))
	}
	if c.traceOn {
		c.trace("RECOVER-SEL t%d %s seg=%d", t.id, traceUop(u), len(mi.seg))
	}
	mi.resolved = true
	if len(mi.seg) == 0 {
		mi.segDispatched = true
		c.releaseSeg(mi)
	} else {
		// The branch entry is the initial splice cursor: the first
		// resolved-path instruction is inserted right after it.
		mi.insertPos = &u.node
		u.spliceHold = mi
	}

	// Selectively flush this miss's wrong-path instructions: dispatched
	// ones unlink from the ROB, frontend ones drop.
	dispFlushed := 0
	for i, w := range mi.wp {
		if w.state == stFlushed || w.state == stCommitted {
			continue
		}
		if faultMode == FaultSkipUnlink && i == 0 {
			continue // injected bug: leave one wrong-path uop linked
		}
		if c.rec != nil {
			c.recordMechanism(flight.EvUnlink, t, w, int64(mi.branchSeq))
		}
		c.flushUop(t, w)
		dispFlushed++
	}
	mi.wp = mi.wp[:0]
	feFlushed := 0
	fe := t.frontend[:0]
	for _, w := range t.frontend {
		if w.wpOf == mi {
			c.freeUop(w)
			feFlushed++
			continue
		}
		fe = append(fe, w)
	}
	t.frontend = fe
	mi.flushLen = dispFlushed
	c.stats.FlushedSelective += uint64(dispFlushed + feFlushed)

	// Wrong-path fetch for this miss still in progress: it dies here
	// (the shadow's remaining instructions were never fetched).
	if t.shadowMiss == mi {
		t.shadow = nil
		t.shadowMiss = nil
		t.mode = fmNormal
		t.wpStuck = false
	}

	// Block-partitioned ROB: stranded entries from the flush and the
	// upcoming splice (§4.3, Fig. 3), reclaimed when the region retires.
	if c.space.BlockSize() > 1 {
		segReal := 0
		for _, d := range mi.seg {
			if !d.Inst.Op.IsSlice() {
				segReal++
			}
		}
		release := u.d.Seq
		if n := len(mi.seg); n > 0 {
			release = mi.seg[n-1].Seq
		}
		g := c.space.FlushGaps(dispFlushed, segReal, release, c.cfg.Reserve+1)
		c.stats.GapsCreated += uint64(g)
	}

	if faultMode != FaultLeakPending {
		t.pendingMisses--
	}
	if t.pendingMisses == 0 {
		t.fenceStall = false
	}

	t.holes = append(t.holes, mi)

	// Fetch turns to the oldest pending miss (this one, unless an even
	// older hole is still resolving) after a one-cycle redirect bubble.
	t.startNextResolve()
	t.fetchStallUntil = maxi64(t.fetchStallUntil, c.now+1)
}

// resolveConventional performs the classic full flush for a mispredicted
// branch outside any slice (or with selective flush disabled).
func (c *Core) resolveConventional(t *thread, u *uop) {
	t.pred.Resolve(u.pred, uint64(u.d.PC), u.d.Taken, true)
	c.conventionalFlush(t, u)
}

// conventionalFlush removes everything logically younger than branch u,
// cancels pending misses belonging to the flushed region, restores the
// rename checkpoint, and resets the fetch state machine to the correct
// path (the trace cursor, which stopped right after the branch).
func (c *Core) conventionalFlush(t *thread, u *uop) {
	c.stats.ConvRecoveries++
	if c.traceOn {
		c.trace("RECOVER-ALL t%d %s", t.id, traceUop(u))
	}

	// 1. Flush dispatched younger instructions (linked-list order is
	// logical order, so resolve-path instructions of older misses —
	// spliced before u — survive).
	victims := t.list.RemoveRangeAfter(&u.node)
	if c.rec != nil {
		c.recordMechanism(flight.EvRecoverFull, t, u, int64(len(victims)))
	}
	for i, n := range victims {
		if faultMode != FaultNone && i == 0 && c.faultFullFlushVictim(t, u, n) {
			continue
		}
		c.releaseFlushed(t, n.Val)
	}
	c.stats.FlushedFull += uint64(len(victims))

	// 2. Flush the frontend: wrong-path uops, regular uops younger than
	// the branch, and resolve-path uops of cancelled misses. Resolve-
	// path uops of older misses survive.
	c.flushFrontendYounger(t, u.d.Seq)

	// 3. Cancel pending misses whose branch was flushed, then squash
	// them from the FRQ. (The cancel flag is authoritative: the branch
	// uop pointer must not be consulted after it can be recycled.)
	for i, n := range victims {
		if faultMode == FaultSkipUnlink && i == 0 {
			continue // the re-linked victim stays live (injected bug)
		}
		v := n.Val
		c.cancelVictimMiss(t, v)
		c.freeUop(v)
	}
	t.fq.Squash(func(mi *missInfo) bool { return mi.cancelled })
	if t.pendingMisses == 0 {
		t.fenceStall = false
	}
	t.startNextResolve()

	// 4. Rename table back to the branch checkpoint. References to
	// flushed or recycled producers resolve as ready automatically.
	if u.ck != nil {
		t.rt.Restore(*u.ck)
		u.ck = nil
	} else if u.miss != nil && u.miss.ckValid {
		t.rt.Restore(u.miss.ck)
	}

	// 5. Reset fetch to the trace.
	c.resetFetchAfterFlush(t)
}

// flushFrontendYounger drops every frontend uop logically younger than
// branchSeq (wrong-path uops, younger regular uops, resolve-path uops of
// cancelled misses) and prunes the resolve channels the same way —
// step 2 of every full-squash recovery.
func (c *Core) flushFrontendYounger(t *thread, branchSeq uint64) {
	fe := t.frontend[:0]
	for _, w := range t.frontend {
		drop := false
		switch {
		case w.d.Wrong:
			drop = true
		case w.resolvePath:
			drop = w.resolveOf.branchSeq > branchSeq || w.resolveOf.cancelled
		default:
			drop = w.d.Seq > branchSeq
		}
		if drop {
			if w.miss != nil && !w.miss.resolved && !w.miss.cancelled {
				// A younger in-slice miss detected in the frontend:
				// cancel it with its branch.
				w.miss.cancelled = true
				t.pendingMisses--
				c.releaseSeg(w.miss)
			}
			c.freeUop(w)
			continue
		}
		fe = append(fe, w)
	}
	t.frontend = fe
	rms := t.resolveMisses[:0]
	for _, mi := range t.resolveMisses {
		if mi.branchSeq > branchSeq || mi.cancelled {
			for _, w := range mi.feq[mi.feqHead:] {
				if w.miss != nil && !w.miss.resolved && !w.miss.cancelled {
					w.miss.cancelled = true
					t.pendingMisses--
					c.releaseSeg(w.miss)
				}
				c.freeUop(w)
			}
			mi.feq = mi.feq[:0]
			mi.feqHead = 0
			mi.inResolveList = false
			continue
		}
		rms = append(rms, mi)
	}
	t.resolveMisses = rms
}

// cancelVictimMiss cancels a flushed victim's pending in-slice miss, if
// any — the per-victim half of step 3 of a full-squash recovery.
func (c *Core) cancelVictimMiss(t *thread, v *uop) {
	if v.miss != nil && !v.miss.cancelled {
		if !v.miss.resolved {
			t.pendingMisses--
		}
		v.miss.cancelled = true
		c.releaseSeg(v.miss)
	}
}

// resetFetchAfterFlush points fetch back at the trace — step 5 of every
// full-squash recovery. The machine's cursor stopped at the branch's
// correct-path successor when the miss was detected (non-selective
// misses always divert fetch to the shadow), so regular fetch resumes
// exactly on the correct path.
func (c *Core) resetFetchAfterFlush(t *thread) {
	t.shadow = nil
	t.shadowMiss = nil
	t.convMiss = nil
	t.wpStuck = false
	t.mode = fmNormal
	if c.space.BlockSize() > 1 {
		c.space.ReleaseAllGaps()
	}
	t.redirectUntil = c.now + 1 + int64(c.cfg.FrontendDepth)
	t.fetchStallUntil = maxi64(t.fetchStallUntil, c.now+1)
	t.lastILine = -1
}

// partialFlush is conventionalFlush with the victim release staged: the
// depth victims nearest the branch leave the window at resolution, the
// rest at depth per cycle (drainStep), modeling a squash walker that
// reclaims a bounded number of entries per cycle. The branch stays at
// the commit head as the order boundary (drainHold) until the drain
// completes; frontend, miss, rename, and fetch repair are not staged —
// they happen at resolution exactly as in a conventional flush. Callers
// guarantee len(victims) > depth >= 1.
func (c *Core) partialFlush(t *thread, u *uop, depth int) {
	c.stats.ConvRecoveries++
	if c.traceOn {
		c.trace("RECOVER-PART t%d %s depth=%d", t.id, traceUop(u), depth)
	}

	victims := t.list.RemoveRangeAfter(&u.node)
	if c.rec != nil {
		c.recordMechanism(flight.EvRecoverFull, t, u, int64(len(victims)))
	}
	for i := 0; i < depth; i++ {
		if faultMode != FaultNone && i == 0 && c.faultFullFlushVictim(t, u, victims[i]) {
			continue
		}
		c.releaseFlushed(t, victims[i].Val)
	}
	c.stats.FlushedFull += uint64(len(victims))

	c.flushFrontendYounger(t, u.d.Seq)

	// Miss cancellation is not staged: a parked victim's FRQ entry must
	// squash now, before startNextResolve picks a resolve target. Only
	// the released prefix is freed; parked victims stay live (they may
	// still issue and complete while draining) and are freed as the
	// drain releases them.
	for i, n := range victims {
		c.cancelVictimMiss(t, n.Val)
		if i < depth {
			if faultMode == FaultSkipUnlink && i == 0 {
				continue // the re-linked victim stays live (injected bug)
			}
			c.freeUop(n.Val)
		}
	}
	t.fq.Squash(func(mi *missInfo) bool { return mi.cancelled })
	if t.pendingMisses == 0 {
		t.fenceStall = false
	}
	t.startNextResolve()

	if u.ck != nil {
		t.rt.Restore(*u.ck)
		u.ck = nil
	} else if u.miss != nil && u.miss.ckValid {
		t.rt.Restore(u.miss.ck)
	}

	c.resetFetchAfterFlush(t)

	// Park the remainder oldest-first and hold the branch at commit as
	// the order boundary until the walker catches up.
	for _, n := range victims[depth:] {
		t.drainQ = append(t.drainQ, n.Val)
	}
	u.drainHold = true
	t.drainBoundary = u
	t.drainBoundaryID = u.id
	t.drainDepth = depth
	c.draining++
}

// drainStep advances every in-progress staged flush by one cycle,
// releasing up to the flush's depth of parked victims per thread; when a
// queue empties, its boundary branch is released to commit. Runs right
// after complete (like flushes themselves), so freed resources are
// visible to dispatch the same cycle.
func (c *Core) drainStep() {
	for _, t := range c.threads {
		n := t.drainLen()
		if n == 0 {
			continue
		}
		k := t.drainDepth
		if k > n {
			k = n
		}
		for i := 0; i < k; i++ {
			w := t.drainQ[t.drainHead+i]
			t.drainQ[t.drainHead+i] = nil
			c.releaseFlushed(t, w)
			c.freeUop(w)
		}
		t.drainHead += k
		c.stats.DrainCycles++
		c.activity = true
		if t.drainLen() == 0 {
			c.endDrain(t)
		}
	}
}

// finishDrain releases a thread's remaining parked victims at once (a
// new recovery supersedes the drain in progress).
func (c *Core) finishDrain(t *thread) {
	for _, w := range t.drainQ[t.drainHead:] {
		c.releaseFlushed(t, w)
		c.freeUop(w)
	}
	c.endDrain(t)
}

// endDrain clears a completed drain: the boundary branch may commit.
func (c *Core) endDrain(t *thread) {
	if b := t.drainBoundary; b != nil && b.id == t.drainBoundaryID {
		b.drainHold = false
	}
	t.drainBoundary = nil
	t.drainQ = t.drainQ[:0]
	t.drainHead = 0
	c.draining--
}

// flushUop removes one dispatched uop from the window (selective flush).
func (c *Core) flushUop(t *thread, w *uop) {
	if w.node.InList() {
		t.list.Remove(&w.node)
	}
	c.releaseFlushed(t, w)
	c.freeUop(w)
}

// releaseFlushed returns a flushed uop's resources.
func (c *Core) releaseFlushed(t *thread, w *uop) {
	if w.tombstone {
		// Tombstones are committed cursors at or before the commit
		// frontier; no flush can reach them.
		panic("core: flushing a tombstone cursor")
	}
	if w.state == stWaiting {
		c.rsUsed--
	}
	w.state = stFlushed
	// A flushed producer satisfies its dependents' operand checks
	// (depRef.ready treats stFlushed as ready): wake them now.
	c.wakeWaiters(w)
	if c.rec != nil {
		c.recordUop(w, true)
	}
	c.space.Release()
	needLQ, needSQ := resourceNeeds(w.d.Inst.Op)
	if needLQ {
		c.lqUsed--
	}
	if needSQ {
		c.sqUsed--
	}
	if w.d.InSlice && !w.d.Wrong {
		c.inSliceCount--
	}
	t.inflight--
	if w.d.Inst.Op.IsStore() && !w.d.Wrong {
		t.removeStore(w)
	}
	if w.barrierOK || t.barrierUop == w {
		t.barrierUop = nil
		t.barrierWait = false
	}
}
