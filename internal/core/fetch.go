package core

import (
	"fmt"

	"repro/internal/isa"
)

// fetch fills the frontend queues. One thread fetches per cycle, chosen by
// ICOUNT (fewest in-flight instructions), which is the standard SMT fetch
// policy; with one thread it degenerates to that thread every cycle.
func (c *Core) fetch() {
	t := c.pickFetchThread()
	if t == nil {
		return
	}
	c.fetchThread(t)
}

func (c *Core) pickFetchThread() *thread {
	var best *thread
	for i := range c.threads {
		t := c.threads[(c.fetchRR+i)%len(c.threads)]
		if t.done || t.finishedFetching() && t.resolving == nil {
			continue
		}
		if c.now < t.fetchStallUntil {
			continue
		}
		if t.resolving == nil || t.resolving.stall != nil {
			if len(t.frontend) >= c.cfg.FrontendQueue {
				continue
			}
		}
		if t.nextFetchPC() < 0 {
			continue // barrier/fence/halt/wrong-path stall: nothing to fetch
		}
		if best == nil || t.inflight < best.inflight {
			best = t
		}
	}
	c.fetchRR++
	return best
}

// iCacheCheck models instruction-cache timing at 16-byte (4-instruction)
// line granularity: crossing into a line that misses stalls fetch until
// the fill completes.
func (c *Core) iCacheCheck(t *thread, pc int) bool {
	lineSz := 4 // instructions per fetch line
	line := pc / lineSz
	if line == t.lastILine {
		return true
	}
	done := c.hier.Inst(pc, c.now)
	t.lastILine = line
	if done > c.now+int64(c.hier.L1I.Config().HitLatency) {
		t.fetchStallUntil = done
		return false
	}
	return true
}

// fetchThread pulls up to FetchWidth instructions from the thread's
// current source, in priority order: resolve path (FRQ head), wrong path
// (shadow), regular trace.
func (c *Core) fetchThread(t *thread) {
	width := c.cfg.FetchWidth
	if c.polFetch != nil {
		width = c.polFetch.FetchWidth(c, t)
	}
	for used := 0; used < width; used++ {
		// The resolve stream has its own unbounded frontend channel so
		// that blocked regular instructions can never stop a correct
		// path from entering the ROB (the role of the §4.7 front-end
		// flush); its real bound is the FRQ depth times the slice
		// length.
		if t.resolving == nil || t.resolving.stall != nil {
			if len(t.frontend) >= c.cfg.FrontendQueue {
				return
			}
		}
		pc := t.nextFetchPC()
		if pc < 0 {
			return
		}
		if !c.iCacheCheck(t, pc) {
			return
		}
		stop := false
		switch {
		case t.resolving != nil && t.resolving.stall == nil:
			c.stats.FetchResolve++
			stop = c.fetchResolve(t)
		case t.mode == fmWrong:
			c.stats.FetchWrong++
			stop = c.fetchWrong(t)
		default:
			c.stats.FetchNormal++
			stop = c.fetchNormal(t)
		}
		if stop {
			return
		}
	}
}

// enqueue places a fetched uop into the regular frontend queue with the
// pipeline delay.
func (t *thread) enqueue(u *uop) {
	u.readyFE = t.c.now + int64(t.c.cfg.FrontendDepth)
	u.state = stFrontend
	t.frontend = append(t.frontend, u)
}

// enqueueResolve places a fetched resolve-path uop into its miss's
// resolve channel.
func (t *thread) enqueueResolve(u *uop) {
	u.readyFE = t.c.now + int64(t.c.cfg.FrontendDepth)
	u.state = stFrontend
	mi := u.resolveOf
	mi.feq = append(mi.feq, u)
	if !mi.inResolveList {
		mi.inResolveList = true
		t.resolveMisses = append(t.resolveMisses, mi)
	}
}

// predictBranch runs the direction predictor and BTB for a fetched
// correct-path conditional branch, returning whether fetch must stop this
// cycle (taken-predicted branches end the fetch group).
func (c *Core) predictBranch(t *thread, u *uop) (mispred, stop bool) {
	d := &u.d
	c.stats.Branches++
	predTaken, p := t.pred.Predict(uint64(d.PC), d.Taken)
	t.pred.OnFetch(predTaken)
	u.pred = p
	u.predTaken = predTaken
	if c.polFetch != nil {
		c.polFetch.OnFetchBranch(c, t, u)
	}
	if predTaken {
		stop = true
		if _, hit := t.btb.Lookup(uint64(d.PC)); !hit {
			// Decode-stage redirect bubble on BTB miss.
			t.btb.Insert(uint64(d.PC), int(d.Inst.Imm))
			t.fetchStallUntil = c.now + 2
		}
	}
	if predTaken != d.Taken {
		c.stats.Mispredicts++
		u.mispred = true
		return true, true
	}
	return false, stop
}

// fetchNormal fetches one instruction from the correct-path trace and
// handles miss detection, slice markers, fences, barriers, and halt.
// It returns true when fetch must stop for this cycle.
func (c *Core) fetchNormal(t *thread) bool {
	d, err := t.m.Step()
	if err != nil {
		panic(fmt.Sprintf("core %d thread %d: %v", c.id, t.id, err))
	}
	u := c.newUop(d, t)
	u.age = d.Seq
	u.reduce = d.Inst.Reduce()

	switch d.Inst.Op {
	case isa.SliceFence:
		t.enqueue(u)
		if t.pendingMisses > 0 {
			// Approximation (see DESIGN.md): instructions past the
			// fence would be flushed when an in-slice miss resolves
			// (§4.4); we stall fetch at the fence instead.
			t.fenceStall = true
			return true
		}
		return false
	case isa.SliceStart, isa.SliceEnd:
		t.enqueue(u)
		return false
	case isa.Barrier:
		t.enqueue(u)
		t.barrierWait = true
		t.barrierUop = u
		return true
	case isa.Halt:
		t.enqueue(u)
		t.haltSeen = true
		return true
	}

	if !d.IsBranch() {
		t.enqueue(u)
		return false
	}

	mispred, stop := c.predictBranch(t, u)
	t.enqueue(u)
	if !mispred {
		return stop
	}
	if c.traceOn {
		c.trace("FETCH-MISS  t%d %s predicted=%v", t.id, traceUop(u), u.predTaken)
	}

	// Misprediction detected (it will be acted on when the branch
	// executes). Decide the recovery style now, as the frontend's fetch
	// divergence depends on it.
	// Gate on total outstanding selective recoveries (detected-but-
	// unresolved plus FRQ-queued) so the resolution-time FRQ push can
	// never overflow; an over-limit miss recovers conventionally (§4.8).
	selective := c.selEligible && d.InSlice &&
		t.pendingMisses+t.fq.Len() < c.cfg.FRQSize
	wrongPC := d.PC + 1
	if u.predTaken {
		wrongPC = int(d.Inst.Imm)
	}
	t.wpAge = u.d.Seq
	if selective {
		sb := c.getSegBuf()
		seg, err := t.m.RunToSliceEnd(sb.buf[:0])
		if err != nil {
			panic(fmt.Sprintf("core %d thread %d: %v", c.id, t.id, err))
		}
		sb.buf = seg
		mi := &missInfo{branch: u, branchSeq: u.d.Seq, seg: seg, segOwner: sb}
		c.stats.SegLenSum += uint64(len(seg))
		u.miss = mi
		t.pendingMisses++
		t.unresolved = append(t.unresolved, mi)
		t.shadow = t.m.Fork(wrongPC, true, d.SliceID)
		t.shadowMiss = mi
		t.mode = fmWrong
	} else {
		t.shadow = t.m.Fork(wrongPC, d.InSlice, d.SliceID)
		t.shadowMiss = nil
		t.convMiss = u
		t.mode = fmWrong
	}
	// Redirect bubble: fetch resumes next cycle from the wrong path.
	return true
}

// fetchWrong fetches one wrong-path instruction from the shadow engine.
// The direction callback is t.wrongDir, built once per thread (see the
// field comment for the escape-analysis rationale).
func (c *Core) fetchWrong(t *thread) bool {
	d, ok := t.shadow.Step(t.wrongDir)
	if !ok {
		// The wrong path ran off the program. A conventional miss
		// keeps fetch stalled until resolution; an in-slice miss that
		// never reached its slice_end stalls the same way.
		if t.shadowMiss != nil {
			t.wpStuck = true
		}
		return true
	}
	u := c.newUop(d, t)
	u.wpOf = t.shadowMiss
	u.age = t.wpAge
	c.stats.FetchedWrongPath++
	t.enqueue(u)

	// In-slice wrong paths end at the slice_end: beyond it the frontend
	// is back on control-independent (correct) instructions, which come
	// from the regular trace.
	if t.shadowMiss != nil && !t.shadow.InSlice() {
		t.mode = fmNormal
		t.shadow = nil
		t.shadowMiss = nil
	}
	return d.Inst.Op.IsBranch() && d.Taken
}

// fetchResolve fetches one instruction of the FRQ head's correct-path
// segment.
func (c *Core) fetchResolve(t *thread) bool {
	mi := t.resolving
	d := mi.seg[mi.fetched]
	mi.fetched++
	u := c.newUop(d, t)
	u.age = d.Seq
	u.reduce = d.Inst.Reduce()
	u.resolvePath = true
	u.resolveOf = mi

	last := mi.fetched >= len(mi.seg)

	if d.IsBranch() {
		mispred, _ := c.predictBranch(t, u)
		if mispred {
			c.stats.NestedMisses++
			// A miss inside a resolving slice is handled by the same
			// mechanism, recursively: the remainder of this segment
			// is the nested miss's correct path, the parent's hole
			// ends at the nested branch, and fetch moves on (to
			// other pending misses or the regular stream) while the
			// nested branch resolves. Wrong-path fetch for nested
			// misses is not modeled (see DESIGN.md).
			if c.selEligible && d.InSlice &&
				t.pendingMisses+t.fq.Len() < c.cfg.FRQSize {
				child := &missInfo{
					branch:    u,
					branchSeq: u.d.Seq,
					seg:       mi.seg[mi.fetched:],
				}
				shareSeg(mi, child)
				u.miss = child
				t.pendingMisses++
				t.unresolved = append(t.unresolved, child)
				// Truncate the parent at the nested branch: its
				// splice is complete once the branch dispatches.
				mi.seg = mi.seg[:mi.fetched]
				if mi.dispatched >= len(mi.seg) {
					mi.segDispatched = true
					c.releaseSeg(mi)
				}
				last = true
			} else {
				// FRQ pressure: fall back to stalling resolve
				// fetch until the nested branch resolves.
				mi.stall = u
			}
		}
	}
	t.enqueueResolve(u)

	if last {
		// Segment complete (its slice_end was just fetched, or it was
		// truncated at a nested miss): move to the next pending miss,
		// or resume regular fetch at the regular-fetch point.
		t.startNextResolve()
		return true // redirect bubble back to regular fetch
	}
	return false
}
