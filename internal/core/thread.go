package core

import (
	"repro/internal/bpred"
	"repro/internal/emu"
	"repro/internal/frq"
	"repro/internal/isa"
	"repro/internal/rename"
	"repro/internal/rob"
)

// fetchMode is the thread's current instruction source.
type fetchMode uint8

const (
	fmNormal fetchMode = iota // the correct-path trace (the Machine)
	fmWrong                   // a wrong path (the Shadow)
)

// thread is one hardware context: its architectural machine (trace
// source), predictor state, rename table, logical-order ROB list, frontend
// queue, and the selective-flush fetch state machine.
type thread struct {
	id int
	c  *Core

	m    emu.Frontend
	pred bpred.Predictor
	btb  *bpred.BTB

	rt   rename.Table[renameRef]
	list rob.List[*uop]
	// fq holds misses whose correct paths still need fetching; serviced
	// program-order-oldest-first (DESIGN.md, deviation 1).
	fq *frq.Queue[*missInfo]

	frontend []*uop
	// resolveMisses lists the misses with fetched-but-undispatched
	// resolve-path instructions (each miss queues them in missInfo.feq —
	// the resolve channel, one FIFO per miss).
	resolveMisses []*missInfo

	// Fetch source state.
	mode       fetchMode
	shadow     emu.WrongPath
	shadowMiss *missInfo // in-slice miss whose wrong path is being fetched
	convMiss   *uop      // pending conventional miss: fetch stalls on its shadow
	wpStuck    bool      // shadow died before reaching its slice_end
	// wrongDir is the shadow's branch-direction callback, built once:
	// rebuilding the closure per fetchWrong call would heap-allocate per
	// wrong-path instruction now that Step is an interface call (escape
	// analysis cannot see through emu.WrongPath).
	wrongDir emu.BranchDir

	// Resolve-path fetch: the program-order-oldest pending FRQ entry.
	// The paper's FIFO discipline assumes detection order matches the
	// order commit needs; servicing oldest-first (with preemption when
	// an older miss resolves) implements the stated intent — "the
	// oldest instructions are executed first, such that commit is not
	// needlessly blocked" (§4.6) — and is what makes the §4.7
	// deadlock-freedom argument hold (see DESIGN.md).
	resolving *missInfo
	// holes tracks resolved misses whose correct paths have not fully
	// entered the ROB; unresolved tracks detected in-slice misses whose
	// branches have not executed yet. The oldest across both owns the
	// reserved resources.
	holes      []*missInfo
	unresolved []*missInfo

	pendingMisses int // in-slice misses detected but not yet resolved
	fenceStall    bool
	barrierWait   bool
	barrierUop    *uop
	haltSeen      bool
	done          bool // halt committed; thread finished

	inflight        int    // dispatched, not yet committed (ICOUNT fetch policy)
	wpAge           uint64 // logical age assigned to wrong-path uops
	fetchStallUntil int64
	redirectUntil   int64 // refill window after a conventional flush
	lastILine       int

	stores []*uop // in-flight correct-path stores, program order

	// Staged-drain state for the partial policy: victims beyond the flush
	// depth are parked here at resolution and released drainDepth per
	// cycle, oldest first (drainQ[drainHead:] is the live window). The
	// boundary branch holds commit (uop.drainHold) until the drain ends.
	drainQ          []*uop
	drainHead       int
	drainDepth      int
	drainBoundary   *uop
	drainBoundaryID uint64

	// lowConfOut counts fetched-but-unresolved low-confidence branches for
	// the throttle policy's fetch gate.
	lowConfOut int
}

// drainLen returns the number of parked victims not yet released.
func (t *thread) drainLen() int { return len(t.drainQ) - t.drainHead }

func newThread(id int, c *Core, m emu.Frontend) *thread {
	t := &thread{
		id:        id,
		c:         c,
		m:         m,
		pred:      bpred.New(c.cfg.Predictor),
		btb:       bpred.NewBTB(c.cfg.BTBSets, c.cfg.BTBWays),
		fq:        frq.New[*missInfo](c.cfg.FRQSize),
		lastILine: -1,
	}
	t.wrongDir = func(pc int, in isa.Inst, actual bool) bool {
		// Wrong-path branches follow the shadow's own outcomes: the
		// fork inherits real register values, so near-reconvergence
		// wrong paths (the common case for slice bodies) terminate
		// where the real wrong path would. The predictor still sees
		// the fetched direction in its speculative history but is
		// never trained on wrong-path branches (see DESIGN.md).
		t.pred.OnFetch(actual)
		return actual
	}
	return t
}

// finishedFetching reports whether the thread will produce no more
// instructions.
func (t *thread) finishedFetching() bool { return t.haltSeen || t.done }

// active reports whether the thread still has work in flight or to fetch.
func (t *thread) active() bool { return !t.done }

// nextFetchPC peeks the PC the current source would fetch next, or -1 if
// the source cannot produce an instruction right now.
func (t *thread) nextFetchPC() int {
	if t.resolving != nil && t.resolving.stall == nil {
		if t.resolving.fetched < len(t.resolving.seg) {
			return t.resolving.seg[t.resolving.fetched].PC
		}
		return -1
	}
	if t.mode == fmWrong {
		if t.wpStuck || t.shadow == nil || t.shadow.Dead() {
			return -1
		}
		return t.shadow.NextPC()
	}
	if t.fenceStall || t.barrierWait || t.haltSeen || t.m.Halted() {
		return -1
	}
	return t.m.NextPC()
}

// startNextResolve points resolve fetch at the program-order-oldest
// pending miss (preempting a younger one if an older branch just
// resolved). Completed and cancelled entries are squashed.
func (t *thread) startNextResolve() {
	t.fq.Squash(func(mi *missInfo) bool {
		return mi.cancelled || mi.fetched >= len(mi.seg)
	})
	t.resolving = nil
	for _, mi := range t.fq.All() {
		if t.resolving == nil || mi.branchSeq < t.resolving.branchSeq {
			t.resolving = mi
		}
	}
}

// oldestHoleSeq returns the branch sequence number of the oldest in-slice
// miss that is, or will become, a hole in the ROB: resolved misses whose
// correct paths have not fully dispatched, and detected misses whose
// branches have not executed yet. Only a resolve path at least as old as
// every such miss may consume the reserved resources — it is guaranteed to
// drain into commit, which is what makes reserving "a single resource of
// each" deadlock-free (§4.7). A younger path must leave the reserved
// entries alone, because an older hole may still claim them.
func (t *thread) oldestHoleSeq() uint64 {
	oldest := ^uint64(0)
	live := t.holes[:0]
	for _, mi := range t.holes {
		if mi.cancelled || mi.segDispatched {
			continue
		}
		live = append(live, mi)
		if mi.branchSeq < oldest {
			oldest = mi.branchSeq
		}
	}
	t.holes = live
	liveU := t.unresolved[:0]
	for _, mi := range t.unresolved {
		if mi.cancelled || mi.resolved {
			continue
		}
		liveU = append(liveU, mi)
		if mi.branchSeq < oldest {
			oldest = mi.branchSeq
		}
	}
	t.unresolved = liveU
	return oldest
}
