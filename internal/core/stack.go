package core

import "repro/internal/isa"

// accountCycle attributes the current cycle to the cycle-stack components
// of Fig. 5. Each cycle contributes CommitWidth slots: committed slots are
// 'exec'; the remainder goes to the cause blocking the oldest in-flight
// instruction (or, with an empty window, to the frontend condition):
//
//   - mem:    head is a load/atomic waiting for data,
//   - branch: recovering from a misprediction (wrong-path fetch, resolve-
//     path fetch, refill after a flush, a hole awaiting its resolved
//     path, or a fence stall caused by pending in-slice misses),
//   - exec:   head is executing a non-memory operation, or commit
//     bandwidth was partially used,
//   - other:  frontend-limited for any other reason (I-cache, startup,
//     barrier synchronization).
func (c *Core) accountCycle() {
	w := float64(c.cfg.CommitWidth)
	frac := float64(c.committedThisCycle) / w
	if frac > 1 {
		frac = 1
	}
	c.stats.StackExec += frac
	rem := 1 - frac
	if rem <= 0 {
		return
	}

	t, head := c.oldestHead()
	if head != nil && head.spliceHold != nil && !head.spliceHold.segDispatched && !head.spliceHold.cancelled {
		c.stats.HoldSplice++
	}
	switch c.classifyStall(t, head) {
	case stallMem:
		c.stats.StackMem += rem
		c.stats.HoldMem++
	case stallBranch:
		c.stats.StackBranch += rem
	case stallExec:
		c.stats.StackExec += rem
	default:
		c.stats.StackOther += rem
	}
}

type stallCause uint8

const (
	stallOther stallCause = iota
	stallExec
	stallMem
	stallBranch
)

// oldestHead picks the thread whose commit is most blocked: the first
// live thread with in-flight instructions (thread 0 preference matches
// the single-thread runs the cycle stacks are reported for).
func (c *Core) oldestHead() (*thread, *uop) {
	var fallback *thread
	for _, t := range c.threads {
		if t.done {
			continue
		}
		if fallback == nil {
			fallback = t
		}
		if h := t.list.Head(); h != nil {
			return t, h.Val
		}
	}
	return fallback, nil
}

func (c *Core) classifyStall(t *thread, head *uop) stallCause {
	if t == nil {
		return stallOther
	}
	if head == nil {
		// Empty window: the frontend is the bottleneck.
		switch {
		case t.barrierWait:
			return stallOther
		case c.now < t.redirectUntil, t.mode == fmWrong, t.wpStuck,
			t.resolving != nil, t.fenceStall:
			return stallBranch
		default:
			return stallOther
		}
	}
	// The splice cursor holding commit for the rest of its resolved
	// path, or a mispredicted branch awaiting resolution.
	if head.spliceHold != nil && !head.spliceHold.segDispatched && !head.spliceHold.cancelled {
		return stallBranch
	}
	// The boundary branch of a partial flush holding commit while the
	// parked victims drain: misprediction-recovery time.
	if head.drainHold {
		return stallBranch
	}
	switch head.state {
	case stIssued:
		switch head.d.Inst.Op.Class() {
		case isa.ClassLoad, isa.ClassAtomic:
			return stallMem
		case isa.ClassBranch:
			return stallBranch
		default:
			return stallExec
		}
	case stWaiting:
		if head.d.Inst.Op == isa.Barrier {
			return stallOther
		}
		return stallExec
	default:
		// Done but commit bandwidth ran out, or about to commit.
		return stallExec
	}
}
