package core

import "repro/internal/flight"

// This file is the core's side of the flight recorder (internal/flight):
// structured event emission from the pipeline stages and the occupancy
// snapshot the timeline sampler and the deadlock watchdog both read.
// Every hook is gated on c.rec != nil, so an unattached recorder costs
// one pointer comparison.

// recordUop emits a uop lifetime event at the end of the uop's life —
// commit or flush — carrying its per-stage timestamps.
func (c *Core) recordUop(u *uop, flushed bool) {
	if !c.rec.TraceUops {
		return
	}
	c.rec.Record(flight.Event{
		Name: flight.EvUop, TS: u.fetchCycle,
		Core: c.id, Thread: u.t.id,
		Seq: u.d.Seq, PC: u.d.PC, Op: u.d.Inst.Op.String(),
		Fetch: u.fetchCycle, Dispatch: u.dispCycle,
		Issue: u.issueCycle, Done: u.doneAt, Commit: c.now,
		Wrong: u.d.Wrong, Resolve: u.resolvePath, Flushed: flushed,
	})
}

// recordMechanism emits a selective-flush mechanism event (unlink,
// splice, recovery). These are always recorded while a recorder is
// attached — they are low-volume and are what the watchdog's last-K tail
// needs to explain a stall.
func (c *Core) recordMechanism(name string, t *thread, u *uop, n int64) {
	e := flight.Event{Name: name, TS: c.now, Core: c.id, Thread: t.id, N: n}
	if u != nil {
		e.Seq = u.d.Seq
		e.PC = u.d.PC
		e.Op = u.d.Inst.Op.String()
		e.Wrong = u.d.Wrong
		e.Resolve = u.resolvePath
	}
	c.rec.Record(e)
}

// Sample fills the core-occupancy fields of a timeline sample: window
// usage, selective-flush state summed over SMT threads, and the fetch
// stall label. The sim driver fills cycle/IPC/MPKI.
func (c *Core) Sample(s *flight.Sample) {
	s.Core = c.id
	s.ROBUsed = c.space.Used()
	s.ROBGaps = c.space.Gaps()
	s.ROBFree = c.space.Free()
	s.RSUsed = c.rsUsed
	s.LQUsed = c.lqUsed
	s.SQUsed = c.sqUsed
	s.Reserve = c.cfg.Reserve
	s.InSlice = c.inSliceCount
	s.Outstanding = len(c.longUntil)
	for _, t := range c.threads {
		s.FRQ += t.fq.Len()
		s.Holes += len(t.holes)
	}
	s.FetchStall = c.fetchStallReason()
	s.Committed = c.stats.Committed
}

// fetchStallReason labels why the first live thread's fetch is (or is
// not) delivering instructions, mirroring the conditions of
// pickFetchThread/nextFetchPC. With SMT the label describes the first
// unfinished thread — a summary, not a per-thread report.
func (c *Core) fetchStallReason() string {
	var t *thread
	for _, tt := range c.threads {
		if !tt.done {
			t = tt
			break
		}
	}
	switch {
	case t == nil:
		return "done"
	case t.barrierWait:
		return "barrier"
	case t.fenceStall:
		return "fence"
	case t.mode == fmWrong && (t.wpStuck || t.shadow == nil || t.shadow.Dead()):
		return "wrong-path-stall"
	case t.mode == fmWrong:
		return "wrong-path"
	case t.resolving != nil && t.resolving.stall != nil:
		return "resolve-stall"
	case t.resolving != nil:
		return "resolve"
	case c.now < t.redirectUntil:
		return "refill"
	case c.now < t.fetchStallUntil:
		return "fetch-stall"
	case len(t.frontend) >= c.cfg.FrontendQueue:
		return "fe-full"
	case t.haltSeen:
		return "halted"
	default:
		return "ok"
	}
}
