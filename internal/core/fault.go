package core

import "repro/internal/rob"

// FaultMode selects a deliberately broken recovery variant. The
// differential fuzzer (internal/fuzz) uses these to prove its oracles can
// detect real recovery bugs: with a fault armed, a run of random samples
// must report at least one violation. The faults inject into every
// recovery policy — the selective path through resolveSelective's own
// hooks, and every full-squash policy (conventional, partial, throttle)
// through faultFullFlushVictim. Never set outside tests.
type FaultMode int

const (
	// FaultNone runs the correct mechanism.
	FaultNone FaultMode = iota
	// FaultSkipUnlink under-squashes: resolveSelective leaves the first
	// wrong-path uop of every selective flush linked in the ROB, and
	// every full/partial flush re-links its first victim — so a
	// wrong-path uop survives recovery, completes, and commits. Caught
	// by the committed-instruction-count (and often memory) oracles.
	FaultSkipUnlink
	// FaultLeakPending leaks recovery bookkeeping: resolveSelective
	// skips the pendingMisses decrement (the thread stalls forever at
	// its next slice_fence, and CheckQuiescent flags the counter), and
	// every full/partial flush squashes its first victim without
	// returning its ROB/RS/LQ/SQ/inflight resources (CheckQuiescent
	// flags the leak, or the starved window hangs into the watchdog).
	FaultLeakPending
)

var faultMode FaultMode

// SetFaultInjection arms (or with FaultNone, disarms) a recovery fault.
// Test-only; the process-global setting is not safe for concurrent cores
// running under different modes.
func SetFaultInjection(m FaultMode) { faultMode = m }

// faultFullFlushVictim applies the armed fault to the first victim of a
// full-squash recovery (conventionalFlush or partialFlush). It returns
// true when the fault consumed the victim, i.e. the caller must skip the
// normal releaseFlushed for it.
func (c *Core) faultFullFlushVictim(t *thread, u *uop, n *rob.Node[*uop]) bool {
	switch faultMode {
	case FaultSkipUnlink:
		// Under-squash: re-link the victim right after the branch. It
		// stays live, completes, and commits on the wrong path.
		t.list.InsertAfter(&u.node, n)
		return true
	case FaultLeakPending:
		// Squash the victim without returning its resources: ROB space,
		// RS/LQ/SQ slots, and the inflight counter all leak.
		w := n.Val
		w.state = stFlushed
		c.wakeWaiters(w)
		return true
	}
	return false
}
