package core

// FaultMode selects a deliberately broken recovery variant. The
// differential fuzzer (internal/fuzz) uses these to prove its oracles can
// detect real recovery bugs: with a fault armed, a run of random samples
// must report at least one violation. Never set outside tests.
type FaultMode int

const (
	// FaultNone runs the correct mechanism.
	FaultNone FaultMode = iota
	// FaultSkipUnlink makes resolveSelective leave the first wrong-path
	// uop of every selective flush linked in the ROB, so it completes and
	// commits. Caught by the committed-instruction-count oracle.
	FaultSkipUnlink
	// FaultLeakPending makes resolveSelective skip the pendingMisses
	// decrement, so every selective recovery leaks one unit of the
	// detected-but-unresolved counter. Caught by the watchdog/quiescence
	// oracles: the thread stalls forever at its next slice_fence (fenceStall
	// never clears), and CheckQuiescent flags the nonzero counter.
	FaultLeakPending
)

var faultMode FaultMode

// SetFaultInjection arms (or with FaultNone, disarms) a recovery fault.
// Test-only; the process-global setting is not safe for concurrent cores
// running under different modes.
func SetFaultInjection(m FaultMode) { faultMode = m }
