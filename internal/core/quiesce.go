package core

import "fmt"

// CheckQuiescent verifies that a finished core has returned every
// microarchitectural resource: the ROB space (including block gaps), the
// reservation stations, the load/store queues, the in-slice counter that
// arms the §4.7 reservation, every thread's logical ROB list, frontend,
// fetch redirect queue, resolve channels and store-forwarding list, and
// the scheduler's ready/specials/event structures. It also asserts the uop
// conservation law: every uop fetch created was committed, squashed after
// dispatch, or discarded in the frontend.
//
// It is meaningful only once Done() reports true; the sim driver calls it
// after every successful run, making resource leaks and accounting drift
// hard failures rather than silent statistics skew.
func (c *Core) CheckQuiescent() error {
	if !c.Done() {
		return fmt.Errorf("core %d: CheckQuiescent before Done", c.id)
	}
	if u := c.space.Used(); u != 0 {
		return fmt.Errorf("core %d: %d ROB entries still allocated", c.id, u)
	}
	if g := c.space.Gaps(); g != 0 {
		return fmt.Errorf("core %d: %d ROB block gaps unreclaimed", c.id, g)
	}
	if c.rsUsed != 0 || c.lqUsed != 0 || c.sqUsed != 0 {
		return fmt.Errorf("core %d: queue occupancy not zero: rs=%d lq=%d sq=%d",
			c.id, c.rsUsed, c.lqUsed, c.sqUsed)
	}
	if c.inSliceCount != 0 {
		return fmt.Errorf("core %d: inSliceCount=%d at quiesce", c.id, c.inSliceCount)
	}
	if c.draining != 0 {
		return fmt.Errorf("core %d: %d partial-flush drains outstanding at quiesce", c.id, c.draining)
	}
	for _, t := range c.threads {
		if n := t.list.Len(); n != 0 {
			return fmt.Errorf("core %d t%d: %d uops still linked in the ROB", c.id, t.id, n)
		}
		if n := len(t.frontend); n != 0 {
			return fmt.Errorf("core %d t%d: %d uops left in the frontend", c.id, t.id, n)
		}
		if n := t.fq.Len(); n != 0 {
			return fmt.Errorf("core %d t%d: %d FRQ entries outstanding", c.id, t.id, n)
		}
		if t.pendingMisses != 0 {
			return fmt.Errorf("core %d t%d: pendingMisses=%d at quiesce", c.id, t.id, t.pendingMisses)
		}
		if t.inflight != 0 {
			return fmt.Errorf("core %d t%d: inflight=%d at quiesce", c.id, t.id, t.inflight)
		}
		if n := t.drainLen(); n != 0 {
			return fmt.Errorf("core %d t%d: %d partial-flush victims still parked", c.id, t.id, n)
		}
		if t.lowConfOut != 0 {
			return fmt.Errorf("core %d t%d: lowConfOut=%d at quiesce", c.id, t.id, t.lowConfOut)
		}
		if n := len(t.stores); n != 0 {
			return fmt.Errorf("core %d t%d: %d stores still in the forwarding list", c.id, t.id, n)
		}
		if t.fenceStall || t.barrierWait {
			return fmt.Errorf("core %d t%d: stalled at quiesce (fence=%v barrier=%v)",
				c.id, t.id, t.fenceStall, t.barrierWait)
		}
		for _, mi := range t.resolveMisses {
			if mi.feqHead < len(mi.feq) {
				return fmt.Errorf("core %d t%d: miss seq %d has %d undispatched resolve uops",
					c.id, t.id, mi.branchSeq, len(mi.feq)-mi.feqHead)
			}
		}
		if seq := t.oldestHoleSeq(); seq != ^uint64(0) {
			return fmt.Errorf("core %d t%d: live hole at seq %d", c.id, t.id, seq)
		}
	}
	for _, e := range c.readyQ {
		if e.u.id == e.id && e.u.state == stWaiting {
			return fmt.Errorf("core %d: live uop in ready queue at quiesce", c.id)
		}
	}
	for _, e := range c.specials {
		if e.u.id == e.id && e.u.state == stWaiting {
			return fmt.Errorf("core %d: live uop in specials list at quiesce", c.id)
		}
	}
	for _, e := range c.events {
		if e.u.id == e.id && e.u.state == stIssued {
			return fmt.Errorf("core %d: live completion event at quiesce", c.id)
		}
	}
	s := &c.stats
	if got := s.Committed + s.UopsSquashed + s.UopsFEDiscarded; s.UopsFetched != got {
		return fmt.Errorf("core %d: uop conservation violated: fetched=%d != committed=%d + squashed=%d + discarded=%d",
			c.id, s.UopsFetched, s.Committed, s.UopsSquashed, s.UopsFEDiscarded)
	}
	return nil
}
