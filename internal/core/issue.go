package core

import (
	"sort"

	"repro/internal/isa"
)

// issue selects ready instructions from the reservation stations,
// oldest-first by logical age (the standard age-based select), bounded by
// IssueWidth and per-class port capacity, and computes their completion
// times. Age priority matters for the selective-flush mechanism: the
// resolved correct path of an old hole is the commit-critical work, and
// must win ports and MSHRs over logically younger slices dispatched
// earlier.
func (c *Core) issue() {
	live := c.rs[:0]
	ready := c.ready_[:0]
	for _, u := range c.rs {
		if u.state != stWaiting {
			continue // issued, flushed: drop from RS view
		}
		live = append(live, u)
		if c.ready(u) {
			ready = append(ready, u)
		}
	}
	c.rs = live
	sort.Slice(ready, func(i, j int) bool { return ready[i].age < ready[j].age })

	budget := c.cfg.IssueWidth
	var ports [16]int
	for _, u := range ready {
		if budget == 0 {
			break
		}
		cl := u.d.Inst.Op.Class()
		if ports[cl] >= classPorts[cl] {
			continue
		}
		ports[cl]++
		budget--
		c.issueOne(u)
	}
	c.ready_ = ready[:0]
}

// ready reports whether all of u's operands are available and any
// execution-ordering constraint is met.
func (c *Core) ready(u *uop) bool {
	for i := 0; i < u.ndeps; i++ {
		if !u.deps[i].ready(c.now) {
			return false
		}
	}
	// Reduction updates execute only at the head of the ROB (§4.5),
	// like atomics in conventional cores.
	if u.reduce {
		h := u.t.list.Head()
		if h == nil || h.Val != u {
			return false
		}
	}
	// Barriers wait for the simulator-level release.
	if u.d.Inst.Op == isa.Barrier && !u.barrierOK {
		return false
	}
	return true
}

// issueOne starts execution of u and schedules its completion.
func (c *Core) issueOne(u *uop) {
	u.state = stIssued
	u.issueCycle = c.now
	c.rsUsed--

	op := u.d.Inst.Op
	var done int64
	switch {
	case op.IsLoad():
		done = c.loadDone(u)
		if done-c.now > 100 {
			c.stats.LongLoads++
			c.longUntil = append(c.longUntil, done)
		}
	case op.IsAtomic():
		done = c.loadDone(u) + int64(c.cfg.AtomicExtra)
	case op.IsStore():
		// Stores are "done" once their address and data are ready;
		// memory is updated at commit.
		done = c.now + 1
	case op == isa.Barrier:
		done = c.now + int64(c.cfg.BarrierLat)
	default:
		done = c.now + int64(op.Class().Latency())
	}
	c.schedule(u, done)
}

// loadDone computes when a load's data arrives: store forwarding when an
// older overlapping store is in flight, otherwise a cache access. Wrong-
// path loads touch the cache too (pollution and prefetching effects,
// §6.1), except out-of-bounds wrong-path addresses.
func (c *Core) loadDone(u *uop) int64 {
	if u.fwdStore.u != nil && u.fwdStore.u.id == u.fwdStore.id {
		s := u.fwdStore.u
		if s.state == stWaiting || s.state == stIssued || s.state == stDone {
			return c.now + int64(c.cfg.StoreFwdLat)
		}
	}
	if u.d.MemOOB {
		return c.now + int64(c.hier.L1D.Config().HitLatency)
	}
	if u.d.Wrong && !c.cfg.WrongPathMemAccess {
		// Wrong-path loads occupy resources and take a mid-hierarchy
		// latency, but neither warm nor pollute the caches.
		return c.now + int64(c.hier.L2.Config().HitLatency)
	}
	return c.hier.Data(u.d.Addr, uint64(u.d.PC), c.now, false)
}
