package core

import (
	"slices"

	"repro/internal/isa"
)

// issue selects ready instructions from the reservation stations,
// oldest-first by logical age (the standard age-based select), bounded by
// IssueWidth and per-class port capacity, and computes their completion
// times. Age priority matters for the selective-flush mechanism: the
// resolved correct path of an old hole is the commit-critical work, and
// must win ports and MSHRs over logically younger slices dispatched
// earlier.
//
// Selection is wakeup-driven: a dispatched uop is parked on its producers'
// waiter lists and enters the ready queue only when its last outstanding
// operand completes (or is flushed), so the per-cycle cost scales with
// wakeup events rather than RS occupancy. Uops whose readiness depends on
// more than operand availability — commit-time reductions waiting for the
// ROB head, barriers waiting for the simulator release — sit on a small
// polled "specials" list instead.
//
// To keep results byte-identical to the full-RS scan (whose age sort is
// unstable, so its tie order among equal-age uops — SMT threads share the
// age space, and a miss's wrong-path uops all carry the branch's age — is
// an artifact of the candidates' RS order), the candidate set is first
// restored to dispatch order, which is exactly the order the RS scan
// produces, before the same age sort runs. Config.ForceCycleAccurate
// selects the legacy scan (issueScan) for equivalence testing.
func (c *Core) issue() {
	if c.forceCyc {
		c.issueScan()
		return
	}
	ready := c.ready_[:0]
	rq := c.readyQ[:0]
	for _, e := range c.readyQ {
		if e.u.id != e.id || e.u.state != stWaiting {
			continue // issued or flushed since it was enqueued
		}
		rq = append(rq, e)
		ready = append(ready, e.u)
	}
	c.readyQ = rq
	sp := c.specials[:0]
	for _, e := range c.specials {
		if e.u.id != e.id || e.u.state != stWaiting {
			continue
		}
		sp = append(sp, e)
		if c.specialReady(e.u) {
			ready = append(ready, e.u)
		}
	}
	c.specials = sp

	// Restore dispatch order so the unstable age sort below sees the
	// same input permutation as the legacy RS scan.
	slices.SortFunc(ready, func(a, b *uop) int {
		if a.dispSeq < b.dispSeq {
			return -1
		}
		return 1
	})
	c.issueFrom(ready)
	c.ready_ = ready[:0]
}

// issueScan is the legacy selection loop: scan the whole RS, test every
// waiting uop's operands, and sort the ready set. Kept behind
// Config.ForceCycleAccurate as the reference the event-driven path is
// equivalence-tested against.
func (c *Core) issueScan() {
	live := c.rs[:0]
	ready := c.ready_[:0]
	for _, u := range c.rs {
		if u.state != stWaiting {
			continue // issued, flushed: drop from RS view
		}
		live = append(live, u)
		if c.ready(u) {
			ready = append(ready, u)
		}
	}
	c.rs = live
	c.issueFrom(ready)
	c.ready_ = ready[:0]
}

// issueFrom sorts the dispatch-ordered candidate set by age and issues up
// to IssueWidth instructions within per-class port capacity. The sort is
// intentionally unstable and must keep matching what sort.Slice did in the
// original scan implementation: slices.SortFunc instantiates the same
// pdqsort template, so equal-age candidates permute identically given the
// same input order — without sort.Slice's per-call boxing allocations.
func (c *Core) issueFrom(ready []*uop) {
	slices.SortFunc(ready, func(a, b *uop) int {
		if a.age < b.age {
			return -1
		}
		if a.age > b.age {
			return 1
		}
		return 0
	})

	budget := c.cfg.IssueWidth
	var ports [16]int
	for _, u := range ready {
		if budget == 0 {
			break
		}
		cl := u.d.Inst.Op.Class()
		if ports[cl] >= classPorts[cl] {
			continue
		}
		ports[cl]++
		budget--
		c.issueOne(u)
	}
}

// ready reports whether all of u's operands are available and any
// execution-ordering constraint is met (legacy scan path).
func (c *Core) ready(u *uop) bool {
	for i := 0; i < u.ndeps; i++ {
		if !u.deps[i].ready(c.now) {
			return false
		}
	}
	return c.specialReady(u)
}

// specialReady checks the non-operand readiness conditions.
func (c *Core) specialReady(u *uop) bool {
	// Reduction updates execute only at the head of the ROB (§4.5),
	// like atomics in conventional cores.
	if u.reduce {
		h := u.t.list.Head()
		if h == nil || h.Val != u {
			return false
		}
	}
	// Barriers wait for the simulator-level release.
	if u.d.Inst.Op == isa.Barrier && !u.barrierOK {
		return false
	}
	return true
}

// registerWakeups parks a freshly dispatched uop on the waiter lists of
// its not-yet-complete producers; a uop with no outstanding operands goes
// straight to the ready (or specials) queue. Duplicate producers register
// — and later decrement — once per dep slot, so the count stays balanced.
func (c *Core) registerWakeups(u *uop) {
	wait := 0
	for i := 0; i < u.ndeps; i++ {
		r := u.deps[i]
		if r.ready(c.now) {
			continue
		}
		r.u.waiters = append(r.u.waiters, waiter{u: u, id: u.id})
		wait++
	}
	u.waitCount = wait
	if wait == 0 {
		c.enqueueReady(u)
	}
}

// enqueueReady moves a uop whose operands are all available into the
// selection pool: the ready queue, or the polled specials list when its
// readiness has a non-operand component.
func (c *Core) enqueueReady(u *uop) {
	e := readyRef{u: u, id: u.id}
	if u.reduce || u.d.Inst.Op == isa.Barrier {
		c.specials = append(c.specials, e)
	} else {
		c.readyQ = append(c.readyQ, e)
	}
}

// wakeWaiters notifies the dependents of a uop that just produced its
// result (complete) or ceased to exist (flush): each live dependent's
// outstanding-operand count drops, and the last wake enqueues it for
// issue. The list is cleared — a dependent is decremented exactly once
// per registration, and a recycled producer starts empty.
func (c *Core) wakeWaiters(p *uop) {
	if len(p.waiters) == 0 {
		return
	}
	for _, w := range p.waiters {
		u := w.u
		if u.id != w.id || u.state != stWaiting {
			continue // dependent already issued, flushed, or recycled
		}
		u.waitCount--
		if u.waitCount == 0 {
			c.enqueueReady(u)
		}
	}
	p.waiters = p.waiters[:0]
}

// issueOne starts execution of u and schedules its completion.
func (c *Core) issueOne(u *uop) {
	u.state = stIssued
	u.issueCycle = c.now
	c.rsUsed--
	c.activity = true

	op := u.d.Inst.Op
	var done int64
	switch {
	case op.IsLoad():
		done = c.loadDone(u)
		if done-c.now > 100 {
			c.stats.LongLoads++
			c.longUntil = append(c.longUntil, done)
		}
	case op.IsAtomic():
		done = c.loadDone(u) + int64(c.cfg.AtomicExtra)
	case op.IsStore():
		// Stores are "done" once their address and data are ready;
		// memory is updated at commit.
		done = c.now + 1
	case op == isa.Barrier:
		done = c.now + int64(c.cfg.BarrierLat)
	default:
		done = c.now + int64(op.Class().Latency())
	}
	c.schedule(u, done)
}

// loadDone computes when a load's data arrives: store forwarding when an
// older overlapping store is in flight, otherwise a cache access. Wrong-
// path loads touch the cache too (pollution and prefetching effects,
// §6.1), except out-of-bounds wrong-path addresses.
func (c *Core) loadDone(u *uop) int64 {
	if u.fwdStore.u != nil && u.fwdStore.u.id == u.fwdStore.id {
		s := u.fwdStore.u
		if s.state == stWaiting || s.state == stIssued || s.state == stDone {
			return c.now + int64(c.cfg.StoreFwdLat)
		}
	}
	if u.d.MemOOB {
		return c.now + int64(c.hier.L1D.Config().HitLatency)
	}
	if u.d.Wrong && !c.cfg.WrongPathMemAccess {
		// Wrong-path loads occupy resources and take a mid-hierarchy
		// latency, but neither warm nor pollute the caches.
		return c.now + int64(c.hier.L2.Config().HitLatency)
	}
	return c.hier.Data(u.d.Addr, uint64(u.d.PC), c.now, false)
}
