package core

import (
	"fmt"
	"strings"
)

func resolvingIdx(mi *missInfo) int {
	if mi == nil {
		return -1
	}
	return mi.fetched
}

// checkInvariants panics when per-miss segment accounting breaks:
// dispatched + in-frontend + unfetched must equal the segment length for
// every live hole. Enabled in tests via debugChecks.
func (c *Core) checkInvariants() {
	for _, t := range c.threads {
		for _, mi := range t.holes {
			if mi.cancelled || mi.segDispatched {
				continue
			}
			inFE := len(mi.feq) - mi.feqHead
			got := mi.dispatched + inFE + (len(mi.seg) - mi.fetched)
			if got != len(mi.seg) {
				panic(fmt.Sprintf("core %d @%d: miss br=#%d accounting broken: disp=%d fe=%d unfetched=%d seg=%d\n%s",
					c.id, c.now, mi.branchSeq, mi.dispatched, inFE,
					len(mi.seg)-mi.fetched, len(mi.seg), c.DumpState()))
			}
		}
	}
}

// debugChecks enables expensive per-cycle invariant checking.
var debugChecks = false

// EnableDebugChecks turns on per-cycle invariant checking (tests).
func EnableDebugChecks(on bool) { debugChecks = on }

// DumpState renders the core's stall-relevant state for debugging
// deadlocks (used by tests and the sim driver's watchdog).
func (c *Core) DumpState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core %d @%d: rob used=%d gaps=%d free=%d rs=%d lq=%d sq=%d inSlice=%d events=%d\n",
		c.id, c.now, c.space.Used(), c.space.Gaps(), c.space.Free(),
		c.rsUsed, c.lqUsed, c.sqUsed, c.inSliceCount, len(c.events))
	for _, t := range c.threads {
		fmt.Fprintf(&b, " t%d: mode=%d done=%v haltSeen=%v fence=%v barrier=%v wpStuck=%v pend=%d frq=%d fe=%d inflight=%d stall@%d redirect@%d resolving=%v resolveIdx=%d resolveStall=%v\n",
			t.id, t.mode, t.done, t.haltSeen, t.fenceStall, t.barrierWait, t.wpStuck,
			t.pendingMisses, t.fq.Len(), len(t.frontend), t.inflight,
			t.fetchStallUntil, t.redirectUntil, t.resolving != nil, resolvingIdx(t.resolving), t.resolving != nil && t.resolving.stall != nil)
		if h := t.list.Head(); h != nil {
			u := h.Val
			fmt.Fprintf(&b, "   head: #%d %v state=%d doneAt=%d mispred=%v wrong=%v resolve=%v splice=%v",
				u.d.Seq, u.d.Inst, u.state, u.doneAt, u.mispred, u.d.Wrong, u.resolvePath, u.spliceHold != nil)
			if u.spliceHold != nil {
				mi := u.spliceHold
				fmt.Fprintf(&b, " hold{disp=%d/%d cancelled=%v}", mi.dispatched, len(mi.seg), mi.cancelled)
			}
			if u.miss != nil {
				fmt.Fprintf(&b, " miss{resolved=%v segDisp=%v disp=%d/%d cancelled=%v}",
					u.miss.resolved, u.miss.segDispatched, u.miss.dispatched, len(u.miss.seg), u.miss.cancelled)
			}
			b.WriteString("\n")
			if u.state == stWaiting {
				for i := 0; i < u.ndeps; i++ {
					r := u.deps[i]
					if r.u != nil && r.u.id == r.id {
						fmt.Fprintf(&b, "   dep[%d]: #%d %v state=%d doneAt=%d\n",
							i, r.u.d.Seq, r.u.d.Inst, r.u.state, r.u.doneAt)
					}
				}
			}
		}
		if len(t.frontend) > 0 {
			u := t.frontend[0]
			fmt.Fprintf(&b, "   feHead: #%d %v wrong=%v resolve=%v readyFE=%d\n",
				u.d.Seq, u.d.Inst, u.d.Wrong, u.resolvePath, u.readyFE)
			for _, mi := range t.resolveMisses {
				n := len(mi.feq) - mi.feqHead
				if n == 0 {
					continue
				}
				w := mi.feq[mi.feqHead]
				fmt.Fprintf(&b, "   rfe: missBr=#%d queued=%d head=#%d %v readyFE=%d priv=%v\n",
					mi.branchSeq, n, w.d.Seq, w.d.Inst, w.readyFE,
					c.privileged(t, w))
			}
			fmt.Fprintf(&b, "   oldestHole=%d holes=%d\n", t.oldestHoleSeq(), len(t.holes))
			for _, mi := range t.holes {
				fmt.Fprintf(&b, "   hole: br=#%d fetched=%d/%d disp=%d segDisp=%v stall=%v cancelled=%v\n",
					mi.branchSeq, mi.fetched, len(mi.seg), mi.dispatched,
					mi.segDispatched, mi.stall != nil, mi.cancelled)
			}
			for _, mi := range t.fq.All() {
				fmt.Fprintf(&b, "   fq: br=#%d fetched=%d/%d disp=%d stall=%v cancelled=%v\n",
					mi.branch.d.Seq, mi.fetched, len(mi.seg), mi.dispatched,
					mi.stall != nil, mi.cancelled)
			}
		}
	}
	return b.String()
}
