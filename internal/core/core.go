package core

import (
	"container/heap"
	"fmt"

	"repro/internal/cache"
	"repro/internal/emu"
	"repro/internal/flight"
	"repro/internal/isa"
	"repro/internal/rob"
)

// Core is one out-of-order core instance. Threads (SMT contexts) share the
// ROB space, reservation stations, load/store queues, and the cache
// hierarchy; each thread has its own trace machine, predictor, rename
// table, logical ROB order, and fetch redirect queue.
type Core struct {
	cfg  Config
	id   int
	hier *cache.Hierarchy
	// rec is the optional flight recorder (cfg.Recorder); nil disables
	// every hook.
	rec *flight.Recorder

	threads []*thread

	space  *rob.Space
	rsUsed int
	lqUsed int
	sqUsed int
	// inSliceCount tracks in-slice instructions in the ROB: while
	// non-zero, resource reservation for resolve paths is active (§4.7).
	inSliceCount int

	rs        []*uop      // dispatched, waiting to issue (dispatch order)
	seenMiss  []*missInfo // per-cycle scratch for resolve-dispatch ordering
	ready_    []*uop      // per-cycle scratch for age-sorted ready instructions
	longUntil []int64     // completion times of in-flight long-latency loads
	events    eventHeap
	pool      []*uop
	nextID    uint64

	now                int64
	stats              Stats
	committedThisCycle int
	traced             int64

	fetchRR    int
	dispatchRR int
	commitRR   int
}

// NewCore builds a core running the given machines (one per SMT thread).
func NewCore(id int, cfg Config, hier *cache.Hierarchy, machines []*emu.Machine) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(machines) != cfg.SMT {
		return nil, fmt.Errorf("core: %d machines for SMT%d", len(machines), cfg.SMT)
	}
	c := &Core{
		cfg:   cfg,
		id:    id,
		hier:  hier,
		rec:   cfg.Recorder,
		space: rob.NewSpace(cfg.ROBSize, cfg.ROBBlockSize),
	}
	for i, m := range machines {
		c.threads = append(c.threads, newThread(i, c, m))
	}
	return c, nil
}

// Stats returns the core's counters (valid after/while running).
func (c *Core) Stats() *Stats { return &c.stats }

// Done reports whether every thread has committed its halt.
func (c *Core) Done() bool {
	for _, t := range c.threads {
		if !t.done {
			return false
		}
	}
	return true
}

// Threads returns the number of SMT contexts.
func (c *Core) Threads() int { return len(c.threads) }

// ThreadDone reports whether thread i has finished.
func (c *Core) ThreadDone(i int) bool { return c.threads[i].done }

// BarrierWaiting reports whether thread i is stalled at a barrier.
func (c *Core) BarrierWaiting(i int) bool { return c.threads[i].barrierWait }

// ReleaseBarrier lets thread i's pending barrier instruction complete.
func (c *Core) ReleaseBarrier(i int) {
	t := c.threads[i]
	if t.barrierUop != nil {
		t.barrierUop.barrierOK = true
	}
	t.barrierWait = false
	t.barrierUop = nil
}

// Cycle advances the core by one clock. Phase order: complete (execute
// results and branch resolutions), commit, issue, dispatch, fetch — so a
// result completing this cycle can be committed this cycle, while newly
// fetched instructions wait at least one cycle per stage.
func (c *Core) Cycle(now int64) {
	c.now = now
	c.committedThisCycle = 0

	c.complete()
	c.commit()
	c.issue()
	c.dispatch()
	fetchedBefore := c.stats.FetchNormal + c.stats.FetchWrong + c.stats.FetchResolve
	c.fetch()
	if c.stats.FetchNormal+c.stats.FetchWrong+c.stats.FetchResolve == fetchedBefore {
		c.stats.FetchIdle++
	}

	if debugChecks {
		c.checkInvariants()
	}
	c.accountCycle()
	c.stats.Cycles = now
	c.stats.ROBOccupancySum += uint64(c.space.Used())
	live := c.longUntil[:0]
	for _, at := range c.longUntil {
		if at > now {
			live = append(live, at)
		}
	}
	c.longUntil = live
	c.stats.OutstandingSum += uint64(len(live))
}

// complete retires execution events due at or before now and performs
// branch recovery for resolved mispredictions.
func (c *Core) complete() {
	for len(c.events) > 0 && c.events[0].at <= c.now {
		ev := heap.Pop(&c.events).(event)
		u := ev.u
		if u.id != ev.id || u.state != stIssued {
			continue // stale event for a flushed/recycled uop
		}
		u.state = stDone
		u.doneAt = ev.at
		if u.d.IsBranch() && !u.d.Wrong {
			c.resolveBranch(u)
		}
	}
}

// classPorts caps per-class issue bandwidth (a simplified Skylake port
// map: 4 ALU ports, 2 load, 1 store-address, 2 branch-capable, one
// divider).
var classPorts = map[isa.Class]int{
	isa.ClassIntAlu:  4,
	isa.ClassIntMul:  2,
	isa.ClassIntDiv:  1,
	isa.ClassFp:      2,
	isa.ClassFpDiv:   1,
	isa.ClassLoad:    2,
	isa.ClassStore:   1,
	isa.ClassAtomic:  1,
	isa.ClassBranch:  2,
	isa.ClassNop:     4,
	isa.ClassBarrier: 1,
	isa.ClassHalt:    4,
}
