package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/emu"
	"repro/internal/flight"
	"repro/internal/isa"
	"repro/internal/rob"
)

// Core is one out-of-order core instance. Threads (SMT contexts) share the
// ROB space, reservation stations, load/store queues, and the cache
// hierarchy; each thread has its own trace machine, predictor, rename
// table, logical ROB order, and fetch redirect queue.
type Core struct {
	cfg  Config
	id   int
	hier *cache.Hierarchy
	// rec is the optional flight recorder (cfg.Recorder); nil disables
	// every hook.
	rec *flight.Recorder

	threads []*thread

	// policy is the configured mispredict-recovery policy (policy.go).
	// selEligible caches policy.SelectiveEligible() for the fetch and
	// dispatch hot paths; polFetch caches the optional fetchHooks
	// assertion (nil for policies without fetch-side behavior, so the
	// legacy policies pay one nil check); draining counts threads with a
	// staged partial flush in progress (drainStep runs only then, and
	// NextWake must not fast-forward over it).
	policy      RecoveryPolicy
	selEligible bool
	polFetch    fetchHooks
	draining    int

	space  *rob.Space
	rsUsed int
	lqUsed int
	sqUsed int
	// inSliceCount tracks in-slice instructions in the ROB: while
	// non-zero, resource reservation for resolve paths is active (§4.7).
	inSliceCount int

	rs []*uop // legacy scan path only: dispatched, waiting to issue (dispatch order)
	// readyQ holds uops whose operands are all available, awaiting an
	// issue port; specials holds operand-ready uops whose issue is gated
	// on a polled condition (reduce-at-head, barrier release).
	readyQ       []readyRef
	specials     []readyRef
	ready_       []*uop      // per-cycle scratch for age-sorted ready instructions
	resolveCands []*missInfo // per-cycle scratch for resolve-dispatch ordering
	longUntil    []int64     // completion times of in-flight long-latency loads
	events       eventHeap
	pool         []*uop
	segPool      []*segBuf
	nextID       uint64
	dispSeqCtr   uint64 // dispatch-order tie-break counter
	forceCyc     bool   // cfg.ForceCycleAccurate cached

	now                int64
	stats              Stats
	committedThisCycle int
	traced             int64
	// traceOn caches cfg.Trace != nil so hot paths can skip building
	// trace arguments entirely.
	traceOn bool
	// activity records whether this cycle changed any pipeline state
	// (completion, commit, issue, dispatch, fetch delivery); the idle
	// fast-forward in NextWake consults it.
	activity bool

	fetchRR    int
	dispatchRR int
	commitRR   int
}

// NewCore builds a core running the given machines (one per SMT thread).
func NewCore(id int, cfg Config, hier *cache.Hierarchy, machines []*emu.Machine) (*Core, error) {
	fes := make([]emu.Frontend, len(machines))
	for i, m := range machines {
		fes[i] = emu.AsFrontend(m)
	}
	return NewCoreFrontends(id, cfg, hier, fes)
}

// NewCoreFrontends is NewCore over explicit instruction sources (one per
// SMT thread): live emulator machines wrapped by emu.AsFrontend, or trace
// replayers feeding a captured stream (internal/trace).
func NewCoreFrontends(id int, cfg Config, hier *cache.Hierarchy, fes []emu.Frontend) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(fes) != cfg.SMT {
		return nil, fmt.Errorf("core: %d frontends for SMT%d", len(fes), cfg.SMT)
	}
	pol, err := newPolicy(&cfg)
	if err != nil {
		return nil, err
	}
	c := &Core{
		cfg:      cfg,
		id:       id,
		hier:     hier,
		rec:      cfg.Recorder,
		policy:   pol,
		space:    rob.NewSpace(cfg.ROBSize, cfg.ROBBlockSize),
		traceOn:  cfg.Trace != nil,
		forceCyc: cfg.ForceCycleAccurate,
	}
	c.selEligible = pol.SelectiveEligible()
	c.polFetch, _ = pol.(fetchHooks)
	for i, fe := range fes {
		c.threads = append(c.threads, newThread(i, c, fe))
	}
	return c, nil
}

// Stats returns the core's counters (valid after/while running).
func (c *Core) Stats() *Stats { return &c.stats }

// Done reports whether every thread has committed its halt.
func (c *Core) Done() bool {
	for _, t := range c.threads {
		if !t.done {
			return false
		}
	}
	return true
}

// Threads returns the number of SMT contexts.
func (c *Core) Threads() int { return len(c.threads) }

// ThreadDone reports whether thread i has finished.
func (c *Core) ThreadDone(i int) bool { return c.threads[i].done }

// BarrierWaiting reports whether thread i is stalled at a barrier.
func (c *Core) BarrierWaiting(i int) bool { return c.threads[i].barrierWait }

// ReleaseBarrier lets thread i's pending barrier instruction complete.
func (c *Core) ReleaseBarrier(i int) {
	t := c.threads[i]
	if t.barrierUop != nil {
		t.barrierUop.barrierOK = true
	}
	t.barrierWait = false
	t.barrierUop = nil
}

// Cycle advances the core by one clock. Phase order: complete (execute
// results and branch resolutions), commit, issue, dispatch, fetch — so a
// result completing this cycle can be committed this cycle, while newly
// fetched instructions wait at least one cycle per stage.
func (c *Core) Cycle(now int64) {
	c.now = now
	c.committedThisCycle = 0
	c.activity = false

	c.complete()
	if c.draining > 0 {
		c.drainStep()
	}
	c.commit()
	c.issue()
	c.dispatch()
	fetchedBefore := c.stats.FetchNormal + c.stats.FetchWrong + c.stats.FetchResolve
	c.fetch()
	if c.stats.FetchNormal+c.stats.FetchWrong+c.stats.FetchResolve == fetchedBefore {
		c.stats.FetchIdle++
	} else {
		c.activity = true
	}

	if debugChecks {
		c.checkInvariants()
	}
	c.accountCycle()
	c.stats.Cycles = now
	c.stats.ROBOccupancySum += uint64(c.space.Used())
	live := c.longUntil[:0]
	for _, at := range c.longUntil {
		if at > now {
			live = append(live, at)
		}
	}
	c.longUntil = live
	c.stats.OutstandingSum += uint64(len(live))
}

// complete retires execution events due at or before now and performs
// branch recovery for resolved mispredictions.
func (c *Core) complete() {
	for len(c.events) > 0 && c.events[0].at <= c.now {
		ev := c.events.pop()
		u := ev.u
		if u.id != ev.id || u.state != stIssued {
			continue // stale event for a flushed/recycled uop
		}
		u.state = stDone
		u.doneAt = ev.at
		c.activity = true
		c.wakeWaiters(u)
		if u.d.IsBranch() && !u.d.Wrong {
			c.resolveBranch(u)
		}
	}
}

// farFuture is NextWake's "no internal wake source" value; the sim driver
// caps every jump at the watchdog deadline and the next timeline sample,
// so an idle core with no timers simply waits on external events (barrier
// release, other cores).
const farFuture = int64(1) << 62

// NextWake reports the earliest future cycle at which this core's state
// can change, for the sim driver's idle fast-forward: now+1 when the
// current cycle did anything (or something is already issuable), else the
// minimum over the pending wake sources — the next completion event
// (which also bounds every longUntil expiry and MSHR fill, since those
// times were scheduled as events), frontend-delay expiries, fetch-stall
// and redirect timers. redirectUntil participates even though it gates
// nothing directly: classifyStall compares it against now, and SkipTo's
// batch accounting is only valid while that comparison cannot flip.
//
// Every non-timed stall is covered by one of those sources: dispatch
// blocked on resources needs a commit or flush (a completion event);
// commit blocked needs a completion or a dispatch; fetch blocked on a
// barrier or fence waits for the simulator release (the driver re-polls
// after releaseBarriers) or a resolution event. If no source exists the
// core is deadlocked, and the watchdog cap makes the driver tick through
// to the firing cycle exactly as the per-cycle loop would.
func (c *Core) NextWake() int64 {
	if c.activity || c.draining > 0 || len(c.readyQ) > 0 {
		return c.now + 1
	}
	for _, e := range c.specials {
		if e.u.id == e.id && e.u.state == stWaiting && c.specialReady(e.u) {
			return c.now + 1
		}
	}
	wake := farFuture
	if len(c.events) > 0 {
		wake = c.events[0].at
	}
	for _, t := range c.threads {
		if t.done {
			continue
		}
		if len(t.frontend) > 0 {
			if r := t.frontend[0].readyFE; r > c.now && r < wake {
				wake = r
			}
		}
		for _, mi := range t.resolveMisses {
			if mi.feqHead < len(mi.feq) {
				if r := mi.feq[mi.feqHead].readyFE; r > c.now && r < wake {
					wake = r
				}
			}
		}
		if t.redirectUntil > c.now && t.redirectUntil < wake {
			wake = t.redirectUntil
		}
		// Fetch: mirror pickFetchThread's gating. A thread that could
		// fetch right now means no idle window at all (it would only be
		// in this state transiently — a fetchable thread fetches).
		if t.finishedFetching() && t.resolving == nil {
			continue
		}
		if t.fetchStallUntil > c.now {
			if t.fetchStallUntil < wake {
				wake = t.fetchStallUntil
			}
			continue
		}
		if (t.resolving == nil || t.resolving.stall != nil) &&
			len(t.frontend) >= c.cfg.FrontendQueue {
			continue // unblocks via dispatch, i.e. an event or readyFE expiry
		}
		if t.nextFetchPC() >= 0 {
			return c.now + 1
		}
	}
	return wake
}

// SkipTo fast-forwards the core over cycles now+1..target, all of which
// are guaranteed idle by NextWake (the driver only jumps to min(NextWake)
// - 1, capped at the next timeline sample and the watchdog deadline). It
// replicates exactly what per-cycle stepping would have recorded: the
// per-cycle stats (FetchIdle, occupancy and outstanding-miss sums, the
// cycle-stack component — constant across the window because every input
// of classifyStall is pipeline state that cannot change without activity,
// and the one time comparison is bounded by the jump), the round-robin
// counters that advance even on idle cycles, and the hole-list compaction
// an idle dispatch would perform. The cycle-stack additions stay exact:
// all values are multiples of 1/CommitWidth far below 2^53, so batched
// float adds equal repeated ones bit-for-bit.
func (c *Core) SkipTo(target int64) {
	delta := target - c.now
	if delta <= 0 {
		return
	}
	// Classify once at the first skipped cycle; constant over the window.
	c.now++
	for _, t := range c.threads {
		t.oldestHoleSeq() // idle dispatch would compact holes/unresolved
	}
	t, head := c.oldestHead()
	if head != nil && head.spliceHold != nil && !head.spliceHold.segDispatched && !head.spliceHold.cancelled {
		c.stats.HoldSplice += uint64(delta)
	}
	switch c.classifyStall(t, head) {
	case stallMem:
		c.stats.StackMem += float64(delta)
		c.stats.HoldMem += uint64(delta)
	case stallBranch:
		c.stats.StackBranch += float64(delta)
	case stallExec:
		c.stats.StackExec += float64(delta)
	default:
		c.stats.StackOther += float64(delta)
	}
	c.stats.FetchIdle += uint64(delta)
	c.stats.ROBOccupancySum += uint64(delta) * uint64(c.space.Used())
	c.stats.OutstandingSum += uint64(delta) * uint64(len(c.longUntil))
	// Idle cycles still advance the arbitration counters: fetch and
	// dispatch by one, commit by one full thread rotation.
	c.fetchRR += int(delta)
	c.dispatchRR += int(delta)
	c.commitRR += int(delta) * len(c.threads)
	c.now = target
	c.stats.Cycles = target
}

// LastCycleActive reports whether the most recent Cycle changed pipeline
// state (used by equivalence tests to validate NextWake's idle claims).
func (c *Core) LastCycleActive() bool { return c.activity }

// classPorts caps per-class issue bandwidth (a simplified Skylake port
// map: 4 ALU ports, 2 load, 1 store-address, 2 branch-capable, one
// divider).
var classPorts = map[isa.Class]int{
	isa.ClassIntAlu:  4,
	isa.ClassIntMul:  2,
	isa.ClassIntDiv:  1,
	isa.ClassFp:      2,
	isa.ClassFpDiv:   1,
	isa.ClassLoad:    2,
	isa.ClassStore:   1,
	isa.ClassAtomic:  1,
	isa.ClassBranch:  2,
	isa.ClassNop:     4,
	isa.ClassBarrier: 1,
	isa.ClassHalt:    4,
}
