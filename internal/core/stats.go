package core

// Stats aggregates everything the paper's figures report about one core.
type Stats struct {
	Cycles    int64
	Committed uint64

	// Dispatched-instruction breakdown (Fig. 6): correct-path, wrong-
	// path, and slice-instruction overhead (markers take frontend and
	// dispatch slots but are discarded at dispatch).
	DispCorrect  uint64
	DispWrong    uint64
	DispOverhead uint64

	// Branch statistics.
	Branches    uint64
	Mispredicts uint64
	// SliceRecoveries counts mispredictions recovered selectively;
	// ConvRecoveries counts conventional full flushes (non-slice
	// branches, FRQ overflow, or SelectiveFlush disabled).
	SliceRecoveries uint64
	ConvRecoveries  uint64

	// Flush accounting.
	FlushedSelective uint64 // uops removed by selective flushes
	FlushedFull      uint64 // uops removed by conventional flushes
	GapsCreated      uint64 // ROB entries stranded by block partitioning (Fig. 8)

	// FetchedWrongPath counts wrong-path instructions fetched (some are
	// flushed in the frontend and never dispatch).
	FetchedWrongPath uint64
	// NestedMisses counts mispredictions detected inside resolve paths.
	NestedMisses uint64

	// FRQPeak is the maximum fetch redirect queue occupancy observed.
	FRQPeak int

	// Recovery-policy diagnostics: cycles spent draining parked victims
	// of a partial flush, and cycles the throttle policy narrowed fetch
	// to one slot because a low-confidence branch was outstanding.
	DrainCycles     uint64
	ThrottledCycles uint64

	// Uop conservation counters (the differential-fuzz oracle): every uop
	// created by fetch must end committed, squashed after entering the
	// window, or discarded while still in the frontend (slice markers,
	// frontend flushes). At quiesce,
	// UopsFetched == Committed + UopsSquashed + UopsFEDiscarded.
	UopsFetched     uint64
	UopsSquashed    uint64
	UopsFEDiscarded uint64

	// Cycle stack (Fig. 5): fractions of total cycles attributed to
	// useful execution, branch-miss resolution, memory stalls, and
	// everything else. Each cycle contributes commit-slot fractions.
	StackExec   float64
	StackBranch float64
	StackMem    float64
	StackOther  float64

	// Occupancy integrals for average-occupancy reporting.
	ROBOccupancySum uint64

	// Fine-grained diagnostics (not part of the paper's figures).
	FetchNormal    uint64 // instructions fetched from the regular trace
	FetchWrong     uint64 // instructions fetched from wrong paths
	FetchResolve   uint64 // instructions fetched from resolve segments
	FetchIdle      uint64 // fetch cycles with no instruction delivered
	HoldSplice     uint64 // commit-slot fractions lost at splice cursors
	HoldMem        uint64 // zero-commit cycles with a memory op at head
	SegLenSum      uint64 // total resolve-segment instructions buffered
	OutstandingSum uint64 // per-cycle sum of long-latency loads in flight
	LongLoads      uint64 // loads whose latency exceeded 100 cycles
}

// IPC returns committed instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// MispredictRate returns mispredictions per conditional branch.
func (s *Stats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

// MPKI returns mispredictions per kilo-instruction.
func (s *Stats) MPKI() float64 {
	if s.Committed == 0 {
		return 0
	}
	return 1000 * float64(s.Mispredicts) / float64(s.Committed)
}

// StackTotal returns the sum of the stack components (≈ Cycles).
func (s *Stats) StackTotal() float64 {
	return s.StackExec + s.StackBranch + s.StackMem + s.StackOther
}

// Add accumulates other into s (multicore aggregation).
func (s *Stats) Add(o *Stats) {
	if o.Cycles > s.Cycles {
		s.Cycles = o.Cycles
	}
	s.Committed += o.Committed
	s.DispCorrect += o.DispCorrect
	s.DispWrong += o.DispWrong
	s.DispOverhead += o.DispOverhead
	s.Branches += o.Branches
	s.Mispredicts += o.Mispredicts
	s.SliceRecoveries += o.SliceRecoveries
	s.ConvRecoveries += o.ConvRecoveries
	s.FlushedSelective += o.FlushedSelective
	s.FlushedFull += o.FlushedFull
	s.GapsCreated += o.GapsCreated
	s.FetchedWrongPath += o.FetchedWrongPath
	s.NestedMisses += o.NestedMisses
	if o.FRQPeak > s.FRQPeak {
		s.FRQPeak = o.FRQPeak
	}
	s.DrainCycles += o.DrainCycles
	s.ThrottledCycles += o.ThrottledCycles
	s.UopsFetched += o.UopsFetched
	s.UopsSquashed += o.UopsSquashed
	s.UopsFEDiscarded += o.UopsFEDiscarded
	s.StackExec += o.StackExec
	s.StackBranch += o.StackBranch
	s.StackMem += o.StackMem
	s.StackOther += o.StackOther
	s.ROBOccupancySum += o.ROBOccupancySum
	s.FetchNormal += o.FetchNormal
	s.FetchWrong += o.FetchWrong
	s.FetchResolve += o.FetchResolve
	s.FetchIdle += o.FetchIdle
	s.HoldSplice += o.HoldSplice
	s.HoldMem += o.HoldMem
	s.SegLenSum += o.SegLenSum
	s.OutstandingSum += o.OutstandingSum
	s.LongLoads += o.LongLoads
}
