package core

import "fmt"

// trace emits one pipeline event line when tracing is enabled. Hot call
// sites gate on c.traceOn before building arguments: traceUop formats
// unconditionally, and evaluating it on every dispatch/commit just to
// discard the string here dominated the allocation profile.
func (c *Core) trace(format string, args ...any) {
	if c.cfg.Trace == nil {
		return
	}
	if c.cfg.TraceLimit > 0 && c.traced >= c.cfg.TraceLimit {
		return
	}
	c.traced++
	fmt.Fprintf(c.cfg.Trace, "%8d  ", c.now)
	fmt.Fprintf(c.cfg.Trace, format, args...)
	fmt.Fprintln(c.cfg.Trace)
}

// traceUop formats a uop compactly for event lines.
func traceUop(u *uop) string {
	tag := ""
	if u.d.Wrong {
		tag = " WP"
	}
	if u.resolvePath {
		tag += " RP"
	}
	if u.d.InSlice {
		tag += fmt.Sprintf(" s%d", u.d.SliceID)
	}
	return fmt.Sprintf("#%-7d @%-4d %v%s", u.d.Seq, u.d.PC, u.d.Inst.Op, tag)
}
