package core

import (
	"repro/internal/bpred"
	"repro/internal/emu"
	"repro/internal/rename"
	"repro/internal/rob"
)

// uopState tracks a micro-op through the pipeline.
type uopState uint8

const (
	stFrontend uopState = iota // fetched, waiting to dispatch
	stWaiting                  // dispatched, in RS, waiting for operands
	stIssued                   // executing
	stDone                     // result available at doneAt
	stCommitted
	stFlushed
)

// uop is one in-flight micro-op. uops are pooled; id disambiguates
// recycled objects (see depRef).
type uop struct {
	id uint64
	d  emu.DynInst
	t  *thread

	node  rob.Node[*uop]
	state uopState

	// Dependences: producers of the source registers plus, for loads,
	// the store being forwarded from.
	deps  [4]depRef
	ndeps int

	// Wakeup-driven scheduling state: dependents to notify when this uop
	// completes or is flushed, and this uop's own count of outstanding
	// operands (it enters the ready queue when it reaches zero). waiters
	// keeps its capacity across pool recycling.
	waiters   []waiter
	waitCount int
	// dispSeq is the core-wide dispatch order, the tie-break that makes
	// age-ordered selection deterministic (ages collide across SMT
	// threads and within a miss's wrong path).
	dispSeq uint64

	readyFE    int64 // cycle the uop may leave the frontend
	doneAt     int64
	issueCycle int64
	// fetchCycle/dispCycle are recorded only while a flight recorder
	// with TraceUops is attached (zero otherwise).
	fetchCycle int64
	dispCycle  int64
	// age is the logical-age key for oldest-first issue selection:
	// the program-order sequence for correct-path uops, and the
	// mispredicted branch's sequence for its wrong-path uops.
	age uint64

	// Branch bookkeeping.
	pred      bpred.Pred
	predTaken bool
	mispred   bool
	miss      *missInfo

	// fwdStore is the store this load forwards from, when any.
	fwdStore depRef

	// resolvePath marks correct-path instructions fetched to resolve an
	// in-slice miss; they may use reserved resources (§4.7).
	resolvePath bool
	reduce      bool
	// wpOf links a wrong-path uop to the in-slice miss it belongs to
	// (nil for conventional wrong paths).
	wpOf *missInfo
	// resolveOf links a resolve-path uop to the miss whose correct path
	// it restores.
	resolveOf *missInfo
	// spliceHold marks this uop as the current splice cursor of a miss
	// whose resolved path has not fully entered the ROB: it must not
	// commit (and be unlinked) while later resolve-path instructions
	// still need to be inserted after it.
	spliceHold *missInfo
	// ck is the rename checkpoint taken at dispatch of a branch known
	// to be mispredicted (conventional recovery restores it).
	ck *renameSnapshot
	// barrierOK is set when the simulator releases this barrier uop.
	barrierOK bool
	// tombstone marks a splice cursor that has retired (resources
	// freed, stats counted) but stays linked as the order boundary
	// until the next resolve-path instruction is spliced after it.
	tombstone bool
	// lowConf marks a fetched conditional branch the throttle policy
	// counted as low-confidence; cleared (and the thread's lowConfOut
	// decremented) when the branch resolves or the uop is freed.
	lowConf bool
	// drainHold marks the boundary branch of a partial flush: it must not
	// commit while parked victims are still draining behind it.
	drainHold bool
}

// depRef is a validity-checked reference to a producing uop: if the uop
// was recycled (id mismatch) or has produced its result, the dependence is
// satisfied.
type depRef struct {
	u  *uop
	id uint64
}

func (r depRef) ready(now int64) bool {
	if r.u == nil || r.u.id != r.id {
		return true
	}
	switch r.u.state {
	case stDone, stCommitted:
		return r.u.doneAt <= now
	case stFlushed:
		return true
	}
	return false
}

// waiter is one entry on a producer's wakeup list: the dependent uop,
// validity-checked by id like depRef (the dependent may be flushed and
// recycled while the producer is still executing).
type waiter struct {
	u  *uop
	id uint64
}

// readyRef is one entry of the ready queue or specials list, id-checked
// the same way.
type readyRef struct {
	u  *uop
	id uint64
}

// renameRef is the rename-table entry type.
type renameRef = depRef

// renameSnapshot aliases the rename checkpoint type.
type renameSnapshot = rename.Snapshot[renameRef]

// renameTable aliases the rename table type.
type renameTable = rename.Table[renameRef]

func makeRef(u *uop) renameRef {
	if u == nil {
		return renameRef{}
	}
	return renameRef{u: u, id: u.id}
}

// missInfo describes one pending in-slice branch miss: everything a fetch
// redirect queue entry carries (§4.6) plus the correct-path segment
// buffered by the trace frontend.
type missInfo struct {
	branch *uop
	// branchSeq snapshots the branch's program-order position: the
	// branch uop itself is pooled and may be recycled once it commits,
	// so ordering decisions must never read through the pointer.
	branchSeq uint64
	// seg is the correct-path remainder of the slice (including the
	// closing slice_end marker), executed functionally at detection
	// time and delivered to the pipeline at resolution.
	seg []emu.DynInst
	// wp records the wrong-path uops dispatched for this miss, to be
	// selectively flushed at resolution.
	wp []*uop
	// ck is the rename checkpoint at the branch (CP1 in Fig. 2);
	// rtbl is the segment's private rename table seeded from ck, so the
	// regular stream's table never sees resolve-path renamings (the
	// regular-fetch checkpoint CP2 "does not contain the renamings made
	// after dispatching the resolved path", §4.2).
	ck      renameSnapshot
	ckValid bool
	rtbl    *rename.Table[renameRef]
	// insertPos is where the next resolve-path uop is spliced into the
	// linked ROB.
	insertPos *rob.Node[*uop]
	// dispatched counts resolve-path uops dispatched so far;
	// segDispatched is set when the whole segment entered the ROB.
	dispatched    int
	segDispatched bool
	// feq queues this miss's fetched-but-undispatched resolve-path uops
	// in segment order; feqHead is the consumed prefix (index cursor, so
	// dispatch pops cost O(1)). inResolveList marks membership in the
	// owning thread's resolveMisses list.
	feq           []*uop
	feqHead       int
	inResolveList bool
	// fetched counts segment instructions delivered to the frontend
	// (resolve fetch can be preempted by an older miss and resumed).
	fetched int
	// stall is a mispredicted branch inside this resolve path; fetching
	// the rest of the segment waits for it to resolve.
	stall *uop
	// resolved is set when the branch executed and the selective flush
	// was performed.
	resolved bool
	// cancelled marks a miss squashed by an older conventional flush.
	cancelled bool
	// segOwner refcounts the pooled backing buffer of seg. Nested misses
	// alias a suffix of their parent's array, so the buffer returns to
	// the core's pool only when every miss sharing it has released;
	// segReleased makes the release idempotent across the resolution and
	// cancellation paths.
	segOwner    *segBuf
	segReleased bool
	// flushLen is the number of wrong-path uops flushed at resolution
	// (for block-gap accounting).
	flushLen int
}

// event is a scheduled completion.
type event struct {
	at int64
	u  *uop
	id uint64
}

// eventHeap is a concrete binary min-heap on event.at. The sift logic
// mirrors container/heap exactly (same child-selection tie-breaks), so
// the pop order of equal-time events — which the issue stage's selection
// can observe — is identical to the previous container/heap version,
// without the interface boxing that allocated on every push and pop.
type eventHeap []event

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	s := *h
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(s[j].at < s[i].at) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
}

func (h *eventHeap) pop() event {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	// Sift down over s[:n].
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && s[j2].at < s[j1].at {
			j = j2
		}
		if !(s[j].at < s[i].at) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	e := s[n]
	*h = s[:n]
	return e
}

func (c *Core) schedule(u *uop, at int64) {
	c.events.push(event{at: at, u: u, id: u.id})
}

// uop pool.

func (c *Core) newUop(d emu.DynInst, t *thread) *uop {
	var u *uop
	if n := len(c.pool); n > 0 {
		u = c.pool[n-1]
		c.pool = c.pool[:n-1]
		w := u.waiters
		*u = uop{}
		u.waiters = w[:0]
	} else {
		u = &uop{}
	}
	c.nextID++
	u.id = c.nextID
	u.d = d
	u.t = t
	u.node.Val = u
	c.stats.UopsFetched++
	if c.rec != nil && c.rec.TraceUops {
		u.fetchCycle = c.now
	}
	return u
}

func (c *Core) freeUop(u *uop) {
	if u.node.InList() {
		panic("core: freeing linked uop")
	}
	switch u.state {
	case stFrontend:
		c.stats.UopsFEDiscarded++
	case stFlushed:
		c.stats.UopsSquashed++
	}
	if u.lowConf {
		u.lowConf = false
		u.t.lowConfOut--
	}
	u.miss = nil
	u.t = nil
	u.waiters = u.waiters[:0]
	c.pool = append(c.pool, u)
}

// Segment-buffer pool: the append target handed to RunToSliceEnd at miss
// detection. A buffer is recycled once every miss aliasing it — the root
// and any nested children, which slice the parent's array — has stopped
// consuming elements: its segment fully dispatched, or the miss was
// cancelled by a conventional flush. After release only len(mi.seg)
// reads remain, and a slice header's length stays valid when the backing
// array is handed to a new miss.

type segBuf struct {
	buf  []emu.DynInst
	refs int
}

func (c *Core) getSegBuf() *segBuf {
	if n := len(c.segPool); n > 0 {
		sb := c.segPool[n-1]
		c.segPool = c.segPool[:n-1]
		sb.refs = 1
		return sb
	}
	return &segBuf{refs: 1}
}

// shareSeg makes child a co-owner of parent's segment buffer.
func shareSeg(parent, child *missInfo) {
	if parent.segOwner != nil {
		child.segOwner = parent.segOwner
		child.segOwner.refs++
	}
}

// releaseSeg drops mi's reference to its segment buffer, returning the
// buffer to the pool when mi was the last holder.
func (c *Core) releaseSeg(mi *missInfo) {
	if mi.segReleased || mi.segOwner == nil {
		return
	}
	mi.segReleased = true
	sb := mi.segOwner
	if sb.refs--; sb.refs == 0 {
		c.segPool = append(c.segPool, sb)
	}
}
