package core

import (
	"testing"

	"repro/internal/emu"
)

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.SMT = 3 },
		func(c *Config) { c.ROBSize = 0 },
		func(c *Config) { c.Reserve = -1 },
		func(c *Config) { c.Reserve = c.SQ },
		func(c *Config) { c.FetchWidth = 0 },
		func(c *Config) { c.ROBBlockSize = 0 },
		func(c *Config) { c.SelectiveFlush = true; c.Reserve = 0 },
	}
	zeroReserveBaseline := DefaultConfig()
	zeroReserveBaseline.Reserve = 0
	if err := zeroReserveBaseline.Validate(); err != nil {
		t.Fatalf("Reserve 0 without selective flush should be valid: %v", err)
	}
	for i, mut := range bad {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestStatsDerived(t *testing.T) {
	s := Stats{Cycles: 100, Committed: 250, Branches: 50, Mispredicts: 5}
	if s.IPC() != 2.5 {
		t.Fatalf("IPC %f", s.IPC())
	}
	if s.MispredictRate() != 0.1 {
		t.Fatalf("rate %f", s.MispredictRate())
	}
	if s.MPKI() != 20 {
		t.Fatalf("MPKI %f", s.MPKI())
	}
	var z Stats
	if z.IPC() != 0 || z.MispredictRate() != 0 || z.MPKI() != 0 {
		t.Fatal("zero stats should not divide by zero")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Cycles: 10, Committed: 5, FRQPeak: 2, StackMem: 1}
	b := Stats{Cycles: 20, Committed: 7, FRQPeak: 1, StackMem: 2}
	a.Add(&b)
	if a.Cycles != 20 { // max, not sum: cores run concurrently
		t.Fatalf("cycles %d", a.Cycles)
	}
	if a.Committed != 12 || a.FRQPeak != 2 || a.StackMem != 3 {
		t.Fatalf("aggregate wrong: %+v", a)
	}
}

func TestEventHeapOrder(t *testing.T) {
	var h eventHeap
	for _, at := range []int64{5, 1, 9, 3} {
		h.push(event{at: at})
	}
	prev := int64(-1)
	for len(h) > 0 {
		e := h.pop()
		if e.at < prev {
			t.Fatalf("heap out of order: %d after %d", e.at, prev)
		}
		prev = e.at
	}
}

func TestDepRefStaleness(t *testing.T) {
	c := &Core{}
	u := c.newUop(emu.DynInst{}, nil)
	ref := makeRef(u)
	u.state = stWaiting
	if ref.ready(0) {
		t.Fatal("waiting producer reported ready")
	}
	u.state = stDone
	u.doneAt = 10
	if ref.ready(5) {
		t.Fatal("ready before doneAt")
	}
	if !ref.ready(10) {
		t.Fatal("not ready at doneAt")
	}
	// Recycle the uop: the stale reference must read as ready.
	u.state = stCommitted
	c.freeUop(u)
	u2 := c.newUop(emu.DynInst{}, nil)
	u2.state = stWaiting
	if u2 != u {
		t.Fatal("pool did not recycle")
	}
	if !ref.ready(0) {
		t.Fatal("stale reference to recycled uop not treated as ready")
	}
}

func TestUopPoolResets(t *testing.T) {
	c := &Core{}
	u := c.newUop(emu.DynInst{Seq: 7}, nil)
	u.mispred = true
	u.tombstone = true
	u.ndeps = 3
	id := u.id
	c.freeUop(u)
	u2 := c.newUop(emu.DynInst{Seq: 9}, nil)
	if u2.mispred || u2.tombstone || u2.ndeps != 0 {
		t.Fatal("pooled uop state leaked")
	}
	if u2.id == id {
		t.Fatal("recycled uop kept its id")
	}
	if u2.node.Val != u2 {
		t.Fatal("node back-pointer not reset")
	}
}

func TestClassPortsCoverage(t *testing.T) {
	// Every class the issue stage can see must have a port budget.
	for cl, cap := range classPorts {
		if cap <= 0 {
			t.Errorf("class %v has no ports", cl)
		}
	}
}

func TestSegBufPoolRefcounts(t *testing.T) {
	c := &Core{}
	sb := c.getSegBuf()
	sb.buf = append(sb.buf[:0], emu.DynInst{Seq: 1}, emu.DynInst{Seq: 2})
	parent := &missInfo{seg: sb.buf, segOwner: sb}
	child := &missInfo{seg: parent.seg[1:]}
	shareSeg(parent, child)
	if sb.refs != 2 {
		t.Fatalf("refs after share = %d, want 2", sb.refs)
	}

	c.releaseSeg(parent)
	c.releaseSeg(parent) // idempotent: cancellation after segDispatched
	if sb.refs != 1 || len(c.segPool) != 0 {
		t.Fatalf("buffer freed while a child still aliases it (refs=%d pool=%d)",
			sb.refs, len(c.segPool))
	}
	c.releaseSeg(child)
	if len(c.segPool) != 1 {
		t.Fatal("buffer not pooled after the last release")
	}

	sb2 := c.getSegBuf()
	if sb2 != sb || sb2.refs != 1 {
		t.Fatalf("pool did not recycle the buffer (refs=%d)", sb2.refs)
	}
	if cap(sb2.buf) < 2 {
		t.Fatal("recycled buffer lost its capacity")
	}
}
