package core

import (
	"repro/internal/flight"
	"repro/internal/isa"
)

// dispatch renames and inserts fetched instructions into the window, up to
// DispatchWidth per cycle, round-robin across SMT threads.
//
// Each thread has two frontend streams: the regular stream (frontend) and
// the resolve-path stream (one FIFO per miss, listed in resolveMisses),
// which carries correct paths being
// spliced after selective flushes. The resolve stream has dispatch
// priority — it is the commit-critical path, and in the paper's hardware
// regular fetch is parked at the regular-fetch checkpoint while the
// resolved path flows through the pipeline. Within the resolve stream,
// the program-order-oldest hole's instructions are privileged: only they
// may consume the reserved RS/LQ/SQ/ROB entries (§4.7), which is what
// makes the reservation deadlock-free.
func (c *Core) dispatch() {
	slots := c.cfg.DispatchWidth
	for slots > 0 {
		progressed := false
		for i := 0; i < len(c.threads) && slots > 0; i++ {
			t := c.threads[(c.dispatchRR+i)%len(c.threads)]
			oldest := t.oldestHoleSeq()
			if c.dispatchResolve(t, oldest) {
				slots--
				progressed = true
				continue
			}
			if c.dispatchRegular(t, oldest) {
				slots--
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	c.dispatchRR++
}

// dispatchResolve dispatches one resolve-path instruction. All resolve
// paths share the reserved resources (§4.7 reserves them "for resolving
// correct paths"); instructions of one miss dispatch in segment order,
// but distinct misses' segments may interleave, so multiple holes drain
// concurrently. The oldest hole additionally may take the very last
// entry, which is the §4.7 deadlock-freedom guarantee.
func (c *Core) dispatchResolve(t *thread, oldestHole uint64) bool {
	// Each miss keeps its own fetched-instruction FIFO (missInfo.feq with
	// an index cursor — pops are O(1)); the candidates are the queue
	// heads whose frontend delay expired. Dispatch oldest-miss-first: the
	// oldest hole is the commit-critical path and gets the dispatch
	// bandwidth; younger holes fill spare slots.
	if len(t.resolveMisses) == 0 {
		return false
	}
	cands := c.resolveCands[:0]
	live := t.resolveMisses[:0]
	for _, mi := range t.resolveMisses {
		if mi.feqHead >= len(mi.feq) {
			// Fully dispatched (for now): drop from the list, keeping
			// the queue's capacity for a later resume of this miss.
			mi.inResolveList = false
			mi.feq = mi.feq[:0]
			mi.feqHead = 0
			continue
		}
		live = append(live, mi)
		if mi.feq[mi.feqHead].readyFE <= c.now {
			cands = append(cands, mi)
		}
	}
	t.resolveMisses = live
	ok := false
	for len(cands) > 0 {
		best := 0
		for i := 1; i < len(cands); i++ {
			if cands[i].branchSeq < cands[best].branchSeq {
				best = i
			}
		}
		mi := cands[best]
		if c.tryDispatch(t, mi.feq[mi.feqHead], oldestHole) {
			mi.feq[mi.feqHead] = nil
			mi.feqHead++
			ok = true
			break
		}
		cands[best] = cands[len(cands)-1]
		cands = cands[:len(cands)-1]
	}
	c.resolveCands = cands[:0]
	return ok
}

// dispatchRegular dispatches the head of the regular frontend queue.
func (c *Core) dispatchRegular(t *thread, oldestHole uint64) bool {
	if len(t.frontend) == 0 {
		return false
	}
	u := t.frontend[0]
	if u.readyFE > c.now {
		return false
	}
	if !c.tryDispatch(t, u, oldestHole) {
		return false
	}
	t.frontend = t.frontend[1:]
	return true
}

// resourceNeeds returns which queues the uop occupies.
func resourceNeeds(op isa.Op) (lq, sq bool) {
	switch {
	case op.IsLoad():
		return true, false
	case op.IsStore():
		return false, true
	case op.IsAtomic():
		return true, true
	}
	return false, false
}

// privileged reports whether u may use the reserved resources: it is a
// resolve-path instruction of the program-order-oldest unfinished hole
// (no older hole exists, resolved or pending). Hot paths cache
// t.oldestHoleSeq() and compare inline; this helper serves tryDispatch
// and diagnostics.
func (c *Core) privileged(t *thread, u *uop) bool {
	if !u.resolvePath {
		return false
	}
	return u.resolveOf.branchSeq <= t.oldestHoleSeq()
}

// tryDispatch attempts to rename and insert u. It returns false when
// resources are unavailable (the caller retries later); marker
// instructions always succeed (they are discarded at dispatch, consuming
// only the slot).
func (c *Core) tryDispatch(t *thread, u *uop, oldestHole uint64) bool {
	op := u.d.Inst.Op

	// Slice markers take a dispatch slot and vanish (Fig. 6 overhead).
	if op.IsSlice() || op == isa.Nop {
		if u.d.Wrong {
			c.stats.DispWrong++
		} else {
			c.stats.DispOverhead++
		}
		if u.resolvePath {
			mi := u.resolveOf
			c.noteResolveDispatched(mi)
			if mi.segDispatched && mi.insertPos != nil {
				prev := mi.insertPos.Val
				prev.spliceHold = nil
				if prev.tombstone {
					t.list.Remove(&prev.node)
					c.freeUop(prev)
				}
			}
		}
		c.freeUop(u)
		c.activity = true
		return true
	}

	// Resource admission tiers (§4.7): regular fetch keeps Reserve
	// entries of each resource free for resolve paths; resolve paths
	// share those but keep one entry free for the oldest hole, whose
	// path drains straight into commit — "reserving a single resource
	// of each suffices to prevent deadlocks".
	// The reservation is active while in-slice instructions are in the
	// ROB or any hole (resolved or pending miss) exists: segments still
	// to be spliced will need the reserved entries even after a fence
	// let post-region code proceed.
	active := c.selEligible &&
		(c.inSliceCount > 0 || t.pendingMisses > 0 || oldestHole != ^uint64(0))
	reserve := 0
	if active && !u.resolvePath {
		reserve = c.cfg.Reserve
	} else if u.resolvePath && u.resolveOf.branchSeq > oldestHole {
		reserve = nonOldestReserve(c.cfg.Reserve)
	}
	needLQ, needSQ := resourceNeeds(op)
	if c.space.Free() <= reserve {
		return false
	}
	if c.rsUsed >= c.cfg.RS-reserve {
		return false
	}
	if needLQ && c.lqUsed >= c.cfg.LQ-reserve {
		return false
	}
	if needSQ && c.sqUsed >= c.cfg.SQ-reserve {
		return false
	}

	// Allocate.
	if !c.space.Alloc() {
		return false
	}
	c.rsUsed++
	if needLQ {
		c.lqUsed++
	}
	if needSQ {
		c.sqUsed++
	}

	// Rename: resolve-path instructions use the segment's private table
	// seeded from the branch checkpoint (CP1); everything else uses the
	// thread's live table.
	tbl := &t.rt
	if u.resolvePath {
		mi := u.resolveOf
		if mi.rtbl == nil {
			mi.rtbl = &renameTable{}
			mi.rtbl.Restore(mi.ck)
		}
		tbl = mi.rtbl
	}
	c.renameDeps(t, u, tbl)

	// Branches known to be mispredicted checkpoint the rename table for
	// recovery (CP1 / conventional restore point). Nested misses inside
	// a resolve path checkpoint the segment's private table.
	if u.mispred {
		switch {
		case u.miss != nil:
			u.miss.ck = tbl.Checkpoint()
			u.miss.ckValid = true
		case !u.resolvePath:
			ck := t.rt.Checkpoint()
			u.ck = &ck
		}
	}

	// Insert into the logical-order linked ROB, advancing the splice
	// cursor (and its commit boundary) to the newly inserted entry; a
	// cursor that already retired into a tombstone is unlinked now.
	if u.resolvePath {
		mi := u.resolveOf
		if mi.insertPos == nil {
			mi.insertPos = &mi.branch.node
		}
		if c.rec != nil {
			c.recordMechanism(flight.EvSplice, t, u, int64(mi.branchSeq))
		}
		t.list.InsertAfter(mi.insertPos, &u.node)
		prev := mi.insertPos.Val
		prev.spliceHold = nil
		if prev.tombstone {
			t.list.Remove(&prev.node)
			c.freeUop(prev)
		}
		mi.insertPos = &u.node
		u.spliceHold = mi
		c.noteResolveDispatched(mi)
		if mi.segDispatched {
			u.spliceHold = nil
		}
	} else {
		t.list.PushBack(&u.node)
	}

	if u.wpOf != nil {
		u.wpOf.wp = append(u.wpOf.wp, u)
	}
	if u.d.InSlice && !u.d.Wrong {
		c.inSliceCount++
	}

	u.state = stWaiting
	if c.rec != nil && c.rec.TraceUops {
		u.dispCycle = c.now
	}
	u.dispSeq = c.dispSeqCtr
	c.dispSeqCtr++
	if c.forceCyc {
		c.rs = append(c.rs, u)
	} else {
		c.registerWakeups(u)
	}
	if c.traceOn {
		c.trace("DISPATCH    t%d %s", t.id, traceUop(u))
	}
	t.inflight++
	if op.IsStore() && !u.d.Wrong {
		t.stores = append(t.stores, u)
	}
	if u.d.Wrong {
		c.stats.DispWrong++
	} else {
		c.stats.DispCorrect++
	}
	c.activity = true
	return true
}

// nonOldestReserve is how many entries a non-oldest resolve path must
// leave free. The default (negative) tracks the configured Reserve: only
// the oldest hole's path consumes reserved entries, which measured best —
// younger holes' instructions otherwise crowd the commit-critical path
// (see DESIGN.md). SetNonOldestReserve lowers the floor for the ablation
// bench; at least 1 entry always stays free for the oldest hole (§4.7).
var nonOldestReserveN = -1

func nonOldestReserve(configured int) int {
	if nonOldestReserveN < 0 {
		return configured
	}
	return nonOldestReserveN
}

// SetNonOldestReserve tunes the non-oldest resolve-path floor (ablation);
// negative restores the default (track the configured Reserve).
func SetNonOldestReserve(n int) {
	if n == 0 {
		n = 1
	}
	nonOldestReserveN = n
}

// noteResolveDispatched advances the segment-dispatch counter of a miss.
func (c *Core) noteResolveDispatched(mi *missInfo) {
	mi.dispatched++
	if mi.dispatched >= len(mi.seg) {
		mi.segDispatched = true
		c.releaseSeg(mi)
	}
}

// renameDeps records the uop's operand producers from the rename table and
// registers the uop as producer of its destination.
func (c *Core) renameDeps(t *thread, u *uop, tbl *renameTable) {
	in := u.d.Inst
	add := func(r isa.Reg) {
		if r == isa.R0 {
			return
		}
		ref := tbl.Producer(r)
		if ref.u != nil && u.ndeps < len(u.deps) {
			u.deps[u.ndeps] = ref
			u.ndeps++
		}
	}
	add(in.Src1)
	if in.Op != isa.Li && in.Op != isa.Mov && in.Op != isa.FAbs &&
		in.Op != isa.CvtIF && in.Op != isa.CvtFI {
		add(in.Src2)
	}
	if in.Op.IsStore() || in.Op.IsAtomic() {
		add(in.Val)
	}

	// Load-store forwarding: depend on the youngest older in-flight
	// store that overlaps this load's address.
	if (in.Op.IsLoad() || in.Op.IsAtomic()) && !u.d.Wrong {
		if s := t.youngestOlderStore(u); s != nil {
			u.fwdStore = makeRef(s)
			if u.ndeps < len(u.deps) {
				u.deps[u.ndeps] = u.fwdStore
				u.ndeps++
			}
		}
	}

	// Reduction updates are not renamed (§4.5): they read and write
	// architectural registers at the head of the ROB.
	if in.Op.HasDst() && !u.reduce {
		tbl.SetProducer(in.Dst, makeRef(u))
	}
}

// youngestOlderStore finds the in-flight store this load would forward
// from, by program order (Seq) and address overlap.
func (t *thread) youngestOlderStore(u *uop) *uop {
	lo := u.d.Addr
	hi := lo + uint64(u.d.Inst.Op.MemSize())
	var best *uop
	for _, s := range t.stores {
		if s.state == stCommitted || s.state == stFlushed {
			continue
		}
		if s.d.Seq >= u.d.Seq {
			continue
		}
		sLo := s.d.Addr
		sHi := sLo + uint64(s.d.Inst.Op.MemSize())
		if sLo < hi && lo < sHi {
			if best == nil || s.d.Seq > best.d.Seq {
				best = s
			}
		}
	}
	return best
}
