package core

import "repro/internal/isa"

// commit retires completed instructions in logical program order (walking
// the linked-list ROB heads), up to CommitWidth per cycle shared round-
// robin across threads. Stores write memory timing-wise at commit. Commit
// never passes an incomplete hole: the splice cursor of a pending miss
// retires into a resource-free tombstone that stays linked as the order
// boundary until the rest of the resolved path arrives (DESIGN.md,
// deviation 3).
func (c *Core) commit() {
	slots := c.cfg.CommitWidth
	stuck := 0
	for slots > 0 && stuck < len(c.threads) {
		t := c.threads[c.commitRR%len(c.threads)]
		c.commitRR++
		n := c.commitThread(t, slots)
		if n == 0 {
			stuck++
		} else {
			stuck = 0
			slots -= n
		}
	}
}

// commitThread retires up to max instructions from one thread.
func (c *Core) commitThread(t *thread, max int) int {
	n := 0
	for n < max {
		h := t.list.Head()
		if h == nil {
			break
		}
		u := h.Val
		if u.tombstone {
			// The head is an order boundary awaiting its splice;
			// nothing behind it may retire.
			break
		}
		if u.drainHold {
			// Boundary branch of a partial flush: parked victims are
			// still draining behind it.
			break
		}
		if u.state != stDone || u.doneAt > c.now {
			break
		}
		// Commit must not pass an incomplete hole: the rest of the
		// resolved path is logically older than everything behind the
		// splice cursor. The cursor itself retires into a tombstone —
		// its resources are released (so the reserved entries keep
		// cycling, the §4.7 guarantee) but the node stays linked as
		// the order boundary and splice position (the paper's
		// linked-ROB pointer to the next free entry, Fig. 2(d)).
		if u.spliceHold != nil && !u.spliceHold.segDispatched && !u.spliceHold.cancelled {
			if !u.tombstone {
				u.tombstone = true
				c.release(t, u)
				n++
			}
			break
		}
		c.retire(t, u)
		n++
	}
	return n
}

func (c *Core) retire(t *thread, u *uop) {
	if u.tombstone {
		// Resources and stats were handled when the tombstone was
		// created; the node was kept only as the splice boundary.
		t.list.Remove(&u.node)
		c.freeUop(u)
		return
	}
	c.release(t, u)
	t.list.Remove(&u.node)
	c.freeUop(u)
}

// release returns a retiring uop's resources and performs its commit-time
// actions, leaving the node linked (retire or the splice path unlinks it).
func (c *Core) release(t *thread, u *uop) {
	op := u.d.Inst.Op

	c.space.Release()
	c.space.CommitSeq(u.d.Seq)
	needLQ, needSQ := resourceNeeds(op)
	if needLQ {
		c.lqUsed--
	}
	if needSQ {
		c.sqUsed--
	}
	// Mirrors dispatch's increment condition exactly: wrong-path in-slice
	// uops never enter the count, so a (buggy) commit of one must not
	// decrement it either.
	if u.d.InSlice && !u.d.Wrong {
		c.inSliceCount--
	}
	t.inflight--

	switch {
	case op.IsStore(), op.IsAtomic():
		// The architectural write happened in the emulator; charge
		// the cache timing at retirement (store-buffer drain).
		if !u.d.MemOOB {
			c.hier.Data(u.d.Addr, uint64(u.d.PC), c.now, true)
		}
		if op.IsStore() {
			t.removeStore(u)
		}
	case op == isa.Halt:
		t.done = true
	}

	u.state = stCommitted
	c.stats.Committed++
	c.committedThisCycle++
	c.activity = true
	if c.rec != nil {
		c.recordUop(u, false)
	}
	if c.traceOn {
		c.trace("COMMIT      t%d %s", t.id, traceUop(u))
	}
}

// removeStore drops a retired or flushed store from the forwarding list.
// Swap-remove: youngestOlderStore selects by sequence number, never by
// list position, so the order of t.stores is free.
func (t *thread) removeStore(u *uop) {
	for i, s := range t.stores {
		if s == u {
			last := len(t.stores) - 1
			t.stores[i] = t.stores[last]
			t.stores[last] = nil
			t.stores = t.stores[:last]
			return
		}
	}
}
