package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Recovery-policy matrix: the mispredict-recovery path is pluggable
// behind RecoveryPolicy. The paper's selective flush and the classic
// conventional full flush are the two bit-exact legacy policies; the
// matrix adds a staged partial flush (the "flush less than everything"
// idiom) and confidence-gated fetch throttling, so the reproduction
// doubles as a comparison lab over the recovery design space.
//
// Contract (what a policy may and may not touch):
//
//   - SelectiveEligible is consulted once at construction and cached;
//     it gates the §4.2 machinery (miss segments, FRQ, reservation
//     tiers). Only the selective policy returns true; every other
//     policy sees mispredictions only at resolution, with no missInfo
//     attached.
//   - Recover runs at branch resolution (complete stage) for every
//     mispredicted correct-path branch that is not handled by the
//     selective/resolve-path mechanism. It must train the predictor
//     (pred.Resolve) and repair the window so that, eventually, only
//     uops logically older than the branch remain; any staging must
//     keep the branch linked as the commit-order boundary (drainHold)
//     until the repair completes, and must announce per-cycle work via
//     Core.draining so the event-driven driver never skips over it.
//   - The optional fetchHooks extension observes correct-path branch
//     fetch/resolution and may narrow the fetch width; implementations
//     must be deterministic pure functions of core/thread state.
//   - Every policy must leave the machine quiescent: CheckQuiescent and
//     the uop conservation law hold at the end of every run, and the
//     differential fuzz oracles (final memory ≡ emulator, exact commit
//     counts, watchdog) apply unchanged. New policies are registered in
//     the table below and automatically enter the conformance matrix.
const (
	// PolicyAuto (the zero value) follows the legacy SelectiveFlush
	// switch: selective when it is set, conventional otherwise.
	PolicyAuto         = ""
	PolicySelective    = "selective"
	PolicyConventional = "conventional"
	PolicyPartial      = "partial"
	PolicyThrottle     = "throttle"
)

// PolicySpec names a recovery policy and its parameters. The zero value
// is PolicyAuto. Canonical spellings: "selective", "conventional",
// "partial:<depth>" ("partial:inf" for unbounded), "throttle:<conf>".
type PolicySpec struct {
	Kind string
	// Depth (partial only) is the number of victims squashed per cycle,
	// and equally the distance from the branch flushed at resolution;
	// 0 means unbounded (≡ conventional).
	Depth int
	// Conf (throttle only) is the confidence threshold in [0, 4]:
	// fetched branches predicted with confidence < Conf gate fetch to
	// one instruction per cycle until they resolve. 0 never gates
	// (≡ conventional); TAGE u-bits saturate at 3, so 4 gates on every
	// branch.
	Conf int
}

// ParsePolicy parses a policy string ("", "selective", "partial:16",
// "throttle:2", ...). The empty string is PolicyAuto.
func ParsePolicy(s string) (PolicySpec, error) {
	if s == "" || s == "auto" {
		return PolicySpec{}, nil
	}
	kind, arg := s, ""
	if i := strings.IndexByte(s, ':'); i >= 0 {
		kind, arg = s[:i], s[i+1:]
		if arg == "" {
			return PolicySpec{}, fmt.Errorf("core: recovery policy %q: empty parameter after ':'", s)
		}
	}
	def, ok := policyDefs[kind]
	if !ok {
		return PolicySpec{}, fmt.Errorf("core: unknown recovery policy %q (kinds: %s)",
			s, strings.Join(RegisteredPolicies(), ", "))
	}
	spec, err := def.parse(arg)
	if err != nil {
		return PolicySpec{}, fmt.Errorf("core: recovery policy %q: %w", s, err)
	}
	spec.Kind = kind
	return spec, nil
}

// String returns the canonical spelling (ParsePolicy(p.String()) == p).
func (p PolicySpec) String() string {
	switch p.Kind {
	case PolicyAuto:
		return "auto"
	case PolicyPartial:
		if p.Depth <= 0 {
			return "partial:inf"
		}
		return fmt.Sprintf("partial:%d", p.Depth)
	case PolicyThrottle:
		return fmt.Sprintf("throttle:%d", p.Conf)
	}
	return p.Kind
}

// Validate checks the spec's kind and parameter ranges.
func (p PolicySpec) Validate() error {
	switch p.Kind {
	case PolicyAuto, PolicySelective, PolicyConventional:
		if p.Depth != 0 || p.Conf != 0 {
			return fmt.Errorf("core: recovery policy %q takes no parameters", p.Kind)
		}
	case PolicyPartial:
		if p.Depth < 0 {
			return fmt.Errorf("core: partial flush depth %d must be >= 0 (0 = unbounded)", p.Depth)
		}
		if p.Conf != 0 {
			return fmt.Errorf("core: partial takes no confidence parameter")
		}
	case PolicyThrottle:
		if p.Conf < 0 || p.Conf > 4 {
			return fmt.Errorf("core: throttle confidence %d out of range [0, 4]", p.Conf)
		}
		if p.Depth != 0 {
			return fmt.Errorf("core: throttle takes no depth parameter")
		}
	default:
		return fmt.Errorf("core: unknown recovery policy kind %q (kinds: %s)",
			p.Kind, strings.Join(RegisteredPolicies(), ", "))
	}
	return nil
}

// effective resolves PolicyAuto against the legacy SelectiveFlush
// switch; the zero spec preserves pre-policy behavior exactly.
func (p PolicySpec) effective(selectiveFlush bool) PolicySpec {
	if p.Kind != PolicyAuto {
		return p
	}
	if selectiveFlush {
		return PolicySpec{Kind: PolicySelective}
	}
	return PolicySpec{Kind: PolicyConventional}
}

// RecoveryPolicy decides how a mispredicted branch repairs the machine.
// See the contract at the top of this file.
type RecoveryPolicy interface {
	// Name is the canonical policy spelling.
	Name() string
	// SelectiveEligible reports whether in-slice mispredictions may use
	// the §4.2 selective mechanism (miss detection, FRQ, reservation).
	SelectiveEligible() bool
	// Recover repairs the window for resolved mispredicted branch u.
	Recover(c *Core, t *thread, u *uop)
}

// fetchHooks is the optional fetch-side extension of RecoveryPolicy.
// Core caches the assertion result (Core.polFetch); policies without it
// cost nothing on the fetch path.
type fetchHooks interface {
	// OnFetchBranch observes a correct-path conditional branch right
	// after prediction (u.pred is populated).
	OnFetchBranch(c *Core, t *thread, u *uop)
	// OnBranchResolved observes every correct-path branch resolution,
	// mispredicted or not, before recovery runs.
	OnBranchResolved(c *Core, t *thread, u *uop)
	// FetchWidth returns this cycle's fetch width for thread t.
	FetchWidth(c *Core, t *thread) int
}

// policyDef is one registry entry: parameter parsing, construction, and
// the representative parameterizations the conformance suite runs.
type policyDef struct {
	parse       func(arg string) (PolicySpec, error)
	build       func(spec PolicySpec) RecoveryPolicy
	conformance func(robSize int) []PolicySpec
}

var policyDefs = map[string]policyDef{}

func registerPolicy(kind string, def policyDef) {
	if _, dup := policyDefs[kind]; dup {
		panic("core: duplicate recovery policy " + kind)
	}
	policyDefs[kind] = def
}

// RegisteredPolicies returns the known policy kinds, sorted.
func RegisteredPolicies() []string {
	kinds := make([]string, 0, len(policyDefs))
	for k := range policyDefs {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// ConformanceMatrix returns representative parameterizations of every
// registered policy for a machine with the given ROB size — the rows of
// the differential conformance suite. A policy registered without an
// entry here cannot exist: registration requires a conformance func.
func ConformanceMatrix(robSize int) []PolicySpec {
	var out []PolicySpec
	for _, kind := range RegisteredPolicies() {
		out = append(out, policyDefs[kind].conformance(robSize)...)
	}
	return out
}

func noArg(arg string) (PolicySpec, error) {
	if arg != "" {
		return PolicySpec{}, fmt.Errorf("takes no parameter (got %q)", arg)
	}
	return PolicySpec{}, nil
}

func init() {
	registerPolicy(PolicySelective, policyDef{
		parse: noArg,
		build: func(PolicySpec) RecoveryPolicy { return selectivePolicy{} },
		conformance: func(int) []PolicySpec {
			return []PolicySpec{{Kind: PolicySelective}}
		},
	})
	registerPolicy(PolicyConventional, policyDef{
		parse: noArg,
		build: func(PolicySpec) RecoveryPolicy { return conventionalPolicy{} },
		conformance: func(int) []PolicySpec {
			return []PolicySpec{{Kind: PolicyConventional}}
		},
	})
	registerPolicy(PolicyPartial, policyDef{
		parse: func(arg string) (PolicySpec, error) {
			if arg == "" || arg == "inf" {
				return PolicySpec{}, nil // Depth 0 = unbounded
			}
			d, err := strconv.Atoi(arg)
			if err != nil || d < 0 {
				return PolicySpec{}, fmt.Errorf("depth must be a non-negative integer or \"inf\" (got %q)", arg)
			}
			return PolicySpec{Depth: d}, nil
		},
		build: func(s PolicySpec) RecoveryPolicy { return partialPolicy{depth: s.Depth} },
		conformance: func(robSize int) []PolicySpec {
			mid := robSize / 2
			if mid < 2 {
				mid = 2
			}
			return []PolicySpec{
				{Kind: PolicyPartial, Depth: 1},
				{Kind: PolicyPartial, Depth: mid},
				{Kind: PolicyPartial}, // unbounded ≡ conventional
			}
		},
	})
	registerPolicy(PolicyThrottle, policyDef{
		parse: func(arg string) (PolicySpec, error) {
			if arg == "" {
				return PolicySpec{Conf: 2}, nil
			}
			c, err := strconv.Atoi(arg)
			if err != nil || c < 0 || c > 4 {
				return PolicySpec{}, fmt.Errorf("confidence must be an integer in [0, 4] (got %q)", arg)
			}
			return PolicySpec{Conf: c}, nil
		},
		build: func(s PolicySpec) RecoveryPolicy { return throttlePolicy{conf: uint8(s.Conf)} },
		conformance: func(int) []PolicySpec {
			return []PolicySpec{
				{Kind: PolicyThrottle, Conf: 0}, // never gates ≡ conventional
				{Kind: PolicyThrottle, Conf: 2},
				{Kind: PolicyThrottle, Conf: 4}, // gates on every unresolved branch
			}
		},
	})
}

// newPolicy resolves and builds the configured policy.
func newPolicy(cfg *Config) (RecoveryPolicy, error) {
	if err := cfg.Recovery.Validate(); err != nil {
		return nil, err
	}
	spec := cfg.Recovery.effective(cfg.SelectiveFlush)
	return policyDefs[spec.Kind].build(spec), nil
}

// selectivePolicy is the paper's mechanism (§4.2). In-slice misses are
// handled by resolveSelective before Recover is consulted; Recover sees
// only out-of-slice and FRQ-overflow branches, which flush fully.
type selectivePolicy struct{}

func (selectivePolicy) Name() string            { return PolicySelective }
func (selectivePolicy) SelectiveEligible() bool { return true }
func (selectivePolicy) Recover(c *Core, t *thread, u *uop) {
	c.resolveConventional(t, u)
}

// conventionalPolicy recovers every misprediction with a full flush.
type conventionalPolicy struct{}

func (conventionalPolicy) Name() string            { return PolicyConventional }
func (conventionalPolicy) SelectiveEligible() bool { return false }
func (conventionalPolicy) Recover(c *Core, t *thread, u *uop) {
	c.resolveConventional(t, u)
}

// partialPolicy flushes the depth victims nearest the branch at
// resolution and drains the rest out of the window at depth per cycle
// (partialFlush) — the staged squash of a hardware walker that can only
// reclaim a few entries per cycle. Depth 0 is unbounded and therefore
// byte-identical to conventional.
type partialPolicy struct{ depth int }

func (p partialPolicy) Name() string            { return PolicySpec{Kind: PolicyPartial, Depth: p.depth}.String() }
func (p partialPolicy) SelectiveEligible() bool { return false }
func (p partialPolicy) Recover(c *Core, t *thread, u *uop) {
	// A new recovery supersedes an in-progress drain: its parked
	// victims are all logically younger than the (older) new branch's
	// window contents-to-be, so finish releasing them at once rather
	// than hold the new correct path behind stale wrong-path work.
	if t.drainLen() > 0 {
		c.finishDrain(t)
	}
	if p.depth > 0 {
		n := 0
		for cur := u.node.Next; cur != nil; cur = cur.Next {
			n++
		}
		if n > p.depth {
			t.pred.Resolve(u.pred, uint64(u.d.PC), u.d.Taken, true)
			c.partialFlush(t, u, p.depth)
			return
		}
	}
	c.resolveConventional(t, u)
}

// throttlePolicy recovers conventionally but gates fetch to one
// instruction per cycle while any low-confidence branch is unresolved
// (Ramachandran & Johnson-style fetch throttling). Confidence comes
// from the predictor's Pred.Conf (TAGE u-bits; counter saturation for
// the simpler predictors). Conf 0 never gates and is byte-identical to
// conventional.
type throttlePolicy struct{ conf uint8 }

func (p throttlePolicy) Name() string            { return PolicySpec{Kind: PolicyThrottle, Conf: int(p.conf)}.String() }
func (p throttlePolicy) SelectiveEligible() bool { return false }
func (p throttlePolicy) Recover(c *Core, t *thread, u *uop) {
	c.resolveConventional(t, u)
}

func (p throttlePolicy) OnFetchBranch(c *Core, t *thread, u *uop) {
	if u.pred.Conf < p.conf {
		u.lowConf = true
		t.lowConfOut++
	}
}

func (p throttlePolicy) OnBranchResolved(c *Core, t *thread, u *uop) {
	if u.lowConf {
		u.lowConf = false
		t.lowConfOut--
	}
}

func (p throttlePolicy) FetchWidth(c *Core, t *thread) int {
	if t.lowConfOut > 0 {
		c.stats.ThrottledCycles++
		return 1
	}
	return c.cfg.FetchWidth
}
