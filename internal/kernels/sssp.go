package kernels

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/sim"
)

// buildSSSP constructs single-source shortest paths as frontier-queue
// Bellman-Ford (SPFA — the relaxation structure of GAP's delta-stepping
// inner loop): each round, threads relax the edges of the current
// frontier's vertices; an improvement performs an atomic-min distance
// update (GAP's CAS-min) and enqueues the target once per round (an
// atomic claim bitmap suppresses duplicates). The relaxation-improves
// branch per edge is the hard branch. Inner and outer slicing both apply
// (§6.1).
func buildSSSP(spec Spec) *sim.Workload {
	g := getGraph(spec, true)
	n := g.N
	src := sourceVertex(g)

	l := program.NewLayout()
	offB := l.AllocU32(n+1, g.Offsets)
	neiB := l.AllocU32(len(g.Neigh), g.Neigh)
	wgtB := l.AllocU32(len(g.Weights), g.Weights)
	distInit := make([]uint32, n)
	for i := range distInit {
		distInit[i] = inf32
	}
	distInit[src] = 0
	distB := l.AllocU32(n, distInit)
	qAB := l.AllocU32(n, []uint32{uint32(src)})
	qBB := l.AllocU32(n, nil)
	cntAB := l.AllocU32(16, []uint32{1})
	cntBB := l.AllocU32(16, nil)
	bmB := l.AllocU32(n, nil) // per-round enqueue-claim bitmap

	outer := spec.Mode == SliceOuter
	inner := spec.Mode == SliceInner
	progs := make([]*isa.Program, spec.Threads)
	for t := 0; t < spec.Threads; t++ {
		vlo, vhi := chunk(n, spec.Threads, t)
		b := program.NewBuilder(fmt.Sprintf("sssp-t%d", t))
		rOff, rNei, rWgt, rDist := b.Reg(), b.Reg(), b.Reg(), b.Reg()
		rCurQ, rNxtQ, rCntCur, rCntNxt, rBm := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
		rOne := b.Reg()
		rQI, rQEnd, rV, rE, rEEnd := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
		rW, rWt, rDv, rOld, rNd, rT := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()

		b.Li(rOff, int64(offB))
		b.Li(rNei, int64(neiB))
		b.Li(rWgt, int64(wgtB))
		b.Li(rDist, int64(distB))
		b.Li(rCurQ, int64(qAB))
		b.Li(rNxtQ, int64(qBB))
		b.Li(rCntCur, int64(cntAB))
		b.Li(rCntNxt, int64(cntBB))
		b.Li(rBm, int64(bmB))
		b.Li(rOne, 1)

		b.Label("round")
		b.Barrier()
		if t == 0 {
			b.St32(rCntNxt, 0, isa.R0)
		}
		// Clear this thread's chunk of the claim bitmap.
		b.Li(rV, int64(vlo))
		b.Li(rT, int64(vhi))
		b.Bge(rV, rT, "clearDone")
		b.Label("clear")
		b.StX32(rBm, rV, 2, isa.R0)
		b.AddI(rV, rV, 1)
		b.Blt(rV, rT, "clear")
		b.Label("clearDone")
		b.Barrier()

		// This thread's chunk of the frontier queue.
		b.Ld32(rT, rCntCur, 0)
		b.MulI(rQI, rT, int64(t))
		b.Li(rQEnd, int64(spec.Threads))
		b.Div(rQI, rQI, rQEnd)
		b.MulI(rQEnd, rT, int64(t)+1)
		b.Li(rT, int64(spec.Threads))
		b.Div(rQEnd, rQEnd, rT)
		b.Bge(rQI, rQEnd, "scanDone")

		b.Label("scan")
		b.LdX32(rV, rCurQ, rQI, 2)
		b.SliceStart(outer)
		b.LdX32(rDv, rDist, rV, 2)
		b.LdX32(rE, rOff, rV, 2)
		b.AddI(rT, rV, 1)
		b.LdX32(rEEnd, rOff, rT, 2)
		b.Bge(rE, rEEnd, "skipV")
		b.Label("edge")
		b.SliceStart(inner)
		b.LdX32(rW, rNei, rE, 2)
		b.LdX32(rWt, rWgt, rE, 2)
		b.Add(rNd, rDv, rWt)
		b.LdX32(rOld, rDist, rW, 2)
		b.Bgeu(rNd, rOld, "skipE") // relaxation test: the hard branch
		b.AMinX32(rT, rDist, rW, 2, rNd)
		// Claim w for this round's next frontier (once).
		b.AAddX32(rT, rBm, rW, 2, rOne)
		b.Bne(rT, isa.R0, "skipE")
		b.AAdd32(rT, rCntNxt, 0, rOne)
		b.StX32(rNxtQ, rT, 2, rW)
		b.Label("skipE")
		b.SliceEnd(inner)
		b.AddI(rE, rE, 1)
		b.Blt(rE, rEEnd, "edge")
		b.Label("skipV")
		b.SliceEnd(outer)
		b.AddI(rQI, rQI, 1)
		b.Blt(rQI, rQEnd, "scan")
		b.Label("scanDone")
		b.SliceFence(spec.Mode != SliceNone)
		b.Barrier()
		b.Ld32(rT, rCntNxt, 0)
		b.Mov(rOld, rCurQ)
		b.Mov(rCurQ, rNxtQ)
		b.Mov(rNxtQ, rOld)
		b.Mov(rOld, rCntCur)
		b.Mov(rCntCur, rCntNxt)
		b.Mov(rCntNxt, rOld)
		b.Bne(rT, isa.R0, "round")
		b.Halt()
		progs[t] = b.Build()
	}

	want := refSSSP(g, src)
	return &sim.Workload{
		Name:  fmt.Sprintf("sssp-s%d-%s", spec.Scale, spec.Mode),
		Progs: progs,
		Mem:   l.Image(),
		Check: func(mem []byte) error {
			for v := 0; v < n; v++ {
				if got := program.ReadU32(mem, distB+uint64(v)*4); got != want[v] {
					return fmt.Errorf("sssp: dist[%d] = %d, want %d", v, got, want[v])
				}
			}
			return nil
		},
	}
}
