package kernels

import (
	"testing"

	"repro/internal/graph"
)

// Cross-checks between the host reference implementations: structurally
// different algorithms must agree on derived facts.

func TestRefBFSvsSSSPUnitWeights(t *testing.T) {
	// On a unit-weight graph, SSSP distances equal BFS depths.
	g := graph.RMAT(8, 8, 11, true)
	for i := range g.Weights {
		g.Weights[i] = 1
	}
	src := sourceVertex(g)
	depth := refBFS(g, src)
	dist := refSSSP(g, src)
	for v := 0; v < g.N; v++ {
		if depth[v] != dist[v] {
			t.Fatalf("v%d: depth %d != unit dist %d", v, depth[v], dist[v])
		}
	}
}

func TestRefSSSPBounds(t *testing.T) {
	// Weighted distances are bounded by depth*minW from below and
	// depth*maxW from above on the reachable set.
	g := graph.RMAT(8, 8, 12, true)
	src := sourceVertex(g)
	depth := refBFS(g, src)
	dist := refSSSP(g, src)
	for v := 0; v < g.N; v++ {
		if (depth[v] == inf32) != (dist[v] == inf32) {
			t.Fatalf("v%d reachability disagrees", v)
		}
		if depth[v] != inf32 && dist[v] > depth[v]*255 {
			t.Fatalf("v%d dist %d exceeds depth*maxW", v, dist[v])
		}
		if dist[v] != inf32 && dist[v] < depth[v] {
			t.Fatalf("v%d dist %d below hop count %d", v, dist[v], depth[v])
		}
	}
}

func TestRefCCPartition(t *testing.T) {
	g := graph.RMAT(8, 8, 13, false)
	comp := refCC(g)
	// Every edge joins vertices of the same component; the label is the
	// minimum id of its component.
	for v := 0; v < g.N; v++ {
		if comp[v] > uint32(v) {
			t.Fatalf("label %d exceeds vertex id %d", comp[v], v)
		}
		for _, w := range g.Neigh[g.Offsets[v]:g.Offsets[v+1]] {
			if comp[v] != comp[w] {
				t.Fatalf("edge (%d,%d) crosses components", v, w)
			}
		}
		if comp[comp[v]] != comp[v] {
			t.Fatalf("label %d is not its own representative", comp[v])
		}
	}
	// Everything BFS reaches from a vertex shares its component.
	src := sourceVertex(g)
	depth := refBFS(g, src)
	for v := 0; v < g.N; v++ {
		if depth[v] != inf32 && comp[v] != comp[src] {
			t.Fatalf("v%d reachable but in another component", v)
		}
	}
}

func TestRefBCConservation(t *testing.T) {
	// Brandes invariants: sigma[src]=1; for any v at depth d>0, sigma[v]
	// equals the sum of sigma over its depth-(d-1) neighbors.
	g := graph.RMAT(7, 8, 14, false)
	src := sourceVertex(g)
	depth, sigma, bc := refBC(g, src)
	if sigma[src] != 1 {
		t.Fatalf("sigma[src] = %d", sigma[src])
	}
	for v := 0; v < g.N; v++ {
		if depth[v] == inf32 || v == src {
			continue
		}
		var want uint64
		for _, w := range g.Neigh[g.Offsets[v]:g.Offsets[v+1]] {
			if depth[w] == depth[v]-1 {
				want += sigma[w]
			}
		}
		if sigma[v] != want {
			t.Fatalf("sigma[%d] = %d, want %d", v, sigma[v], want)
		}
		if bc[v] < 0 {
			t.Fatalf("negative centrality at %d", v)
		}
	}
	if bc[src] != 0 {
		t.Fatalf("bc[src] = %f", bc[src])
	}
}

func TestRefTCHandshake(t *testing.T) {
	// Triangle count via the reference must match a brute-force count on
	// a small graph.
	g := graph.RMAT(6, 6, 15, false)
	adj := make(map[[2]int]bool)
	for v := 0; v < g.N; v++ {
		for _, w := range g.Neigh[g.Offsets[v]:g.Offsets[v+1]] {
			adj[[2]int{v, int(w)}] = true
		}
	}
	var brute uint64
	for u := 0; u < g.N; u++ {
		for w := u + 1; w < g.N; w++ {
			if !adj[[2]int{u, w}] {
				continue
			}
			for x := w + 1; x < g.N; x++ {
				if adj[[2]int{u, x}] && adj[[2]int{w, x}] {
					brute++
				}
			}
		}
	}
	if got := refTC(g); got != brute {
		t.Fatalf("refTC = %d, brute force = %d", got, brute)
	}
}

func TestRefPRStochastic(t *testing.T) {
	// After any number of sweeps, scores are positive; with damping 0.85
	// and contributions only from non-sink vertices, the total is
	// bounded by 1.
	g := graph.RMAT(8, 8, 16, false)
	score := refPR(g, 5)
	sum := 0.0
	for v, s := range score {
		if s <= 0 {
			t.Fatalf("score[%d] = %f", v, s)
		}
		sum += s
	}
	if sum > 1.0001 {
		t.Fatalf("score mass %f exceeds 1", sum)
	}
}

func TestSpecNormalize(t *testing.T) {
	s, err := Spec{Kernel: "bfs"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Scale == 0 || s.Degree != 16 || s.Threads != 1 || s.Seed != 1 {
		t.Fatalf("defaults not filled: %+v", s)
	}
	if _, err := (Spec{Kernel: "quicksort"}).Normalize(); err == nil {
		t.Fatal("unknown kernel accepted")
	}
	if _, err := (Spec{Kernel: "ms", Mode: SliceInner}).Normalize(); err == nil {
		t.Fatal("ms inner slicing accepted")
	}
}

func TestSliceModeString(t *testing.T) {
	if SliceNone.String() != "none" || SliceOuter.String() != "outer" ||
		SliceInner.String() != "inner" {
		t.Fatal("mode strings")
	}
}
