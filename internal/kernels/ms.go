package kernels

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/sim"
)

// buildMS constructs bottom-up merge sort of 2^scale random 32-bit keys:
// each pass merges disjoint pairs of width-w runs (parallel tasks, chunked
// across threads with a barrier per pass), with the element comparison as
// the unpredictable branch. Only the outer (task) loop is sliceable
// (§6.1: the merge loop itself is serially dependent).
func buildMS(spec Spec) *sim.Workload {
	n := 1 << spec.Scale
	rng := graph.NewRNG(spec.Seed)
	data := make([]uint32, n)
	for i := range data {
		data[i] = uint32(rng.Next())
	}

	l := program.NewLayout()
	aB := l.AllocU32(n, data)
	bB := l.AllocU32(n, nil)

	sliced := spec.Mode == SliceOuter
	progs := make([]*isa.Program, spec.Threads)
	for t := 0; t < spec.Threads; t++ {
		b := program.NewBuilder(fmt.Sprintf("ms-t%d", t))
		rSrc, rDst, rN, rWidth, rW2 := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
		rNTasks, rTask, rTaskEnd := b.Reg(), b.Reg(), b.Reg()
		rBase, rMid, rEnd := b.Reg(), b.Reg(), b.Reg()
		rI, rJ, rO, rA, rB, rT := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()

		b.Li(rSrc, int64(aB))
		b.Li(rDst, int64(bB))
		b.Li(rN, int64(n))
		b.Li(rWidth, 1)

		b.Label("pass")
		b.Barrier()
		// nTasks = ceil(n / 2w); this thread handles tasks
		// [t*nTasks/T, (t+1)*nTasks/T).
		b.ShlI(rW2, rWidth, 1)
		b.Add(rT, rN, rW2)
		b.AddI(rT, rT, -1)
		b.Div(rNTasks, rT, rW2)
		b.MulI(rTask, rNTasks, int64(t))
		b.Li(rT, int64(spec.Threads))
		b.Div(rTask, rTask, rT)
		b.MulI(rTaskEnd, rNTasks, int64(t)+1)
		b.Div(rTaskEnd, rTaskEnd, rT)
		b.Bge(rTask, rTaskEnd, "tasksDone")

		b.Label("task")
		b.Mul(rBase, rTask, rW2)
		b.Add(rMid, rBase, rWidth)
		b.Min(rMid, rMid, rN)
		b.Add(rEnd, rBase, rW2)
		b.Min(rEnd, rEnd, rN)
		b.SliceStart(sliced)
		b.Mov(rI, rBase)
		b.Mov(rJ, rMid)
		b.Mov(rO, rBase)
		b.Label("merge")
		b.Bge(rI, rMid, "drainJ")
		b.Bge(rJ, rEnd, "drainI")
		b.LdX32(rA, rSrc, rI, 2)
		b.LdX32(rB, rSrc, rJ, 2)
		b.Bgeu(rB, rA, "takeA") // a <= b: stable take from the left run
		b.StX32(rDst, rO, 2, rB)
		b.AddI(rJ, rJ, 1)
		b.AddI(rO, rO, 1)
		b.Jmp("merge")
		b.Label("takeA")
		b.StX32(rDst, rO, 2, rA)
		b.AddI(rI, rI, 1)
		b.AddI(rO, rO, 1)
		b.Jmp("merge")
		b.Label("drainI")
		b.Bge(rI, rMid, "mergeDone")
		b.LdX32(rA, rSrc, rI, 2)
		b.StX32(rDst, rO, 2, rA)
		b.AddI(rI, rI, 1)
		b.AddI(rO, rO, 1)
		b.Jmp("drainI")
		b.Label("drainJ")
		b.Bge(rJ, rEnd, "mergeDone")
		b.LdX32(rA, rSrc, rJ, 2)
		b.StX32(rDst, rO, 2, rA)
		b.AddI(rJ, rJ, 1)
		b.AddI(rO, rO, 1)
		b.Jmp("drainJ")
		b.Label("mergeDone")
		b.SliceEnd(sliced)
		b.AddI(rTask, rTask, 1)
		b.Blt(rTask, rTaskEnd, "task")
		b.Label("tasksDone")
		b.SliceFence(sliced)
		b.Barrier()
		// Swap buffers, double the run width.
		b.Mov(rT, rSrc)
		b.Mov(rSrc, rDst)
		b.Mov(rDst, rT)
		b.ShlI(rWidth, rWidth, 1)
		b.Blt(rWidth, rN, "pass")
		b.Halt()
		progs[t] = b.Build()
	}

	want := append([]uint32(nil), data...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	// After scale passes the sorted data sits in A for even scale, B for
	// odd (buffers swap once per pass).
	resultB := aB
	if spec.Scale%2 == 1 {
		resultB = bB
	}
	return &sim.Workload{
		Name:  fmt.Sprintf("ms-s%d-%s", spec.Scale, spec.Mode),
		Progs: progs,
		Mem:   l.Image(),
		Check: func(mem []byte) error {
			for i := 0; i < n; i++ {
				if got := program.ReadU32(mem, resultB+uint64(i)*4); got != want[i] {
					return fmt.Errorf("ms: out[%d] = %d, want %d", i, got, want[i])
				}
			}
			return nil
		},
	}
}
