package kernels

import (
	"testing"

	"repro/internal/sim"
)

// runTimed pushes a workload through the full cycle-level simulator.
func runTimed(t *testing.T, spec Spec, tweak func(*sim.Config)) *sim.Result {
	t.Helper()
	w, err := Build(spec)
	if err != nil {
		t.Fatalf("build %s: %v", spec.Kernel, err)
	}
	cfg := sim.DefaultConfig()
	cfg.Core.SelectiveFlush = spec.Mode != SliceNone
	cfg.CheckIndependence = true
	if tweak != nil {
		tweak(&cfg)
	}
	res, err := sim.Run(cfg, w)
	if err != nil {
		t.Fatalf("run %s (%s): %v", spec.Kernel, spec.Mode, err)
	}
	return res
}

// TestKernelsTimedBaselineVsSliced is the central integration test: every
// kernel runs through the cycle-level core in baseline and sliced form;
// outputs must validate, committed counts must match, and the sliced run
// must actually exercise the selective-flush machinery.
func TestKernelsTimedBaselineVsSliced(t *testing.T) {
	for _, k := range Names {
		k := k
		t.Run(k, func(t *testing.T) {
			spec := Spec{Kernel: k, Scale: 7}
			base := runTimed(t, spec, nil)
			spec.Mode = SliceOuter
			sel := runTimed(t, spec, nil)
			if base.Total.Committed != sel.Total.Committed {
				t.Errorf("committed differ: baseline %d vs sliced %d",
					base.Total.Committed, sel.Total.Committed)
			}
			if k != "pr" && sel.Total.SliceRecoveries == 0 {
				t.Errorf("no selective recoveries on %s", k)
			}
			speedup := float64(base.Cycles) / float64(sel.Cycles)
			t.Logf("%s: baseline=%d sliced=%d speedup=%.3f sliceRec=%d convRec=%d",
				k, base.Cycles, sel.Cycles, speedup,
				sel.Total.SliceRecoveries, sel.Total.ConvRecoveries)
		})
	}
}

// TestKernelsTimedInner exercises inner slicing on the kernels §6.1 allows.
func TestKernelsTimedInner(t *testing.T) {
	for _, k := range []string{"bc", "cc", "sssp"} {
		k := k
		t.Run(k, func(t *testing.T) {
			res := runTimed(t, Spec{Kernel: k, Scale: 7, Mode: SliceInner}, nil)
			if res.Total.SliceRecoveries == 0 {
				t.Errorf("no selective recoveries with inner slicing on %s", k)
			}
		})
	}
}

// TestKernelsTimedMulticore runs every kernel on 4 cores.
func TestKernelsTimedMulticore(t *testing.T) {
	for _, k := range Names {
		k := k
		t.Run(k, func(t *testing.T) {
			spec := Spec{Kernel: k, Scale: 7, Threads: 4, Mode: SliceOuter}
			res := runTimed(t, spec, func(c *sim.Config) {
				c.Cores = 4
				c.Mem = sim.ScaledMemConfig(4)
			})
			if res.Total.Committed == 0 {
				t.Fatal("nothing committed")
			}
		})
	}
}

// TestKernelsTimedSMT runs every kernel with 2 SMT threads on one core.
func TestKernelsTimedSMT(t *testing.T) {
	for _, k := range Names {
		k := k
		t.Run(k, func(t *testing.T) {
			spec := Spec{Kernel: k, Scale: 7, Threads: 2, Mode: SliceOuter}
			res := runTimed(t, spec, func(c *sim.Config) {
				c.Core.SMT = 2
			})
			if res.Total.Committed == 0 {
				t.Fatal("nothing committed")
			}
		})
	}
}

// TestKernelsTimedOracle: perfect prediction must beat TAGE on every
// branch-bound kernel.
func TestKernelsTimedOracle(t *testing.T) {
	for _, k := range Names {
		k := k
		t.Run(k, func(t *testing.T) {
			spec := Spec{Kernel: k, Scale: 7}
			base := runTimed(t, spec, nil)
			orc := runTimed(t, spec, func(c *sim.Config) { c.Core.Predictor = "oracle" })
			if orc.Total.Mispredicts != 0 {
				t.Fatalf("oracle mispredicted")
			}
			if orc.Cycles > base.Cycles {
				t.Errorf("oracle slower than TAGE: %d > %d", orc.Cycles, base.Cycles)
			}
		})
	}
}
