package kernels

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/flight"
	"repro/internal/sim"
)

// equivConfigs exercises the shapes where issue-order and idle-skip bugs
// would hide: single core, multi-core with barriers, and SMT sharing one
// core's age space (where issue-age ties between threads are common).
func equivConfigs(kernel string) []struct {
	name       string
	cores, smt int
} {
	cfgs := []struct {
		name       string
		cores, smt int
	}{{"1c", 1, 1}}
	switch kernel {
	case "cc", "pr":
		cfgs = append(cfgs, struct {
			name       string
			cores, smt int
		}{"2c", 2, 1})
	case "ms", "bfs":
		cfgs = append(cfgs, struct {
			name       string
			cores, smt int
		}{"smt2", 1, 2})
	}
	return cfgs
}

// TestEventDrivenEquivalence pins the tentpole invariant: the wakeup-driven
// issue path plus the driver's idle fast-forward must reproduce the legacy
// cycle-accurate loop (Config.ForceCycleAccurate) bit for bit — the whole
// Result including cycle counts and the float cycle stacks, the final
// memory image, and the flight recorder's timeline CSV (whose fixed-
// interval samples must not be skipped or displaced by fast-forward).
func TestEventDrivenEquivalence(t *testing.T) {
	for _, k := range Names {
		for _, shape := range equivConfigs(k) {
			t.Run(k+"/"+shape.name, func(t *testing.T) {
				spec := Spec{
					Kernel:  k,
					Scale:   7,
					Mode:    SliceOuter,
					Threads: shape.cores * shape.smt,
				}
				run := func(force bool) (*sim.Result, []byte, string) {
					w, err := Build(spec)
					if err != nil {
						t.Fatalf("build: %v", err)
					}
					rec := &flight.Recorder{Interval: 64}
					cfg := sim.DefaultConfig()
					cfg.Cores = shape.cores
					cfg.Core.SMT = shape.smt
					cfg.Mem = sim.ScaledMemConfig(shape.cores)
					cfg.Core.ForceCycleAccurate = force
					cfg.Recorder = rec
					res, err := sim.Run(cfg, w)
					if err != nil {
						t.Fatalf("run(force=%v): %v", force, err)
					}
					var csv bytes.Buffer
					if err := rec.WriteTimelineCSV(&csv); err != nil {
						t.Fatalf("timeline csv: %v", err)
					}
					return res, w.Mem, csv.String()
				}

				ref, refMem, refCSV := run(true)
				got, gotMem, gotCSV := run(false)

				if !reflect.DeepEqual(ref, got) {
					t.Errorf("results diverge:\ncycle-accurate: %+v\nevent-driven:   %+v", ref, got)
				}
				if !bytes.Equal(refMem, gotMem) {
					t.Error("final memory images diverge")
				}
				if refCSV != gotCSV {
					t.Errorf("timeline CSVs diverge:\ncycle-accurate:\n%s\nevent-driven:\n%s", refCSV, gotCSV)
				}
			})
		}
	}
}
