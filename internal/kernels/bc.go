package kernels

import (
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/sim"
)

// buildBC constructs single-source betweenness centrality (Brandes), with
// GAP's structure: a forward frontier-sliding-queue BFS accumulating path
// counts (sigma, via atomic fetch-and-add), recording per-level queue
// offsets, then a backward pass over the saved level lists accumulating
// dependencies. Hard branches: the per-edge visited test and the per-edge
// level test in the backward pass. Outer slicing wraps each frontier
// vertex's expansion; inner slicing wraps each forward edge update (the
// backward inner loop carries a register accumulation and keeps outer
// slices, §6.1).
func buildBC(spec Spec) *sim.Workload {
	g := getGraph(spec, false)
	n := g.N
	src := sourceVertex(g)

	l := program.NewLayout()
	offB := l.AllocU32(n+1, g.Offsets)
	neiB := l.AllocU32(len(g.Neigh), g.Neigh)
	depthInit := make([]uint32, n)
	for i := range depthInit {
		depthInit[i] = inf32
	}
	depthInit[src] = 0
	depthB := l.AllocU32(n, depthInit)
	sigmaInit := make([]uint64, n)
	sigmaInit[src] = 1
	sigmaB := l.AllocU64(n, sigmaInit)
	deltaB := l.AllocF64(n, nil)
	bcB := l.AllocF64(n, nil)
	queueB := l.AllocU32(n, []uint32{uint32(src)}) // sliding frontier queue
	qTailB := l.AllocU32(16, []uint32{1})          // atomic tail
	// levelStart[k] is the queue offset where level k begins; n has at
	// most n levels.
	lvlInit := make([]uint32, n+2)
	lvlInit[1] = 1
	lvlB := l.AllocU32(n+2, lvlInit)

	outer := spec.Mode == SliceOuter
	inner := spec.Mode == SliceInner
	progs := make([]*isa.Program, spec.Threads)
	for t := 0; t < spec.Threads; t++ {
		b := program.NewBuilder(fmt.Sprintf("bc-t%d", t))
		rOff, rNei, rDepth, rSigma, rDelta, rBC := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
		rQ, rQTail, rLvl := b.Reg(), b.Reg(), b.Reg()
		rInf, rOne, rFOne, rSrc := b.Reg(), b.Reg(), b.Reg(), b.Reg()
		rLevel, rLevel1 := b.Reg(), b.Reg()
		rQI, rQEnd, rV, rE, rEEnd := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
		rW, rDw, rT, rT2 := b.Reg(), b.Reg(), b.Reg(), b.Reg()
		rSv, rSum, rF1 := b.Reg(), b.Reg(), b.Reg()

		b.Li(rOff, int64(offB))
		b.Li(rNei, int64(neiB))
		b.Li(rDepth, int64(depthB))
		b.Li(rSigma, int64(sigmaB))
		b.Li(rDelta, int64(deltaB))
		b.Li(rBC, int64(bcB))
		b.Li(rQ, int64(queueB))
		b.Li(rQTail, int64(qTailB))
		b.Li(rLvl, int64(lvlB))
		b.Li(rInf, int64(inf32))
		b.Li(rOne, 1)
		b.LiF(rFOne, 1.0)
		b.Li(rSrc, int64(src))
		b.Li(rLevel, 0)

		// chunkQ computes this thread's [rQI, rQEnd) chunk of the
		// queue range [levelStart[level], levelStart[level+1]).
		chunkQ := func() {
			b.LdX32(rT, rLvl, rLevel, 2)
			b.AddI(rT2, rLevel, 1)
			b.LdX32(rT2, rLvl, rT2, 2)
			b.Sub(rT2, rT2, rT) // level size
			b.MulI(rQI, rT2, int64(t))
			b.Li(rQEnd, int64(spec.Threads))
			b.Div(rQI, rQI, rQEnd)
			b.Add(rQI, rQI, rT)
			b.MulI(rQEnd, rT2, int64(t)+1)
			b.Li(rEEnd, int64(spec.Threads))
			b.Div(rQEnd, rQEnd, rEEnd)
			b.Add(rQEnd, rQEnd, rT)
		}

		// Forward phase.
		b.Label("fwdLevel")
		b.Barrier()
		b.AddI(rLevel1, rLevel, 1)
		chunkQ()
		b.Bge(rQI, rQEnd, "fwdScanDone")
		b.Label("fwdScan")
		b.LdX32(rV, rQ, rQI, 2)
		b.SliceStart(outer)
		b.LdX64(rSv, rSigma, rV, 3)
		b.LdX32(rE, rOff, rV, 2)
		b.AddI(rT, rV, 1)
		b.LdX32(rEEnd, rOff, rT, 2)
		b.Bge(rE, rEEnd, "fwdSkipV")
		b.Label("fwdEdge")
		b.SliceStart(inner)
		b.LdX32(rW, rNei, rE, 2)
		b.LdX32(rDw, rDepth, rW, 2)
		b.Bne(rDw, rInf, "fwdNotInf")
		b.AMinX32(rDw, rDepth, rW, 2, rLevel1)
		b.Bne(rDw, rInf, "fwdNotInf") // raced: another parent claimed w
		b.AAdd32(rT, rQTail, 0, rOne)
		b.StX32(rQ, rT, 2, rW)
		b.AAddX64(rT, rSigma, rW, 3, rSv)
		b.Jmp("fwdSkipE")
		b.Label("fwdNotInf")
		b.Bne(rDw, rLevel1, "fwdSkipE")
		b.AAddX64(rT, rSigma, rW, 3, rSv)
		b.Label("fwdSkipE")
		b.SliceEnd(inner)
		b.AddI(rE, rE, 1)
		b.Blt(rE, rEEnd, "fwdEdge")
		b.Label("fwdSkipV")
		b.SliceEnd(outer)
		b.AddI(rQI, rQI, 1)
		b.Blt(rQI, rQEnd, "fwdScan")
		b.Label("fwdScanDone")
		b.SliceFence(spec.Mode != SliceNone)
		b.Barrier()
		if t == 0 {
			// levelStart[level+2] = queue tail: the extent of the
			// next level's vertices, all enqueued this round.
			b.Ld32(rT, rQTail, 0)
			b.AddI(rT2, rLevel, 2)
			b.StX32(rLvl, rT2, 2, rT)
		}
		b.Barrier()
		b.AddI(rLevel, rLevel, 1)
		// Loop while the new level is non-empty.
		b.LdX32(rT, rLvl, rLevel, 2)
		b.AddI(rT2, rLevel, 1)
		b.LdX32(rT2, rLvl, rT2, 2)
		b.Bne(rT, rT2, "fwdLevel")

		// Backward phase: levels maxDepth-1 .. 0 over the saved lists.
		b.AddI(rLevel, rLevel, -2)
		b.Blt(rLevel, isa.R0, "bwdDone")
		b.Label("bwdLevel")
		b.Barrier()
		b.AddI(rLevel1, rLevel, 1)
		chunkQ()
		b.Bge(rQI, rQEnd, "bwdScanDone")
		b.Label("bwdScan")
		b.LdX32(rV, rQ, rQI, 2)
		b.SliceStart(outer || inner)
		b.LdX64(rSv, rSigma, rV, 3)
		b.CvtIF(rSv, rSv)
		b.Li(rSum, 0) // 0.0
		b.LdX32(rE, rOff, rV, 2)
		b.AddI(rT, rV, 1)
		b.LdX32(rEEnd, rOff, rT, 2)
		b.Bge(rE, rEEnd, "bwdWrite")
		b.Label("bwdEdge")
		b.LdX32(rW, rNei, rE, 2)
		b.LdX32(rDw, rDepth, rW, 2)
		b.Bne(rDw, rLevel1, "bwdSkipE") // level test: the hard branch
		b.LdX64(rF1, rSigma, rW, 3)
		b.CvtIF(rF1, rF1)
		b.FDiv(rF1, rSv, rF1)
		b.LdX64(rT, rDelta, rW, 3)
		b.FAdd(rT, rT, rFOne)
		b.FMul(rF1, rF1, rT)
		b.FAdd(rSum, rSum, rF1)
		b.Label("bwdSkipE")
		b.AddI(rE, rE, 1)
		b.Blt(rE, rEEnd, "bwdEdge")
		b.Label("bwdWrite")
		b.StX64(rDelta, rV, 3, rSum)
		b.Beq(rV, rSrc, "bwdSkipV")
		b.LdX64(rF1, rBC, rV, 3)
		b.FAdd(rF1, rF1, rSum)
		b.StX64(rBC, rV, 3, rF1)
		b.Label("bwdSkipV")
		b.SliceEnd(outer || inner)
		b.AddI(rQI, rQI, 1)
		b.Blt(rQI, rQEnd, "bwdScan")
		b.Label("bwdScanDone")
		b.SliceFence(spec.Mode != SliceNone)
		b.Barrier()
		b.AddI(rLevel, rLevel, -1)
		b.Bge(rLevel, isa.R0, "bwdLevel")
		b.Label("bwdDone")
		b.Halt()
		progs[t] = b.Build()
	}

	wantDepth, wantSigma, wantBC := refBC(g, src)
	return &sim.Workload{
		Name:  fmt.Sprintf("bc-s%d-%s", spec.Scale, spec.Mode),
		Progs: progs,
		Mem:   l.Image(),
		Check: func(mem []byte) error {
			for v := 0; v < n; v++ {
				if got := program.ReadU32(mem, depthB+uint64(v)*4); got != wantDepth[v] {
					return fmt.Errorf("bc: depth[%d] = %d, want %d", v, got, wantDepth[v])
				}
				if got := program.ReadU64(mem, sigmaB+uint64(v)*8); got != wantSigma[v] {
					return fmt.Errorf("bc: sigma[%d] = %d, want %d", v, got, wantSigma[v])
				}
				got := program.ReadF64(mem, bcB+uint64(v)*8)
				if math.Abs(got-wantBC[v]) > 1e-9*math.Max(1, math.Abs(wantBC[v])) {
					return fmt.Errorf("bc: bc[%d] = %g, want %g", v, got, wantBC[v])
				}
			}
			return nil
		},
	}
}
