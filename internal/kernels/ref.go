package kernels

import "repro/internal/graph"

// Host-side reference implementations used to validate the simulated
// kernels' final memory images.

// refBFS returns the depth of every vertex from src (inf32 if unreached).
func refBFS(g *graph.CSR, src int) []uint32 {
	depth := make([]uint32, g.N)
	for i := range depth {
		depth[i] = inf32
	}
	depth[src] = 0
	frontier := []int{src}
	for level := uint32(0); len(frontier) > 0; level++ {
		var next []int
		for _, v := range frontier {
			for _, w := range g.Neigh[g.Offsets[v]:g.Offsets[v+1]] {
				if depth[w] == inf32 {
					depth[w] = level + 1
					next = append(next, int(w))
				}
			}
		}
		frontier = next
	}
	return depth
}

// refCC returns per-vertex component labels: the minimum vertex id in each
// component (the fixed point of min-label propagation).
func refCC(g *graph.CSR) []uint32 {
	comp := make([]uint32, g.N)
	for v := range comp {
		comp[v] = uint32(v)
	}
	for changed := true; changed; {
		changed = false
		for v := 0; v < g.N; v++ {
			for _, w := range g.Neigh[g.Offsets[v]:g.Offsets[v+1]] {
				if comp[w] < comp[v] {
					comp[v] = comp[w]
					changed = true
				}
			}
		}
	}
	return comp
}

// refSSSP returns shortest path distances (weighted) from src.
func refSSSP(g *graph.CSR, src int) []uint32 {
	dist := make([]uint32, g.N)
	for i := range dist {
		dist[i] = inf32
	}
	dist[src] = 0
	// Bellman-Ford to a fixed point (matches the kernel's semantics).
	for changed := true; changed; {
		changed = false
		for v := 0; v < g.N; v++ {
			if dist[v] == inf32 {
				continue
			}
			for e := g.Offsets[v]; e < g.Offsets[v+1]; e++ {
				w, wt := g.Neigh[e], g.Weights[e]
				if nd := dist[v] + wt; nd < dist[w] {
					dist[w] = nd
					changed = true
				}
			}
		}
	}
	return dist
}

// refPR returns pagerank scores after iters pull sweeps with damping 0.85,
// matching the kernel's arithmetic exactly (same operation order per
// vertex, so results are bitwise reproducible).
func refPR(g *graph.CSR, iters int) []float64 {
	n := g.N
	const d = 0.85
	base := (1 - d) / float64(n)
	score := make([]float64, n)
	contrib := make([]float64, n)
	for v := range score {
		score[v] = 1 / float64(n)
	}
	for it := 0; it < iters; it++ {
		for v := 0; v < n; v++ {
			if deg := g.Degree(v); deg > 0 {
				contrib[v] = score[v] / float64(deg)
			} else {
				contrib[v] = 0
			}
		}
		for v := 0; v < n; v++ {
			sum := 0.0
			for _, w := range g.Neigh[g.Offsets[v]:g.Offsets[v+1]] {
				sum += contrib[w]
			}
			score[v] = base + d*sum
		}
	}
	return score
}

// refBC returns (depth, sigma, delta-based centrality) from a single
// source, level-synchronous Brandes.
func refBC(g *graph.CSR, src int) (depth []uint32, sigma []uint64, bc []float64) {
	depth = refBFS(g, src)
	sigma = make([]uint64, g.N)
	sigma[src] = 1
	maxLevel := uint32(0)
	for _, d := range depth {
		if d != inf32 && d > maxLevel {
			maxLevel = d
		}
	}
	for level := uint32(0); level < maxLevel; level++ {
		for v := 0; v < g.N; v++ {
			if depth[v] != level {
				continue
			}
			for _, w := range g.Neigh[g.Offsets[v]:g.Offsets[v+1]] {
				if depth[w] == level+1 {
					sigma[w] += sigma[v]
				}
			}
		}
	}
	delta := make([]float64, g.N)
	bc = make([]float64, g.N)
	for level := int(maxLevel) - 1; level >= 0; level-- {
		for v := 0; v < g.N; v++ {
			if depth[v] != uint32(level) {
				continue
			}
			sum := 0.0
			for _, w := range g.Neigh[g.Offsets[v]:g.Offsets[v+1]] {
				if depth[w] == uint32(level)+1 {
					sum += float64(sigma[v]) / float64(sigma[w]) * (1 + delta[w])
				}
			}
			delta[v] = sum
			if v != src {
				bc[v] = delta[v]
			}
		}
	}
	return depth, sigma, bc
}

// refTC returns the triangle count (each triangle counted once).
func refTC(g *graph.CSR) uint64 {
	var count uint64
	for u := 0; u < g.N; u++ {
		for _, w := range g.Neigh[g.Offsets[u]:g.Offsets[u+1]] {
			if int(w) <= u {
				continue
			}
			// Intersect N(u) and N(w) above w.
			i, j := g.Offsets[u], g.Offsets[int(w)]
			iEnd, jEnd := g.Offsets[u+1], g.Offsets[int(w)+1]
			for i < iEnd && j < jEnd {
				a, b := g.Neigh[i], g.Neigh[j]
				switch {
				case a <= w:
					i++
				case b <= w:
					j++
				case a < b:
					i++
				case a > b:
					j++
				default:
					count++
					i++
					j++
				}
			}
		}
	}
	return count
}
