// Package kernels implements the paper's benchmarks in the virtual ISA:
// the six GAP graph kernels — betweenness centrality (bc), breadth-first
// search (bfs), connected components (cc), pagerank (pr), single-source
// shortest paths (sssp), triangle counting (tc) — plus merge sort (ms),
// each with the slice-instruction placements §6.1 evaluates.
//
// Every kernel builds one program per hardware thread (OpenMP-style static
// chunking of the parallel loops, with barriers between phases) against a
// shared memory image, and supplies a host-reference Check for the final
// memory. Baseline binaries (SliceNone) contain no slice instructions,
// exactly as the paper's unmodified GAP builds.
package kernels

import (
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/sim"
)

// SliceMode selects where slice instructions are placed (§6.1).
type SliceMode int

// Slice placements. Inner slicing is available only where the paper found
// inner-loop iterations independent: bc, cc, and sssp.
const (
	SliceNone SliceMode = iota
	SliceOuter
	SliceInner
)

func (m SliceMode) String() string {
	switch m {
	case SliceNone:
		return "none"
	case SliceOuter:
		return "outer"
	case SliceInner:
		return "inner"
	}
	return fmt.Sprintf("SliceMode(%d)", int(m))
}

// Names lists the benchmarks in the paper's reporting order.
var Names = []string{"bc", "bfs", "cc", "pr", "sssp", "tc", "ms"}

// InnerSliceable reports whether the kernel supports SliceInner (§6.1:
// bfs and tc have control-dependent inner iterations, pr has no
// conditional in its inner loop, and ms's merge loop is dependent).
func InnerSliceable(kernel string) bool {
	switch kernel {
	case "bc", "cc", "sssp":
		return true
	}
	return false
}

// DefaultPRIters is the default number of PageRank sweeps.
const DefaultPRIters = 3

// Spec describes one benchmark instance.
type Spec struct {
	Kernel  string
	Scale   int    // log2 of the vertex count (element count for ms)
	Degree  int    // average degree for RMAT generation
	Seed    uint64 // RMAT / data seed
	Mode    SliceMode
	Threads int // hardware threads (cores × SMT); parallel loops are chunked
	PRIters int // pagerank sweeps (0 = DefaultPRIters, negative = explicitly 0)
}

// DefaultScale returns the baseline input scale per kernel. The paper uses
// per-application sizes for comparable runtimes (RMAT-18 for tc, RMAT-20
// for bc/cc/pr/sssp, RMAT-22 for bfs); these are the same relative choices
// shrunk to simulation budget, with the cache hierarchy shrunk to match
// (sim.ScaledMemConfig). The absolute sizes are calibrated against the
// baseline statistics the paper reports in §3 — oracle-predictor speedup
// (paper 1.60×, measured ≈1.45× harmonic mean at these scales) and
// wrong-path dispatch overhead (paper +53%, measured per-kernel 0.2-2.3×
// bracketing it) — see DESIGN.md's calibration notes.
func DefaultScale(kernel string) int {
	switch kernel {
	case "tc":
		return 8
	case "bfs":
		return 11
	case "ms":
		return 12
	default:
		return 10
	}
}

// Normalize fills zero fields with defaults and validates the spec.
func (s Spec) Normalize() (Spec, error) {
	if s.Scale == 0 {
		s.Scale = DefaultScale(s.Kernel)
	}
	if s.Degree == 0 {
		s.Degree = 16
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Threads == 0 {
		s.Threads = 1
	}
	if s.PRIters == 0 {
		s.PRIters = DefaultPRIters
	} else if s.PRIters < 0 {
		s.PRIters = 0 // negative sentinel: explicitly zero sweeps
	}
	if s.Mode == SliceInner && !InnerSliceable(s.Kernel) {
		return s, fmt.Errorf("kernels: %s does not support inner slicing (§6.1)", s.Kernel)
	}
	switch s.Kernel {
	case "bc", "bfs", "cc", "pr", "sssp", "tc", "ms":
	default:
		return s, fmt.Errorf("kernels: unknown kernel %q", s.Kernel)
	}
	return s, nil
}

// Build constructs the workload for a spec. Built workloads are memoized
// process-wide (singleflight per spec, so concurrent callers share one
// construction): input generation, CSR build, program assembly, and the
// host reference are all reused across runs that differ only in core or
// memory configuration. The simulator mutates the memory image, so each
// call receives a fresh copy of the pristine image; the programs and the
// Check closure are immutable at run time and shared.
func Build(spec Spec) (*sim.Workload, error) {
	spec, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%+v", spec)
	buildMu.Lock()
	e, ok := buildCache[key]
	if !ok {
		e = &buildEntry{}
		buildCache[key] = e
	}
	buildMu.Unlock()
	e.once.Do(func() { e.w = buildUncached(spec) })
	w := *e.w
	w.Mem = append([]byte(nil), e.w.Mem...)
	return &w, nil
}

type buildEntry struct {
	once sync.Once
	w    *sim.Workload
}

var (
	buildMu    sync.Mutex
	buildCache = map[string]*buildEntry{}
)

// buildUncached constructs a workload for an already-normalized spec.
func buildUncached(spec Spec) *sim.Workload {
	switch spec.Kernel {
	case "pr":
		return buildPR(spec)
	case "bfs":
		return buildBFS(spec)
	case "cc":
		return buildCC(spec)
	case "sssp":
		return buildSSSP(spec)
	case "bc":
		return buildBC(spec)
	case "tc":
		return buildTC(spec)
	case "ms":
		return buildMS(spec)
	}
	panic("unreachable")
}

// chunk returns the [lo,hi) range of n items assigned to thread t of T
// (OpenMP static scheduling).
func chunk(n, T, t int) (int, int) {
	return n * t / T, n * (t + 1) / T
}

// graphCache memoizes generated graphs across experiment sweeps.
var (
	graphMu    sync.Mutex
	graphCache = map[string]*graph.CSR{}
)

func getGraph(spec Spec, weighted bool) *graph.CSR {
	key := fmt.Sprintf("s%d-d%d-seed%d-w%v", spec.Scale, spec.Degree, spec.Seed, weighted)
	graphMu.Lock()
	defer graphMu.Unlock()
	if g, ok := graphCache[key]; ok {
		return g
	}
	g := graph.RMAT(spec.Scale, spec.Degree, spec.Seed, weighted)
	graphCache[key] = g
	return g
}

// sourceVertex picks the BFS/SSSP/BC source: the highest-degree vertex,
// deterministic and guaranteed to reach the bulk of an RMAT graph.
func sourceVertex(g *graph.CSR) int {
	best, bestDeg := 0, -1
	for v := 0; v < g.N; v++ {
		if d := g.Degree(v); d > bestDeg {
			best, bestDeg = v, d
		}
	}
	return best
}

// inf32 is the sentinel "unvisited" distance.
const inf32 = 0xFFFFFFFF
