package kernels

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/sim"
)

// buildCC constructs connected components via min-label propagation
// (Shiloach-Vishkin-style hooking, as in GAP's SV variant): rounds of
// edge scans pulling the minimum component label, until a fixed point.
// The label-comparison branches are data dependent and hard. Both inner
// and outer slicing are available (§6.1 evaluates both; inner wins for cc
// in Fig. 4).
func buildCC(spec Spec) *sim.Workload {
	g := getGraph(spec, false)
	n := g.N

	l := program.NewLayout()
	offB := l.AllocU32(n+1, g.Offsets)
	neiB := l.AllocU32(len(g.Neigh), g.Neigh)
	compInit := make([]uint32, n)
	for i := range compInit {
		compInit[i] = uint32(i)
	}
	compB := l.AllocU32(n, compInit)
	changedB := l.AllocU32(16, []uint32{1})

	progs := make([]*isa.Program, spec.Threads)
	for t := 0; t < spec.Threads; t++ {
		lo, hi := chunk(n, spec.Threads, t)
		b := program.NewBuilder(fmt.Sprintf("cc-t%d", t))
		rOff, rNei, rComp, rChg := b.Reg(), b.Reg(), b.Reg(), b.Reg()
		rOne := b.Reg()
		rV, rVEnd, rE, rEEnd := b.Reg(), b.Reg(), b.Reg(), b.Reg()
		rW, rCw, rCv, rMy, rT := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()

		b.Li(rOff, int64(offB))
		b.Li(rNei, int64(neiB))
		b.Li(rComp, int64(compB))
		b.Li(rChg, int64(changedB))
		b.Li(rOne, 1)
		b.Li(rVEnd, int64(hi))

		b.Label("round")
		b.Barrier()
		if t == 0 {
			b.St32(rChg, 0, isa.R0)
		}
		b.Barrier()
		b.Li(rV, int64(lo))
		b.Bge(rV, rVEnd, "scanDone")

		switch spec.Mode {
		case SliceInner:
			// Slice around each edge relaxation; the vertex loop and
			// edge-loop branches stay outside the slices and recover
			// conventionally.
			b.Label("scan")
			b.LdX32(rE, rOff, rV, 2)
			b.AddI(rT, rV, 1)
			b.LdX32(rEEnd, rOff, rT, 2)
			b.Bge(rE, rEEnd, "skipV")
			b.Label("edge")
			b.SliceStart(true)
			b.LdX32(rW, rNei, rE, 2)
			b.LdX32(rCw, rComp, rW, 2)
			b.LdX32(rCv, rComp, rV, 2)
			b.Bgeu(rCw, rCv, "skipE")
			b.AMinX32(rT, rComp, rV, 2, rCw)
			b.St32(rChg, 0, rOne)
			b.Label("skipE")
			b.SliceEnd(true)
			b.AddI(rE, rE, 1)
			b.Blt(rE, rEEnd, "edge")
			b.Label("skipV")
			b.AddI(rV, rV, 1)
			b.Blt(rV, rVEnd, "scan")
		default:
			sliced := spec.Mode == SliceOuter
			b.Label("scan")
			b.SliceStart(sliced)
			b.LdX32(rMy, rComp, rV, 2)
			b.Mov(rCv, rMy)
			b.LdX32(rE, rOff, rV, 2)
			b.AddI(rT, rV, 1)
			b.LdX32(rEEnd, rOff, rT, 2)
			b.Bge(rE, rEEnd, "reduceV")
			b.Label("edge")
			b.LdX32(rW, rNei, rE, 2)
			b.LdX32(rCw, rComp, rW, 2)
			b.Bgeu(rCw, rMy, "skipE")
			b.Mov(rMy, rCw)
			b.Label("skipE")
			b.AddI(rE, rE, 1)
			b.Blt(rE, rEEnd, "edge")
			b.Label("reduceV")
			b.Bgeu(rMy, rCv, "skipV")
			b.AMinX32(rT, rComp, rV, 2, rMy)
			b.St32(rChg, 0, rOne)
			b.Label("skipV")
			b.SliceEnd(sliced)
			b.AddI(rV, rV, 1)
			b.Blt(rV, rVEnd, "scan")
		}

		b.Label("scanDone")
		b.SliceFence(spec.Mode != SliceNone)
		b.Barrier()
		b.Ld32(rT, rChg, 0)
		b.Bne(rT, isa.R0, "round")
		b.Halt()
		progs[t] = b.Build()
	}

	want := refCC(g)
	return &sim.Workload{
		Name:  fmt.Sprintf("cc-s%d-%s", spec.Scale, spec.Mode),
		Progs: progs,
		Mem:   l.Image(),
		Check: func(mem []byte) error {
			for v := 0; v < n; v++ {
				if got := program.ReadU32(mem, compB+uint64(v)*4); got != want[v] {
					return fmt.Errorf("cc: comp[%d] = %d, want %d", v, got, want[v])
				}
			}
			return nil
		},
	}
}
