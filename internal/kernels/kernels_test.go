package kernels

import (
	"testing"

	"repro/internal/emu"
)

// modesFor returns every slice mode a kernel supports.
func modesFor(kernel string) []SliceMode {
	modes := []SliceMode{SliceNone, SliceOuter}
	if InnerSliceable(kernel) {
		modes = append(modes, SliceInner)
	}
	return modes
}

// runFunctional executes a workload on the functional emulator (no
// timing) with the slice-discipline checker on, and validates the output.
func runFunctional(t *testing.T, spec Spec) {
	t.Helper()
	w, err := Build(spec)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	machines := make([]*emu.Machine, len(w.Progs))
	for i, p := range w.Progs {
		machines[i] = emu.New(p, w.Mem)
		machines[i].CheckIndependence = true
	}
	if _, err := emu.RunAll(machines, 500_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := w.Check(w.Mem); err != nil {
		t.Fatalf("check: %v", err)
	}
}

func TestKernelsFunctionalSingleThread(t *testing.T) {
	for _, k := range Names {
		for _, m := range modesFor(k) {
			t.Run(k+"-"+m.String(), func(t *testing.T) {
				runFunctional(t, Spec{Kernel: k, Scale: 7, Mode: m})
			})
		}
	}
}

func TestKernelsFunctionalMultiThread(t *testing.T) {
	for _, k := range Names {
		for _, m := range modesFor(k) {
			t.Run(k+"-"+m.String(), func(t *testing.T) {
				runFunctional(t, Spec{Kernel: k, Scale: 7, Mode: m, Threads: 4})
			})
		}
	}
}

func TestKernelsDefaultScales(t *testing.T) {
	if testing.Short() {
		t.Skip("default-scale functional runs are slow")
	}
	for _, k := range Names {
		t.Run(k, func(t *testing.T) {
			runFunctional(t, Spec{Kernel: k, Mode: SliceOuter})
		})
	}
}

func TestInnerSliceRejected(t *testing.T) {
	for _, k := range []string{"bfs", "pr", "tc", "ms"} {
		if _, err := Build(Spec{Kernel: k, Scale: 6, Mode: SliceInner}); err == nil {
			t.Errorf("%s: inner slicing should be rejected", k)
		}
	}
}
