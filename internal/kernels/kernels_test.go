package kernels

import (
	"bytes"
	"testing"

	"repro/internal/emu"
)

// modesFor returns every slice mode a kernel supports.
func modesFor(kernel string) []SliceMode {
	modes := []SliceMode{SliceNone, SliceOuter}
	if InnerSliceable(kernel) {
		modes = append(modes, SliceInner)
	}
	return modes
}

// runFunctional executes a workload on the functional emulator (no
// timing) with the slice-discipline checker on, and validates the output.
func runFunctional(t *testing.T, spec Spec) {
	t.Helper()
	w, err := Build(spec)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	machines := make([]*emu.Machine, len(w.Progs))
	for i, p := range w.Progs {
		machines[i] = emu.New(p, w.Mem)
		machines[i].CheckIndependence = true
	}
	if _, err := emu.RunAll(machines, 500_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := w.Check(w.Mem); err != nil {
		t.Fatalf("check: %v", err)
	}
}

func TestKernelsFunctionalSingleThread(t *testing.T) {
	for _, k := range Names {
		for _, m := range modesFor(k) {
			t.Run(k+"-"+m.String(), func(t *testing.T) {
				runFunctional(t, Spec{Kernel: k, Scale: 7, Mode: m})
			})
		}
	}
}

func TestKernelsFunctionalMultiThread(t *testing.T) {
	for _, k := range Names {
		for _, m := range modesFor(k) {
			t.Run(k+"-"+m.String(), func(t *testing.T) {
				runFunctional(t, Spec{Kernel: k, Scale: 7, Mode: m, Threads: 4})
			})
		}
	}
}

func TestKernelsDefaultScales(t *testing.T) {
	if testing.Short() {
		t.Skip("default-scale functional runs are slow")
	}
	for _, k := range Names {
		t.Run(k, func(t *testing.T) {
			runFunctional(t, Spec{Kernel: k, Mode: SliceOuter})
		})
	}
}

// Build memoizes constructed workloads; the simulator mutates the memory
// image, so each call must get a fresh pristine copy while the (runtime-
// immutable) programs are shared.
func TestBuildCacheFreshMemory(t *testing.T) {
	spec := Spec{Kernel: "cc", Scale: 6}
	w1, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if &w1.Mem[0] == &w2.Mem[0] {
		t.Fatal("cached builds share one memory image")
	}
	if !bytes.Equal(w1.Mem, w2.Mem) {
		t.Fatal("cached build returned a non-pristine image")
	}
	if w1.Progs[0] != w2.Progs[0] {
		t.Fatal("cached builds should share the assembled programs")
	}
	w1.Mem[0] ^= 0xFF
	if w1.Mem[0] == w2.Mem[0] {
		t.Fatal("mutating one image leaked into the other")
	}
}

func TestPRItersSentinel(t *testing.T) {
	s, err := Spec{Kernel: "pr", PRIters: -1}.Normalize()
	if err != nil || s.PRIters != 0 {
		t.Fatalf("negative sentinel → %d sweeps (err %v), want 0", s.PRIters, err)
	}
	s, err = Spec{Kernel: "pr"}.Normalize()
	if err != nil || s.PRIters != DefaultPRIters {
		t.Fatalf("unset → %d sweeps (err %v), want %d", s.PRIters, err, DefaultPRIters)
	}
	// A zero-sweep run must leave every score at its 1/n initial value —
	// the workload's Check validates exactly that against refPR(g, 0).
	runFunctional(t, Spec{Kernel: "pr", Scale: 6, PRIters: -1})
}

func TestInnerSliceRejected(t *testing.T) {
	for _, k := range []string{"bfs", "pr", "tc", "ms"} {
		if _, err := Build(Spec{Kernel: k, Scale: 6, Mode: SliceInner}); err == nil {
			t.Errorf("%s: inner slicing should be rejected", k)
		}
	}
}
