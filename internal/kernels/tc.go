package kernels

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/sim"
)

// buildTC constructs triangle counting over the ordered adjacency lists:
// for every edge (u,w) with w > u, a sorted merge-intersection counts
// common neighbors above w, so each triangle u<w<x is counted once. The
// merge comparisons are the unpredictable branches. Only the outer loop is
// sliceable (§6.1: tc inner iterations break out of the loop). The count
// accumulator carries the reduce prefix in sliced builds (§4.5).
func buildTC(spec Spec) *sim.Workload {
	g := getGraph(spec, false)
	n := g.N

	l := program.NewLayout()
	offB := l.AllocU32(n+1, g.Offsets)
	neiB := l.AllocU32(len(g.Neigh), g.Neigh)
	slotsB := l.AllocU64(spec.Threads, nil) // per-thread counts

	sliced := spec.Mode == SliceOuter
	progs := make([]*isa.Program, spec.Threads)
	for t := 0; t < spec.Threads; t++ {
		lo, hi := chunk(n, spec.Threads, t)
		b := program.NewBuilder(fmt.Sprintf("tc-t%d", t))
		rOff, rNei, rSlots := b.Reg(), b.Reg(), b.Reg()
		rU, rUEnd, rE, rEEnd := b.Reg(), b.Reg(), b.Reg(), b.Reg()
		rW, rI, rIEnd, rJ, rJEnd := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
		rA, rB, rCount, rT := b.Reg(), b.Reg(), b.Reg(), b.Reg()

		b.Li(rOff, int64(offB))
		b.Li(rNei, int64(neiB))
		b.Li(rSlots, int64(slotsB))
		b.Li(rCount, 0)
		b.Li(rUEnd, int64(hi))
		b.Li(rU, int64(lo))
		b.Bge(rU, rUEnd, "done")

		b.Label("uloop")
		b.SliceStart(sliced)
		b.LdX32(rE, rOff, rU, 2)
		b.AddI(rT, rU, 1)
		b.LdX32(rEEnd, rOff, rT, 2)
		b.Bge(rE, rEEnd, "skipU")
		b.Label("eloop")
		b.LdX32(rW, rNei, rE, 2)
		// Only count (u,w) pairs with w > u.
		b.Bgeu(rU, rW, "skipE")
		b.Mov(rI, rE) // neighbors of u below e are ≤ w; start at e
		b.Mov(rIEnd, rEEnd)
		b.LdX32(rJ, rOff, rW, 2)
		b.AddI(rT, rW, 1)
		b.LdX32(rJEnd, rOff, rT, 2)
		b.Label("merge")
		b.Bge(rI, rIEnd, "skipE")
		b.Bge(rJ, rJEnd, "skipE")
		b.LdX32(rA, rNei, rI, 2)
		b.LdX32(rB, rNei, rJ, 2)
		b.Bgeu(rW, rA, "incI") // a <= w: not above the pivot yet
		b.Bgeu(rW, rB, "incJ")
		b.Bltu(rA, rB, "incI")
		b.Bltu(rB, rA, "incJ")
		if sliced {
			b.Reduce()
		}
		b.AddI(rCount, rCount, 1)
		b.AddI(rI, rI, 1)
		b.AddI(rJ, rJ, 1)
		b.Jmp("merge")
		b.Label("incI")
		b.AddI(rI, rI, 1)
		b.Jmp("merge")
		b.Label("incJ")
		b.AddI(rJ, rJ, 1)
		b.Jmp("merge")
		b.Label("skipE")
		b.AddI(rE, rE, 1)
		b.Blt(rE, rEEnd, "eloop")
		b.Label("skipU")
		b.SliceEnd(sliced)
		b.AddI(rU, rU, 1)
		b.Blt(rU, rUEnd, "uloop")
		b.Label("done")
		b.SliceFence(sliced)
		b.St64(rSlots, int64(t)*8, rCount)
		b.Halt()
		progs[t] = b.Build()
	}

	want := refTC(g)
	return &sim.Workload{
		Name:  fmt.Sprintf("tc-s%d-%s", spec.Scale, spec.Mode),
		Progs: progs,
		Mem:   l.Image(),
		Check: func(mem []byte) error {
			var got uint64
			for t := 0; t < spec.Threads; t++ {
				got += program.ReadU64(mem, slotsB+uint64(t)*8)
			}
			if got != want {
				return fmt.Errorf("tc: count = %d, want %d", got, want)
			}
			return nil
		},
	}
}
