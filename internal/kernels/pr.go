package kernels

import (
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/sim"
)

// buildPR constructs pull-based PageRank: per sweep, phase A computes
// per-vertex contributions score[v]/deg(v), phase B pulls neighbor
// contributions. Both parallel loops get outer slices; pr has no
// data-dependent conditional in its inner loop (§6.1), so the paper
// reports ≈no speedup for it — the floor case of Fig. 4.
func buildPR(spec Spec) *sim.Workload {
	g := getGraph(spec, false)
	n := g.N
	const damp = 0.85
	base := (1 - damp) / float64(n)

	l := program.NewLayout()
	offB := l.AllocU32(n+1, g.Offsets)
	neiB := l.AllocU32(len(g.Neigh), g.Neigh)
	init := make([]float64, n)
	for i := range init {
		init[i] = 1 / float64(n)
	}
	scoreB := l.AllocF64(n, init)
	contribB := l.AllocF64(n, nil)

	sliced := spec.Mode == SliceOuter
	progs := make([]*isa.Program, spec.Threads)
	for t := 0; t < spec.Threads; t++ {
		lo, hi := chunk(n, spec.Threads, t)
		b := program.NewBuilder(fmt.Sprintf("pr-t%d", t))
		rOff, rNei, rScore, rContrib := b.Reg(), b.Reg(), b.Reg(), b.Reg()
		rBase, rD := b.Reg(), b.Reg()
		rIter, rIters := b.Reg(), b.Reg()
		rV, rVEnd := b.Reg(), b.Reg()
		rE, rEEnd := b.Reg(), b.Reg()
		rW, rDeg, rSum, rT, rF := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()

		b.Li(rOff, int64(offB))
		b.Li(rNei, int64(neiB))
		b.Li(rScore, int64(scoreB))
		b.Li(rContrib, int64(contribB))
		b.LiF(rBase, base)
		b.LiF(rD, damp)
		b.Li(rIters, int64(spec.PRIters))
		b.Li(rIter, 0)
		b.Li(rVEnd, int64(hi))

		b.Label("sweep")
		if spec.PRIters == 0 {
			// The sweep loop is do-while shaped; only an explicit
			// zero-sweep run (scores stay at 1/n) needs the guard, and
			// emitting it conditionally keeps the default instruction
			// stream — and therefore the paper figures — unchanged.
			b.Bge(rIter, rIters, "prEnd")
		}
		// Phase A: contrib[v] = score[v] / deg(v).
		b.Li(rV, int64(lo))
		b.Bge(rV, rVEnd, "phaseAdone")
		b.Label("phaseA")
		b.SliceStart(sliced)
		b.LdX32(rE, rOff, rV, 2)
		b.AddI(rT, rV, 1)
		b.LdX32(rEEnd, rOff, rT, 2)
		b.Sub(rDeg, rEEnd, rE)
		b.Beq(rDeg, isa.R0, "zeroDeg")
		b.LdX64(rSum, rScore, rV, 3)
		b.CvtIF(rDeg, rDeg)
		b.FDiv(rSum, rSum, rDeg)
		b.StX64(rContrib, rV, 3, rSum)
		b.Jmp("contribDone")
		b.Label("zeroDeg")
		b.StX64(rContrib, rV, 3, isa.R0) // 0 bits == 0.0
		b.Label("contribDone")
		b.SliceEnd(sliced)
		b.AddI(rV, rV, 1)
		b.Blt(rV, rVEnd, "phaseA")
		b.Label("phaseAdone")
		b.SliceFence(sliced)
		b.Barrier()

		// Phase B: score[v] = base + d * Σ contrib[w].
		b.Li(rV, int64(lo))
		b.Bge(rV, rVEnd, "phaseBdone")
		b.Label("phaseB")
		b.SliceStart(sliced)
		b.LdX32(rE, rOff, rV, 2)
		b.AddI(rT, rV, 1)
		b.LdX32(rEEnd, rOff, rT, 2)
		b.Li(rSum, 0) // 0.0
		b.Bge(rE, rEEnd, "pullDone")
		b.Label("pull")
		b.LdX32(rW, rNei, rE, 2)
		b.LdX64(rF, rContrib, rW, 3)
		b.FAdd(rSum, rSum, rF)
		b.AddI(rE, rE, 1)
		b.Blt(rE, rEEnd, "pull")
		b.Label("pullDone")
		b.FMul(rSum, rSum, rD)
		b.FAdd(rSum, rSum, rBase)
		b.StX64(rScore, rV, 3, rSum)
		b.SliceEnd(sliced)
		b.AddI(rV, rV, 1)
		b.Blt(rV, rVEnd, "phaseB")
		b.Label("phaseBdone")
		b.SliceFence(sliced)
		b.Barrier()

		b.AddI(rIter, rIter, 1)
		b.Blt(rIter, rIters, "sweep")
		b.Label("prEnd")
		b.Halt()
		progs[t] = b.Build()
	}

	want := refPR(g, spec.PRIters)
	return &sim.Workload{
		Name:  fmt.Sprintf("pr-s%d-%s", spec.Scale, spec.Mode),
		Progs: progs,
		Mem:   l.Image(),
		Check: func(mem []byte) error {
			for v := 0; v < n; v++ {
				got := program.ReadF64(mem, scoreB+uint64(v)*8)
				if math.Abs(got-want[v]) > 1e-12*math.Max(1, math.Abs(want[v])) {
					return fmt.Errorf("pr: score[%d] = %g, want %g", v, got, want[v])
				}
			}
			return nil
		},
	}
}
