package kernels

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/sim"
)

// buildBFS constructs frontier-queue top-down breadth-first search, the
// structure of GAP's top-down step: each level, threads process chunks of
// the current frontier queue; per edge, a visited test guards an atomic
// depth update (GAP's compare-and-swap) and a fetch-and-add enqueue into
// the next frontier. The visited test is the data-dependent hard branch,
// and its reconvergent remainder is the rest of the edge loop. Only the
// outer (per-frontier-vertex) loop is sliceable (§6.1).
func buildBFS(spec Spec) *sim.Workload {
	g := getGraph(spec, false)
	n := g.N
	src := sourceVertex(g)

	l := program.NewLayout()
	offB := l.AllocU32(n+1, g.Offsets)
	neiB := l.AllocU32(len(g.Neigh), g.Neigh)
	depthInit := make([]uint32, n)
	for i := range depthInit {
		depthInit[i] = inf32
	}
	depthInit[src] = 0
	depthB := l.AllocU32(n, depthInit)
	qAB := l.AllocU32(n, []uint32{uint32(src)})
	qBB := l.AllocU32(n, nil)
	cntAB := l.AllocU32(16, []uint32{1}) // current-frontier size (padded line)
	cntBB := l.AllocU32(16, nil)         // next-frontier size

	sliced := spec.Mode == SliceOuter
	progs := make([]*isa.Program, spec.Threads)
	for t := 0; t < spec.Threads; t++ {
		b := program.NewBuilder(fmt.Sprintf("bfs-t%d", t))
		rOff, rNei, rDepth := b.Reg(), b.Reg(), b.Reg()
		rCurQ, rNxtQ, rCntCur, rCntNxt := b.Reg(), b.Reg(), b.Reg(), b.Reg()
		rLevel1, rInf, rOne := b.Reg(), b.Reg(), b.Reg()
		rQI, rQEnd, rV, rE, rEEnd := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
		rW, rDw, rIdx, rT := b.Reg(), b.Reg(), b.Reg(), b.Reg()

		b.Li(rOff, int64(offB))
		b.Li(rNei, int64(neiB))
		b.Li(rDepth, int64(depthB))
		b.Li(rCurQ, int64(qAB))
		b.Li(rNxtQ, int64(qBB))
		b.Li(rCntCur, int64(cntAB))
		b.Li(rCntNxt, int64(cntBB))
		b.Li(rInf, int64(inf32))
		b.Li(rOne, 1)
		b.Li(rLevel1, 1)

		b.Label("level")
		b.Barrier()
		if t == 0 {
			b.St32(rCntNxt, 0, isa.R0)
		}
		b.Barrier()
		// This thread's chunk of the frontier queue.
		b.Ld32(rT, rCntCur, 0)
		b.MulI(rQI, rT, int64(t))
		b.Li(rQEnd, int64(spec.Threads))
		b.Div(rQI, rQI, rQEnd)
		b.MulI(rQEnd, rT, int64(t)+1)
		b.Li(rT, int64(spec.Threads))
		b.Div(rQEnd, rQEnd, rT)
		b.Bge(rQI, rQEnd, "scanDone")

		b.Label("scan")
		b.LdX32(rV, rCurQ, rQI, 2)
		b.SliceStart(sliced)
		b.LdX32(rE, rOff, rV, 2)
		b.AddI(rT, rV, 1)
		b.LdX32(rEEnd, rOff, rT, 2)
		b.Bge(rE, rEEnd, "skipV")
		b.Label("edge")
		b.LdX32(rW, rNei, rE, 2)
		b.LdX32(rDw, rDepth, rW, 2)
		b.Bne(rDw, rInf, "skipW") // visited test: the hard branch
		b.AMinX32(rDw, rDepth, rW, 2, rLevel1)
		b.Bne(rDw, rInf, "skipW") // another slice claimed w first
		b.AAdd32(rIdx, rCntNxt, 0, rOne)
		b.StX32(rNxtQ, rIdx, 2, rW)
		b.Label("skipW")
		b.AddI(rE, rE, 1)
		b.Blt(rE, rEEnd, "edge")
		b.Label("skipV")
		b.SliceEnd(sliced)
		b.AddI(rQI, rQI, 1)
		b.Blt(rQI, rQEnd, "scan")
		b.Label("scanDone")
		b.SliceFence(sliced)
		b.Barrier()
		// Swap queues, advance the level, loop while the next frontier
		// is non-empty.
		b.Ld32(rT, rCntNxt, 0)
		b.Mov(rIdx, rCurQ)
		b.Mov(rCurQ, rNxtQ)
		b.Mov(rNxtQ, rIdx)
		b.Mov(rIdx, rCntCur)
		b.Mov(rCntCur, rCntNxt)
		b.Mov(rCntNxt, rIdx)
		b.AddI(rLevel1, rLevel1, 1)
		b.Bne(rT, isa.R0, "level")
		b.Halt()
		progs[t] = b.Build()
	}

	want := refBFS(g, src)
	return &sim.Workload{
		Name:  fmt.Sprintf("bfs-s%d-%s", spec.Scale, spec.Mode),
		Progs: progs,
		Mem:   l.Image(),
		Check: func(mem []byte) error {
			for v := 0; v < n; v++ {
				if got := program.ReadU32(mem, depthB+uint64(v)*4); got != want[v] {
					return fmt.Errorf("bfs: depth[%d] = %d, want %d", v, got, want[v])
				}
			}
			return nil
		},
	}
}
