package sim

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/trace"
)

// batchSweepConfigs is a small heterogeneous sweep: configurations that
// mispredict differently (predictor), flush differently (selective
// flush), and stall differently (ROB), so the lanes' trace cursors and
// wrong-path forks drift apart — the scheduling and segment-sharing cases
// RunBatch must keep byte-identical to serial replay.
func batchSweepConfigs(sliced bool) []Config {
	mk := func(tweak func(*Config)) Config {
		cfg := DefaultConfig()
		cfg.Core.SelectiveFlush = sliced
		cfg.CheckIndependence = false
		cfg.MaxCycles = 50_000_000
		if tweak != nil {
			tweak(&cfg)
		}
		return cfg
	}
	return []Config{
		mk(nil),
		mk(func(c *Config) { c.Core.Predictor = "oracle" }),
		mk(func(c *Config) { c.Core.ROBSize = 64 }),
		mk(func(c *Config) { c.Core.FRQSize = 2 }),
	}
}

// TestRunBatchMatchesSerialReplay is the batched-vs-serial equivalence
// pin: for every configuration in a mixed sweep, RunBatch's per-lane
// Result must equal the serial Run-with-Replay Result byte for byte, in
// both flush modes (the sliced mode exercises wrong-path segment forks
// through the shared cache; the runs also diverge in fork points, so
// segment fingerprint validation is on the line too).
func TestRunBatchMatchesSerialReplay(t *testing.T) {
	for _, sliced := range []bool{false, true} {
		w := buildOddEven(2000, sliced, 42)
		capMem := append([]byte(nil), w.Mem...)
		tr, err := trace.Capture(context.Background(), w.Progs[0], capMem)
		if err != nil {
			t.Fatal(err)
		}
		tr.EnsureSegs(0, nil)

		cfgs := batchSweepConfigs(sliced)

		// Serial reference: one replayed run per config, fresh workload each.
		serial := make([]*Result, len(cfgs))
		for i, cfg := range cfgs {
			cfg.Replay = tr
			wi := buildOddEven(2000, sliced, 42)
			res, err := Run(cfg, wi)
			if err != nil {
				t.Fatalf("serial replay config %d (sliced=%v): %v", i, sliced, err)
			}
			serial[i] = res
		}

		ws := make([]*Workload, len(cfgs))
		for i := range ws {
			ws[i] = buildOddEven(2000, sliced, 42)
		}
		results, errs := RunBatch(tr, cfgs, ws)
		for i := range cfgs {
			if errs[i] != nil {
				t.Fatalf("batch lane %d (sliced=%v): %v", i, sliced, errs[i])
			}
			if !reflect.DeepEqual(results[i], serial[i]) {
				t.Errorf("batch lane %d diverges from serial replay (sliced=%v):\nserial %+v\nbatch  %+v",
					i, sliced, serial[i].Total, results[i].Total)
			}
		}
	}
}

// TestRunBatchLaneIsolation: one lane failing (MaxCycles exhausted) must
// not disturb the others — they still finish with results identical to
// serial replay.
func TestRunBatchLaneIsolation(t *testing.T) {
	w := buildOddEven(500, true, 7)
	tr, err := trace.Capture(context.Background(), w.Progs[0], append([]byte(nil), w.Mem...))
	if err != nil {
		t.Fatal(err)
	}

	good := DefaultConfig()
	good.Core.SelectiveFlush = true
	good.CheckIndependence = false
	good.MaxCycles = 50_000_000
	bad := good
	bad.MaxCycles = 100 // fails long before the stream ends

	goodRef := good
	goodRef.Replay = tr
	want, err := Run(goodRef, buildOddEven(500, true, 7))
	if err != nil {
		t.Fatal(err)
	}

	results, errs := RunBatch(tr,
		[]Config{good, bad, good},
		[]*Workload{buildOddEven(500, true, 7), buildOddEven(500, true, 7), buildOddEven(500, true, 7)})
	if errs[1] == nil {
		t.Fatal("throttled lane should have exceeded MaxCycles")
	}
	for _, i := range []int{0, 2} {
		if errs[i] != nil {
			t.Fatalf("lane %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i], want) {
			t.Errorf("lane %d diverges from serial replay after sibling failure", i)
		}
	}
}

// TestRunBatchRejectsMultiThread pins the gating at the batch layer.
func TestRunBatchRejectsMultiThread(t *testing.T) {
	w := buildOddEven(50, false, 1)
	tr, err := trace.Capture(context.Background(), w.Progs[0], append([]byte(nil), w.Mem...))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.CheckIndependence = false
	cfg.Cores = 2
	_, errs := RunBatch(tr, []Config{cfg}, []*Workload{buildOddEven(50, false, 1)})
	if errs[0] == nil {
		t.Error("two-core lane should be rejected")
	}
	cfg = DefaultConfig()
	cfg.CheckIndependence = true
	_, errs = RunBatch(tr, []Config{cfg}, []*Workload{buildOddEven(50, false, 1)})
	if errs[0] == nil {
		t.Error("CheckIndependence lane should be rejected")
	}
}
