package sim

import (
	"math"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/flight"
)

// This file is the sim driver's side of the flight recorder: the interval
// timeline sampler (occupancy plus the rates only the driver can compute —
// IPC and per-level MPKI need committed/miss deltas across the whole
// chip) and the watchdog's deadlock report.

// timeline holds the previous-sample counters the interval rates are
// computed against.
type timeline struct {
	rec       *flight.Recorder
	lastCycle int64
	committed []uint64 // per core
	l1dMisses []uint64
	l2Misses  []uint64
	llcMisses uint64
	totalComm uint64
}

func newTimeline(rec *flight.Recorder, cores int) *timeline {
	return &timeline{
		rec:       rec,
		committed: make([]uint64, cores),
		l1dMisses: make([]uint64, cores),
		l2Misses:  make([]uint64, cores),
	}
}

// sample appends one timeline row per core: the core's occupancy snapshot
// plus interval IPC and misses-per-kilo-instruction at each cache level.
// The LLC is shared, so its MPKI is chip-wide (per kilo instructions
// committed by all cores) and repeated on every core's row.
func (tl *timeline) sample(now int64, cores []*core.Core, hiers []*cache.Hierarchy, llc *cache.Cache) {
	interval := now - tl.lastCycle
	if interval <= 0 {
		return
	}
	var total uint64
	for _, c := range cores {
		total += c.Stats().Committed
	}
	llcM := llc.Stats().Misses
	llcMPKI := mpki(llcM-tl.llcMisses, total-tl.totalComm)
	for i, c := range cores {
		var s flight.Sample
		c.Sample(&s)
		s.Cycle = now
		cDelta := s.Committed - tl.committed[i]
		s.IPC = float64(cDelta) / float64(interval)
		l1dM := hiers[i].L1D.Stats().Misses
		l2M := hiers[i].L2.Stats().Misses
		s.L1DMPKI = mpki(l1dM-tl.l1dMisses[i], cDelta)
		s.L2MPKI = mpki(l2M-tl.l2Misses[i], cDelta)
		s.LLCMPKI = llcMPKI
		tl.committed[i] = s.Committed
		tl.l1dMisses[i] = l1dM
		tl.l2Misses[i] = l2M
		tl.rec.AddSample(s)
	}
	tl.llcMisses = llcM
	tl.totalComm = total
	tl.lastCycle = now
}

// mpki returns misses per kilo committed instructions for one interval.
// An interval that committed nothing has no meaningful rate — NaN (an
// empty timeline CSV cell) keeps a fully stalled interval with
// outstanding misses distinguishable from a healthy miss-free one.
func mpki(misses, committed uint64) float64 {
	if committed == 0 {
		return math.NaN()
	}
	return 1000 * float64(misses) / float64(committed)
}

// deadlockDump renders the no-commit watchdog's report from the same
// machinery the flight recorder uses: each stuck core's occupancy
// snapshot (reserved-entry context included) and detailed pipeline state,
// plus — when a recorder is attached to the run — the last events of
// every hardware thread, so a §4.7 forward-progress failure is
// diagnosable from the artifact without rerunning.
func deadlockDump(now int64, cores []*core.Core, rec *flight.Recorder) string {
	var b strings.Builder
	for _, c := range cores {
		if c.Done() {
			continue
		}
		var s flight.Sample
		c.Sample(&s)
		s.Cycle = now
		b.WriteString(s.String())
		b.WriteByte('\n')
		b.WriteString(c.DumpState())
	}
	if rec != nil {
		if tail := rec.TailByThread(8); tail != "" {
			b.WriteString("flight-recorder tail:\n")
			b.WriteString(tail)
		}
	}
	return b.String()
}
