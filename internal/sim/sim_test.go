package sim

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/isa"
	"repro/internal/program"
)

// buildOddEven constructs the canonical sliced loop of the paper's
// Listing 1: iterate over an array, and per element take a data-dependent
// branch (odd/even) that a predictor cannot learn. Returns the workload
// with per-element expected outputs checked against a host reference.
func buildOddEven(n int, sliced bool, seed uint64) *Workload {
	rng := graph.NewRNG(seed)
	a := make([]uint32, n)
	for i := range a {
		a[i] = uint32(rng.Next())
	}

	l := program.NewLayout()
	aBase := l.AllocU32(n, a)
	bBase := l.AllocU32(n, nil)

	b := program.NewBuilder("oddEven")
	rI, rN, rA, rB := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	rX, rT, rY := b.Reg(), b.Reg(), b.Reg()
	b.Li(rI, 0)
	b.Li(rN, int64(n))
	b.Li(rA, int64(aBase))
	b.Li(rB, int64(bBase))
	b.Label("loop")
	b.Bge(rI, rN, "done")
	b.SliceStart(sliced)
	b.LdX32(rX, rA, rI, 2)
	b.AndI(rT, rX, 1)
	b.Beq(rT, isa.R0, "even")
	b.MulI(rY, rX, 3)
	b.StX32(rB, rI, 2, rY)
	b.Jmp("endif")
	b.Label("even")
	b.AddI(rY, rX, 7)
	b.StX32(rB, rI, 2, rY)
	b.Label("endif")
	b.SliceEnd(sliced)
	b.AddI(rI, rI, 1)
	b.Jmp("loop")
	b.Label("done")
	b.SliceFence(sliced)
	b.Halt()

	return &Workload{
		Name:  "oddEven",
		Progs: []*isa.Program{b.Build()},
		Mem:   l.Image(),
		Check: func(mem []byte) error {
			for i, x := range a {
				want := x + 7
				if x&1 != 0 {
					want = x * 3
				}
				got := program.ReadU32(mem, bBase+uint64(i)*4)
				if got != want {
					return fmt.Errorf("b[%d] = %d, want %d", i, got, want)
				}
			}
			return nil
		},
	}
}

func runOddEven(t *testing.T, sliced bool, tweak func(*Config)) *Result {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Core.SelectiveFlush = sliced
	cfg.CheckIndependence = true
	cfg.MaxCycles = 50_000_000
	if tweak != nil {
		tweak(&cfg)
	}
	w := buildOddEven(2000, sliced, 42)
	res, err := Run(cfg, w)
	if err != nil {
		t.Fatalf("run (sliced=%v): %v", sliced, err)
	}
	return res
}

func TestOddEvenBaseline(t *testing.T) {
	res := runOddEven(t, false, nil)
	if res.Total.Committed == 0 || res.Cycles == 0 {
		t.Fatalf("empty result: %+v", res.Total)
	}
	if res.Total.Mispredicts == 0 {
		t.Fatalf("expected mispredictions on random data, got none")
	}
	t.Logf("baseline: cycles=%d IPC=%.2f mispred=%d/%d wrongDisp=%d",
		res.Cycles, res.Total.IPC(), res.Total.Mispredicts, res.Total.Branches,
		res.Total.DispWrong)
}

func TestOddEvenSelectiveFlush(t *testing.T) {
	base := runOddEven(t, false, nil)
	sel := runOddEven(t, true, nil)

	if sel.Total.SliceRecoveries == 0 {
		t.Fatalf("selective flush never triggered: %+v", sel.Total)
	}
	// Both executions commit the same program (modulo slice markers,
	// which never commit).
	if base.Total.Committed != sel.Total.Committed {
		t.Fatalf("committed differ: baseline %d vs sliced %d",
			base.Total.Committed, sel.Total.Committed)
	}
	speedup := float64(base.Cycles) / float64(sel.Cycles)
	t.Logf("baseline=%d sliced=%d speedup=%.3f sliceRec=%d convRec=%d wrongDisp %d->%d overhead=%d",
		base.Cycles, sel.Cycles, speedup,
		sel.Total.SliceRecoveries, sel.Total.ConvRecoveries,
		base.Total.DispWrong, sel.Total.DispWrong, sel.Total.DispOverhead)
	if speedup < 1.0 {
		t.Errorf("selective flush slowed down the canonical loop: speedup=%.3f", speedup)
	}
}

func TestOddEvenOracle(t *testing.T) {
	base := runOddEven(t, false, nil)
	orc := runOddEven(t, false, func(c *Config) { c.Core.Predictor = "oracle" })
	if orc.Total.Mispredicts != 0 {
		t.Fatalf("oracle mispredicted %d times", orc.Total.Mispredicts)
	}
	if orc.Cycles >= base.Cycles {
		t.Errorf("oracle (%d cycles) not faster than TAGE baseline (%d)", orc.Cycles, base.Cycles)
	}
}

func TestOddEvenSMT(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Core.SMT = 2
	cfg.MaxCycles = 50_000_000
	w1 := buildOddEven(600, false, 1)
	w2 := buildOddEven(600, false, 2)
	w := &Workload{
		Name:  "oddEven-smt2",
		Progs: []*isa.Program{w1.Progs[0], w2.Progs[0]},
		Mem:   w1.Mem,
	}
	// Thread 2 runs w2's program against w1's memory image: same a-array
	// layout, so it recomputes b from w1's inputs; skip output checks.
	res, err := Run(cfg, w)
	if err != nil {
		t.Fatalf("smt run: %v", err)
	}
	if res.Total.Committed == 0 {
		t.Fatalf("no instructions committed")
	}
	t.Logf("smt2: cycles=%d committed=%d", res.Cycles, res.Total.Committed)
}
