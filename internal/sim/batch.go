package sim

import (
	"fmt"
	"sync"

	"repro/internal/emu"
	"repro/internal/trace"
)

// RunBatch simulates len(cfgs) single-hardware-thread timing
// configurations over one shared captured trace. Each record of the trace
// is decoded exactly once (trace.Batch) and fanned out to a per-config
// view; the lanes run concurrently, one goroutine each, paced by the
// batch's ring window so the stream is consumed as a narrow moving front.
// Each lane's result is byte-identical to
// Run(cfgs[i] with Replay=tr, ws[i]) — the lanes share decode work and
// the trace's wrong-path segment cache, nothing architectural: a lane's
// simulation depends only on the immutable record stream and its own
// state, and segment-cache hit ordering affects wall time, never results
// (a fingerprint-validated hit replays exactly what a live shadow would
// emulate; a miss falls back to that live shadow).
//
// Lanes are independent: results[i] and errs[i] report lane i alone, and
// one lane failing (watchdog, MaxCycles, cancellation) does not abort the
// others — it detaches from the ring window and the rest continue. Every
// workload must carry its own memory image; every config must have
// exactly one hardware thread and CheckIndependence off (the same
// restrictions as Config.Replay).
func RunBatch(tr *trace.Trace, cfgs []Config, ws []*Workload) ([]*Result, []error) {
	n := len(cfgs)
	results := make([]*Result, n)
	errs := make([]error, n)
	fail := func(err error) ([]*Result, []error) {
		for i := range errs {
			if errs[i] == nil {
				errs[i] = err
			}
		}
		return results, errs
	}
	if len(ws) != n {
		return fail(fmt.Errorf("sim: RunBatch got %d configs for %d workloads", n, len(ws)))
	}
	if n == 0 {
		return results, errs
	}
	if tr == nil {
		return fail(fmt.Errorf("sim: RunBatch requires a trace"))
	}

	// The shared decoder needs one program; every lane must agree with it
	// (for one trace key they are rebuilt per config but identical).
	prog := ws[0].Progs[0]
	b, err := trace.NewBatch(tr, prog)
	if err != nil {
		return fail(err)
	}

	type blane struct {
		l    *lane
		view *trace.Replay
	}
	lanes := make([]*blane, n)
	for i := range cfgs {
		w := ws[i]
		if t := cfgs[i].Cores * cfgs[i].Core.SMT; t != 1 {
			errs[i] = fmt.Errorf("sim: workload %s: batched replay supports exactly one hardware thread, got %d",
				w.Name, t)
			continue
		}
		if cfgs[i].CheckIndependence {
			errs[i] = fmt.Errorf("sim: workload %s: batched replay is incompatible with CheckIndependence",
				w.Name)
			continue
		}
		if len(w.Progs) != 1 || w.Progs[0].Name != prog.Name || len(w.Progs[0].Code) != len(prog.Code) {
			errs[i] = fmt.Errorf("sim: workload %s: program does not match the batch trace", w.Name)
			continue
		}
		view := b.NewView(w.Mem)
		cfg := cfgs[i]
		cfg.Replay = nil // the view is the frontend; avoid double validation
		l, err := newLane(cfg, w, []emu.Frontend{view})
		if err != nil {
			errs[i] = err
			b.Drop(view)
			continue
		}
		lanes[i] = &blane{l: l, view: view}
	}

	// One goroutine per lane; a lane that retires (finished or failed)
	// drops its view so it stops bounding the others' window. results[i]
	// and errs[i] are written by exactly one goroutine each.
	var wg sync.WaitGroup
	for i, bl := range lanes {
		if bl == nil {
			continue
		}
		wg.Add(1)
		go func(i int, bl *blane) {
			defer wg.Done()
			defer b.Drop(bl.view)
			for {
				finished, err := bl.l.step()
				if err != nil {
					errs[i] = err
					return
				}
				if finished {
					results[i], errs[i] = bl.l.finish()
					return
				}
			}
		}(i, bl)
	}
	wg.Wait()
	return results, errs
}
