package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/trace"
)

// TestReplayEquivalence runs the same workload twice — once live, once
// fed from a captured trace — under both flush modes and requires
// byte-identical results: the replay frontend must be indistinguishable
// from the emulator to the timing model.
func TestReplayEquivalence(t *testing.T) {
	for _, sliced := range []bool{false, true} {
		w := buildOddEven(2000, sliced, 42)

		capMem := append([]byte(nil), w.Mem...)
		tr, err := trace.Capture(context.Background(), w.Progs[0], capMem)
		if err != nil {
			t.Fatal(err)
		}
		// The capture pass itself must compute the right answer.
		if err := w.Check(capMem); err != nil {
			t.Fatalf("captured execution wrong (sliced=%v): %v", sliced, err)
		}

		cfg := DefaultConfig()
		cfg.Core.SelectiveFlush = sliced
		cfg.CheckIndependence = false
		cfg.MaxCycles = 50_000_000

		live, err := Run(cfg, w)
		if err != nil {
			t.Fatalf("live run (sliced=%v): %v", sliced, err)
		}

		// Rebuild the workload: Run consumes the memory image in place.
		w2 := buildOddEven(2000, sliced, 42)
		cfg.Replay = tr
		rep, err := Run(cfg, w2)
		if err != nil {
			t.Fatalf("replayed run (sliced=%v): %v", sliced, err)
		}

		if !reflect.DeepEqual(rep, live) {
			t.Errorf("replayed result diverges from live run (sliced=%v):\nlive   %+v\nreplay %+v",
				sliced, live.Total, rep.Total)
		}
	}
}

// TestReplayRequiresSingleThread pins the gating: replay is defined only
// for one hardware thread and without the independence checker.
func TestReplayRequiresSingleThread(t *testing.T) {
	w := buildOddEven(50, false, 1)
	tr, err := trace.Capture(context.Background(), w.Progs[0], append([]byte(nil), w.Mem...))
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	cfg.CheckIndependence = false
	cfg.Cores = 2
	cfg.Replay = tr
	if _, err := Run(cfg, w); err == nil {
		t.Error("replay with 2 cores should be rejected")
	}

	cfg = DefaultConfig()
	cfg.CheckIndependence = true
	cfg.Replay = tr
	if _, err := Run(cfg, w); err == nil {
		t.Error("replay with CheckIndependence should be rejected")
	}
}

// TestCancelDuringIdleFastForward is the regression test for the
// cancellation-latency bug: with a long memory latency, nearly all
// simulated time is covered by idle fast-forward jumps, and a short run
// can finish in far fewer loop iterations than the counter-based
// cancellation poll's interval — so a canceled context was silently
// ignored. The fix polls before committing any jump at least as long as
// the poll interval.
func TestCancelDuringIdleFastForward(t *testing.T) {
	w := buildOddEven(6, false, 3)
	cfg := DefaultConfig()
	cfg.CheckIndependence = false
	// Every miss stalls for ~300k idle cycles — far more than the poll
	// interval, well under the watchdog — while the run takes only a few
	// dozen loop iterations end to end.
	cfg.Mem.Uncore.MemLatency = 300_000
	cfg.MaxCycles = 50_000_000

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg.Ctx = ctx
	if _, err := Run(cfg, w); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled run finished with err=%v; want context.Canceled", err)
	}

	// Sanity: the same configuration completes when not canceled.
	cfg.Ctx = context.Background()
	w2 := buildOddEven(6, false, 3)
	if _, err := Run(cfg, w2); err != nil {
		t.Fatalf("uncanceled control run failed: %v", err)
	}
}
