package sim

import "testing"

// Mechanism-level behavior tests on the canonical sliced loop.

func TestBlockedROBCreatesGaps(t *testing.T) {
	res := runOddEven(t, true, func(c *Config) { c.Core.ROBBlockSize = 8 })
	if res.Total.GapsCreated == 0 {
		t.Fatal("blocked ROB produced no gaps despite selective flushes")
	}
	unblocked := runOddEven(t, true, nil)
	if unblocked.Total.GapsCreated != 0 {
		t.Fatal("unblocked ROB accounted gaps")
	}
	// Block partitioning only changes capacity accounting; execution
	// stays in the same ballpark (second-order interactions — like the
	// paper's Fig. 7 prefetcher dip — allow small swings either way).
	ratio := float64(res.Cycles) / float64(unblocked.Cycles)
	if ratio < 0.85 || ratio > 1.5 {
		t.Fatalf("blocked ROB cycles implausible: %d vs %d", res.Cycles, unblocked.Cycles)
	}
	if res.Total.Committed != unblocked.Total.Committed {
		t.Fatal("blocks changed committed instructions")
	}
}

func TestBlockSizeMonotoneOverhead(t *testing.T) {
	prev := int64(0)
	for _, bsz := range []int{1, 8, 16} {
		res := runOddEven(t, true, func(c *Config) { c.Core.ROBBlockSize = bsz })
		if prev != 0 && float64(res.Cycles) < 0.95*float64(prev) {
			t.Fatalf("block size %d much faster than smaller blocks (%d < %d)",
				bsz, res.Cycles, prev)
		}
		prev = res.Cycles
	}
}

func TestFRQOverflowFallsBackConventional(t *testing.T) {
	small := runOddEven(t, true, func(c *Config) { c.Core.FRQSize = 1 })
	big := runOddEven(t, true, func(c *Config) { c.Core.FRQSize = 16 })
	if small.Total.ConvRecoveries <= big.Total.ConvRecoveries {
		t.Fatalf("FRQ=1 should force more conventional recoveries: %d vs %d",
			small.Total.ConvRecoveries, big.Total.ConvRecoveries)
	}
	if small.Total.FRQPeak > 1 || big.Total.FRQPeak < 2 {
		t.Fatalf("FRQ peaks: %d (cap 1), %d (cap 16)", small.Total.FRQPeak, big.Total.FRQPeak)
	}
}

func TestSelectiveFlushOffNeverRecoversSelectively(t *testing.T) {
	res := runOddEven(t, false, nil)
	if res.Total.SliceRecoveries != 0 || res.Total.DispOverhead != 0 {
		t.Fatalf("baseline engaged slice machinery: %+v", res.Total)
	}
}

func TestSliceMarkersCostDispatchOnly(t *testing.T) {
	// A sliced binary on a selective-flush core dispatches overhead
	// markers; they never commit.
	res := runOddEven(t, true, nil)
	if res.Total.DispOverhead == 0 {
		t.Fatal("no overhead counted for slice markers")
	}
	base := runOddEven(t, false, nil)
	if res.Total.Committed != base.Total.Committed {
		t.Fatal("markers leaked into committed count")
	}
}

func TestReserveSweepRuns(t *testing.T) {
	// The Fig. 7 sweep endpoints behave: tiny and huge reservations both
	// complete and commit identical work.
	r1 := runOddEven(t, true, func(c *Config) { c.Core.Reserve = 1 })
	r32 := runOddEven(t, true, func(c *Config) { c.Core.Reserve = 32 })
	if r1.Total.Committed != r32.Total.Committed {
		t.Fatal("reserve setting changed committed instructions")
	}
}

func TestSMT4(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Core.SMT = 4
	cfg.Core.SelectiveFlush = true
	var progs []*Workload
	w := buildOddEven(400, true, 5)
	for i := 0; i < 4; i++ {
		progs = append(progs, buildOddEven(400, true, uint64(5+i)))
	}
	w.Progs = nil
	for i := 0; i < 4; i++ {
		w.Progs = append(w.Progs, progs[i].Progs[0])
	}
	w.Check = nil // threads share one image; per-thread outputs clash
	res, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Committed == 0 {
		t.Fatal("SMT4 committed nothing")
	}
}

func TestPredictorVariants(t *testing.T) {
	// All predictors complete and oracle dominates static.
	var cycles = map[string]int64{}
	for _, p := range []string{"tage", "gshare", "bimodal", "static", "oracle"} {
		res := runOddEven(t, false, func(c *Config) { c.Core.Predictor = p })
		cycles[p] = res.Cycles
	}
	for p, c := range cycles {
		if p != "oracle" && cycles["oracle"] > c {
			t.Fatalf("oracle (%d) slower than %s (%d)", cycles["oracle"], p, c)
		}
	}
}

func TestWorkloadThreadMismatch(t *testing.T) {
	w := buildOddEven(100, false, 1)
	cfg := DefaultConfig()
	cfg.Cores = 2
	if _, err := Run(cfg, w); err == nil {
		t.Fatal("program/thread mismatch accepted")
	}
}

func TestPaperScaleMemoryRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mem = Table1MemConfig(1)
	w := buildOddEven(500, false, 9)
	res, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles")
	}
}

func TestTraceEmitsEvents(t *testing.T) {
	var buf traceBuf
	res := runOddEven(t, true, func(c *Config) {
		c.Core.Trace = &buf
		c.Core.TraceLimit = 50
	})
	if res.Total.Committed == 0 {
		t.Fatal("no commits")
	}
	if buf.lines == 0 || buf.lines > 50 {
		t.Fatalf("trace lines = %d, want 1..50", buf.lines)
	}
}

type traceBuf struct{ lines int }

func (b *traceBuf) Write(p []byte) (int, error) {
	for _, c := range p {
		if c == '\n' {
			b.lines++
		}
	}
	return len(p), nil
}
