package sim

import "testing"

func TestEnergyComponents(t *testing.T) {
	m := DefaultEnergyModel()
	res := runOddEven(t, false, nil)
	e := EstimateEnergy(m, res)
	if e.Total() <= 0 || e.Frontend <= 0 || e.DRAM < 0 {
		t.Fatalf("degenerate energy: %+v", e)
	}
	sum := e.Frontend + e.Execute + e.Commit + e.Caches + e.DRAM + e.Static
	if sum != e.Total() {
		t.Fatal("total != component sum")
	}
}

// TestEnergySlicedReducesWaste reproduces the paper's §6.1 efficiency
// argument on the canonical loop: slicing cuts wrong-path dispatches, so
// the useful (committed/dispatched) fraction of dynamic energy rises.
func TestEnergySlicedReducesWaste(t *testing.T) {
	base := runOddEven(t, false, nil)
	sl := runOddEven(t, true, nil)
	bd := base.Total.DispCorrect + base.Total.DispWrong + base.Total.DispOverhead
	sd := sl.Total.DispCorrect + sl.Total.DispWrong + sl.Total.DispOverhead
	eb := EstimateEnergy(DefaultEnergyModel(), base)
	es := EstimateEnergy(DefaultEnergyModel(), sl)
	if es.UsefulFraction(sl.Total.Committed, sd) <= eb.UsefulFraction(base.Total.Committed, bd) {
		t.Fatalf("useful-energy fraction did not improve: %.3f vs %.3f",
			es.UsefulFraction(sl.Total.Committed, sd),
			eb.UsefulFraction(base.Total.Committed, bd))
	}
	// With the big wrong-path reduction, total frontend energy drops.
	if es.Frontend >= eb.Frontend {
		t.Fatalf("frontend energy did not drop: %.0f vs %.0f", es.Frontend, eb.Frontend)
	}
}
