package sim

// Energy estimation supporting the paper's efficiency claim (§6.1: "we
// can also claim better energy efficiency, because fewer instructions
// need to be processed"). The model is an event-energy proxy: each
// pipeline and memory event carries a fixed cost, in arbitrary units
// normalized to one ALU execution = 1. The default weights follow the
// relative magnitudes reported by McPAT-style models for a Skylake-class
// core (frontend and scheduling dominate per-instruction core energy;
// DRAM dominates per-access memory energy). Absolute joules are out of
// scope; the reproduction target is the *relative* energy of baseline vs
// sliced execution.
type EnergyModel struct {
	PerFetchDispatch float64 // fetch+decode+rename+dispatch per instruction
	PerExecute       float64 // schedule+execute+writeback per instruction
	PerCommit        float64 // retirement bookkeeping
	PerL1            float64 // L1D access
	PerL2            float64 // L2 access
	PerLLC           float64 // LLC access
	PerDRAM          float64 // DRAM line transfer
	PerCycleStatic   float64 // leakage/clock per cycle
}

// DefaultEnergyModel returns the documented default weights.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		PerFetchDispatch: 2.0,
		PerExecute:       1.0,
		PerCommit:        0.5,
		PerL1:            1.0,
		PerL2:            4.0,
		PerLLC:           15.0,
		PerDRAM:          120.0,
		PerCycleStatic:   0.5,
	}
}

// Energy is the per-component breakdown of one run.
type Energy struct {
	Frontend float64 // fetch/dispatch of every instruction (incl. wrong path and markers)
	Execute  float64
	Commit   float64
	Caches   float64
	DRAM     float64
	Static   float64
}

// Total sums the components.
func (e Energy) Total() float64 {
	return e.Frontend + e.Execute + e.Commit + e.Caches + e.DRAM + e.Static
}

// UsefulFraction is the share of dynamic (non-static) energy spent on
// instructions that committed: wrong-path work and slice-marker overhead
// are the waste the selective-flush mechanism reduces (Fig. 6).
func (e Energy) UsefulFraction(committed, dispatched uint64) float64 {
	if dispatched == 0 {
		return 0
	}
	return float64(committed) / float64(dispatched)
}

// EstimateEnergy applies the model to a run's counters.
func EstimateEnergy(m EnergyModel, r *Result) Energy {
	s := r.Total
	dispatched := s.DispCorrect + s.DispWrong + s.DispOverhead
	executed := s.DispCorrect + s.DispWrong // markers never execute
	return Energy{
		Frontend: m.PerFetchDispatch * float64(dispatched),
		Execute:  m.PerExecute * float64(executed),
		Commit:   m.PerCommit * float64(s.Committed),
		Caches: m.PerL1*float64(r.L1DAccesses) +
			m.PerL2*float64(r.L2Accesses) +
			m.PerLLC*float64(r.LLCAccesses),
		DRAM:   m.PerDRAM * float64(r.DRAMLines),
		Static: m.PerCycleStatic * float64(r.Cycles),
	}
}
