package sim

import (
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/flight"
	"repro/internal/uncore"
)

// Miss rates must aggregate over every core's private hierarchy; they used
// to read hiers[0] only, silently reporting core 0's locality for the
// whole chip. Drive two hierarchies with opposite patterns (one all-hits
// after warmup, one all-misses) and check the aggregate sits between them.
func TestCollectCacheStatsAggregatesAllCores(t *testing.T) {
	llc, dram := uncore.Build(uncore.Config{
		Cores: 2, LLCPerCore: 16 << 10, LLCWays: 8, LLCLatency: 30,
		MemLatency: 150, MemBytesPerCycle: 16, LLCMSHRs: 64,
	})
	hc := cache.HierConfig{
		L1I: cache.Config{Name: "l1i", SizeBytes: 8 << 10, Ways: 8, HitLatency: 1, MSHRs: 10},
		L1D: cache.Config{Name: "l1d", SizeBytes: 4 << 10, Ways: 8, HitLatency: 4, MSHRs: 10},
		L2:  cache.Config{Name: "l2", SizeBytes: 8 << 10, Ways: 8, HitLatency: 14, MSHRs: 20},
	}
	hiers := []*cache.Hierarchy{
		cache.NewHierarchy(hc, llc, dram),
		cache.NewHierarchy(hc, llc, dram),
	}

	// Core 0: hammer one line — one cold miss, then hits.
	now := int64(1)
	for i := 0; i < 100; i++ {
		hiers[0].Data(64, 0, now, false)
		now += 200
	}
	// Core 1: stream far beyond every capacity — all misses.
	for i := 0; i < 100; i++ {
		hiers[1].Data(uint64(1<<20+i*4096), 0, now, false)
		now += 200
	}

	res := &Result{}
	collectCacheStats(res, hiers, llc, dram, now)

	if res.L1DAccesses != 200 {
		t.Fatalf("L1DAccesses = %d, want 200", res.L1DAccesses)
	}
	var wantMisses uint64
	for _, h := range hiers {
		wantMisses += h.L1D.Stats().Misses
	}
	if res.L1DMisses != wantMisses {
		t.Fatalf("L1DMisses = %d, want %d", res.L1DMisses, wantMisses)
	}
	core0 := hiers[0].L1D.Stats().MissRate()
	core1 := hiers[1].L1D.Stats().MissRate()
	if !(core0 < res.L1DMissRate && res.L1DMissRate < core1) {
		t.Fatalf("aggregate L1D miss rate %.3f not between core0 %.3f and core1 %.3f",
			res.L1DMissRate, core0, core1)
	}
	if res.L1DMissRate == core0 {
		t.Fatal("aggregate miss rate still equals core 0's (regression)")
	}
	if res.L2Misses == 0 || res.LLCMisses == 0 {
		t.Fatal("L2/LLC miss counters not collected")
	}
}

// A negative watchdog threshold must be rejected up front, and a small one
// must fire on the first long memory stall with the diagnostic dump.
func TestWatchdogConfig(t *testing.T) {
	w := buildOddEven(64, false, 1)
	cfg := DefaultConfig()
	cfg.WatchdogCycles = -1
	if _, err := Run(cfg, w); err == nil || !strings.Contains(err.Error(), "WatchdogCycles") {
		t.Fatalf("negative watchdog accepted: %v", err)
	}

	// A 10-cycle no-commit budget is shorter than one DRAM access, so the
	// watchdog fires early; the error must carry the occupancy dump and,
	// when events were recorded, the flight-recorder tail. (The watchdog
	// fires during the cold-start fetch stall, before the run's first
	// event, so seed one to exercise the tail path.)
	cfg = DefaultConfig()
	cfg.WatchdogCycles = 10
	rec := &flight.Recorder{}
	rec.Record(flight.Event{TS: 1, Name: flight.EvRecoverSel})
	cfg.Recorder = rec
	_, err := Run(cfg, buildOddEven(64, false, 2))
	if err == nil || !strings.Contains(err.Error(), "deadlocked at cycle") {
		t.Fatalf("tiny watchdog did not fire: %v", err)
	}
	if !strings.Contains(err.Error(), "core 0 @") {
		t.Fatalf("dump missing occupancy snapshot:\n%v", err)
	}
	if !strings.Contains(err.Error(), "flight-recorder tail:") {
		t.Fatalf("dump missing flight-recorder tail:\n%v", err)
	}
}

// The timeline sampler records one row per core per interval with
// monotonically growing committed counts, and attaching it (or the full
// recorder) must not change the simulated timing.
func TestTimelineSamplingAndNeutrality(t *testing.T) {
	base := runOddEven(t, true, nil)

	rec := &flight.Recorder{Interval: 100, TraceUops: true}
	res := runOddEven(t, true, func(cfg *Config) { cfg.Recorder = rec })

	if res.Cycles != base.Cycles {
		t.Fatalf("recorder changed timing: %d vs %d cycles", res.Cycles, base.Cycles)
	}
	if res.Total != base.Total {
		t.Fatalf("recorder changed stats:\n%+v\n%+v", res.Total, base.Total)
	}

	samples := rec.Samples()
	if len(samples) == 0 {
		t.Fatal("no timeline samples recorded")
	}
	prev := uint64(0)
	for i, s := range samples {
		if s.Cycle%100 != 0 {
			t.Fatalf("sample %d at cycle %d, not on the interval", i, s.Cycle)
		}
		if s.Committed < prev {
			t.Fatalf("committed went backwards at sample %d", i)
		}
		prev = s.Committed
	}
	last := samples[len(samples)-1]
	if last.Committed == 0 {
		t.Fatal("final sample shows no committed instructions")
	}
	if rec.TotalEvents() == 0 {
		t.Fatal("no pipeline events recorded with TraceUops")
	}
}
