package sim

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/emu"
	"repro/internal/graph"
	"repro/internal/isa"
	"repro/internal/program"
)

// genSlicedLoop generates a random parallel loop in the virtual ISA: each
// iteration is an independent slice that reads in[i], runs a random DAG of
// ALU operations with random data-dependent branches (all reconverging
// inside the slice), and writes out[i]. A reduce-prefixed accumulator sums
// a per-iteration value. This is the §4.1 software contract by
// construction, so baseline and every selective-flush configuration must
// produce identical final memory.
func genSlicedLoop(rng *graph.RNG, n int, sliced bool) (*Workload, uint64) {
	l := program.NewLayout()
	in := make([]uint32, n)
	for i := range in {
		in[i] = uint32(rng.Next())
	}
	inB := l.AllocU32(n, in)
	outB := l.AllocU32(n, nil)
	accB := l.AllocU64(1, nil)

	b := program.NewBuilder("randloop")
	rI, rN, rIn, rOut, rAccA := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	rAcc := b.Reg()
	rX, rY, rT := b.Reg(), b.Reg(), b.Reg()

	b.Li(rI, 0)
	b.Li(rN, int64(n))
	b.Li(rIn, int64(inB))
	b.Li(rOut, int64(outB))
	b.Li(rAccA, int64(accB))
	b.Li(rAcc, 0)
	b.Label("loop")
	b.Bge(rI, rN, "done")
	b.SliceStart(sliced)
	b.LdX32(rX, rIn, rI, 2)
	b.Mov(rY, rX)

	// Random body: a few blocks separated by data-dependent branches
	// that skip forward within the slice.
	blocks := 2 + int(rng.Next()%3)
	for bi := 0; bi < blocks; bi++ {
		label := fmt.Sprintf("blk%d", bi)
		b.AndI(rT, rX, 1<<(rng.Next()%8))
		if rng.Next()&1 == 0 {
			b.Beq(rT, isa.R0, label)
		} else {
			b.Bne(rT, isa.R0, label)
		}
		ops := 1 + int(rng.Next()%4)
		for o := 0; o < ops; o++ {
			switch rng.Next() % 5 {
			case 0:
				b.AddI(rY, rY, int64(rng.Next()%97))
			case 1:
				b.XorI(rY, rY, int64(rng.Next()%1024))
			case 2:
				b.MulI(rY, rY, int64(rng.Next()%7+1))
			case 3:
				b.ShrI(rY, rY, int64(rng.Next()%5))
			default:
				b.Add(rY, rY, rX)
			}
		}
		b.Label(label)
	}

	b.StX32(rOut, rI, 2, rY)
	if sliced {
		b.Reduce()
	}
	b.Add(rAcc, rAcc, rY)
	b.SliceEnd(sliced)
	b.AddI(rI, rI, 1)
	b.Jmp("loop")
	b.Label("done")
	b.SliceFence(sliced)
	b.St64(rAccA, 0, rAcc)
	b.Halt()

	return &Workload{
		Name:  "randloop",
		Progs: []*isa.Program{b.Build()},
		Mem:   l.Image(),
	}, accB
}

// TestRandomProgramEquivalence is the central whole-system invariant: for
// random sliced programs, the baseline core, the selective-flush core, a
// block-partitioned ROB, a tiny FRQ, a tiny reservation, and the oracle
// predictor all commit the same instruction count and produce bit-identical
// final memory.
func TestRandomProgramEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		rng := graph.NewRNG(seed)
		n := 50 + int(rng.Next()%100)

		type variant struct {
			name   string
			sliced bool
			tweak  func(*Config)
		}
		variants := []variant{
			{"baseline", false, nil},
			{"sliced", true, nil},
			{"blocked8", true, func(c *Config) { c.Core.ROBBlockSize = 8 }},
			{"frq2", true, func(c *Config) { c.Core.FRQSize = 2 }},
			{"reserve1", true, func(c *Config) { c.Core.Reserve = 1 }},
			{"oracle", true, func(c *Config) { c.Core.Predictor = "oracle" }},
			{"wpmem", true, func(c *Config) { c.Core.WrongPathMemAccess = true }},
		}

		var refMem []byte
		var refCommit uint64
		for i, v := range variants {
			// Fresh workload per variant: memory is mutated in place.
			wrng := graph.NewRNG(seed)
			w, _ := genSlicedLoop(wrng, n, v.sliced)
			cfg := DefaultConfig()
			cfg.Core.SelectiveFlush = v.sliced
			cfg.CheckIndependence = true
			cfg.MaxCycles = 100_000_000
			if v.tweak != nil {
				v.tweak(&cfg)
			}
			res, err := Run(cfg, w)
			if err != nil {
				t.Logf("seed %d variant %s: %v", seed, v.name, err)
				return false
			}
			if i == 0 {
				refMem = w.Mem
				refCommit = res.Total.Committed
				continue
			}
			if !bytes.Equal(refMem, w.Mem) {
				t.Logf("seed %d variant %s: memory diverged", seed, v.name)
				return false
			}
			if res.Total.Committed != refCommit {
				t.Logf("seed %d variant %s: committed %d != %d",
					seed, v.name, res.Total.Committed, refCommit)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 12}
	if testing.Short() {
		cfg.MaxCount = 3
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestRandomProgramFunctionalMatch: the timing simulator's final memory
// matches a pure functional run of the same program.
func TestRandomProgramFunctionalMatch(t *testing.T) {
	f := func(seed uint64) bool {
		rng := graph.NewRNG(seed)
		n := 30 + int(rng.Next()%60)

		wf, _ := genSlicedLoop(graph.NewRNG(seed), n, true)
		m := emu.New(wf.Progs[0], wf.Mem)
		if _, err := m.Run(0); err != nil {
			return false
		}

		wt, _ := genSlicedLoop(graph.NewRNG(seed), n, true)
		cfg := DefaultConfig()
		cfg.Core.SelectiveFlush = true
		cfg.MaxCycles = 100_000_000
		if _, err := Run(cfg, wt); err != nil {
			return false
		}
		return bytes.Equal(wf.Mem, wt.Mem)
	}
	cfg := &quick.Config{MaxCount: 10}
	if testing.Short() {
		cfg.MaxCount = 3
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestDeterministicTiming: the simulator is cycle-deterministic.
func TestDeterministicTiming(t *testing.T) {
	run := func() int64 {
		w, _ := genSlicedLoop(graph.NewRNG(7), 120, true)
		cfg := DefaultConfig()
		cfg.Core.SelectiveFlush = true
		res, err := Run(cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic: %d vs %d cycles", a, b)
	}
}
