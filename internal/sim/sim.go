// Package sim drives whole-system simulations: it assembles cores, cache
// hierarchies, and the shared uncore; interleaves cores cycle by cycle;
// coordinates OpenMP-style barriers across all hardware threads; and
// collects the statistics the paper's figures report.
package sim

import (
	"context"
	"fmt"
	"os"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/flight"
	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/uncore"
)

// MemConfig sizes the cache hierarchy. The default (ScaledMemConfig) is
// the paper's Table 1 hierarchy scaled down ~8× so that the scaled-down
// input graphs keep the paper's footprint-to-LLC ratio (misses in the LLC
// at the paper's 45-70% rate); Table1MemConfig is the full-size original.
type MemConfig struct {
	L1ISize, L1IWays, L1ILatency int
	L1DSize, L1DWays, L1DLatency int
	L2Size, L2Ways, L2Latency    int
	MSHRs                        int

	Uncore uncore.Config

	// Prefetchers: a stride prefetcher at L1D and a next-line
	// prefetcher at L2 (the paper's Fig. 7 discussion references the
	// data prefetcher).
	StridePrefetch   bool
	NextLinePrefetch bool
}

// Table1MemConfig is the full-size hierarchy of the paper's Table 1,
// shared resources scaled to the given core count as §5.2 prescribes.
func Table1MemConfig(cores int) MemConfig {
	return MemConfig{
		L1ISize: 32 << 10, L1IWays: 8, L1ILatency: 1,
		L1DSize: 32 << 10, L1DWays: 8, L1DLatency: 4,
		L2Size: 1 << 20, L2Ways: 16, L2Latency: 14,
		MSHRs: 10,
		Uncore: uncore.Config{
			Cores:            cores,
			LLCPerCore:       1408 << 10, // 1.375 MB
			LLCWays:          11,
			LLCLatency:       30,
			MeshHopLatency:   2,
			MemLatency:       150,                        // ≈50 ns at 3 GHz
			MemBytesPerCycle: 38.4 / 28 * float64(cores), // 115.2 GB/s at 3 GHz, per §5.2 scaling
			LLCMSHRs:         32 * cores,
		},
		StridePrefetch:   true,
		NextLinePrefetch: true,
	}
}

// ScaledMemConfig shrinks the hierarchy so that the scaled-down benchmark
// inputs exercise the paper's regime — per-vertex property arrays larger
// than the LLC (45-70% LLC miss rate on the indirect accesses), memory
// latency-bound rather than bandwidth-bound (DRAM bus under ~40% busy).
// See DESIGN.md's calibration notes.
func ScaledMemConfig(cores int) MemConfig {
	m := Table1MemConfig(cores)
	m.L1ISize = 8 << 10
	m.L1DSize = 4 << 10
	m.L2Size = 8 << 10
	m.L2Ways = 8
	m.Uncore.LLCPerCore = 16 << 10
	m.Uncore.LLCWays = 8
	m.Uncore.MemBytesPerCycle = 8 * float64(cores)
	return m
}

// DefaultWatchdogCycles is the no-commit watchdog threshold used when
// Config.WatchdogCycles is zero.
const DefaultWatchdogCycles = 1_000_000

// paranoidFF, set via SFSIM_PARANOID=1, steps supposedly idle windows
// cycle-by-cycle and panics if a core does anything — a debugging aid for
// NextWake's completeness, too slow for regular use.
var paranoidFF = os.Getenv("SFSIM_PARANOID") == "1"

// Config is a whole-system configuration.
type Config struct {
	Core  core.Config
	Mem   MemConfig
	Cores int
	// MaxCycles aborts runaway simulations.
	MaxCycles int64
	// WatchdogCycles aborts a run (with a diagnostic dump) when no core
	// commits an instruction for this many consecutive cycles. 0 selects
	// DefaultWatchdogCycles; negative values fail validation.
	WatchdogCycles int64
	// CheckIndependence turns on the emulator's slice-discipline
	// checker (slower; for tests).
	CheckIndependence bool
	// Recorder, when non-nil, receives timeline samples (every
	// Recorder.Interval cycles) and the cores' pipeline events — the
	// opt-in flight recorder of internal/flight. Nil costs one pointer
	// check per cycle and changes no results.
	Recorder *flight.Recorder
	// Ctx, when non-nil, lets the caller cancel a run in progress: the
	// driver loop polls Ctx.Done() every ctxCheckIters iterations
	// (alongside its other per-iteration obligations — watchdog,
	// MaxCycles, timeline sampling) and returns an error wrapping
	// Ctx.Err(). Polling changes no simulated state, so results stay
	// byte-identical whether or not a context is attached.
	Ctx context.Context
	// Replay, when non-nil, feeds the core's frontend from a captured
	// instruction trace (internal/trace) instead of stepping the
	// functional emulator — the capture-once/simulate-many decoupling of
	// the paper's Pin + Sniper split. Results are byte-identical to a
	// live run of the same workload. Replay is restricted to
	// single-hardware-thread configurations (a multicore emu-step
	// interleaving is timing-dependent through shared-memory atomics, so
	// a per-thread trace would not be config-invariant) and is
	// incompatible with CheckIndependence (the checker lives in the live
	// emulator).
	Replay *trace.Trace
}

// DefaultConfig is a single-core scaled configuration.
func DefaultConfig() Config {
	return Config{
		Core:           core.DefaultConfig(),
		Mem:            ScaledMemConfig(1),
		Cores:          1,
		MaxCycles:      2_000_000_000,
		WatchdogCycles: DefaultWatchdogCycles,
	}
}

// Workload is a runnable program set: one program per hardware thread
// (cores × SMT), sharing one memory image.
type Workload struct {
	Name string
	// Progs has one program per hardware thread. With a single entry
	// and multiple threads, the entry is shared (every thread runs the
	// same code — only correct if the program partitions work by
	// thread itself, which our kernels do via distinct programs
	// instead; see internal/kernels).
	Progs []*isa.Program
	Mem   []byte
	// Check validates the final memory image against a host-computed
	// reference (optional).
	Check func(mem []byte) error
}

// Result carries per-core and aggregate statistics.
type Result struct {
	Cycles  int64
	Total   core.Stats
	PerCore []core.Stats
	// CacheStats snapshots selected hierarchy counters.
	L1DMissRate float64
	LLCMissRate float64
	L2MissRate  float64
	// DRAMLines counts memory line transfers; DRAMBusy is the fraction
	// of total cycles the memory bus was transferring.
	DRAMLines uint64
	DRAMBusy  float64
	// Access and miss counts per level, aggregated across every core's
	// private hierarchy (the LLC is shared).
	L1DAccesses uint64
	L1DMisses   uint64
	L2Accesses  uint64
	L2Misses    uint64
	LLCAccesses uint64
	LLCMisses   uint64
}

// ctxCheckIters is how many driver-loop iterations elapse between
// context-cancellation polls. Iterations (not cycles) are the unit of
// wall-clock work here — idle fast-forward can jump thousands of cycles
// in one iteration — so this bounds cancellation latency to ~a
// millisecond of simulation regardless of configuration. A nil receive
// channel never fires, so runs without a context pay one counter
// increment.
const ctxCheckIters = 1024

// lane is one simulation in flight: the assembled cores and hierarchy
// plus the driver loop's cursor state. Run is newLane + step-until-done +
// finish; RunBatch interleaves several single-thread lanes, each holding
// a view over one shared trace decode. The split changes nothing about
// what a step does — step() is the body of Run's historical driver loop,
// verbatim.
type lane struct {
	cfg Config
	w   *Workload

	cores []*core.Core
	hiers []*cache.Hierarchy
	llc   *cache.Cache
	dram  *cache.Memory

	watchdog  int64
	maxCycles int64
	rec       *flight.Recorder
	tl        *timeline
	ctxDone   <-chan struct{}

	iters           int64
	now             int64
	lastCommit      uint64
	lastCommitCycle int64
}

// newLane validates the configuration and assembles cores, hierarchies
// and the uncore. fes, when non-nil, supplies one prebuilt frontend per
// hardware thread (RunBatch's trace views); otherwise frontends come from
// cfg.Replay or a live emulator as before.
func newLane(cfg Config, w *Workload, fes []emu.Frontend) (*lane, error) {
	threadsTotal := cfg.Cores * cfg.Core.SMT
	if len(w.Progs) != threadsTotal {
		return nil, fmt.Errorf("sim: workload %s has %d programs for %d hardware threads",
			w.Name, len(w.Progs), threadsTotal)
	}
	if fes != nil && len(fes) != threadsTotal {
		return nil, fmt.Errorf("sim: workload %s has %d prebuilt frontends for %d hardware threads",
			w.Name, len(fes), threadsTotal)
	}

	watchdog := cfg.WatchdogCycles
	if watchdog == 0 {
		watchdog = DefaultWatchdogCycles
	} else if watchdog < 0 {
		return nil, fmt.Errorf("sim: WatchdogCycles must be positive, got %d", cfg.WatchdogCycles)
	}

	llc, dram := uncore.Build(cfg.Mem.Uncore)
	hc := cache.HierConfig{
		L1I: cache.Config{Name: "l1i", SizeBytes: cfg.Mem.L1ISize, Ways: cfg.Mem.L1IWays,
			HitLatency: cfg.Mem.L1ILatency, MSHRs: cfg.Mem.MSHRs},
		L1D: cache.Config{Name: "l1d", SizeBytes: cfg.Mem.L1DSize, Ways: cfg.Mem.L1DWays,
			HitLatency: cfg.Mem.L1DLatency, MSHRs: cfg.Mem.MSHRs,
			StridePrefetch: cfg.Mem.StridePrefetch},
		L2: cache.Config{Name: "l2", SizeBytes: cfg.Mem.L2Size, Ways: cfg.Mem.L2Ways,
			HitLatency: cfg.Mem.L2Latency, MSHRs: 2 * cfg.Mem.MSHRs,
			NextLinePrefetch: cfg.Mem.NextLinePrefetch},
	}

	if cfg.Replay != nil {
		if threadsTotal != 1 {
			return nil, fmt.Errorf("sim: workload %s: trace replay supports exactly one hardware thread, got %d",
				w.Name, threadsTotal)
		}
		if cfg.CheckIndependence {
			return nil, fmt.Errorf("sim: workload %s: trace replay is incompatible with CheckIndependence",
				w.Name)
		}
	}

	// All frontends share the workload's memory image.
	mem := w.Mem
	cfg.Core.Recorder = cfg.Recorder
	cores := make([]*core.Core, cfg.Cores)
	hiers := make([]*cache.Hierarchy, cfg.Cores)
	ti := 0
	for i := range cores {
		lfes := make([]emu.Frontend, cfg.Core.SMT)
		for j := range lfes {
			if fes != nil {
				lfes[j] = fes[ti]
			} else if cfg.Replay != nil {
				r, err := trace.NewReplay(cfg.Replay, w.Progs[ti], mem)
				if err != nil {
					return nil, fmt.Errorf("sim: workload %s: %w", w.Name, err)
				}
				lfes[j] = r
			} else {
				m := emu.New(w.Progs[ti], mem)
				m.CheckIndependence = cfg.CheckIndependence
				lfes[j] = emu.AsFrontend(m)
			}
			ti++
		}
		hiers[i] = cache.NewHierarchy(hc, llc, dram)
		c, err := core.NewCoreFrontends(i, cfg.Core, hiers[i], lfes)
		if err != nil {
			return nil, err
		}
		cores[i] = c
	}

	maxCycles := cfg.MaxCycles
	if maxCycles <= 0 {
		maxCycles = 2_000_000_000
	}

	rec := cfg.Recorder
	var tl *timeline
	if rec != nil && rec.Interval > 0 {
		tl = newTimeline(rec, cfg.Cores)
	}

	var ctxDone <-chan struct{}
	if cfg.Ctx != nil {
		ctxDone = cfg.Ctx.Done()
	}

	return &lane{
		cfg: cfg, w: w,
		cores: cores, hiers: hiers, llc: llc, dram: dram,
		watchdog: watchdog, maxCycles: maxCycles,
		rec: rec, tl: tl, ctxDone: ctxDone,
	}, nil
}

// step advances the simulation by one driver-loop iteration (one cycle,
// or an idle fast-forward window). It returns finished=true when every
// core is done; an error aborts the run (cancellation, MaxCycles,
// watchdog).
func (l *lane) step() (finished bool, err error) {
	cfg := &l.cfg
	w := l.w
	cores := l.cores
	rec := l.rec

	l.now++
	if l.iters++; l.iters%ctxCheckIters == 0 && l.ctxDone != nil {
		select {
		case <-l.ctxDone:
			return false, fmt.Errorf("sim: workload %s canceled at cycle %d: %w",
				w.Name, l.now, cfg.Ctx.Err())
		default:
		}
	}
	if l.now > l.maxCycles {
		return false, fmt.Errorf("sim: workload %s exceeded %d cycles", w.Name, l.maxCycles)
	}
	// Deadlock watchdog: no commit anywhere for a long time.
	var committed uint64
	for _, c := range cores {
		committed += c.Stats().Committed
	}
	if committed != l.lastCommit {
		l.lastCommit, l.lastCommitCycle = committed, l.now
	} else if l.now-l.lastCommitCycle > l.watchdog {
		return false, fmt.Errorf("sim: workload %s deadlocked at cycle %d:\n%s",
			w.Name, l.now, deadlockDump(l.now, cores, rec))
	}
	if l.tl != nil && l.now%rec.Interval == 0 {
		l.tl.sample(l.now, cores, l.hiers, l.llc)
	}
	done := true
	for _, c := range cores {
		if !c.Done() {
			c.Cycle(l.now)
			done = false
		}
	}
	if done {
		return true, nil
	}
	releaseBarriers(cores)

	// Idle fast-forward: jump over cycle spans where no core can make
	// progress (all waiting on timed events such as memory fills).
	// The jump lands one cycle before the earliest wake source so the
	// boundary cycle executes normally, and is capped so that every
	// per-cycle obligation of this loop still happens on schedule: the
	// next timeline sample, the watchdog firing cycle, and the
	// MaxCycles abort. Barriers need no cap — releaseBarriers ran
	// above, so a post-release wake is already visible to NextWake.
	// Cores replicate the skipped cycles' statistics exactly
	// (core.SkipTo), keeping results byte-identical to per-cycle
	// stepping.
	if !cfg.Core.ForceCycleAccurate {
		wake := int64(1) << 62
		live := false
		for _, c := range cores {
			if c.Done() {
				continue
			}
			live = true
			if nw := c.NextWake(); nw < wake {
				wake = nw
			}
		}
		if !live {
			// Every core finished during this iteration; the next
			// loop pass will observe it and break. Jumping here
			// would inflate the final cycle count.
			return false, nil
		}
		if paranoidFF && wake > l.now+1 {
			for _, c := range cores {
				if !c.Done() {
					c.Cycle(l.now + 1)
					if c.LastCycleActive() {
						panic(fmt.Sprintf("paranoid: core active at %d though wake=%d\n%s", l.now+1, wake, c.DumpState()))
					}
				}
			}
			l.now++
			return false, nil
		}
		target := wake - 1
		if l.tl != nil {
			if next := l.now - l.now%rec.Interval + rec.Interval; next-1 < target {
				target = next - 1
			}
		}
		if deadline := l.lastCommitCycle + l.watchdog; deadline < target {
			target = deadline
		}
		if l.maxCycles < target {
			target = l.maxCycles
		}
		if target > l.now {
			// Cancellation check before committing the jump: a single
			// fast-forward can cover an arbitrarily long idle window
			// (a slow-memory stall runs to tens of millions of
			// cycles), and a run with few active cycles may finish
			// before the iteration counter ever reaches its polling
			// interval — so a canceled caller must not be carried
			// across the window by the counter-based poll alone.
			// Like that poll, this changes no simulated state.
			if l.ctxDone != nil && target-l.now >= ctxCheckIters {
				select {
				case <-l.ctxDone:
					return false, fmt.Errorf("sim: workload %s canceled at cycle %d: %w",
						w.Name, l.now, cfg.Ctx.Err())
				default:
				}
			}
			for _, c := range cores {
				if !c.Done() {
					c.SkipTo(target)
				}
			}
			l.now = target
		}
	}
	return false, nil
}

// finish runs the end-of-simulation checks and assembles the Result.
func (l *lane) finish() (*Result, error) {
	// Every core must have returned every microarchitectural resource:
	// leaks here mean a recovery path lost track of a uop even though the
	// run "finished". Cheap (runs once), so always on.
	for _, c := range l.cores {
		if err := c.CheckQuiescent(); err != nil {
			return nil, fmt.Errorf("sim: workload %s not quiescent: %w", l.w.Name, err)
		}
	}

	if l.w.Check != nil {
		if err := l.w.Check(l.w.Mem); err != nil {
			return nil, fmt.Errorf("sim: workload %s output check failed: %w", l.w.Name, err)
		}
	}

	res := &Result{Cycles: l.now}
	for _, c := range l.cores {
		s := *c.Stats()
		res.PerCore = append(res.PerCore, s)
		res.Total.Add(&s)
	}
	res.Total.Cycles = l.now
	collectCacheStats(res, l.hiers, l.llc, l.dram, l.now)
	return res, nil
}

// Run simulates the workload to completion and returns statistics.
func Run(cfg Config, w *Workload) (*Result, error) {
	l, err := newLane(cfg, w, nil)
	if err != nil {
		return nil, err
	}
	for {
		finished, err := l.step()
		if err != nil {
			return nil, err
		}
		if finished {
			break
		}
	}
	return l.finish()
}

// collectCacheStats fills Result's cache counters, aggregating accesses
// and misses across every core's private hierarchy (miss rates are
// computed on the aggregated counts, not core 0's).
func collectCacheStats(res *Result, hiers []*cache.Hierarchy, llc *cache.Cache, dram *cache.Memory, cycles int64) {
	for _, h := range hiers {
		l1d, l2 := h.L1D.Stats(), h.L2.Stats()
		res.L1DAccesses += l1d.Accesses
		res.L1DMisses += l1d.Misses
		res.L2Accesses += l2.Accesses
		res.L2Misses += l2.Misses
	}
	if res.L1DAccesses > 0 {
		res.L1DMissRate = float64(res.L1DMisses) / float64(res.L1DAccesses)
	}
	if res.L2Accesses > 0 {
		res.L2MissRate = float64(res.L2Misses) / float64(res.L2Accesses)
	}
	ls := llc.Stats()
	res.LLCAccesses = ls.Accesses
	res.LLCMisses = ls.Misses
	res.LLCMissRate = ls.MissRate()
	res.DRAMLines = dram.Accesses()
	res.DRAMBusy = float64(dram.Accesses()) * dram.CyclesPerLine / float64(cycles)
}

// releaseBarriers implements the global OpenMP barrier: when every
// unfinished hardware thread is waiting at its barrier, release them all.
func releaseBarriers(cores []*core.Core) {
	waiting := 0
	live := 0
	for _, c := range cores {
		for i := 0; i < c.Threads(); i++ {
			if c.ThreadDone(i) {
				continue
			}
			live++
			if c.BarrierWaiting(i) {
				waiting++
			}
		}
	}
	if live == 0 || waiting != live {
		return
	}
	for _, c := range cores {
		for i := 0; i < c.Threads(); i++ {
			if !c.ThreadDone(i) {
				c.ReleaseBarrier(i)
			}
		}
	}
}
