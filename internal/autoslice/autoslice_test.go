package autoslice

import (
	"fmt"
	"testing"

	"repro/internal/emu"
	"repro/internal/graph"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/sim"
)

// buildLoop builds the canonical parallel loop (Listing 1 shape) without
// any slice annotations: out[i] = f(in[i]) with a data-dependent branch.
func buildLoop(n int, seed uint64) (*isa.Program, []byte, uint64, []uint32) {
	rng := graph.NewRNG(seed)
	in := make([]uint32, n)
	for i := range in {
		in[i] = uint32(rng.Next())
	}
	l := program.NewLayout()
	inB := l.AllocU32(n, in)
	outB := l.AllocU32(n, nil)

	b := program.NewBuilder("plainloop")
	rI, rN, rIn, rOut := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	rX, rT, rY := b.Reg(), b.Reg(), b.Reg()
	b.Li(rI, 0)
	b.Li(rN, int64(n))
	b.Li(rIn, int64(inB))
	b.Li(rOut, int64(outB))
	b.Label("loop")
	b.Bge(rI, rN, "done")
	b.LdX32(rX, rIn, rI, 2)
	b.AndI(rT, rX, 1)
	b.Beq(rT, isa.R0, "even")
	b.MulI(rY, rX, 3)
	b.Jmp("store")
	b.Label("even")
	b.AddI(rY, rX, 7)
	b.Label("store")
	b.StX32(rOut, rI, 2, rY)
	b.AddI(rI, rI, 1)
	b.Jmp("loop")
	b.Label("done")
	b.Halt()
	return b.Build(), l.Image(), outB, in
}

func TestTransformFindsTheLoop(t *testing.T) {
	p, _, _, _ := buildLoop(16, 1)
	out, rep, err := Transform(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sliced) != 1 {
		t.Fatalf("sliced %d loops (rejected: %v)", len(rep.Sliced), rep.Rejected)
	}
	counts := map[isa.Op]int{}
	for _, in := range out.Code {
		counts[in.Op]++
	}
	if counts[isa.SliceStart] != 1 || counts[isa.SliceEnd] != 1 || counts[isa.SliceFence] != 1 {
		t.Fatalf("marker counts: %v", counts)
	}
}

func TestTransformPreservesSemantics(t *testing.T) {
	p, mem, outB, in := buildLoop(200, 2)
	out, _, err := Transform(p)
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(out, mem)
	m.CheckIndependence = true // the §4.1 contract must hold dynamically
	if _, err := m.Run(0); err != nil {
		t.Fatalf("auto-sliced program violates the slice contract: %v", err)
	}
	for i, x := range in {
		want := x + 7
		if x&1 != 0 {
			want = x * 3
		}
		if got := program.ReadU32(mem, outB+uint64(i)*4); got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestTransformedTimingBenefits(t *testing.T) {
	// The auto-annotated program should engage the selective-flush
	// machinery end to end.
	p, mem, _, _ := buildLoop(2000, 3)
	out, _, err := Transform(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.Core.SelectiveFlush = true
	res, err := sim.Run(cfg, &sim.Workload{Name: "auto", Progs: []*isa.Program{out}, Mem: mem})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.SliceRecoveries == 0 {
		t.Fatal("auto-sliced program never recovered selectively")
	}
}

func TestRejectLoopCarriedDependence(t *testing.T) {
	// acc += in[i]: the accumulator is loop-carried through the body, so
	// the loop must be rejected (it would need a reduce annotation).
	l := program.NewLayout()
	inB := l.AllocU32(8, []uint32{1, 2, 3, 4, 5, 6, 7, 8})
	b := program.NewBuilder("reduceloop")
	rI, rN, rIn, rAcc, rX := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.Li(rI, 0)
	b.Li(rN, 8)
	b.Li(rIn, int64(inB))
	b.Li(rAcc, 0)
	b.Label("loop")
	b.LdX32(rX, rIn, rI, 2)
	b.Add(rAcc, rAcc, rX)
	b.AddI(rI, rI, 1)
	b.Blt(rI, rN, "loop")
	b.St64(rIn, 0, rAcc)
	b.Halt()
	p := b.Build()
	out, rep, err := Transform(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sliced) != 0 {
		t.Fatalf("loop-carried reduction was sliced: %+v", rep.Sliced)
	}
	if len(rep.Rejected) == 0 {
		t.Fatal("no rejection reason recorded")
	}
	if fmt.Sprint(out.Code) != fmt.Sprint(p.Code) {
		t.Fatal("rejected transform still modified the code")
	}
}

func TestRejectEscapingBranch(t *testing.T) {
	// A break out of the loop body (to code past the back edge) makes
	// iterations control-dependent: reject.
	l := program.NewLayout()
	inB := l.AllocU32(8, []uint32{1, 2, 3, 0, 5, 6, 7, 8})
	b := program.NewBuilder("breakloop")
	rI, rN, rIn, rX := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.Li(rI, 0)
	b.Li(rN, 8)
	b.Li(rIn, int64(inB))
	b.Label("loop")
	b.LdX32(rX, rIn, rI, 2)
	b.Beq(rX, isa.R0, "out") // break
	b.StX32(rIn, rI, 2, rX)
	b.AddI(rI, rI, 1)
	b.Blt(rI, rN, "loop")
	b.Label("out")
	b.Halt()
	_, rep, err := Transform(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sliced) != 0 {
		t.Fatal("escaping-branch loop was sliced")
	}
}

func TestAlreadyAnnotatedRejected(t *testing.T) {
	b := program.NewBuilder("pre")
	b.SliceStart(true)
	b.SliceEnd(true)
	b.SliceFence(true)
	b.Halt()
	if _, _, err := Transform(b.Build()); err == nil {
		t.Fatal("annotated input accepted")
	}
}

func TestNestedLoopsInnermostOnly(t *testing.T) {
	// A two-level nest where only the inner body is independent: the
	// pass must not try to slice the outer loop (nesting is illegal).
	l := program.NewLayout()
	buf := l.AllocU32(64, nil)
	b := program.NewBuilder("nest")
	rI, rJ, rN, rBuf, rT := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.Li(rBuf, int64(buf))
	b.Li(rN, 8)
	b.Li(rI, 0)
	b.Label("outer")
	b.Li(rJ, 0)
	b.Label("inner")
	b.Mul(rT, rI, rN)
	b.Add(rT, rT, rJ)
	b.StX32(rBuf, rT, 2, rJ)
	b.AddI(rJ, rJ, 1)
	b.Blt(rJ, rN, "inner")
	b.AddI(rI, rI, 1)
	b.Blt(rI, rN, "outer")
	b.Halt()
	out, rep, err := Transform(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sliced) > 1 {
		t.Fatalf("sliced %d loops in a nest", len(rep.Sliced))
	}
	if err := isa.Validate(out); err != nil {
		t.Fatal(err)
	}
	m := emu.New(out, l.Image())
	m.CheckIndependence = true
	if _, err := m.Run(0); err != nil {
		t.Fatalf("nested transform broke the contract: %v", err)
	}
}
