// Package autoslice implements the paper's future-work direction
// (§7: "automatic insertion of slice instructions by the compiler"): a
// conservative static pass that finds parallel-loop bodies in an
// unannotated virtual-ISA program and inserts slice_start / slice_end /
// slice_fence around them.
//
// The analysis mirrors what an OpenMP-aware compiler knows statically:
//
//   - natural loops are found via back edges;
//   - the loop's induction "glue" (the iterator update feeding the
//     back-edge branch) is peeled off the candidate slice, exactly as the
//     paper's Listing 1 leaves instructions 9-10 outside the slice;
//   - register independence (§4.1's contract, footnote 1) is checked
//     conservatively: a register written inside the slice must never be
//     read outside it, and registers read inside the slice must be either
//     slice-local (written first), loop-invariant, or glue-owned;
//   - memory independence cannot be proven by this local pass — like the
//     paper, which relies on the programmer's `parallel for` assertion,
//     the caller is expected to validate candidates dynamically with the
//     emulator's independence checker (emu.Machine.CheckIndependence).
//
// Loops that fail any check are simply left unannotated; the pass never
// changes program semantics (slice instructions are architectural no-ops).
package autoslice

import (
	"fmt"

	"repro/internal/isa"
)

// Loop describes one sliced loop in the rewritten program.
type Loop struct {
	Head       int // first instruction of the loop body (original indices)
	SliceStart int // original index where the slice begins (after exit tests)
	BackEdge   int // the bottom branch/jump returning to Head
	SliceEnd   int // original index where the slice ends (glue starts)
	Exit       int // original index of the first instruction after the loop
}

// Report summarizes what the pass did.
type Report struct {
	Sliced   []Loop
	Rejected []string // human-readable reasons per rejected candidate
}

// Transform returns a copy of p with slice instructions inserted around
// every provably independent innermost loop body, plus a report. The input
// program must not already contain slice instructions.
func Transform(p *isa.Program) (*isa.Program, *Report, error) {
	for pc, in := range p.Code {
		if in.Op.IsSlice() {
			return nil, nil, fmt.Errorf("autoslice: program already annotated at pc %d", pc)
		}
	}
	rep := &Report{}
	loops := findLoops(p)

	// Innermost-only, non-overlapping (slices cannot nest, §4.1).
	loops = dropNested(loops)

	var accepted []Loop
	for _, lp := range loops {
		cand, reason := analyze(p, lp)
		if reason != "" {
			rep.Rejected = append(rep.Rejected,
				fmt.Sprintf("loop @%d..%d: %s", lp.head, lp.back, reason))
			continue
		}
		accepted = append(accepted, cand)
	}
	if len(accepted) == 0 {
		return p, rep, nil
	}
	out := insert(p, accepted)
	rep.Sliced = accepted
	if err := isa.Validate(out); err != nil {
		return nil, nil, fmt.Errorf("autoslice: produced invalid program: %w", err)
	}
	return out, rep, nil
}

type rawLoop struct {
	head, back int
}

// findLoops locates natural loops via back edges (a control transfer to a
// lower-or-equal address).
func findLoops(p *isa.Program) []rawLoop {
	var out []rawLoop
	for pc, in := range p.Code {
		if in.Op.IsControl() && int(in.Imm) <= pc {
			out = append(out, rawLoop{head: int(in.Imm), back: pc})
		}
	}
	return out
}

// dropNested keeps only innermost loops and drops overlapping candidates.
func dropNested(loops []rawLoop) []rawLoop {
	var out []rawLoop
	for i, a := range loops {
		inner := true
		for j, b := range loops {
			if i == j {
				continue
			}
			// b strictly inside a: a is not innermost.
			if b.head >= a.head && b.back <= a.back && (b.head > a.head || b.back < a.back) {
				inner = false
				break
			}
		}
		if inner {
			out = append(out, a)
		}
	}
	// Remove overlapping survivors (identical ranges keep one).
	var flat []rawLoop
	for _, a := range out {
		dup := false
		for _, b := range flat {
			if a.head <= b.back && b.head <= a.back {
				dup = true
				break
			}
		}
		if !dup {
			flat = append(flat, a)
		}
	}
	return flat
}

// analyze decides whether the loop body can be sliced and where the glue
// (induction suffix) begins. It returns a reason string when rejecting.
func analyze(p *isa.Program, lp rawLoop) (Loop, string) {
	body := p.Code[lp.head : lp.back+1]

	// Control containment: every transfer inside the body must target
	// within [head, back+1] (falling out via the back-edge's fall-through
	// is the loop exit).
	for i, in := range body {
		pc := lp.head + i
		if in.Op == isa.Barrier || in.Op == isa.Halt {
			return Loop{}, "body contains barrier/halt"
		}
		if in.Op.IsControl() && pc != lp.back {
			if int(in.Imm) < lp.head || int(in.Imm) > lp.back+1 {
				return Loop{}, fmt.Sprintf("branch at %d leaves the body", pc)
			}
		}
	}

	// Top glue: leading exit tests (top-test loops with a bottom jump,
	// the Listing 1 shape) stay outside the slice; their targets are the
	// loop exit.
	sliceStart := lp.head
	exit := lp.back + 1
	for sliceStart < lp.back {
		in := p.Code[sliceStart]
		if in.Op.IsBranch() && (int(in.Imm) < lp.head || int(in.Imm) > lp.back) {
			exit = int(in.Imm)
			sliceStart++
			continue
		}
		break
	}

	// Bottom glue: the backward closure of the loop-control condition
	// registers over the body suffix — the induction computation that
	// must stay outside the slice (Listing 1's iterator). The loop
	// condition lives either on the back edge (bottom-test loops) or in
	// the peeled top exit tests (top-test loops with a bottom jump).
	glueRegs := map[isa.Reg]bool{}
	seed := func(in isa.Inst) {
		if !in.Op.IsBranch() {
			return
		}
		if in.Src1 != isa.R0 {
			glueRegs[in.Src1] = true
		}
		if in.Src2 != isa.R0 {
			glueRegs[in.Src2] = true
		}
	}
	seed(p.Code[lp.back])
	for i := lp.head; i < sliceStart; i++ {
		seed(p.Code[i])
	}
	glueStart := lp.back
	for i := lp.back - 1; i >= sliceStart; i-- {
		in := p.Code[i]
		if in.Op.HasDst() && glueRegs[in.Dst] && !in.Op.IsMem() {
			// Part of the induction chain: absorb its sources too.
			if in.Src1 != isa.R0 {
				glueRegs[in.Src1] = true
			}
			if in.Src2 != isa.R0 && in.Op != isa.AddI && in.Op != isa.ShlI &&
				in.Op != isa.ShrI && in.Op != isa.MulI {
				glueRegs[in.Src2] = true
			}
			glueStart = i
			continue
		}
		break
	}
	if glueStart <= sliceStart {
		return Loop{}, "body is all induction glue"
	}
	slice := p.Code[sliceStart:glueStart]

	// No control transfer inside the slice may target outside it;
	// jumping to glueStart is the common "continue" pattern.
	for i, in := range slice {
		if in.Op.IsControl() {
			if int(in.Imm) < sliceStart || int(in.Imm) > glueStart {
				return Loop{}, fmt.Sprintf("branch at %d escapes the slice", sliceStart+i)
			}
		}
	}

	// Register discipline.
	writtenIn := map[isa.Reg]bool{}
	writtenBefore := map[isa.Reg]bool{}
	for _, in := range slice {
		reads := []isa.Reg{in.Src1, in.Src2}
		if in.Op.IsStore() || in.Op.IsAtomic() {
			reads = append(reads, in.Val)
		}
		for _, r := range reads {
			if r == isa.R0 || writtenBefore[r] {
				continue
			}
			if glueRegs[r] {
				continue // reading the iterator is allowed
			}
			// Must be loop-invariant: never written in the body.
			for _, bin := range body {
				if bin.Op.HasDst() && bin.Dst == r {
					return Loop{}, fmt.Sprintf("register %v is loop-carried into the slice", r)
				}
			}
		}
		if in.Op.HasDst() && in.Dst != isa.R0 {
			writtenIn[in.Dst] = true
			writtenBefore[in.Dst] = true
		}
	}
	// Slice-written registers must be dead outside the slice: no read
	// anywhere outside (the §4.2 requirement that slice renamings are
	// dead at slice_end). Reads in other iterations of this same slice
	// are covered because the slice always writes before reading them.
	for pc, in := range p.Code {
		if pc >= sliceStart && pc < glueStart {
			continue
		}
		reads := []isa.Reg{in.Src1, in.Src2}
		if in.Op.IsStore() || in.Op.IsAtomic() {
			reads = append(reads, in.Val)
		}
		for _, r := range reads {
			if r != isa.R0 && writtenIn[r] {
				return Loop{}, fmt.Sprintf("slice-written register %v read at pc %d", r, pc)
			}
		}
	}

	return Loop{Head: lp.head, SliceStart: sliceStart, BackEdge: lp.back,
		SliceEnd: glueStart, Exit: exit}, ""
}

// insert rewrites the program with slice_start at each loop head,
// slice_end before the glue, and slice_fence at the loop exit, remapping
// every control target.
func insert(p *isa.Program, loops []Loop) *isa.Program {
	type ins struct {
		at int // original index the marker is inserted before
		op isa.Op
	}
	var inss []ins
	for _, lp := range loops {
		inss = append(inss, ins{lp.SliceStart, isa.SliceStart})
		inss = append(inss, ins{lp.SliceEnd, isa.SliceEnd})
		inss = append(inss, ins{lp.Exit, isa.SliceFence})
	}

	// newIndex maps an original index to its rewritten position: count
	// insertions at or before it. Branch targets use "insert before", so
	// a target equal to an insertion point lands after start markers —
	// except the loop head, where the back edge must re-enter *at* the
	// slice_start... Semantically both work (slice_start is the first
	// body instruction); re-entering at slice_start keeps iterations
	// uniform, so targets map to the position of the first marker
	// inserted at that index.
	shift := func(idx int, includeAt bool) int {
		s := 0
		for _, i := range inss {
			if i.at < idx || (includeAt && i.at == idx) {
				s++
			}
		}
		return idx + s
	}

	var code []isa.Inst
	for pc := 0; pc <= len(p.Code); pc++ {
		for _, i := range inss {
			if i.at == pc {
				code = append(code, isa.Inst{Op: i.op})
			}
		}
		if pc == len(p.Code) {
			break
		}
		in := p.Code[pc]
		if in.Op.IsControl() {
			in.Imm = int64(shift(int(in.Imm), false))
		}
		code = append(code, in)
	}

	labels := make(map[string]int, len(p.Labels))
	for name, at := range p.Labels {
		labels[name] = shift(at, false)
	}
	return &isa.Program{Name: p.Name + "+autoslice", Code: code, Labels: labels}
}
