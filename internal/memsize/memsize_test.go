package memsize

import "testing"

type flat struct {
	A, B int64
	C    [4]uint32
}

type nested struct {
	Name string
	Data []uint64
	Next *nested
	Tags map[string]int32
}

func TestFlatStruct(t *testing.T) {
	v := flat{}
	if got, want := Of(v), int64(32); got != want {
		t.Fatalf("Of(flat) = %d, want %d", got, want)
	}
	// A pointer adds the pointee.
	if got, want := Of(&v), int64(8+32); got != want {
		t.Fatalf("Of(*flat) = %d, want %d", got, want)
	}
}

func TestSliceBackingArray(t *testing.T) {
	s := make([]uint64, 10, 100)
	got := Of(s)
	want := int64(24 + 100*8) // header + full backing array
	if got != want {
		t.Fatalf("Of([]uint64 cap 100) = %d, want %d", got, want)
	}
}

func TestSharedBackingCountedOnce(t *testing.T) {
	base := make([]uint64, 1000)
	v := struct{ A, B []uint64 }{base, base[:500]}
	got := Of(v)
	want := int64(2*24 + 1000*8)
	if got != want {
		t.Fatalf("shared backing array: Of = %d, want %d", got, want)
	}
}

func TestNestedAndCyclic(t *testing.T) {
	a := &nested{
		Name: "0123456789",
		Data: make([]uint64, 100),
		Tags: map[string]int32{"xy": 1},
	}
	a.Next = a // cycle must terminate

	got := Of(a)
	// At minimum: struct itself + string bytes + slice backing array.
	min := int64(10 + 100*8)
	if got < min {
		t.Fatalf("Of(cyclic nested) = %d, want >= %d", got, min)
	}
	// The cycle contributes nothing extra: a second walk of the same
	// value must agree (deterministic), and dropping the cycle must not
	// change the payload beyond the struct's own size once.
	a2 := &nested{Name: a.Name, Data: a.Data, Tags: a.Tags}
	if d := Of(a) - Of(a2); d != 0 {
		t.Fatalf("self-cycle changed size by %d", d)
	}
}

func TestUnexportedFields(t *testing.T) {
	type hidden struct {
		data []uint64
	}
	v := &hidden{data: make([]uint64, 500)}
	got := Of(v)
	if got < 500*8 {
		t.Fatalf("Of over unexported slice = %d, want >= %d", got, 500*8)
	}
}

func TestInterfaceAndMap(t *testing.T) {
	var v any = make([]byte, 1<<16)
	if got := Of(v); got < 1<<16 {
		t.Fatalf("Of(any([]byte 64K)) = %d, want >= %d", got, 1<<16)
	}
	m := map[string][]uint64{"k": make([]uint64, 100)}
	if got := Of(m); got < 100*8 {
		t.Fatalf("Of(map with big value) = %d, want >= %d", got, 100*8)
	}
}
