// Package memsize estimates the resident heap footprint of a value:
// the value itself plus every allocation reachable from it through
// pointers, slices, maps, strings, and interfaces. Cache budgets
// (internal/memo) charge entries by this estimate, so it must track the
// dominant terms — large backing arrays in particular — rather than the
// shallow struct size, which undercounts by orders of magnitude for
// results carrying per-sample timelines or captured traces.
//
// The walk is an estimate, not an accounting of the allocator: it
// ignores allocator size-class rounding and map bucket geometry beyond
// a per-entry constant, and slices sharing a backing array are charged
// once (keyed by the array's base pointer). Shared pointers are counted
// once per walk.
package memsize

import (
	"reflect"
	"sync"
)

// Of returns an estimate of the bytes v keeps resident: the top-level
// value plus all reachable heap payload.
func Of(v any) int64 {
	if v == nil {
		return 0
	}
	rv := reflect.ValueOf(v)
	w := walker{seen: make(map[uintptr]bool)}
	return int64(rv.Type().Size()) + w.payload(rv)
}

// mapEntryOverhead approximates the per-entry bucket overhead of a Go
// map beyond the key and element bytes themselves.
const mapEntryOverhead = 16

type walker struct {
	// seen records base pointers of visited heap blocks so shared
	// structure is charged once and cycles terminate.
	seen map[uintptr]bool
}

// payload returns the heap bytes reachable from rv, excluding rv's own
// inline representation (which the caller has already counted as part
// of the enclosing value).
func (w *walker) payload(rv reflect.Value) int64 {
	switch rv.Kind() {
	case reflect.Pointer:
		if rv.IsNil() || w.visited(rv.Pointer()) {
			return 0
		}
		e := rv.Elem()
		return int64(e.Type().Size()) + w.payload(e)

	case reflect.Slice:
		if rv.IsNil() || w.visited(rv.Pointer()) {
			return 0
		}
		et := rv.Type().Elem()
		n := int64(rv.Cap()) * int64(et.Size())
		if !hasPointers(et) {
			return n // fast path: no element walk for flat data
		}
		for i := 0; i < rv.Len(); i++ {
			n += w.payload(rv.Index(i))
		}
		return n

	case reflect.String:
		return int64(rv.Len())

	case reflect.Map:
		if rv.IsNil() || w.visited(rv.Pointer()) {
			return 0
		}
		kt, et := rv.Type().Key(), rv.Type().Elem()
		n := int64(rv.Len()) * (int64(kt.Size()) + int64(et.Size()) + mapEntryOverhead)
		if hasPointers(kt) || hasPointers(et) {
			it := rv.MapRange()
			for it.Next() {
				n += w.payload(it.Key()) + w.payload(it.Value())
			}
		}
		return n

	case reflect.Interface:
		if rv.IsNil() {
			return 0
		}
		e := rv.Elem()
		n := w.payload(e)
		if e.Kind() != reflect.Pointer { // non-pointer values are boxed
			n += int64(e.Type().Size())
		}
		return n

	case reflect.Struct:
		if !hasPointers(rv.Type()) {
			return 0
		}
		var n int64
		for i := 0; i < rv.NumField(); i++ {
			n += w.payload(rv.Field(i))
		}
		return n

	case reflect.Array:
		if !hasPointers(rv.Type().Elem()) {
			return 0
		}
		var n int64
		for i := 0; i < rv.Len(); i++ {
			n += w.payload(rv.Index(i))
		}
		return n

	default:
		// Scalars are fully inline; chans and funcs are charged as bare
		// references (their internals are runtime-owned).
		return 0
	}
}

func (w *walker) visited(p uintptr) bool {
	if w.seen[p] {
		return true
	}
	w.seen[p] = true
	return false
}

var ptrFreeCache sync.Map // reflect.Type -> bool

// hasPointers reports whether values of type t can reference heap
// memory. Pointer-free types let the walker skip per-element traversal
// of large slices and arrays.
func hasPointers(t reflect.Type) bool {
	if v, ok := ptrFreeCache.Load(t); ok {
		return v.(bool)
	}
	var has bool
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Uintptr, reflect.Float32, reflect.Float64,
		reflect.Complex64, reflect.Complex128:
		has = false
	case reflect.Array:
		has = hasPointers(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if hasPointers(t.Field(i).Type) {
				has = true
				break
			}
		}
	default:
		has = true
	}
	ptrFreeCache.Store(t, has)
	return has
}
