package blp

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"
	"unsafe"

	"repro/internal/core"
	"repro/internal/memo"
)

// Runner executes simulations concurrently with memoization. Requests are
// deduplicated — in flight and completed — by the canonical Options key
// (Options.Key), so sweeps that revisit a configuration (every figure
// re-measures the per-benchmark baseline, for instance) simulate it
// exactly once; concurrency is bounded by a worker budget. blp.Run stays
// unmemoized for callers that need a fresh simulation per call.
//
// Completed results are retained in a sharded LRU bounded by a byte
// budget (DefaultCacheBudget unless NewRunnerCache chose otherwise), so
// an arbitrarily long sweep no longer grows memory without limit: cold
// configurations are evicted least-recently-used first and re-simulate
// if requested again. Errors are never retained — a failed or canceled
// run is retried by the next request for its key.
//
// Results returned for duplicate requests alias the same *Result; treat
// them as read-only.
type Runner struct {
	jobs  int
	sem   chan struct{}
	cache *memo.Cache[*Result]

	mu        sync.Mutex
	progress  io.Writer
	simulated int // simulations actually executed
	cached    int // requests served by an in-flight or completed duplicate
	inFlight  int // simulations currently executing

	// runFn stands in for blp.RunContext in tests; nil means RunContext.
	runFn func(Options) (*Result, error)
}

// DefaultCacheBudget is the result-cache byte budget of NewRunner:
// roughly 64k resident results — far beyond any figure sweep — while
// still bounding an unattended long-running service.
const DefaultCacheBudget int64 = 64 << 20

// runnerShards spreads the result cache over this many LRU shards.
const runnerShards = 16

// NewRunner returns a Runner executing at most jobs simulations at once
// (jobs <= 0 selects runtime.NumCPU()) with the default result-cache
// budget.
func NewRunner(jobs int) *Runner { return NewRunnerCache(jobs, DefaultCacheBudget) }

// NewRunnerCache is NewRunner with an explicit result-cache byte budget;
// cacheBytes <= 0 makes the cache unbounded (the pre-PR-5 behaviour).
func NewRunnerCache(jobs int, cacheBytes int64) *Runner {
	if jobs <= 0 {
		jobs = runtime.NumCPU()
	}
	return &Runner{
		jobs:  jobs,
		sem:   make(chan struct{}, jobs),
		cache: memo.New[*Result](runnerShards, cacheBytes, resultCost),
	}
}

// resultCost estimates the resident bytes a memoized result pins: the
// key string, the Result struct, and its per-core stats slice.
func resultCost(key string, r *Result) int64 {
	c := int64(len(key)) + int64(unsafe.Sizeof(Result{}))
	if r != nil {
		c += int64(len(r.PerCore)) * int64(unsafe.Sizeof(core.Stats{}))
	}
	return c
}

// Jobs returns the worker budget.
func (r *Runner) Jobs() int { return r.jobs }

// SetProgress directs a one-line-per-completed-run progress report
// (elapsed time plus simulated/cached/in-flight counts) to w; nil
// disables it. Call before submitting work.
func (r *Runner) SetProgress(w io.Writer) {
	r.mu.Lock()
	r.progress = w
	r.mu.Unlock()
}

// RunnerStats counts a Runner's activity so far.
type RunnerStats struct {
	// Simulated is the number of simulations actually executed.
	Simulated int
	// Cached is the number of requests answered by a duplicate —
	// joined in flight or already completed.
	Cached int
	// InFlight is the number of simulations executing right now.
	InFlight int
}

// Stats returns the Runner's current counters.
func (r *Runner) Stats() RunnerStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RunnerStats{Simulated: r.simulated, Cached: r.cached, InFlight: r.inFlight}
}

// CacheStats describes the Runner's result cache: request outcomes and
// the resident set against its byte budget.
type CacheStats struct {
	// Hits were answered by a completed resident result; Joined attached
	// to an identical in-flight simulation (singleflight); Misses
	// simulated. Hits+Joined equals RunnerStats.Cached.
	Hits, Joined, Misses int64
	// Evictions counts results dropped to keep the cache under budget.
	Evictions int64
	// Entries/Bytes are the resident set; Budget is the byte limit
	// (0 = unbounded).
	Entries int
	Bytes   int64
	Budget  int64
}

// CacheStats returns a snapshot of the result cache.
func (r *Runner) CacheStats() CacheStats {
	s := r.cache.Stats()
	return CacheStats{
		Hits: s.Hits, Joined: s.Joined, Misses: s.Misses,
		Evictions: s.Evictions, Entries: s.Entries, Bytes: s.Bytes, Budget: s.Budget,
	}
}

// Run is a memoized, concurrency-bounded blp.Run: the first request for a
// canonical Options key simulates (waiting for a worker slot); duplicates
// block until that simulation finishes and share its result. Safe for
// concurrent use.
//
// Options.Flight is excluded from the memoization key: a request served
// by a duplicate performs no simulation, so its recorder stays empty (a
// notice is written to the progress writer, if set).
func (r *Runner) Run(o Options) (*Result, error) {
	return r.RunContext(context.Background(), o)
}

// RunContext is Run honoring ctx: a canceled context aborts the wait for
// a worker slot, stops an in-progress simulation at its next cancellation
// check (mid-run, via the sim driver's watchdog loop), and detaches a
// duplicate request from the in-flight run it joined (which keeps running
// for its other waiters). The error satisfies errors.Is against
// ctx.Err(). A canceled run is never cached.
func (r *Runner) RunContext(ctx context.Context, o Options) (*Result, error) {
	res, _, err := r.RunCached(ctx, o)
	return res, err
}

// RunCached is RunContext reporting additionally whether the result was
// shared — answered by a resident cached result or by joining a
// duplicate in-flight simulation — rather than freshly simulated.
func (r *Runner) RunCached(ctx context.Context, o Options) (res *Result, shared bool, err error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	res, err, shared = r.cache.Do(ctx, o.Key(), func() (*Result, error) {
		return r.execute(ctx, o)
	})
	if shared {
		r.mu.Lock()
		r.cached++
		w := r.progress
		r.mu.Unlock()
		if w != nil && o.Flight != nil {
			fmt.Fprintf(w, "run %-32s served from cache; its flight recorder stays empty\n",
				describeRun(o))
		}
	}
	return res, shared, err
}

// execute performs one simulation under the worker-slot semaphore. The
// deferred recover converts a simulation panic into an error (returned to
// every singleflight waiter via the cache) and guarantees the slot and
// counters are restored, so a panicking run can neither strand duplicate
// requesters nor leak worker capacity.
func (r *Runner) execute(ctx context.Context, o Options) (res *Result, err error) {
	select {
	case r.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	r.mu.Lock()
	r.inFlight++
	r.mu.Unlock()

	start := time.Now()
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("blp: simulation %s panicked: %v", describeRun(o), p)
		}
		elapsed := time.Since(start)
		r.mu.Lock()
		r.inFlight--
		r.simulated++
		w := r.progress
		r.mu.Unlock()
		<-r.sem
		if w != nil {
			st := r.Stats()
			fmt.Fprintf(w, "run %-32s %8s  [%d simulated, %d cached, %d in flight]\n",
				describeRun(o), elapsed.Round(time.Millisecond),
				st.Simulated, st.Cached, st.InFlight)
		}
	}()

	if run := r.runFn; run != nil {
		return run(o)
	}
	return RunContext(ctx, o)
}

// RunAll executes every request concurrently (each bounded by the worker
// budget) and returns the results in input order — the deterministic
// fan-out primitive the figure harness is built on. If any run fails, the
// first error in input order is returned after all runs finish.
func (r *Runner) RunAll(opts []Options) ([]*Result, error) {
	return r.RunAllContext(context.Background(), opts)
}

// RunAllContext is RunAll honoring ctx (see RunContext).
func (r *Runner) RunAllContext(ctx context.Context, opts []Options) ([]*Result, error) {
	res := make([]*Result, len(opts))
	errs := make([]error, len(opts))
	var wg sync.WaitGroup
	for i := range opts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res[i], errs[i] = r.RunContext(ctx, opts[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// describeRun renders a compact human-readable run identity for the
// progress line: benchmark, placement, scale, and any non-default knobs.
func describeRun(o Options) string {
	n := o.normalized()
	s := fmt.Sprintf("%s/%s s%d", n.Benchmark, n.Mode, n.Scale)
	d := core.DefaultConfig()
	if n.Predictor != d.Predictor {
		s += " " + n.Predictor
	}
	if n.Cores > 1 {
		s += fmt.Sprintf(" c%d", n.Cores)
	}
	if n.SMT > 1 {
		s += fmt.Sprintf(" smt%d", n.SMT)
	}
	if n.Reserve != d.Reserve {
		s += fmt.Sprintf(" r%d", zv(n.Reserve))
	}
	if n.ROBBlockSize != d.ROBBlockSize {
		s += fmt.Sprintf(" b%d", zv(n.ROBBlockSize))
	}
	if n.FRQSize != d.FRQSize {
		s += fmt.Sprintf(" frq%d", zv(n.FRQSize))
	}
	return s
}
