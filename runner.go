package blp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/memo"
	"repro/internal/memsize"
	"repro/internal/store"
	"repro/internal/trace"
)

// Runner executes simulations concurrently with memoization. Requests are
// deduplicated — in flight and completed — by the canonical Options key
// (Options.Key), so sweeps that revisit a configuration (every figure
// re-measures the per-benchmark baseline, for instance) simulate it
// exactly once; concurrency is bounded by a worker budget. blp.Run stays
// unmemoized for callers that need a fresh simulation per call.
//
// Completed results are retained in a sharded LRU bounded by a byte
// budget (DefaultCacheBudget unless NewRunnerCache chose otherwise), so
// an arbitrarily long sweep no longer grows memory without limit: cold
// configurations are evicted least-recently-used first and re-simulate
// if requested again. Errors are never retained — a failed or canceled
// run is retried by the next request for its key.
//
// Results returned for duplicate requests alias the same *Result; treat
// them as read-only.
type Runner struct {
	jobs  int
	sem   chan struct{}
	cache *memo.Cache[*Result]
	// traces memoizes captured instruction traces by Options.TraceKey —
	// the workload-identity sub-key of Options.Key, with every timing
	// knob excluded — so a sweep varying only timing configuration runs
	// the functional emulator once per workload and replays the captured
	// stream for every configuration.
	traces *memo.Cache[*trace.Trace]
	// store, when non-nil (NewRunnerStore), is the durable second level
	// behind both caches: consulted on memo miss before simulating,
	// written through on compute, spilled to on LRU eviction.
	store *store.Store

	mu          sync.Mutex
	progress    io.Writer
	simulated   int // simulations actually executed
	cached      int // requests served by an in-flight or completed duplicate
	inFlight    int // simulations currently executing
	captured    int // functional emulator executions that captured a trace
	replayed    int // simulations fed from a captured trace
	batched     int // replayed simulations executed inside a batch group
	batchGroups int // batched-replay groups executed
	// batchHist counts executed groups by lane count (size → groups).
	batchHist map[int]int

	// segStats aggregates the wrong-path segment caches attached to every
	// replayed trace (trace.EnsureSegs); written by replays concurrently,
	// so it is atomic and lives outside mu.
	segStats trace.SegStats

	// Capture policy state (see wantCapture): traceHint counts live
	// RunAllContext batches that contain two or more distinct
	// configurations of the TraceKey, traceSeen records TraceKeys met
	// exactly once on the single-run path.
	traceHint map[string]int
	traceSeen map[string]bool

	// runFn stands in for blp.RunContext in tests; nil means RunContext.
	runFn func(context.Context, Options) (*Result, error)
}

// DefaultCacheBudget is the result-cache byte budget of NewRunner:
// roughly 64k resident results — far beyond any figure sweep — while
// still bounding an unattended long-running service.
const DefaultCacheBudget int64 = 64 << 20

// DefaultTraceCacheBudget bounds the captured-trace cache. Traces are
// orders of magnitude larger than results (roughly 10 bytes per
// committed instruction), so they get their own budget rather than
// competing with results for the same bytes; at the default benchmark
// scales one trace runs a few dozen megabytes.
const DefaultTraceCacheBudget int64 = 256 << 20

// runnerShards spreads the result cache over this many LRU shards.
const runnerShards = 16

// traceShards spreads the trace cache; few, because entries are few and
// large (a per-workload, not per-config, population).
const traceShards = 4

// NewRunner returns a Runner executing at most jobs simulations at once
// (jobs <= 0 selects runtime.NumCPU()) with the default result-cache
// budget.
func NewRunner(jobs int) *Runner { return NewRunnerCache(jobs, DefaultCacheBudget) }

// NewRunnerCache is NewRunner with an explicit result-cache byte budget;
// cacheBytes <= 0 makes the cache unbounded (the pre-PR-5 behaviour).
// The trace cache keeps its default budget either way.
func NewRunnerCache(jobs int, cacheBytes int64) *Runner {
	if jobs <= 0 {
		jobs = runtime.NumCPU()
	}
	return &Runner{
		jobs:      jobs,
		sem:       make(chan struct{}, jobs),
		cache:     memo.New[*Result](runnerShards, cacheBytes, resultCost),
		traces:    memo.New[*trace.Trace](traceShards, DefaultTraceCacheBudget, traceCost),
		traceHint: make(map[string]int),
		traceSeen: make(map[string]bool),
		batchHist: make(map[int]int),
	}
}

// resultCost estimates the resident bytes a memoized result pins: the
// key string plus everything reachable from the Result — per-core stats
// and any heap payload nested inside them. The previous shallow
// estimate (struct size plus the PerCore slice header math) undercounted
// as soon as Stats grew reference fields, which let the "bounded" cache
// exceed its budget unnoticed; memsize walks the real footprint.
func resultCost(key string, r *Result) int64 {
	return int64(len(key)) + memsize.Of(r)
}

// traceCost is resultCost for captured traces, dominated by the record
// streams' backing arrays — plus the trace's wrong-path segment cache,
// which memsize cannot see through the atomic pointer. Segments accrete
// after insertion as replays fork wrong paths, so the Runner reprices the
// trace's entry (memo.Cache.Reprice) after every replayed run; together
// these keep the trace budget a bound on total resident replay state,
// not just the record streams.
func traceCost(key string, t *trace.Trace) int64 {
	return int64(len(key)) + memsize.Of(t) + t.SegBytes()
}

// Jobs returns the worker budget.
func (r *Runner) Jobs() int { return r.jobs }

// SetProgress directs a one-line-per-completed-run progress report
// (elapsed time plus simulated/cached/in-flight counts) to w; nil
// disables it. Call before submitting work.
func (r *Runner) SetProgress(w io.Writer) {
	r.mu.Lock()
	r.progress = w
	r.mu.Unlock()
}

// RunnerStats counts a Runner's activity so far.
type RunnerStats struct {
	// Simulated is the number of simulations actually executed.
	Simulated int
	// Cached is the number of requests answered by a duplicate —
	// joined in flight or already completed.
	Cached int
	// InFlight is the number of simulations executing right now.
	InFlight int
	// Captured counts functional-emulator executions performed to
	// capture a trace; Replayed counts simulations fed from a captured
	// trace instead of the live emulator. The emulator therefore ran
	// Simulated - Replayed + Captured times; a timing sweep over one
	// workload drives Replayed toward Simulated with Captured stuck at 1.
	Captured int
	Replayed int
	// Batched counts replayed simulations executed inside a batch group —
	// lanes of a sim.RunBatch sharing one trace decode — and BatchGroups
	// counts the groups. Batched <= Replayed always; the difference ran
	// the serial replay path. BatchHistogram breaks groups down by size.
	Batched     int
	BatchGroups int
	// SegHits / SegMisses / SegInvalidated aggregate the wrong-path
	// segment caches attached to replayed traces: a hit replayed a
	// memoized wrong-path segment with zero shadow emulation, a miss
	// recorded one, and an invalidation rejected a stale segment whose
	// read-set fingerprint no longer matched the forking replay's state.
	// SegBypassed counts forks after a trace's cache disabled itself
	// (invalidations persistently swamping hits — data-dependent wrong
	// paths that cannot be memoized profitably).
	SegHits        int64
	SegMisses      int64
	SegInvalidated int64
	SegBypassed    int64
}

// Stats returns the Runner's current counters.
func (r *Runner) Stats() RunnerStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RunnerStats{
		Simulated: r.simulated, Cached: r.cached, InFlight: r.inFlight,
		Captured: r.captured, Replayed: r.replayed,
		Batched: r.batched, BatchGroups: r.batchGroups,
		SegHits:        r.segStats.Hits.Load(),
		SegMisses:      r.segStats.Misses.Load(),
		SegInvalidated: r.segStats.Invalidated.Load(),
		SegBypassed:    r.segStats.Bypassed.Load(),
	}
}

// BatchHistogram returns a copy of the batch group size histogram: lane
// count → number of groups executed at that size.
func (r *Runner) BatchHistogram() map[int]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := make(map[int]int, len(r.batchHist))
	for k, v := range r.batchHist {
		h[k] = v
	}
	return h
}

// CacheStats describes the Runner's result cache: request outcomes and
// the resident set against its byte budget.
type CacheStats struct {
	// Hits were answered by a completed resident result; Joined attached
	// to an identical in-flight simulation (singleflight) and shared its
	// successful result; Misses simulated. Only successful shares count
	// on either side, so Hits+Joined equals RunnerStats.Cached exactly —
	// a waiter canceled mid-join or a shared failure inflates neither.
	Hits, Joined, Misses int64
	// Evictions counts results dropped to keep the cache under budget.
	Evictions int64
	// Entries/Bytes are the resident set; Budget is the byte limit
	// (0 = unbounded).
	Entries int
	Bytes   int64
	Budget  int64

	// Trace describes the captured-trace cache, keyed by
	// Options.TraceKey: a Hit or Joined means a simulation reused a
	// workload's trace instead of re-running the functional emulator.
	Trace TraceCacheStats

	// Store describes the durable second level (nil without one): a Hit
	// is a memo miss answered from disk without simulating — the warm-
	// start path — and Invalidated counts stale-version or corrupt
	// objects dropped instead of served.
	Store *StoreStats
}

// StoreStats mirrors store.Stats for CacheStats (see CacheStats.Store).
type StoreStats struct {
	Hits, Misses, Writes, Invalidated, Evictions int64
	Entries                                      int
	Bytes                                        int64
	Budget                                       int64
}

// TraceCacheStats describes the Runner's trace cache (see
// CacheStats.Trace).
type TraceCacheStats struct {
	Hits, Joined, Misses int64
	Evictions            int64
	Entries              int
	Bytes                int64
	Budget               int64
}

// CacheStats returns a snapshot of the result and trace caches.
func (r *Runner) CacheStats() CacheStats {
	s := r.cache.Stats()
	t := r.traces.Stats()
	cs := CacheStats{
		Hits: s.Hits, Joined: s.Joined, Misses: s.Misses,
		Evictions: s.Evictions, Entries: s.Entries, Bytes: s.Bytes, Budget: s.Budget,
		Trace: TraceCacheStats{
			Hits: t.Hits, Joined: t.Joined, Misses: t.Misses,
			Evictions: t.Evictions, Entries: t.Entries, Bytes: t.Bytes, Budget: t.Budget,
		},
	}
	if r.store != nil {
		st := r.store.Stats()
		cs.Store = &StoreStats{
			Hits: st.Hits, Misses: st.Misses, Writes: st.Writes,
			Invalidated: st.Invalidated, Evictions: st.Evictions,
			Entries: st.Entries, Bytes: st.Bytes, Budget: st.Budget,
		}
	}
	return cs
}

// Run is a memoized, concurrency-bounded blp.Run: the first request for a
// canonical Options key simulates (waiting for a worker slot); duplicates
// block until that simulation finishes and share its result. Safe for
// concurrent use.
//
// Options.Flight is excluded from the memoization key: a request served
// by a duplicate performs no simulation, so its recorder stays empty (a
// notice is written to the progress writer, if set).
func (r *Runner) Run(o Options) (*Result, error) {
	return r.RunContext(context.Background(), o)
}

// RunContext is Run honoring ctx: a canceled context aborts the wait for
// a worker slot, stops an in-progress simulation at its next cancellation
// check (mid-run, via the sim driver's watchdog loop), and detaches a
// duplicate request from the in-flight run it joined (which keeps running
// for its other waiters). The error satisfies errors.Is against
// ctx.Err(). A canceled run is never cached.
func (r *Runner) RunContext(ctx context.Context, o Options) (*Result, error) {
	res, _, err := r.RunCached(ctx, o)
	return res, err
}

// RunCached is RunContext reporting additionally whether the result was
// shared — answered by a resident cached result or by joining a
// duplicate in-flight simulation — rather than freshly simulated. A
// share that produced no result — the joined computation errored, or
// this waiter canceled out of the join — reports shared=true alongside
// the error but is not counted as cached (nothing was served), so
// CacheStats.Hits+Joined always equals RunnerStats.Cached.
func (r *Runner) RunCached(ctx context.Context, o Options) (res *Result, shared bool, err error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	res, err, shared = r.cache.Do(ctx, o.Key(), func() (*Result, error) {
		return r.execute(ctx, o)
	})
	if shared && err == nil {
		r.mu.Lock()
		r.cached++
		w := r.progress
		r.mu.Unlock()
		if w != nil && o.Flight != nil {
			fmt.Fprintf(w, "run %-32s served from cache; its flight recorder stays empty\n",
				describeRun(o))
		}
	}
	return res, shared, err
}

// execute answers one memo-missed request: first from the durable store
// (the warm-start path — no worker slot, no simulation, nothing counted
// in Simulated), then by simulating under the worker-slot semaphore.
// The deferred recover converts a simulation panic into an error
// (returned to every singleflight waiter via the cache) and guarantees
// the slot and counters are restored, so a panicking run can neither
// strand duplicate requesters nor leak worker capacity.
func (r *Runner) execute(ctx context.Context, o Options) (res *Result, err error) {
	if res, ok := r.storeLoadResult(o.Key()); ok {
		return res, nil
	}
	select {
	case r.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	r.mu.Lock()
	r.inFlight++
	r.mu.Unlock()

	start := time.Now()
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("blp: simulation %s panicked: %v", describeRun(o), p)
		}
		elapsed := time.Since(start)
		r.mu.Lock()
		r.inFlight--
		r.simulated++
		w := r.progress
		r.mu.Unlock()
		<-r.sem
		if w != nil {
			st := r.Stats()
			fmt.Fprintf(w, "run %-32s %8s  [%d simulated, %d cached, %d in flight]\n",
				describeRun(o), elapsed.Round(time.Millisecond),
				st.Simulated, st.Cached, st.InFlight)
		}
	}()

	res, err = r.simulate(ctx, o)
	if err == nil {
		r.storeSaveResult(o.Key(), res)
		r.ledgerResult(o, res, time.Since(start))
	}
	return res, err
}

// simulate performs the actual computation behind execute: the runFn
// test seam, or the real simulator fed live or from a captured trace.
func (r *Runner) simulate(ctx context.Context, o Options) (*Result, error) {
	if run := r.runFn; run != nil {
		return run(ctx, o)
	}

	// Trace-once/simulate-many: for replay-eligible configurations,
	// fetch (or capture, once per workload identity) the committed
	// instruction trace and feed the timing model from it. Ineligible
	// configurations — multithreaded, or with the independence checker
	// on — run the live emulator as before, and so does a workload with
	// no reuse in prospect (see wantCapture): the separate capture pass
	// plus trace residency only pays for itself when at least a second
	// timing configuration replays the stream. A trace already persisted
	// in the durable store overrides that bet — it is paid for, so a
	// restarted process replays it even for a one-shot request. Results
	// are byte-identical either way.
	n := o.normalized()
	if !replayEligible(n) {
		return runContext(ctx, o, nil)
	}
	tk := n.TraceKey()
	if _, ok := r.traces.Get(tk); !ok && !r.storeHasTrace(tk) && !r.wantCapture(tk) {
		return runContext(ctx, o, nil)
	}
	tr, err := r.fetchTrace(ctx, n)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.replayed++
	r.mu.Unlock()
	res, err := runContext(ctx, o, tr)
	// The replay may have grown the trace's wrong-path segment cache;
	// fold the new bytes into the trace cache's accounting (see
	// traceCost).
	r.traces.Reprice(tk)
	return res, err
}

// fetchTrace returns the workload's captured trace — from the memo cache,
// the durable store, or a fresh capture (singleflighted per TraceKey) —
// with the wrong-path segment cache attached, so every replay of the
// trace shares memoized segments and reports into the Runner's seg
// counters.
func (r *Runner) fetchTrace(ctx context.Context, n Options) (*trace.Trace, error) {
	tk := n.TraceKey()
	tr, terr, _ := r.traces.Do(ctx, tk, func() (*trace.Trace, error) {
		if t, ok := r.storeLoadTrace(tk); ok {
			return t, nil
		}
		capStart := time.Now()
		t, err := captureTrace(ctx, n)
		if err == nil {
			r.mu.Lock()
			r.captured++
			r.mu.Unlock()
			r.storeSaveTrace(tk, t)
			r.ledgerTrace(tk, t, time.Since(capStart))
		}
		return t, err
	})
	if terr != nil {
		return nil, terr
	}
	tr.EnsureSegs(0, &r.segStats)
	return tr, nil
}

// traceSeenCap bounds the first-sighting set; past it the history is
// simply forgotten (the policy is a heuristic — the worst case is one
// extra live run before a workload starts capturing again).
const traceSeenCap = 4096

// wantCapture decides whether a replay-eligible run whose trace is not
// resident should capture one, or stay on the live emulator. Capturing
// is a bet: it costs a separate functional pass plus trace residency,
// and pays only when further timing configurations of the same workload
// replay the stream. So capture when a live RunAllContext batch has
// promised reuse (traceHint), or on the second sighting of a TraceKey
// on the single-run path — a caller sweeping configurations one
// RunContext at a time pays one live run, then converges to replays.
// One-shot workloads (every point of a figure axis that varies the
// input) never capture and never displace hot traces from the cache.
func (r *Runner) wantCapture(tk string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.traceHint[tk] > 0 || r.traceSeen[tk] {
		return true
	}
	if len(r.traceSeen) >= traceSeenCap {
		r.traceSeen = make(map[string]bool)
	}
	r.traceSeen[tk] = true
	return false
}

// hintTraces registers the reuse a batch makes certain: every TraceKey
// shared by two or more distinct configurations in opts is marked for
// capture while the batch runs. Duplicate Options (same canonical Key)
// coalesce onto one simulation in the result cache, so they are counted
// once. The returned keys must be released with unhintTraces.
func (r *Runner) hintTraces(opts []Options) []string {
	byKey := make(map[string]bool)
	count := make(map[string]int)
	for _, o := range opts {
		n := o.normalized()
		if !replayEligible(n) {
			continue
		}
		if k := o.Key(); byKey[k] {
			continue
		} else {
			byKey[k] = true
		}
		count[n.TraceKey()]++
	}
	var keys []string
	r.mu.Lock()
	for tk, c := range count {
		if c >= 2 {
			r.traceHint[tk]++
			keys = append(keys, tk)
		}
	}
	r.mu.Unlock()
	return keys
}

// HintTraces registers the trace reuse a caller-managed batch makes
// certain, exactly as RunAllContext does for its own fan-outs: every
// workload shared by two or more distinct replay-eligible
// configurations in opts is marked for capture until the returned
// release function is called. Callers that fan out RunContext requests
// themselves (the serve layer's sweep endpoint, for instance) use this
// to get the same trace-once/simulate-many behaviour as a RunAll batch.
// release is idempotent-free: call it exactly once, after the batch.
func (r *Runner) HintTraces(opts []Options) (release func()) {
	keys := r.hintTraces(opts)
	return func() { r.unhintTraces(keys) }
}

func (r *Runner) unhintTraces(keys []string) {
	r.mu.Lock()
	for _, tk := range keys {
		if r.traceHint[tk]--; r.traceHint[tk] <= 0 {
			delete(r.traceHint, tk)
		}
	}
	r.mu.Unlock()
}

// RunAll executes every request concurrently (each bounded by the worker
// budget) and returns the results in input order — the deterministic
// fan-out primitive the figure harness is built on. If any run fails, the
// first error in input order is returned after all runs finish.
func (r *Runner) RunAll(opts []Options) ([]*Result, error) {
	return r.RunAllContext(context.Background(), opts)
}

// RunAllContext is RunAll honoring ctx (see RunContext), and fails
// fast: the first run to error cancels its siblings through a derived
// context, so a fan-out poisoned by one bad configuration does not keep
// burning worker slots on runs whose results will be discarded. The
// returned error is the first in input order that is not a cancellation
// induced by the failure itself.
func (r *Runner) RunAllContext(ctx context.Context, opts []Options) ([]*Result, error) {
	hinted := r.hintTraces(opts)
	defer r.unhintTraces(hinted)
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Batched replay: requests sharing a workload under distinct timing
	// configurations simulate as lanes of one sim.RunBatch (see batch.go);
	// member[i] == nil takes the ordinary memoized path.
	member := r.groupBatches(cctx, opts)
	res := make([]*Result, len(opts))
	errs := make([]error, len(opts))
	var wg sync.WaitGroup
	for i := range opts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if g := member[i]; g != nil {
				res[i], errs[i] = r.runGrouped(cctx, opts[i], g)
			} else {
				res[i], errs[i] = r.RunContext(cctx, opts[i])
			}
			if errs[i] != nil {
				cancel()
			}
		}(i)
	}
	wg.Wait()
	var induced error
	for _, err := range errs {
		if err == nil {
			continue
		}
		// With the caller's own context live, a cancellation can only be
		// collateral from the cancel() above; report the causing error
		// instead. If the caller's context is done, cancellations are
		// genuine and the first one is as good as any.
		if ctx.Err() == nil && errors.Is(err, context.Canceled) {
			if induced == nil {
				induced = err
			}
			continue
		}
		return nil, err
	}
	if induced != nil {
		return nil, induced
	}
	return res, nil
}

// describeRun renders a compact human-readable run identity for the
// progress line: benchmark, placement, scale, and any non-default knobs.
func describeRun(o Options) string {
	n := o.normalized()
	s := fmt.Sprintf("%s/%s s%d", n.Benchmark, n.Mode, n.Scale)
	d := core.DefaultConfig()
	if n.Predictor != d.Predictor {
		s += " " + n.Predictor
	}
	if n.Cores > 1 {
		s += fmt.Sprintf(" c%d", n.Cores)
	}
	if n.SMT > 1 {
		s += fmt.Sprintf(" smt%d", n.SMT)
	}
	if n.Reserve != d.Reserve {
		s += fmt.Sprintf(" r%d", zv(n.Reserve))
	}
	if n.ROBBlockSize != d.ROBBlockSize {
		s += fmt.Sprintf(" b%d", zv(n.ROBBlockSize))
	}
	if n.FRQSize != d.FRQSize {
		s += fmt.Sprintf(" frq%d", zv(n.FRQSize))
	}
	return s
}
