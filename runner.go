package blp

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
)

// Runner executes simulations concurrently with memoization. Requests are
// deduplicated — in flight and completed — by the canonical Options key
// (Options.Key), so sweeps that revisit a configuration (every figure
// re-measures the per-benchmark baseline, for instance) simulate it
// exactly once; concurrency is bounded by a worker budget. blp.Run stays
// unmemoized for callers that need a fresh simulation per call.
//
// Results returned for duplicate requests alias the same *Result; treat
// them as read-only.
type Runner struct {
	jobs int
	sem  chan struct{}

	mu        sync.Mutex
	calls     map[string]*runnerCall
	progress  io.Writer
	simulated int // simulations actually executed
	cached    int // requests served by an in-flight or completed duplicate
	inFlight  int // simulations currently executing

	// runFn stands in for blp.Run in tests; nil means Run.
	runFn func(Options) (*Result, error)
}

// runnerCall is one singleflight cell: the first requester of a key runs
// the simulation and closes done; every later requester waits on done and
// shares res/err.
type runnerCall struct {
	done chan struct{}
	res  *Result
	err  error
}

// NewRunner returns a Runner executing at most jobs simulations at once
// (jobs <= 0 selects runtime.NumCPU()).
func NewRunner(jobs int) *Runner {
	if jobs <= 0 {
		jobs = runtime.NumCPU()
	}
	return &Runner{
		jobs:  jobs,
		sem:   make(chan struct{}, jobs),
		calls: make(map[string]*runnerCall),
	}
}

// Jobs returns the worker budget.
func (r *Runner) Jobs() int { return r.jobs }

// SetProgress directs a one-line-per-completed-run progress report
// (elapsed time plus simulated/cached/in-flight counts) to w; nil
// disables it. Call before submitting work.
func (r *Runner) SetProgress(w io.Writer) {
	r.mu.Lock()
	r.progress = w
	r.mu.Unlock()
}

// RunnerStats counts a Runner's activity so far.
type RunnerStats struct {
	// Simulated is the number of simulations actually executed.
	Simulated int
	// Cached is the number of requests answered by a duplicate —
	// joined in flight or already completed.
	Cached int
	// InFlight is the number of simulations executing right now.
	InFlight int
}

// Stats returns the Runner's current counters.
func (r *Runner) Stats() RunnerStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RunnerStats{Simulated: r.simulated, Cached: r.cached, InFlight: r.inFlight}
}

// Run is a memoized, concurrency-bounded blp.Run: the first request for a
// canonical Options key simulates (waiting for a worker slot); duplicates
// block until that simulation finishes and share its result. Safe for
// concurrent use.
//
// Options.Flight is excluded from the memoization key: a request served
// by a duplicate performs no simulation, so its recorder stays empty (a
// notice is written to the progress writer, if set).
func (r *Runner) Run(o Options) (*Result, error) {
	key := o.Key()
	r.mu.Lock()
	if c, ok := r.calls[key]; ok {
		r.cached++
		w := r.progress
		r.mu.Unlock()
		if w != nil && o.Flight != nil {
			fmt.Fprintf(w, "run %-32s served from cache; its flight recorder stays empty\n",
				describeRun(o))
		}
		<-c.done
		return c.res, c.err
	}
	c := &runnerCall{done: make(chan struct{})}
	r.calls[key] = c
	r.mu.Unlock()

	r.execute(o, c)
	return c.res, c.err
}

// execute runs the simulation for a call cell the caller just installed in
// r.calls. Deferred cleanup guarantees that the semaphore slot is returned
// and c.done is closed even when the simulation panics — a panic must not
// strand duplicate requesters on c.done forever (it used to: the paths
// after the run were straight-line code). A panic is converted into an
// error shared by every waiter, so the whole sweep fails loudly instead of
// deadlocking.
func (r *Runner) execute(o Options, c *runnerCall) {
	r.sem <- struct{}{}
	r.mu.Lock()
	r.inFlight++
	r.mu.Unlock()

	start := time.Now()
	// LIFO defers: the recover-and-release runs first, so done is closed
	// (last) only after res/err and the counters are final.
	defer close(c.done)
	defer func() {
		if p := recover(); p != nil {
			c.res, c.err = nil, fmt.Errorf("blp: simulation %s panicked: %v", describeRun(o), p)
		}
		elapsed := time.Since(start)
		r.mu.Lock()
		r.inFlight--
		r.simulated++
		w := r.progress
		r.mu.Unlock()
		<-r.sem
		if w != nil {
			st := r.Stats()
			fmt.Fprintf(w, "run %-32s %8s  [%d simulated, %d cached, %d in flight]\n",
				describeRun(o), elapsed.Round(time.Millisecond),
				st.Simulated, st.Cached, st.InFlight)
		}
	}()

	run := r.runFn
	if run == nil {
		run = Run
	}
	c.res, c.err = run(o)
}

// RunAll executes every request concurrently (each bounded by the worker
// budget) and returns the results in input order — the deterministic
// fan-out primitive the figure harness is built on. If any run fails, the
// first error in input order is returned after all runs finish.
func (r *Runner) RunAll(opts []Options) ([]*Result, error) {
	res := make([]*Result, len(opts))
	errs := make([]error, len(opts))
	var wg sync.WaitGroup
	for i := range opts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res[i], errs[i] = r.Run(opts[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// describeRun renders a compact human-readable run identity for the
// progress line: benchmark, placement, scale, and any non-default knobs.
func describeRun(o Options) string {
	n := o.normalized()
	s := fmt.Sprintf("%s/%s s%d", n.Benchmark, n.Mode, n.Scale)
	d := core.DefaultConfig()
	if n.Predictor != d.Predictor {
		s += " " + n.Predictor
	}
	if n.Cores > 1 {
		s += fmt.Sprintf(" c%d", n.Cores)
	}
	if n.SMT > 1 {
		s += fmt.Sprintf(" smt%d", n.SMT)
	}
	if n.Reserve != d.Reserve {
		s += fmt.Sprintf(" r%d", zv(n.Reserve))
	}
	if n.ROBBlockSize != d.ROBBlockSize {
		s += fmt.Sprintf(" b%d", zv(n.ROBBlockSize))
	}
	if n.FRQSize != d.FRQSize {
		s += fmt.Sprintf(" frq%d", zv(n.FRQSize))
	}
	return s
}
