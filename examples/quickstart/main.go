// Quickstart: run one GAP kernel on the baseline core and on the
// selective-flush core, and report the speedup — the paper's headline
// experiment for a single benchmark.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	blp "repro"
)

func main() {
	const bench = "ms" // merge sort: the paper's most slice-friendly kernel

	fmt.Printf("running %s, baseline core...\n", bench)
	base, err := blp.Run(blp.Options{Benchmark: bench})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d cycles, IPC %.2f, %.1f branch MPKI\n",
		base.Cycles, base.IPC, base.Stats.MPKI())

	fmt.Printf("running %s with slice instructions + selective flush...\n", bench)
	sliced, err := blp.Run(blp.Options{Benchmark: bench, Mode: blp.SliceOuter})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d cycles, %d selective recoveries (conventional: %d)\n",
		sliced.Cycles, sliced.Stats.SliceRecoveries, sliced.Stats.ConvRecoveries)

	fmt.Printf("\nspeedup from selective flushing: %.3fx\n", blp.Speedup(base, sliced))

	oracle, err := blp.Run(blp.Options{Benchmark: bench, Predictor: "oracle"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("perfect branch prediction bound:  %.3fx\n", blp.Speedup(base, oracle))
}
