// Sortlab: the paper's merge-sort study (its strongest case for selective
// flushing) — compare plain SMT, slicing, and their combination on a
// single core, the shape of the paper's Fig. 11.
//
//	go run ./examples/sortlab
package main

import (
	"fmt"
	"log"

	blp "repro"
)

func run(o blp.Options) *blp.Result {
	r, err := blp.Run(o)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	const bench = "ms"
	base := run(blp.Options{Benchmark: bench})
	fmt.Printf("baseline: %d cycles (%.1f MPKI — sorting is mispredict-dense)\n\n",
		base.Cycles, base.Stats.MPKI())

	rows := []struct {
		name string
		o    blp.Options
	}{
		{"sliced", blp.Options{Benchmark: bench, Mode: blp.SliceOuter}},
		{"smt2", blp.Options{Benchmark: bench, SMT: 2}},
		{"smt2+sliced", blp.Options{Benchmark: bench, SMT: 2, Mode: blp.SliceOuter}},
		{"smt4", blp.Options{Benchmark: bench, SMT: 4}},
		{"smt4+sliced", blp.Options{Benchmark: bench, SMT: 4, Mode: blp.SliceOuter}},
		{"perfect bpred", blp.Options{Benchmark: bench, Predictor: "oracle"}},
	}
	fmt.Printf("%-14s %10s %9s %12s\n", "config", "cycles", "speedup", "recoveries")
	for _, r := range rows {
		res := run(r.o)
		fmt.Printf("%-14s %10d %8.3fx %12d\n",
			r.name, res.Cycles, blp.Speedup(base, res), res.Stats.SliceRecoveries)
	}
	fmt.Println("\nPaper finding (Fig. 11): SMT reduces the branch penalty by itself,")
	fmt.Println("but slicing composes with it — and for ms slicing can beat SMT.")
}
