// Autoslice: the paper's future-work direction (§7) — automatic insertion
// of slice instructions by the compiler. This example writes a plain
// (unannotated) parallel loop, lets the static pass find and annotate it,
// validates the §4.1 contract dynamically, and compares baseline vs
// auto-sliced timing.
//
//	go run ./examples/autoslice
package main

import (
	"fmt"
	"log"

	"repro/internal/autoslice"
	"repro/internal/emu"
	"repro/internal/graph"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/sim"
)

func buildPlain(n int) (*isa.Program, func() []byte) {
	rng := graph.NewRNG(77)
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = uint32(rng.Next())
	}
	build := func() []byte {
		l := program.NewLayout()
		l.AllocU32(n, vals)
		l.AllocU32(n, nil)
		return l.Image()
	}
	l := program.NewLayout()
	inB := l.AllocU32(n, vals)
	outB := l.AllocU32(n, nil)

	b := program.NewBuilder("plain")
	rI, rN, rIn, rOut := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	rX, rT, rY := b.Reg(), b.Reg(), b.Reg()
	b.Li(rI, 0)
	b.Li(rN, int64(n))
	b.Li(rIn, int64(inB))
	b.Li(rOut, int64(outB))
	b.Label("loop")
	b.Bge(rI, rN, "done")
	b.LdX32(rX, rIn, rI, 2)
	b.AndI(rT, rX, 3)
	b.Beq(rT, isa.R0, "skip")
	b.MulI(rY, rX, 5)
	b.XorI(rY, rY, 0x2a)
	b.StX32(rOut, rI, 2, rY)
	b.Label("skip")
	b.AddI(rI, rI, 1)
	b.Jmp("loop")
	b.Label("done")
	b.Halt()
	return b.Build(), build
}

func main() {
	const n = 30000
	plain, mem := buildPlain(n)

	annotated, rep, err := autoslice.Transform(plain)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("autoslice: %d loop(s) sliced, %d rejected\n", len(rep.Sliced), len(rep.Rejected))
	for _, lp := range rep.Sliced {
		fmt.Printf("  loop head @%d: slice [%d,%d), fence @%d\n",
			lp.Head, lp.SliceStart, lp.SliceEnd, lp.Exit)
	}

	// Dynamic validation of the §4.1 contract the pass claims.
	m := emu.New(annotated, mem())
	m.CheckIndependence = true
	if _, err := m.Run(0); err != nil {
		log.Fatalf("contract violated: %v", err)
	}
	fmt.Println("slice contract: validated dynamically")

	run := func(p *isa.Program, selective bool) int64 {
		cfg := sim.DefaultConfig()
		cfg.Core.SelectiveFlush = selective
		res, err := sim.Run(cfg, &sim.Workload{Name: p.Name,
			Progs: []*isa.Program{p}, Mem: mem()})
		if err != nil {
			log.Fatal(err)
		}
		return res.Cycles
	}
	base := run(plain, false)
	auto := run(annotated, true)
	fmt.Printf("\nbaseline:    %d cycles\nauto-sliced: %d cycles\nspeedup:     %.3fx\n",
		base, auto, float64(base)/float64(auto))
}
