// Customkernel: write your own workload in the virtual ISA with the
// builder DSL, annotate it with slice instructions (the paper's Listing 1
// pattern), and run it through both cores — the workflow a programmer
// would follow to adopt the mechanism.
//
//	go run ./examples/customkernel
package main

import (
	"fmt"
	"log"

	"repro/internal/emu"
	"repro/internal/graph"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/sim"
)

// build assembles a histogram kernel: for each input element, a chain of
// data-dependent range checks (unpredictable branches) selects a bucket,
// and a reduce-prefixed counter tracks a checksum. Each iteration is
// independent: a textbook slice.
func build(n int, sliced bool) (*sim.Workload, uint64) {
	rng := graph.NewRNG(2026)
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = uint32(rng.Next() % 1000)
	}

	l := program.NewLayout()
	inB := l.AllocU32(n, vals)
	bucketB := l.AllocU32(n, nil)
	sumB := l.AllocU64(1, nil)

	b := program.NewBuilder("histogram")
	rI, rN, rIn, rBk, rSumA := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	rX, rB, rT, rSum := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.Li(rI, 0)
	b.Li(rN, int64(n))
	b.Li(rIn, int64(inB))
	b.Li(rBk, int64(bucketB))
	b.Li(rSumA, int64(sumB))
	b.Li(rSum, 0)

	b.Label("loop")
	b.Bge(rI, rN, "done")
	b.SliceStart(sliced) // iteration body = one slice (Listing 1)
	b.LdX32(rX, rIn, rI, 2)
	b.Li(rB, 0)
	// Unbalanced, data-dependent bucket selection.
	for i, bound := range []int64{50, 200, 450, 800} {
		b.Li(rT, bound)
		b.Bltu(rX, rT, "bucketed")
		b.Li(rB, int64(i+1))
	}
	b.Label("bucketed")
	b.StX32(rBk, rI, 2, rB)
	if sliced {
		b.Reduce() // §4.5: commutative update, executes at ROB head
	}
	b.Add(rSum, rSum, rX)
	b.SliceEnd(sliced)
	b.AddI(rI, rI, 1)
	b.Jmp("loop")
	b.Label("done")
	b.SliceFence(sliced) // region ends: later code may read the buckets
	b.St64(rSumA, 0, rSum)
	b.Halt()

	want := uint64(0)
	for _, v := range vals {
		want += uint64(v)
	}
	return &sim.Workload{
		Name:  "histogram",
		Progs: []*isa.Program{b.Build()},
		Mem:   l.Image(),
		Check: func(mem []byte) error {
			if got := program.ReadU64(mem, sumB); got != want {
				return fmt.Errorf("checksum %d, want %d", got, want)
			}
			return nil
		},
	}, sumB
}

func main() {
	const n = 20000

	// First prove the annotation respects the §4.1 contract: the
	// emulator's independence checker validates every slice.
	w, _ := build(n, true)
	m := emu.New(w.Progs[0], w.Mem)
	m.CheckIndependence = true
	if _, err := m.Run(0); err != nil {
		log.Fatalf("slice contract violated: %v", err)
	}
	fmt.Println("slice independence contract: OK (checked dynamically)")

	cycles := map[bool]int64{}
	for _, sliced := range []bool{false, true} {
		w, _ := build(n, sliced)
		cfg := sim.DefaultConfig()
		cfg.Core.SelectiveFlush = sliced
		res, err := sim.Run(cfg, w)
		if err != nil {
			log.Fatal(err)
		}
		cycles[sliced] = res.Cycles
		tag := "baseline"
		if sliced {
			tag = "sliced  "
		}
		fmt.Printf("%s: %9d cycles, IPC %.2f, %d selective recoveries\n",
			tag, res.Cycles, res.Total.IPC(), res.Total.SliceRecoveries)
	}
	fmt.Printf("\nspeedup: %.3fx\n", float64(cycles[false])/float64(cycles[true]))
}
