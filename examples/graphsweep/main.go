// Graphsweep: study how the selective-flush benefit moves with graph size
// (the paper's Fig. 9 sensitivity) for one kernel, printing cycle stacks
// alongside the speedups so the branch-vs-memory tradeoff is visible.
//
//	go run ./examples/graphsweep [bench]
package main

import (
	"fmt"
	"log"
	"os"

	blp "repro"
)

func main() {
	bench := "bfs"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	base := blp.DefaultScale(bench) - 2

	fmt.Printf("%-8s %10s %10s %8s   %s\n", "size", "base cyc", "sliced", "speedup", "baseline stack (exec/branch/mem)")
	for d := 0; d < 4; d++ {
		scale := base + d
		b, err := blp.Run(blp.Options{Benchmark: bench, Scale: scale})
		if err != nil {
			log.Fatal(err)
		}
		s, err := blp.Run(blp.Options{Benchmark: bench, Scale: scale, Mode: blp.BestMode(bench)})
		if err != nil {
			log.Fatal(err)
		}
		st := b.Stats
		tot := st.StackTotal()
		fmt.Printf("x%-7d %10d %10d %7.3fx   %.0f%% / %.0f%% / %.0f%%\n",
			1<<d, b.Cycles, s.Cycles, blp.Speedup(b, s),
			100*st.StackExec/tot, 100*st.StackBranch/tot, 100*st.StackMem/tot)
	}
	fmt.Println("\nThe paper (Fig. 9) finds the gain tracks the branch fraction of the")
	fmt.Println("cycle stack: growing inputs shift time between branch and memory stalls.")
}
