// Package blp is the public API of this reproduction of "Enabling
// Branch-Mispredict Level Parallelism by Selectively Flushing
// Instructions" (Eyerman, Heirman, Van den Steen, Hur — MICRO 2021).
//
// It wraps the internal cycle-level out-of-order core simulator, the GAP
// graph kernels plus merge sort in the virtual ISA, and the experiment
// harness that regenerates every table and figure of the paper's
// evaluation. See README.md for a tour and EXPERIMENTS.md for the
// paper-vs-measured record.
//
// Quick start:
//
//	res, err := blp.Run(blp.Options{Benchmark: "bfs", Mode: blp.SliceOuter})
//	base, _ := blp.Run(blp.Options{Benchmark: "bfs"})
//	fmt.Printf("speedup: %.2f\n", blp.Speedup(base, res))
package blp

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/sim"
)

// SliceMode selects the slice-instruction placement (§6.1 of the paper).
type SliceMode = kernels.SliceMode

// Slice placements re-exported from the kernels package.
const (
	SliceNone  = kernels.SliceNone
	SliceOuter = kernels.SliceOuter
	SliceInner = kernels.SliceInner
)

// Benchmarks lists the evaluated workloads in the paper's order: the six
// GAP kernels and merge sort.
var Benchmarks = kernels.Names

// InnerSliceable reports whether a benchmark supports inner-loop slicing.
func InnerSliceable(benchmark string) bool { return kernels.InnerSliceable(benchmark) }

// Options configures one simulation run. The zero value of most fields
// selects the paper's defaults (Table 1 core, scaled memory hierarchy,
// single core, TAGE).
type Options struct {
	// Benchmark is one of Benchmarks ("bc", "bfs", "cc", "pr", "sssp",
	// "tc", "ms").
	Benchmark string
	// Mode places slice instructions; SliceNone builds the baseline
	// binary. Selective-flush hardware is enabled iff Mode != SliceNone.
	Mode SliceMode

	// Scale overrides the input size (log2 vertices; log2 elements for
	// ms). 0 selects the per-benchmark default.
	Scale int
	// Degree is the RMAT average degree (default 16, as in GAP).
	Degree int
	// Seed selects the synthetic input instance.
	Seed uint64

	// Cores is the number of cores (default 1; Fig. 10 uses more).
	Cores int
	// SMT is hardware threads per core (1, 2, or 4; Fig. 11).
	SMT int

	// Predictor overrides the direction predictor ("tage" default;
	// "oracle" gives the perfect-prediction bars of Figs. 4 and 11).
	Predictor string
	// Reserve overrides the §4.7 resource reservation (default 8).
	Reserve int
	// ROBBlockSize overrides the blocked linked-list ROB block size
	// (default 1; Fig. 8 sweeps 1..16).
	ROBBlockSize int
	// FRQSize overrides the fetch redirect queue depth (default 8).
	FRQSize int

	// PaperScaleMem uses the full Table 1 memory hierarchy instead of
	// the scaled-down default (needs correspondingly large inputs).
	PaperScaleMem bool
	// WrongPathMemAccess lets wrong-path loads touch the caches
	// (pollution and prefetching); see DESIGN.md's calibration notes.
	WrongPathMemAccess bool
	// CheckIndependence enables the §4.1 slice-contract checker.
	CheckIndependence bool
	// TraceEvents, when positive, prints that many pipeline events
	// (fetch-miss/dispatch/commit/recovery) to stderr.
	TraceEvents int64
	// PRIters is the number of PageRank sweeps (default 3).
	PRIters int
}

// Result is the outcome of one run.
type Result struct {
	// Cycles is the simulated execution time.
	Cycles int64
	// IPC is committed instructions per cycle.
	IPC float64
	// Stats carries the full core counters (aggregated over cores).
	Stats core.Stats
	// PerCore has one entry per simulated core.
	PerCore []core.Stats
	// LLCMissRate and DRAMBusy summarize the memory system.
	LLCMissRate float64
	DRAMBusy    float64
	// Energy is the event-energy proxy of the run (arbitrary units; see
	// sim.DefaultEnergyModel), supporting the paper's efficiency claim.
	Energy sim.Energy
	// EnergyUseful is the committed share of dispatched instructions —
	// the fraction of dynamic pipeline energy that was not wasted on
	// wrong paths or marker overhead (Fig. 6's efficiency story).
	EnergyUseful float64
}

// Speedup returns base.Cycles / other.Cycles.
func Speedup(base, other *Result) float64 {
	if other.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(other.Cycles)
}

// Run builds the requested workload and simulates it to completion,
// validating the final memory image against the host reference.
func Run(o Options) (*Result, error) {
	spec := kernels.Spec{
		Kernel:  o.Benchmark,
		Scale:   o.Scale,
		Degree:  o.Degree,
		Seed:    o.Seed,
		Mode:    o.Mode,
		PRIters: o.PRIters,
	}
	cores := o.Cores
	if cores == 0 {
		cores = 1
	}
	smt := o.SMT
	if smt == 0 {
		smt = 1
	}
	spec.Threads = cores * smt

	w, err := kernels.Build(spec)
	if err != nil {
		return nil, err
	}

	cfg := sim.DefaultConfig()
	cfg.Cores = cores
	cfg.Core.SMT = smt
	cfg.Core.SelectiveFlush = o.Mode != SliceNone
	cfg.Core.WrongPathMemAccess = o.WrongPathMemAccess
	cfg.CheckIndependence = o.CheckIndependence
	if o.Predictor != "" {
		cfg.Core.Predictor = o.Predictor
	}
	if o.Reserve != 0 {
		cfg.Core.Reserve = o.Reserve
	}
	if o.ROBBlockSize != 0 {
		cfg.Core.ROBBlockSize = o.ROBBlockSize
	}
	if o.FRQSize != 0 {
		cfg.Core.FRQSize = o.FRQSize
	}
	if o.PaperScaleMem {
		cfg.Mem = sim.Table1MemConfig(cores)
	} else {
		cfg.Mem = sim.ScaledMemConfig(cores)
	}
	if o.TraceEvents > 0 {
		cfg.Core.Trace = os.Stderr
		cfg.Core.TraceLimit = o.TraceEvents
	}

	r, err := sim.Run(cfg, w)
	if err != nil {
		return nil, fmt.Errorf("blp: %s (%v): %w", o.Benchmark, o.Mode, err)
	}
	e := sim.EstimateEnergy(sim.DefaultEnergyModel(), r)
	dispatched := r.Total.DispCorrect + r.Total.DispWrong + r.Total.DispOverhead
	return &Result{
		Cycles:       r.Cycles,
		IPC:          r.Total.IPC(),
		Stats:        r.Total,
		PerCore:      r.PerCore,
		LLCMissRate:  r.LLCMissRate,
		DRAMBusy:     r.DRAMBusy,
		Energy:       e,
		EnergyUseful: e.UsefulFraction(r.Total.Committed, dispatched),
	}, nil
}

// DefaultScale returns the default input scale for a benchmark.
func DefaultScale(benchmark string) int { return kernels.DefaultScale(benchmark) }
