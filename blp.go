// Package blp is the public API of this reproduction of "Enabling
// Branch-Mispredict Level Parallelism by Selectively Flushing
// Instructions" (Eyerman, Heirman, Van den Steen, Hur — MICRO 2021).
//
// It wraps the internal cycle-level out-of-order core simulator, the GAP
// graph kernels plus merge sort in the virtual ISA, and the experiment
// harness that regenerates every table and figure of the paper's
// evaluation. See README.md for a tour and EXPERIMENTS.md for the
// paper-vs-measured record.
//
// Quick start:
//
//	res, err := blp.Run(blp.Options{Benchmark: "bfs", Mode: blp.SliceOuter})
//	base, _ := blp.Run(blp.Options{Benchmark: "bfs"})
//	fmt.Printf("speedup: %.2f\n", blp.Speedup(base, res))
package blp

import (
	"context"
	"fmt"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/kernels"
	"repro/internal/sim"
	"repro/internal/trace"
)

// FlightRecorder is the opt-in observability recorder of internal/flight:
// attach one via Options.Flight to collect an interval occupancy timeline
// (flight.Recorder.Samples) and per-uop pipeline events (flight.
// Recorder.Events) during a run. See flight's package doc for the
// single-writer contract; a Recorder must not be shared across concurrent
// runs.
type FlightRecorder = flight.Recorder

// SliceMode selects the slice-instruction placement (§6.1 of the paper).
type SliceMode = kernels.SliceMode

// Slice placements re-exported from the kernels package.
const (
	SliceNone  = kernels.SliceNone
	SliceOuter = kernels.SliceOuter
	SliceInner = kernels.SliceInner
)

// Benchmarks lists the evaluated workloads in the paper's order: the six
// GAP kernels and merge sort.
var Benchmarks = kernels.Names

// InnerSliceable reports whether a benchmark supports inner-loop slicing.
func InnerSliceable(benchmark string) bool { return kernels.InnerSliceable(benchmark) }

// Zero marks an integer Options field as explicitly zero. Fields whose
// zero value means "use the default" (Reserve, ROBBlockSize, FRQSize,
// PRIters) accept Zero to request an actual 0 — e.g. a zero-reserve
// baseline or a zero-depth-FRQ ablation — which a literal 0 cannot
// express. Structurally impossible zeros (Reserve under selective
// flush, ROBBlockSize) fail validation with a clear error instead of
// silently running the default.
const Zero = -1

// Options configures one simulation run. The zero value of most fields
// selects the paper's defaults (Table 1 core, scaled memory hierarchy,
// single core, TAGE). Integer fields documented with "Zero for an
// explicit 0" follow the Zero sentinel convention above.
type Options struct {
	// Benchmark is one of Benchmarks ("bc", "bfs", "cc", "pr", "sssp",
	// "tc", "ms").
	Benchmark string
	// Mode places slice instructions; SliceNone builds the baseline
	// binary. Selective-flush hardware is enabled iff Mode != SliceNone.
	Mode SliceMode

	// Scale overrides the input size (log2 vertices; log2 elements for
	// ms). 0 selects the per-benchmark default.
	Scale int
	// Degree is the RMAT average degree (default 16, as in GAP).
	Degree int
	// Seed selects the synthetic input instance.
	Seed uint64

	// Cores is the number of cores (default 1; Fig. 10 uses more).
	Cores int
	// SMT is hardware threads per core (1, 2, or 4; Fig. 11).
	SMT int

	// Predictor overrides the direction predictor ("tage" default;
	// "oracle" gives the perfect-prediction bars of Figs. 4 and 11).
	Predictor string
	// Policy selects the misprediction-recovery policy: "selective" (the
	// paper's mechanism), "conventional" (full flush), "partial:N" (flush
	// only the N ROB entries nearest the branch, staged drain for the
	// rest; "partial:inf" drains everything), or "throttle:C" (full flush
	// plus single-slot fetch while a branch with predictor confidence
	// below C is outstanding). Empty (or "auto") follows Mode, exactly as
	// before this knob existed: selective when Mode places slices,
	// conventional otherwise. A timing knob: excluded from TraceKey.
	Policy string
	// Reserve overrides the §4.7 resource reservation (0 = default 8;
	// Zero for an explicit 0, i.e. no entries reserved). An explicit 0
	// is accepted for baseline runs; combined with slicing the core
	// rejects it with a §4.7 forward-progress error, because a
	// reservation-free selective-flush machine architecturally
	// deadlocks (resolve paths starve behind a packed window).
	Reserve int
	// ROBBlockSize overrides the blocked linked-list ROB block size
	// (0 = default 1; Fig. 8 sweeps 1..16). Zero requests an explicit 0,
	// which the core rejects as structurally invalid — the sentinel is
	// accepted for uniformity and yields a clear validation error.
	ROBBlockSize int
	// FRQSize overrides the fetch redirect queue depth (0 = default 8;
	// Zero for an explicit 0: every in-slice miss then falls back to
	// conventional full-flush recovery).
	FRQSize int

	// PaperScaleMem uses the full Table 1 memory hierarchy instead of
	// the scaled-down default (needs correspondingly large inputs).
	PaperScaleMem bool
	// WrongPathMemAccess lets wrong-path loads touch the caches
	// (pollution and prefetching); see DESIGN.md's calibration notes.
	WrongPathMemAccess bool
	// CheckIndependence enables the §4.1 slice-contract checker.
	CheckIndependence bool
	// TraceEvents, when positive, prints that many pipeline events
	// (fetch-miss/dispatch/commit/recovery) to stderr.
	TraceEvents int64
	// PRIters is the number of PageRank sweeps (0 = default 3; Zero for
	// an explicit 0, leaving every score at its 1/n initial value).
	PRIters int
	// WatchdogCycles is the no-commit deadlock watchdog threshold
	// (0 = sim.DefaultWatchdogCycles; must not be negative).
	WatchdogCycles int64
	// Flight, when non-nil, records the run's timeline and pipeline
	// events (see FlightRecorder). Output-only: it does not affect the
	// simulation and is excluded from Key. Because the Runner memoizes
	// by Key, a Runner.Run request whose key duplicates an in-flight or
	// completed run is served from cache and records nothing — the
	// recorder comes back empty (the Runner reports a notice on its
	// progress writer). Use blp.Run when the recording must happen.
	Flight *FlightRecorder
}

// normalized returns o with every defaulted field resolved to its
// effective value, so that two Options that mean the same simulation
// compare identically. The Zero sentinel is preserved (it already is
// unambiguous) and mapped to a literal 0 at the point of use.
func (o Options) normalized() Options {
	cc := core.DefaultConfig()
	if o.Scale == 0 {
		o.Scale = DefaultScale(o.Benchmark)
	}
	if o.Degree == 0 {
		o.Degree = 16
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Cores == 0 {
		o.Cores = 1
	}
	if o.SMT == 0 {
		o.SMT = 1
	}
	if o.Predictor == "" {
		o.Predictor = cc.Predictor
	}
	if o.Reserve == 0 {
		o.Reserve = cc.Reserve
	}
	if o.ROBBlockSize == 0 {
		o.ROBBlockSize = cc.ROBBlockSize
	}
	if o.FRQSize == 0 {
		o.FRQSize = cc.FRQSize
	}
	if o.PRIters == 0 {
		o.PRIters = kernels.DefaultPRIters
	}
	if o.WatchdogCycles == 0 {
		o.WatchdogCycles = sim.DefaultWatchdogCycles
	}
	if sp, err := core.ParsePolicy(o.Policy); err == nil {
		if sp.Kind == core.PolicyAuto {
			if o.Mode != SliceNone {
				sp.Kind = core.PolicySelective
			} else {
				sp.Kind = core.PolicyConventional
			}
		}
		o.Policy = sp.String()
	}
	// An unparseable Policy passes through verbatim; runContext rejects
	// it with the parser's error before building the workload.
	return o
}

// zv maps the Zero sentinel (and any negative value) to a literal 0.
func zv(v int) int {
	if v < 0 {
		return 0
	}
	return v
}

// Key returns the canonical identity of the simulation Run would perform
// for o: all defaults resolved, output-only fields (TraceEvents, Flight)
// ignored. Two Options with equal Keys produce identical Results; the
// Runner uses it as its memoization key.
func (o Options) Key() string {
	n := o.normalized()
	n.TraceEvents = 0
	n.Flight = nil
	return fmt.Sprintf("%+v", n)
}

// Result is the outcome of one run.
type Result struct {
	// Cycles is the simulated execution time.
	Cycles int64
	// IPC is committed instructions per cycle.
	IPC float64
	// Stats carries the full core counters (aggregated over cores).
	Stats core.Stats
	// PerCore has one entry per simulated core.
	PerCore []core.Stats
	// LLCMissRate and DRAMBusy summarize the memory system.
	LLCMissRate float64
	DRAMBusy    float64
	// Energy is the event-energy proxy of the run (arbitrary units; see
	// sim.DefaultEnergyModel), supporting the paper's efficiency claim.
	Energy sim.Energy
	// EnergyUseful is the committed share of dispatched instructions —
	// the fraction of dynamic pipeline energy that was not wasted on
	// wrong paths or marker overhead (Fig. 6's efficiency story).
	EnergyUseful float64
}

// Speedup returns base.Cycles / other.Cycles. A comparison against a run
// that recorded no cycles is not a measurement at all, so it yields NaN —
// never 0, which a caller could mistake for a measured slowdown and which
// would silently poison stats.HarmonicMeanSpeedup (that mean propagates
// NaN explicitly).
func Speedup(base, other *Result) float64 {
	if other.Cycles == 0 {
		return math.NaN()
	}
	return float64(base.Cycles) / float64(other.Cycles)
}

// Run builds the requested workload and simulates it to completion,
// validating the final memory image against the host reference. Every
// call simulates afresh; use a Runner for memoized, concurrent execution.
func Run(o Options) (*Result, error) {
	return RunContext(context.Background(), o)
}

// RunContext is Run honoring ctx: cancellation is checked before the
// (potentially slow) workload build and periodically inside the sim
// driver's stepping loop, so a canceled caller gets its goroutine and
// CPU back mid-simulation instead of waiting for the run to finish. The
// returned error wraps ctx.Err().
func RunContext(ctx context.Context, o Options) (*Result, error) {
	return runContext(ctx, o, nil)
}

// buildSpec maps (normalized) options to the kernels build request.
func buildSpec(n Options) kernels.Spec {
	return kernels.Spec{
		Kernel:  n.Benchmark,
		Scale:   n.Scale,
		Degree:  n.Degree,
		Seed:    n.Seed,
		Mode:    n.Mode,
		PRIters: n.PRIters, // kernels shares the negative-sentinel convention
		Threads: n.Cores * n.SMT,
	}
}

// runContext is RunContext with an optional captured trace: when tr is
// non-nil the timing model's frontend replays it instead of stepping the
// functional emulator (the workload build still runs — the timing model
// needs the program and memory image — but the per-instruction
// emulation does not). Results are byte-identical either way; the
// Runner is the caller that supplies traces.
func runContext(ctx context.Context, o Options, tr *trace.Trace) (*Result, error) {
	n := o.normalized()

	if _, err := core.ParsePolicy(n.Policy); err != nil {
		return nil, fmt.Errorf("blp: %s (%v): %w", o.Benchmark, o.Mode, err)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("blp: %s (%v) canceled before build: %w", o.Benchmark, o.Mode, err)
	}
	w, err := kernels.Build(buildSpec(n))
	if err != nil {
		return nil, err
	}

	cfg := simConfig(ctx, n)
	cfg.Replay = tr

	r, err := sim.Run(cfg, w)
	if err != nil {
		return nil, fmt.Errorf("blp: %s (%v): %w", o.Benchmark, o.Mode, err)
	}
	return makeResult(r), nil
}

// simConfig maps normalized options to the sim configuration — everything
// but the frontend source (Replay and batch views are wired by the
// caller).
func simConfig(ctx context.Context, n Options) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Cores = n.Cores
	cfg.Core.SMT = n.SMT
	cfg.Core.SelectiveFlush = n.Mode != SliceNone
	if sp, err := core.ParsePolicy(n.Policy); err == nil {
		cfg.Core.Recovery = sp
	}
	cfg.Core.WrongPathMemAccess = n.WrongPathMemAccess
	cfg.CheckIndependence = n.CheckIndependence
	cfg.Core.Predictor = n.Predictor
	cfg.Core.Reserve = zv(n.Reserve)
	cfg.Core.ROBBlockSize = zv(n.ROBBlockSize)
	cfg.Core.FRQSize = zv(n.FRQSize)
	if n.PaperScaleMem {
		cfg.Mem = sim.Table1MemConfig(n.Cores)
	} else {
		cfg.Mem = sim.ScaledMemConfig(n.Cores)
	}
	if n.TraceEvents > 0 {
		cfg.Core.Trace = os.Stderr
		cfg.Core.TraceLimit = n.TraceEvents
	}
	cfg.WatchdogCycles = n.WatchdogCycles
	cfg.Recorder = n.Flight
	cfg.Ctx = ctx
	return cfg
}

// makeResult converts a sim result into the public Result, deriving the
// energy proxy.
func makeResult(r *sim.Result) *Result {
	e := sim.EstimateEnergy(sim.DefaultEnergyModel(), r)
	dispatched := r.Total.DispCorrect + r.Total.DispWrong + r.Total.DispOverhead
	return &Result{
		Cycles:       r.Cycles,
		IPC:          r.Total.IPC(),
		Stats:        r.Total,
		PerCore:      r.PerCore,
		LLCMissRate:  r.LLCMissRate,
		DRAMBusy:     r.DRAMBusy,
		Energy:       e,
		EnergyUseful: e.UsefulFraction(r.Total.Committed, dispatched),
	}
}

// DefaultScale returns the default input scale for a benchmark.
func DefaultScale(benchmark string) int { return kernels.DefaultScale(benchmark) }
