package blp

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// checkGolden compares got against testdata/<name>, rewriting the file
// when -update is set. Figures are deterministic — the simulator has no
// hidden randomness and the runner assembles tables in declaration order —
// so the rendered text must be byte-identical run to run.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with `go test . -run TestGolden -update`)", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestGoldenTable1 pins the static configuration table.
func TestGoldenTable1(t *testing.T) {
	checkGolden(t, "table1.golden", Table1().String())
}

// TestGoldenFig4SmallScale pins the full experiments -fig 4 text output at
// the minimum input scale: every benchmark, every slicing placement, and
// the perfect-prediction column, through the real memoized runner. Any
// change to simulator timing, table formatting, or harmonic-mean math
// shows up as a diff here.
func TestGoldenFig4SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every benchmark through the simulator")
	}
	f, err := NewRunner(0).Fig4(-100) // clamps every benchmark to minScale
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig4-minscale.golden", f.String())
}
