package blp

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/store"
)

// TestWarmStartEquivalence is the headline durable-store guarantee: a
// fresh process pointed at an existing store directory serves previously
// computed results without running a single simulation, and the served
// Result is identical — field for field and byte for byte in its
// persisted encoding — to the one the first process computed.
func TestWarmStartEquivalence(t *testing.T) {
	dir := t.TempDir()
	opts := []Options{
		{Benchmark: "cc", Scale: 6},
		{Benchmark: "cc", Scale: 6, Mode: SliceOuter},
	}

	// First life: compute and persist.
	st1, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	r1 := NewRunnerStore(2, 0, st1)
	first, err := r1.RunAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := r1.Stats().Simulated; got != len(opts) {
		t.Fatalf("cold start Simulated = %d, want %d", got, len(opts))
	}
	ss := st1.Stats()
	if ss.Writes == 0 {
		t.Fatalf("cold start wrote nothing to the store: %+v", ss)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: same directory, fresh Store and Runner — the in-memory
	// caches start empty, so every answer must come from disk.
	st2, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	r2 := NewRunnerStore(2, 0, st2)
	second, err := r2.RunAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.Stats().Simulated; got != 0 {
		t.Errorf("warm start Simulated = %d, want 0 (all results should come from the store)", got)
	}
	if hits := st2.Stats().Hits; hits < int64(len(opts)) {
		t.Errorf("warm start store hits = %d, want >= %d", hits, len(opts))
	}
	for i := range opts {
		if !reflect.DeepEqual(first[i], second[i]) {
			t.Errorf("run %d: warm-start result differs from cold-start:\ncold %+v\nwarm %+v",
				i, first[i], second[i])
		}
		ce, err1 := encodeResult(first[i])
		we, err2 := encodeResult(second[i])
		if err1 != nil || err2 != nil {
			t.Fatalf("encoding results: %v, %v", err1, err2)
		}
		if string(ce) != string(we) {
			t.Errorf("run %d: persisted encodings differ between cold and warm start", i)
		}
	}
}

// TestWarmStartVersionMismatch proves the behavior-version stamp fences
// off stale results: a store written under one version answers nothing
// when reopened under another, and the stale objects are invalidated
// rather than served.
func TestWarmStartVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	o := Options{Benchmark: "cc", Scale: 6}

	st1, err := store.Open(dir, "old-behavior", 0)
	if err != nil {
		t.Fatal(err)
	}
	r1 := NewRunnerStore(1, 0, st1)
	if _, err := r1.Run(o); err != nil {
		t.Fatal(err)
	}
	if st1.Stats().Writes == 0 {
		t.Fatal("nothing persisted under the old version")
	}
	st1.Close()

	st2, err := OpenStore(dir, 0) // current BehaviorVersion != "old-behavior"
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	r2 := NewRunnerStore(1, 0, st2)
	if _, err := r2.Run(o); err != nil {
		t.Fatal(err)
	}
	if got := r2.Stats().Simulated; got != 1 {
		t.Errorf("Simulated = %d, want 1 (stale store entry must not be served)", got)
	}
	if inv := st2.Stats().Invalidated; inv == 0 {
		t.Error("version-mismatched object was not invalidated")
	}
}

// TestWarmStartReplaysStoredTrace exercises the trace spill path: a
// workload traced in one process is replayed — not re-captured, not run
// on the live emulator — when a later process requests a new timing
// configuration of it.
func TestWarmStartReplaysStoredTrace(t *testing.T) {
	dir := t.TempDir()
	// Two timing configs of one workload: the batch hint makes the first
	// life capture the trace once and persist it.
	batch := []Options{
		{Benchmark: "cc", Scale: 6},
		{Benchmark: "cc", Scale: 6, Predictor: "oracle"},
	}

	st1, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	r1 := NewRunnerStore(2, 0, st1)
	if _, err := r1.RunAll(batch); err != nil {
		t.Fatal(err)
	}
	if got := r1.Stats().Captured; got != 1 {
		t.Fatalf("first life Captured = %d, want 1", got)
	}
	if !st1.Has("traceobj/" + batch[0].TraceKey()) {
		t.Fatal("captured trace was not persisted")
	}
	st1.Close()

	// Second life: a third timing configuration — its result key is not
	// in the store, but the workload's trace is, so the single request
	// replays without a capture pass.
	st2, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	r2 := NewRunnerStore(1, 0, st2)
	if _, err := r2.Run(Options{Benchmark: "cc", Scale: 6, FRQSize: 4}); err != nil {
		t.Fatal(err)
	}
	s := r2.Stats()
	if s.Simulated != 1 || s.Captured != 0 || s.Replayed != 1 {
		t.Errorf("second life stats = %+v, want Simulated=1 Captured=0 Replayed=1", s)
	}
}

// TestLedgerRecordsFreshComputations checks the experiment ledger holds
// one line per actual computation — and none for cache or store hits.
func TestLedgerRecordsFreshComputations(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunnerStore(1, 0, st)
	o := Options{Benchmark: "bfs", Scale: 6}
	if _, err := r.Run(o); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(o); err != nil { // memo hit: must not re-ledger
		t.Fatal(err)
	}
	st.Close()

	entries, err := store.ReadLedger(dir)
	if err != nil {
		t.Fatal(err)
	}
	var results int
	for _, e := range entries {
		if e.Kind != "result" {
			continue
		}
		results++
		if e.Benchmark != "bfs" {
			t.Errorf("ledger benchmark = %q, want bfs", e.Benchmark)
		}
		if !strings.HasPrefix(e.Key, "result/") {
			t.Errorf("ledger key %q lacks result/ prefix", e.Key)
		}
		if e.Version != BehaviorVersion() {
			t.Errorf("ledger version = %q, want %q", e.Version, BehaviorVersion())
		}
	}
	if results != 1 {
		t.Errorf("ledger has %d result entries, want exactly 1", results)
	}
}

// TestRunnerStoreNilDegrades pins that a nil store is NewRunnerCache
// exactly: no store consultation, no persistence machinery in the way.
func TestRunnerStoreNilDegrades(t *testing.T) {
	r := NewRunnerStore(1, 0, nil)
	if r.Store() != nil {
		t.Fatal("nil store should stay nil")
	}
	if _, err := r.Run(Options{Benchmark: "cc", Scale: 6}); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().Simulated; got != 1 {
		t.Errorf("Simulated = %d, want 1", got)
	}
	if r.CacheStats().Store != nil {
		t.Error("CacheStats.Store should be nil without a store")
	}
}
