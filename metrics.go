package blp

import (
	"encoding/json"
	"io"
	"math"
)

// MetricsSchemaVersion identifies the JSON layout of Report. Bump it on
// any incompatible change to Report/FigureMetrics so downstream consumers
// (CI artifact diffing, plotting scripts) can reject data they do not
// understand instead of misreading it.
const MetricsSchemaVersion = 1

// Metric is a float64 that survives JSON: encoding/json rejects NaN and
// ±Inf outright, but unmeasurable values are legitimate here (Speedup
// against a zero-cycle run is NaN by contract). Those encode as null and
// decode back as NaN.
type Metric float64

// MarshalJSON encodes NaN and ±Inf as null.
func (m Metric) MarshalJSON() ([]byte, error) {
	f := float64(m)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(f)
}

// UnmarshalJSON decodes null as NaN.
func (m *Metric) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*m = Metric(math.NaN())
		return nil
	}
	var f float64
	if err := json.Unmarshal(b, &f); err != nil {
		return err
	}
	*m = Metric(f)
	return nil
}

// FigureMetrics is the machine-readable form of one Figure: the rendered
// table (header plus formatted cells, exactly what Figure.String prints)
// and the raw values keyed as Figure.Values keys them.
type FigureMetrics struct {
	ID     string            `json:"id"`
	Title  string            `json:"title"`
	Header []string          `json:"header"`
	Rows   [][]string        `json:"rows"`
	Notes  string            `json:"notes,omitempty"`
	Values map[string]Metric `json:"values,omitempty"`
}

// Report is the versioned machine-readable output of an experiments run.
type Report struct {
	SchemaVersion int             `json:"schema_version"`
	Figures       []FigureMetrics `json:"figures"`
}

// NewReport converts figures (nils skipped) into a Report at the current
// schema version.
func NewReport(figs ...*Figure) *Report {
	r := &Report{SchemaVersion: MetricsSchemaVersion}
	for _, f := range figs {
		if f == nil {
			continue
		}
		r.Figures = append(r.Figures, f.Metrics())
	}
	return r
}

// Metrics returns the figure's machine-readable form.
func (f *Figure) Metrics() FigureMetrics {
	m := FigureMetrics{
		ID:    f.ID,
		Title: f.Title,
		Notes: f.Notes,
	}
	if f.Table != nil {
		m.Header = f.Table.Header()
		m.Rows = f.Table.Rows()
	}
	if len(f.Values) > 0 {
		m.Values = make(map[string]Metric, len(f.Values))
		for k, v := range f.Values {
			m.Values[k] = Metric(v)
		}
	}
	return m
}

// WriteJSON writes the report as indented JSON. Output is deterministic:
// figures keep their order and encoding/json sorts the value maps' keys.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
