package blp

// One benchmark per paper table/figure: each regenerates its experiment at
// a reduced input scale (quick sweeps) and reports the headline numbers as
// custom metrics, so `go test -bench=. -benchmem` reproduces the whole
// evaluation's shape in minutes. cmd/experiments runs the same harness at
// full default scales.

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// benchDelta shrinks inputs for the benchmark harness; the full-scale
// figures come from cmd/experiments.
const benchDelta = -2

func reportFigure(b *testing.B, f *Figure, keys ...string) {
	b.Helper()
	for _, k := range keys {
		if v, ok := f.Values[k]; ok {
			b.ReportMetric(v, k)
		}
	}
	b.Logf("\n%s", f)
}

func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := Table1()
		if i == 0 {
			b.Logf("\n%s", f)
		}
	}
}

func BenchmarkMotivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := Motivation(benchDelta)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportFigure(b, f, "oracle/hmean")
		}
	}
}

func BenchmarkFig4SliceSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := Fig4(benchDelta)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportFigure(b, f, "hmean", "hmeanNoPR", "hmeanPerfect", "best/ms")
		}
	}
}

func BenchmarkFig5CycleStacks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := Fig5(benchDelta)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportFigure(b, f, "ms/orig/branch", "ms/sliced/branch")
		}
	}
}

func BenchmarkFig6Dispatched(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := Fig6(benchDelta)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportFigure(b, f, "ms/orig/wrong", "ms/sliced/wrong", "sssp/overhead")
		}
	}
}

func BenchmarkFig7Reserve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := Fig7(benchDelta, []int{1, 8, 32})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportFigure(b, f, "ms/r1", "ms/r8", "ms/r32")
		}
	}
}

func BenchmarkFig8Blocks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := Fig8(benchDelta, []int{1, 8, 16})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportFigure(b, f, "hmean/b1", "hmean/b8", "hmean/b16")
		}
	}
}

func BenchmarkFig9InputSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := Fig9(benchDelta - 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportFigure(b, f, "ms/x1", "ms/x8")
		}
	}
}

func BenchmarkFig10Multicore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := Fig10(benchDelta, 4, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportFigure(b, f, "hmean/1c", "hmean/nc")
		}
	}
}

func BenchmarkFig11SMT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := Fig11(benchDelta)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportFigure(b, f, "ms/smt2", "ms/smt2s", "ms/sliced")
		}
	}
}

// BenchmarkAblationWrongPathMemory quantifies the wrong-path memory-access
// modeling choice discussed in DESIGN.md: with exact-address wrong-path
// prefetching the oracle headroom shrinks.
func BenchmarkAblationWrongPathMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, wp := range []bool{false, true} {
			base, err := Run(Options{Benchmark: "bfs", Scale: scaled("bfs", benchDelta),
				WrongPathMemAccess: wp})
			if err != nil {
				b.Fatal(err)
			}
			orc, err := Run(Options{Benchmark: "bfs", Scale: scaled("bfs", benchDelta),
				WrongPathMemAccess: wp, Predictor: "oracle"})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(Speedup(base, orc), fmt.Sprintf("oracle(wpmem=%v)", wp))
			}
		}
	}
}

// BenchmarkAblationSharedReserve measures the resolve-path admission
// policy: oldest-hole-only (default) versus sharing the reserved entries
// among all pending resolve paths.
func BenchmarkAblationSharedReserve(b *testing.B) {
	defer core.SetNonOldestReserve(-1)
	for i := 0; i < b.N; i++ {
		base, err := Run(Options{Benchmark: "ms", Scale: scaled("ms", benchDelta)})
		if err != nil {
			b.Fatal(err)
		}
		for _, floor := range []int{-1, 1} {
			core.SetNonOldestReserve(floor)
			sl, err := Run(Options{Benchmark: "ms", Scale: scaled("ms", benchDelta),
				Mode: SliceOuter})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(Speedup(base, sl), fmt.Sprintf("sliced(floor=%d)", floor))
			}
		}
	}
}

// BenchmarkBatchedSweep measures the batched-replay engine on the
// canonical 6-point timing sweep of one sliced workload: each iteration
// is a fresh Runner, so it pays one trace capture plus one shared-decode
// batch over all six configurations — the full cost a sweeping caller
// sees. Compare against six times BenchmarkSimThroughput-style live runs
// for the sweep-cost multiple.
func BenchmarkBatchedSweep(b *testing.B) {
	scale := scaled("cc", benchDelta)
	sweep := []Options{
		{Benchmark: "cc", Scale: scale, Mode: SliceOuter},
		{Benchmark: "cc", Scale: scale, Mode: SliceOuter, Predictor: "oracle"},
		{Benchmark: "cc", Scale: scale, Mode: SliceOuter, FRQSize: 2},
		{Benchmark: "cc", Scale: scale, Mode: SliceOuter, ROBBlockSize: 4},
		{Benchmark: "cc", Scale: scale, Mode: SliceOuter, Reserve: 16},
		{Benchmark: "cc", Scale: scale, Mode: SliceOuter, WrongPathMemAccess: true},
	}
	// Warm the memoized input generation; it is not part of the sweep cost.
	if _, err := Run(sweep[0]); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewRunner(1)
		if _, err := r.RunAll(sweep); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			st := r.Stats()
			if st.Batched != len(sweep) || st.BatchGroups != 1 {
				b.Fatalf("sweep did not run as one batch: %+v", st)
			}
			b.ReportMetric(float64(st.SegHits), "seg_hits")
			b.ReportMetric(float64(st.SegInvalidated), "seg_invalidated")
		}
	}
}

// BenchmarkSimThroughput measures raw simulator speed (simulated cycles
// per wall second drives every experiment's cost).
func BenchmarkSimThroughput(b *testing.B) {
	var cycles int64
	for i := 0; i < b.N; i++ {
		r, err := Run(Options{Benchmark: "pr", Scale: scaled("pr", benchDelta)})
		if err != nil {
			b.Fatal(err)
		}
		cycles += r.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
}
