package blp

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"repro/internal/store"
	"repro/internal/trace"
)

// Store-key namespaces. Results and traces share one store directory;
// the prefix keeps their key spaces disjoint (Options.Key and
// Options.TraceKey could never collide textually, but the namespace
// makes the ledger and any future kinds self-describing).
const (
	storeResultPrefix = "result/"
	storeTracePrefix  = "traceobj/"
)

// OpenStore opens (creating if needed) a durable result store rooted at
// dir, stamped with the current BehaviorVersion — the standard way to
// build the store a NewRunnerStore Runner persists through.
// budgetBytes bounds the on-disk object set (<= 0: unbounded).
func OpenStore(dir string, budgetBytes int64) (*store.Store, error) {
	return store.Open(dir, BehaviorVersion(), budgetBytes)
}

// NewRunnerStore is NewRunnerCache with a durable second level: on a
// memo miss the Runner consults st before simulating, fresh results
// (and captured traces) are written through to st, LRU-evicted entries
// are spilled to it, and every fresh computation is appended to its
// experiment ledger. st may be shared by several Runners in one
// process; nil st degrades to NewRunnerCache exactly.
//
// Persistence is an optimization, never a dependency: store I/O errors
// degrade to cache misses and lost write-backs, not failed simulations.
func NewRunnerStore(jobs int, cacheBytes int64, st *store.Store) *Runner {
	r := NewRunnerCache(jobs, cacheBytes)
	if st == nil {
		return r
	}
	r.store = st
	// Spill what the in-memory LRU drops, so "evicted" means "demoted
	// to disk" rather than "forgotten". Write-through on compute makes
	// the spill a cheap Has-check no-op in the common case; it matters
	// when an earlier write failed or the store evicted the object.
	r.cache.OnEvict(func(key string, res *Result) { r.storeSaveResult(key, res) })
	r.traces.OnEvict(func(key string, tr *trace.Trace) { r.storeSaveTrace(key, tr) })
	return r
}

// Store returns the Runner's durable store (nil if none is attached).
func (r *Runner) Store() *store.Store { return r.store }

// encodeResult/decodeResult are the persisted form of a Result: gob,
// which round-trips every numeric field bit-exactly — the warm-start
// guarantee is byte-identical results, not approximately-equal ones.
func encodeResult(res *Result) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(res); err != nil {
		return nil, fmt.Errorf("blp: encoding result: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeResult(data []byte) (*Result, error) {
	res := new(Result)
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(res); err != nil {
		return nil, fmt.Errorf("blp: decoding stored result: %w", err)
	}
	return res, nil
}

// storeLoadResult consults the durable store for a completed result.
// An undecodable payload (possible only if Result's schema changed
// without a resultSchema bump) is deleted so it cannot shadow a
// recomputation forever.
func (r *Runner) storeLoadResult(key string) (*Result, bool) {
	if r.store == nil {
		return nil, false
	}
	data, ok := r.store.Get(storeResultPrefix + key)
	if !ok {
		return nil, false
	}
	res, err := decodeResult(data)
	if err != nil {
		r.store.Delete(storeResultPrefix + key)
		return nil, false
	}
	return res, true
}

// storeSaveResult writes a result through to the durable store;
// failures are dropped (see NewRunnerStore).
func (r *Runner) storeSaveResult(key string, res *Result) {
	if r.store == nil || r.store.Has(storeResultPrefix+key) {
		return
	}
	if data, err := encodeResult(res); err == nil {
		r.store.Put(storeResultPrefix+key, data)
	}
}

func (r *Runner) storeLoadTrace(key string) (*trace.Trace, bool) {
	if r.store == nil {
		return nil, false
	}
	data, ok := r.store.Get(storeTracePrefix + key)
	if !ok {
		return nil, false
	}
	tr, err := trace.Decode(data)
	if err != nil {
		r.store.Delete(storeTracePrefix + key)
		return nil, false
	}
	return tr, true
}

func (r *Runner) storeHasTrace(key string) bool {
	return r.store != nil && r.store.Has(storeTracePrefix+key)
}

func (r *Runner) storeSaveTrace(key string, tr *trace.Trace) {
	if r.store == nil || r.store.Has(storeTracePrefix+key) {
		return
	}
	if data, err := tr.MarshalBinary(); err == nil {
		r.store.Put(storeTracePrefix+key, data)
	}
}

// ledgerResult appends one fresh simulation to the experiment ledger.
// Only actual computations are recorded — cache and store hits are
// replays of history, not history.
func (r *Runner) ledgerResult(o Options, res *Result, elapsed time.Duration) {
	if r.store == nil {
		return
	}
	n := o.normalized()
	r.store.AppendLedger(store.LedgerEntry{
		Kind:        "result",
		Key:         storeResultPrefix + o.Key(),
		Benchmark:   n.Benchmark,
		Mode:        fmt.Sprintf("%v", n.Mode),
		Cycles:      res.Cycles,
		IPC:         res.IPC,
		WallSeconds: elapsed.Seconds(),
	})
}

// ledgerTrace appends one functional capture to the experiment ledger.
func (r *Runner) ledgerTrace(tk string, tr *trace.Trace, elapsed time.Duration) {
	if r.store == nil {
		return
	}
	r.store.AppendLedger(store.LedgerEntry{
		Kind:        "trace",
		Key:         storeTracePrefix + tk,
		Benchmark:   tr.ProgName(),
		WallSeconds: elapsed.Seconds(),
	})
}
