package blp

import (
	"context"
	"fmt"

	"repro/internal/kernels"
	"repro/internal/trace"
)

// TraceKey returns the workload-identity sub-key of Key: the fields that
// determine the committed instruction stream (benchmark, placement,
// input instance, thread count) and nothing else. Every timing knob —
// predictor, ROB geometry, FRQ depth, memory hierarchy, reservation —
// is deliberately excluded: the functional execution is identical across
// all of them, which is exactly what lets the Runner capture one trace
// per TraceKey and replay it under many Keys. The key embeds
// trace.Version, so a simulator-behavior bump invalidates every cached
// trace at once.
func (o Options) TraceKey() string {
	n := o.normalized()
	return fmt.Sprintf("trace/v%d %s/%v s%d d%d seed%d pr%d t%d",
		trace.Version, n.Benchmark, n.Mode, n.Scale, n.Degree, n.Seed,
		n.PRIters, n.Cores*n.SMT)
}

// replayEligible reports whether a run with these (normalized) options
// can be fed from a captured trace: exactly one hardware thread (a
// multicore emulation interleaving is timing-dependent through shared
// memory, so per-thread streams are not config-invariant) and no
// independence checking (the checker observes the live emulator).
func replayEligible(n Options) bool {
	return n.Cores*n.SMT == 1 && !n.CheckIndependence
}

// captureTrace builds the workload for the (normalized) options and
// records its complete architectural execution, validating the captured
// run's final memory against the workload's host reference before
// returning — a trace that would fail the output check must never be
// cached and replayed.
func captureTrace(ctx context.Context, n Options) (*trace.Trace, error) {
	w, err := kernels.Build(buildSpec(n))
	if err != nil {
		return nil, err
	}
	tr, err := trace.Capture(ctx, w.Progs[0], w.Mem)
	if err != nil {
		return nil, fmt.Errorf("blp: %s (%v): %w", n.Benchmark, n.Mode, err)
	}
	if w.Check != nil {
		if err := w.Check(w.Mem); err != nil {
			return nil, fmt.Errorf("blp: %s (%v): captured execution failed output check: %w",
				n.Benchmark, n.Mode, err)
		}
	}
	return tr, nil
}
